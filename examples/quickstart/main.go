// Quickstart: the complete AIMS loop in one file — capture a glove
// session through the double-buffered acquisition pipeline, store it as a
// wavelet-transformed immersidata cube, ask off-line analytical queries,
// and recognise a hand motion online.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"aims/internal/core"
	"aims/internal/sensors"
	"aims/internal/stream"
	"aims/internal/synth"
)

func main() {
	sys := core.New(core.Config{}) // defaults: 512 time buckets × 128 value bins

	// 1. Acquisition: a simulated 28-sensor CyberGlove+Polhemus rig at the
	// 100 Hz clock of §2.2, captured through the two-goroutine
	// double-buffering pipeline of §3.1.
	dev := sensors.NewDevice(sensors.GloveSpecs(), sensors.DefaultClock, 1, 7)
	src := &stream.FuncSource{Rate: sensors.DefaultClock, N: 3000, Fn: dev.Frame}
	frames, stats := sys.Acquire(src)
	fmt.Printf("acquired %d frames (%d flushes, %d dropped)\n",
		stats.Stored, stats.Flushes, stats.Dropped)

	// 2. Storage: quantise into the (channel, time, value) cube and
	// populate the ProPolyne engine. Basis per dimension is chosen by the
	// hybrid cost model.
	store, err := sys.BuildStore(frames)
	if err != nil {
		log.Fatal(err)
	}
	for d, b := range store.Engine.Bases {
		name := "standard"
		if !b.Standard {
			name = b.Filter.Name
		}
		fmt.Printf("dimension %d basis: %s\n", d, name)
	}

	// 3. Off-line query and analysis: exact, then progressive/approximate.
	avg, _, err := store.AverageValue(5, 0, 30) // index middle joint
	if err != nil {
		log.Fatal(err)
	}
	vr, _, err := store.VarianceValue(5, 0, 30)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sensor 5 over 30 s: mean %.2f°, variance %.2f\n", avg, vr)

	exact, err := store.CountSamples(5, 10, 20)
	if err != nil {
		log.Fatal(err)
	}
	est, bound, err := store.ApproximateCount(5, 10, 20, 300)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("count [10s,20s]: exact %.0f, 300-coefficient estimate %.1f (±%.2f guaranteed)\n",
		exact, est, bound)

	// 4. Online query and analysis: recognise signs from a stream.
	vocab := synth.Vocabulary(5, 42)
	rng := rand.New(rand.NewSource(43))
	refs := map[string][][][]float64{}
	for _, s := range vocab {
		refs[s.Name] = [][][]float64{s.Render(0.9, 0.1, rng), s.Render(1.1, 0.1, rng)}
	}
	templates := core.BuildTemplates(refs)

	sFrames, truth := synth.SignStream(vocab, synth.StreamOptions{
		Count: 5, Noise: 0.4, DurJitter: 0.25, GapTicks: 100, Seed: 44,
	})
	rec := sys.NewRecognizer(templates, sFrames[:20], synth.SignDims)
	fmt.Printf("streaming %d ticks containing %d signs...\n", len(sFrames), len(truth))
	for tick, fr := range sFrames {
		if d := rec.Feed(tick, fr); d != nil {
			fmt.Printf("  recognised %-9s at [%d,%d) (decision at tick %d)\n",
				d.Name, d.Start, d.End, d.DecisionTick)
		}
	}
	if d := rec.Flush(len(sFrames)); d != nil {
		fmt.Printf("  recognised %-9s at [%d,%d) (flush)\n", d.Name, d.Start, d.End)
	}
	fmt.Println("ground truth:")
	for _, seg := range truth {
		fmt.Printf("  %-9s at [%d,%d)\n", seg.Name, seg.Start, seg.End)
	}
}
