// Storage subsystem walkthrough (§3.2): lay a wavelet-transformed signal
// onto a simulated block device under the error-tree tiling allocation,
// watch point-query dependency paths hit the 1+lg B utilisation regime,
// stream an append-only sensor signal through the incremental Haar
// transformer, and see an LRU buffer pool exploit the tiling's locality.
package main

import (
	"fmt"
	"math/rand"

	"aims/internal/disk"
	"aims/internal/sensors"
	"aims/internal/wavelet"
)

func main() {
	const n = 1 << 14
	const blockSize = 64

	// A real glove channel provides the signal.
	dev := sensors.NewDevice(sensors.GloveSpecs(), sensors.DefaultClock, 1, 5)
	signal := dev.Record(n)[5]

	// 1. Streaming acquisition: the Haar transform is maintained while the
	// samples arrive; detail coefficients are final the moment they appear.
	sh := wavelet.NewStreamingHaar()
	for i, v := range signal {
		sh.Push(v)
		if i == 1023 {
			fmt.Printf("after %d samples: %d finest-level details already final\n",
				i+1, sh.DetailCount(1))
		}
	}
	coeffs, size := sh.Finalize(0)
	fmt.Printf("stream finalised: %d coefficients (padded to %d)\n\n", len(coeffs), size)

	// 2. Allocation: tiling vs sequential under a point-query workload.
	tree := wavelet.NewErrorTree(size)
	tiling := disk.NewStore(coeffs, disk.NewTiling(size, blockSize), blockSize)
	sequential := disk.NewStore(coeffs, disk.NewSequential(size, blockSize), blockSize)
	rng := rand.New(rand.NewSource(9))

	var tilSum, seqSum float64
	const queries = 200
	for i := 0; i < queries; i++ {
		need := map[int]bool{}
		for _, p := range tree.PointPath(rng.Intn(size)) {
			need[p] = true
		}
		tilSum += tiling.MeasureUtilization(need).ItemsPerBlock
		seqSum += sequential.MeasureUtilization(need).ItemsPerBlock
	}
	fmt.Printf("point-query utilisation (items needed per fetched block, B=%d):\n", blockSize)
	fmt.Printf("  theoretical bound 1+lgB: %.1f\n", disk.UtilizationBound(blockSize))
	fmt.Printf("  error-tree tiling:       %.2f\n", tilSum/queries)
	fmt.Printf("  sequential layout:       %.2f\n\n", seqSum/queries)

	// 3. Buffer pool: the hot top-of-tree tiles make a tiny pool effective.
	for _, frames := range []int{4, 16} {
		pool := disk.NewCachedStore(disk.NewStore(coeffs, disk.NewTiling(size, blockSize), blockSize), frames)
		rng := rand.New(rand.NewSource(10))
		for i := 0; i < 500; i++ {
			pool.Fetch(tree.PointPath(rng.Intn(size)))
		}
		fmt.Printf("LRU pool of %2d frames: hit rate %.0f%% (%d device reads avoided)\n",
			frames, 100*pool.HitRate(), pool.Hits)
	}
}
