// The Fig. 4 demo analogue: progressive and approximate range-aggregate
// queries over a multidimensional "atmospheric" dataset. The cube is
// wavelet-transformed, laid out on a simulated block device under the
// error-tree tiling allocation, and queries stream their answers
// progressively as the most important blocks arrive.
package main

import (
	"fmt"
	"log"
	"math"

	"aims/internal/propolyne"
	"aims/internal/synth"
)

func main() {
	dims := []int{256, 256}
	fmt.Printf("building a %dx%d atmospheric cube...\n", dims[0], dims[1])
	cube := synth.SmoothCube(dims, 99)

	eng, err := propolyne.New(cube, dims, 0) // Haar for block tiling
	if err != nil {
		log.Fatal(err)
	}

	q := propolyne.Query{Lo: []int{30, 60}, Hi: []int{200, 230}}
	exact, st, err := eng.Exact(q)
	if err != nil {
		log.Fatal(err)
	}
	cells := (q.Hi[0] - q.Lo[0] + 1) * (q.Hi[1] - q.Lo[1] + 1)
	fmt.Printf("range SUM over %d cells: %.1f (touched %d wavelet coefficients)\n\n",
		cells, exact, st.QueryCoeffs)

	// Progressive, coefficient by coefficient.
	fmt.Println("progressive evaluation (largest query coefficients first):")
	steps, _, err := eng.Progressive(q, 8)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range steps {
		relErr := math.Abs(s.Estimate-exact) / math.Abs(exact)
		fmt.Printf("  %4d coeffs: estimate %12.1f  rel.err %.5f  guaranteed ±%.1f\n",
			s.Coefficients, s.Estimate, relErr, s.ErrorBound)
	}

	// Block-level: the same query against the simulated disk.
	store, err := eng.NewBlockStore(16)
	if err != nil {
		log.Fatal(err)
	}
	blockSteps, _, err := eng.ProgressiveByBlocks(q, store)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nblock-level progressive I/O (%d blocks needed in total):\n", len(blockSteps))
	for i, s := range blockSteps {
		if i%4 == 0 || i == len(blockSteps)-1 {
			relErr := math.Abs(s.Estimate-exact) / math.Abs(exact)
			fmt.Printf("  after %2d block reads: estimate %12.1f  rel.err %.5f\n",
				s.BlocksFetched, s.Estimate, relErr)
		}
	}
	fmt.Printf("device stats: %d block reads, %d items\n\n",
		store.Stats().BlockReads, store.Stats().ItemsRead)

	// Statistical aggregates, the MOLAP workload of §3.3: a degree-2 engine
	// over a tuple relation (x, y, measure).
	mdims := []int{64, 64, 64}
	stat := make([]float64, 64*64*64)
	for x := 0; x < 64; x++ {
		for y := 0; y < 64; y++ {
			m := int(32 + 20*math.Sin(float64(x)/9)*math.Cos(float64(y)/11))
			stat[(x*64+y)*64+m]++
		}
	}
	seng, err := propolyne.New(stat, mdims, 2)
	if err != nil {
		log.Fatal(err)
	}
	box := propolyne.Box{Lo: []int{8, 8, 0}, Hi: []int{55, 55, 63}}
	cnt, _ := seng.Count(box)
	avg, _, _ := seng.Average(box, 2)
	vr, _, _ := seng.Variance(box, 2)
	cv, _, _ := seng.Covariance(box, 0, 2)
	fmt.Println("statistical aggregates in the wavelet domain (measure = dim 2):")
	fmt.Printf("  COUNT    = %.0f\n", cnt)
	fmt.Printf("  AVERAGE  = %.3f\n", avg)
	fmt.Printf("  VARIANCE = %.3f\n", vr)
	fmt.Printf("  COV(x,m) = %.3f\n", cv)
}
