// The ADHD Virtual-Classroom study (§2.1): generate a cohort, record each
// subject's tracker streams into the immersidata store, run the off-line
// analytical queries the psychologists ask — "which distraction was around
// when a child missed a question?", response-time statistics, motion
// correlations — and finally the automatic diagnosis: an SVM over tracker
// motion speed.
package main

import (
	"fmt"
	"log"

	"aims/internal/classify"
	"aims/internal/core"
	"aims/internal/events"
	"aims/internal/synth"
)

// sessionLog converts a generated session's annotations into the event
// store the analysts query against.
func sessionLog(sess synth.Session) *events.Log {
	l := events.NewLog()
	for _, d := range sess.Distractions {
		l.Add(events.Event{
			Start: float64(d.Tick) / sess.Rate,
			End:   float64(d.Tick+d.Duration) / sess.Rate,
			Kind:  "distraction:" + d.Kind,
		})
		l.Add(events.Event{
			Start: float64(d.Tick) / sess.Rate,
			End:   float64(d.Tick+d.Duration) / sess.Rate,
			Kind:  "distraction",
		})
	}
	for i, r := range sess.Responses {
		t := float64(sess.Stimuli[r.Stimulus].Tick) / sess.Rate
		kind := "hit"
		if r.FalseAlarm {
			kind = "false-alarm"
		} else if !r.Hit {
			kind = "miss"
		}
		l.Add(events.Event{Start: t, End: t, Kind: kind,
			Payload: map[string]float64{"stimulus": float64(i)}})
	}
	return l
}

func main() {
	const cohortSize = 60
	const sessionTicks = 3000 // 30 s at 100 Hz

	cohort := synth.NewCohort(cohortSize, 0.5, 2026)
	fmt.Printf("generated cohort of %d subjects (half ADHD-diagnosed)\n\n", cohortSize)

	// --- One subject in depth: the query workload of §2.1.
	// Pick an ADHD subject with misses so the interval join has material.
	subj := cohort[0]
	var sess synth.Session
	for _, s := range cohort {
		sess = synth.GenerateSession(s, sessionTicks)
		if s.ADHD && sess.HitRate() < 1 {
			subj = s
			break
		}
	}
	sys := core.New(core.Config{TimeBuckets: 128, ValueBins: 64})
	store, err := sys.BuildStore(sess.Frames)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("subject %d (ADHD=%v): %d stimuli, %d distractions\n",
		subj.ID, subj.ADHD, len(sess.Stimuli), len(sess.Distractions))

	// "Which distraction was around when the child missed a question?" —
	// an interval join on the session's event log.
	evLog := sessionLog(sess)
	misses := len(evLog.Kind("miss"))
	joined := 0
	evLog.Join("miss", "distraction", func(miss, d events.Event) {
		joined++
		fmt.Printf("  missed target at t=%.1fs during a distraction [%.1fs,%.1fs)\n",
			miss.Start, d.Start, d.End)
	})
	fmt.Printf("  %d/%d misses coincided with a distraction\n", joined, misses)
	dur := float64(len(sess.Frames)) / sess.Rate
	fmt.Printf("  distractions covered %.1fs of the %.0fs session\n\n",
		evLog.CoverageWithin("distraction", 0, dur), dur)

	// "What is the average response time during the task?"
	fmt.Printf("  mean reaction time: %.0f ms, hit rate %.0f%%\n",
		sess.MeanReactionTicks()*1000/sess.Rate, 100*sess.HitRate())

	// Motion analytics straight from the wavelet-domain store: head-tracker
	// x-channel variance during the first distraction vs a quiet stretch.
	if len(sess.Distractions) > 0 {
		d := sess.Distractions[0]
		t0 := float64(d.Tick) / sess.Rate
		t1 := float64(d.Tick+d.Duration) / sess.Rate
		busy, _, err := store.VarianceValue(0, t0, t1)
		if err != nil {
			log.Fatal(err)
		}
		quiet, _, err := store.VarianceValue(0, 0, t0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  head-x variance during %q: %.5f vs %.5f before it\n\n",
			d.Kind, busy, quiet)
	}

	// --- Cohort-level diagnosis (the paper's 86 % SVM study) ---
	var features [][]float64
	var labels []int
	for _, s := range cohort {
		sess := synth.GenerateSession(s, sessionTicks)
		features = append(features, synth.MotionSpeedFeatures(sess))
		if s.ADHD {
			labels = append(labels, 1)
		} else {
			labels = append(labels, -1)
		}
	}
	for _, c := range []struct {
		name string
		mk   func() classify.Classifier
	}{
		{"linear SVM", func() classify.Classifier { return &classify.SVM{} }},
		{"naive bayes", func() classify.Classifier { return &classify.NaiveBayes{} }},
		{"decision stump", func() classify.Classifier { return &classify.Stump{} }},
	} {
		acc := classify.CrossValidate(c.mk, features, labels, 5, 3)
		fmt.Printf("%-15s 5-fold accuracy: %.1f%%\n", c.name, 100*acc)
	}
	fmt.Println("(paper reports 86% for the SVM on motion-speed features)")
}
