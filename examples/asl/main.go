// The ASL recognition study (§2.2): online, simultaneous isolation and
// recognition of American-Sign-Language-style hand motions from the
// continuous 28-sensor glove stream, using the weighted-sum SVD similarity
// and the information-accumulation heuristic.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"aims/internal/core"
	"aims/internal/svdstream"
	"aims/internal/synth"
)

func main() {
	const vocabSize = 10
	vocab := synth.Vocabulary(vocabSize, 314)
	fmt.Printf("vocabulary: %d signs, %d sensors per frame\n", vocabSize, synth.SignDims)

	// Enroll: three reference executions per sign (different speeds).
	rng := rand.New(rand.NewSource(315))
	refs := map[string][][][]float64{}
	for _, s := range vocab {
		refs[s.Name] = [][][]float64{
			s.Render(0.8, 0.1, rng),
			s.Render(1.0, 0.1, rng),
			s.Render(1.2, 0.1, rng),
		}
	}
	templates := core.BuildTemplates(refs)

	// A signing session: 25 signs, ±30 % duration variability, rest gaps.
	frames, truth := synth.SignStream(vocab, synth.StreamOptions{
		Count: 25, Noise: 0.4, DurJitter: 0.3, GapTicks: 100, Seed: 316,
	})
	fmt.Printf("session: %d ticks (%.1f s) containing %d signs\n\n",
		len(frames), float64(len(frames))/100, len(truth))

	sys := core.New(core.Config{})
	rec := sys.NewRecognizer(templates, frames[:20], synth.SignDims)

	var dets []svdstream.Detection
	for tick, fr := range frames {
		if d := rec.Feed(tick, fr); d != nil {
			dets = append(dets, *d)
		}
	}
	if d := rec.Flush(len(frames)); d != nil {
		dets = append(dets, *d)
	}

	// Score against ground truth.
	correct, matched := 0, 0
	used := make([]bool, len(dets))
	for _, seg := range truth {
		for i, d := range dets {
			if used[i] {
				continue
			}
			lo, hi := seg.Start, seg.End
			if d.Start > lo {
				lo = d.Start
			}
			if d.End < hi {
				hi = d.End
			}
			if hi-lo > (seg.End-seg.Start)/2 {
				used[i] = true
				matched++
				mark := "✗"
				if d.Name == seg.Name {
					correct++
					mark = "✓"
				}
				latency := d.DecisionTick - d.Start
				fmt.Printf("%s true %-9s [%4d,%4d)  detected %-9s [%4d,%4d)  decision after %3d ticks\n",
					mark, seg.Name, seg.Start, seg.End, d.Name, d.Start, d.End, latency)
				break
			}
		}
	}
	fmt.Printf("\nisolation: %d/%d segments matched; recognition: %d/%d correct\n",
		matched, len(truth), correct, matched)

	// --- Historical queries over the *stored* session (§3.4.1 port) ---
	// Index a few channels as pairwise moment cubes; any past window's
	// motion signature is then a batch of wavelet-domain range-sums.
	fmt.Println("\nindexing the stored session for historical motion queries...")
	mi, err := core.NewMotionIndex(frames, core.MotionIndexConfig{
		Channels: []int{0, 1, 2, 3},
	})
	if err != nil {
		log.Fatal(err)
	}
	qTemplates := map[string]svdstream.Signature{}
	for _, s := range vocab {
		var agg [][]float64
		for k := 0; k < 3; k++ {
			exec := s.Render(0.8+0.2*float64(k), 0.1, rng)
			m := svdstream.MomentMatrix(mi.QuantizeFrames(exec))
			if agg == nil {
				agg = m
			} else {
				for i := range m {
					for j := range m[i] {
						agg[i][j] += m[i][j]
					}
				}
			}
		}
		qTemplates[s.Name] = svdstream.SignatureFromMoments(agg)
	}
	histCorrect := 0
	probe := truth
	if len(probe) > 5 {
		probe = probe[:5]
	}
	for _, seg := range probe {
		t0 := float64(seg.Start) / 100
		t1 := float64(seg.End-1) / 100
		name, sim, err := mi.NearestSignature(t0, t1, qTemplates, 4)
		if err != nil {
			log.Fatal(err)
		}
		mark := "✗"
		if name == seg.Name {
			histCorrect++
			mark = "✓"
		}
		fmt.Printf("%s \"what sign occurred in [%.1fs,%.1fs]?\" → %s (similarity %.3f, true %s)\n",
			mark, t0, t1, name, sim, seg.Name)
	}
	fmt.Printf("historical recognition: %d/%d — computed purely from wavelet-domain range-sums\n",
		histCorrect, len(probe))
}
