module aims

go 1.22
