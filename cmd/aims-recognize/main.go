// Command aims-recognize runs the online subsystem over a synthetic ASL
// session: enroll a vocabulary, stream a signing session, and report each
// isolation/recognition event as it happens (§3.4).
//
//	aims-recognize -vocab 10 -signs 20 -noise 0.5 -jitter 0.3
package main

import (
	"flag"
	"fmt"
	"math/rand"

	"aims/internal/core"
	"aims/internal/synth"
)

func main() {
	vocabSize := flag.Int("vocab", 10, "vocabulary size")
	signs := flag.Int("signs", 20, "signs in the session")
	noise := flag.Float64("noise", 0.4, "sensor noise stddev")
	jitter := flag.Float64("jitter", 0.3, "duration variability (fraction)")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	vocab := synth.Vocabulary(*vocabSize, *seed)
	rng := rand.New(rand.NewSource(*seed + 1))
	refs := map[string][][][]float64{}
	for _, s := range vocab {
		refs[s.Name] = [][][]float64{
			s.Render(0.8, 0.1, rng), s.Render(1.0, 0.1, rng), s.Render(1.2, 0.1, rng),
		}
	}
	templates := core.BuildTemplates(refs)

	frames, truth := synth.SignStream(vocab, synth.StreamOptions{
		Count: *signs, Noise: *noise, DurJitter: *jitter, GapTicks: 100, Seed: *seed + 2,
	})
	fmt.Printf("streaming %d ticks (%d signs, noise σ=%.1f, duration ±%.0f%%)\n",
		len(frames), len(truth), *noise, *jitter*100)

	sys := core.New(core.Config{})
	rec := sys.NewRecognizer(templates, frames[:20], synth.SignDims)
	matched, correct := 0, 0
	emit := func(name string, start, end, decision int) {
		for _, seg := range truth {
			lo, hi := seg.Start, seg.End
			if start > lo {
				lo = start
			}
			if end < hi {
				hi = end
			}
			if hi-lo > (seg.End-seg.Start)/2 {
				matched++
				mark := "✗"
				if name == seg.Name {
					correct++
					mark = "✓"
				}
				fmt.Printf("%s t=%5.1fs  %-9s  (true %-9s, decided %d ticks in)\n",
					mark, float64(end)/100, name, seg.Name, decision-start)
				return
			}
		}
		fmt.Printf("? t=%5.1fs  %-9s  (no overlapping truth)\n", float64(end)/100, name)
	}
	for tick, fr := range frames {
		if d := rec.Feed(tick, fr); d != nil {
			emit(d.Name, d.Start, d.End, d.DecisionTick)
		}
	}
	if d := rec.Flush(len(frames)); d != nil {
		emit(d.Name, d.Start, d.End, d.DecisionTick)
	}
	fmt.Printf("\nisolated %d/%d signs, recognised %d/%d correctly\n",
		matched, len(truth), correct, matched)
}
