package main

import (
	"bufio"
	"math"
	"os/exec"
	"path/filepath"
	"regexp"
	"syscall"
	"testing"
	"time"

	"aims/internal/core"
	"aims/internal/stream"
	"aims/internal/wire"
)

var listenRe = regexp.MustCompile(`listening on (\S+)`)

// startServerProc launches the built binary and blocks until it logs its
// bound address.
func startServerProc(t *testing.T, bin string, args ...string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			t.Logf("server: %s", line)
			if m := listenRe.FindStringSubmatch(line); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return cmd, addr
	case <-time.After(15 * time.Second):
		cmd.Process.Kill()
		t.Fatal("server never reported its listen address")
		return nil, ""
	}
}

func kill9Frames(n, channels int, rate float64) []stream.Frame {
	out := make([]stream.Frame, n)
	for i := range out {
		vals := make([]float64, channels)
		for c := range vals {
			vals[c] = 40*math.Sin(float64(i)*0.07+float64(c)) + float64(c)
		}
		out[i] = stream.Frame{T: float64(i) / rate, Values: vals}
	}
	return out
}

// TestKill9RecoverAnswersIdentically is the crash-recovery integration
// test: ingest against a real aims-server process with journaling on,
// SIGKILL it mid-stream with batches still in flight, restart it over the
// same data dir, and require the resumed session to answer exact and
// approximate queries identically to an uninterrupted store holding the
// same recovered frames.
func TestKill9RecoverAnswersIdentically(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and SIGKILLs a real server process")
	}
	const (
		channels = 4
		rate     = 100.0
		horizon  = 4000
		durable  = 2000 // flushed before the kill: guaranteed recovered
		inflight = 500  // streamed after the flush, unacked at the kill
	)

	tmp := t.TempDir()
	bin := filepath.Join(tmp, "aims-server")
	if out, err := exec.Command("go", "build", "-o", bin, "aims/cmd/aims-server").CombinedOutput(); err != nil {
		t.Fatalf("building server: %v\n%s", err, out)
	}
	dataDir := filepath.Join(tmp, "data")
	serverArgs := []string{
		"-addr", "127.0.0.1:0", "-data-dir", dataDir, "-fsync", "batch",
		"-snapshot-frames", "1000", "-buckets", "64", "-bins", "32", "-metrics", "0",
	}

	all := kill9Frames(durable+inflight, channels, rate)
	mins := make([]float64, channels)
	maxs := make([]float64, channels)
	for c := range mins {
		mins[c], maxs[c] = -50, 50
	}
	hello := wire.Hello{Rate: rate, HorizonTicks: horizon, Name: "kill9 glove", Mins: mins, Maxs: maxs}

	srv1, addr := startServerProc(t, bin, serverArgs...)
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Hello(hello); err != nil {
		t.Fatal(err)
	}
	c.Window = 4
	for at := 0; at < durable; at += 100 {
		if err := c.SendBatch(all[at : at+100]); err != nil {
			t.Fatal(err)
		}
	}
	if stored, err := c.Flush(); err != nil || stored != durable {
		t.Fatalf("flush: stored=%d err=%v, want %d", stored, err, durable)
	}
	// Keep streaming so the kill lands mid-ingest with unacked batches.
	for at := durable; at < durable+inflight; at += 50 {
		if err := c.SendBatch(all[at : at+50]); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv1.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	srv1.Wait()
	c.Abort()

	srv2, addr2 := startServerProc(t, bin, serverArgs...)
	defer func() {
		srv2.Process.Kill()
		srv2.Wait()
	}()
	c2, err := wire.Dial(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Abort()
	w, err := c2.Hello(hello)
	if err != nil {
		t.Fatal(err)
	}
	if w.Code != wire.CodeResumed {
		t.Fatalf("reconnect code = %v, want resumed", w.Code)
	}

	r, err := c2.Query(wire.Query{Kind: wire.QueryCount, Channel: 0, T0: 0, T1: horizon / rate})
	if err != nil {
		t.Fatal(err)
	}
	recovered := int(r.Value + 0.5)
	if recovered < durable || recovered > durable+inflight {
		t.Fatalf("recovered %d frames, want between %d and %d", recovered, durable, durable+inflight)
	}
	t.Logf("recovered %d frames (%d flushed + %d of %d in flight)", recovered, durable, recovered-durable, inflight)

	// The uninterrupted baseline: the same recovered prefix appended
	// directly into a local store of the same shape.
	mirror, err := core.NewLiveStore(mins, maxs, core.LiveStoreConfig{
		TimeBuckets: 64, ValueBins: 32, Rate: rate, HorizonTicks: horizon,
	})
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := mirror.AppendFrames(all[:recovered]); n != recovered {
		t.Fatalf("mirror accepted %d frames, want %d", n, recovered)
	}
	for ch := 0; ch < channels; ch++ {
		for _, span := range [][2]float64{{0, horizon / rate}, {3, 11}, {0.5, 19.5}} {
			want, err := mirror.CountSamples(ch, span[0], span[1])
			if err != nil {
				t.Fatal(err)
			}
			r, err := c2.Query(wire.Query{Kind: wire.QueryCount, Channel: uint16(ch), T0: span[0], T1: span[1]})
			if err != nil {
				t.Fatal(err)
			}
			if r.Value != want {
				t.Fatalf("ch %d count over %v: recovered %v, baseline %v", ch, span, r.Value, want)
			}
			wantAvg, okAvg, err := mirror.AverageValue(ch, span[0], span[1])
			if err != nil {
				t.Fatal(err)
			}
			ra, err := c2.Query(wire.Query{Kind: wire.QueryAverage, Channel: uint16(ch), T0: span[0], T1: span[1]})
			if err != nil {
				t.Fatal(err)
			}
			if ra.OK != okAvg || math.Abs(ra.Value-wantAvg) > 1e-9 {
				t.Fatalf("ch %d average over %v: recovered %v (ok=%v), baseline %v (ok=%v)",
					ch, span, ra.Value, ra.OK, wantAvg, okAvg)
			}
		}
		// Approximate (truncated-coefficient) answers must match too: the
		// recovered wavelet synopsis is the same cube as the baseline's.
		est, err := c2.Query(wire.Query{Kind: wire.QueryApproxCount, Channel: uint16(ch), T0: 1, T1: 17, Arg: 8})
		if err != nil {
			t.Fatal(err)
		}
		wantEst, wantBound, err := mirror.ApproximateCount(ch, 1, 17, 8)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(est.Value-wantEst) > 1e-9 || math.Abs(est.Bound-wantBound) > 1e-9 {
			t.Fatalf("ch %d approx count: recovered %v±%v, baseline %v±%v",
				ch, est.Value, est.Bound, wantEst, wantBound)
		}
	}
}
