// Command aims-server runs the AIMS middle tier: a concurrent server
// immersive client devices register with, stream frame batches to, and
// query while their session is live (the paper's Fig. 2 three-tier
// architecture, tier two). It speaks the wire protocol over plain TCP
// and/or WebSocket (browser-resident devices) — list endpoints with
// -listen.
//
//	aims-server -addr :7009 -policy block -metrics 10s -admin :6060
//	aims-server -listen tcp://:7009,ws://:7010
//
// The -admin listener serves the observability plane: /metrics
// (Prometheus text), /healthz (readiness, reports draining), /sessions
// (per-session JSON), /fleet (device classes with live session counts),
// /tracez (slowest sampled pipeline traces, ?id= for one trace by its
// distributed trace ID), /slowlog (the always-on slow-query log; tune the
// threshold with -slow-query) and /debug/pprof. Stop the server with
// SIGINT/SIGTERM; shutdown drains every session's in-flight batches
// before exiting.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"aims/internal/core"
	"aims/internal/journal"
	"aims/internal/server"
)

func main() {
	var (
		addr    = flag.String("addr", ":7009", "listen address (TCP; ignored when -listen is set)")
		listen  = flag.String("listen", "", "comma-separated listen endpoints, e.g. tcp://:7009,ws://:7010 — serve TCP and WebSocket devices side by side (empty: -addr over TCP)")
		queue   = flag.Int("queue", 8192, "per-session ingest queue depth (frames)")
		acqBuf  = flag.Int("acquire-buffer", 256, "double-buffering batch size (frames)")
		idle    = flag.Duration("idle", 30*time.Second, "idle-session eviction timeout")
		hbeat   = flag.Duration("heartbeat", 0, "expected device heartbeat interval; pinging sessions are evicted after ~2.5 missed beats (0 = default 5s, negative disables)")
		wtmo    = flag.Duration("write-timeout", 0, "per-message socket write deadline (0 = default 10s, negative disables)")
		retain  = flag.Duration("retain", 0, "how long an ungracefully disconnected session is parked awaiting reconnect (0 = default 60s, negative disables)")
		policy  = flag.String("policy", "block", "backpressure policy: block|shed")
		buckets = flag.Int("buckets", 256, "live-store time buckets (power of two)")
		bins    = flag.Int("bins", 64, "live-store value bins (power of two)")
		metrics = flag.Duration("metrics", 10*time.Second, "metrics print interval (0 disables)")
		drain   = flag.Duration("drain", 10*time.Second, "graceful shutdown drain timeout")
		quiet   = flag.Bool("quiet", false, "suppress per-session logs")
		admin   = flag.String("admin", "", "admin plane listen address, e.g. :6060 (empty disables)")
		tsample = flag.Int("trace-sample", 0, "trace one in N batches/queries (0 = default 256, negative disables)")
		slowQ   = flag.Duration("slow-query", 0, "slow-query log threshold (0 = default 100ms, negative disables)")

		fleetWorkers = flag.Int("fleet-workers", 0, "fleet query scatter pool width (0 = default 16)")
		fleetTimeout = flag.Duration("fleet-timeout", 0, "default fleet query deadline (0 = default 5s)")
		planCache    = flag.Int("plan-cache", 0, "compiled query-plan cache budget in entry units (0 = default ~1M, negative disables)")

		dataDir    = flag.String("data-dir", "", "durability directory: per-session WAL + snapshots (empty: memory-only)")
		fsync      = flag.String("fsync", "batch", "WAL fsync policy: batch|interval|off")
		fsyncEvery = flag.Duration("fsync-interval", 100*time.Millisecond, "deferred fsync period for -fsync interval")
		segBytes   = flag.Int64("segment-bytes", 8<<20, "WAL segment rotation size (bytes)")
		snapEvery  = flag.Int("snapshot-frames", 65536, "snapshot a session every N frames (negative: only at close)")
		durability = flag.String("durability", "block", "on journal write failure: block|shed")
	)
	flag.Parse()

	pol, err := server.ParsePolicy(*policy)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fpol, err := journal.ParseFsyncPolicy(*fsync)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	dpol, err := journal.ParseDegradePolicy(*durability)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	logf := log.Printf
	if *quiet {
		logf = func(string, ...interface{}) {}
	}
	srv := server.New(server.Config{
		QueueFrames:   *queue,
		AcquireBuffer: *acqBuf,
		IdleTimeout:   *idle,
		Heartbeat:     *hbeat,
		WriteTimeout:  *wtmo,
		RetainTimeout: *retain,
		Policy:        pol,
		TraceSample:   *tsample,
		SlowQuery:     *slowQ,
		FleetWorkers:  *fleetWorkers,
		FleetTimeout:  *fleetTimeout,
		PlanCacheCost: *planCache,
		Store: core.LiveStoreConfig{
			TimeBuckets: *buckets,
			ValueBins:   *bins,
		},
		Journal: journal.Config{
			Dir:            *dataDir,
			Fsync:          fpol,
			FsyncInterval:  *fsyncEvery,
			SegmentBytes:   *segBytes,
			SnapshotFrames: *snapEvery,
			Degrade:        dpol,
		},
		Logf: logf,
	})

	if *dataDir != "" {
		n, err := srv.RecoverSessions()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		log.Printf("durability on: data-dir=%s fsync=%s recovered=%d sessions", *dataDir, fpol, n)
	}

	endpoints := []string{*addr}
	if *listen != "" {
		endpoints = strings.Split(*listen, ",")
	}
	var bounds []string
	for _, ep := range endpoints {
		ep = strings.TrimSpace(ep)
		if ep == "" {
			continue
		}
		bound, err := srv.Start(ep)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		bounds = append(bounds, bound.String())
	}
	if len(bounds) == 0 {
		fmt.Fprintln(os.Stderr, "no listen endpoints")
		os.Exit(1)
	}
	log.Printf("aims-server listening on %s (policy=%s queue=%d idle=%s)", strings.Join(bounds, " "), *policy, *queue, *idle)

	// The admin plane lives on its own listener so scrapes and profiles
	// never contend with the wire protocol, and stays up through the drain
	// so /healthz can report the draining state.
	var adminSrv *http.Server
	if *admin != "" {
		ln, err := net.Listen("tcp", *admin)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		adminSrv = &http.Server{Handler: srv.AdminHandler()}
		go func() {
			if err := adminSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
				log.Printf("admin: %v", err)
			}
		}()
		log.Printf("admin plane on http://%s (/metrics /healthz /sessions /fleet /tracez /slowlog /debug/pprof)", ln.Addr())
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)

	if *metrics > 0 {
		go func() {
			t := time.NewTicker(*metrics)
			defer t.Stop()
			for range t.C {
				log.Printf("metrics: %s", srv.Metrics())
			}
		}()
	}

	<-stop
	log.Printf("shutting down: draining sessions (timeout %s)", *drain)
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("shutdown: %v", err)
		os.Exit(1)
	}
	if adminSrv != nil {
		adminSrv.Close()
	}
	log.Printf("final metrics: %s", srv.Metrics())
}
