// Command aims-bench regenerates every experiment table of the AIMS
// reproduction (T1, E1–E12 in DESIGN.md). Run it with no arguments for the
// full suite, or pass experiment IDs to run a subset:
//
//	aims-bench            # everything
//	aims-bench E3 E7      # just those two
package main

import (
	"fmt"
	"os"
	"strings"
	"time"

	"aims/internal/experiments"
)

func main() {
	want := map[string]bool{}
	for _, a := range os.Args[1:] {
		want[strings.ToUpper(a)] = true
	}
	start := time.Now()
	ran := 0
	for _, r := range experiments.All() {
		if len(want) > 0 && !want[r.ID] {
			continue
		}
		fmt.Printf("\n### %s — %s\n", r.ID, r.Claim)
		t0 := time.Now()
		r.Run(os.Stdout)
		fmt.Printf("  [%s completed in %s]\n", r.ID, time.Since(t0).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiments matched %v; known IDs:", os.Args[1:])
		for _, r := range experiments.All() {
			fmt.Fprintf(os.Stderr, " %s", r.ID)
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(2)
	}
	fmt.Printf("\n%d experiment(s) in %s\n", ran, time.Since(start).Round(time.Millisecond))
}
