// Command aims-bench regenerates every experiment table of the AIMS
// reproduction (T1, E1–E14 in DESIGN.md). Run it with no arguments for the
// full suite, or pass experiment IDs to run a subset:
//
//	aims-bench            # everything
//	aims-bench E3 E7      # just those two
//	aims-bench -json E3   # machine-readable results on stdout
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"aims/internal/experiments"
)

// result is one experiment's machine-readable record.
type result struct {
	ID     string  `json:"id"`
	Claim  string  `json:"claim"`
	WallMS float64 `json:"wall_ms"`
	Output string  `json:"output"`
}

// report is the top-level -json document.
type report struct {
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	Started   string   `json:"started"`
	WallMS    float64  `json:"wall_ms"`
	Results   []result `json:"results"`
}

func main() {
	jsonOut := flag.Bool("json", false, "emit results as JSON on stdout (tables go into each result's output field)")
	flag.Parse()

	want := map[string]bool{}
	for _, a := range flag.Args() {
		want[strings.ToUpper(a)] = true
	}
	start := time.Now()
	rep := report{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Started:   start.UTC().Format(time.RFC3339),
	}
	ran := 0
	for _, r := range experiments.All() {
		if len(want) > 0 && !want[r.ID] {
			continue
		}
		ran++
		t0 := time.Now()
		if *jsonOut {
			var buf bytes.Buffer
			r.Run(&buf)
			rep.Results = append(rep.Results, result{
				ID: r.ID, Claim: r.Claim,
				WallMS: float64(time.Since(t0).Microseconds()) / 1000,
				Output: buf.String(),
			})
			continue
		}
		fmt.Printf("\n### %s — %s\n", r.ID, r.Claim)
		r.Run(os.Stdout)
		fmt.Printf("  [%s completed in %s]\n", r.ID, time.Since(t0).Round(time.Millisecond))
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiments matched %v; known IDs:", flag.Args())
		for _, r := range experiments.All() {
			fmt.Fprintf(os.Stderr, " %s", r.ID)
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(2)
	}
	rep.WallMS = float64(time.Since(start).Microseconds()) / 1000
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("\n%d experiment(s) in %s\n", ran, time.Since(start).Round(time.Millisecond))
}
