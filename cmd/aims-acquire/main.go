// Command aims-acquire runs the acquisition study interactively: it
// simulates a glove session, applies the four sampling policies of §3.1
// plus the compression baselines, and prints the bandwidth/accuracy
// comparison.
//
//	aims-acquire -seconds 60 -activity 1.5 -window 128
package main

import (
	"flag"
	"fmt"
	"os"

	"aims/internal/compress"
	"aims/internal/sampling"
	"aims/internal/sensors"
)

func main() {
	seconds := flag.Float64("seconds", 40, "session length in seconds")
	activity := flag.Float64("activity", 1, "motion activity scale (1 = normal)")
	window := flag.Int("window", 256, "adaptation window in ticks")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	ticks := int(*seconds * sensors.DefaultClock)
	if ticks < *window {
		fmt.Fprintln(os.Stderr, "session shorter than one adaptation window")
		os.Exit(2)
	}
	dev := sensors.NewDevice(sensors.GloveSpecs(), sensors.DefaultClock, *activity, *seed)
	rec := dev.Record(ticks)
	clean := sensors.NewDevice(sensors.GloveSpecs(), sensors.DefaultClock, *activity, *seed).RecordClean(ticks)
	raw := len(rec) * ticks * sensors.BytesPerSample

	fmt.Printf("session: %d sensors × %d ticks (%.0f s) = %d raw bytes\n\n",
		len(rec), ticks, *seconds, raw)
	cfg := sampling.Config{DeviceRate: sensors.DefaultClock, Window: *window}
	fmt.Printf("%-16s %12s %8s %14s\n", "technique", "bytes", "vs raw", "recon MSE")
	for _, r := range sampling.All(rec, cfg) {
		fmt.Printf("%-16s %12d %8.3f %14.5f\n",
			r.Policy, r.Bytes, float64(r.Bytes)/float64(raw), r.MSE(clean, sensors.DefaultClock))
	}

	var huff, adpcm int
	for _, ch := range rec {
		q := compress.QuantizerFor(ch, 8)
		levels := q.QuantizeAll(ch)
		bytes := make([]byte, len(levels))
		for i, l := range levels {
			bytes[i] = byte(l)
		}
		huff += compress.HuffmanSize(bytes)
		adpcm += len(compress.NewADPCM(ch).Encode(ch))
	}
	fmt.Printf("%-16s %12d %8.3f %14s\n", "huffman-8bit", huff, float64(huff)/float64(raw), "quantisation")
	fmt.Printf("%-16s %12d %8.3f %14s\n", "adpcm-4bit", adpcm, float64(adpcm)/float64(raw), "quantisation")
}
