// Command aims-load is a closed-loop load generator for the AIMS middle
// tier: it drives N concurrent synthetic glove sessions (the 28-channel
// CyberGlove+Polhemus rig of internal/sensors) against an aims-server,
// interleaves live range-aggregate queries, and prints aggregate
// throughput and query-latency statistics.
//
//	aims-load -sessions 32                  # in-process loopback server
//	aims-load -addr host:7009 -sessions 8   # external server
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"aims/internal/core"
	"aims/internal/sensors"
	"aims/internal/server"
	"aims/internal/stream"
	"aims/internal/wire"
)

type sessionResult struct {
	stored     uint64
	shedB      uint64
	shedF      uint64
	bytesIn    uint64
	bytesOut   uint64
	reconnects uint64
	replayed   uint64
	latencies  []time.Duration
	err        error
}

func main() {
	var (
		addr       = flag.String("addr", "", "server address (empty: start an in-process loopback server)")
		sessions   = flag.Int("sessions", 32, "concurrent device sessions")
		frames     = flag.Int("frames", 20000, "frames per session")
		batch      = flag.Int("batch", 256, "frames per batch")
		window     = flag.Int("window", 4, "max in-flight batches per session")
		queryEvery = flag.Int("query-every", 64, "issue one live query every N batches (0 disables)")
		policy     = flag.String("policy", "block", "backpressure policy for the in-process server: block|shed")
		queue      = flag.Int("queue", 8192, "in-process server queue depth (frames)")
		rate       = flag.Float64("rate", sensors.DefaultClock, "device clock (Hz) stamped on frames")
		verbose    = flag.Bool("v", false, "per-session output")
		scrape     = flag.Duration("scrape", 0, "scrape /metrics every interval and print key series (0 disables)")
		scrapeURL  = flag.String("scrape-url", "", "admin /metrics URL for -scrape (default: in-process admin plane on the loopback server)")
		sessPrefix = flag.String("session-prefix", "aims-load", "session name prefix (names are prefix-N)")
		class      = flag.String("class", "cyberglove", "device class sessions register under (fleet query scope)")
		pace       = flag.Duration("pace", 0, "sleep between batches (stretches the run, e.g. for crash tests)")
		verify     = flag.Bool("verify", false, "reconnect to each session by name and report recovered frames instead of loading")
		verifyMin  = flag.Uint64("verify-min", 1, "minimum recovered frames per session for -verify to pass")
		verifyEq   = flag.Bool("verify-exact", false, "with -verify: require recovered frames == -frames exactly (exactly-once check)")
		retry      = flag.Int("retry", 0, "reconnect attempts per outage: 0 = plain client (fail on first error), -1 = unlimited")
		maxBackoff = flag.Duration("max-backoff", 2*time.Second, "reconnect backoff cap for -retry (full-jitter exponential)")
		transportF = flag.String("transport", "tcp", "dial transport for -addr and the in-process server: tcp|ws (a URL scheme in -addr wins)")
	)
	flag.Parse()

	pol, err := server.ParsePolicy(*policy)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *verify && *addr == "" {
		fmt.Fprintln(os.Stderr, "-verify checks a restarted server: it needs -addr")
		os.Exit(2)
	}
	if *transportF != "tcp" && *transportF != "ws" {
		fmt.Fprintln(os.Stderr, "-transport must be tcp or ws")
		os.Exit(2)
	}

	// In-process loopback server unless pointed at a real one. The target
	// endpoint carries the transport scheme, so every dial below — plain,
	// resilient or verify — rides the chosen transport.
	var srv *server.Server
	target := *addr
	if target == "" {
		srv = server.New(server.Config{
			QueueFrames: *queue,
			Policy:      pol,
			Store:       core.LiveStoreConfig{},
		})
		bound, err := srv.Start(*transportF + "://127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		target = bound.String()
		fmt.Printf("in-process server on %s (policy=%s queue=%d)\n", target, *policy, *queue)
	} else if !strings.Contains(target, "://") && *transportF != "tcp" {
		target = *transportF + "://" + target
	}

	// Client-side observability: poll the admin /metrics endpoint while the
	// load runs and print the headline series. With a loopback server we
	// stand up its admin plane on an ephemeral port; against a remote
	// server the operator points -scrape-url at its -admin listener.
	var stopScrape func()
	if *scrape > 0 {
		url := *scrapeURL
		if url == "" {
			if srv == nil {
				fmt.Fprintln(os.Stderr, "-scrape against a remote server needs -scrape-url (its -admin address)")
				os.Exit(2)
			}
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			go http.Serve(ln, srv.AdminHandler())
			url = fmt.Sprintf("http://%s/metrics", ln.Addr())
			fmt.Printf("admin plane on %s\n", url)
		}
		stopScrape = startScraper(url, *scrape)
	}

	// Pregenerate one synthetic glove recording all sessions replay: the
	// generator must outrun the server, so signal synthesis happens once.
	specs := sensors.GloveSpecs()
	dev := sensors.NewDevice(specs, *rate, 1.0, 1)
	pregenN := *frames
	if pregenN > 4096 {
		pregenN = 4096
	}
	pregen := make([][]float64, pregenN)
	for i := range pregen {
		pregen[i] = dev.Frame(i)
	}
	mins := make([]float64, len(specs))
	maxs := make([]float64, len(specs))
	for c := range specs {
		mins[c], maxs[c] = pregen[0][c], pregen[0][c]
		for _, fr := range pregen {
			if fr[c] < mins[c] {
				mins[c] = fr[c]
			}
			if fr[c] > maxs[c] {
				maxs[c] = fr[c]
			}
		}
		// Margin so clamping stays rare if the replay wraps out of range.
		span := maxs[c] - mins[c]
		mins[c] -= 0.05 * span
		maxs[c] += 0.05 * span
	}

	if *verify {
		os.Exit(runVerify(target, *sessPrefix, *sessions, *rate, *frames, *verifyMin, *verifyEq, mins, maxs))
	}

	fmt.Printf("driving %d sessions × %d frames (%d channels, batch=%d, window=%d)\n",
		*sessions, *frames, len(specs), *batch, *window)

	results := make([]sessionResult, *sessions)
	start := time.Now()
	var wg sync.WaitGroup
	for s := 0; s < *sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			results[s] = runSession(s, target, *sessPrefix, *class, *rate, *frames, *batch, *window, *queryEvery, *pace, *retry, *maxBackoff, pregen, mins, maxs)
		}(s)
	}
	wg.Wait()
	wall := time.Since(start)
	if stopScrape != nil {
		stopScrape()
	}

	var stored, shedB, shedF, bytesIn, bytesOut, reconnects, replayed uint64
	var lats []time.Duration
	failed := 0
	for s, r := range results {
		if r.err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "session %d: %v\n", s, r.err)
			continue
		}
		stored += r.stored
		shedB += r.shedB
		shedF += r.shedF
		bytesIn += r.bytesIn
		bytesOut += r.bytesOut
		reconnects += r.reconnects
		replayed += r.replayed
		lats = append(lats, r.latencies...)
		if *verbose {
			fmt.Printf("  session %2d: stored=%d shed=%d/%d queries=%d\n", s, r.stored, r.shedB, r.shedF, len(r.latencies))
		}
	}

	sent := uint64(*sessions-failed) * uint64(*frames)
	fmt.Printf("\nwall=%s sent=%d stored=%d shed-batches=%d shed-frames=%d\n",
		wall.Round(time.Millisecond), sent, stored, shedB, shedF)
	fmt.Printf("throughput: %.0f frames/s aggregate (%.0f per session)\n",
		float64(sent)/wall.Seconds(), float64(sent)/wall.Seconds()/float64(*sessions))
	fmt.Printf("wire: %.1f MiB sent, %.1f MiB received (client side)\n",
		float64(bytesOut)/(1<<20), float64(bytesIn)/(1<<20))
	if *retry != 0 {
		fmt.Printf("resilience: reconnects=%d replayed-batches=%d\n", reconnects, replayed)
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		pct := func(p float64) time.Duration { return lats[int(p*float64(len(lats)-1))] }
		var total time.Duration
		for _, l := range lats {
			total += l
		}
		mean := total / time.Duration(len(lats))
		fmt.Printf("query latency (n=%d): p50=%s p95=%s p99=%s max=%s mean=%s\n",
			len(lats), pct(.50).Round(time.Microsecond), pct(.95).Round(time.Microsecond),
			pct(.99).Round(time.Microsecond), lats[len(lats)-1].Round(time.Microsecond),
			mean.Round(time.Microsecond))
		fmt.Printf("query throughput: %.0f queries/s aggregate\n", float64(len(lats))/wall.Seconds())
	}

	if srv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("server: %s\n", srv.Metrics())
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// loadClient is the slice of the client API the load loop needs; both the
// plain and the resilient client satisfy it.
type loadClient interface {
	SendBatch(frames []stream.Frame) error
	Query(q wire.Query) (wire.Result, error)
	Close() (wire.CloseAck, error)
}

func runSession(id int, target, prefix, class string, rate float64, frames, batchSize, window, queryEvery int, pace time.Duration, retry int, maxBackoff time.Duration, pregen [][]float64, mins, maxs []float64) sessionResult {
	var res sessionResult
	h := wire.Hello{
		Rate:         rate,
		HorizonTicks: uint32(frames),
		Name:         fmt.Sprintf("%s-%d", prefix, id),
		Class:        class,
		Mins:         mins,
		Maxs:         maxs,
	}
	var (
		c     loadClient
		abort func()
		plain *wire.Client
		rc    *wire.ResilientClient
	)
	if retry == 0 {
		var err error
		plain, err = wire.Dial(target)
		if err != nil {
			res.err = err
			return res
		}
		plain.Window = window
		if _, err = plain.Hello(h); err != nil {
			res.err = err
			plain.Abort()
			return res
		}
		c, abort = plain, func() { plain.Abort() }
	} else {
		var err error
		rc, _, err = wire.DialResilient(wire.ResilientConfig{
			Addr:        target,
			Window:      window,
			Heartbeat:   time.Second,
			MaxBackoff:  maxBackoff,
			MaxAttempts: retry,
		}, h)
		if err != nil {
			res.err = err
			return res
		}
		c, abort = rc, rc.Abort
	}

	rng := rand.New(rand.NewSource(int64(id) + 1))
	buf := make([]stream.Frame, 0, batchSize)
	batches := 0
	for tick := 0; tick < frames; {
		buf = buf[:0]
		for len(buf) < batchSize && tick < frames {
			buf = append(buf, stream.Frame{
				T:      float64(tick) / rate,
				Values: pregen[tick%len(pregen)],
			})
			tick++
		}
		if err := c.SendBatch(buf); err != nil {
			res.err = err
			abort()
			return res
		}
		batches++
		if pace > 0 {
			time.Sleep(pace)
		}
		if queryEvery > 0 && batches%queryEvery == 0 {
			q := wire.Query{
				Kind:    wire.QueryAverage,
				Channel: uint16(rng.Intn(len(mins))),
				T0:      0,
				T1:      float64(tick) / rate,
			}
			t0 := time.Now()
			if _, err := c.Query(q); err != nil {
				res.err = err
				abort()
				return res
			}
			res.latencies = append(res.latencies, time.Since(t0))
		}
	}
	ack, err := c.Close()
	if err != nil {
		res.err = err
		return res
	}
	res.stored = ack.Stored
	res.shedF = ack.Shed
	if plain != nil {
		res.shedB = plain.ShedBatches()
		res.bytesIn = plain.BytesIn()
		res.bytesOut = plain.BytesOut()
	}
	if rc != nil {
		res.reconnects = rc.Reconnects()
		res.replayed = rc.ReplayedBatches()
	}
	return res
}

// runVerify reconnects to every session by name after a server restart:
// each Hello must come back wire.CodeResumed (the server adopted the
// recovered state) and a count query over the full horizon must find at
// least minStored frames — or, with exact set, exactly the advertised
// frame count (the exactly-once acceptance check after a faulted run).
// Returns the process exit code.
func runVerify(target, prefix string, sessions int, rate float64, frames int, minStored uint64, exact bool, mins, maxs []float64) int {
	failed := 0
	for s := 0; s < sessions; s++ {
		name := fmt.Sprintf("%s-%d", prefix, s)
		c, err := wire.Dial(target)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: dial: %v\n", name, err)
			failed++
			continue
		}
		w, err := c.Hello(wire.Hello{
			Rate: rate, HorizonTicks: uint32(frames), Name: name, Mins: mins, Maxs: maxs,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: hello: %v\n", name, err)
			c.Abort()
			failed++
			continue
		}
		r, err := c.Query(wire.Query{Kind: wire.QueryCount, Channel: 0, T0: 0, T1: float64(frames) / rate})
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: count query: %v\n", name, err)
			c.Abort()
			failed++
			continue
		}
		recovered := uint64(r.Value + 0.5)
		resumed := w.Code == wire.CodeResumed
		fmt.Printf("%s: resumed=%v recovered=%d frames\n", name, resumed, recovered)
		switch {
		case !resumed || recovered < minStored:
			fmt.Fprintf(os.Stderr, "%s: verify failed (resumed=%v recovered=%d < %d)\n", name, resumed, recovered, minStored)
			failed++
		case exact && recovered != uint64(frames):
			fmt.Fprintf(os.Stderr, "%s: verify failed (recovered=%d != %d frames: lost or duplicated)\n", name, recovered, frames)
			failed++
		}
		c.Close()
	}
	if failed > 0 {
		return 1
	}
	return 0
}

// scrapeSeries are the headline series the -scrape ticker prints; anything
// else in the exposition is ignored.
var scrapeSeries = []string{
	"aims_sessions_active",
	"aims_ingest_frames_total",
	"aims_shed_frames_total",
	"aims_queue_depth",
	"aims_query_seconds_count",
}

// startScraper polls the Prometheus text endpoint at url every interval
// and prints the scrapeSeries values on one line. The returned func stops
// the ticker and prints one final scrape.
func startScraper(url string, interval time.Duration) func() {
	client := &http.Client{Timeout: 2 * time.Second}
	once := func() {
		vals, err := scrapeMetrics(client, url)
		if err != nil {
			fmt.Printf("scrape: %v\n", err)
			return
		}
		parts := make([]string, 0, len(scrapeSeries))
		for _, name := range scrapeSeries {
			if v, ok := vals[name]; ok {
				parts = append(parts, fmt.Sprintf("%s=%s", strings.TrimPrefix(name, "aims_"), v))
			}
		}
		fmt.Printf("scrape: %s\n", strings.Join(parts, " "))
	}
	done := make(chan struct{})
	stopped := make(chan struct{})
	go func() {
		defer close(stopped)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				once()
			case <-done:
				return
			}
		}
	}()
	return func() {
		close(done)
		<-stopped
		once()
	}
}

// scrapeMetrics fetches one Prometheus text exposition and returns the
// unlabeled sample values keyed by series name.
func scrapeMetrics(client *http.Client, url string) (map[string]string, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	vals := make(map[string]string)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// Bucket lines may carry an OpenMetrics exemplar suffix
		// (` # {trace_id="..."} value`); strip it before splitting off the
		// sample value or the exemplar would be read as the value.
		if ex := strings.Index(line, " # "); ex >= 0 {
			line = line[:ex]
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			continue
		}
		vals[line[:sp]] = line[sp+1:]
	}
	return vals, sc.Err()
}
