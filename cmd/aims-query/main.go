// Command aims-query builds an immersidata store from a simulated session
// and answers range-aggregate queries against it — the off-line query tier
// of AIMS (§3.3) as a CLI.
//
//	aims-query -seconds 60 -channel 5 -from 10 -to 30 -agg variance
//	aims-query -channel 3 -agg count -approx 200
//	aims-query -agg count -repeat 100        # cold/p50/p99 latency (plan-cache warm-up)
//
// With -addr it instead queries a live aims-server fleet: one aggregate
// over every session of a device class (or an explicit session-ID list),
// merged server-side.
//
//	aims-query -addr host:7009 -fleet cyberglove -agg count -from 1 -to 9
//	aims-query -addr host:7009 -fleet 3,17,42 -agg average -partial
//
// In fleet mode, -trace force-samples the query end-to-end: the client
// mints a trace ID, carries it in the wire payload, and prints it; with
// -trace-admin pointing at the server's admin plane the console fetches
// the finished trace from /tracez?id= and prints the span tree (scatter,
// per-session queue wait, plan compile/hit, dot product, merge) with
// self-times.
//
//	aims-query -addr host:7009 -fleet cyberglove -agg count \
//	    -trace -trace-admin http://host:6060
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"aims/internal/core"
	"aims/internal/propolyne"
	"aims/internal/sensors"
	"aims/internal/stream"
)

func main() {
	seconds := flag.Float64("seconds", 60, "session length to simulate")
	channel := flag.Int("channel", 5, "sensor channel to query")
	from := flag.Float64("from", 0, "range start (seconds)")
	to := flag.Float64("to", -1, "range end (seconds, -1 = session end)")
	agg := flag.String("agg", "average", "aggregate: count | average | variance")
	approx := flag.Int("approx", 0, "if > 0, answer approximately with this coefficient budget")
	seed := flag.Int64("seed", 1, "simulation seed")
	saveTo := flag.String("save", "", "after building, persist the store to this file")
	loadFrom := flag.String("load", "", "query a previously saved store instead of simulating")
	explain := flag.Bool("explain", false, "print the evaluation plan before answering")
	repeat := flag.Int("repeat", 1, "evaluate the query N times and report cold/p50/p99 latency")
	addr := flag.String("addr", "", "live aims-server address: fleet query mode (needs -fleet)")
	fleetScope := flag.String("fleet", "", "fleet scope: device class or comma-separated session IDs")
	partial := flag.Bool("partial", false, "fleet mode: accept partial results (still exits non-zero)")
	fleetTimeout := flag.Duration("timeout", 0, "fleet mode: per-query deadline (0 = server default)")
	trace := flag.Bool("trace", false, "fleet mode: force-sample this query and print its trace ID")
	traceAdmin := flag.String("trace-admin", "", "fleet mode: admin plane base URL; with -trace, fetch and print the span tree")
	transportF := flag.String("transport", "tcp", "fleet mode: dial transport for -addr: tcp|ws (a URL scheme in -addr wins)")
	flag.Parse()

	if *to < 0 {
		*to = *seconds
	}
	if *addr != "" || *fleetScope != "" {
		if *addr == "" || *fleetScope == "" {
			fmt.Fprintln(os.Stderr, "fleet mode needs both -addr and -fleet")
			os.Exit(2)
		}
		if *transportF != "tcp" && *transportF != "ws" {
			fmt.Fprintln(os.Stderr, "-transport must be tcp or ws")
			os.Exit(2)
		}
		target := *addr
		if !strings.Contains(target, "://") && *transportF != "tcp" {
			target = *transportF + "://" + target
		}
		os.Exit(runFleet(target, *fleetScope, *agg, *approx, *channel, *from, *to, *partial, *fleetTimeout, *trace, *traceAdmin))
	}
	var st *core.Store
	if *loadFrom != "" {
		var err error
		st, err = core.LoadStore(*loadFrom)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("loaded store %s: %d channels × %d time buckets × %d value bins\n",
			*loadFrom, st.Channels, st.TimeBuckets, st.ValueBins)
	} else {
		ticks := int(*seconds * sensors.DefaultClock)
		sys := core.New(core.Config{})
		dev := sensors.NewDevice(sensors.GloveSpecs(), sensors.DefaultClock, 1, *seed)
		frames, stats := sys.Acquire(&stream.FuncSource{Rate: sensors.DefaultClock, N: ticks, Fn: dev.Frame})
		fmt.Printf("acquired %d frames; building wavelet store...\n", stats.Stored)
		var err error
		st, err = sys.BuildStore(frames)
		if err != nil {
			log.Fatal(err)
		}
		if *saveTo != "" {
			if err := st.Save(*saveTo); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("persisted store to %s\n", *saveTo)
		}
	}

	if *explain {
		lo := int(*from * st.Rate / float64(st.TicksPerBucket))
		hi := int(*to * st.Rate / float64(st.TicksPerBucket))
		if hi >= st.TimeBuckets {
			hi = st.TimeBuckets - 1
		}
		ex, err := st.Engine.ExplainQuery(propolyne.Query{
			Lo: []int{*channel, lo, 0},
			Hi: []int{*channel, hi, st.ValueBins - 1},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("plan:", ex)
	}

	// answer evaluates the query once; -repeat re-runs it to expose the
	// plan-cache warm-up (iteration 1 compiles, the rest hit the cache).
	var answer func() (string, error)
	switch *agg {
	case "count":
		if *approx > 0 {
			answer = func() (string, error) {
				est, bound, err := st.ApproximateCount(*channel, *from, *to, *approx)
				if err != nil {
					return "", err
				}
				return fmt.Sprintf("COUNT(ch=%d, [%.1fs,%.1fs]) ≈ %.1f (±%.2f guaranteed, %d coefficients)",
					*channel, *from, *to, est, bound, *approx), nil
			}
			break
		}
		answer = func() (string, error) {
			v, err := st.CountSamples(*channel, *from, *to)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("COUNT(ch=%d, [%.1fs,%.1fs]) = %.0f", *channel, *from, *to, v), nil
		}
	case "average":
		answer = func() (string, error) {
			v, ok, err := st.AverageValue(*channel, *from, *to)
			if err != nil || !ok {
				return "", fmt.Errorf("average: ok=%v err=%v", ok, err)
			}
			return fmt.Sprintf("AVERAGE(ch=%d, [%.1fs,%.1fs]) = %.3f", *channel, *from, *to, v), nil
		}
	case "variance":
		answer = func() (string, error) {
			v, ok, err := st.VarianceValue(*channel, *from, *to)
			if err != nil || !ok {
				return "", fmt.Errorf("variance: ok=%v err=%v", ok, err)
			}
			return fmt.Sprintf("VARIANCE(ch=%d, [%.1fs,%.1fs]) = %.3f", *channel, *from, *to, v), nil
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown aggregate %q\n", *agg)
		os.Exit(2)
	}

	n := *repeat
	if n < 1 {
		n = 1
	}
	lat := make([]time.Duration, 0, n)
	var out string
	for i := 0; i < n; i++ {
		t0 := time.Now()
		s, err := answer()
		lat = append(lat, time.Since(t0))
		if err != nil {
			log.Fatal(err)
		}
		out = s
	}
	fmt.Println(out)
	if n > 1 {
		cold := lat[0]
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		p50 := lat[n/2]
		p99 := lat[(n*99)/100]
		fmt.Printf("latency over %d runs: cold=%s p50=%s p99=%s\n",
			n, cold, p50, p99)
	}
}
