package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"aims/internal/obs"
	"aims/internal/wire"
)

// parseFleetScope turns the -fleet argument into a wire scope: a
// comma-separated list where every token is a session ID selects those
// sessions explicitly; anything else names a device class.
func parseFleetScope(arg string) (wire.FleetScope, error) {
	if arg == "" {
		return wire.FleetScope{}, fmt.Errorf("-fleet needs a device class or id,id,... list")
	}
	tokens := strings.Split(arg, ",")
	ids := make([]uint64, 0, len(tokens))
	for _, tok := range tokens {
		id, err := strconv.ParseUint(strings.TrimSpace(tok), 10, 64)
		if err != nil {
			if len(tokens) > 1 {
				return wire.FleetScope{}, fmt.Errorf("-fleet %q: list entries must all be session IDs", arg)
			}
			return wire.FleetScope{Class: arg}, nil
		}
		ids = append(ids, id)
	}
	return wire.FleetScope{IDs: ids}, nil
}

// fleetKind maps the -agg/-approx spelling onto the wire query kind.
func fleetKind(agg string, approx int) (wire.QueryKind, uint32, error) {
	switch agg {
	case "count":
		if approx > 0 {
			return wire.QueryApproxCount, uint32(approx), nil
		}
		return wire.QueryCount, 0, nil
	case "average":
		return wire.QueryAverage, 0, nil
	case "variance":
		return wire.QueryVariance, 0, nil
	}
	return 0, 0, fmt.Errorf("unknown aggregate %q (fleet mode: count | average | variance)", agg)
}

// runFleet asks a live aims-server one cross-session fleet query and
// renders the merged answer. The protocol requires a registered session
// before any query, so the console registers a minimal one-channel
// session of class "console" that never streams a frame. Returns the
// process exit code: non-zero on any server error code and on partial
// results, so scripts can trust a zero exit to mean every targeted
// session answered.
func runFleet(addr, scopeArg, agg string, approx int, channel int, from, to float64, partial bool, timeout time.Duration, trace bool, traceAdmin string) int {
	scope, err := parseFleetScope(scopeArg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	kind, arg, err := fleetKind(agg, approx)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	c, err := wire.Dial(addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer c.Abort()
	// Socket deadline: a half-open server must fail the console, not hang
	// it — the fleet deadline (plus slack for the merge) bounds every read.
	c.Timeout = 30 * time.Second
	if timeout > 0 {
		c.Timeout = timeout + 10*time.Second
	}
	if _, err := c.Hello(wire.Hello{
		Rate: 1, HorizonTicks: 1, Name: "aims-query-console", Class: "console",
		Mins: []float64{-1}, Maxs: []float64{1},
	}); err != nil {
		fmt.Fprintf(os.Stderr, "register console session: %v\n", err)
		return 1
	}

	fq := wire.FleetQuery{
		Query:   wire.Query{Kind: kind, Channel: uint16(channel), T0: from, T1: to, Arg: arg},
		Scope:   scope,
		Partial: partial,
	}
	if timeout > 0 {
		fq.TimeoutMillis = uint32(timeout / time.Millisecond)
	}
	var traceID uint64
	if trace {
		// Mint the trace ID client-side and force-sample: the server keeps
		// the whole scatter tree under OUR ID regardless of its sampler.
		traceID = wire.NewTraceID()
		fq.TraceID = traceID
		fq.TraceSampled = true
	}
	res, err := c.FleetQuery(fq)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if trace {
		fmt.Printf("trace %s\n", obs.TraceIDString(traceID))
	}

	name := strings.ToUpper(agg)
	fmt.Printf("FLEET %s(%s, ch=%d, [%.1fs,%.1fs]): matched=%d merged=%d\n",
		name, scope, channel, from, to, res.Sessions, res.Merged)
	if res.Merged > 0 {
		switch kind {
		case wire.QueryApproxCount:
			fmt.Printf("  %s ≈ %.1f (±%.2f guaranteed, %d coefficients)\n", name, res.Value, res.Bound, res.Coefficients)
		case wire.QueryCount:
			fmt.Printf("  %s = %.0f\n", name, res.Value)
		default:
			fmt.Printf("  %s = %.3f\n", name, res.Value)
		}
		for _, p := range res.Parts {
			fmt.Printf("  session %d: frames=%d n=%.0f\n", p.ID, p.Frames, p.N)
		}
	}
	for _, f := range res.Failures {
		detail := f.Text
		if detail == "" {
			detail = f.Code.String()
		}
		fmt.Fprintf(os.Stderr, "  session %d failed: %s\n", f.ID, detail)
	}
	if trace && traceAdmin != "" {
		if err := printTrace(traceAdmin, traceID); err != nil {
			fmt.Fprintf(os.Stderr, "fetch trace: %v\n", err)
		}
	}
	if !res.OK || res.Code != wire.CodeOK {
		fmt.Fprintf(os.Stderr, "fleet query %s: %s\n",
			map[bool]string{true: "partial", false: "failed"}[res.OK], res.Code)
		return 1
	}
	return 0
}

// printTrace fetches the finished trace from the admin plane's /tracez?id=
// and renders its span tree, indented by parentage, with each span's
// duration and self-time (duration minus the sum of its children). The
// server publishes the trace right after flushing the reply, so one short
// retry loop covers the race.
func printTrace(adminBase string, traceID uint64) error {
	url := strings.TrimRight(adminBase, "/") + "/tracez?id=" + obs.TraceIDString(traceID)
	var snap obs.TraceSnapshot
	deadline := time.Now().Add(2 * time.Second)
	for {
		resp, err := http.Get(url)
		if err != nil {
			return err
		}
		if resp.StatusCode == http.StatusOK {
			err = json.NewDecoder(resp.Body).Decode(&snap)
			resp.Body.Close()
			if err != nil {
				return err
			}
			break
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound || time.Now().After(deadline) {
			return fmt.Errorf("GET %s: %s", url, resp.Status)
		}
		time.Sleep(50 * time.Millisecond)
	}

	fmt.Printf("trace %s kind=%s total=%s\n", snap.TraceID, snap.Kind, time.Duration(snap.TotalNS))
	if len(snap.Attrs) > 0 {
		keys := make([]string, 0, len(snap.Attrs))
		for k := range snap.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("  %s=%s", k, snap.Attrs[k])
		}
		fmt.Println()
	}

	children := map[obs.SpanID][]obs.Span{}
	childNS := map[obs.SpanID]int64{}
	for _, sp := range snap.Spans {
		children[sp.Parent] = append(children[sp.Parent], sp)
		childNS[sp.Parent] += sp.DurationNS
	}
	var walk func(parent obs.SpanID, depth int)
	walk = func(parent obs.SpanID, depth int) {
		kids := children[parent]
		sort.Slice(kids, func(i, j int) bool {
			if kids[i].OffsetNS != kids[j].OffsetNS {
				return kids[i].OffsetNS < kids[j].OffsetNS
			}
			return kids[i].ID < kids[j].ID
		})
		for _, sp := range kids {
			self := sp.DurationNS - childNS[sp.ID]
			if self < 0 {
				self = 0
			}
			fmt.Printf("  %s%-24s %12s  self %s\n",
				strings.Repeat("  ", depth), sp.Name,
				time.Duration(sp.DurationNS), time.Duration(self))
			walk(sp.ID, depth+1)
		}
	}
	walk(0, 0)
	return nil
}
