// Package aims holds the repository-level benchmark harness: one
// Benchmark per experiment in DESIGN.md's index (each regenerates a paper
// claim end to end; see cmd/aims-bench for the printable tables) plus
// micro-benchmarks of the hot substrate paths.
//
// Run everything with:
//
//	go test -bench=. -benchmem ./...
package aims

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"testing"
	"time"

	"aims/internal/core"
	"aims/internal/experiments"
	"aims/internal/fleet"
	"aims/internal/propolyne"
	"aims/internal/sensors"
	"aims/internal/svdstream"
	"aims/internal/synth"
	"aims/internal/vec"
	"aims/internal/wavelet"
	"aims/internal/wire"
)

// --- One benchmark per table/figure claim (T1, E1–E12) ---

func BenchmarkTable1SensorRegistry(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RunT1(io.Discard)
	}
}

func BenchmarkE1SamplingBandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunE1(io.Discard)
		b.ReportMetric(float64(r.PolicyBytes["adaptive"])/float64(r.RawBytes), "adaptive-frac")
	}
}

func BenchmarkE2BlockUtilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunE2(io.Discard)
		last := len(r.Tiling) - 1
		b.ReportMetric(r.Tiling[last]/r.Bound[last], "frac-of-bound")
	}
}

func BenchmarkE3ProgressiveAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RunE3(io.Discard)
	}
}

func BenchmarkE4ExactCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunE4(io.Discard)
		b.ReportMetric(float64(r.QueryCoeffs[len(r.QueryCoeffs)-1]), "coeffs-n512")
	}
}

func BenchmarkE5HybridPropolyne(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunE5(io.Discard)
		b.ReportMetric(float64(r.HybridCoeffs), "hybrid-coeffs")
	}
}

func BenchmarkE6BestBasis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RunE6(io.Discard)
	}
}

func BenchmarkE7ASLRecognition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunE7(io.Discard)
		b.ReportMetric(r.StreamAccuracy, "stream-acc")
	}
}

func BenchmarkE8ADHDDiagnosis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunE8(io.Discard)
		b.ReportMetric(r.Accuracy["linear SVM (paper's method)"], "svm-acc")
	}
}

func BenchmarkE9SVDviaPropolyne(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunE9(io.Discard)
		b.ReportMetric(r.SignatureSimilarity, "similarity")
	}
}

func BenchmarkE10IncrementalSVD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunE10(io.Discard)
		b.ReportMetric(r.Speedup[len(r.Speedup)-1], "speedup-w512")
	}
}

func BenchmarkE11AcquisitionPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RunE11(io.Discard)
	}
}

func BenchmarkE12ProgressiveBlockIO(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RunE12(io.Discard)
	}
}

func BenchmarkE13LiveSeal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunE13(io.Discard)
		b.ReportMetric(r.Speedup[1], "speedup-1pct")
	}
}

func BenchmarkE17QueryPlanCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunE17(io.Discard)
		b.ReportMetric(r.Speedup, "cached-speedup")
	}
}

// --- Ablations ---

func BenchmarkA1GroupByOrdering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RunA1(io.Discard)
	}
}

func BenchmarkA2RandomProjection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RunA2(io.Discard)
	}
}

func BenchmarkA3BufferPool(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RunA3(io.Discard)
	}
}

func BenchmarkA4RefinedBounds(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RunA4(io.Discard)
	}
}

func BenchmarkA5ConcurrentThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RunA5(io.Discard)
	}
}

// --- Substrate micro-benchmarks ---

func BenchmarkDWTAnalyzeD6(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, 1<<14)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	work := make([]float64, len(x))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, x)
		wavelet.Analyze(work, wavelet.D6, -1)
	}
	b.SetBytes(int64(len(x) * 8))
}

func BenchmarkLazyQueryHaar(b *testing.B) {
	const n = 1 << 16
	for i := 0; i < b.N; i++ {
		if _, err := wavelet.LazyQuery(n, 1234, 50000, vec.PolyConst(1), wavelet.Haar, -1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLazyQueryD6Degree2(b *testing.B) {
	const n = 1 << 16
	for i := 0; i < b.N; i++ {
		if _, err := wavelet.LazyQuery(n, 1234, 50000, vec.Poly{0, 0, 1}, wavelet.D6, -1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeltaTransform(b *testing.B) {
	const n = 1 << 16
	for i := 0; i < b.N; i++ {
		wavelet.DeltaTransform(n, i%n, 1, wavelet.D4, -1)
	}
}

func BenchmarkEngineExactCount(b *testing.B) {
	dims := []int{256, 256}
	cube := synth.ZipfCube(dims, 50000, 1.2, 3)
	e, err := propolyne.New(cube, dims, 0)
	if err != nil {
		b.Fatal(err)
	}
	q := propolyne.Query{Lo: []int{17, 40}, Hi: []int{200, 190}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.Exact(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineAppend(b *testing.B) {
	dims := []int{256, 256}
	e, err := propolyne.New(make([]float64, 256*256), dims, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Append([]int{i % 256, (i * 7) % 256}, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSVDSignature28(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	rows := make([][]float64, 128)
	for i := range rows {
		r := make([]float64, 28)
		for j := range r {
			r[j] = rng.NormFloat64()
		}
		rows[i] = r
	}
	m := vec.MatrixFromRows(rows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		svdstream.SignatureOf(m)
	}
}

func BenchmarkIncrementalSignature(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	inc := svdstream.NewIncremental(28, 128)
	frame := make([]float64, 28)
	for i := 0; i < 128; i++ {
		for j := range frame {
			frame[j] = rng.NormFloat64()
		}
		inc.Push(append([]float64(nil), frame...))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range frame {
			frame[j] = rng.NormFloat64()
		}
		inc.Push(append([]float64(nil), frame...))
		inc.Signature()
	}
}

func BenchmarkRecognizerFeed(b *testing.B) {
	vocab := synth.Vocabulary(8, 4)
	rng := rand.New(rand.NewSource(5))
	templates := map[string]svdstream.Signature{}
	for _, s := range vocab {
		templates[s.Name] = svdstream.SignatureFromMoments(
			svdstream.MomentMatrix(s.Render(1, 0.1, rng)))
	}
	frames, _ := synth.SignStream(vocab, synth.StreamOptions{
		Count: 50, Noise: 0.4, DurJitter: 0.3, GapTicks: 60, Seed: 6,
	})
	r := svdstream.NewRecognizer(templates, svdstream.RecognizerConfig{
		Dims:          synth.SignDims,
		RestThreshold: svdstream.CalibrateRest(frames[:20]),
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Feed(i, frames[i%len(frames)])
	}
}

func BenchmarkDeviceFrame(b *testing.B) {
	dev := sensors.NewDevice(sensors.GloveSpecs(), sensors.DefaultClock, 1, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dev.Frame(i)
	}
}

// --- Live-ingest seal path (E13's substrate) ---

// benchLiveStore fills a 4-channel default 256×64-per-channel cube with
// 8192 frames and returns the store plus the next free tick.
func benchLiveStore(b *testing.B, threshold int) (*core.LiveStore, *rand.Rand, int) {
	b.Helper()
	const channels, frames = 4, 8192
	mins := make([]float64, channels)
	maxs := make([]float64, channels)
	for c := range mins {
		mins[c], maxs[c] = -10, 10
	}
	ls, err := core.NewLiveStore(mins, maxs, core.LiveStoreConfig{
		Rate:               100,
		HorizonTicks:       4 * frames,
		SealDeltaThreshold: threshold,
	})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	fr := make([]float64, channels)
	for i := 0; i < frames; i++ {
		for c := range fr {
			fr[c] = rng.Float64()*20 - 10
		}
		if err := ls.AppendFrame(i, fr); err != nil {
			b.Fatal(err)
		}
	}
	return ls, rng, frames
}

// benchSealLoop appends delta frames (off the clock) then times the seal.
func benchSealLoop(b *testing.B, ls *core.LiveStore, rng *rand.Rand, tick, delta int) {
	fr := make([]float64, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for j := 0; j < delta; j++ {
			for c := range fr {
				fr[c] = rng.Float64()*20 - 10
			}
			if err := ls.AppendFrame(tick, fr); err != nil {
				b.Fatal(err)
			}
			tick++
		}
		b.StartTimer()
		if _, err := ls.Seal(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLiveStoreSealCold rebuilds the whole engine on every seal
// (incremental sealing disabled): the pre-delta-log behaviour.
func BenchmarkLiveStoreSealCold(b *testing.B) {
	ls, rng, tick := benchLiveStore(b, -1)
	benchSealLoop(b, ls, rng, tick, 1)
}

// BenchmarkLiveStoreSealIncremental replays only the delta log recorded
// since the previous seal; sub-benchmarks vary the delta size (frames
// appended between seals) on the same 8192-frame session.
func BenchmarkLiveStoreSealIncremental(b *testing.B) {
	for _, delta := range []int{16, 82, 512} {
		b.Run(fmt.Sprintf("delta=%d", delta), func(b *testing.B) {
			ls, rng, tick := benchLiveStore(b, 0)
			if _, err := ls.Seal(); err != nil { // first seal: full build, starts tracking
				b.Fatal(err)
			}
			benchSealLoop(b, ls, rng, tick, delta)
		})
	}
}

// --- Compiled query plans (E17's substrate) ---

// BenchmarkQueryPlanColdVsCached contrasts the two query paths: cold
// compiles the plan (lazy wavelet transforms + sorting) before every
// evaluation — the pre-plan behaviour — while cached pays one key lookup
// and the allocation-free sparse dot product.
func BenchmarkQueryPlanColdVsCached(b *testing.B) {
	dims := []int{512, 512}
	cube := synth.ZipfCube(dims, 100000, 1.2, 3)
	e, err := propolyne.New(cube, dims, 2)
	if err != nil {
		b.Fatal(err)
	}
	q := propolyne.Query{
		Lo:    []int{17, 40},
		Hi:    []int{400, 480},
		Polys: []vec.Poly{nil, {0, 0, 1}},
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p, err := e.CompilePlan(q)
			if err != nil {
				b.Fatal(err)
			}
			e.EvalPlan(p)
		}
	})
	b.Run("cached", func(b *testing.B) {
		cache := propolyne.NewPlanCache(1 << 16)
		if _, err := cache.Lookup(e, q); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p, err := cache.Lookup(e, q)
			if err != nil {
				b.Fatal(err)
			}
			e.EvalPlan(p)
		}
	})
}

// BenchmarkFleetQueryPlanCache runs an approximate fleet COUNT over 256
// same-geometry sessions with the shared plan cache warm vs disabled
// (disabled = the legacy compile-per-session behaviour).
func BenchmarkFleetQueryPlanCache(b *testing.B) {
	const sessionsN, frames, rate = 256, 256, 100.0
	rng := rand.New(rand.NewSource(21))
	sessions := make([]fleet.Session, sessionsN)
	for i := range sessions {
		ls, err := core.NewLiveStore([]float64{-1}, []float64{1}, core.LiveStoreConfig{
			Rate: rate, HorizonTicks: frames, TimeBuckets: 64, ValueBins: 16,
		})
		if err != nil {
			b.Fatal(err)
		}
		fr := []float64{0}
		for tick := 0; tick < frames; tick++ {
			fr[0] = rng.Float64()*2 - 1
			if err := ls.AppendFrame(tick, fr); err != nil {
				b.Fatal(err)
			}
		}
		sessions[i] = fleet.Session{ID: uint64(i + 1), Class: "sim", Store: ls}
	}
	req := fleet.Request{
		Kind: wire.QueryApproxCount, Channel: 0, T0: 0, T1: frames / rate,
		Arg: 64, Scope: wire.FleetScope{Class: "sim"},
	}
	cfg := fleet.Config{Workers: 8, Timeout: time.Minute}
	run := func(b *testing.B) {
		r := fleet.Evaluate(context.Background(), sessions, req, cfg)
		if !r.OK {
			b.Fatalf("fleet query failed: code=%d", r.Code)
		}
	}
	run(b) // seal every session store off the clock
	b.Run("compile-per-session", func(b *testing.B) {
		propolyne.SharedCache.SetCapacity(-1)
		defer propolyne.SharedCache.SetCapacity(propolyne.DefaultPlanCacheCost)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			run(b)
		}
	})
	b.Run("shared-plan", func(b *testing.B) {
		run(b) // warm the cache
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			run(b)
		}
	})
}

// BenchmarkTransformNDParallel runs the multi-dimensional transform with
// the per-line fan-out forced to 1 (serial), 4, and GOMAXPROCS workers.
func BenchmarkTransformNDParallel(b *testing.B) {
	dims := wavelet.Dims{8, 64, 64}
	rng := rand.New(rand.NewSource(9))
	src := make([]float64, dims.Size())
	for i := range src {
		src[i] = rng.NormFloat64()
	}
	filters := []wavelet.Filter{wavelet.D6, wavelet.D6, wavelet.D6}
	for _, workers := range []int{1, 4, 0} {
		name := fmt.Sprintf("workers=%d", workers)
		if workers == 0 {
			name = "workers=max"
		}
		b.Run(name, func(b *testing.B) {
			prev := wavelet.TransformWorkers
			wavelet.TransformWorkers = workers
			defer func() { wavelet.TransformWorkers = prev }()
			work := make([]float64, len(src))
			b.SetBytes(int64(len(src) * 8))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(work, src)
				wavelet.TransformND(work, dims, filters)
			}
		})
	}
}
