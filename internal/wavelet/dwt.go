package wavelet

import "fmt"

// MaxLevels returns how many analysis levels a periodic transform with the
// given filter performs on a signal of length n (a power of two). A level
// is possible while the current signal is even and at least as long as the
// filter, which keeps the wrapped polyphase matrix orthogonal.
func MaxLevels(n int, f Filter) int {
	levels := 0
	for n >= f.Len() && n >= 2 && n%2 == 0 {
		n /= 2
		levels++
	}
	return levels
}

// checkLength panics unless n is a positive power of two — the layout
// arithmetic of the standard coefficient ordering depends on it.
func checkLength(n int) {
	if n <= 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("wavelet: length %d is not a positive power of two", n))
	}
}

// analyzeStep performs one periodic analysis level: src (length n, even)
// is split into approx (first n/2 of dst) and detail (second n/2 of dst).
func analyzeStep(dst, src []float64, f Filter) {
	n := len(src)
	half := n / 2
	l := f.Len()
	for k := 0; k < half; k++ {
		var a, d float64
		base := 2 * k
		for m := 0; m < l; m++ {
			idx := base + m
			if idx >= n {
				idx -= n
				if idx >= n { // filter longer than signal wraps multiple times
					idx %= n
				}
			}
			v := src[idx]
			a += f.H[m] * v
			d += f.G[m] * v
		}
		dst[k] = a
		dst[half+k] = d
	}
}

// synthesizeStep inverts analyzeStep: src holds [approx|detail] of length n;
// dst receives the reconstructed signal of length n.
func synthesizeStep(dst, src []float64, f Filter) {
	n := len(src)
	half := n / 2
	l := f.Len()
	for i := range dst[:n] {
		dst[i] = 0
	}
	for k := 0; k < half; k++ {
		a := src[k]
		d := src[half+k]
		base := 2 * k
		for m := 0; m < l; m++ {
			idx := base + m
			for idx >= n {
				idx -= n
			}
			dst[idx] += f.H[m]*a + f.G[m]*d
		}
	}
}

// Analyze computes the multi-level periodic DWT of x in place using the
// standard layout [a_J | d_J | d_{J-1} | … | d_1], where J = levels. If
// levels < 0, the maximum possible number of levels is used. len(x) must be
// a power of two. It returns the number of levels actually performed.
func Analyze(x []float64, f Filter, levels int) int {
	checkLength(len(x))
	maxL := MaxLevels(len(x), f)
	if levels < 0 || levels > maxL {
		levels = maxL
	}
	tmp := make([]float64, len(x))
	n := len(x)
	for j := 0; j < levels; j++ {
		analyzeStep(tmp[:n], x[:n], f)
		copy(x[:n], tmp[:n])
		n /= 2
	}
	return levels
}

// Synthesize inverts Analyze for the same filter and level count, in place.
func Synthesize(x []float64, f Filter, levels int) {
	checkLength(len(x))
	maxL := MaxLevels(len(x), f)
	if levels < 0 || levels > maxL {
		levels = maxL
	}
	tmp := make([]float64, len(x))
	// Rebuild from the coarsest band upward.
	for j := levels - 1; j >= 0; j-- {
		n := len(x) >> uint(j)
		synthesizeStep(tmp[:n], x[:n], f)
		copy(x[:n], tmp[:n])
	}
}

// Transform returns a transformed copy of x (levels as in Analyze).
func Transform(x []float64, f Filter, levels int) ([]float64, int) {
	out := make([]float64, len(x))
	copy(out, x)
	lv := Analyze(out, f, levels)
	return out, lv
}

// Inverse returns an inverse-transformed copy of coefficients w.
func Inverse(w []float64, f Filter, levels int) []float64 {
	out := make([]float64, len(w))
	copy(out, w)
	Synthesize(out, f, levels)
	return out
}

// Band identifies a subband in the standard layout of a length-n, J-level
// transform. Level 0 is the coarsest approximation band a_J; level j ≥ 1 is
// the detail band d_{J-j+1}… To keep callers sane we expose offsets instead.

// BandOffset returns the offset and length of the detail band produced at
// analysis level `level` (1-based: level 1 is the finest, produced first)
// in the standard layout of a length-n, levels-deep transform.
func BandOffset(n, levels, level int) (offset, length int) {
	if level < 1 || level > levels {
		panic(fmt.Sprintf("wavelet: BandOffset level %d out of range [1,%d]", level, levels))
	}
	length = n >> uint(level)
	return length, length
}

// ApproxBand returns the offset (always 0) and length of the coarsest
// approximation band of a length-n, levels-deep transform.
func ApproxBand(n, levels int) (offset, length int) {
	return 0, n >> uint(levels)
}
