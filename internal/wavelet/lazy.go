package wavelet

import (
	"fmt"
	"math"

	"aims/internal/vec"
)

// LazyQuery computes the wavelet transform of the polynomial range-query
// vector q[k] = p(k) for k ∈ [lo, hi], q[k] = 0 otherwise, on a length-n
// domain — without materialising q. For any data vector x with transform
// x̂ = Transform(x, f, levels), orthonormality gives
//
//	Σ_{k=lo}^{hi} x[k]·p(k) = ⟨x̂, LazyQuery(...)⟩,
//
// which is how ProPolyne evaluates polynomial range-sums entirely in the
// wavelet domain (Schmidt & Shahabi's "lazy wavelet transform").
//
// When f.VanishingMoments > p.Degree() the result has O(f.Len()·log n)
// nonzero entries and is computed in polylogarithmic time: each analysis
// level keeps the interior of the query as a closed-form polynomial and
// touches only O(f.Len()) cells around the range boundaries. With too few
// vanishing moments the transform is still exact but falls back to dense
// detail bands.
//
// levels < 0 selects the maximum decomposition depth (matching Analyze).
func LazyQuery(n, lo, hi int, p vec.Poly, f Filter, levels int) (Sparse, error) {
	checkLength(n)
	if lo > hi {
		return Sparse{}, nil // empty range: zero query
	}
	if lo < 0 || hi >= n {
		return nil, fmt.Errorf("wavelet: LazyQuery range [%d,%d] outside [0,%d)", lo, hi, n)
	}
	maxL := MaxLevels(n, f)
	if levels < 0 || levels > maxL {
		levels = maxL
	}

	sparseMode := f.VanishingMoments > p.Degree()
	out := make(Sparse)

	rep := lazyRep{
		n:        n,
		lo:       lo,
		hi:       hi,
		poly:     p,
		explicit: map[int]float64{},
	}
	for j := 0; j < levels; j++ {
		rep = rep.step(f, sparseMode, out)
	}
	// Emit the coarsest approximation band (positions [0, rep.n) already
	// coincide with the standard layout).
	for k := rep.lo; k <= rep.hi; k++ {
		if _, ok := rep.explicit[k]; ok {
			continue
		}
		out.Add(k, rep.poly.Eval(float64(k)))
	}
	for k, v := range rep.explicit {
		out.Add(k, v)
	}

	// Drop numerically-zero residue relative to the query's own scale.
	var maxAbs float64
	for _, v := range out {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	return out.Trim(1e-12 * maxAbs), nil
}

// lazyRep is the per-level representation of the partially transformed
// query: a single polynomial piece over the non-wrapping interval [lo, hi]
// plus explicit overrides. explicit entries take precedence over the piece;
// cells outside both are zero.
type lazyRep struct {
	n        int
	lo, hi   int // empty piece iff lo > hi
	poly     vec.Poly
	explicit map[int]float64
}

// at evaluates the represented signal at index k ∈ [0, n).
func (r *lazyRep) at(k int) float64 {
	if v, ok := r.explicit[k]; ok {
		return v
	}
	if k >= r.lo && k <= r.hi {
		return r.poly.Eval(float64(k))
	}
	return 0
}

// step performs one analysis level: detail coefficients are appended to out
// at their standard-layout positions, and the new approximation
// representation is returned.
func (r lazyRep) step(f Filter, sparseMode bool, out Sparse) lazyRep {
	n := r.n
	half := n / 2
	l := f.Len()

	// Interior of the next level: windows fully inside the piece.
	newLo, newHi := 0, -1
	var nextPoly vec.Poly
	if r.lo <= r.hi {
		newLo = (r.lo + 1) / 2       // ceil(lo/2)
		newHi = (r.hi - (l - 1)) / 2 // floor((hi-L+1)/2)
		if r.hi-(l-1) < 0 {
			newHi = -1 // floor of a negative near-zero value must stay empty
		}
		if newHi > half-1 {
			newHi = half - 1
		}
		if newLo <= newHi {
			// Q_a(k) = Σ_m h[m]·p(2k+m); degree preserved by affine composition.
			nextPoly = make(vec.Poly, len(r.poly))
			for m := 0; m < l; m++ {
				nextPoly = nextPoly.Add(r.poly.ComposeAffine(2, float64(m)).Scale(f.H[m]))
			}
		} else {
			newLo, newHi = 0, -1
		}
	}

	// Candidate positions that must be evaluated explicitly: any k whose
	// analysis window [2k, 2k+L-1] (mod n) touches a piece edge, an
	// explicit cell, or wraps around the periodic boundary while support
	// exists.
	// A window overlapping the piece without covering it fully contains lo
	// or hi (this holds for wrapping windows too, because the wrapped part
	// starts at 0 and the unwrapped part ends at n-1), so edges plus
	// explicit keys generate every position that cannot use the interior
	// polynomial.
	cand := map[int]bool{}
	addAround := func(e int) {
		for m := 0; m < l; m++ {
			d := ((e-m)%n + n) % n
			if d%2 == 0 {
				cand[d/2] = true
			}
		}
	}
	if r.lo <= r.hi {
		addAround(r.lo)
		addAround(r.hi)
	}
	for e := range r.explicit {
		addAround(e)
	}

	// Dense-fallback detail polynomial for interiors without enough
	// vanishing moments.
	if !sparseMode && newLo <= newHi {
		var qd vec.Poly
		for m := 0; m < l; m++ {
			qd = qd.Add(r.poly.ComposeAffine(2, float64(m)).Scale(f.G[m]))
		}
		for k := newLo; k <= newHi; k++ {
			if cand[k] {
				continue
			}
			out.Add(half+k, qd.Eval(float64(k)))
		}
	}

	// Explicit evaluation of candidates: both the detail output and the
	// next level's approximation overrides.
	nextExplicit := make(map[int]float64, len(cand))
	for k := range cand {
		var a, d float64
		base := 2 * k
		for m := 0; m < l; m++ {
			idx := base + m
			for idx >= n {
				idx -= n
			}
			v := r.at(idx)
			if v == 0 {
				continue
			}
			a += f.H[m] * v
			d += f.G[m] * v
		}
		out.Add(half+k, d)
		nextExplicit[k] = a
	}

	return lazyRep{n: half, lo: newLo, hi: newHi, poly: nextPoly, explicit: nextExplicit}
}
