package wavelet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDimsHelpers(t *testing.T) {
	d := Dims{4, 8, 2}
	if d.Size() != 64 {
		t.Fatalf("Size = %d", d.Size())
	}
	st := d.Strides()
	if st[0] != 16 || st[1] != 2 || st[2] != 1 {
		t.Fatalf("Strides = %v", st)
	}
	idx := []int{3, 5, 1}
	off := d.Offset(idx)
	if off != 3*16+5*2+1 {
		t.Fatalf("Offset = %d", off)
	}
	back := d.Unflatten(off)
	for i := range idx {
		if back[i] != idx[i] {
			t.Fatalf("Unflatten = %v, want %v", back, idx)
		}
	}
}

func TestOffsetPanics(t *testing.T) {
	d := Dims{4, 4}
	for _, bad := range [][]int{{4, 0}, {0, -1}, {1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for %v", bad)
				}
			}()
			d.Offset(bad)
		}()
	}
}

func TestTransformNDRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	dims := Dims{8, 16, 4}
	data := randSignal(rng, dims.Size())
	orig := append([]float64(nil), data...)
	filters := []Filter{Haar, D4, Haar}
	levels := TransformND(data, dims, filters)
	InverseND(data, dims, filters, levels)
	for i := range orig {
		if math.Abs(data[i]-orig[i]) > 1e-9 {
			t.Fatalf("ND round trip mismatch at %d", i)
		}
	}
}

func TestTransformNDParsevalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := Dims{1 << (1 + rng.Intn(3)), 1 << (1 + rng.Intn(3))}
		data := randSignal(rng, dims.Size())
		var e1 float64
		for _, v := range data {
			e1 += v * v
		}
		TransformND(data, dims, []Filter{Haar, Haar})
		var e2 float64
		for _, v := range data {
			e2 += v * v
		}
		return math.Abs(e1-e2) <= 1e-9*(1+e1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTransformAxisSeparability(t *testing.T) {
	// Transforming axis 0 then axis 1 must equal axis 1 then axis 0.
	rng := rand.New(rand.NewSource(10))
	dims := Dims{16, 8}
	a := randSignal(rng, dims.Size())
	b := append([]float64(nil), a...)
	TransformAxis(a, dims, 0, D4, -1)
	TransformAxis(a, dims, 1, Haar, -1)
	TransformAxis(b, dims, 1, Haar, -1)
	TransformAxis(b, dims, 0, D4, -1)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-10 {
			t.Fatalf("axis order changed result at %d", i)
		}
	}
}

func TestTransformNDRangeSum2D(t *testing.T) {
	// The 2-D ProPolyne identity: range-sum == Σ over the tensor product of
	// per-dimension lazy query coefficients times the transformed cube.
	rng := rand.New(rand.NewSource(11))
	dims := Dims{32, 16}
	data := randSignal(rng, dims.Size())
	for i := range data {
		data[i] = math.Abs(data[i]) // act like counts
	}
	orig := append([]float64(nil), data...)

	filters := []Filter{Haar, Haar}
	levels := TransformND(data, dims, filters)

	lo := []int{5, 3}
	hi := []int{25, 12}
	var want float64
	for i := lo[0]; i <= hi[0]; i++ {
		for j := lo[1]; j <= hi[1]; j++ {
			want += orig[dims.Offset([]int{i, j})]
		}
	}

	q0, err := LazyQuery(dims[0], lo[0], hi[0], []float64{1}, filters[0], levels[0])
	if err != nil {
		t.Fatal(err)
	}
	q1, err := LazyQuery(dims[1], lo[1], hi[1], []float64{1}, filters[1], levels[1])
	if err != nil {
		t.Fatal(err)
	}
	var got float64
	for i0, v0 := range q0 {
		for i1, v1 := range q1 {
			got += v0 * v1 * data[dims.Offset([]int{i0, i1})]
		}
	}
	if math.Abs(got-want) > 1e-8*(1+math.Abs(want)) {
		t.Fatalf("2-D range sum = %v, want %v", got, want)
	}
}

func TestErrorTreeStructure(t *testing.T) {
	tr := NewErrorTree(16)
	if tr.Parent(0) != -1 || tr.Parent(1) != 0 || tr.Parent(5) != 2 {
		t.Fatal("Parent broken")
	}
	if c := tr.Children(0); len(c) != 1 || c[0] != 1 {
		t.Fatalf("Children(0) = %v", c)
	}
	if c := tr.Children(3); len(c) != 2 || c[0] != 6 || c[1] != 7 {
		t.Fatalf("Children(3) = %v", c)
	}
	if c := tr.Children(8); c != nil {
		t.Fatalf("leaf Children = %v", c)
	}
	if tr.Depth(0) != 0 || tr.Depth(1) != 1 || tr.Depth(2) != 2 || tr.Depth(15) != 4 {
		t.Fatal("Depth broken")
	}
}

func TestErrorTreePointPathReconstructs(t *testing.T) {
	// A point path must contain exactly the nonzero-relevant coefficients:
	// reconstructing x[i] from only path coefficients must be exact.
	rng := rand.New(rand.NewSource(12))
	const n = 32
	x := randSignal(rng, n)
	w, lv := Transform(x, Haar, -1)
	tr := NewErrorTree(n)
	for i := 0; i < n; i++ {
		path := tr.PointPath(i)
		if len(path) != 6 { // log2(32)+1
			t.Fatalf("path length %d", len(path))
		}
		masked := make([]float64, n)
		for _, p := range path {
			masked[p] = w[p]
		}
		back := Inverse(masked, Haar, lv)
		if math.Abs(back[i]-x[i]) > 1e-9 {
			t.Fatalf("point %d not reconstructible from path: %v vs %v", i, back[i], x[i])
		}
	}
}

func TestErrorTreeRangeNeedCoversPointPaths(t *testing.T) {
	tr := NewErrorTree(64)
	lo, hi := 13, 41
	need := tr.RangeNeed(lo, hi)
	for i := lo; i <= hi; i++ {
		for _, p := range tr.PointPath(i) {
			if !need[p] {
				t.Fatalf("RangeNeed missing %d from point %d's path", p, i)
			}
		}
	}
}

func TestErrorTreeDescendants(t *testing.T) {
	tr := NewErrorTree(16)
	if tr.Descendants(0) != 16 || tr.Descendants(1) != 16 {
		t.Fatal("root descendants")
	}
	if tr.Descendants(2) != 8 || tr.Descendants(8) != 2 {
		t.Fatalf("Descendants(2)=%d Descendants(8)=%d", tr.Descendants(2), tr.Descendants(8))
	}
}

func TestTopKAndThreshold(t *testing.T) {
	w := []float64{5, -3, 0.1, 4, 0}
	s := TopK(w, 2)
	if len(s) != 2 || s[0] != 5 || s[3] != 4 {
		t.Fatalf("TopK = %v", s)
	}
	if got := TopK(w, 100); len(got) != 4 { // zero excluded
		t.Fatalf("TopK over-size = %v", got)
	}
	if got := TopK(w, -1); len(got) != 0 {
		t.Fatalf("TopK(-1) = %v", got)
	}
	th := Threshold(w, 2.9)
	if len(th) != 3 {
		t.Fatalf("Threshold = %v", th)
	}
	if got := Threshold(w, 3); len(got) != 2 { // strict: |−3| not kept
		t.Fatalf("Threshold strict = %v", got)
	}
}

func TestEnergyFraction(t *testing.T) {
	w := []float64{3, 4} // energies 9, 16
	if got := EnergyFraction(w, 1); math.Abs(got-16.0/25) > 1e-12 {
		t.Fatalf("EnergyFraction = %v", got)
	}
	if got := EnergyFraction(w, 5); got != 1 {
		t.Fatalf("EnergyFraction overflow k = %v", got)
	}
	if got := EnergyFraction([]float64{0, 0}, 1); got != 1 {
		t.Fatalf("EnergyFraction zero = %v", got)
	}
}

func TestSparseOps(t *testing.T) {
	s := make(Sparse)
	s.Add(3, 2)
	s.Add(3, -2)
	if len(s) != 0 {
		t.Fatal("Add should cancel to empty")
	}
	s.Add(1, 5)
	s.Add(2, -1)
	if got := s.Dot([]float64{0, 2, 10, 0}); got != 0 {
		t.Fatalf("Dot = %v", got)
	}
	ord := s.Ordered()
	if ord[0].Index != 1 || ord[1].Index != 2 {
		t.Fatalf("Ordered = %v", ord)
	}
	if s.Energy() != 26 {
		t.Fatalf("Energy = %v", s.Energy())
	}
	d := s.Dense(4)
	if d[1] != 5 || d[2] != -1 {
		t.Fatalf("Dense = %v", d)
	}
}

// TestParallelTransformBitIdentical forces the worker-pool path (this may
// be a single-core box, where applyAxis would otherwise always go serial)
// and checks it produces exactly the serial transform: the per-line
// splits are disjoint, so not even the floating-point op order changes.
func TestParallelTransformBitIdentical(t *testing.T) {
	defer func() { TransformWorkers = 0 }()
	rng := rand.New(rand.NewSource(21))
	dims := Dims{8, 32, 32}
	orig := make([]float64, dims.Size())
	for i := range orig {
		orig[i] = rng.NormFloat64()
	}
	filters := []Filter{Haar, D4, D6}

	TransformWorkers = 1
	serial := append([]float64(nil), orig...)
	serialLevels := TransformND(serial, dims, filters)

	for _, workers := range []int{2, 3, 8} {
		TransformWorkers = workers
		par := append([]float64(nil), orig...)
		parLevels := TransformND(par, dims, filters)
		for a := range serialLevels {
			if serialLevels[a] != parLevels[a] {
				t.Fatalf("workers=%d: levels %v != %v", workers, parLevels, serialLevels)
			}
		}
		for i := range serial {
			if par[i] != serial[i] {
				t.Fatalf("workers=%d: coefficient %d: %v != %v (not bit-identical)", workers, i, par[i], serial[i])
			}
		}
		// Round trip under the parallel inverse too.
		InverseND(par, dims, filters, parLevels)
		for i := range orig {
			if diff := par[i] - orig[i]; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("workers=%d: inverse diverged at %d by %v", workers, i, diff)
			}
		}
	}
}

// TestTransformStatsAccounting checks the process-wide transform
// accounting the observability plane scrapes: line counts on both paths
// and a sane busy/capacity utilisation after a forced parallel run.
// Counters are global, so assertions are on deltas.
func TestTransformStatsAccounting(t *testing.T) {
	defer func() { TransformWorkers = 0 }()
	dims := Dims{8, 32, 32} // 8192 cells, above the parallel floor
	data := make([]float64, dims.Size())
	for i := range data {
		data[i] = float64(i % 7)
	}

	before := ReadTransformStats()
	TransformWorkers = 1
	TransformAxis(data, dims, 0, Haar, -1)
	mid := ReadTransformStats()
	if got := mid.SerialRuns - before.SerialRuns; got != 1 {
		t.Fatalf("serial runs delta = %d, want 1", got)
	}
	if got := mid.Lines - before.Lines; got != 32*32 {
		t.Fatalf("serial lines delta = %d, want %d", got, 32*32)
	}

	TransformWorkers = 4
	TransformAxis(data, dims, 0, Haar, -1)
	after := ReadTransformStats()
	if got := after.ParallelRuns - mid.ParallelRuns; got != 1 {
		t.Fatalf("parallel runs delta = %d, want 1", got)
	}
	if got := after.Lines - mid.Lines; got != 32*32 {
		t.Fatalf("parallel lines delta = %d, want %d", got, 32*32)
	}
	if after.WorkerBusy <= mid.WorkerBusy || after.WorkerCapacity <= mid.WorkerCapacity {
		t.Fatalf("busy/capacity did not advance: %v/%v -> %v/%v",
			mid.WorkerBusy, mid.WorkerCapacity, after.WorkerBusy, after.WorkerCapacity)
	}
	if u := after.Utilisation(); u <= 0 || u > 1 {
		t.Fatalf("utilisation = %v, want (0,1]", u)
	}
}
