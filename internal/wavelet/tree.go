package wavelet

import "fmt"

// ErrorTree models the dependency structure of a length-n, fully decomposed
// Haar transform in standard layout. Reconstructing any data value requires
// the overall average (position 0) plus one detail coefficient per level —
// a root-to-leaf path. The storage subsystem (§3.2.1) tiles this tree onto
// disk blocks; the tree type answers "which coefficients does a point/range
// query need?".
//
// Positions: 0 is the root average; 1 is the top detail; detail position
// p ∈ [2^j, 2^{j+1}) sits at depth j+1 and covers data interval
// [ (p-2^j)·n/2^j , (p-2^j+1)·n/2^j ).
type ErrorTree struct {
	N int // signal length, power of two
}

// NewErrorTree returns the error tree for a length-n fully decomposed Haar
// transform. n must be a power of two.
func NewErrorTree(n int) ErrorTree {
	checkLength(n)
	return ErrorTree{N: n}
}

// Parent returns the position whose coefficient is needed together with p
// when reconstructing values under p, or -1 for the root (position 0).
// The top detail coefficient (position 1) has the root as its parent.
func (t ErrorTree) Parent(p int) int {
	switch {
	case p < 0 || p >= t.N:
		panic(fmt.Sprintf("wavelet: tree position %d out of range [0,%d)", p, t.N))
	case p == 0:
		return -1
	case p == 1:
		return 0
	default:
		return p / 2
	}
}

// Children returns the detail positions directly below p, or nil for
// leaf-level coefficients. The root's only child is position 1.
func (t ErrorTree) Children(p int) []int {
	switch {
	case p < 0 || p >= t.N:
		panic(fmt.Sprintf("wavelet: tree position %d out of range [0,%d)", p, t.N))
	case p == 0:
		if t.N == 1 {
			return nil
		}
		return []int{1}
	case 2*p >= t.N:
		return nil
	default:
		return []int{2 * p, 2*p + 1}
	}
}

// Depth returns the depth of position p: the root has depth 0, position 1
// depth 1, and so on; leaf details have depth log2(n).
func (t ErrorTree) Depth(p int) int {
	if p < 0 || p >= t.N {
		panic(fmt.Sprintf("wavelet: tree position %d out of range [0,%d)", p, t.N))
	}
	if p == 0 {
		return 0
	}
	d := 1
	for q := p; q > 1; q /= 2 {
		d++
	}
	return d
}

// PointPath returns the coefficient positions required to reconstruct data
// value i: the root plus one detail per level. len == log2(n)+1.
func (t ErrorTree) PointPath(i int) []int {
	if i < 0 || i >= t.N {
		panic(fmt.Sprintf("wavelet: data index %d out of range [0,%d)", i, t.N))
	}
	path := []int{0}
	if t.N == 1 {
		return path
	}
	// Walk from the top detail down: at depth d (1-based), the relevant
	// detail position is 2^{d-1} + i·2^{d-1}/n … easier: build from leaf up.
	leaf := t.N/2 + i/2
	var down []int
	for p := leaf; p >= 1; p /= 2 {
		down = append(down, p)
	}
	for j := len(down) - 1; j >= 0; j-- {
		path = append(path, down[j])
	}
	return path
}

// RangeNeed returns the set of coefficient positions needed to reconstruct
// every data value in [lo, hi] (inclusive): the union of point paths, which
// the error-tree structure makes a subtree-union of size
// O(range + log n). The map form suits the allocator's access-pattern
// simulation.
func (t ErrorTree) RangeNeed(lo, hi int) map[int]bool {
	if lo < 0 || hi >= t.N || lo > hi {
		panic(fmt.Sprintf("wavelet: range [%d,%d] invalid for n=%d", lo, hi, t.N))
	}
	need := map[int]bool{0: true}
	if t.N == 1 {
		return need
	}
	for pl, ph := t.N/2+lo/2, t.N/2+hi/2; pl >= 1; pl, ph = pl/2, ph/2 {
		for p := pl; p <= ph; p++ {
			need[p] = true
		}
	}
	return need
}

// Descendants reports how many data values depend on the coefficient at
// position p (the width of its support interval).
func (t ErrorTree) Descendants(p int) int {
	if p == 0 || p == 1 {
		return t.N
	}
	d := t.Depth(p)
	return t.N >> uint(d-1)
}
