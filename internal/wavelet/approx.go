package wavelet

import (
	"math"
	"sort"
)

// TopK returns a sparse approximation of the dense coefficient vector w
// keeping only the k largest-magnitude entries. This is the classical
// wavelet *data approximation* (Vitter–Wang style) that the paper contrasts
// with ProPolyne's query approximation: its accuracy is highly
// data-dependent, which experiment E3 demonstrates.
func TopK(w []float64, k int) Sparse {
	if k < 0 {
		k = 0
	}
	if k > len(w) {
		k = len(w)
	}
	idx := make([]int, len(w))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		va, vb := math.Abs(w[idx[a]]), math.Abs(w[idx[b]])
		if va != vb {
			return va > vb
		}
		return idx[a] < idx[b]
	})
	out := make(Sparse, k)
	for _, i := range idx[:k] {
		if w[i] != 0 {
			out[i] = w[i]
		}
	}
	return out
}

// Threshold returns a sparse approximation keeping entries with
// |value| > eps.
func Threshold(w []float64, eps float64) Sparse {
	out := make(Sparse)
	for i, v := range w {
		if math.Abs(v) > eps {
			out[i] = v
		}
	}
	return out
}

// EnergyFraction returns the fraction of total squared energy of w captured
// by its k largest-magnitude coefficients — the energy-compaction metric
// used by the best-basis experiments (E6).
func EnergyFraction(w []float64, k int) float64 {
	var total float64
	mags := make([]float64, len(w))
	for i, v := range w {
		mags[i] = v * v
		total += mags[i]
	}
	if total == 0 {
		return 1
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(mags)))
	if k > len(mags) {
		k = len(mags)
	}
	var kept float64
	for _, m := range mags[:k] {
		kept += m
	}
	return kept / total
}
