package wavelet

import (
	"math"
	"testing"

	"aims/internal/vec"
)

func FuzzLazyQueryMatchesDense(f *testing.F) {
	f.Add(uint8(6), uint8(3), uint8(11), uint8(1), 1.0, 0.5)
	f.Add(uint8(8), uint8(0), uint8(255), uint8(0), -2.0, 0.0)
	f.Fuzz(func(t *testing.T, logN, loRaw, hiRaw, filterIdx uint8, c0, c1 float64) {
		n := 1 << (3 + int(logN)%7) // 8..512
		lo := int(loRaw) % n
		hi := lo + int(hiRaw)%(n-lo)
		fl := Filters[int(filterIdx)%len(Filters)]
		if math.IsNaN(c0) || math.IsInf(c0, 0) || math.IsNaN(c1) || math.IsInf(c1, 0) {
			return
		}
		if math.Abs(c0) > 1e6 || math.Abs(c1) > 1e6 {
			return
		}
		p := vec.Poly{c0, c1}
		if fl.VanishingMoments <= p.Degree() {
			p = vec.Poly{c0} // keep sparse mode; the dense path has its own tests
		}
		s, err := LazyQuery(n, lo, hi, p, fl, -1)
		if err != nil {
			t.Fatalf("LazyQuery: %v", err)
		}
		dense := denseQuery(n, lo, hi, p, fl, -1)
		got := s.Dense(n)
		scale := 1.0
		for _, v := range dense {
			if a := math.Abs(v); a > scale {
				scale = a
			}
		}
		for i := range dense {
			if math.Abs(got[i]-dense[i]) > 1e-6*scale {
				t.Fatalf("n=%d range [%d,%d] %s: coefficient %d: %v vs %v",
					n, lo, hi, fl.Name, i, got[i], dense[i])
			}
		}
	})
}

func FuzzStreamingHaarMatchesBatch(f *testing.F) {
	f.Add(uint16(7), int64(1))
	f.Add(uint16(300), int64(2))
	f.Fuzz(func(t *testing.T, nRaw uint16, seed int64) {
		n := 1 + int(nRaw)%600
		x := make([]float64, n)
		v := seed
		for i := range x {
			v = v*6364136223846793005 + 1442695040888963407
			x[i] = float64(v%1000) / 100
		}
		s := NewStreamingHaar()
		s.PushAll(x)
		got, size := s.Finalize(0)
		padded := make([]float64, size)
		copy(padded, x)
		want, _ := Transform(padded, Haar, -1)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-8 {
				t.Fatalf("n=%d: coefficient %d: %v vs %v", n, i, got[i], want[i])
			}
		}
	})
}
