package wavelet

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Dims describes the shape of a dense multidimensional array stored in
// row-major (last dimension fastest) order. Every extent must be a power of
// two for the standard tensor-product transform.
type Dims []int

// Size returns the total number of cells.
func (d Dims) Size() int {
	s := 1
	for _, n := range d {
		s *= n
	}
	return s
}

// Strides returns the row-major stride of each dimension.
func (d Dims) Strides() []int {
	st := make([]int, len(d))
	acc := 1
	for i := len(d) - 1; i >= 0; i-- {
		st[i] = acc
		acc *= d[i]
	}
	return st
}

// Offset converts a multi-index to a flat position.
func (d Dims) Offset(idx []int) int {
	if len(idx) != len(d) {
		panic(fmt.Sprintf("wavelet: Offset arity %d != %d", len(idx), len(d)))
	}
	off := 0
	st := d.Strides()
	for i, x := range idx {
		if x < 0 || x >= d[i] {
			panic(fmt.Sprintf("wavelet: index %d out of range [0,%d) in dim %d", x, d[i], i))
		}
		off += x * st[i]
	}
	return off
}

// Unflatten converts a flat position back to a multi-index.
func (d Dims) Unflatten(off int) []int {
	idx := make([]int, len(d))
	for i := len(d) - 1; i >= 0; i-- {
		idx[i] = off % d[i]
		off /= d[i]
	}
	return idx
}

// TransformAxis applies the multi-level 1-D transform along one axis of the
// dense array data (shape dims), in place, and returns the levels used.
// Passing levels < 0 uses the per-axis maximum.
func TransformAxis(data []float64, dims Dims, axis int, f Filter, levels int) int {
	return applyAxis(data, dims, axis, func(line []float64) int {
		return Analyze(line, f, levels)
	})
}

// InverseAxis inverts TransformAxis with the same filter and level count.
func InverseAxis(data []float64, dims Dims, axis int, f Filter, levels int) {
	applyAxis(data, dims, axis, func(line []float64) int {
		Synthesize(line, f, levels)
		return 0
	})
}

// TransformWorkers overrides the per-axis worker count of applyAxis:
// 0 (the default) uses GOMAXPROCS, 1 forces the serial path, higher
// values force that much fan-out even on a single-core box (tests use
// this to exercise the parallel path deterministically). Set it once at
// startup; it is read without synchronisation.
var TransformWorkers int

// parallelMinCells is the smallest data size worth fanning out over a
// worker pool; below it goroutine start-up dominates the transform work.
const parallelMinCells = 1 << 12

// tstats is the process-wide transform accounting read by the
// observability plane: line counts per path and, for the parallel path,
// how much of the launched worker capacity was actually busy. A handful
// of atomic adds per applyAxis call — noise next to the transform itself.
var tstats struct {
	lines        atomic.Uint64
	serialRuns   atomic.Uint64
	parallelRuns atomic.Uint64
	busyNS       atomic.Int64
	capacityNS   atomic.Int64
}

// TransformStats is a snapshot of the per-process axis-transform
// accounting (see ReadTransformStats).
type TransformStats struct {
	// Lines is the total 1-D lines transformed, either path.
	Lines uint64
	// SerialRuns / ParallelRuns count applyAxis invocations per path.
	SerialRuns   uint64
	ParallelRuns uint64
	// WorkerBusy is the summed wall time worker goroutines spent
	// transforming; WorkerCapacity is the summed wall time of each
	// parallel run multiplied by its worker count. Their ratio is the
	// pool utilisation.
	WorkerBusy     time.Duration
	WorkerCapacity time.Duration
}

// Utilisation returns WorkerBusy/WorkerCapacity in [0,1], or 0 before any
// parallel transform has run. Values well below 1 mean the per-line
// chunking is leaving workers idle (skewed line lengths or too much
// fan-out for the data size).
func (s TransformStats) Utilisation() float64 {
	if s.WorkerCapacity <= 0 {
		return 0
	}
	return float64(s.WorkerBusy) / float64(s.WorkerCapacity)
}

// ReadTransformStats snapshots the process-wide transform accounting.
func ReadTransformStats() TransformStats {
	return TransformStats{
		Lines:          tstats.lines.Load(),
		SerialRuns:     tstats.serialRuns.Load(),
		ParallelRuns:   tstats.parallelRuns.Load(),
		WorkerBusy:     time.Duration(tstats.busyNS.Load()),
		WorkerCapacity: time.Duration(tstats.capacityNS.Load()),
	}
}

// applyAxis gathers every 1-D line along the axis, applies fn, and scatters
// the result back. It returns fn's result from the first line (all lines
// share the same length, so Analyze returns the same level count for each).
//
// The per-line transforms are independent — lines along an axis are
// disjoint index sets — so applyAxis fans them across a worker pool when
// more than one CPU is available (see TransformWorkers). The parallel
// split is by line, never within a line, so results are bit-identical to
// the serial path.
func applyAxis(data []float64, dims Dims, axis int, fn func([]float64) int) int {
	if axis < 0 || axis >= len(dims) {
		panic(fmt.Sprintf("wavelet: axis %d out of range for %d dims", axis, len(dims)))
	}
	if len(data) != dims.Size() {
		panic(fmt.Sprintf("wavelet: data length %d != dims size %d", len(data), dims.Size()))
	}
	// Enumerate all line starts: iterate over the flattened space of the
	// other dimensions.
	outer := 1
	for i, d := range dims {
		if i != axis {
			outer *= d
		}
	}
	workers := TransformWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > outer {
		workers = outer
	}
	if workers <= 1 || len(data) < parallelMinCells {
		tstats.serialRuns.Add(1)
		tstats.lines.Add(uint64(outer))
		return axisLines(data, dims, axis, fn, 0, outer)
	}
	tstats.parallelRuns.Add(1)
	tstats.lines.Add(uint64(outer))
	start := time.Now()
	var wg sync.WaitGroup
	result := 0
	launched := 0
	chunk := (outer + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > outer {
			hi = outer
		}
		if lo >= hi {
			break
		}
		launched++
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			t0 := time.Now()
			r := axisLines(data, dims, axis, fn, lo, hi)
			tstats.busyNS.Add(time.Since(t0).Nanoseconds())
			if lo == 0 {
				result = r
			}
		}(lo, hi)
	}
	wg.Wait()
	tstats.capacityNS.Add(time.Since(start).Nanoseconds() * int64(launched))
	return result
}

// axisLines runs fn over the half-open line range [lo, hi) of the axis
// (line indices in the flattened space of the other dimensions) with its
// own gather buffer, and returns fn's result from line 0 if covered.
func axisLines(data []float64, dims Dims, axis int, fn func([]float64) int, lo, hi int) int {
	n := dims[axis]
	st := dims.Strides()
	stride := st[axis]
	line := make([]float64, n)
	result := 0
	for o := lo; o < hi; o++ {
		// Decode o into a start offset, skipping the transformed axis.
		rem := o
		start := 0
		for i := len(dims) - 1; i >= 0; i-- {
			if i == axis {
				continue
			}
			start += (rem % dims[i]) * st[i]
			rem /= dims[i]
		}
		for k := 0; k < n; k++ {
			line[k] = data[start+k*stride]
		}
		r := fn(line)
		if o == 0 {
			result = r
		}
		for k := 0; k < n; k++ {
			data[start+k*stride] = line[k]
		}
	}
	return result
}

// TransformND applies the tensor-product transform along every axis and
// returns the per-axis level counts. The per-axis filter slice must have
// one entry per dimension (this is AIMS's multi-basis transformation: each
// dimension may use a different basis, §3.1.1).
func TransformND(data []float64, dims Dims, filters []Filter) []int {
	if len(filters) != len(dims) {
		panic(fmt.Sprintf("wavelet: %d filters for %d dims", len(filters), len(dims)))
	}
	levels := make([]int, len(dims))
	for axis := range dims {
		levels[axis] = TransformAxis(data, dims, axis, filters[axis], -1)
	}
	return levels
}

// InverseND inverts TransformND given the level counts it returned.
func InverseND(data []float64, dims Dims, filters []Filter, levels []int) {
	for axis := len(dims) - 1; axis >= 0; axis-- {
		InverseAxis(data, dims, axis, filters[axis], levels[axis])
	}
}
