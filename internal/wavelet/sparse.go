package wavelet

import (
	"math"
	"sort"
)

// Sparse is a sparse wavelet-coefficient vector over the standard layout:
// a map from coefficient position to value. It is the currency of the lazy
// query transform and of incremental (append-only stream) updates.
type Sparse map[int]float64

// Add accumulates v into position i, deleting the entry if it cancels to
// (near) zero.
func (s Sparse) Add(i int, v float64) {
	nv := s[i] + v
	if math.Abs(nv) < 1e-300 {
		delete(s, i)
		return
	}
	s[i] = nv
}

// Dot returns the inner product of s with a dense coefficient vector.
func (s Sparse) Dot(dense []float64) float64 {
	var sum float64
	for i, v := range s {
		sum += v * dense[i]
	}
	return sum
}

// Dense expands s to a dense vector of length n.
func (s Sparse) Dense(n int) []float64 {
	out := make([]float64, n)
	for i, v := range s {
		out[i] = v
	}
	return out
}

// Trim removes entries with |value| ≤ eps and returns s.
func (s Sparse) Trim(eps float64) Sparse {
	for i, v := range s {
		if math.Abs(v) <= eps {
			delete(s, i)
		}
	}
	return s
}

// Entry is a (position, value) coefficient pair.
type Entry struct {
	Index int
	Value float64
}

// Ordered returns the entries of s sorted by descending |value| — the
// retrieval order ProPolyne's progressive evaluation uses ("most important
// query coefficients first").
func (s Sparse) Ordered() []Entry {
	out := make([]Entry, 0, len(s))
	for i, v := range s {
		out = append(out, Entry{i, v})
	}
	sort.Slice(out, func(a, b int) bool {
		va, vb := math.Abs(out[a].Value), math.Abs(out[b].Value)
		if va != vb {
			return va > vb
		}
		return out[a].Index < out[b].Index
	})
	return out
}

// Energy returns Σ v² over the entries.
func (s Sparse) Energy() float64 {
	var e float64
	for _, v := range s {
		e += v * v
	}
	return e
}

// DeltaTransform returns the wavelet transform of w·e_index (a single data
// point of weight w at the given position) on a length-n domain, computed by
// a sparse filter cascade in O(filterLen·log n · filterLen) time. This is
// the incremental-append path: inserting a tuple into a wavelet-transformed
// relation touches only these coefficients.
func DeltaTransform(n int, index int, w float64, f Filter, levels int) Sparse {
	checkLength(n)
	maxL := MaxLevels(n, f)
	if levels < 0 || levels > maxL {
		levels = maxL
	}
	out := make(Sparse)
	cur := Sparse{index: w}
	l := f.Len()
	size := n
	for j := 0; j < levels; j++ {
		half := size / 2
		nextA := make(Sparse, len(cur))
		for idx, v := range cur {
			// Positions k whose analysis window 2k+m ≡ idx (mod size).
			for m := 0; m < l; m++ {
				d := idx - m
				// Solve 2k ≡ d (mod size): k exists iff d is even after
				// wrapping; the window wraps around the periodic boundary.
				d = ((d % size) + size) % size
				if d%2 != 0 {
					continue
				}
				k := d / 2
				nextA.Add(k, f.H[m]*v)
				// Detail coefficients at this level occupy [half, size) of
				// the working prefix, which is already their final
				// standard-layout position.
				out.Add(half+k, f.G[m]*v)
			}
		}
		cur = nextA
		size = half
	}
	// Remaining approximation coefficients sit at the front of the layout.
	for k, v := range cur {
		out.Add(k, v)
	}
	return out.Trim(1e-14 * math.Abs(w))
}
