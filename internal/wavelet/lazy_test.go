package wavelet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"aims/internal/vec"
)

// denseQuery materialises the query vector and transforms it — the O(n log n)
// reference the lazy transform must match exactly.
func denseQuery(n, lo, hi int, p vec.Poly, f Filter, levels int) []float64 {
	q := make([]float64, n)
	for k := lo; k <= hi; k++ {
		q[k] = p.Eval(float64(k))
	}
	w, _ := Transform(q, f, levels)
	return w
}

func sparseMatchesDense(t *testing.T, s Sparse, dense []float64, tol float64, ctx string) {
	t.Helper()
	got := s.Dense(len(dense))
	for i := range dense {
		if math.Abs(got[i]-dense[i]) > tol {
			t.Fatalf("%s: coefficient %d: lazy %v vs dense %v", ctx, i, got[i], dense[i])
		}
	}
}

func TestLazyQueryCountHaar(t *testing.T) {
	// COUNT over [3, 11] on n=16.
	s, err := LazyQuery(16, 3, 11, vec.PolyConst(1), Haar, -1)
	if err != nil {
		t.Fatal(err)
	}
	sparseMatchesDense(t, s, denseQuery(16, 3, 11, vec.PolyConst(1), Haar, -1), 1e-10, "count")
}

func TestLazyQueryMatchesDenseExhaustiveSmall(t *testing.T) {
	// Every (lo, hi) pair on a small domain, all filters, degrees 0..2.
	const n = 32
	polys := []vec.Poly{vec.PolyConst(1), {0, 1}, {2, -1, 0.5}}
	for _, f := range Filters {
		for _, p := range polys {
			if f.VanishingMoments <= p.Degree() {
				continue // dense fallback covered elsewhere
			}
			for lo := 0; lo < n; lo += 5 {
				for hi := lo; hi < n; hi += 4 {
					s, err := LazyQuery(n, lo, hi, p, f, -1)
					if err != nil {
						t.Fatal(err)
					}
					tol := 1e-8 * (1 + math.Abs(p.Eval(float64(n))))
					sparseMatchesDense(t, s, denseQuery(n, lo, hi, p, f, -1), tol,
						f.Name)
				}
			}
		}
	}
}

func TestLazyQueryProperty(t *testing.T) {
	f := func(seed int64, filterIdx, degIdx uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		fl := Filters[int(filterIdx)%len(Filters)]
		deg := int(degIdx) % fl.VanishingMoments // keep sparse mode
		n := 1 << (4 + rng.Intn(6))              // 16..512
		lo := rng.Intn(n)
		hi := lo + rng.Intn(n-lo)
		p := make(vec.Poly, deg+1)
		for i := range p {
			p[i] = rng.NormFloat64()
		}
		s, err := LazyQuery(n, lo, hi, p, fl, -1)
		if err != nil {
			return false
		}
		dense := denseQuery(n, lo, hi, p, fl, -1)
		got := s.Dense(n)
		scale := 1.0
		for _, v := range dense {
			if a := math.Abs(v); a > scale {
				scale = a
			}
		}
		for i := range dense {
			if math.Abs(got[i]-dense[i]) > 1e-7*scale {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestLazyQueryDenseFallback(t *testing.T) {
	// Haar (1 vanishing moment) with a degree-1 polynomial: still exact,
	// just not sparse.
	p := vec.Poly{0, 1}
	s, err := LazyQuery(64, 10, 50, p, Haar, -1)
	if err != nil {
		t.Fatal(err)
	}
	sparseMatchesDense(t, s, denseQuery(64, 10, 50, p, Haar, -1), 1e-7, "fallback")
}

func TestLazyQuerySparsity(t *testing.T) {
	// The whole point: O(filterLen · log n) nonzeros for a COUNT query vs
	// n/2-ish for the dense vector.
	const n = 1 << 14
	s, err := LazyQuery(n, 100, n-200, vec.PolyConst(1), Haar, -1)
	if err != nil {
		t.Fatal(err)
	}
	logN := 14
	if len(s) > 4*logN {
		t.Fatalf("haar count query has %d nonzeros, want ≤ %d", len(s), 4*logN)
	}
	// Degree-1 with db2.
	s2, err := LazyQuery(n, 513, 10000, vec.Poly{0, 1}, D4, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(s2) > 12*logN {
		t.Fatalf("db2 degree-1 query has %d nonzeros, want ≤ %d", len(s2), 12*logN)
	}
}

func TestLazyQueryRangeSumEquivalence(t *testing.T) {
	// End-to-end: Σ x[k]·p(k) over range == ⟨x̂, q̂⟩.
	rng := rand.New(rand.NewSource(77))
	const n = 256
	x := randSignal(rng, n)
	for _, tc := range []struct {
		p vec.Poly
		f Filter
	}{
		{vec.PolyConst(1), Haar},
		{vec.Poly{0, 1}, D4},
		{vec.Poly{1, -2, 3}, D6},
	} {
		w, lv := Transform(x, tc.f, -1)
		lo, hi := 17, 201
		var want float64
		for k := lo; k <= hi; k++ {
			want += x[k] * tc.p.Eval(float64(k))
		}
		q, err := LazyQuery(n, lo, hi, tc.p, tc.f, lv)
		if err != nil {
			t.Fatal(err)
		}
		got := q.Dot(w)
		if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
			t.Fatalf("%s: range-sum %v, want %v", tc.f.Name, got, want)
		}
	}
}

func TestLazyQueryFullRange(t *testing.T) {
	// Full-domain queries exercise the wrapping-window candidates.
	const n = 64
	for _, f := range Filters {
		s, err := LazyQuery(n, 0, n-1, vec.PolyConst(1), f, -1)
		if err != nil {
			t.Fatal(err)
		}
		sparseMatchesDense(t, s, denseQuery(n, 0, n-1, vec.PolyConst(1), f, -1),
			1e-8, "full-"+f.Name)
	}
}

func TestLazyQuerySingleCell(t *testing.T) {
	const n = 128
	for _, f := range Filters {
		s, err := LazyQuery(n, 77, 77, vec.Poly{0, 0, 1}, f, -1)
		if err != nil {
			t.Fatal(err)
		}
		sparseMatchesDense(t, s, denseQuery(n, 77, 77, vec.Poly{0, 0, 1}, f, -1),
			1e-7*77*77, "cell-"+f.Name)
	}
}

func TestLazyQueryEdges(t *testing.T) {
	if _, err := LazyQuery(64, -1, 5, vec.PolyConst(1), Haar, -1); err == nil {
		t.Fatal("expected error for negative lo")
	}
	if _, err := LazyQuery(64, 0, 64, vec.PolyConst(1), Haar, -1); err == nil {
		t.Fatal("expected error for hi == n")
	}
	s, err := LazyQuery(64, 10, 5, vec.PolyConst(1), Haar, -1)
	if err != nil || len(s) != 0 {
		t.Fatalf("empty range: %v, %v", s, err)
	}
}

func TestLazyQueryPartialLevels(t *testing.T) {
	const n = 256
	p := vec.Poly{0, 1}
	s, err := LazyQuery(n, 30, 200, p, D4, 3)
	if err != nil {
		t.Fatal(err)
	}
	sparseMatchesDense(t, s, denseQuery(n, 30, 200, p, D4, 3), 1e-7*200, "partial")
}

func TestDeltaTransformMatchesDense(t *testing.T) {
	const n = 128
	rng := rand.New(rand.NewSource(5))
	for _, f := range Filters {
		idx := rng.Intn(n)
		w := 2.5
		s := DeltaTransform(n, idx, w, f, -1)
		dense := make([]float64, n)
		dense[idx] = w
		ref, _ := Transform(dense, f, -1)
		sparseMatchesDense(t, s, ref, 1e-10, "delta-"+f.Name)
		// Sparsity: O(filterLen · log n).
		if len(s) > f.Len()*8 {
			t.Fatalf("%s: delta has %d nonzeros", f.Name, len(s))
		}
	}
}

func TestDeltaTransformAccumulates(t *testing.T) {
	// Appending tuples one at a time must equal transforming the batch.
	const n = 64
	rng := rand.New(rand.NewSource(6))
	data := make([]float64, n)
	acc := make([]float64, n)
	for i := 0; i < 20; i++ {
		idx := rng.Intn(n)
		w := rng.NormFloat64()
		data[idx] += w
		for pos, v := range DeltaTransform(n, idx, w, D6, -1) {
			acc[pos] += v
		}
	}
	ref, _ := Transform(data, D6, -1)
	for i := range ref {
		if math.Abs(acc[i]-ref[i]) > 1e-9 {
			t.Fatalf("accumulated delta mismatch at %d: %v vs %v", i, acc[i], ref[i])
		}
	}
}
