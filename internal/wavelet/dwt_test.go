package wavelet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randSignal(rng *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

func TestFilterOrthonormality(t *testing.T) {
	for _, f := range Filters {
		var hh, hg float64
		for m := range f.H {
			hh += f.H[m] * f.H[m]
			hg += f.H[m] * f.G[m]
		}
		if math.Abs(hh-1) > 1e-10 {
			t.Errorf("%s: ‖h‖² = %v, want 1", f.Name, hh)
		}
		// Lowpass sums to √2; highpass sums to 0 (≥1 vanishing moment).
		var hs, gs float64
		for m := range f.H {
			hs += f.H[m]
			gs += f.G[m]
		}
		if math.Abs(hs-math.Sqrt2) > 1e-10 {
			t.Errorf("%s: Σh = %v, want √2", f.Name, hs)
		}
		if math.Abs(gs) > 1e-10 {
			t.Errorf("%s: Σg = %v, want 0", f.Name, gs)
		}
		// Vanishing moments: Σ g[m]·m^p == 0 for p < VanishingMoments.
		for p := 0; p < f.VanishingMoments; p++ {
			var s float64
			for m := range f.G {
				s += f.G[m] * math.Pow(float64(m), float64(p))
			}
			if math.Abs(s) > 1e-8 {
				t.Errorf("%s: moment %d = %v, want 0", f.Name, p, s)
			}
		}
	}
}

func TestByName(t *testing.T) {
	f, err := ByName("db3")
	if err != nil || f.Name != "db3" {
		t.Fatalf("ByName(db3) = %v, %v", f.Name, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected error for unknown filter")
	}
}

func TestForDegree(t *testing.T) {
	cases := map[int]string{-1: "haar", 0: "haar", 1: "db2", 2: "db3", 3: "db4"}
	for deg, want := range cases {
		f, err := ForDegree(deg)
		if err != nil || f.Name != want {
			t.Errorf("ForDegree(%d) = %v, %v; want %s", deg, f.Name, err, want)
		}
	}
	if _, err := ForDegree(10); err == nil {
		t.Fatal("expected error for huge degree")
	}
}

func TestMaxLevels(t *testing.T) {
	if got := MaxLevels(16, Haar); got != 4 {
		t.Errorf("MaxLevels(16, haar) = %d, want 4", got)
	}
	if got := MaxLevels(16, D4); got != 3 {
		t.Errorf("MaxLevels(16, db2) = %d, want 3", got)
	}
	if got := MaxLevels(16, D8); got != 2 {
		t.Errorf("MaxLevels(16, db4) = %d, want 2", got)
	}
	if got := MaxLevels(4, D8); got != 0 {
		t.Errorf("MaxLevels(4, db4) = %d, want 0", got)
	}
}

func TestRoundTripAllFilters(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, f := range Filters {
		for _, n := range []int{8, 64, 256} {
			x := randSignal(rng, n)
			w, lv := Transform(x, f, -1)
			back := Inverse(w, f, lv)
			for i := range x {
				if math.Abs(back[i]-x[i]) > 1e-10 {
					t.Fatalf("%s n=%d: round trip mismatch at %d: %v vs %v",
						f.Name, n, i, back[i], x[i])
				}
			}
		}
	}
}

func TestRoundTripPartialLevels(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := randSignal(rng, 128)
	w, lv := Transform(x, D6, 2)
	if lv != 2 {
		t.Fatalf("levels = %d, want 2", lv)
	}
	back := Inverse(w, D6, 2)
	for i := range x {
		if math.Abs(back[i]-x[i]) > 1e-10 {
			t.Fatalf("partial round trip mismatch at %d", i)
		}
	}
}

func TestParsevalProperty(t *testing.T) {
	// Orthonormality: ‖x‖ == ‖Transform(x)‖ for every filter.
	f := func(seed int64, filterIdx uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		fl := Filters[int(filterIdx)%len(Filters)]
		n := 1 << (3 + rng.Intn(6))
		x := randSignal(rng, n)
		var ex float64
		for _, v := range x {
			ex += v * v
		}
		w, _ := Transform(x, fl, -1)
		var ew float64
		for _, v := range w {
			ew += v * v
		}
		return math.Abs(ex-ew) <= 1e-9*(1+ex)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestInnerProductPreservedProperty(t *testing.T) {
	// ⟨x, y⟩ == ⟨x̂, ŷ⟩: the identity ProPolyne rests on.
	f := func(seed int64, filterIdx uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		fl := Filters[int(filterIdx)%len(Filters)]
		n := 1 << (3 + rng.Intn(5))
		x, y := randSignal(rng, n), randSignal(rng, n)
		var dot float64
		for i := range x {
			dot += x[i] * y[i]
		}
		wx, _ := Transform(x, fl, -1)
		wy, _ := Transform(y, fl, -1)
		var dotW float64
		for i := range wx {
			dotW += wx[i] * wy[i]
		}
		return math.Abs(dot-dotW) <= 1e-8*(1+math.Abs(dot))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestHaarTransformKnownValues(t *testing.T) {
	x := []float64{1, 3, 5, 7}
	w, lv := Transform(x, Haar, -1)
	if lv != 2 {
		t.Fatalf("levels = %d", lv)
	}
	// Overall average coefficient = sum/√N·... for orthonormal Haar the
	// first coefficient is Σx/√N · √N/√N… directly: a2[0] = (1+3+5+7)/2 = 8.
	if math.Abs(w[0]-8) > 1e-12 {
		t.Errorf("w[0] = %v, want 8", w[0])
	}
	// Finest details: (1-3)/√2, (5-7)/√2.
	if math.Abs(w[2]-(-math.Sqrt2)) > 1e-12 || math.Abs(w[3]-(-math.Sqrt2)) > 1e-12 {
		t.Errorf("finest details = %v %v, want -√2 -√2", w[2], w[3])
	}
}

func TestAnalyzePanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Analyze(make([]float64, 12), Haar, -1)
}

func TestBandOffsets(t *testing.T) {
	// n=16, 4 levels: layout [a4(1) | d4(1) | d3(2) | d2(4) | d1(8)].
	if off, ln := ApproxBand(16, 4); off != 0 || ln != 1 {
		t.Errorf("ApproxBand = %d,%d", off, ln)
	}
	if off, ln := BandOffset(16, 4, 1); off != 8 || ln != 8 {
		t.Errorf("BandOffset level1 = %d,%d", off, ln)
	}
	if off, ln := BandOffset(16, 4, 4); off != 1 || ln != 1 {
		t.Errorf("BandOffset level4 = %d,%d", off, ln)
	}
}
