package wavelet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestStreamingHaarMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 16, 64, 256} {
		x := randSignal(rng, n)
		s := NewStreamingHaar()
		s.PushAll(x)
		got, size := s.Finalize(0)
		if size != n {
			t.Fatalf("n=%d: padded size %d", n, size)
		}
		want, _ := Transform(x, Haar, -1)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-10 {
				t.Fatalf("n=%d: coefficient %d: %v vs %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestStreamingHaarPadsNonPowerOfTwo(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := randSignal(rng, 100)
	s := NewStreamingHaar()
	s.PushAll(x)
	got, size := s.Finalize(0)
	if size != 128 {
		t.Fatalf("size = %d, want 128", size)
	}
	padded := make([]float64, 128)
	copy(padded, x)
	want, _ := Transform(padded, Haar, -1)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-10 {
			t.Fatalf("coefficient %d: %v vs %v", i, got[i], want[i])
		}
	}
	if s.Len() != 100 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestStreamingHaarMinLen(t *testing.T) {
	s := NewStreamingHaar()
	s.Push(3)
	got, size := s.Finalize(16)
	if size != 16 {
		t.Fatalf("size = %d", size)
	}
	want := make([]float64, 16)
	want[0] = 3
	ref, _ := Transform(want, Haar, -1)
	for i := range ref {
		if math.Abs(got[i]-ref[i]) > 1e-10 {
			t.Fatalf("coefficient %d", i)
		}
	}
}

func TestStreamingHaarDetailsAreFinal(t *testing.T) {
	// Detail coefficients must never change once emitted.
	rng := rand.New(rand.NewSource(3))
	s := NewStreamingHaar()
	recorded := map[[2]int]float64{}
	for i := 0; i < 200; i++ {
		s.Push(rng.NormFloat64())
		for lv := 1; lv <= 4; lv++ {
			for k := 0; k < s.DetailCount(lv); k++ {
				key := [2]int{lv, k}
				v := s.Detail(lv, k)
				if old, ok := recorded[key]; ok && old != v {
					t.Fatalf("detail (%d,%d) changed from %v to %v", lv, k, old, v)
				}
				recorded[key] = v
			}
		}
	}
	if s.DetailCount(1) != 100 {
		t.Fatalf("level-1 details = %d", s.DetailCount(1))
	}
	if s.DetailCount(99) != 0 {
		t.Fatal("absent level should report 0")
	}
}

func TestStreamingHaarDetailPanics(t *testing.T) {
	s := NewStreamingHaar()
	s.Push(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Detail(1, 0)
}

func TestStreamingHaarFinalizeIsNonDestructive(t *testing.T) {
	s := NewStreamingHaar()
	s.PushAll([]float64{1, 2, 3})
	a, _ := s.Finalize(0)
	s.Push(4)
	b, _ := s.Finalize(0)
	// After pushing the 4th sample, the transform must equal the batch of
	// all four — the early Finalize must not have corrupted state.
	want, _ := Transform([]float64{1, 2, 3, 4}, Haar, -1)
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-10 {
			t.Fatalf("post-finalize push broken at %d", i)
		}
	}
	_ = a
}

func TestStreamingHaarProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(500)
		x := randSignal(rng, n)
		s := NewStreamingHaar()
		s.PushAll(x)
		got, size := s.Finalize(0)
		padded := make([]float64, size)
		copy(padded, x)
		want, _ := Transform(padded, Haar, -1)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
