package wavelet

import "fmt"

// StreamingHaar maintains the Haar wavelet transform of an append-only
// signal incrementally — the property §3.1.1 singles out: "the complexity
// of wavelet transformation for incremental update (append) is low making
// wavelets the appropriate choice given the continuous data stream nature
// of immersidata, which is append only."
//
// Each Push costs amortised O(1): one pending value is kept per level, and
// a sample cascades upward only along carry chains (the classic one-pass
// wavelet construction). Detail coefficients are final the moment they are
// emitted; Finalize pads the signal to the next power of two with zeros
// and returns the full standard-layout transform, bit-exact with the batch
// Analyze.
type StreamingHaar struct {
	n       int
	pending []pendingLevel
	// details[j] collects the level-(j+1) detail coefficients in order.
	details [][]float64
}

type pendingLevel struct {
	value float64
	full  bool
}

// NewStreamingHaar returns an empty streaming transformer.
func NewStreamingHaar() *StreamingHaar {
	return &StreamingHaar{}
}

// Len returns the number of samples pushed so far.
func (s *StreamingHaar) Len() int { return s.n }

// Push appends one sample, cascading completed pairs upward.
func (s *StreamingHaar) Push(x float64) {
	s.n++
	v := x
	for level := 0; ; level++ {
		if level == len(s.pending) {
			s.pending = append(s.pending, pendingLevel{})
			s.details = append(s.details, nil)
		}
		p := &s.pending[level]
		if !p.full {
			p.value = v
			p.full = true
			return
		}
		// Pair completed: emit the detail, carry the average upward.
		a := (p.value + v) / sqrt2
		d := (p.value - v) / sqrt2
		s.details[level] = append(s.details[level], d)
		p.full = false
		v = a
	}
}

// PushAll appends a batch.
func (s *StreamingHaar) PushAll(xs []float64) {
	for _, x := range xs {
		s.Push(x)
	}
}

// DetailCount returns how many finalised detail coefficients exist at the
// given analysis level (1 = finest).
func (s *StreamingHaar) DetailCount(level int) int {
	if level < 1 || level > len(s.details) {
		return 0
	}
	return len(s.details[level-1])
}

// Detail returns the i-th finalised detail coefficient of the given level
// (1 = finest). These values never change as the stream grows — the
// property that lets the storage layer write them out immediately.
func (s *StreamingHaar) Detail(level, i int) float64 {
	if level < 1 || level > len(s.details) || i < 0 || i >= len(s.details[level-1]) {
		panic(fmt.Sprintf("wavelet: streaming detail (%d,%d) not available", level, i))
	}
	return s.details[level-1][i]
}

// Finalize pads the stream with zeros to the next power of two (at least
// minLen, if given > 0) and returns the complete standard-layout transform
// plus the padded length. The transformer remains usable: finalisation
// works on a copy.
func (s *StreamingHaar) Finalize(minLen int) ([]float64, int) {
	n := s.n
	if n < minLen {
		n = minLen
	}
	size := 1
	for size < n {
		size *= 2
	}
	if size == 0 || n == 0 {
		size = 1
	}
	// Copy the cascade state and feed zeros.
	cp := &StreamingHaar{n: s.n}
	cp.pending = append([]pendingLevel(nil), s.pending...)
	cp.details = make([][]float64, len(s.details))
	for j := range s.details {
		cp.details[j] = append([]float64(nil), s.details[j]...)
	}
	for cp.n < size {
		cp.Push(0)
	}
	// Assemble the standard layout: [a_J | d_J | … | d_1].
	out := make([]float64, size)
	// The final approximation is the pending value at the top level (the
	// cascade leaves exactly one pending value when n is a power of two).
	top := len(cp.pending) - 1
	if top >= 0 && cp.pending[top].full {
		out[0] = cp.pending[top].value
	} else if size == 1 {
		out[0] = 0
	}
	levels := 0
	for 1<<uint(levels) < size {
		levels++
	}
	for lv := 1; lv <= levels; lv++ {
		off := size >> uint(lv)
		det := cp.details[lv-1]
		copy(out[off:off+len(det)], det)
	}
	return out, size
}
