// Package wavelet implements the transform substrate of AIMS: orthonormal
// periodic discrete wavelet transforms (Haar and Daubechies families),
// tensor-product multidimensional transforms, the Haar error tree used by
// the storage subsystem, sparse single-point (append) updates, and the
// *lazy wavelet transform* that maps polynomial range-sum queries into the
// wavelet domain in polylogarithmic time — the mechanism underlying
// ProPolyne (§3.3 of the paper).
package wavelet

import (
	"fmt"
	"math"
)

// Filter is an orthonormal conjugate-mirror filter pair. H is the lowpass
// (scaling) filter; G the highpass (wavelet) filter derived from H by the
// alternating-flip construction g[m] = (-1)^m · h[L-1-m].
type Filter struct {
	Name string
	H    []float64
	G    []float64
	// VanishingMoments is the number p such that the wavelet annihilates
	// all polynomials of degree < p. ProPolyne query sparsity requires
	// VanishingMoments > degree of the range-sum polynomial.
	VanishingMoments int
}

// Len returns the filter length L.
func (f Filter) Len() int { return len(f.H) }

func newFilter(name string, h []float64, moments int) Filter {
	l := len(h)
	g := make([]float64, l)
	for m := 0; m < l; m++ {
		sign := 1.0
		if m%2 == 1 {
			sign = -1
		}
		g[m] = sign * h[l-1-m]
	}
	return Filter{Name: name, H: h, G: g, VanishingMoments: moments}
}

var (
	sqrt2 = math.Sqrt(2)

	// Haar is the 2-tap Haar filter (1 vanishing moment): supports COUNT
	// range-sums sparsely and is the basis of the storage error tree.
	Haar = newFilter("haar", []float64{1 / sqrt2, 1 / sqrt2}, 1)

	// D4 is Daubechies-4 (db2, 2 vanishing moments): degree-1 measures
	// (SUM) transform sparsely.
	D4 = newFilter("db2", []float64{
		(1 + math.Sqrt(3)) / (4 * sqrt2),
		(3 + math.Sqrt(3)) / (4 * sqrt2),
		(3 - math.Sqrt(3)) / (4 * sqrt2),
		(1 - math.Sqrt(3)) / (4 * sqrt2),
	}, 2)

	// D6 is Daubechies-6 (db3, 3 vanishing moments): supports degree-2
	// measures (VARIANCE, COVARIANCE cross terms) sparsely.
	D6 = newFilter("db3", []float64{
		0.3326705529509569,
		0.8068915093133388,
		0.4598775021193313,
		-0.13501102001039084,
		-0.08544127388224149,
		0.035226291882100656,
	}, 3)

	// D8 is Daubechies-8 (db4, 4 vanishing moments): headroom for cubic
	// measures (skew-style aggregates).
	D8 = newFilter("db4", []float64{
		0.23037781330885523,
		0.7148465705525415,
		0.6308807679295904,
		-0.02798376941698385,
		-0.18703481171888114,
		0.030841381835986965,
		0.032883011666982945,
		-0.010597401784997278,
	}, 4)
)

// Filters lists all built-in filters, shortest first. The wavelet-packet
// best-basis machinery and the per-dimension basis chooser iterate over it.
var Filters = []Filter{Haar, D4, D6, D8}

// ByName returns the built-in filter with the given name.
func ByName(name string) (Filter, error) {
	for _, f := range Filters {
		if f.Name == name {
			return f, nil
		}
	}
	return Filter{}, fmt.Errorf("wavelet: unknown filter %q", name)
}

// ForDegree returns the shortest built-in filter whose vanishing moments
// exceed the given polynomial degree, as required for sparse lazy query
// transforms. Degree -1 (the zero polynomial) and 0 map to Haar.
func ForDegree(degree int) (Filter, error) {
	for _, f := range Filters {
		if f.VanishingMoments > degree {
			return f, nil
		}
	}
	return Filter{}, fmt.Errorf("wavelet: no built-in filter with > %d vanishing moments", degree)
}
