package synth

import (
	"math"
	"math/rand"
	"testing"
)

func TestVocabularyDeterministicAndDistinct(t *testing.T) {
	a := Vocabulary(8, 3)
	b := Vocabulary(8, 3)
	if len(a) != 8 {
		t.Fatalf("vocab size = %d", len(a))
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].BaseTicks != b[i].BaseTicks {
			t.Fatal("same seed must give same vocabulary")
		}
		for f := range a[i].KeyFrames {
			for d := range a[i].KeyFrames[f] {
				if a[i].KeyFrames[f][d] != b[i].KeyFrames[f][d] {
					t.Fatal("keyframes not deterministic")
				}
			}
		}
	}
	// Distinct signs must have distinct home postures.
	var dist float64
	for d := 0; d < SignDims; d++ {
		diff := a[0].KeyFrames[0][d] - a[1].KeyFrames[0][d]
		dist += diff * diff
	}
	if dist < 1 {
		t.Fatal("signs 0 and 1 are nearly identical")
	}
}

func TestRenderDurationScaling(t *testing.T) {
	v := Vocabulary(1, 9)[0]
	rng := rand.New(rand.NewSource(1))
	short := v.Render(0.7, 0, rng)
	long := v.Render(1.3, 0, rng)
	if len(long) <= len(short) {
		t.Fatalf("durations: short %d, long %d", len(short), len(long))
	}
	wantShort := int(math.Round(float64(v.BaseTicks) * 0.7))
	if len(short) != wantShort {
		t.Fatalf("short = %d, want %d", len(short), wantShort)
	}
	for _, fr := range short {
		if len(fr) != SignDims {
			t.Fatalf("frame width %d", len(fr))
		}
	}
}

func TestRenderIsSmooth(t *testing.T) {
	v := Vocabulary(1, 5)[0]
	rng := rand.New(rand.NewSource(2))
	frames := v.Render(1, 0, rng)
	// Noise-free rendering: per-tick channel jumps must be small relative
	// to the overall range.
	for i := 1; i < len(frames); i++ {
		for d := 0; d < SignDims; d++ {
			jump := math.Abs(frames[i][d] - frames[i-1][d])
			if jump > jointRange(d)*0.5 {
				t.Fatalf("discontinuity at tick %d dim %d: %v", i, d, jump)
			}
		}
	}
}

func TestSignStreamSegmentsConsistent(t *testing.T) {
	vocab := Vocabulary(6, 11)
	frames, segs := SignStream(vocab, StreamOptions{
		Count: 10, Noise: 0.3, DurJitter: 0.3, GapTicks: 30, Seed: 4,
	})
	if len(segs) != 10 {
		t.Fatalf("segments = %d", len(segs))
	}
	prevEnd := 0
	for _, seg := range segs {
		if seg.Start < prevEnd {
			t.Fatalf("segments overlap: %+v", seg)
		}
		if seg.End <= seg.Start || seg.End > len(frames) {
			t.Fatalf("bad segment bounds: %+v (stream %d)", seg, len(frames))
		}
		prevEnd = seg.End
	}
	names := map[string]bool{}
	for _, seg := range segs {
		names[seg.Name] = true
	}
	if len(names) < 2 {
		t.Fatal("stream should contain multiple distinct signs")
	}
}

func TestNewCohortBalance(t *testing.T) {
	cohort := NewCohort(100, 0.5, 21)
	var adhd int
	for _, s := range cohort {
		if s.ADHD {
			adhd++
		}
	}
	if adhd != 50 {
		t.Fatalf("ADHD count = %d, want 50", adhd)
	}
	// Shuffled: the first 50 must not all be ADHD.
	var firstHalf int
	for _, s := range cohort[:50] {
		if s.ADHD {
			firstHalf++
		}
	}
	if firstHalf == 50 || firstHalf == 0 {
		t.Fatal("cohort not shuffled")
	}
}

func TestGenerateSessionShape(t *testing.T) {
	subj := Subject{ID: 1, ADHD: true, Seed: 42}
	s := GenerateSession(subj, 3000)
	if len(s.Frames) != 3000 {
		t.Fatalf("frames = %d", len(s.Frames))
	}
	for _, fr := range s.Frames[:10] {
		if len(fr) != SessionDims {
			t.Fatalf("frame width = %d, want %d", len(fr), SessionDims)
		}
	}
	if len(s.Stimuli) == 0 || len(s.Distractions) == 0 {
		t.Fatal("session missing stimuli or distractions")
	}
	if len(s.Responses) == 0 {
		t.Fatal("no responses recorded")
	}
	// Determinism.
	s2 := GenerateSession(subj, 3000)
	if s2.Frames[100][7] != s.Frames[100][7] {
		t.Fatal("session not deterministic")
	}
}

func TestADHDSubjectsMoveMore(t *testing.T) {
	// Cohort-level motion separation — the basis of the 86 % SVM claim.
	var adhdSpeed, ctrlSpeed float64
	var na, nc int
	for i := 0; i < 12; i++ {
		adhd := GenerateSession(Subject{ID: i, ADHD: true, Seed: int64(1000 + i)}, 2000)
		ctrl := GenerateSession(Subject{ID: i, ADHD: false, Seed: int64(2000 + i)}, 2000)
		fa := MotionSpeedFeatures(adhd)
		fc := MotionSpeedFeatures(ctrl)
		for d := 0; d < len(fa); d += 2 { // mean-speed features
			adhdSpeed += fa[d]
			ctrlSpeed += fc[d]
			na++
			nc++
		}
	}
	if adhdSpeed/float64(na) <= ctrlSpeed/float64(nc) {
		t.Fatalf("ADHD mean speed %v not above control %v",
			adhdSpeed/float64(na), ctrlSpeed/float64(nc))
	}
}

func TestADHDTaskPerformanceWorse(t *testing.T) {
	var adhdHits, ctrlHits, adhdRT, ctrlRT float64
	for i := 0; i < 10; i++ {
		a := GenerateSession(Subject{ID: i, ADHD: true, Seed: int64(3000 + i)}, 4000)
		c := GenerateSession(Subject{ID: i, ADHD: false, Seed: int64(4000 + i)}, 4000)
		adhdHits += a.HitRate()
		ctrlHits += c.HitRate()
		adhdRT += a.MeanReactionTicks()
		ctrlRT += c.MeanReactionTicks()
	}
	if adhdHits >= ctrlHits {
		t.Fatalf("ADHD hit rate %v should be below control %v", adhdHits/10, ctrlHits/10)
	}
	if adhdRT <= ctrlRT {
		t.Fatalf("ADHD reaction time %v should exceed control %v", adhdRT/10, ctrlRT/10)
	}
}

func TestMotionSpeedFeatureWidth(t *testing.T) {
	s := GenerateSession(Subject{ID: 0, Seed: 5}, 500)
	f := MotionSpeedFeatures(s)
	if len(f) != 2*TrackerCount {
		t.Fatalf("features = %d, want %d", len(f), 2*TrackerCount)
	}
	for i, v := range f {
		if math.IsNaN(v) || v < 0 {
			t.Fatalf("feature %d = %v", i, v)
		}
	}
}

func TestUniformCube(t *testing.T) {
	c := UniformCube([]int{8, 8}, 10, 1)
	if len(c) != 64 {
		t.Fatalf("size = %d", len(c))
	}
	for _, v := range c {
		if v < 0 || v > 10 {
			t.Fatalf("value %v out of range", v)
		}
	}
}

func TestZipfCubeMassAndSkew(t *testing.T) {
	c := ZipfCube([]int{16, 16}, 5000, 1.3, 2)
	var total float64
	for _, v := range c {
		total += v
	}
	if total != 5000 {
		t.Fatalf("total mass = %v, want 5000", total)
	}
	// Skew: the origin cell region must hold far more than the far corner.
	var nearOrigin, farCorner float64
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			nearOrigin += c[i*16+j]
			farCorner += c[(12+i)*16+12+j]
		}
	}
	if nearOrigin < 10*farCorner+1 {
		t.Fatalf("Zipf skew weak: origin %v vs corner %v", nearOrigin, farCorner)
	}
}

func TestSmoothCubeIsSmooth(t *testing.T) {
	dims := []int{32, 32}
	c := SmoothCube(dims, 3)
	// Average neighbour difference must be small relative to value range.
	var maxV, minV float64 = math.Inf(-1), math.Inf(1)
	var diffSum float64
	var diffN int
	for i := 0; i < 32; i++ {
		for j := 0; j < 32; j++ {
			v := c[i*32+j]
			if v > maxV {
				maxV = v
			}
			if v < minV {
				minV = v
			}
			if j > 0 {
				diffSum += math.Abs(v - c[i*32+j-1])
				diffN++
			}
		}
	}
	if (maxV - minV) <= 0 {
		t.Fatal("flat cube")
	}
	if diffSum/float64(diffN) > (maxV-minV)/4 {
		t.Fatalf("cube not smooth: avg diff %v vs range %v", diffSum/float64(diffN), maxV-minV)
	}
}

func TestClusteredTuples(t *testing.T) {
	dims := []int{64, 64}
	pts := ClusteredTuples(dims, 1000, 4, 9)
	if len(pts) != 1000 {
		t.Fatalf("tuples = %d", len(pts))
	}
	for _, p := range pts {
		for d := range dims {
			if p[d] < 0 || p[d] >= dims[d] {
				t.Fatalf("point out of bounds: %v", p)
			}
		}
	}
}
