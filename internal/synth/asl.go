// Package synth generates the workloads the paper evaluates on but whose
// originals are unavailable: American Sign Language hand-motion streams
// captured by a 28-sensor glove rig (§2.2), ADHD Virtual-Classroom sessions
// with body trackers, attention tasks and distractions (§2.1), and the
// multidimensional datasets (smooth "atmospheric" fields, Zipf-skewed and
// uniform tuple sets) used by the ProPolyne experiments. Every generator is
// deterministic given its seed.
package synth

import (
	"fmt"
	"math"
	"math/rand"
)

// SignDims is the dimensionality of one hand-capture frame (CyberGlove 22
// + Polhemus 6).
const SignDims = 28

// Sign is one vocabulary entry: a smooth trajectory through joint-space
// keyframes. Different executions of the same sign vary in duration and
// amplitude but share the keyframe skeleton — exactly the variability the
// online recognition subsystem must absorb.
type Sign struct {
	Name      string
	KeyFrames [][]float64 // K × SignDims joint/pose targets
	BaseTicks int         // nominal duration at the device clock
}

// Vocabulary builds n distinguishable signs. Keyframes are drawn per sign
// from sign-specific joint postures, so two signs differ in both posture
// and motion path.
func Vocabulary(n int, seed int64) []Sign {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Sign, n)
	for s := range out {
		k := 4 + rng.Intn(4)
		frames := make([][]float64, k)
		// A per-sign "home posture" anchors all keyframes so the sign has
		// a coherent identity.
		home := make([]float64, SignDims)
		for d := range home {
			home[d] = jointRange(d) * (2*rng.Float64() - 1)
		}
		for f := range frames {
			fr := make([]float64, SignDims)
			for d := range fr {
				fr[d] = home[d] + jointRange(d)*0.6*(2*rng.Float64()-1)
			}
			frames[f] = fr
		}
		out[s] = Sign{
			Name:      fmt.Sprintf("sign-%02d", s),
			KeyFrames: frames,
			BaseTicks: 60 + rng.Intn(80), // 0.6–1.4 s at 100 Hz
		}
	}
	return out
}

// ConfusableVocabulary builds n signs that all share one home posture and
// differ only by keyframe deltas of amplitude spread·jointRange — the
// regime where similarity measures genuinely diverge (real ASL signs share
// hand shapes and differ in subtle motion). spread ∈ (0, 1]; smaller is
// harder.
func ConfusableVocabulary(n int, spread float64, seed int64) []Sign {
	rng := rand.New(rand.NewSource(seed))
	home := make([]float64, SignDims)
	for d := range home {
		home[d] = jointRange(d) * (2*rng.Float64() - 1) * 0.5
	}
	out := make([]Sign, n)
	for s := range out {
		k := 4 + rng.Intn(3)
		frames := make([][]float64, k)
		for f := range frames {
			fr := make([]float64, SignDims)
			for d := range fr {
				fr[d] = home[d] + jointRange(d)*spread*(2*rng.Float64()-1)
			}
			frames[f] = fr
		}
		out[s] = Sign{
			Name:      fmt.Sprintf("csign-%02d", s),
			KeyFrames: frames,
			BaseTicks: 60 + rng.Intn(80),
		}
	}
	return out
}

// jointRange returns the plausible half-range of channel d: joint angles
// span tens of degrees, tracker positions fractions of a metre.
func jointRange(d int) float64 {
	if d < 22 {
		return 45 // CyberGlove joint angle, degrees
	}
	if d < 25 {
		return 0.3 // Polhemus position, metres
	}
	return 60 // Polhemus rotation, degrees
}

// Render executes a sign: keyframes are interpolated with a cosine ramp
// over BaseTicks·durScale ticks, and per-channel sensor noise is added.
func (s Sign) Render(durScale, noise float64, rng *rand.Rand) [][]float64 {
	ticks := int(math.Round(float64(s.BaseTicks) * durScale))
	if ticks < 4 {
		ticks = 4
	}
	k := len(s.KeyFrames)
	out := make([][]float64, ticks)
	for i := 0; i < ticks; i++ {
		// Position along the keyframe path in [0, k-1].
		pos := float64(i) / float64(ticks-1) * float64(k-1)
		lo := int(pos)
		if lo >= k-1 {
			lo = k - 2
		}
		frac := pos - float64(lo)
		// Cosine easing gives C¹-smooth motion like a human hand.
		w := (1 - math.Cos(math.Pi*frac)) / 2
		frame := make([]float64, SignDims)
		for d := 0; d < SignDims; d++ {
			v := s.KeyFrames[lo][d]*(1-w) + s.KeyFrames[lo+1][d]*w
			frame[d] = v + noise*rng.NormFloat64()
		}
		out[i] = frame
	}
	return out
}

// Segment labels a region of a rendered stream with its ground-truth sign.
type Segment struct {
	Name       string
	Start, End int // tick range [Start, End)
}

// StreamOptions configures SignStream.
type StreamOptions struct {
	Count     int     // number of sign executions
	Noise     float64 // sensor noise stddev
	DurJitter float64 // ±fraction of duration variability (e.g. 0.3)
	GapTicks  int     // average rest gap between signs
	Seed      int64
}

// SignStream renders a continuous session: Count random vocabulary signs
// separated by rest gaps (hand near neutral), returning the frame stream
// and the ground-truth segmentation. This is the input of the online
// query-and-analysis experiments (E7).
func SignStream(vocab []Sign, opt StreamOptions) ([][]float64, []Segment) {
	rng := rand.New(rand.NewSource(opt.Seed))
	var frames [][]float64
	var segs []Segment
	rest := make([]float64, SignDims)
	appendRest := func(n int) {
		for i := 0; i < n; i++ {
			fr := make([]float64, SignDims)
			for d := range fr {
				fr[d] = rest[d] + opt.Noise*rng.NormFloat64()
			}
			frames = append(frames, fr)
		}
	}
	// transitionTicks smoothly moves the hand between postures — a real
	// hand cannot teleport from a sign's final pose back to rest.
	const transitionTicks = 15
	appendRamp := func(from, to []float64) {
		for i := 1; i <= transitionTicks; i++ {
			w := (1 - math.Cos(math.Pi*float64(i)/float64(transitionTicks))) / 2
			fr := make([]float64, SignDims)
			for d := range fr {
				fr[d] = from[d]*(1-w) + to[d]*w + opt.Noise*rng.NormFloat64()
			}
			frames = append(frames, fr)
		}
	}
	appendRest(opt.GapTicks/2 + 1)
	for c := 0; c < opt.Count; c++ {
		sign := vocab[rng.Intn(len(vocab))]
		durScale := 1 + opt.DurJitter*(2*rng.Float64()-1)
		body := sign.Render(durScale, opt.Noise, rng)
		appendRamp(rest, body[0])
		segs = append(segs, Segment{Name: sign.Name, Start: len(frames), End: len(frames) + len(body)})
		frames = append(frames, body...)
		appendRamp(body[len(body)-1], rest)
		gap := 1
		if opt.GapTicks > 0 {
			gap = opt.GapTicks/2 + rng.Intn(opt.GapTicks+1)
		}
		appendRest(gap)
	}
	return frames, segs
}
