package synth

import (
	"math"
	"math/rand"
)

// Dataset generators for the off-line query experiments (E3–E5). Each
// returns a dense frequency/measure cube in row-major order; ProPolyne's
// behaviour depends only on the cube's energy distribution, which these
// three families span: benign (smooth), adversarial (uniform random) and
// realistic (skewed).

// UniformCube fills a cube with i.i.d. uniform counts in [0, maxCount].
// White data has no wavelet structure at all — the worst case for data
// approximation.
func UniformCube(dims []int, maxCount float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, size(dims))
	for i := range out {
		out[i] = rng.Float64() * maxCount
	}
	return out
}

// ZipfCube scatters nTuples tuples over the cube with Zipf-distributed
// coordinates (skew s ≥ 1 concentrates mass near the origin of each
// dimension) — the shape of realistic categorical/measurement data.
func ZipfCube(dims []int, nTuples int, skew float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, size(dims))
	zipfs := make([]*rand.Zipf, len(dims))
	for d, n := range dims {
		zipfs[d] = rand.NewZipf(rng, skew, 1, uint64(n-1))
	}
	strides := stridesOf(dims)
	for t := 0; t < nTuples; t++ {
		off := 0
		for d := range dims {
			off += int(zipfs[d].Uint64()) * strides[d]
		}
		out[off]++
	}
	return out
}

// SmoothCube synthesises an "atmospheric" field like the NASA/JPL dataset
// of the paper's Fig. 4 demo: a sum of smooth low-frequency modes plus a
// few localised anomalies (storm cells). Smooth data compacts superbly
// under wavelets — the best case for data approximation.
func SmoothCube(dims []int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, size(dims))
	strides := stridesOf(dims)

	type mode struct {
		freq, phase []float64
		amp         float64
	}
	modes := make([]mode, 6)
	for m := range modes {
		fr := make([]float64, len(dims))
		ph := make([]float64, len(dims))
		for d := range dims {
			fr[d] = (0.5 + 2.5*rng.Float64()) / float64(dims[d])
			ph[d] = 2 * math.Pi * rng.Float64()
		}
		modes[m] = mode{freq: fr, phase: ph, amp: 10 / float64(m+1)}
	}
	type anomaly struct {
		center []int
		radius float64
		amp    float64
	}
	anomalies := make([]anomaly, 3)
	for a := range anomalies {
		c := make([]int, len(dims))
		for d := range dims {
			c[d] = rng.Intn(dims[d])
		}
		anomalies[a] = anomaly{center: c, radius: 2 + 4*rng.Float64(), amp: 25 * rng.Float64()}
	}

	idx := make([]int, len(dims))
	for off := range out {
		rem := off
		for d := len(dims) - 1; d >= 0; d-- {
			idx[d] = rem % dims[d]
			rem /= dims[d]
		}
		v := 20.0
		for _, m := range modes {
			arg := m.phase[0]
			for d := range dims {
				arg += 2 * math.Pi * m.freq[d] * float64(idx[d])
			}
			v += m.amp * math.Sin(arg)
		}
		for _, a := range anomalies {
			var d2 float64
			for d := range dims {
				diff := float64(idx[d] - a.center[d])
				d2 += diff * diff
			}
			v += a.amp * math.Exp(-d2/(2*a.radius*a.radius))
		}
		out[off] = v
	}
	_ = strides
	return out
}

// ClusteredTuples draws nTuples points from k Gaussian clusters inside the
// cube and returns their (integer) coordinates — tuple-level input for the
// relational/hybrid experiments.
func ClusteredTuples(dims []int, nTuples, k int, seed int64) [][]int {
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float64, k)
	spreads := make([]float64, k)
	for c := range centers {
		ctr := make([]float64, len(dims))
		for d := range dims {
			ctr[d] = rng.Float64() * float64(dims[d])
		}
		centers[c] = ctr
		spreads[c] = 1 + rng.Float64()*float64(dims[0])/8
	}
	out := make([][]int, nTuples)
	for t := range out {
		c := rng.Intn(k)
		pt := make([]int, len(dims))
		for d := range dims {
			v := int(math.Round(centers[c][d] + spreads[c]*rng.NormFloat64()))
			if v < 0 {
				v = 0
			}
			if v >= dims[d] {
				v = dims[d] - 1
			}
			pt[d] = v
		}
		out[t] = pt
	}
	return out
}

func size(dims []int) int {
	s := 1
	for _, n := range dims {
		s *= n
	}
	return s
}

func stridesOf(dims []int) []int {
	st := make([]int, len(dims))
	acc := 1
	for i := len(dims) - 1; i >= 0; i-- {
		st[i] = acc
		acc *= dims[i]
	}
	return st
}
