package synth

import (
	"math"
	"math/rand"

	"aims/internal/sensors"
)

// The ADHD Virtual-Classroom study (§2.1): subjects perform the AX
// attention task while distractions fire; trackers on head, hands and legs
// stream 6-D pose at the device clock. The generator encodes the study's
// working hypothesis — hyperactive subjects move more, fidget at higher
// frequency, and are disproportionately captured by distractions — with
// enough overlap between groups that classification is non-trivial.

// TrackerCount is the number of body trackers (head, two hands, two legs).
const TrackerCount = 5

// TrackerDims is the number of channels per tracker (x, y, z, h, p, r).
const TrackerDims = 6

// SessionDims is the width of one ADHD session frame.
const SessionDims = TrackerCount * TrackerDims

// Subject is one study participant.
type Subject struct {
	ID   int
	ADHD bool
	Seed int64
}

// Stimulus is one letter presentation of the AX task; IsTarget marks an X
// following an A (the pattern requiring a button press).
type Stimulus struct {
	Tick     int
	IsTarget bool
}

// Distraction is one scheduled classroom distraction.
type Distraction struct {
	Tick     int
	Duration int
	Kind     string
}

// Response records the subject's reaction to one stimulus.
type Response struct {
	Stimulus      int // index into Session.Stimuli
	Hit           bool
	ReactionTicks int // valid when Hit
	FalseAlarm    bool
}

// Session is one recorded Virtual-Classroom run.
type Session struct {
	Subject      Subject
	Rate         float64
	Frames       [][]float64 // T × SessionDims
	Stimuli      []Stimulus
	Distractions []Distraction
	Responses    []Response
}

var distractionKinds = []string{"ambient-noise", "paper-airplane", "student-walks-in", "window-activity"}

// NewCohort creates n subjects, a fraction of whom are ADHD-diagnosed.
func NewCohort(n int, adhdFraction float64, seed int64) []Subject {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Subject, n)
	nADHD := int(math.Round(float64(n) * adhdFraction))
	for i := range out {
		out[i] = Subject{ID: i, ADHD: i < nADHD, Seed: rng.Int63()}
	}
	// Shuffle so group membership is not a function of ID order.
	rng.Shuffle(n, func(i, j int) {
		out[i].ADHD, out[j].ADHD = out[j].ADHD, out[i].ADHD
	})
	return out
}

// GenerateSession simulates durTicks of a subject's Virtual-Classroom run
// at the standard device clock.
func GenerateSession(subj Subject, durTicks int) Session {
	rng := rand.New(rand.NewSource(subj.Seed))
	s := Session{Subject: subj, Rate: sensors.DefaultClock}

	// Distraction schedule: roughly every 6 s.
	for tick := 300 + rng.Intn(300); tick < durTicks-100; tick += 400 + rng.Intn(500) {
		s.Distractions = append(s.Distractions, Distraction{
			Tick:     tick,
			Duration: 100 + rng.Intn(200),
			Kind:     distractionKinds[rng.Intn(len(distractionKinds))],
		})
	}
	// Stimulus schedule: a letter every ~1.5 s; 25 % are AX targets.
	for tick := 150; tick < durTicks-150; tick += 120 + rng.Intn(80) {
		s.Stimuli = append(s.Stimuli, Stimulus{Tick: tick, IsTarget: rng.Float64() < 0.25})
	}

	// Group-dependent motion parameters driven by a latent hyperactivity
	// severity. The group distributions overlap (σ = 0.45 around means one
	// unit apart) so that motion features separate the cohorts at roughly
	// the paper's 86 % — not trivially.
	severity := 0.45 * rng.NormFloat64()
	if subj.ADHD {
		severity += 1
	}
	clamp := func(v, lo, hi float64) float64 {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	}
	fidgetAmp := clamp(0.012+0.010*severity, 0.004, 0.05)
	burstRate := clamp(0.002+0.005*severity, 0.0005, 0.02)
	burstAmp := clamp(0.05+0.07*severity, 0.02, 0.3)
	distractGain := clamp(1.5+2.5*severity, 1, 6)

	// Per-channel band-limited fidget sources.
	fidgetHz := clamp(2+2.5*severity, 1, 6)
	srcs := make([]*sensors.BandlimitedSource, SessionDims)
	for c := range srcs {
		srcs[c] = sensors.NewBandlimitedSource(fidgetHz, fidgetAmp, 0.001, 5, subj.Seed+int64(c)*31)
	}

	inDistraction := func(tick int) bool {
		for _, d := range s.Distractions {
			if tick >= d.Tick && tick < d.Tick+d.Duration {
				return true
			}
		}
		return false
	}

	// Movement bursts: exponential envelopes on random trackers.
	type burst struct {
		tracker, start, dur int
		amp                 float64
	}
	var bursts []burst
	for tick := 0; tick < durTicks; tick++ {
		rate := burstRate
		if inDistraction(tick) {
			rate *= distractGain
		}
		if rng.Float64() < rate {
			bursts = append(bursts, burst{
				tracker: rng.Intn(TrackerCount),
				start:   tick,
				dur:     50 + rng.Intn(150),
				amp:     burstAmp * (0.5 + rng.Float64()),
			})
		}
	}

	s.Frames = make([][]float64, durTicks)
	for tick := 0; tick < durTicks; tick++ {
		t := float64(tick) / s.Rate
		fr := make([]float64, SessionDims)
		for c := range fr {
			fr[c] = srcs[c].Sample(t)
		}
		for _, b := range bursts {
			if tick < b.start || tick >= b.start+b.dur {
				continue
			}
			phase := float64(tick-b.start) / float64(b.dur)
			env := b.amp * math.Sin(math.Pi*phase)
			for d := 0; d < TrackerDims; d++ {
				fr[b.tracker*TrackerDims+d] += env * math.Sin(2*math.Pi*3*t+float64(d))
			}
		}
		s.Frames[tick] = fr
	}

	// Responses: ADHD subjects miss more, react slower, and suffer extra
	// under distraction.
	for i, st := range s.Stimuli {
		if !st.IsTarget {
			// Commission errors (pressing on a non-target).
			faP := clamp(0.02+0.08*severity, 0.005, 0.4)
			if rng.Float64() < faP {
				s.Responses = append(s.Responses, Response{Stimulus: i, FalseAlarm: true})
			}
			continue
		}
		missP := clamp(0.05+0.18*severity, 0.01, 0.6)
		rtMean := 45 + 18*severity // ticks (≈450 ms baseline)
		rtSD := clamp(10+8*severity, 6, 40)
		if inDistraction(st.Tick) {
			missP *= 1.6
			rtMean *= 1.2
			if subj.ADHD {
				missP *= 1.5
			}
			missP = clamp(missP, 0, 0.95)
		}
		if rng.Float64() < missP {
			s.Responses = append(s.Responses, Response{Stimulus: i, Hit: false})
			continue
		}
		rt := int(rtMean + rtSD*rng.NormFloat64())
		if rt < 15 {
			rt = 15
		}
		s.Responses = append(s.Responses, Response{Stimulus: i, Hit: true, ReactionTicks: rt})
	}
	return s
}

// MotionSpeedFeatures extracts the per-tracker motion-speed statistics the
// paper's SVM study classified on: mean and standard deviation of frame-to-
// frame speed for each tracker (position channels only), 2·TrackerCount
// features in total.
func MotionSpeedFeatures(s Session) []float64 {
	feats := make([]float64, 0, 2*TrackerCount)
	for tr := 0; tr < TrackerCount; tr++ {
		speeds := make([]float64, 0, len(s.Frames)-1)
		for i := 1; i < len(s.Frames); i++ {
			var d2 float64
			for d := 0; d < 3; d++ { // x, y, z
				diff := s.Frames[i][tr*TrackerDims+d] - s.Frames[i-1][tr*TrackerDims+d]
				d2 += diff * diff
			}
			speeds = append(speeds, math.Sqrt(d2)*s.Rate) // m/s
		}
		var mean float64
		for _, v := range speeds {
			mean += v
		}
		if len(speeds) > 0 {
			mean /= float64(len(speeds))
		}
		var sd float64
		for _, v := range speeds {
			sd += (v - mean) * (v - mean)
		}
		if len(speeds) > 0 {
			sd = math.Sqrt(sd / float64(len(speeds)))
		}
		feats = append(feats, mean, sd)
	}
	return feats
}

// HitRate returns the fraction of targets the subject hit.
func (s Session) HitRate() float64 {
	var targets, hits int
	for _, r := range s.Responses {
		if r.FalseAlarm {
			continue
		}
		targets++
		if r.Hit {
			hits++
		}
	}
	if targets == 0 {
		return 0
	}
	return float64(hits) / float64(targets)
}

// MeanReactionTicks returns the average reaction time over hits, or 0.
func (s Session) MeanReactionTicks() float64 {
	var sum, n float64
	for _, r := range s.Responses {
		if r.Hit {
			sum += float64(r.ReactionTicks)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / n
}
