package chaos_test

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"aims/internal/chaos"
	"aims/internal/journal"
	"aims/internal/server"
	"aims/internal/stream"
	"aims/internal/wire"
)

const (
	chanCount = 2
	rate      = 1000.0
)

func ranges() (mins, maxs []float64) {
	mins = make([]float64, chanCount)
	maxs = make([]float64, chanCount)
	for i := range mins {
		mins[i] = -1
		maxs[i] = 1
	}
	return
}

// deviceFrames synthesises a deterministic frame stream: both runs of an
// equivalence test feed bit-identical inputs.
func deviceFrames(n int) []stream.Frame {
	out := make([]stream.Frame, n)
	for i := range out {
		vals := make([]float64, chanCount)
		for c := range vals {
			vals[c] = math.Sin(float64(i)*0.01 + float64(c))
		}
		out[i] = stream.Frame{T: float64(i) / rate, Values: vals}
	}
	return out
}

func startServer(t *testing.T, scheme, dataDir string) (*server.Server, string) {
	t.Helper()
	cfg := server.Config{
		QueueFrames:   2048,
		IdleTimeout:   10 * time.Second,
		Heartbeat:     200 * time.Millisecond,
		WriteTimeout:  2 * time.Second,
		RetainTimeout: 30 * time.Second,
		TraceSample:   -1,
		Policy:        server.PolicyBlock,
	}
	if dataDir != "" {
		cfg.Journal.Dir = dataDir
		cfg.Journal.Fsync = journal.FsyncOff
		cfg.Journal.SnapshotFrames = -1 // snapshot only at close: identical final files
	}
	srv := server.New(cfg)
	addr, err := srv.Start(scheme + "://127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv, addr.String()
}

func hello(name string) wire.Hello {
	mins, maxs := ranges()
	return wire.Hello{Rate: rate, HorizonTicks: 1 << 15, Name: name, Mins: mins, Maxs: maxs}
}

// driveResilient streams frames through a ResilientClient in fixed-size
// batches, forcing extra disconnects through the proxy until at least
// minDisconnects occurred, then flushes and gracefully closes.
func driveResilient(t *testing.T, addr string, p *chaos.Proxy, name string, frames []stream.Frame, minDisconnects int) *wire.ResilientClient {
	t.Helper()
	rc, w, err := wire.DialResilient(wire.ResilientConfig{
		Addr:        addr,
		Window:      4,
		Timeout:     2 * time.Second,
		Heartbeat:   100 * time.Millisecond,
		BaseBackoff: 5 * time.Millisecond,
		MaxBackoff:  100 * time.Millisecond,
		MaxAttempts: -1,
		Seed:        7,
		Logf:        t.Logf,
	}, hello(name))
	if err != nil {
		t.Fatalf("dial through proxy: %v", err)
	}
	if w.Code != wire.CodeOK {
		t.Fatalf("registration code = %v, want ok", w.Code)
	}
	const batch = 64
	for at := 0; at < len(frames); at += batch {
		end := at + batch
		if end > len(frames) {
			end = len(frames)
		}
		if err := rc.SendBatch(frames[at:end]); err != nil {
			t.Fatalf("send at %d: %v", at, err)
		}
		// Force a cable pull mid-stream if the PRNG is under-delivering
		// faults, so every run crosses the disconnect floor.
		if p != nil && at > 0 && at%(len(frames)/4) < batch && int(p.Disconnects()) < minDisconnects {
			p.CutAll()
		}
	}
	for p != nil && int(p.Disconnects()) < minDisconnects {
		p.CutAll()
		if _, err := rc.Flush(); err != nil {
			t.Fatalf("flush while forcing disconnects: %v", err)
		}
	}
	if _, err := rc.Flush(); err != nil {
		t.Fatalf("final flush: %v", err)
	}
	return rc
}

// TestExactlyOnceUnderFaults is the tentpole property test: a device
// streams through a 5% cut / 5% reset fault proxy with at least three
// forced disconnects, and the journaled store must come out bit-identical
// to a fault-free control run — every frame appended exactly once, no
// losses, no duplicates. The faulted run repeats over every transport
// (the proxy listens and dials the scheme under test, so over ws the
// faults land between WebSocket framing and wire framing); all runs are
// held against one fault-free TCP control snapshot, which doubles as a
// cross-transport equivalence check on the stored bytes. Corruption
// stays off: the wire carries no payload checksum, so flipped value
// bytes would be stored silently (see TestCorruptionSurvival).
func TestExactlyOnceUnderFaults(t *testing.T) {
	frames := deviceFrames(6000)

	// Control run, no proxy, plain client over TCP.
	ctrlDir := t.TempDir()
	_, ctrlAddr := startServer(t, "tcp", ctrlDir)
	c, err := wire.Dial(ctrlAddr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Hello(hello("glove")); err != nil {
		t.Fatal(err)
	}
	const batch = 64
	for at := 0; at < len(frames); at += batch {
		end := at + batch
		if end > len(frames) {
			end = len(frames)
		}
		if err := c.SendBatch(frames[at:end]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Close(); err != nil {
		t.Fatal(err)
	}
	want := readSnapshot(t, ctrlDir, "glove")

	for _, scheme := range []string{"tcp", "ws"} {
		t.Run(scheme, func(t *testing.T) {
			// Faulted run: device → proxy → server all speak this scheme.
			faultDir := t.TempDir()
			_, addr := startServer(t, scheme, faultDir)
			p, err := chaos.New(addr, chaos.Config{
				Listen:    scheme + "://127.0.0.1:0",
				Seed:      42,
				CutRate:   0.05,
				ResetRate: 0.05,
				Logf:      t.Logf,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer p.Close()
			rc := driveResilient(t, p.Addr(), p, "glove", frames, 3)
			if got := p.Disconnects(); got < 3 {
				t.Fatalf("disconnects = %d, want >= 3", got)
			}
			if rc.Reconnects() == 0 {
				t.Fatal("client never reconnected despite forced disconnects")
			}
			t.Logf("faults: disconnects=%d cuts=%d resets=%d reconnects=%d replayed=%d dups=%d",
				p.Disconnects(), p.Cuts(), p.Resets(), rc.Reconnects(), rc.ReplayedBatches(), rc.DupBatches())

			// Zero loss, zero duplication, visible at the query layer before
			// the byte layer: the count must be exact.
			r, err := rc.Query(wire.Query{Kind: wire.QueryCount, Channel: 0, T0: 0, T1: 30})
			if err != nil {
				t.Fatalf("count query: %v", err)
			}
			if r.Value != float64(len(frames)) {
				t.Fatalf("count after faults = %v, want %d (lost or duplicated frames)", r.Value, len(frames))
			}
			if _, err := rc.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}

			// Bit-identity: the graceful close snapshots each store; the
			// snapshot bytes (sealed-store serialisation, deterministic since
			// PR2) must match exactly, as must the watermark+CRC in the file
			// names.
			got := readSnapshot(t, faultDir, "glove")
			if got.name != want.name {
				t.Fatalf("snapshot names diverge: faulted %s vs control %s", got.name, want.name)
			}
			if !bytes.Equal(got.data, want.data) {
				t.Fatalf("stores not bit-identical: %d vs %d bytes", len(got.data), len(want.data))
			}
		})
	}
}

type snapshot struct {
	name string
	data []byte
}

// readSnapshot waits for and returns the session's final snapshot file
// (the graceful close writes it before the connection is released, but
// the test observes the filesystem, so allow a beat).
func readSnapshot(t *testing.T, dataDir, session string) snapshot {
	t.Helper()
	dir := filepath.Join(dataDir, session)
	deadline := time.Now().Add(5 * time.Second)
	for {
		matches, _ := filepath.Glob(filepath.Join(dir, "snap-*.aims"))
		if len(matches) == 1 {
			data, err := os.ReadFile(matches[0])
			if err != nil {
				t.Fatal(err)
			}
			return snapshot{name: filepath.Base(matches[0]), data: data}
		}
		if time.Now().After(deadline) {
			t.Fatalf("session %s: found %d snapshots in %s, want 1", session, len(matches), dir)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestMemoryOnlyParkResume drops the link repeatedly against a server with
// no journal at all: the park/resume path alone must keep the session
// lossless, proving resilience is not a durability side effect.
func TestMemoryOnlyParkResume(t *testing.T) {
	frames := deviceFrames(4000)
	_, addr := startServer(t, "tcp", "")
	p, err := chaos.New(addr, chaos.Config{Seed: 99, CutRate: 0.03, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	rc := driveResilient(t, p.Addr(), p, "tracker", frames, 3)
	r, err := rc.Query(wire.Query{Kind: wire.QueryCount, Channel: 0, T0: 0, T1: 30})
	if err != nil {
		t.Fatalf("count query: %v", err)
	}
	if r.Value != float64(len(frames)) {
		t.Fatalf("count = %v, want %d", r.Value, len(frames))
	}
	if _, err := rc.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if rc.Reconnects() == 0 {
		t.Fatal("no reconnects recorded")
	}
}

// TestBlackholePartition parks the link in a byte-swallowing partition:
// the client's deadlines and heartbeat must detect the half-open link,
// and the stream must complete exactly once after the partition heals.
func TestBlackholePartition(t *testing.T) {
	frames := deviceFrames(2000)
	_, addr := startServer(t, "tcp", "")
	p, err := chaos.New(addr, chaos.Config{Seed: 5, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	rc, _, err := wire.DialResilient(wire.ResilientConfig{
		Addr:        p.Addr(),
		Window:      4,
		Timeout:     300 * time.Millisecond, // tight: the partition must trip it fast
		Heartbeat:   100 * time.Millisecond,
		BaseBackoff: 5 * time.Millisecond,
		MaxBackoff:  100 * time.Millisecond,
		MaxAttempts: -1,
		Seed:        11,
		Logf:        t.Logf,
	}, hello("hmd"))
	if err != nil {
		t.Fatal(err)
	}
	half := len(frames) / 2
	for at := 0; at < half; at += 50 {
		if err := rc.SendBatch(frames[at : at+50]); err != nil {
			t.Fatal(err)
		}
	}
	// Partition mid-stream. Sends into the blackhole stall on the read
	// deadline, the client marks the link broken and re-dials; the healed
	// proxy lets the resume through. CutAll drops the wedged old conns so
	// the server's reader wakes promptly too.
	p.Partition(400 * time.Millisecond)
	p.CutAll()
	for at := half; at < len(frames); at += 50 {
		if err := rc.SendBatch(frames[at : at+50]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := rc.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := rc.Query(wire.Query{Kind: wire.QueryCount, Channel: 0, T0: 0, T1: 30})
	if err != nil {
		t.Fatal(err)
	}
	if r.Value != float64(len(frames)) {
		t.Fatalf("count = %v, want %d", r.Value, len(frames))
	}
	if _, err := rc.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCorruptionSurvival runs with byte corruption enabled. The wire
// framing has no payload checksum, so corrupted values can be stored
// silently — the assertion here is weaker by design: nothing hangs and
// nothing panics. Desynced framing surfaces as decode errors and
// reconnects; a corrupted batch offset trips the server's forward-gap
// guard, which can surface as a terminal client error. Errors and
// frame-count drift are reported, not failed.
func TestCorruptionSurvival(t *testing.T) {
	frames := deviceFrames(2000)
	_, addr := startServer(t, "tcp", "")
	p, err := chaos.New(addr, chaos.Config{Seed: 3, CorruptRate: 0.02, CutRate: 0.01, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// The handshake itself rides the faulty link, so even the initial dial
	// may fail; retry a few times before concluding anything.
	var rc *wire.ResilientClient
	for attempt := 0; attempt < 5; attempt++ {
		rc, _, err = wire.DialResilient(wire.ResilientConfig{
			Addr:        p.Addr(),
			Window:      4,
			Timeout:     2 * time.Second,
			BaseBackoff: 5 * time.Millisecond,
			MaxBackoff:  100 * time.Millisecond,
			MaxAttempts: 20,
			Seed:        13,
			Logf:        t.Logf,
		}, hello(fmt.Sprintf("noisy-%d", attempt)))
		if err == nil {
			break
		}
		t.Logf("corruption run: dial attempt %d failed: %v", attempt, err)
	}
	if err != nil {
		t.Skipf("corruption run: handshake never survived the fault schedule: %v", err)
	}
	sent := 0
	for at := 0; at < len(frames); at += 50 {
		if err := rc.SendBatch(frames[at : at+50]); err != nil {
			t.Logf("corruption run: send at %d ended the session: %v", at, err)
			rc.Abort()
			return
		}
		sent = at + 50
	}
	stored, err := rc.Flush()
	if err != nil {
		t.Logf("corruption run: flush ended the session: %v", err)
		rc.Abort()
		return
	}
	t.Logf("corruption run: stored=%d sent=%d reconnects=%d", stored, sent, rc.Reconnects())
	if _, err := rc.Close(); err != nil {
		t.Logf("corruption run: close: %v", err)
	}
}

// TestProxyDeterminism pins the fault schedule to the seed. Only the
// per-connection draws (reset decision, sub-seeds) are fully reproducible
// across runs — per-chunk draws depend on TCP read segmentation, which the
// kernel does not promise to repeat — so this test drives the reset
// schedule alone: same seed, same dial sequence, same reset pattern.
func TestProxyDeterminism(t *testing.T) {
	schedule := func(seed int64) string {
		_, addr := startServer(t, "tcp", "")
		p, err := chaos.New(addr, chaos.Config{Seed: seed, ResetRate: 0.3})
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		pattern := make([]byte, 0, 24)
		for i := 0; i < 24; i++ {
			before := p.Resets()
			c, err := wire.Dial(p.Addr())
			if err != nil {
				// Refused outright: the accept loop had already drawn reset.
				pattern = append(pattern, 'R')
				continue
			}
			// An accept-then-reset surfaces on the first read; probe with
			// the handshake.
			c.Timeout = time.Second
			_, herr := c.Hello(hello(fmt.Sprintf("det-%d", i)))
			if herr != nil || p.Resets() > before {
				pattern = append(pattern, 'R')
				c.Abort()
				continue
			}
			pattern = append(pattern, '.')
			if _, err := c.Close(); err != nil {
				t.Fatalf("conn %d close: %v", i, err)
			}
		}
		return string(pattern)
	}
	s1 := schedule(1234)
	s2 := schedule(1234)
	if s1 != s2 {
		t.Fatalf("same seed diverged:\n  run 1: %s\n  run 2: %s", s1, s2)
	}
	if s1 == "........................" {
		t.Fatalf("ResetRate 0.3 over 24 dials produced zero resets: %s", s1)
	}
	t.Logf("reset schedule: %s", s1)
}
