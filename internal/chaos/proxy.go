// Package chaos is a deterministic in-process network-fault harness: a
// transport-level proxy that forwards device↔server traffic while
// injecting the failure modes flaky immersive links actually exhibit —
// added latency, connections cut mid-frame, bytes flipped in flight,
// connections reset the moment they are accepted, and full blackhole
// partitions where the link stays up but nothing arrives.
//
// The proxy is transport middleware: it listens on any
// internal/transport endpoint and dials the target through any other, so
// the same fault schedule runs over TCP, WebSocket, or a mix. Because
// each transport's conn decodes its own framing (a ws listener conn
// yields the raw wire byte stream), faults always land on wire-protocol
// bytes — a cut tears a wire frame mid-message over every transport
// alike.
//
// All randomness flows from one seeded PRNG: each accepted connection
// draws two sub-seeds (one per copy direction) at accept time, so the
// fault schedule depends only on the seed and the connection order, not
// on goroutine interleaving. Tests replay the same fault schedule by
// fixing the seed.
package chaos

import (
	"context"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"aims/internal/transport"
)

// Config shapes a Proxy's fault injection. All rates are probabilities in
// [0, 1] and default to zero (a faithful proxy).
type Config struct {
	// Seed fixes the fault schedule; 0 seeds from the global source.
	Seed int64
	// CutRate is the per-forwarded-chunk probability of cutting the
	// connection mid-chunk: a random prefix of the chunk is delivered and
	// both sides are closed — the receiver sees a torn frame.
	CutRate float64
	// ResetRate is the per-connection probability of accepting and then
	// immediately resetting (RST, not FIN) the connection before any
	// bytes flow.
	ResetRate float64
	// CorruptRate is the per-forwarded-chunk probability of flipping one
	// random byte. The AIMS wire protocol carries no payload checksum, so
	// corrupted values are stored silently — tests asserting bit-identical
	// stores must keep this zero and exercise corruption separately.
	CorruptRate float64
	// LatencyMax, when positive, sleeps each forwarded chunk a uniform
	// duration in [0, LatencyMax).
	LatencyMax time.Duration
	// ChunkBytes bounds each forward read (default 1024). Smaller chunks
	// mean more fault draws per message and finer-grained cut points.
	ChunkBytes int
	// Listen is the endpoint the proxy accepts device connections on
	// (default "tcp://127.0.0.1:0"). A ws:// endpoint makes the proxy
	// terminate WebSocket framing itself, so faults still hit the raw
	// wire byte stream.
	Listen string
	// Dialer reaches the target (nil: the endpoint-scheme default); the
	// target endpoint's scheme picks the server-side transport.
	Dialer transport.Dialer
	// Logf receives fault lifecycle logs (nil discards them).
	Logf func(format string, args ...interface{})
}

// Proxy is one listening fault injector in front of a real server.
type Proxy struct {
	cfg    Config
	target string
	ln     net.Listener

	mu        sync.Mutex
	rng       *rand.Rand // master: dealt out as per-direction sub-seeds
	conns     map[*link]struct{}
	blackhole bool
	closed    bool

	cuts        atomic.Uint64
	resets      atomic.Uint64
	disconnects atomic.Uint64
	wg          sync.WaitGroup
}

// link is one proxied connection pair.
type link struct {
	client net.Conn
	server net.Conn
	once   sync.Once
}

func (l *link) kill() {
	l.once.Do(func() {
		l.client.Close()
		l.server.Close()
	})
}

// New starts a proxy forwarding to a target endpoint. The listen side
// defaults to a loopback TCP port; set cfg.Listen to front the target
// with a different transport (and dial clients via Addr(), which carries
// the scheme).
func New(target string, cfg Config) (*Proxy, error) {
	if cfg.ChunkBytes <= 0 {
		cfg.ChunkBytes = 1024
	}
	if cfg.Listen == "" {
		cfg.Listen = "tcp://127.0.0.1:0"
	}
	if cfg.Dialer == nil {
		cfg.Dialer = transport.Net
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...interface{}) {}
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = rand.Int63()
	}
	ln, err := transport.Listen(cfg.Listen)
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		cfg:    cfg,
		target: target,
		ln:     ln,
		rng:    rand.New(rand.NewSource(seed)),
		conns:  map[*link]struct{}{},
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listening endpoint — what clients dial. For a
// non-TCP listen transport the string carries the scheme (ws://…), so it
// feeds straight back into transport.Dial / wire.Dial.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Cuts reports connections cut mid-chunk by the fault schedule.
func (p *Proxy) Cuts() uint64 { return p.cuts.Load() }

// Resets reports connections reset immediately after accept.
func (p *Proxy) Resets() uint64 { return p.resets.Load() }

// Disconnects reports all forced connection teardowns (cuts, resets and
// CutAll sweeps).
func (p *Proxy) Disconnects() uint64 { return p.disconnects.Load() }

// Partition blackholes the proxy for d: connections stay open but every
// byte in either direction is swallowed — the TCP-visible half-open link.
// A zero d partitions until Heal.
func (p *Proxy) Partition(d time.Duration) {
	p.mu.Lock()
	p.blackhole = true
	p.mu.Unlock()
	p.cfg.Logf("chaos: partitioned for %s", d)
	if d > 0 {
		time.AfterFunc(d, p.Heal)
	}
}

// Heal ends a partition.
func (p *Proxy) Heal() {
	p.mu.Lock()
	p.blackhole = false
	p.mu.Unlock()
	p.cfg.Logf("chaos: healed")
}

// CutAll force-disconnects every live proxied connection — the
// deterministic "pull the cable now" lever for tests that need a minimum
// disconnect count regardless of what the PRNG schedules.
func (p *Proxy) CutAll() int {
	p.mu.Lock()
	links := make([]*link, 0, len(p.conns))
	for l := range p.conns {
		links = append(links, l)
	}
	p.mu.Unlock()
	for _, l := range links {
		l.kill()
		p.disconnects.Add(1)
	}
	if len(links) > 0 {
		p.cfg.Logf("chaos: cut %d live connections", len(links))
	}
	return len(links)
}

// Close stops accepting, tears down every proxied connection and waits
// for the copiers to exit.
func (p *Proxy) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	p.ln.Close()
	p.CutAll()
	p.wg.Wait()
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		// All fault randomness for this connection is drawn here, under
		// one lock, in accept order: the copier goroutines then consume
		// their private sub-RNGs without further coordination.
		p.mu.Lock()
		reset := p.rng.Float64() < p.cfg.ResetRate
		upSeed, downSeed := p.rng.Int63(), p.rng.Int63()
		closed := p.closed
		p.mu.Unlock()
		if closed {
			c.Close()
			return
		}
		if reset {
			// Accept-then-reset: SO_LINGER 0 turns the close into an RST,
			// the failure a crashed NAT or midbox produces. On a transport
			// without the linger capability the close degrades to a FIN —
			// still a teardown, just politer than intended.
			transport.SetLinger(c, 0)
			c.Close()
			p.resets.Add(1)
			p.disconnects.Add(1)
			p.cfg.Logf("chaos: reset connection on accept")
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		s, err := p.cfg.Dialer.DialContext(ctx, p.target)
		cancel()
		if err != nil {
			c.Close()
			continue
		}
		l := &link{client: c, server: s}
		p.mu.Lock()
		p.conns[l] = struct{}{}
		p.mu.Unlock()
		p.wg.Add(2)
		go p.copy(l, c, s, upSeed)   // device → server
		go p.copy(l, s, c, downSeed) // server → device
	}
}

// copy forwards src→dst chunk by chunk, applying the fault schedule of
// its private sub-RNG, until the link dies (naturally or by fault).
func (p *Proxy) copy(l *link, src, dst net.Conn, seed int64) {
	defer p.wg.Done()
	defer func() {
		l.kill()
		p.mu.Lock()
		delete(p.conns, l)
		p.mu.Unlock()
	}()
	rng := rand.New(rand.NewSource(seed))
	buf := make([]byte, p.cfg.ChunkBytes)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			chunk := buf[:n]
			p.mu.Lock()
			hole := p.blackhole
			p.mu.Unlock()
			if hole {
				// Partitioned: swallow silently; the sender's TCP stack
				// keeps buffering until its deadlines fire.
				continue
			}
			if p.cfg.LatencyMax > 0 {
				time.Sleep(time.Duration(rng.Float64() * float64(p.cfg.LatencyMax)))
			}
			if p.cfg.CorruptRate > 0 && rng.Float64() < p.cfg.CorruptRate {
				chunk[rng.Intn(len(chunk))] ^= 0xA5
				p.cfg.Logf("chaos: corrupted a byte")
			}
			if p.cfg.CutRate > 0 && rng.Float64() < p.cfg.CutRate {
				// Deliver a strict prefix, then kill both sides: the
				// receiver is left holding a torn frame.
				if pre := rng.Intn(len(chunk)); pre > 0 {
					dst.Write(chunk[:pre])
				}
				p.cuts.Add(1)
				p.disconnects.Add(1)
				p.cfg.Logf("chaos: cut connection mid-chunk")
				return
			}
			if _, werr := dst.Write(chunk); werr != nil {
				return
			}
		}
		if err != nil {
			if err != io.EOF {
				return
			}
			// Propagate a clean close as a half-close so in-flight
			// responses still drain; a conn without the capability falls
			// back to a full close instead of silently leaving the peer
			// waiting for an EOF that never comes.
			if !transport.CloseWrite(dst) {
				dst.Close()
			}
			return
		}
	}
}
