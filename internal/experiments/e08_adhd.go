package experiments

import (
	"io"

	"aims/internal/classify"
	"aims/internal/synth"
	"aims/internal/vec"
)

// E8Result reports the ADHD diagnosis study.
type E8Result struct {
	Accuracy map[string]float64 // per classifier
	// Cohort task statistics, mirroring the study's behavioural measures.
	ADHDHitRate, ControlHitRate float64
	ADHDRT, ControlRT           float64
}

// RunE8 reproduces the §2.1 result: a support vector machine over the
// motion speed of the body trackers distinguishes hyperactive from
// control children at roughly the paper's 86 % accuracy, with the earlier
// conventional classifiers as baselines.
func RunE8(w io.Writer) E8Result {
	const cohortSize = 120
	const sessionTicks = 3000
	cohort := synth.NewCohort(cohortSize, 0.5, 81)
	var x [][]float64
	var y []int
	var adhdHit, ctrlHit, adhdRT, ctrlRT []float64
	for _, subj := range cohort {
		sess := synth.GenerateSession(subj, sessionTicks)
		x = append(x, synth.MotionSpeedFeatures(sess))
		if subj.ADHD {
			y = append(y, 1)
			adhdHit = append(adhdHit, sess.HitRate())
			adhdRT = append(adhdRT, sess.MeanReactionTicks())
		} else {
			y = append(y, -1)
			ctrlHit = append(ctrlHit, sess.HitRate())
			ctrlRT = append(ctrlRT, sess.MeanReactionTicks())
		}
	}

	classifiers := []struct {
		name string
		mk   func() classify.Classifier
	}{
		{"linear SVM (paper's method)", func() classify.Classifier { return &classify.SVM{} }},
		{"gaussian naive bayes", func() classify.Classifier { return &classify.NaiveBayes{} }},
		{"decision stump", func() classify.Classifier { return &classify.Stump{} }},
		{"decision tree (depth 4)", func() classify.Classifier { return &classify.Tree{} }},
		{"neural net (1 hidden layer)", func() classify.Classifier { return &classify.MLP{} }},
	}
	res := E8Result{
		Accuracy:       map[string]float64{},
		ADHDHitRate:    vec.Mean(adhdHit),
		ControlHitRate: vec.Mean(ctrlHit),
		ADHDRT:         vec.Mean(adhdRT),
		ControlRT:      vec.Mean(ctrlRT),
	}
	tb := &Table{
		Title:   "E8 — ADHD vs control diagnosis from tracker motion speed (120 subjects, 5-fold CV)",
		Columns: []string{"classifier", "cv accuracy"},
	}
	for _, c := range classifiers {
		acc := classify.CrossValidate(c.mk, x, y, 5, 82)
		res.Accuracy[c.name] = acc
		tb.AddRow(c.name, acc)
	}
	tb.Note("paper: 86%% accuracy with an SVM on the motion speed of different trackers")
	tb.Render(w)

	tb2 := &Table{
		Title:   "E8b — AX-task behavioural statistics by group",
		Columns: []string{"group", "hit rate", "mean reaction (ticks)"},
	}
	tb2.AddRow("control", res.ControlHitRate, res.ControlRT)
	tb2.AddRow("ADHD", res.ADHDHitRate, res.ADHDRT)
	tb2.Render(w)
	return res
}
