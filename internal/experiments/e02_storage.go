package experiments

import (
	"io"
	"math/rand"

	"aims/internal/disk"
	"aims/internal/wavelet"
)

// E2Result reports block-utilisation measurements per block size.
type E2Result struct {
	BlockSizes []int
	Tiling     []float64 // needed items per fetched block
	Sequential []float64
	Bound      []float64 // 1 + lg B
}

// RunE2 reproduces the §3.2.1 storage claim: under the error-tree tiling
// allocation, a query's expected needed-items-per-fetched-block approaches
// the theoretical upper bound 1+lg B, while a naive sequential layout
// wastes most of each block on point/short-range dependency paths.
func RunE2(w io.Writer) E2Result {
	const n = 1 << 16
	tree := wavelet.NewErrorTree(n)
	rng := rand.New(rand.NewSource(7))
	blockSizes := []int{8, 16, 32, 64, 128, 256, 512}

	var res E2Result
	tb := &Table{
		Title:   "E2 — Wavelet block utilisation (N=65536, point-query workload)",
		Columns: []string{"block size B", "bound 1+lgB", "tiling items/blk", "tiling %bound", "sequential items/blk"},
	}
	const queries = 400
	// Workload: point queries — the dependency-path access pattern the
	// 1+lg B expectation bound is stated for.
	type q struct{ lo, hi int }
	workload := make([]q, queries)
	for i := range workload {
		lo := rng.Intn(n)
		workload[i] = q{lo, lo}
	}
	for _, b := range blockSizes {
		til := disk.NewStore(make([]float64, n), disk.NewTiling(n, b), b)
		seq := disk.NewStore(make([]float64, n), disk.NewSequential(n, b), b)
		var tilSum, seqSum float64
		for _, qq := range workload {
			need := tree.RangeNeed(qq.lo, qq.hi)
			tilSum += til.MeasureUtilization(need).ItemsPerBlock
			seqSum += seq.MeasureUtilization(need).ItemsPerBlock
		}
		bound := disk.UtilizationBound(b)
		tAvg, sAvg := tilSum/queries, seqSum/queries
		res.BlockSizes = append(res.BlockSizes, b)
		res.Tiling = append(res.Tiling, tAvg)
		res.Sequential = append(res.Sequential, sAvg)
		res.Bound = append(res.Bound, bound)
		tb.AddRow(b, bound, tAvg, tAvg/bound, sAvg)
	}
	tb.Note("paper: expected needed items per fetched block < 1+lg B; tiling is designed to approach it")
	tb.Render(w)
	return res
}

// E12Result reports progressive block-I/O accuracy trajectories.
type E12Result struct {
	BlocksTotal   int
	ErrImportance []float64 // relative error after k blocks, importance order
	ErrUnordered  []float64
}

// RunE12 reproduces the §3.2.1 progressive-I/O claim: fetching blocks in
// query-importance order delivers far better approximate answers per I/O
// than an unordered fetch of the same blocks.
func RunE12(w io.Writer) E12Result {
	// Built in e12 via the propolyne engine; see e12_blockio.go.
	return runE12(w)
}
