package experiments

import (
	"io"
	"math"

	"aims/internal/sensors"
	"aims/internal/synth"
	"aims/internal/wavelet"
	"aims/internal/wpt"
)

// E6Result reports per-signal basis choices and energy compaction.
type E6Result struct {
	// Chosen maps signal name to the selected basis ("" = standard).
	Chosen map[string]string
	// Compaction maps signal name to energy captured by the top 5 % of
	// coefficients under (standard, pyramid haar, best packet basis).
	Compaction map[string][3]float64
}

// RunE6 reproduces the §3.1.1 multi-basis claim: the DWPT best-basis
// search adapts the transform per dimension — smooth tracker channels
// compact under wavelets, spiky/categorical marginals keep the standard
// basis, and the adapted basis never compacts worse than a fixed one.
func RunE6(w io.Writer) E6Result {
	const n = 1024
	dev := sensors.NewDevice(sensors.GloveSpecs(), sensors.DefaultClock, 1, 61)
	rec := dev.RecordClean(n)

	signals := map[string][]float64{
		"glove joint (idx 5)":   rec[5],
		"tracker X (idx 22)":    rec[22],
		"sensor-id marginal":    categoricalMarginal(n),
		"atmospheric row":       synth.SmoothCube([]int{n}, 62),
		"white noise (uniform)": synth.UniformCube([]int{n}, 1, 63),
	}
	order := []string{"glove joint (idx 5)", "tracker X (idx 22)", "sensor-id marginal", "atmospheric row", "white noise (uniform)"}

	res := E6Result{Chosen: map[string]string{}, Compaction: map[string][3]float64{}}
	tb := &Table{
		Title:   "E6 — Per-dimension basis selection (Shannon cost) and energy compaction",
		Columns: []string{"signal", "chosen basis", "top-5% energy: standard", "pyramid haar", "best packet"},
	}
	topK := n / 20
	for _, name := range order {
		x := signals[name]
		choice := wpt.SelectBasis(0, x, wavelet.Filters, wpt.ShannonCost)
		std := wavelet.EnergyFraction(x, topK)
		wHaar, _ := wavelet.Transform(x, wavelet.Haar, -1)
		pyr := wavelet.EnergyFraction(wHaar, topK)
		best := std
		if choice.FilterName != "" {
			f, _ := wavelet.ByName(choice.FilterName)
			t := wpt.Decompose(x, f, -1)
			bb := t.BestBasis(wpt.ShannonCost)
			best = wavelet.EnergyFraction(t.Coefficients(bb), topK)
		}
		res.Chosen[name] = choice.FilterName
		res.Compaction[name] = [3]float64{std, pyr, best}
		label := choice.FilterName
		if label == "" {
			label = "standard"
		}
		tb.AddRow(name, label, std, pyr, best)
	}
	tb.Note("best packet basis ≥ fixed bases by construction of the Coifman–Wickerhauser DP")
	tb.Render(w)
	return res
}

// categoricalMarginal builds a spiky sensor-id-style marginal: mass on a
// few ids, zero elsewhere.
func categoricalMarginal(n int) []float64 {
	x := make([]float64, n)
	for i := 0; i < 8; i++ {
		x[i*7%n] = 100 * math.Sqrt(float64(i+1))
	}
	return x
}
