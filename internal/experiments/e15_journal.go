package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"aims/internal/core"
	"aims/internal/journal"
	"aims/internal/server"
	"aims/internal/stream"
	"aims/internal/wire"
)

// E15Result reports journal_overhead: middle-tier ingest throughput with
// the WAL at each fsync policy versus durability disabled, and
// crash-recovery time as a function of the WAL tail length past the last
// snapshot.
type E15Result struct {
	Sessions int
	Frames   int // per session, ingest phase

	BaseFPS    float64            // durability disabled
	PolicyFPS  map[string]float64 // frames/s per fsync policy
	OverheadPC map[string]float64 // (base-policy)/base, percent

	TailFrames []int
	RecoverMS  []float64
}

// RunE15 measures the durability layer's two costs. First, ingest: the
// same loopback load E14 uses is driven against a server with journaling
// off, then with the WAL at each fsync policy; the WAL rides the ingest
// path (framed, CRC'd and written before LiveStore.AppendFrames), so the
// throughput ratio is its overhead. Per-batch fsync pays a disk round
// trip every 256 frames and is expected to cost real throughput;
// interval-deferred fsync only adds the encode + page-cache write and
// must stay under 10%. Second, recovery: sessions are left crash-style
// on disk — a snapshot at a fixed watermark plus WAL tails of increasing
// length — and Manager.Recover is timed; cost is snapshot load +
// O(tail) replay, growing with the tail, not the session.
func RunE15(w io.Writer) E15Result {
	const (
		sessions = 1
		frames   = 65536
		batch    = 256
		reps     = 5
	)
	res := E15Result{
		Sessions:   sessions,
		Frames:     frames,
		PolicyFPS:  map[string]float64{},
		OverheadPC: map[string]float64{},
	}

	root, err := os.MkdirTemp("", "aims-e15-")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(root)

	// Every rep runs all modes back to back, so each policy run has a
	// baseline neighbour taken under the same machine conditions; the
	// reported overhead is the median of the per-rep paired ratios, which
	// cancels the slow drift that best-of/mean-of comparisons pick up.
	policies := []journal.FsyncPolicy{journal.FsyncBatch, journal.FsyncInterval, journal.FsyncOff}
	baseFPS := make([]float64, reps)
	polFPS := map[string][]float64{}
	for r := 0; r < reps; r++ {
		baseFPS[r] = e15Ingest(journal.Config{}, sessions, frames, batch)
		for _, pol := range policies {
			dir := filepath.Join(root, fmt.Sprintf("pol-%s-%d", pol, r))
			fps := e15Ingest(journal.Config{Dir: dir, Fsync: pol, SnapshotFrames: -1}, sessions, frames, batch)
			polFPS[pol.String()] = append(polFPS[pol.String()], fps)
		}
	}
	res.BaseFPS = median(baseFPS)

	tb := &Table{
		Title: fmt.Sprintf("E15 — journal_overhead: ingest throughput per fsync policy (%d session × %d frames, batch=%d)",
			sessions, frames, batch),
		Columns: []string{"fsync", "frames/s", "overhead"},
	}
	tb.AddRow("disabled", res.BaseFPS, "—")
	for _, pol := range policies {
		name := pol.String()
		overs := make([]float64, reps)
		for r := 0; r < reps; r++ {
			overs[r] = (baseFPS[r] - polFPS[name][r]) / baseFPS[r] * 100
		}
		res.PolicyFPS[name] = median(polFPS[name])
		res.OverheadPC[name] = median(overs)
		tb.AddRow(name, res.PolicyFPS[name], fmt.Sprintf("%.1f%%", res.OverheadPC[name]))
	}
	tb.Note("loopback middle tier, median of %d paired runs; the WAL is written before", reps)
	tb.Note("LiveStore.AppendFrames: 'batch' fsyncs every 256-frame batch, 'interval'")
	tb.Note("defers syncs to a 100 ms timer (target <10%%), 'off' leaves flushing to the")
	tb.Note("page cache ('off' can measure slower than 'interval': never syncing lets")
	tb.Note("dirty pages pile up for the kernel flusher). Loopback saturation is")
	tb.Note("~2000× real device rates; if the resulting WAL byte rate exceeds disk")
	tb.Note("bandwidth the run degenerates to disk-bound, which snapshot truncation and")
	tb.Note("device-paced ingest keep the production path out of")
	tb.Render(w)

	e15Recovery(w, root, &res)
	return res
}

// median returns the middle value of xs (mean of the middle pair for even
// lengths) without reordering the caller's slice.
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// e15Ingest drives one loopback load and returns aggregate frames/s. An
// empty jcfg.Dir runs the server memory-only (the baseline). The clock
// starts after every session's handshake (session setup — journal dir,
// meta.json, their fsyncs — is one-time cost, not ingest) and stops at
// Flush — after every frame has passed the WAL and the store — but
// before Close, so the close-time snapshot stays out of the measure.
func e15Ingest(jcfg journal.Config, sessions, frames, batch int) float64 {
	srv := server.New(server.Config{
		QueueFrames: 8192,
		Store:       core.LiveStoreConfig{TimeBuckets: 256, ValueBins: 64},
		Journal:     jcfg,
	})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	const channels = 8
	vals := make([]float64, channels)
	for c := range vals {
		vals[c] = float64(c)
	}
	mins := make([]float64, channels)
	maxs := make([]float64, channels)
	for c := range mins {
		mins[c], maxs[c] = -1, float64(channels)
	}

	clients := make([]*wire.Client, sessions)
	for s := range clients {
		c, err := wire.Dial(addr.String())
		if err != nil {
			panic(err)
		}
		if _, err := c.Hello(wire.Hello{
			Rate: 1000, HorizonTicks: uint32(2 * frames),
			Name: fmt.Sprintf("e15-%d", s), Mins: mins, Maxs: maxs,
		}); err != nil {
			panic(err)
		}
		clients[s] = c
	}

	var wg sync.WaitGroup
	start := time.Now()
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(c *wire.Client) {
			defer wg.Done()
			local := make([]stream.Frame, batch)
			for tick := 0; tick < frames; tick += batch {
				for i := range local {
					local[i] = stream.Frame{T: float64(tick+i) / 1000, Values: vals}
				}
				if err := c.SendBatch(local); err != nil {
					panic(err)
				}
			}
			if _, err := c.Flush(); err != nil {
				panic(err)
			}
		}(clients[s])
	}
	wg.Wait()
	wall := time.Since(start)
	return float64(sessions*frames) / wall.Seconds()
}

// e15Recovery leaves crash-style session dirs on disk — a snapshot at
// snapAt frames plus an un-snapshotted WAL tail — and times
// Manager.Recover over each.
func e15Recovery(w io.Writer, root string, res *E15Result) {
	const (
		channels = 8
		batch    = 256
		snapAt   = 4096
		rate     = 1000.0
	)
	tails := []int{0, 8192, 32768, 65536}
	maxFrames := snapAt + tails[len(tails)-1]

	rng := rand.New(rand.NewSource(151))
	mins := make([]float64, channels)
	maxs := make([]float64, channels)
	for c := range mins {
		mins[c], maxs[c] = -10, 10
	}
	storeCfg := core.LiveStoreConfig{Rate: rate, HorizonTicks: 2 * maxFrames, TimeBuckets: 256, ValueBins: 64}
	meta := journal.Meta{
		Name: "e15", Rate: rate, HorizonTicks: 2 * maxFrames,
		TimeBuckets: 256, ValueBins: 64, Mins: mins, Maxs: maxs,
	}
	batches := make([][]stream.Frame, 0, maxFrames/batch)
	for at := 0; at < maxFrames; at += batch {
		b := make([]stream.Frame, batch)
		for i := range b {
			vals := make([]float64, channels)
			for c := range vals {
				vals[c] = rng.Float64()*20 - 10
			}
			b[i] = stream.Frame{T: float64(at+i) / rate, Values: vals}
		}
		batches = append(batches, b)
	}

	tb := &Table{
		Title:   fmt.Sprintf("E15 — recovery time: snapshot at %d frames + WAL tail replay", snapAt),
		Columns: []string{"tail frames", "recover (ms)", "recovered"},
	}
	for _, tail := range tails {
		dir := filepath.Join(root, fmt.Sprintf("tail-%d", tail))
		cfg := journal.Config{Dir: dir, Fsync: journal.FsyncOff, SnapshotFrames: -1}
		mgr, err := journal.OpenManager(cfg)
		if err != nil {
			panic(err)
		}
		jsess, _, err := mgr.Attach(meta)
		if err != nil {
			panic(err)
		}
		ls, err := core.NewLiveStore(mins, maxs, storeCfg)
		if err != nil {
			panic(err)
		}
		appended := 0
		for _, b := range batches {
			if appended == snapAt {
				if err := jsess.Snapshot(ls); err != nil {
					panic(err)
				}
			}
			if appended == snapAt+tail {
				break
			}
			jsess.AppendFrames(b, nil)
			ls.AppendFrames(b)
			appended += len(b)
		}
		// Crash-style abandon: no Close, no final snapshot.

		m2, err := journal.OpenManager(cfg)
		if err != nil {
			panic(err)
		}
		t0 := time.Now()
		recs, err := m2.Recover(storeCfg)
		if err != nil {
			panic(err)
		}
		ms := float64(time.Since(t0).Microseconds()) / 1000
		if len(recs) != 1 || recs[0].Processed != uint64(snapAt+tail) {
			panic(fmt.Sprintf("tail %d: recovered %+v", tail, recs))
		}
		res.TailFrames = append(res.TailFrames, tail)
		res.RecoverMS = append(res.RecoverMS, ms)
		tb.AddRow(tail, ms, fmt.Sprintf("%d frames", recs[0].Processed))
	}
	tb.Note("recovery = newest intact snapshot inverse-transformed back into a live cube,")
	tb.Note("then the WAL tail past the watermark replayed through AppendFrames: cost grows")
	tb.Note("with the un-snapshotted tail, not with session length")
	tb.Render(w)
}
