package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"time"

	"aims/internal/datacube"
	"aims/internal/propolyne"
	"aims/internal/synth"
	"aims/internal/vec"
)

// E3Result captures progressive-accuracy trajectories per dataset and
// method.
type E3Result struct {
	Budgets []int
	// RelErr[dataset][method][budgetIdx]; methods: "query", "data".
	RelErr map[string]map[string][]float64
}

// RunE3 reproduces the central ProPolyne claim (§3.3): progressive query
// approximation reaches low relative error long before exact completion
// and is consistent across datasets, while classical wavelet data
// approximation varies wildly with the data's energy distribution.
func RunE3(w io.Writer) E3Result {
	dims := []int{128, 128}
	datasets := map[string][]float64{
		"smooth (atmospheric)": synth.SmoothCube(dims, 11),
		"zipf (skewed)":        synth.ZipfCube(dims, 60000, 1.2, 12),
		"uniform (white)":      synth.UniformCube(dims, 40, 13),
	}
	budgets := []int{10, 25, 50, 100, 200, 400, 800}
	rng := rand.New(rand.NewSource(14))
	const queries = 40
	type boxq struct{ lo, hi []int }
	workload := make([]boxq, queries)
	for i := range workload {
		lo := []int{rng.Intn(100), rng.Intn(100)}
		workload[i] = boxq{lo, []int{lo[0] + 6 + rng.Intn(20), lo[1] + 6 + rng.Intn(20)}}
	}

	res := E3Result{Budgets: budgets, RelErr: map[string]map[string][]float64{}}
	tb := &Table{
		Title:   "E3 — Progressive accuracy: query vs data approximation (COUNT, 40 queries)",
		Columns: []string{"dataset", "method", "k=10", "k=25", "k=50", "k=100", "k=200", "k=400", "k=800"},
	}
	for _, name := range []string{"smooth (atmospheric)", "zipf (skewed)", "uniform (white)"} {
		cube := datasets[name]
		e, err := propolyne.New(cube, dims, 1)
		if err != nil {
			panic(err)
		}
		res.RelErr[name] = map[string][]float64{}
		queryRow := make([]interface{}, 0, len(budgets)+2)
		dataRow := make([]interface{}, 0, len(budgets)+2)
		queryRow = append(queryRow, name, "query approx (ProPolyne)")
		dataRow = append(dataRow, "", "data approx (top-k)")
		for _, k := range budgets {
			approx := e.WithApproximation(k)
			var qErr, dErr, denom float64
			for _, bq := range workload {
				q := propolyne.Query{Lo: bq.lo, Hi: bq.hi}
				exact, _, _ := e.Exact(q)
				est, _, _ := e.EstimateWithBudget(q, k)
				estD, _, _ := approx.Exact(q)
				qErr += math.Abs(est - exact)
				dErr += math.Abs(estD - exact)
				denom += math.Abs(exact)
			}
			res.RelErr[name]["query"] = append(res.RelErr[name]["query"], qErr/denom)
			res.RelErr[name]["data"] = append(res.RelErr[name]["data"], dErr/denom)
			queryRow = append(queryRow, qErr/denom)
			dataRow = append(dataRow, dErr/denom)
		}
		tb.AddRow(queryRow...)
		tb.AddRow(dataRow...)
	}
	tb.Note("k = retrieved coefficients per query (query approx) / kept coefficients total (data approx)")
	tb.Note("shape claim: query approximation always CONVERGES to the exact answer as k grows,")
	tb.Note("while data approximation PLATEAUS at a data-dependent error floor (compare k=800 rows:")
	tb.Note("the floor varies by an order of magnitude across datasets — 'varies wildly', §3.3)")
	tb.Render(w)
	return res
}

// E4Result reports exact query/update costs.
type E4Result struct {
	Ns            []int
	QueryCoeffs   []int // ProPolyne touched coefficients (COUNT)
	PrefixLookups int
	ScanCells     []int
	ProTime       []time.Duration
	ScanTime      []time.Duration
}

// RunE4 reproduces the exact-cost claim (§3.3): ProPolyne answers exact
// polynomial range-sums touching only polylog coefficients — comparable to
// the best exact MOLAP (prefix sums), and orders of magnitude below a
// naive scan — while also supporting polynomial measures prefix sums do
// not.
func RunE4(w io.Writer) E4Result {
	var res E4Result
	tb := &Table{
		Title:   "E4 — Exact evaluation cost (2-D SUM query, half-domain range)",
		Columns: []string{"N per dim", "scan cells", "prefix-sum lookups", "propolyne coeffs", "scan time", "propolyne time"},
	}
	for _, n := range []int{64, 128, 256, 512} {
		dims := []int{n, n}
		cube := synth.ZipfCube(dims, 20*n, 1.2, int64(n))
		e, err := propolyne.New(cube, dims, 1)
		if err != nil {
			panic(err)
		}
		ps := datacube.NewPrefixSum(cube, dims)
		lo := []int{n / 8, n / 8}
		hi := []int{5 * n / 8, 5 * n / 8}
		polys := []vec.Poly{nil, {0, 1}}
		q := propolyne.Query{Lo: lo, Hi: hi, Polys: polys}

		t0 := time.Now()
		want := datacube.CubeRangeSum(cube, dims, lo, hi, polys)
		scanTime := time.Since(t0)

		t0 = time.Now()
		got, st, err := e.Exact(q)
		proTime := time.Since(t0)
		if err != nil {
			panic(err)
		}
		if math.Abs(got-want) > 1e-4*(1+math.Abs(want)) {
			panic(fmt.Sprintf("E4: propolyne %v != scan %v", got, want))
		}
		scanCells := (hi[0] - lo[0] + 1) * (hi[1] - lo[1] + 1)
		res.Ns = append(res.Ns, n)
		res.QueryCoeffs = append(res.QueryCoeffs, st.QueryCoeffs)
		res.ScanCells = append(res.ScanCells, scanCells)
		res.ProTime = append(res.ProTime, proTime)
		res.ScanTime = append(res.ScanTime, scanTime)
		res.PrefixLookups = ps.Lookups()
		tb.AddRow(n, scanCells, ps.Lookups(), st.QueryCoeffs,
			scanTime.Round(time.Microsecond).String(), proTime.Round(time.Microsecond).String())
	}
	tb.Note("prefix sums answer COUNT/SUM only and cost O(N^d) space per measure polynomial;")
	tb.Note("ProPolyne answers any degree-bounded polynomial from one transform (4 lookups vs polylog coeffs)")
	tb.Render(w)
	return res
}

// E5Result reports the hybrid comparison.
type E5Result struct {
	PureCoeffs, HybridCoeffs, RelationalCells int
}

// RunE5 reproduces the §3.3.1 hybridisation claim on the immersidata
// schema (sensor_id, t, value): selective queries on the tiny sensor_id
// dimension make the hybrid dominate both pure strategies.
func RunE5(w io.Writer) E5Result {
	sizes := []int{8, 512, 64} // sensor_id, time, value-bin
	rng := rand.New(rand.NewSource(15))
	rel := datacube.NewRelation(datacube.Schema{
		Names: []string{"sensor", "t", "value"},
		Sizes: sizes,
	})
	for i := 0; i < 40000; i++ {
		s := rng.Intn(8)
		t := rng.Intn(512)
		v := int(30 + 10*math.Sin(float64(t)/40) + 3*rng.NormFloat64() + float64(2*s))
		if v < 0 {
			v = 0
		}
		if v > 63 {
			v = 63
		}
		rel.MustAppend([]int{s, t, v})
	}
	cube := rel.Cube()

	pure, err := propolyne.New(cube, sizes, 1)
	if err != nil {
		panic(err)
	}
	bases, err := propolyne.ChooseBases(sizes, propolyne.QueryTemplate{
		RangeFraction: []float64{1.0 / 8, 0.3, 1},
		MaxDegree:     1,
	}, propolyne.DefaultCostModel)
	if err != nil {
		panic(err)
	}
	hyb, err := propolyne.NewWithBases(cube, sizes, bases)
	if err != nil {
		panic(err)
	}

	// Workload: per-sensor SUM(value) over a time window.
	q := propolyne.Query{
		Lo:    []int{3, 64, 0},
		Hi:    []int{3, 217, 63},
		Polys: []vec.Poly{nil, nil, {0, 1}},
	}
	wantNaive := rel.RangeSum(q.Lo, q.Hi, q.Polys)
	gotPure, stPure, _ := pure.Exact(q)
	gotHyb, stHyb, _ := hyb.Exact(q)
	if math.Abs(gotPure-wantNaive) > 1e-4*(1+math.Abs(wantNaive)) ||
		math.Abs(gotHyb-wantNaive) > 1e-4*(1+math.Abs(wantNaive)) {
		panic("E5: engines disagree with the naive scan")
	}
	relationalCells := (q.Hi[0] - q.Lo[0] + 1) * (q.Hi[1] - q.Lo[1] + 1) * (q.Hi[2] - q.Lo[2] + 1)

	basisDesc := func(b []propolyne.Basis) string {
		out := ""
		for i, x := range b {
			if i > 0 {
				out += ","
			}
			if x.Standard {
				out += "std"
			} else {
				out += x.Filter.Name
			}
		}
		return out
	}

	tb := &Table{
		Title:   "E5 — Hybrid ProPolyne on (sensor_id, t, value): SUM(value), one sensor, 30% time",
		Columns: []string{"engine", "bases", "touched coeffs/cells"},
	}
	tb.AddRow("pure relational (scan box)", "std,std,std", relationalCells)
	tb.AddRow("pure ProPolyne", basisDesc(pure.Bases), stPure.QueryCoeffs)
	tb.AddRow("hybrid (chosen)", basisDesc(hyb.Bases), stHyb.QueryCoeffs)
	tb.Note("paper: the best hybridization performs at least as well as pure relational or pure ProPolyne")
	tb.Render(w)
	return E5Result{PureCoeffs: stPure.QueryCoeffs, HybridCoeffs: stHyb.QueryCoeffs, RelationalCells: relationalCells}
}
