package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"
	"runtime"
	"time"

	"aims/internal/core"
	"aims/internal/fleet"
	"aims/internal/propolyne"
	"aims/internal/synth"
	"aims/internal/vec"
	"aims/internal/wire"
)

// E17Result reports query_plan: compiled-plan caching vs per-query
// compilation, single-engine and fleet-wide.
type E17Result struct {
	// Single engine: one degree-2 range-sum on a 512×512 cube.
	ColdUS   float64 // compile + evaluate, per query
	CachedUS float64 // cache hit + evaluate, per query
	Speedup  float64 // ColdUS / CachedUS

	// Fleet: approximate COUNT over Sessions same-geometry live sessions.
	Sessions       int
	FleetNoCacheUS float64 // per-session µs, plan cache disabled (compile per session)
	FleetSharedUS  float64 // per-session µs, shared warm cache (compile once per geometry)
	FleetSpeedup   float64
}

// timeLoop runs f repeatedly until enough wall time accumulates for a
// stable figure and returns the mean per-call microseconds.
func timeLoop(f func()) float64 {
	reps := 0
	var total time.Duration
	for total < 100*time.Millisecond || reps < 5 {
		t0 := time.Now()
		f()
		total += time.Since(t0)
		reps++
	}
	return float64(total.Microseconds()) / float64(reps)
}

// RunE17 measures the query_plan experiment. Part one isolates what a
// compiled plan saves on a single engine: a degree-2 polynomial range-sum
// over a 512×512 wavelet cube evaluated cold (lazy-transform compile +
// tensor walk every time — the pre-plan behaviour) versus through a warm
// PlanCache (key lookup + allocation-free sparse dot product). Part two
// replays the E16 fleet scenario on the approximate-COUNT path: N sessions
// of one device class share engine geometry, so the shared cache compiles
// one plan per fleet query where the uncached path compiles N times.
func RunE17(w io.Writer) E17Result {
	var res E17Result

	// --- Part 1: single-engine cold vs cached -------------------------
	dims := []int{512, 512}
	cube := synth.ZipfCube(dims, 100000, 1.2, 3)
	e, err := propolyne.New(cube, dims, 2)
	if err != nil {
		panic(err)
	}
	q := propolyne.Query{
		Lo:    []int{17, 40},
		Hi:    []int{400, 480},
		Polys: []vec.Poly{nil, {0, 0, 1}}, // Σ value² over the box
	}
	cache := propolyne.NewPlanCache(1 << 16)
	warm, err := cache.Lookup(e, q)
	if err != nil {
		panic(err)
	}
	want := e.EvalPlan(warm)

	res.ColdUS = timeLoop(func() {
		p, err := e.CompilePlan(q)
		if err != nil {
			panic(err)
		}
		if got := e.EvalPlan(p); math.Float64bits(got) != math.Float64bits(want) {
			panic(fmt.Sprintf("cold answer drifted: %v vs %v", got, want))
		}
	})
	res.CachedUS = timeLoop(func() {
		p, err := cache.Lookup(e, q)
		if err != nil {
			panic(err)
		}
		if got := e.EvalPlan(p); math.Float64bits(got) != math.Float64bits(want) {
			panic(fmt.Sprintf("cached answer drifted: %v vs %v", got, want))
		}
	})
	res.Speedup = res.ColdUS / res.CachedUS

	tb := &Table{
		Title:   "E17 — query_plan: compiled plans make repeated queries a pure dot product",
		Columns: []string{"path", "per query (µs)", "speedup"},
	}
	tb.AddRow("cold (compile + evaluate)", res.ColdUS, "1.0×")
	tb.AddRow("cached plan (hit + dot)", res.CachedUS, fmt.Sprintf("%.1f×", res.Speedup))

	// --- Part 2: fleet approximate COUNT, shared vs per-session compile
	const (
		frames = 256
		rate   = 100.0
	)
	res.Sessions = 2000
	workers := runtime.NumCPU()
	if workers > 16 {
		workers = 16
	}
	rng := rand.New(rand.NewSource(17))
	sessions := make([]fleet.Session, res.Sessions)
	for i := range sessions {
		ls, err := core.NewLiveStore([]float64{-1}, []float64{1}, core.LiveStoreConfig{
			Rate: rate, HorizonTicks: frames, TimeBuckets: 64, ValueBins: 16,
		})
		if err != nil {
			panic(err)
		}
		for tick := 0; tick < frames; tick++ {
			if err := ls.AppendFrame(tick, []float64{rng.Float64()*2 - 1}); err != nil {
				panic(err)
			}
		}
		sessions[i] = fleet.Session{ID: uint64(i + 1), Class: "sim", Store: ls}
	}
	req := fleet.Request{
		Kind: wire.QueryApproxCount, Channel: 0, T0: 0, T1: float64(frames) / rate,
		Arg: 64, Scope: wire.FleetScope{Class: "sim"},
	}
	cfg := fleet.Config{Workers: workers, Timeout: time.Minute}
	runFleet := func() {
		r := fleet.Evaluate(context.Background(), sessions, req, cfg)
		if !r.OK {
			panic(fmt.Sprintf("fleet approx count failed: code=%d", r.Code))
		}
	}
	runFleet() // seal every session store once, off the clock

	// Disabled cache = the legacy behaviour: every session scan compiles
	// its own plan.
	propolyne.SharedCache.SetCapacity(-1)
	noCacheUS := timeLoop(runFleet)
	propolyne.SharedCache.SetCapacity(propolyne.DefaultPlanCacheCost)
	propolyne.SharedCache.Purge()
	runFleet() // warm: the one compile per geometry happens here
	sharedUS := timeLoop(runFleet)

	res.FleetNoCacheUS = noCacheUS / float64(res.Sessions)
	res.FleetSharedUS = sharedUS / float64(res.Sessions)
	res.FleetSpeedup = res.FleetNoCacheUS / res.FleetSharedUS

	tb.AddRow(fmt.Sprintf("fleet/%d sessions, per-session compile", res.Sessions),
		res.FleetNoCacheUS, "1.0×")
	tb.AddRow(fmt.Sprintf("fleet/%d sessions, shared plan", res.Sessions),
		res.FleetSharedUS, fmt.Sprintf("%.1f×", res.FleetSpeedup))
	tb.Note("plans depend only on engine geometry + query shape, so a fleet of one device")
	tb.Note("class shares a single compiled plan; the per-session cost left is the sparse")
	tb.Note("dot product ProPolyne promises (plus scatter dispatch)")
	tb.Render(w)
	return res
}
