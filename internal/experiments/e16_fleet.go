package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"time"

	"aims/internal/core"
	"aims/internal/fleet"
	"aims/internal/wire"
)

// E16Result reports fleet_scale: cross-session fleet query latency as the
// live-session population grows.
type E16Result struct {
	Workers      int
	FramesEach   int
	Counts       []int     // fleet sizes evaluated
	WallMS       []float64 // fleet COUNT wall time at each size
	PerSessionUS []float64 // wall / size
	GrowthVs1    []float64 // WallMS[i] / WallMS[0]
}

// RunE16 measures the fleet_scale experiment: one exact COUNT evaluated
// over fleets of 1 → 10k live sessions through fleet.Evaluate — the same
// scatter-gather path the server's MsgFleetQuery handler uses. Each
// session is a small one-channel live store (64×16 cube, 256 frames), so
// the experiment isolates fan-out and merge cost rather than per-cube scan
// width. The claim under test is sub-linear latency growth: the bounded
// worker pool overlaps per-session scans, so a 1000-session fleet answers
// in far less than 1000× the single-session latency.
func RunE16(w io.Writer) E16Result {
	const (
		frames = 256
		rate   = 100.0
	)
	counts := []int{1, 10, 100, 1000, 10000}
	workers := runtime.NumCPU()
	if workers > 16 {
		workers = 16
	}

	rng := rand.New(rand.NewSource(16))
	max := counts[len(counts)-1]
	sessions := make([]fleet.Session, max)
	for i := range sessions {
		ls, err := core.NewLiveStore([]float64{-1}, []float64{1}, core.LiveStoreConfig{
			Rate: rate, HorizonTicks: frames, TimeBuckets: 64, ValueBins: 16,
		})
		if err != nil {
			panic(err)
		}
		for tick := 0; tick < frames; tick++ {
			if err := ls.AppendFrame(tick, []float64{rng.Float64()*2 - 1}); err != nil {
				panic(err)
			}
		}
		sessions[i] = fleet.Session{ID: uint64(i + 1), Class: "sim", Store: ls}
	}

	req := fleet.Request{
		Kind: wire.QueryCount, Channel: 0, T0: 0, T1: float64(frames) / rate,
		Scope: wire.FleetScope{Class: "sim"},
	}
	cfg := fleet.Config{Workers: workers, Timeout: time.Minute}

	res := E16Result{Workers: workers, FramesEach: frames}
	tb := &Table{
		Title: fmt.Sprintf("E16 — fleet_scale: COUNT over N sessions (%d workers, %d frames each)",
			workers, frames),
		Columns: []string{"sessions", "wall (ms)", "per session (µs)", "vs N=1"},
	}
	for _, n := range counts {
		// Repeat until enough wall time accumulates for a stable figure.
		reps := 0
		var total time.Duration
		for total < 50*time.Millisecond || reps < 3 {
			t0 := time.Now()
			r := fleet.Evaluate(context.Background(), sessions[:n], req, cfg)
			total += time.Since(t0)
			reps++
			if !r.OK || r.Value != float64(n*frames) {
				panic(fmt.Sprintf("fleet over %d sessions: ok=%v value=%v want %d", n, r.OK, r.Value, n*frames))
			}
		}
		ms := float64(total.Microseconds()) / 1000 / float64(reps)
		res.Counts = append(res.Counts, n)
		res.WallMS = append(res.WallMS, ms)
		res.PerSessionUS = append(res.PerSessionUS, 1000*ms/float64(n))
		res.GrowthVs1 = append(res.GrowthVs1, ms/res.WallMS[0])
		tb.AddRow(n, ms, 1000*ms/float64(n), fmt.Sprintf("%.1f×", ms/res.WallMS[0]))
	}
	tb.Note("scatter-gather over the %d-worker pool: sessions scan concurrently and the", workers)
	tb.Note("merge is an O(N) fold, so latency grows sub-linearly in fleet size until the")
	tb.Note("pool saturates; per-session cost falls as fan-out amortises dispatch overhead")
	tb.Render(w)
	return res
}
