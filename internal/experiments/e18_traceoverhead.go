package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"sync"
	"time"

	"aims/internal/core"
	"aims/internal/server"
	"aims/internal/stream"
	"aims/internal/wire"
)

// E18Result reports trace_overhead: query throughput with distributed
// tracing and the always-on slow-query log at their defaults versus the
// whole trace plane disabled. The always-on path is the expensive one to
// pin: with the slow ring armed, EVERY query gets a live trace (so a slow
// outlier is captured with 100% probability), not just the 1/256 the
// sampler picks.
type E18Result struct {
	Sessions int
	Queries  int // per session

	BaseQPS   float64 // tracer and slow log disabled
	TracedQPS float64 // default sampling + 100ms slow threshold
	// OverheadPct is (BaseQPS-TracedQPS)/BaseQPS×100; negative values are
	// run-to-run noise.
	OverheadPct float64

	BaseQueryUS   float64
	TracedQueryUS float64
}

// RunE18 measures the always-on tracing tax on the query path: span
// stamping, attribute capture and the slow-threshold check ride on every
// query once the slow ring is armed, so the experiment drives a
// query-heavy loopback load in both modes, interleaved, best-of-N, and
// pins the throughput gap under 2%.
func RunE18(w io.Writer) E18Result {
	const (
		sessions = 4
		frames   = 4096
		queries  = 2048
		reps     = 4
	)
	res := E18Result{Sessions: sessions, Queries: queries}

	res.BaseQueryUS = math.Inf(1)
	res.TracedQueryUS = math.Inf(1)
	for r := 0; r < reps; r++ {
		qps, qus := e18Run(true, sessions, frames, queries)
		if qps > res.BaseQPS {
			res.BaseQPS = qps
		}
		res.BaseQueryUS = math.Min(res.BaseQueryUS, qus)
		qps, qus = e18Run(false, sessions, frames, queries)
		if qps > res.TracedQPS {
			res.TracedQPS = qps
		}
		res.TracedQueryUS = math.Min(res.TracedQueryUS, qus)
	}
	res.OverheadPct = (res.BaseQPS - res.TracedQPS) / res.BaseQPS * 100

	tb := &Table{
		Title:   "E18 trace_overhead: always-on slow-query log tax on the query path",
		Columns: []string{"trace plane", "queries/s", "query µs"},
	}
	tb.AddRow("off", res.BaseQPS, res.BaseQueryUS)
	tb.AddRow("1/256 + 100ms slow log", res.TracedQPS, res.TracedQueryUS)
	tb.Note("%d sessions × %d queries after %d frames each, best of %d runs", sessions, queries, frames, reps)
	tb.Note("query throughput overhead %.2f%% (target <2%%; negative = noise)", res.OverheadPct)
	tb.Render(w)
	return res
}

// e18Run drives one query-heavy loopback load and returns aggregate
// queries/s and mean query latency in µs. disabled turns off both the
// sampler and the slow-query log; otherwise both run at their defaults.
func e18Run(disabled bool, sessions, frames, queries int) (qps, queryUS float64) {
	cfg := server.Config{
		QueueFrames: 8192,
		Store:       core.LiveStoreConfig{TimeBuckets: 256, ValueBins: 64},
	}
	if disabled {
		cfg.TraceSample = -1
		cfg.SlowQuery = -1
	}
	srv := server.New(cfg)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	channels := 8
	vals := make([]float64, channels)
	for c := range vals {
		vals[c] = float64(c)
	}
	mins := make([]float64, channels)
	maxs := make([]float64, channels)
	for c := range mins {
		mins[c], maxs[c] = -1, float64(channels)
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	var queryNS int64
	start := time.Now()
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			c, err := wire.Dial(addr.String())
			if err != nil {
				panic(err)
			}
			_, err = c.Hello(wire.Hello{
				Rate: 100, HorizonTicks: uint32(frames),
				Name: fmt.Sprintf("e18-%d", s), Mins: mins, Maxs: maxs,
			})
			if err != nil {
				panic(err)
			}
			const batch = 256
			local := make([]stream.Frame, batch)
			for tick := 0; tick < frames; tick += batch {
				for i := range local {
					local[i] = stream.Frame{T: float64(tick+i) / 100, Values: vals}
				}
				if err := c.SendBatch(local); err != nil {
					panic(err)
				}
			}
			if _, err := c.Flush(); err != nil {
				panic(err)
			}
			span := float64(frames) / 100
			var localNS int64
			for q := 0; q < queries; q++ {
				kind := wire.QueryAverage
				if q%2 == 1 {
					kind = wire.QueryCount
				}
				t0 := time.Now()
				if _, err := c.Query(wire.Query{
					Kind: kind, Channel: uint16(q % channels),
					T0: 0, T1: span * float64(1+q%4) / 4,
				}); err != nil {
					panic(err)
				}
				localNS += time.Since(t0).Nanoseconds()
			}
			if _, err := c.Close(); err != nil {
				panic(err)
			}
			mu.Lock()
			queryNS += localNS
			mu.Unlock()
		}(s)
	}
	wg.Wait()
	wall := time.Since(start)
	total := sessions * queries
	qps = float64(total) / wall.Seconds()
	queryUS = float64(queryNS) / float64(total) / 1e3
	return qps, queryUS
}
