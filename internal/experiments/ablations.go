package experiments

import (
	"io"
	"math"
	"math/rand"
	"sync"
	"time"

	"aims/internal/disk"
	"aims/internal/propolyne"
	"aims/internal/svdstream"
	"aims/internal/synth"
	"aims/internal/vec"
	"aims/internal/wavelet"
)

// Ablations A1–A4 quantify the design choices DESIGN.md calls out and the
// paper's §3.3.1/§3.4.1 extension proposals.

// A1Result reports multi-query I/O sharing and ordering quality.
type A1Result struct {
	Distinct, Total    int
	WorstCaseAdvantage float64 // max-bucket-error ratio (L2 order / worst-case order) at the probe point
}

// RunA1 evaluates the GROUP BY/matrix extension (§3.3.1): how much I/O a
// drill-down shares across buckets, and how the fetch-ordering objective
// (total L2 vs worst-case) shifts the error profile.
func RunA1(w io.Writer) A1Result {
	// Zipf data makes the buckets heterogeneous (the near-origin bucket
	// carries most of the mass), which is where the ordering objectives
	// genuinely diverge.
	dims := []int{128, 128}
	cube := synth.ZipfCube(dims, 80000, 1.4, 201)
	e, err := propolyne.New(cube, dims, 1)
	if err != nil {
		panic(err)
	}
	parent := propolyne.Box{Lo: []int{0, 16}, Hi: []int{127, 111}}
	g, err := propolyne.NewGroupBy(parent, []vec.Poly{nil, {0, 1}}, 0, 16)
	if err != nil {
		panic(err)
	}
	distinct, total, err := e.SharedSupport(g)
	if err != nil {
		panic(err)
	}
	exact, err := e.GroupByExact(g)
	if err != nil {
		panic(err)
	}

	// The ordering objective is the guaranteed per-bucket bound; report the
	// max bound (what the order optimises) and the realized max error (for
	// context).
	maxAt := func(steps []propolyne.GroupStep, frac float64) (bound, realized float64) {
		k := int(frac * float64(len(steps)))
		if k < 1 {
			k = 1
		}
		st := steps[k-1]
		for bi, est := range st.Estimates {
			if e := math.Abs(est - exact.Values[bi]); e > realized {
				realized = e
			}
			if st.Bounds[bi] > bound {
				bound = st.Bounds[bi]
			}
		}
		return bound, realized
	}
	l2Steps, err := e.GroupByProgressive(g, propolyne.L2Total, 64)
	if err != nil {
		panic(err)
	}
	wcSteps, err := e.GroupByProgressive(g, propolyne.WorstCase, 64)
	if err != nil {
		panic(err)
	}
	naiveSteps, err := e.GroupByProgressive(g, propolyne.NaiveOrder, 64)
	if err != nil {
		panic(err)
	}

	tb := &Table{
		Title:   "A1 — GROUP BY (16 buckets) shared evaluation and fetch ordering",
		Columns: []string{"quantity", "value"},
	}
	tb.AddRow("sum of per-bucket coefficients", total)
	tb.AddRow("distinct coefficients fetched", distinct)
	tb.AddRow("I/O sharing factor", float64(total)/float64(distinct))
	var res A1Result
	res.Distinct, res.Total = distinct, total
	for _, frac := range []float64{0.25, 0.5} {
		l2Bound, l2Err := maxAt(l2Steps, frac)
		wcBound, wcErr := maxAt(wcSteps, frac)
		nvBound, nvErr := maxAt(naiveSteps, frac)
		pct := trimFloat(frac * 100)
		tb.AddRow("max bucket bound @ "+pct+"% fetches (naive order)", nvBound)
		tb.AddRow("max bucket bound @ "+pct+"% fetches (L2 order)", l2Bound)
		tb.AddRow("max bucket bound @ "+pct+"% fetches (worst-case order)", wcBound)
		tb.AddRow("  (realized max |err|: naive / L2 / worst-case)",
			trimFloat(nvErr)+" / "+trimFloat(l2Err)+" / "+trimFloat(wcErr))
		if frac == 0.5 && l2Bound > 0 {
			res.WorstCaseAdvantage = nvBound / l2Bound
		}
	}
	tb.Note("queries act as linear maps: one batch shares each coefficient across buckets;")
	tb.Note("importance ordering (either objective) beats the naive scan by a wide margin;")
	tb.Note("with heavy sharing the L2 and worst-case objectives nearly coincide — the")
	tb.Note("specialised ordering matters only for weakly-shared, heterogeneous batches")
	tb.Render(w)
	return res
}

// A2Result reports the random-projection trade.
type A2Result struct {
	Dims     []int
	Accuracy []float64
	PerPair  []time.Duration
}

// RunA2 evaluates random-projection dimension reduction (§3.3.1 refinement
// list) for the SVD similarity: recognition accuracy and per-comparison
// cost as the 28-D sensor space shrinks.
func RunA2(w io.Writer) A2Result {
	vocab := synth.ConfusableVocabulary(10, 0.12, 211)
	rng := rand.New(rand.NewSource(212))
	refs := make(map[string][][]float64, len(vocab))
	for _, s := range vocab {
		refs[s.Name] = s.Render(1, 0, rng)
	}
	var segs []struct {
		frames [][]float64
		name   string
	}
	for _, s := range vocab {
		for k := 0; k < 5; k++ {
			segs = append(segs, struct {
				frames [][]float64
				name   string
			}{s.Render(0.75+0.1*float64(k), 2.5, rng), s.Name})
		}
	}
	var res A2Result
	tb := &Table{
		Title:   "A2 — Random-projection SVD similarity: accuracy vs projected dimension",
		Columns: []string{"dimension", "accuracy", "time per comparison"},
	}
	evalDist := func(dist func(a, b [][]float64) float64) (float64, time.Duration) {
		correct := 0
		t0 := time.Now()
		for _, seg := range segs {
			if svdstream.NearestTemplate(seg.frames, refs, dist) == seg.name {
				correct++
			}
		}
		el := time.Since(t0) / time.Duration(len(segs)*len(refs))
		return float64(correct) / float64(len(segs)), el
	}
	for _, k := range []int{4, 8, 12, 20} {
		p := svdstream.NewProjector(synth.SignDims, k, 213)
		acc, el := evalDist(svdstream.ProjectedSVDDistance(p, 4))
		res.Dims = append(res.Dims, k)
		res.Accuracy = append(res.Accuracy, acc)
		res.PerPair = append(res.PerPair, el)
		tb.AddRow(k, acc, el.Round(time.Microsecond).String())
	}
	accFull, elFull := evalDist(svdstream.SVDDistance(6))
	res.Dims = append(res.Dims, synth.SignDims)
	res.Accuracy = append(res.Accuracy, accFull)
	res.PerPair = append(res.PerPair, elFull)
	tb.AddRow(28, accFull, elFull.Round(time.Microsecond).String())
	tb.Note("Johnson–Lindenstrauss: a handful of Gaussian directions preserve the rotation")
	tb.Note("structure well enough for recognition at a fraction of the eigensolver cost")
	tb.Render(w)
	return res
}

// A3Result reports buffer-pool hit rates.
type A3Result struct {
	Capacities []int
	TilingHit  []float64
	SeqHit     []float64
}

// RunA3 measures how the tiling allocation's locality turns into buffer-
// pool hit rate: point-query workloads against tiled vs sequential layouts
// under LRU pools of increasing capacity.
func RunA3(w io.Writer) A3Result {
	const n = 1 << 14
	const b = 64
	tree := wavelet.NewErrorTree(n)
	zeros := make([]float64, n)
	var res A3Result
	tb := &Table{
		Title:   "A3 — LRU buffer pool hit rate (point queries, N=16384, B=64)",
		Columns: []string{"pool frames", "tiling hit rate", "sequential hit rate"},
	}
	for _, capacity := range []int{2, 4, 8, 16, 32} {
		run := func(alloc disk.Allocation) float64 {
			st := disk.NewStore(zeros, alloc, b)
			c := disk.NewCachedStore(st, capacity)
			rng := rand.New(rand.NewSource(214))
			for i := 0; i < 500; i++ {
				c.Fetch(tree.PointPath(rng.Intn(n)))
			}
			return c.HitRate()
		}
		th := run(disk.NewTiling(n, b))
		sh := run(disk.NewSequential(n, b))
		res.Capacities = append(res.Capacities, capacity)
		res.TilingHit = append(res.TilingHit, th)
		res.SeqHit = append(res.SeqHit, sh)
		tb.AddRow(capacity, th, sh)
	}
	tb.Note("tiling dominates with small pools (every path reuses the hot top-of-tree tile);")
	tb.Note("with larger pools the breadth-first sequential layout catches up because the")
	tb.Note("standard coefficient order is itself depth-sorted — the allocation choice matters")
	tb.Note("exactly when buffer memory is scarce relative to the working set")
	tb.Render(w)
	return res
}

// A5Result reports concurrent query throughput.
type A5Result struct {
	Readers     []int
	QueriesPerS []float64
}

// RunA5 measures read-scalability of the engine's single-writer/many-
// reader protocol: COUNT/SUM query throughput as reader goroutines grow,
// with a background appender running throughout.
func RunA5(w io.Writer) A5Result {
	dims := []int{256, 256}
	e, err := propolyne.New(synth.ZipfCube(dims, 60000, 1.2, 231), dims, 1)
	if err != nil {
		panic(err)
	}
	var res A5Result
	tb := &Table{
		Title:   "A5 — Concurrent query throughput (background appender active)",
		Columns: []string{"reader goroutines", "queries/s", "scaling vs 1"},
	}
	var base float64
	for _, readers := range []int{1, 2, 4, 8} {
		stopWriter := make(chan struct{})
		var writerDone sync.WaitGroup
		writerDone.Add(1)
		go func() {
			defer writerDone.Done()
			rng := rand.New(rand.NewSource(232))
			for {
				select {
				case <-stopWriter:
					return
				default:
				}
				if err := e.Append([]int{rng.Intn(256), rng.Intn(256)}, 1); err != nil {
					panic(err)
				}
			}
		}()

		const perReader = 300
		var wg sync.WaitGroup
		t0 := time.Now()
		for r := 0; r < readers; r++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for i := 0; i < perReader; i++ {
					lo := []int{rng.Intn(200), rng.Intn(200)}
					q := propolyne.Query{
						Lo:    lo,
						Hi:    []int{lo[0] + 4 + rng.Intn(50), lo[1] + 4 + rng.Intn(50)},
						Polys: []vec.Poly{nil, {0, 1}},
					}
					if _, _, err := e.Exact(q); err != nil {
						panic(err)
					}
				}
			}(int64(300 + r))
		}
		wg.Wait()
		elapsed := time.Since(t0)
		close(stopWriter)
		writerDone.Wait()

		qps := float64(readers*perReader) / elapsed.Seconds()
		if readers == 1 {
			base = qps
		}
		res.Readers = append(res.Readers, readers)
		res.QueriesPerS = append(res.QueriesPerS, qps)
		tb.AddRow(readers, qps, qps/base)
	}
	tb.Note("readers share the RWMutex read lock; the appender's short write sections")
	tb.Note("(sparse delta updates) barely dent read throughput")
	tb.Render(w)
	return res
}

// A4Result reports error-bound tightness.
type A4Result struct {
	Budgets      []int
	LooseBound   []float64
	RefinedBound []float64
	TrueError    []float64
}

// RunA4 compares the global Cauchy–Schwarz progressive bound against the
// per-subband refinement (§3.3.1: exploiting "information about the energy
// distribution of the data").
func RunA4(w io.Writer) A4Result {
	dims := []int{128, 128}
	e, err := propolyne.New(synth.SmoothCube(dims, 221), dims, 0)
	if err != nil {
		panic(err)
	}
	q := propolyne.Query{Lo: []int{13, 21}, Hi: []int{90, 110}}
	exact, _, _ := e.Exact(q)
	var res A4Result
	tb := &Table{
		Title:   "A4 — Progressive error bounds: global vs per-subband refinement",
		Columns: []string{"budget", "true |err|", "global bound", "refined bound", "tightening"},
	}
	for _, k := range []int{10, 30, 60, 120, 240} {
		est, loose, err := e.EstimateWithBudget(q, k)
		if err != nil {
			panic(err)
		}
		_, refined, err := e.EstimateWithBudgetRefined(q, k)
		if err != nil {
			panic(err)
		}
		te := math.Abs(est - exact)
		res.Budgets = append(res.Budgets, k)
		res.LooseBound = append(res.LooseBound, loose)
		res.RefinedBound = append(res.RefinedBound, refined)
		res.TrueError = append(res.TrueError, te)
		ratio := 0.0
		if refined > 0 {
			ratio = loose / refined
		}
		tb.AddRow(k, te, loose, refined, ratio)
	}
	tb.Note("both bounds are guaranteed; the refinement pays one scalar per subband cell")
	tb.Render(w)
	return res
}
