package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"aims/internal/chaos"
	"aims/internal/core"
	"aims/internal/server"
	"aims/internal/stream"
	"aims/internal/wire"
)

// E19Row is one fault-rate operating point of the chaos experiment.
type E19Row struct {
	FaultPct    float64 // cut + reset probability, in percent
	FPS         float64 // end-to-end ingest throughput, frames/s
	Disconnects uint64  // forced teardowns injected by the proxy
	Reconnects  uint64  // successful client re-dials
	Replayed    uint64  // batches replayed from the client ring
	RecoverP50  float64 // reconnect recovery latency, ms
	RecoverP99  float64 // reconnect recovery latency, ms
}

// E19Result reports chaos: resilient-link throughput and recovery latency
// under injected network faults. The acceptance bound is structural, not a
// tuning target: full-jitter backoff sleeps are uniform in [0, cap] with
// cap ≤ MaxBackoff, so against a healthy server one outage should recover
// well inside 2×MaxBackoff even when an early attempt is itself killed.
type E19Result struct {
	Sessions   int
	Frames     int // per session
	MaxBackoff time.Duration
	Rows       []E19Row
	// P99Bounded is true when every faulted row's p99 recovery latency is
	// under 2×MaxBackoff — the exactly-once replay machinery is not
	// stalling reconnects.
	P99Bounded bool
	// Exact is true when every run stored exactly Frames frames per
	// session: zero loss, zero duplicates, at every fault rate.
	Exact bool
}

// RunE19 drives a resilient-client ingest load through a deterministic
// fault proxy at 0%, 1% and 5% fault rates and measures what resilience
// costs: throughput degradation, reconnect counts, and how fast the link
// recovers from each forced disconnect (p50/p99 of wire.Outages). Every
// run also re-counts the store over the wire — the frame count must be
// exact despite torn frames and replayed batches, or the row is a failure,
// not a data point.
func RunE19(w io.Writer) E19Result {
	const (
		sessions   = 2
		frames     = 8192
		batch      = 128
		maxBackoff = 250 * time.Millisecond
	)
	res := E19Result{Sessions: sessions, Frames: frames, MaxBackoff: maxBackoff, P99Bounded: true, Exact: true}

	for i, rate := range []float64{0, 0.01, 0.05} {
		row := e19Run(rate, int64(42+i), sessions, frames, batch, maxBackoff, &res.Exact)
		if rate > 0 && row.RecoverP99 >= 2*float64(maxBackoff/time.Millisecond) {
			res.P99Bounded = false
		}
		res.Rows = append(res.Rows, row)
	}

	tb := &Table{
		Title:   "E19 chaos: resilient links under injected faults (cut+reset per rate)",
		Columns: []string{"fault %", "frames/s", "disconnects", "reconnects", "replayed", "recover p50 ms", "recover p99 ms"},
	}
	for _, r := range res.Rows {
		tb.AddRow(fmt.Sprintf("%.0f%%", r.FaultPct), r.FPS, r.Disconnects, r.Reconnects, r.Replayed, r.RecoverP50, r.RecoverP99)
	}
	tb.Note("%d sessions × %d frames, batch %d, backoff 10ms..%s full jitter", sessions, frames, batch, maxBackoff)
	tb.Note("exactly-once: every run stored exactly %d frames/session = %v", frames, res.Exact)
	tb.Note("recovery p99 < 2×max-backoff (%.0fms) at every fault rate = %v",
		2*float64(maxBackoff/time.Millisecond), res.P99Bounded)
	tb.Render(w)
	return res
}

// e19Run stands up a loopback server behind a chaos proxy and streams
// frames through resilient clients, returning the row for one fault rate.
// exact is cleared (never set) if any session's stored count drifts from
// the frames sent.
func e19Run(rate float64, seed int64, sessions, frames, batch int, maxBackoff time.Duration, exact *bool) E19Row {
	srv := server.New(server.Config{
		QueueFrames:  8192,
		Heartbeat:    time.Second,
		WriteTimeout: 2 * time.Second,
		TraceSample:  -1,
		Store:        core.LiveStoreConfig{TimeBuckets: 256, ValueBins: 64},
	})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	px, err := chaos.New(addr.String(), chaos.Config{
		Seed:    seed,
		CutRate: rate,
		// Resets exercise the re-dial path itself: some reconnect attempts
		// die before the handshake, forcing a second backoff round.
		ResetRate: rate,
	})
	if err != nil {
		panic(err)
	}
	defer px.Close()

	const channels = 2
	const tickRate = 1000
	mins := []float64{-1, -1}
	maxs := []float64{2, 2}
	vals := []float64{0.25, 0.75}

	var wg sync.WaitGroup
	var mu sync.Mutex
	var reconnects, replayed uint64
	var outages []time.Duration
	start := time.Now()
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			// The very first dial races the proxy's reset draw, which only
			// the established client survives — retry the handshake itself.
			var rc *wire.ResilientClient
			var err error
			for attempt := 0; ; attempt++ {
				rc, _, err = wire.DialResilient(wire.ResilientConfig{
					Addr:        px.Addr(),
					Window:      4,
					Timeout:     2 * time.Second,
					Heartbeat:   250 * time.Millisecond,
					BaseBackoff: 10 * time.Millisecond,
					MaxBackoff:  maxBackoff,
					MaxAttempts: -1,
					Seed:        seed + int64(s) + 1,
				}, wire.Hello{
					Rate: tickRate, HorizonTicks: uint32(frames),
					Name: fmt.Sprintf("e19-%.0f-%d", rate*100, s), Class: "chaos",
					Mins: mins, Maxs: maxs,
				})
				if err == nil {
					break
				}
				if attempt >= 20 {
					panic(err)
				}
				time.Sleep(10 * time.Millisecond)
			}
			local := make([]stream.Frame, batch)
			for tick := 0; tick < frames; tick += batch {
				for i := range local {
					local[i] = stream.Frame{T: float64(tick+i) / tickRate, Values: vals}
				}
				if err := rc.SendBatch(local); err != nil {
					panic(err)
				}
			}
			if _, err := rc.Flush(); err != nil {
				panic(err)
			}
			qr, err := rc.Query(wire.Query{
				Kind: wire.QueryCount, Channel: 0,
				T0: 0, T1: float64(frames)/tickRate + 1,
			})
			if err != nil {
				panic(err)
			}
			if int(qr.Value+0.5) != frames {
				mu.Lock()
				*exact = false
				mu.Unlock()
			}
			mu.Lock()
			reconnects += rc.Reconnects()
			replayed += rc.ReplayedBatches()
			outages = append(outages, rc.Outages()...)
			mu.Unlock()
			// A graceful close can itself be cut; the session is done either
			// way, so fall back to abort instead of failing the run.
			if _, err := rc.Close(); err != nil {
				rc.Abort()
			}
		}(s)
	}
	wg.Wait()
	wall := time.Since(start)

	row := E19Row{
		FaultPct:    rate * 100,
		FPS:         float64(sessions*frames) / wall.Seconds(),
		Disconnects: px.Disconnects(),
		Reconnects:  reconnects,
		Replayed:    replayed,
	}
	row.RecoverP50, row.RecoverP99 = percentilesMS(outages, 0.50, 0.99)
	return row
}

// percentilesMS returns the two requested percentiles of durations in
// milliseconds (nearest-rank), or zeros for an empty set.
func percentilesMS(ds []time.Duration, p1, p2 float64) (float64, float64) {
	if len(ds) == 0 {
		return 0, 0
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	rank := func(p float64) float64 {
		i := int(p*float64(len(ds)) + 0.5)
		if i >= len(ds) {
			i = len(ds) - 1
		}
		return float64(ds[i]) / float64(time.Millisecond)
	}
	return rank(p1), rank(p2)
}
