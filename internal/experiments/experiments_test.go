package experiments

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"time"
)

func TestTableRender(t *testing.T) {
	tb := &Table{Title: "demo", Columns: []string{"a", "bb"}}
	tb.AddRow(1, 2.5)
	tb.AddRow("x", 12345.6)
	tb.Note("footnote %d", 7)
	var buf bytes.Buffer
	tb.Render(&buf)
	out := buf.String()
	for _, want := range []string{"== demo ==", "a", "bb", "2.5000", "12346", "footnote 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRunT1Lists28Sensors(t *testing.T) {
	if got := RunT1(io.Discard); got != 28 {
		t.Fatalf("registry size = %d", got)
	}
}

func TestRunE1AdaptiveWins(t *testing.T) {
	res := RunE1(io.Discard)
	if res.PolicyBytes["adaptive"] >= res.PolicyBytes["fixed"] {
		t.Fatalf("adaptive %d should beat fixed %d", res.PolicyBytes["adaptive"], res.PolicyBytes["fixed"])
	}
	if res.PolicyBytes["adaptive"] >= res.RawBytes/2 {
		t.Fatalf("adaptive %d vs raw %d: savings too weak", res.PolicyBytes["adaptive"], res.RawBytes)
	}
	// Combined adaptive+ADPCM must not blow up above adaptive alone.
	if res.AdaptivePlusADPCMBytes >= res.PolicyBytes["adaptive"] {
		t.Fatalf("adaptive+adpcm %d ≥ adaptive %d", res.AdaptivePlusADPCMBytes, res.PolicyBytes["adaptive"])
	}
}

func TestRunE2TilingWithinBoundAndAboveSequential(t *testing.T) {
	res := RunE2(io.Discard)
	for i, b := range res.BlockSizes {
		if res.Tiling[i] > res.Bound[i]+1e-9 {
			t.Errorf("B=%d: tiling %v exceeds bound %v", b, res.Tiling[i], res.Bound[i])
		}
		if res.Tiling[i] <= res.Sequential[i] {
			t.Errorf("B=%d: tiling %v not above sequential %v", b, res.Tiling[i], res.Sequential[i])
		}
	}
}

func TestRunE3ShapeClaims(t *testing.T) {
	res := RunE3(io.Discard)
	last := len(res.Budgets) - 1
	for ds, methods := range res.RelErr {
		q := methods["query"]
		d := methods["data"]
		// Query approximation converges to (near) zero.
		if q[last] > 0.01 {
			t.Errorf("%s: query approx final error %v", ds, q[last])
		}
		// Data approximation plateaus above the query's final error on the
		// non-smooth datasets.
		if ds != "smooth (atmospheric)" && d[last] < q[last] {
			t.Errorf("%s: data approx %v below query %v at max budget", ds, d[last], q[last])
		}
	}
	// The data-approximation floor varies across datasets by ≥ 5×.
	floorSmooth := res.RelErr["smooth (atmospheric)"]["data"][last]
	floorWhite := res.RelErr["uniform (white)"]["data"][last]
	if floorWhite < 5*floorSmooth {
		t.Errorf("data-approx floors too close: smooth %v vs white %v", floorSmooth, floorWhite)
	}
}

func TestRunE4PolylogCost(t *testing.T) {
	res := RunE4(io.Discard)
	n := len(res.Ns)
	// Touched coefficients grow far slower than scanned cells.
	growthCoeffs := float64(res.QueryCoeffs[n-1]) / float64(res.QueryCoeffs[0])
	growthCells := float64(res.ScanCells[n-1]) / float64(res.ScanCells[0])
	if growthCoeffs*8 > growthCells {
		t.Fatalf("coefficient growth %v not ≪ cell growth %v", growthCoeffs, growthCells)
	}
}

func TestRunE5HybridDominates(t *testing.T) {
	res := RunE5(io.Discard)
	if res.HybridCoeffs >= res.PureCoeffs {
		t.Fatalf("hybrid %d not below pure %d", res.HybridCoeffs, res.PureCoeffs)
	}
	if res.HybridCoeffs >= res.RelationalCells {
		t.Fatalf("hybrid %d not below relational %d", res.HybridCoeffs, res.RelationalCells)
	}
}

func TestRunE6Choices(t *testing.T) {
	res := RunE6(io.Discard)
	if res.Chosen["sensor-id marginal"] != "" {
		t.Errorf("spiky marginal chose %q, want standard", res.Chosen["sensor-id marginal"])
	}
	if res.Chosen["atmospheric row"] == "" {
		t.Error("smooth signal should choose a wavelet basis")
	}
	for name, c := range res.Compaction {
		if c[2]+1e-9 < c[1] && res.Chosen[name] != "" {
			t.Errorf("%s: best packet %v below pyramid %v", name, c[2], c[1])
		}
	}
}

func TestRunE7StreamQuality(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	res := RunE7(io.Discard)
	if res.StreamRecall < 0.8 {
		t.Fatalf("stream recall %v", res.StreamRecall)
	}
	if res.StreamAccuracy < 0.8 {
		t.Fatalf("stream accuracy %v", res.StreamAccuracy)
	}
	if res.IsolatedAccuracy["weighted-sum SVD"] < 0.9 {
		t.Fatalf("isolated SVD accuracy at low noise %v", res.IsolatedAccuracy["weighted-sum SVD"])
	}
}

func TestRunE8AccuracyBand(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	res := RunE8(io.Discard)
	svm := res.Accuracy["linear SVM (paper's method)"]
	if svm < 0.75 || svm > 0.98 {
		t.Fatalf("SVM accuracy %v outside the plausible band around the paper's 0.86", svm)
	}
	if res.ADHDHitRate >= res.ControlHitRate {
		t.Fatal("ADHD hit rate should be below control")
	}
	if res.ADHDRT <= res.ControlRT {
		t.Fatal("ADHD reaction time should exceed control")
	}
}

func TestRunE9ExactAgreement(t *testing.T) {
	res := RunE9(io.Discard)
	// Moment entries reach ~5e5; 1e-4 absolute is ~1e-9 relative.
	if res.MaxMomentError > 1e-4 {
		t.Fatalf("moment error %v", res.MaxMomentError)
	}
	if res.SignatureSimilarity < 1-1e-6 {
		t.Fatalf("signature similarity %v", res.SignatureSimilarity)
	}
}

func TestRunE10IncrementalFaster(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-heavy")
	}
	res := RunE10(io.Discard)
	// At the largest window the incremental path must win clearly.
	last := len(res.Speedup) - 1
	if res.Speedup[last] < 1.2 {
		t.Fatalf("largest-window speedup %v", res.Speedup[last])
	}
}

func TestRunE11LosslessKeepsEverything(t *testing.T) {
	res := RunE11(io.Discard)
	// Rows alternate lossless/realtime; lossless rows must have 0 drops.
	for i := 0; i < len(res.Dropped); i += 2 {
		if res.Dropped[i] != 0 {
			t.Fatalf("lossless run %d dropped %d", i, res.Dropped[i])
		}
	}
}

func TestRunE12ImportanceConverges(t *testing.T) {
	res := RunE12(io.Discard)
	last := len(res.ErrImportance) - 1
	if res.ErrImportance[last] > 1e-9 {
		t.Fatalf("final importance error %v", res.ErrImportance[last])
	}
	// Half-way through the fetches the importance order is already tight.
	mid := len(res.ErrImportance) / 2
	if res.ErrImportance[mid] > 0.01 {
		t.Fatalf("mid-fetch importance error %v", res.ErrImportance[mid])
	}
}

func TestRunE13IncrementalSealFaster(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-heavy")
	}
	res := RunE13(io.Discard)
	if res.ColdMS <= 0 {
		t.Fatalf("cold seal time %v", res.ColdMS)
	}
	// The smallest delta must beat a full rebuild clearly; timing noise on a
	// loaded box makes the exact ratio flaky, so assert a conservative floor
	// (the benchmark baseline records the real ~15-70× margins).
	if res.Speedup[0] < 2 {
		t.Fatalf("delta=%d speedup %v", res.Deltas[0], res.Speedup[0])
	}
}

func TestRunE14ObsOverheadSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-heavy")
	}
	res := RunE14(io.Discard)
	if res.BaseFPS <= 0 || res.TracedFPS <= 0 {
		t.Fatalf("throughput base=%v traced=%v", res.BaseFPS, res.TracedFPS)
	}
	// The real claim is <2% overhead (EXPERIMENTS.md records it); under CI
	// scheduling noise assert only that tracing costs nowhere near the
	// pipeline, i.e. traced throughput stays within 30% of baseline.
	if res.TracedFPS < 0.7*res.BaseFPS {
		t.Fatalf("traced %.0f fps vs base %.0f fps: overhead %.1f%%",
			res.TracedFPS, res.BaseFPS, res.OverheadPct)
	}
}

func TestRunE16SubLinearFleetScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-heavy")
	}
	res := RunE16(io.Discard)
	// Find the 1k-session row; the acceptance claim is that a 1000-session
	// fleet answers in under 1000× the single-session latency. On a
	// multi-core box the worker pool overlaps scans and the growth is ~100×;
	// on a single-CPU box only dispatch amortisation remains, so assert
	// sub-linearity with a 20% margin rather than a parallel speedup.
	for i, n := range res.Counts {
		if n != 1000 {
			continue
		}
		if res.GrowthVs1[i] >= 800 {
			t.Fatalf("1000-session fleet grew %.0f× over 1 session — not sub-linear", res.GrowthVs1[i])
		}
	}
	// Per-session cost must fall as fan-out amortises dispatch overhead.
	first, last := res.PerSessionUS[0], res.PerSessionUS[len(res.PerSessionUS)-1]
	if last >= first {
		t.Fatalf("per-session cost rose with fleet size: %.1fµs → %.1fµs", first, last)
	}
}

func TestRunE17PlanCacheSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-heavy")
	}
	res := RunE17(io.Discard)
	// The recorded BENCH_query.json run shows ~20× single-query and ~10×
	// fleet per-session; assert conservative floors so a loaded CI box
	// cannot flake the build while a real regression (cache bypassed, plan
	// path slower than compile) still fails.
	if res.Speedup < 2 {
		t.Fatalf("cached query speedup %.1f× < 2× (cold %.1fµs, cached %.1fµs)",
			res.Speedup, res.ColdUS, res.CachedUS)
	}
	if res.FleetSpeedup < 1.2 {
		t.Fatalf("shared-plan fleet speedup %.2f× — shared cache not cheaper than per-session compile (%.1fµs vs %.1fµs)",
			res.FleetSpeedup, res.FleetNoCacheUS, res.FleetSharedUS)
	}
}

func TestRunE18TraceOverheadBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-heavy")
	}
	res := RunE18(io.Discard)
	// The recorded BENCH_trace.json run shows the always-on path within
	// noise of disabled; allow generous CI-box slack while still catching a
	// real regression (per-query allocation storm, lock on the hot path).
	// One measured blip on a contended box gets a single fresh re-run — a
	// real regression fails both.
	if res.OverheadPct > 10 {
		t.Logf("overhead %.1f%% over bound, re-measuring once", res.OverheadPct)
		res = RunE18(io.Discard)
	}
	if res.OverheadPct > 10 {
		t.Fatalf("always-on tracing costs %.1f%% query throughput (traced %.0f q/s, base %.0f q/s)",
			res.OverheadPct, res.TracedQPS, res.BaseQPS)
	}
}

func TestRunE19ChaosExactlyOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-heavy")
	}
	res := RunE19(io.Discard)
	// Exactness is the hard invariant: torn frames and replayed batches
	// must never change what the store counts.
	if !res.Exact {
		t.Fatal("chaos run lost or duplicated frames")
	}
	// The recorded BENCH_chaos.json run recovers well under 2×max-backoff;
	// allow loaded-CI slack (4×) while still catching a reconnect stall.
	for _, row := range res.Rows {
		if row.FaultPct > 0 && row.RecoverP99 >= 4*float64(res.MaxBackoff/time.Millisecond) {
			t.Fatalf("fault %.0f%%: recovery p99 %.1fms ≥ 4×max-backoff", row.FaultPct, row.RecoverP99)
		}
	}
}

func TestRunE20TransportOverheadBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-heavy")
	}
	res := RunE20(io.Discard)
	// The store must not know what carried the bytes.
	if !res.Exact {
		t.Fatal("a transport changed the stored frame count")
	}
	// Byte counts are deterministic (counted on the raw socket), so the
	// bound holds exactly, not statistically: one 4-byte header + 4-byte
	// mask per kilobyte-scale wire message plus the one-time handshake.
	if !res.Bounded {
		t.Fatalf("ws byte overhead %.2f%% ≥ 10%%", res.OverheadPct)
	}
	if res.OverheadPct <= 0 {
		t.Fatalf("ws byte overhead %.2f%% ≤ 0: the counting conn is not seeing the framing", res.OverheadPct)
	}
}

func TestAllRunnersRegistered(t *testing.T) {
	ids := map[string]bool{}
	for _, r := range All() {
		if ids[r.ID] {
			t.Fatalf("duplicate id %s", r.ID)
		}
		ids[r.ID] = true
		if r.Claim == "" || r.Run == nil {
			t.Fatalf("incomplete runner %s", r.ID)
		}
	}
	for _, want := range []string{"T1", "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8",
		"E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18", "E19", "E20", "A1", "A2", "A3", "A4", "A5"} {
		if !ids[want] {
			t.Fatalf("missing runner %s", want)
		}
	}
}

func TestRunA1SharingAndOrdering(t *testing.T) {
	res := RunA1(io.Discard)
	if res.Total <= res.Distinct {
		t.Fatalf("no sharing: %d vs %d", res.Total, res.Distinct)
	}
	// Importance ordering beats the naive scan by a wide margin at half
	// the fetches.
	if res.WorstCaseAdvantage < 3 {
		t.Fatalf("ordered/naive bound advantage %v < 3", res.WorstCaseAdvantage)
	}
}

func TestRunA2ProjectionTrade(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	res := RunA2(io.Discard)
	last := len(res.Dims) - 1
	// Full dimension is the accuracy ceiling; smallest projection must be
	// meaningfully faster.
	if res.Accuracy[last] < res.Accuracy[0]-1e-9 {
		t.Fatalf("full-dim accuracy %v below projected %v", res.Accuracy[last], res.Accuracy[0])
	}
	if res.PerPair[0]*2 > res.PerPair[last] {
		t.Fatalf("projection speedup weak: %v vs %v", res.PerPair[0], res.PerPair[last])
	}
}

func TestRunA3CacheAblation(t *testing.T) {
	res := RunA3(io.Discard)
	// With a tiny pool, tiling's locality must dominate.
	if res.TilingHit[1] <= res.SeqHit[1] {
		t.Fatalf("tiling hit %v not above sequential %v at 4 frames",
			res.TilingHit[1], res.SeqHit[1])
	}
	// Hit rates are monotone-ish in capacity.
	for i := 1; i < len(res.TilingHit); i++ {
		if res.TilingHit[i]+1e-9 < res.TilingHit[i-1] {
			t.Fatalf("tiling hit rate decreased with capacity: %v", res.TilingHit)
		}
	}
}

func TestRunA5ThroughputPositive(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-heavy")
	}
	res := RunA5(io.Discard)
	for i, q := range res.QueriesPerS {
		if q <= 0 {
			t.Fatalf("readers=%d: qps %v", res.Readers[i], q)
		}
	}
	// More readers must not collapse throughput below half of single-reader.
	last := len(res.QueriesPerS) - 1
	if res.QueriesPerS[last] < res.QueriesPerS[0]/2 {
		t.Fatalf("8-reader throughput %v collapsed vs 1-reader %v",
			res.QueriesPerS[last], res.QueriesPerS[0])
	}
}

func TestRunA4RefinementTightens(t *testing.T) {
	res := RunA4(io.Discard)
	for i, k := range res.Budgets {
		if res.RefinedBound[i] > res.LooseBound[i]+1e-9 {
			t.Fatalf("budget %d: refined %v looser than global %v", k, res.RefinedBound[i], res.LooseBound[i])
		}
		if res.TrueError[i] > res.RefinedBound[i]+1e-6 {
			t.Fatalf("budget %d: refined bound %v violated by true error %v", k, res.RefinedBound[i], res.TrueError[i])
		}
	}
	// Somewhere the refinement is at least 2× tighter.
	won := false
	for i := range res.Budgets {
		if res.RefinedBound[i] > 0 && res.LooseBound[i] > 2*res.RefinedBound[i] {
			won = true
		}
	}
	if !won {
		t.Fatal("refinement never clearly tighter")
	}
}
