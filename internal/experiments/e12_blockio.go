package experiments

import (
	"io"
	"math"

	"aims/internal/propolyne"
	"aims/internal/synth"
)

// runE12 implements RunE12 (declared next to the other storage experiment
// for the DESIGN.md grouping): progressive block-level evaluation with
// importance-ordered I/O versus unordered I/O.
func runE12(w io.Writer) E12Result {
	dims := []int{128, 128}
	cube := synth.SmoothCube(dims, 121)
	e, err := propolyne.New(cube, dims, 0) // Haar for tiling
	if err != nil {
		panic(err)
	}
	store, err := e.NewBlockStore(8)
	if err != nil {
		panic(err)
	}
	q := propolyne.Query{Lo: []int{9, 17}, Hi: []int{100, 120}}
	steps, exact, err := e.ProgressiveByBlocks(q, store)
	if err != nil {
		panic(err)
	}

	// Unordered: same blocks in ascending ID order.
	entries, _, _ := e.QueryCoefficients(q)
	queryMap := map[int]float64{}
	for _, en := range entries {
		queryMap[en.Index] += en.Value
	}
	imp := store.ImportanceOrder(queryMap)
	asc := append([]int(nil), imp...)
	for i := range asc {
		asc[i] = imp[i]
	}
	// Sort ascending by block ID for the unordered baseline.
	for i := 0; i < len(asc); i++ {
		for j := i + 1; j < len(asc); j++ {
			if asc[j] < asc[i] {
				asc[i], asc[j] = asc[j], asc[i]
			}
		}
	}
	stepsAsc := store.ProgressiveDot(queryMap, asc)

	res := E12Result{BlocksTotal: len(steps)}
	tb := &Table{
		Title:   "E12 — Progressive block I/O: importance-ordered vs unordered fetches",
		Columns: []string{"blocks fetched", "rel.err (importance)", "rel.err (unordered)"},
	}
	marks := []float64{0.1, 0.25, 0.5, 0.75, 1.0}
	for _, frac := range marks {
		k := int(frac * float64(len(steps)))
		if k < 1 {
			k = 1
		}
		ei := math.Abs(steps[k-1].Estimate-exact) / math.Abs(exact)
		eu := math.Abs(stepsAsc[k-1].Estimate-exact) / math.Abs(exact)
		res.ErrImportance = append(res.ErrImportance, ei)
		res.ErrUnordered = append(res.ErrUnordered, eu)
		tb.AddRow(k, ei, eu)
	}
	tb.Note("importance function on blocks = Σ|q·w| of resident coefficients (§3.2.1);")
	tb.Note("the most valuable I/Os run first, so the estimate converges in a fraction of the fetches")
	tb.Render(w)
	return res
}
