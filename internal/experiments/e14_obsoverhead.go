package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"sync"
	"time"

	"aims/internal/core"
	"aims/internal/server"
	"aims/internal/stream"
	"aims/internal/wire"
)

// E14Result reports obs_overhead: ingest throughput and query latency of
// the middle tier with the observability plane at its default 1/256 trace
// sampling versus tracing compiled out (nil tracer; the metric counters
// stay on in both modes, as they do in production).
type E14Result struct {
	Sessions int
	Frames   int // per session

	BaseFPS   float64 // tracer disabled
	TracedFPS float64 // default sampling
	// OverheadPct is (BaseFPS-TracedFPS)/BaseFPS×100; negative values are
	// run-to-run noise.
	OverheadPct float64

	BaseQueryUS   float64
	TracedQueryUS float64
}

// RunE14 measures the observability tax: the tracer's unsampled hot path
// costs one atomic add per batch (the sampling tick) and one atomic load
// per acquisition flush (the marker check), so default-rate tracing should
// be indistinguishable from tracing disabled. Each mode drives the same
// loopback load twice and keeps the faster run, interleaved to spread
// machine noise across both modes.
func RunE14(w io.Writer) E14Result {
	const (
		sessions = 4
		frames   = 32768
		batch    = 256
		reps     = 4
	)
	res := E14Result{Sessions: sessions, Frames: frames}

	res.BaseFPS, res.BaseQueryUS = 0, math.Inf(1)
	res.TracedFPS, res.TracedQueryUS = 0, math.Inf(1)
	for r := 0; r < reps; r++ {
		fps, qus := e14Run(-1, sessions, frames, batch)
		if fps > res.BaseFPS {
			res.BaseFPS = fps
		}
		res.BaseQueryUS = math.Min(res.BaseQueryUS, qus)
		fps, qus = e14Run(0, sessions, frames, batch) // 0 → default 1/256
		if fps > res.TracedFPS {
			res.TracedFPS = fps
		}
		res.TracedQueryUS = math.Min(res.TracedQueryUS, qus)
	}
	res.OverheadPct = (res.BaseFPS - res.TracedFPS) / res.BaseFPS * 100

	tb := &Table{
		Title:   "E14 obs_overhead: instrumentation tax at default trace sampling",
		Columns: []string{"tracer", "frames/s", "query µs"},
	}
	tb.AddRow("off", res.BaseFPS, res.BaseQueryUS)
	tb.AddRow("1/256", res.TracedFPS, res.TracedQueryUS)
	tb.Note("%d sessions × %d frames, batch=%d, best of %d runs each", sessions, frames, batch, reps)
	tb.Note("throughput overhead %.2f%% (target <2%%; negative = noise)", res.OverheadPct)
	tb.Render(w)
	return res
}

// e14Run drives one loopback load at the given trace sampling and returns
// aggregate frames/s and mean query latency in µs.
func e14Run(traceSample, sessions, frames, batch int) (fps, queryUS float64) {
	srv := server.New(server.Config{
		QueueFrames: 8192,
		TraceSample: traceSample,
		Store:       core.LiveStoreConfig{TimeBuckets: 256, ValueBins: 64},
	})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	// One pregenerated batch all sessions replay, so synthesis never
	// bottlenecks the measurement.
	channels := 8
	buf := make([]stream.Frame, batch)
	vals := make([]float64, channels)
	for c := range vals {
		vals[c] = float64(c)
	}
	mins := make([]float64, channels)
	maxs := make([]float64, channels)
	for c := range mins {
		mins[c], maxs[c] = -1, float64(channels)
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	var queryNS int64
	var queries int
	start := time.Now()
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			c, err := wire.Dial(addr.String())
			if err != nil {
				panic(err)
			}
			_, err = c.Hello(wire.Hello{
				Rate: 100, HorizonTicks: uint32(frames),
				Name: fmt.Sprintf("e14-%d", s), Mins: mins, Maxs: maxs,
			})
			if err != nil {
				panic(err)
			}
			local := make([]stream.Frame, batch)
			copy(local, buf)
			var localNS int64
			localQ := 0
			for tick := 0; tick < frames; tick += batch {
				for i := range local {
					local[i] = stream.Frame{T: float64(tick+i) / 100, Values: vals}
				}
				if err := c.SendBatch(local); err != nil {
					panic(err)
				}
				if (tick/batch)%16 == 15 {
					t0 := time.Now()
					if _, err := c.Query(wire.Query{Kind: wire.QueryAverage, Channel: 0, T0: 0, T1: float64(tick) / 100}); err != nil {
						panic(err)
					}
					localNS += time.Since(t0).Nanoseconds()
					localQ++
				}
			}
			if _, err := c.Close(); err != nil {
				panic(err)
			}
			mu.Lock()
			queryNS += localNS
			queries += localQ
			mu.Unlock()
		}(s)
	}
	wg.Wait()
	wall := time.Since(start)
	fps = float64(sessions*frames) / wall.Seconds()
	if queries > 0 {
		queryUS = float64(queryNS) / float64(queries) / 1e3
	}
	return fps, queryUS
}
