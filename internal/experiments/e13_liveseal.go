package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"aims/internal/core"
)

// E13Result reports live_seal: sealing cost during live ingest, cold
// rebuild vs incremental delta replay.
type E13Result struct {
	CubeCells int
	Frames    int
	ColdMS    float64
	Deltas    []int     // frames appended between seals
	IncrMS    []float64 // incremental seal wall time per delta size
	Speedup   []float64 // ColdMS / IncrMS
}

// RunE13 measures the live_seal experiment: a session's LiveStore answers
// approximate queries through a sealed ProPolyne engine, and §3.1.1's
// sparse point-mass transform lets the seal apply only the (channel,
// time-bucket, value-bin) delta since the last seal instead of
// retransforming the whole cube. We ingest a synthetic glove session into
// the default 256×64-per-channel cube, then time a from-scratch seal
// (incremental sealing disabled) against incremental seals at several
// delta sizes. The incremental cost scales with the delta, not the cube.
func RunE13(w io.Writer) E13Result {
	const (
		channels = 4
		frames   = 8192
		rate     = 100.0
	)
	rng := rand.New(rand.NewSource(77))
	mins := make([]float64, channels)
	maxs := make([]float64, channels)
	for c := range mins {
		mins[c], maxs[c] = -10, 10
	}
	// Horizon leaves room past the initial fill so delta appends land in
	// fresh time buckets (the live edge) instead of clamping into the last.
	cfg := core.LiveStoreConfig{Rate: rate, HorizonTicks: 4 * frames}
	frame := func() []float64 {
		fr := make([]float64, channels)
		for c := range fr {
			fr[c] = rng.Float64()*20 - 10
		}
		return fr
	}
	fill := func(ls *core.LiveStore, n, fromTick int) {
		for i := 0; i < n; i++ {
			if err := ls.AppendFrame(fromTick+i, frame()); err != nil {
				panic(err)
			}
		}
	}
	// timeSeal appends delta frames and seals, repeating until enough wall
	// time accumulates for a stable per-seal figure.
	timeSeal := func(ls *core.LiveStore, delta int, tick *int) float64 {
		reps := 0
		var total time.Duration
		for total < 80*time.Millisecond || reps < 3 {
			fill(ls, delta, *tick)
			*tick += delta
			t0 := time.Now()
			if _, err := ls.Seal(); err != nil {
				panic(err)
			}
			total += time.Since(t0)
			reps++
		}
		return float64(total.Microseconds()) / 1000 / float64(reps)
	}

	var res E13Result
	res.Frames = frames
	res.CubeCells = channels * 256 * 64

	// Cold baseline: incremental sealing disabled, every seal rebuilds.
	coldCfg := cfg
	coldCfg.SealDeltaThreshold = -1
	cold, err := core.NewLiveStore(mins, maxs, coldCfg)
	if err != nil {
		panic(err)
	}
	tick := 0
	fill(cold, frames, tick)
	tick = frames
	res.ColdMS = timeSeal(cold, 1, &tick)

	tb := &Table{
		Title: fmt.Sprintf("E13 — live_seal: incremental seal vs rebuild (%d-channel 256×64 cube, %d frames)",
			channels, frames),
		Columns: []string{"delta frames", "delta frac", "seal (ms)", "vs cold rebuild"},
	}
	tb.AddRow(frames, "cold", res.ColdMS, "1.0×")

	inc, err := core.NewLiveStore(mins, maxs, cfg)
	if err != nil {
		panic(err)
	}
	tick = 0
	fill(inc, frames, tick)
	tick = frames
	if _, err := inc.Seal(); err != nil { // first seal: full build, starts tracking
		panic(err)
	}
	for _, delta := range []int{16, 82, 512} { // 0.2 %, 1 %, 6.25 % of the session
		ms := timeSeal(inc, delta, &tick)
		res.Deltas = append(res.Deltas, delta)
		res.IncrMS = append(res.IncrMS, ms)
		speed := res.ColdMS / ms
		res.Speedup = append(res.Speedup, speed)
		tb.AddRow(delta, fmt.Sprintf("%.2f%%", 100*float64(delta)/frames), ms, fmt.Sprintf("%.1f×", speed))
	}
	tb.Note("cold = SealDeltaThreshold<0 (every seal copies the cube and reruns the multi-pass")
	tb.Note("wavelet transform); incremental seals replay the grouped delta log through the")
	tb.Note("engine's batched sparse append, so post-append approximate queries during live")
	tb.Note("ingest cost O(delta since last seal), not O(cube)")
	tb.Render(w)
	return res
}
