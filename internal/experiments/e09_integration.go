package experiments

import (
	"io"
	"math"
	"math/rand"
	"time"

	"aims/internal/compress"
	"aims/internal/propolyne"
	"aims/internal/svdstream"
	"aims/internal/synth"
	"aims/internal/vec"
)

// E9Result verifies the §3.4.1 port of online pattern recognition onto
// ProPolyne.
type E9Result struct {
	SignatureSimilarity float64 // 1.0 = identical eigenstructure
	MaxMomentError      float64
	CoeffsTouched       int
}

// RunE9 demonstrates Shao's observation as used by the paper: every entry
// of the second-moment matrix behind the weighted-sum SVD is a SUM query
// of a degree-2 polynomial, so the entire similarity computation can run
// in the wavelet-transformed domain. We quantise a motion window onto the
// cube grid, compute the moment matrix (a) directly and (b) through
// ProPolyne range-sums over per-pair frequency cubes, and compare the
// resulting SVD signatures.
func RunE9(w io.Writer) E9Result {
	const sensorsUsed = 5
	const levels = 64
	rng := rand.New(rand.NewSource(91))
	sign := synth.Vocabulary(3, 92)[1]
	frames := sign.Render(1.2, 0.3, rng)

	// Quantise the five channels used.
	quant := make([]compress.Quantizer, sensorsUsed)
	cols := make([][]float64, sensorsUsed)
	for c := 0; c < sensorsUsed; c++ {
		col := make([]float64, len(frames))
		for i := range frames {
			col[i] = frames[i][c]
		}
		cols[c] = col
		quant[c] = compress.QuantizerFor(col, 6) // 64 levels
	}
	qframes := make([][]float64, len(frames))
	for i := range frames {
		fr := make([]float64, sensorsUsed)
		for c := 0; c < sensorsUsed; c++ {
			fr[c] = float64(quant[c].Quantize(cols[c][i]))
		}
		qframes[i] = fr
	}

	// Direct second-moment matrix on the quantised window.
	direct := svdstream.MomentMatrix(qframes)

	// ProPolyne path: one 2-D frequency cube per sensor pair; the moment
	// entry is the SUM(x·y) range-sum over the whole domain.
	n := float64(len(qframes))
	viaPro := make([][]float64, sensorsUsed)
	for i := range viaPro {
		viaPro[i] = make([]float64, sensorsUsed)
	}
	var coeffs int
	for i := 0; i < sensorsUsed; i++ {
		for j := i; j < sensorsUsed; j++ {
			cube := make([]float64, levels*levels)
			for _, fr := range qframes {
				cube[int(fr[i])*levels+int(fr[j])]++
			}
			eng, err := propolyne.New(cube, []int{levels, levels}, 2)
			if err != nil {
				panic(err)
			}
			var v float64
			var st propolyne.Stats
			if i == j {
				v, st, err = eng.Exact(propolyne.Query{
					Lo:    []int{0, 0},
					Hi:    []int{levels - 1, levels - 1},
					Polys: []vec.Poly{{0, 0, 1}, nil},
				})
			} else {
				v, st, err = eng.Exact(propolyne.Query{
					Lo:    []int{0, 0},
					Hi:    []int{levels - 1, levels - 1},
					Polys: []vec.Poly{{0, 1}, {0, 1}},
				})
			}
			if err != nil {
				panic(err)
			}
			coeffs += st.QueryCoeffs
			viaPro[i][j] = v
			viaPro[j][i] = v
		}
	}
	_ = n

	var maxErr float64
	for i := range direct {
		for j := range direct {
			if e := math.Abs(direct[i][j] - viaPro[i][j]); e > maxErr {
				maxErr = e
			}
		}
	}
	sigDirect := svdstream.SignatureFromMoments(direct)
	sigPro := svdstream.SignatureFromMoments(viaPro)
	sim := svdstream.Similarity(sigDirect, sigPro)

	res := E9Result{SignatureSimilarity: sim, MaxMomentError: maxErr, CoeffsTouched: coeffs}
	tb := &Table{
		Title:   "E9 — SVD similarity computed from ProPolyne range-sums (§3.4.1 port)",
		Columns: []string{"quantity", "value"},
	}
	tb.AddRow("window ticks", len(qframes))
	tb.AddRow("moment entries via ProPolyne", sensorsUsed*(sensorsUsed+1)/2)
	tb.AddRow("wavelet coefficients touched", coeffs)
	tb.AddRow("max |moment error|", maxErr)
	tb.AddRow("signature similarity (direct vs ProPolyne)", sim)
	tb.Note("second-order statistics reduce to SUM queries of degree-2 polynomials (Shao),")
	tb.Note("so the weighted-sum SVD measure runs entirely in the transformed domain")
	tb.Render(w)
	return res
}

// E10Result reports incremental-SVD savings.
type E10Result struct {
	WindowSizes     []int
	FullRecompute   []time.Duration
	IncrementalTime []time.Duration
	Speedup         []float64
}

// RunE10 reproduces the §3.4.1 incremental-SVD claim: maintaining the
// sliding-window signature via rank-1 moment updates and warm-started
// Jacobi sweeps costs a fraction of recomputing the SVD from scratch at
// every step.
func RunE10(w io.Writer) E10Result {
	rng := rand.New(rand.NewSource(101))
	const dims = 28
	const steps = 200
	frames := make([][]float64, steps+1024)
	for i := range frames {
		fr := make([]float64, dims)
		for d := range fr {
			fr[d] = math.Sin(float64(i)/20+float64(d)) + 0.1*rng.NormFloat64()
		}
		frames[i] = fr
	}

	var res E10Result
	tb := &Table{
		Title:   "E10 — Incremental vs full SVD per stream step (28 sensors, 200 steps)",
		Columns: []string{"window", "full recompute", "incremental", "speedup"},
	}
	for _, window := range []int{64, 128, 256, 512, 1024} {
		// Full recompute: rebuild the matrix and its SVD at each step.
		t0 := time.Now()
		for s := 0; s < steps; s++ {
			m := vec.MatrixFromRows(frames[s : s+window])
			_ = svdstream.SignatureOf(m)
		}
		full := time.Since(t0)

		// Incremental: rank-1 updates + warm-started eigensolver.
		inc := svdstream.NewIncremental(dims, window)
		for i := 0; i < window; i++ {
			inc.Push(frames[i])
		}
		t0 = time.Now()
		for s := 0; s < steps; s++ {
			inc.Push(frames[window+s])
			_ = inc.Signature()
		}
		incr := time.Since(t0)

		res.WindowSizes = append(res.WindowSizes, window)
		res.FullRecompute = append(res.FullRecompute, full)
		res.IncrementalTime = append(res.IncrementalTime, incr)
		res.Speedup = append(res.Speedup, float64(full)/float64(incr))
		tb.AddRow(window, full.Round(time.Microsecond).String(),
			incr.Round(time.Microsecond).String(), float64(full)/float64(incr))
	}
	tb.Note("incremental cost is window-size independent (rank-1 gram updates + warm Jacobi)")
	tb.Render(w)
	return res
}
