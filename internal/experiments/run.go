package experiments

import "io"

// Runner is one named experiment.
type Runner struct {
	ID, Claim string
	Run       func(w io.Writer)
}

// All lists every experiment in DESIGN.md order.
func All() []Runner {
	return []Runner{
		{"T1", "CyberGlove sensor registry (paper Table 1)", func(w io.Writer) { RunT1(w) }},
		{"E1", "adaptive sampling needs far less bandwidth than fixed/grouped/zip; ADPCM adds little", func(w io.Writer) { RunE1(w) }},
		{"E2", "tiling allocation approaches the 1+lgB utilisation bound", func(w io.Writer) { RunE2(w) }},
		{"E3", "query approximation accurate early and data-independent; data approximation varies wildly", func(w io.Writer) { RunE3(w) }},
		{"E4", "exact polynomial range-sums at polylog cost", func(w io.Writer) { RunE4(w) }},
		{"E5", "hybrid basis choice dominates pure relational and pure ProPolyne", func(w io.Writer) { RunE5(w) }},
		{"E6", "best-basis selection adapts the transform per dimension", func(w io.Writer) { RunE6(w) }},
		{"E7", "weighted-sum SVD recognises and isolates variable-length motions in-stream", func(w io.Writer) { RunE7(w) }},
		{"E8", "SVM on tracker motion speed separates ADHD vs control at ≈86%", func(w io.Writer) { RunE8(w) }},
		{"E9", "SVD similarity computable from ProPolyne second-order range-sums", func(w io.Writer) { RunE9(w) }},
		{"E10", "incremental SVD beats per-step recomputation", func(w io.Writer) { RunE10(w) }},
		{"E11", "double-buffered acquisition sustains the device clock", func(w io.Writer) { RunE11(w) }},
		{"E12", "importance-ordered block fetches converge in a fraction of the I/Os", func(w io.Writer) { RunE12(w) }},
		{"E13", "live_seal: incremental seal costs O(delta since last seal), not O(cube)", func(w io.Writer) { RunE13(w) }},
		{"E14", "obs_overhead: default-rate tracing costs <2% ingest throughput", func(w io.Writer) { RunE14(w) }},
		{"E15", "journal_overhead: interval-fsync WAL costs <10% ingest; recovery is snapshot + O(tail) replay", func(w io.Writer) { RunE15(w) }},
		{"E16", "fleet_scale: cross-session fleet queries grow sub-linearly in session count", func(w io.Writer) { RunE16(w) }},
		{"E17", "query_plan: cached compiled plans answer repeated queries ≥5× faster than cold compiles", func(w io.Writer) { RunE17(w) }},
		{"E18", "trace_overhead: always-on slow-query log costs <2% query throughput", func(w io.Writer) { RunE18(w) }},
		{"E19", "chaos: exactly-once ingest under injected faults; recovery p99 < 2× max backoff", func(w io.Writer) { RunE19(w) }},
		{"E20", "transport: WebSocket framing adds <10% bytes over raw TCP; stored result transport-invariant", func(w io.Writer) { RunE20(w) }},
		{"A1", "ablation: GROUP BY shares I/O across buckets; fetch-ordering objective trade", func(w io.Writer) { RunA1(w) }},
		{"A2", "ablation: random-projection SVD similarity accuracy/cost trade", func(w io.Writer) { RunA2(w) }},
		{"A3", "ablation: tiling locality becomes LRU buffer-pool hit rate", func(w io.Writer) { RunA3(w) }},
		{"A4", "ablation: per-subband refinement tightens the progressive error bound", func(w io.Writer) { RunA4(w) }},
		{"A5", "ablation: concurrent query throughput under a live appender", func(w io.Writer) { RunA5(w) }},
	}
}
