package experiments

import (
	"context"
	"io"
	"net"
	"sync/atomic"
	"time"

	"aims/internal/core"
	"aims/internal/server"
	"aims/internal/stream"
	"aims/internal/transport"
	"aims/internal/transport/ws"
	"aims/internal/wire"
)

// E20Row is one transport's measurement of the identical ingest+query
// workload: throughput plus the exact raw-socket byte counts underneath
// any transport framing.
type E20Row struct {
	Transport string
	FPS       float64 // end-to-end ingest throughput, frames/s
	BytesOut  uint64  // raw TCP bytes, client→server (handshake included)
	BytesIn   uint64  // raw TCP bytes, server→client
}

// E20Result reports the cost of the WebSocket transport relative to raw
// TCP for the same wire-protocol conversation. The byte counts are
// deterministic — a counting conn sits between the real socket and the
// WebSocket framing, so the overhead is measured, not modelled — which
// makes OverheadPct the headline number; FPS is loopback-noisy and
// reported for orientation only.
type E20Result struct {
	Frames   int // per run
	Batch    int
	Rows     []E20Row
	// OverheadPct is the ws run's client→server byte inflation over the
	// tcp run, in percent: WebSocket frame headers, client masking keys,
	// and the one-time upgrade handshake.
	OverheadPct float64
	// Bounded is true when OverheadPct < 10 — browser-resident devices pay
	// under a tenth extra for the transport they can actually open.
	Bounded bool
	// Exact is true when both runs stored exactly Frames frames: the
	// transport must never change what the store holds.
	Exact bool
}

// countingConn counts raw bytes through an underlying conn. It sits below
// the WebSocket layer, so for the ws run it sees wire framing plus
// WebSocket framing — exactly what crosses the network.
type countingConn struct {
	net.Conn
	in, out atomic.Uint64
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.in.Add(uint64(n))
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.out.Add(uint64(n))
	return n, err
}

// RunE20 stands up one server listening on TCP and WebSocket side by side
// and streams the identical batch workload over each, counting the raw
// socket bytes under the transport. The claim under test: the stdlib
// WebSocket transport adds <10% byte overhead over raw TCP wire framing
// (one WS header + mask per wire message, amortised across kilobyte-scale
// batches), and the stored result is transport-invariant.
func RunE20(w io.Writer) E20Result {
	const (
		frames   = 16384
		batch    = 128
		channels = 2
		tickRate = 1000.0
	)
	srv := server.New(server.Config{
		QueueFrames:  8192,
		Heartbeat:    time.Second,
		WriteTimeout: 2 * time.Second,
		TraceSample:  -1,
		Store:        core.LiveStoreConfig{TimeBuckets: 256, ValueBins: 64},
	})
	tcpAddr, err := srv.Start("tcp://127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	wsAddr, err := srv.Start("ws://127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	res := E20Result{Frames: frames, Batch: batch, Exact: true}
	for _, addr := range []string{tcpAddr.String(), wsAddr.String()} {
		res.Rows = append(res.Rows, e20Run(addr, frames, batch, channels, tickRate, &res.Exact))
	}
	tcpOut, wsOut := res.Rows[0].BytesOut, res.Rows[1].BytesOut
	res.OverheadPct = 100 * (float64(wsOut) - float64(tcpOut)) / float64(tcpOut)
	res.Bounded = res.OverheadPct < 10

	tb := &Table{
		Title:   "E20 transport: identical ingest+query over raw TCP vs WebSocket",
		Columns: []string{"transport", "frames/s", "c→s bytes", "s→c bytes"},
	}
	for _, r := range res.Rows {
		tb.AddRow(r.Transport, r.FPS, r.BytesOut, r.BytesIn)
	}
	tb.Note("%d frames × %d channels in batches of %d, counted on the raw socket", frames, channels, batch)
	tb.Note("ws byte overhead (c→s, handshake included) = %.2f%%; <10%% bound = %v", res.OverheadPct, res.Bounded)
	tb.Note("both transports stored exactly %d frames = %v", frames, res.Exact)
	tb.Render(w)
	return res
}

// e20Run drives the fixed workload over one endpoint with a counting conn
// interposed on the raw socket, below any WebSocket framing. exact is
// cleared if the stored count drifts from the frames sent.
func e20Run(addr string, frames, batch, channels int, tickRate float64, exact *bool) E20Row {
	ep, err := transport.ParseEndpoint(addr)
	if err != nil {
		panic(err)
	}
	raw, err := net.Dial("tcp", ep.Host)
	if err != nil {
		panic(err)
	}
	cc := &countingConn{Conn: raw}
	var conn net.Conn = cc
	if ep.Scheme == "ws" {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		conn, err = ws.Client(ctx, cc, ep.Host, ep.Path)
		cancel()
		if err != nil {
			panic(err)
		}
	}
	c := wire.NewClient(conn)
	c.Timeout = 10 * time.Second

	mins := make([]float64, channels)
	maxs := make([]float64, channels)
	vals := make([]float64, channels)
	for i := range vals {
		mins[i], maxs[i], vals[i] = -1, 2, 0.5
	}
	if _, err := c.Hello(wire.Hello{
		Rate: tickRate, HorizonTicks: uint32(frames),
		Name: "e20-" + ep.Scheme, Class: "bench",
		Mins: mins, Maxs: maxs,
	}); err != nil {
		panic(err)
	}

	local := make([]stream.Frame, batch)
	start := time.Now()
	for tick := 0; tick < frames; tick += batch {
		for i := range local {
			local[i] = stream.Frame{T: float64(tick+i) / tickRate, Values: vals}
		}
		if err := c.SendBatch(local); err != nil {
			panic(err)
		}
	}
	if _, err := c.Flush(); err != nil {
		panic(err)
	}
	wall := time.Since(start)

	qr, err := c.Query(wire.Query{
		Kind: wire.QueryCount, Channel: 0,
		T0: 0, T1: float64(frames)/tickRate + 1,
	})
	if err != nil {
		panic(err)
	}
	if int(qr.Value+0.5) != frames {
		*exact = false
	}
	if _, err := c.Close(); err != nil {
		panic(err)
	}
	return E20Row{
		Transport: ep.Scheme,
		FPS:       float64(frames) / wall.Seconds(),
		BytesOut:  cc.out.Load(),
		BytesIn:   cc.in.Load(),
	}
}
