package experiments

import (
	"io"
	"math/rand"

	"aims/internal/svdstream"
	"aims/internal/synth"
	"aims/internal/vec"
)

// E7Result reports online-recognition quality.
type E7Result struct {
	// IsolatedAccuracy[measure] over ground-truth-segmented signs.
	IsolatedAccuracy map[string]float64
	// Streaming isolation/recognition over the continuous stream.
	StreamPrecision, StreamRecall, StreamAccuracy float64
	MeanDecisionLatencyTicks                      float64
}

func buildTemplates(vocab []synth.Sign, seed int64) map[string]svdstream.Signature {
	rng := rand.New(rand.NewSource(seed))
	out := make(map[string]svdstream.Signature, len(vocab))
	for _, s := range vocab {
		var agg [][]float64
		for k := 0; k < 3; k++ {
			m := svdstream.MomentMatrix(s.Render(0.8+0.2*float64(k), 0.1, rng))
			if agg == nil {
				agg = m
			} else {
				for i := range m {
					for j := range m[i] {
						agg[i][j] += m[i][j]
					}
				}
			}
		}
		out[s.Name] = svdstream.SignatureFromMoments(agg)
	}
	return out
}

// RunE7 reproduces the §3.4 online-analysis study: weighted-sum SVD
// similarity recognises isolated variable-length signs (compared against
// the Euclidean/DFT/DWT measures of the related work) and, combined with
// the information-accumulation heuristic, simultaneously isolates and
// recognises signs in a continuous stream.
func RunE7(w io.Writer) E7Result {
	const vocabSize = 12
	vocab := synth.Vocabulary(vocabSize, 71)
	rng := rand.New(rand.NewSource(72))

	// --- Isolated recognition: measure comparison on a *confusable*
	// vocabulary (shared home posture, subtle per-sign motion) ---
	hard := synth.ConfusableVocabulary(vocabSize, 0.08, 75)
	refs := make(map[string][][]float64, vocabSize)
	for _, s := range hard {
		refs[s.Name] = s.Render(1, 0, rng)
	}
	measures := []struct {
		name string
		dist func(a, b [][]float64) float64
	}{
		{"weighted-sum SVD", svdstream.SVDDistance(6)},
		{"euclidean (truncate)", svdstream.EuclideanDistance},
		{"DFT features (k=8)", func(a, b [][]float64) float64 { return svdstream.DFTDistance(a, b, 8) }},
		{"DWT features (k=8)", func(a, b [][]float64) float64 { return svdstream.DWTDistance(a, b, 8) }},
		{"DTW (band=20)", func(a, b [][]float64) float64 { return svdstream.DTWDistance(a, b, 20) }},
	}
	res := E7Result{IsolatedAccuracy: map[string]float64{}}
	tb := &Table{
		Title:   "E7a — Isolated recognition, confusable 12-sign vocabulary (duration ±30%), noise sweep",
		Columns: []string{"similarity measure", "σ=1", "σ=4", "σ=8", "σ=16"},
	}
	const trialsPerSign = 6
	noises := []float64{1, 4, 8, 16}
	accs := make(map[string][]float64)
	for _, noise := range noises {
		segments := make([]struct {
			frames [][]float64
			name   string
		}, 0, vocabSize*trialsPerSign)
		for _, s := range hard {
			for k := 0; k < trialsPerSign; k++ {
				dur := 0.7 + 0.6*rng.Float64()
				segments = append(segments, struct {
					frames [][]float64
					name   string
				}{s.Render(dur, noise, rng), s.Name})
			}
		}
		for _, m := range measures {
			correct := 0
			for _, seg := range segments {
				if svdstream.NearestTemplate(seg.frames, refs, m.dist) == seg.name {
					correct++
				}
			}
			accs[m.name] = append(accs[m.name], float64(correct)/float64(len(segments)))
		}
	}
	for _, m := range measures {
		row := []interface{}{m.name}
		for _, a := range accs[m.name] {
			row = append(row, a)
		}
		tb.AddRow(row...)
		res.IsolatedAccuracy[m.name] = accs[m.name][0]
	}
	tb.Note("paper: SVD rotates axes optimally for the dataset; Euclidean suffers from the")
	tb.Note("identical-length requirement and the dimensionality curse (§3.4.2).")
	tb.Note("transform baselines benefit from exact segment boundaries here (they resample the")
	tb.Note("segment to a fixed length) — a luxury that does not exist over a continuous stream")
	tb.Render(w)

	// --- Isolated recognition with imprecise boundaries (the streaming
	// reality): segments carry random hold-posture slop at both ends.
	tbS := &Table{
		Title:   "E7a2 — Same task, noise σ=2, with boundary slop (extra held-posture ticks per end)",
		Columns: []string{"similarity measure", "slop=0", "slop=20", "slop=40", "slop=80"},
	}
	slops := []int{0, 20, 40, 80}
	accS := make(map[string][]float64)
	for _, slop := range slops {
		segments := make([]struct {
			frames [][]float64
			name   string
		}, 0, vocabSize*trialsPerSign)
		for _, s := range hard {
			for k := 0; k < trialsPerSign; k++ {
				dur := 0.7 + 0.6*rng.Float64()
				body := s.Render(dur, 2, rng)
				pre := rng.Intn(slop + 1)
				post := rng.Intn(slop + 1)
				padded := make([][]float64, 0, len(body)+pre+post)
				for p := 0; p < pre; p++ {
					padded = append(padded, jitterFrame(body[0], 2, rng))
				}
				padded = append(padded, body...)
				for p := 0; p < post; p++ {
					padded = append(padded, jitterFrame(body[len(body)-1], 2, rng))
				}
				segments = append(segments, struct {
					frames [][]float64
					name   string
				}{padded, s.Name})
			}
		}
		for _, m := range measures {
			correct := 0
			for _, seg := range segments {
				if svdstream.NearestTemplate(seg.frames, refs, m.dist) == seg.name {
					correct++
				}
			}
			accS[m.name] = append(accS[m.name], float64(correct)/float64(len(segments)))
		}
	}
	for _, m := range measures {
		row := []interface{}{m.name}
		for _, a := range accS[m.name] {
			row = append(row, a)
		}
		tbS.AddRow(row...)
	}
	// --- Measure-effectiveness metric (§3.4.1's closing proposal):
	// pairwise ROC-AUC of each measure over a labelled segment set.
	tbE := &Table{
		Title:   "E7c — Similarity-measure effectiveness (pairwise AUC, confusable vocabulary, σ=3)",
		Columns: []string{"similarity measure", "AUC"},
	}
	var labeled []svdstream.LabeledSegment
	for _, s := range hard {
		for k := 0; k < 4; k++ {
			labeled = append(labeled, svdstream.LabeledSegment{
				Name:   s.Name,
				Frames: s.Render(0.75+0.15*float64(k), 3, rng),
			})
		}
	}
	for _, m := range measures {
		tbE.AddRow(m.name, svdstream.Effectiveness(labeled, m.dist))
	}
	tbE.Note("AUC = P(same-sign pair scored closer than cross-sign pair); 0.5 = chance —")
	tbE.Note("the paper's proposed metric for comparing similarity measures, realised")
	tbE.Render(w)

	tbS.Note("measured deviation from the paper's expectation: on this synthetic family the")
	tbS.Note("per-channel DWT features stay strongest even with boundary slop — see EXPERIMENTS.md.")
	tbS.Note("The SVD measure's reproduced advantages are the streaming setting (E7b: no")
	tbS.Note("segmentation prerequisite, incremental updates, early decisions) and the §3.4.1")
	tbS.Note("wavelet-domain portability (E9), not isolated matching on smooth synthetic signs")
	tbS.Render(w)

	// --- Streaming isolation + recognition ---
	templates := buildTemplates(vocab, 73)
	frames, segs := synth.SignStream(vocab, synth.StreamOptions{
		Count: 40, Noise: 0.4, DurJitter: 0.3, GapTicks: 50, Seed: 74,
	})
	r := svdstream.NewRecognizer(templates, svdstream.RecognizerConfig{
		Dims:          synth.SignDims,
		RestThreshold: svdstream.CalibrateRest(frames[:20]),
	})
	var dets []svdstream.Detection
	for tick, fr := range frames {
		if d := r.Feed(tick, fr); d != nil {
			dets = append(dets, *d)
		}
	}
	if d := r.Flush(len(frames)); d != nil {
		dets = append(dets, *d)
	}

	matched, correct := 0, 0
	var latency []float64
	used := make([]bool, len(dets))
	for _, seg := range segs {
		for i, d := range dets {
			if used[i] {
				continue
			}
			overlap := minI(seg.End, d.End) - maxI(seg.Start, d.Start)
			if overlap > (seg.End-seg.Start)/2 {
				used[i] = true
				matched++
				if d.Name == seg.Name {
					correct++
				}
				if d.Early {
					latency = append(latency, float64(d.DecisionTick-d.Start))
				}
				break
			}
		}
	}
	res.StreamRecall = float64(matched) / float64(len(segs))
	if len(dets) > 0 {
		res.StreamPrecision = float64(matched) / float64(len(dets))
	}
	if matched > 0 {
		res.StreamAccuracy = float64(correct) / float64(matched)
	}
	res.MeanDecisionLatencyTicks = vec.Mean(latency)

	tb2 := &Table{
		Title:   "E7b — Streaming isolation + recognition (40 signs in a continuous stream)",
		Columns: []string{"metric", "value"},
	}
	tb2.AddRow("true segments", len(segs))
	tb2.AddRow("detections", len(dets))
	tb2.AddRow("isolation recall", res.StreamRecall)
	tb2.AddRow("isolation precision", res.StreamPrecision)
	tb2.AddRow("recognition accuracy (matched)", res.StreamAccuracy)
	tb2.AddRow("mean early-decision latency (ticks)", res.MeanDecisionLatencyTicks)
	tb2.Note("accumulated similarity commits to a sign before the motion completes (information heuristic)")
	tb2.Render(w)
	return res
}

// jitterFrame returns a noisy copy of a frame — held posture with sensor
// noise, used to pad segment boundaries.
func jitterFrame(f []float64, noise float64, rng *rand.Rand) []float64 {
	out := make([]float64, len(f))
	for i, v := range f {
		out[i] = v + noise*rng.NormFloat64()
	}
	return out
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
