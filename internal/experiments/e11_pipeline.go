package experiments

import (
	"io"
	"time"

	"aims/internal/sensors"
	"aims/internal/stream"
)

// E11Result reports acquisition-pipeline throughput.
type E11Result struct {
	Rates      []float64
	FramesPerS []float64
	Dropped    []int
}

// RunE11 measures the double-buffered acquisition pipeline of §3.1: the
// paper's two-thread recording design (answer the device interrupt, store
// asynchronously) must sustain the device clock with idle CPU headroom.
// We push synthetic 28-channel frames through the pipeline at increasing
// rates with a storage cost per batch and report sustained throughput and
// drops (realtime mode).
func RunE11(w io.Writer) E11Result {
	var res E11Result
	tb := &Table{
		Title:   "E11 — Double-buffered acquisition pipeline (28 channels, unthrottled producer)",
		Columns: []string{"frames offered", "mode", "stored", "dropped", "throughput (frames/s)"},
	}
	dev := sensors.NewDevice(sensors.GloveSpecs(), sensors.DefaultClock, 1, 111)
	for _, n := range []int{10000, 50000} {
		for _, mode := range []string{"lossless", "realtime"} {
			src := &stream.FuncSource{Rate: sensors.DefaultClock, N: n, Fn: dev.Frame}
			sink := 0.0
			store := func(batch []stream.Frame) {
				// Simulated storage cost: checksum the batch.
				for _, f := range batch {
					for _, v := range f.Values {
						sink += v
					}
				}
			}
			t0 := time.Now()
			var stats stream.AcquireStats
			if mode == "lossless" {
				stats = stream.Acquire(src, 256, store)
			} else {
				stats = stream.AcquireRealtime(src, 256, store)
			}
			el := time.Since(t0)
			fps := float64(stats.Stored) / el.Seconds()
			res.Rates = append(res.Rates, float64(n))
			res.FramesPerS = append(res.FramesPerS, fps)
			res.Dropped = append(res.Dropped, stats.Dropped)
			tb.AddRow(n, mode, stats.Stored, stats.Dropped, fps)
		}
	}
	tb.Note("lossless mode applies backpressure; realtime mode models a device that cannot wait and")
	tb.Note("shows drop accounting under deliberate overload (the producer runs unthrottled here).")
	tb.Note("The 100 Hz CyberGlove clock is three orders of magnitude below lossless capacity,")
	tb.Note("matching the paper's observation that the CPU was never saturated while recording")
	tb.Render(w)
	return res
}
