package experiments

import (
	"io"

	"aims/internal/compress"
	"aims/internal/sampling"
	"aims/internal/sensors"
	"aims/internal/wavelet"
)

// E1Result summarises the §3.1 acquisition comparison.
type E1Result struct {
	RawBytes               int
	PolicyBytes            map[string]int
	PolicyMSE              map[string]float64
	HuffmanBytes           int
	ADPCMBytes             int
	AdaptivePlusADPCMBytes int
}

// RunE1 reproduces the sampling-technique bandwidth comparison: Fixed,
// Modified Fixed, Grouped and Adaptive sampling versus raw capture,
// block Huffman compression ("Unix zip"), ADPCM quantisation, and the
// adaptive+ADPCM combination. Paper claims: adaptive ≪ others; adaptive
// beats block compression; ADPCM on top of adaptive adds only marginal
// gains.
func RunE1(w io.Writer) E1Result {
	const ticks = 4096
	dev := sensors.NewDevice(sensors.GloveSpecs(), sensors.DefaultClock, 1, 41)
	rec := dev.Record(ticks)
	clean := sensors.NewDevice(sensors.GloveSpecs(), sensors.DefaultClock, 1, 41).RecordClean(ticks)

	cfg := sampling.Config{DeviceRate: sensors.DefaultClock}
	results := sampling.All(rec, cfg)

	res := E1Result{
		RawBytes:    len(rec) * ticks * sensors.BytesPerSample,
		PolicyBytes: map[string]int{},
		PolicyMSE:   map[string]float64{},
	}

	tb := &Table{
		Title:   "E1 — Acquisition bandwidth (28-sensor glove, 100 Hz, 41 s)",
		Columns: []string{"technique", "bytes (f64)", "vs raw", "bytes @8-bit", "reconstruction MSE"},
	}
	tb.AddRow("raw capture", res.RawBytes, 1.0, res.RawBytes/8, 0.0)

	// Block compression baseline: quantise to 8 bits and Huffman-code each
	// channel at the full device rate.
	var huffBytes int
	for _, ch := range rec {
		q := compress.QuantizerFor(ch, 8)
		levels := q.QuantizeAll(ch)
		bytes := make([]byte, len(levels))
		for i, l := range levels {
			bytes[i] = byte(l)
		}
		huffBytes += compress.HuffmanSize(bytes)
	}
	res.HuffmanBytes = huffBytes

	// ADPCM at the full device rate.
	var adpcmBytes int
	for _, ch := range rec {
		adpcmBytes += len(compress.NewADPCM(ch).Encode(ch))
	}
	res.ADPCMBytes = adpcmBytes

	for _, r := range results {
		mse := r.MSE(clean, sensors.DefaultClock)
		res.PolicyBytes[r.Policy] = r.Bytes
		res.PolicyMSE[r.Policy] = mse
		tb.AddRow(r.Policy+" sampling", r.Bytes, float64(r.Bytes)/float64(res.RawBytes),
			r.BytesQuantized(8), mse)
	}
	tb.AddRow("huffman (block zip)", huffBytes, float64(huffBytes)/float64(res.RawBytes),
		huffBytes, "lossless+quant")
	tb.AddRow("adpcm @ device rate", adpcmBytes, float64(adpcmBytes)/float64(res.RawBytes),
		adpcmBytes, "≈quant noise")

	// Adaptive + ADPCM: code each adaptive segment's samples with ADPCM.
	adaptive := results[3]
	var comboBytes int
	for _, tr := range adaptive.Traces {
		for _, seg := range tr.Segments {
			comboBytes += len(compress.NewADPCM(seg.Values).Encode(seg.Values)) + 4
		}
	}
	res.AdaptivePlusADPCMBytes = comboBytes
	tb.AddRow("adaptive + adpcm", comboBytes, float64(comboBytes)/float64(res.RawBytes),
		comboBytes, "≈adaptive+quant")

	// The paper's own storage proposal: keep the traces AS thresholded
	// wavelets (99.9 % energy), queryable without inverse transformation.
	wcodec := compress.NewWaveletCodec(wavelet.D6, 0.999)
	var waveBytes int
	var waveMSE float64
	for c, ch := range rec {
		enc := wcodec.Encode(ch)
		waveBytes += len(enc)
		dec, err := wcodec.Decode(enc)
		if err != nil {
			panic(err)
		}
		for i := range dec {
			d := dec[i] - clean[c][i]
			waveMSE += d * d
		}
	}
	waveMSE /= float64(len(rec) * ticks)
	tb.AddRow("wavelet store (99.9% energy)", waveBytes,
		float64(waveBytes)/float64(res.RawBytes), waveBytes, waveMSE)
	tb.Note("paper: adaptive requires far less bandwidth than fixed/grouped and beats block compression;")
	tb.Note("combining ADPCM with adaptive sampling yields only marginal further savings.")
	tb.Note("The @8-bit column compares everything at matched sample precision: there adaptive")
	tb.Note("(≈34 kB) beats the full-rate Huffman block compressor (≈115 kB), as the paper claims")
	tb.Render(w)
	return res
}

// RunT1 prints the reproduced Table 1: the CyberGlove sensor registry plus
// the Polhemus channels that complete the 28-D rig.
func RunT1(w io.Writer) int {
	tb := &Table{
		Title:   "T1 — CyberGlove sensor registry (paper Table 1) + Polhemus tracker",
		Columns: []string{"sensor", "description", "group", "kind", "band limit (Hz)"},
	}
	for _, sp := range sensors.GloveSpecs() {
		tb.AddRow(sp.ID, sp.Name, sp.Group, string(sp.Kind), sp.MaxHz)
	}
	tb.Render(w)
	return len(sensors.GloveSpecs())
}
