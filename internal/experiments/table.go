// Package experiments implements the reproduction harness: one runner per
// experiment in DESIGN.md's per-experiment index (T1, E1–E13). Each runner
// regenerates the corresponding quantitative claim of the paper and prints
// a paper-style table; cmd/aims-bench and the repository-root benchmarks
// are thin wrappers around these runners.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple fixed-width results table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row; values are Sprint'ed.
func (t *Table) AddRow(values ...interface{}) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = trimFloat(x)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func trimFloat(x float64) string {
	switch {
	case x == 0:
		return "0"
	case x >= 1000 || x <= -1000:
		return fmt.Sprintf("%.0f", x)
	case x >= 10 || x <= -10:
		return fmt.Sprintf("%.2f", x)
	default:
		return fmt.Sprintf("%.4f", x)
	}
}

// Note appends a footnote line.
func (t *Table) Note(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
