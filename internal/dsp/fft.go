// Package dsp implements the signal-processing substrate AIMS acquisition
// relies on: FFT/DFT, autocorrelation, periodograms, and the Nyquist-based
// maximum-frequency estimation that drives the sampling-rate policies of
// §3.1 of the paper.
package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// IsPowerOfTwo reports whether n is a positive power of two.
func IsPowerOfTwo(n int) bool { return n > 0 && n&(n-1) == 0 }

// NextPowerOfTwo returns the smallest power of two ≥ n (and ≥ 1).
func NextPowerOfTwo(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << (bits.Len(uint(n - 1)))
}

// FFT computes the in-place radix-2 decimation-in-time fast Fourier
// transform of x. len(x) must be a power of two; it panics otherwise.
// The transform is unnormalised: IFFT(FFT(x)) == x.
func FFT(x []complex128) {
	n := len(x)
	if !IsPowerOfTwo(n) {
		panic(fmt.Sprintf("dsp: FFT length %d is not a power of two", n))
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.Len(uint(n-1)))
	if n == 1 {
		return
	}
	for i := 1; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Butterflies.
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		step := -2 * math.Pi / float64(size)
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				w := cmplx.Rect(1, step*float64(k))
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
			}
		}
	}
}

// IFFT computes the inverse FFT in place, including the 1/n normalisation.
// len(x) must be a power of two.
func IFFT(x []complex128) {
	n := len(x)
	for i := range x {
		x[i] = cmplx.Conj(x[i])
	}
	FFT(x)
	inv := complex(1/float64(n), 0)
	for i := range x {
		x[i] = cmplx.Conj(x[i]) * inv
	}
}

// FFTReal transforms a real signal, zero-padding to the next power of two,
// and returns the complex spectrum (length = padded size).
func FFTReal(x []float64) []complex128 {
	n := NextPowerOfTwo(len(x))
	c := make([]complex128, n)
	for i, v := range x {
		c[i] = complex(v, 0)
	}
	FFT(c)
	return c
}

// DFT computes the naive O(n²) discrete Fourier transform for arbitrary
// lengths. It exists for cross-checking the FFT in tests and for short
// non-power-of-two windows.
func DFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for t := 0; t < n; t++ {
			angle := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			s += x[t] * cmplx.Rect(1, angle)
		}
		out[k] = s
	}
	return out
}
