package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPowerOfTwoHelpers(t *testing.T) {
	if !IsPowerOfTwo(1) || !IsPowerOfTwo(64) || IsPowerOfTwo(0) || IsPowerOfTwo(24) || IsPowerOfTwo(-4) {
		t.Fatal("IsPowerOfTwo broken")
	}
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 17: 32, 64: 64}
	for in, want := range cases {
		if got := NextPowerOfTwo(in); got != want {
			t.Errorf("NextPowerOfTwo(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestFFTMatchesDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 4, 8, 32, 128} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		want := DFT(x)
		got := make([]complex128, n)
		copy(got, x)
		FFT(got)
		for k := range want {
			if cmplx.Abs(got[k]-want[k]) > 1e-9*float64(n) {
				t.Fatalf("n=%d bin %d: FFT %v vs DFT %v", n, k, got[k], want[k])
			}
		}
	}
}

func TestFFTInverseRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (1 + rng.Intn(9))
		x := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			orig[i] = x[i]
		}
		FFT(x)
		IFFT(x)
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-9*float64(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestFFTPanicsOnNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FFT(make([]complex128, 12))
}

func TestParsevalProperty(t *testing.T) {
	// Σ|x|² == (1/n)·Σ|X|² for the unnormalised transform.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (2 + rng.Intn(8))
		x := make([]complex128, n)
		var timeEnergy float64
		for i := range x {
			x[i] = complex(rng.NormFloat64(), 0)
			timeEnergy += real(x[i]) * real(x[i])
		}
		FFT(x)
		var freqEnergy float64
		for _, v := range x {
			freqEnergy += real(v)*real(v) + imag(v)*imag(v)
		}
		freqEnergy /= float64(n)
		return math.Abs(timeEnergy-freqEnergy) <= 1e-8*(1+timeEnergy)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func sine(n int, rate, freq, amp float64) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = amp * math.Sin(2*math.Pi*freq*float64(i)/rate)
	}
	return x
}

func TestMaxFrequencyFindsTone(t *testing.T) {
	const rate = 100.0
	x := sine(1024, rate, 5, 1)
	got := MaxFrequency(x, rate, 0.99)
	if math.Abs(got-5) > 1 {
		t.Fatalf("MaxFrequency = %v, want ≈5 Hz", got)
	}
}

func TestMaxFrequencyTwoTones(t *testing.T) {
	const rate = 200.0
	x := sine(2048, rate, 3, 1)
	hi := sine(2048, rate, 20, 0.5)
	for i := range x {
		x[i] += hi[i]
	}
	got := MaxFrequency(x, rate, 0.99)
	if got < 18 || got > 25 {
		t.Fatalf("MaxFrequency = %v, want ≈20 Hz (the higher tone)", got)
	}
	// With a loose confidence most energy is in the 3 Hz tone.
	low := MaxFrequency(x, rate, 0.5)
	if low > 6 {
		t.Fatalf("MaxFrequency(conf=0.5) = %v, want ≤6 Hz", low)
	}
}

func TestMaxFrequencyEdgeCases(t *testing.T) {
	if got := MaxFrequency(nil, 100, 0.99); got != 0 {
		t.Fatalf("empty = %v", got)
	}
	flat := make([]float64, 256)
	for i := range flat {
		flat[i] = 3.7 // pure DC
	}
	// Hann windowing smears a constant into the lowest bins; the estimate
	// must stay (near) zero so the Nyquist rate collapses for idle sensors.
	if got := MaxFrequency(flat, 100, 0.99); got > 1 {
		t.Fatalf("DC-only = %v, want ≤1 Hz", got)
	}
	// Invalid confidence falls back to default rather than crashing.
	x := sine(512, 100, 4, 1)
	if got := MaxFrequency(x, 100, -3); got <= 0 {
		t.Fatalf("invalid confidence = %v", got)
	}
}

func TestNyquistRate(t *testing.T) {
	if NyquistRate(25) != 50 {
		t.Fatal("NyquistRate broken")
	}
}

func TestAutocorrelation(t *testing.T) {
	x := sine(400, 100, 5, 1) // 20-sample period
	ac := Autocorrelation(x, 100)
	if math.Abs(ac[0]-1) > 1e-9 {
		t.Fatalf("ac[0] = %v, want 1", ac[0])
	}
	// Autocorrelation at one full period should be strongly positive.
	if ac[20] < 0.8 {
		t.Fatalf("ac[20] = %v, want ≥0.8", ac[20])
	}
	// At a half period, strongly negative.
	if ac[10] > -0.8 {
		t.Fatalf("ac[10] = %v, want ≤-0.8", ac[10])
	}
}

func TestAutocorrelationDegenerate(t *testing.T) {
	if got := Autocorrelation(nil, 5); got != nil {
		t.Fatalf("nil signal = %v", got)
	}
	flat := []float64{2, 2, 2, 2}
	ac := Autocorrelation(flat, 2)
	for _, v := range ac {
		if v != 0 {
			t.Fatalf("constant signal autocorrelation = %v, want zeros", ac)
		}
	}
}

func TestDominantPeriod(t *testing.T) {
	x := sine(600, 100, 5, 1) // period 20 samples
	got := DominantPeriod(x)
	if got < 18 || got > 22 {
		t.Fatalf("DominantPeriod = %d, want ≈20", got)
	}
	if DominantPeriod([]float64{1, 2}) != 0 {
		t.Fatal("short signal should report 0")
	}
}

func TestResampleReconstructsSlowSignal(t *testing.T) {
	const deviceRate = 100.0
	orig := sine(500, deviceRate, 2, 1) // well below Nyquist of any tested rate
	// Downsample to 20 Hz by taking every 5th sample.
	down := make([]float64, 0, 100)
	for i := 0; i < len(orig); i += 5 {
		down = append(down, orig[i])
	}
	rec := Resample(down, 20, deviceRate, len(orig))
	var mse float64
	for i := range orig {
		d := rec[i] - orig[i]
		mse += d * d
	}
	mse /= float64(len(orig))
	if mse > 0.01 {
		t.Fatalf("reconstruction MSE = %v, want < 0.01", mse)
	}
}

func TestResampleEdgeCases(t *testing.T) {
	out := Resample(nil, 10, 10, 4)
	if len(out) != 4 {
		t.Fatalf("len = %d", len(out))
	}
	out = Resample([]float64{1}, 10, 10, 3)
	for _, v := range out {
		if v != 1 {
			t.Fatalf("single-sample resample = %v", out)
		}
	}
}

func TestPeriodogramFrequencies(t *testing.T) {
	freqs, power := Periodogram(sine(256, 64, 8, 1), 64)
	if len(freqs) != len(power) {
		t.Fatal("length mismatch")
	}
	if freqs[0] != 0 {
		t.Fatalf("first freq = %v", freqs[0])
	}
	if math.Abs(freqs[len(freqs)-1]-32) > 1e-9 {
		t.Fatalf("last freq = %v, want Nyquist 32", freqs[len(freqs)-1])
	}
	// Peak bin should be at ≈8 Hz.
	best, bestF := 0.0, 0.0
	for i, p := range power {
		if p > best {
			best, bestF = p, freqs[i]
		}
	}
	if math.Abs(bestF-8) > 0.6 {
		t.Fatalf("peak at %v Hz, want ≈8", bestF)
	}
}
