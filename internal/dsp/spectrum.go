package dsp

import (
	"math"
	"math/cmplx"
)

// Periodogram returns the one-sided power spectral density estimate of a
// real signal sampled at sampleRate Hz. The returned frequencies run from 0
// to sampleRate/2 inclusive; power[i] is proportional to the signal energy
// at freqs[i]. The signal is Hann-windowed to limit leakage and zero-padded
// to a power of two.
func Periodogram(x []float64, sampleRate float64) (freqs, power []float64) {
	if len(x) == 0 {
		return nil, nil
	}
	windowed := make([]float64, len(x))
	n := len(x)
	for i, v := range x {
		w := 0.5 - 0.5*math.Cos(2*math.Pi*float64(i)/float64(n-1))
		if n == 1 {
			w = 1
		}
		windowed[i] = v * w
	}
	spec := FFTReal(windowed)
	m := len(spec)
	half := m/2 + 1
	freqs = make([]float64, half)
	power = make([]float64, half)
	for k := 0; k < half; k++ {
		freqs[k] = float64(k) * sampleRate / float64(m)
		power[k] = cmplx.Abs(spec[k]) * cmplx.Abs(spec[k])
	}
	return freqs, power
}

// Autocorrelation returns the biased sample autocorrelation of x for lags
// 0..maxLag, normalised so lag 0 equals 1 (unless the signal has zero
// variance, in which case all entries are 0). The paper lists
// autocorrelation among the techniques used to identify f_max.
func Autocorrelation(x []float64, maxLag int) []float64 {
	n := len(x)
	if maxLag >= n {
		maxLag = n - 1
	}
	if maxLag < 0 {
		return nil
	}
	mean := 0.0
	for _, v := range x {
		mean += v
	}
	if n > 0 {
		mean /= float64(n)
	}
	out := make([]float64, maxLag+1)
	var c0 float64
	for _, v := range x {
		d := v - mean
		c0 += d * d
	}
	if c0 == 0 {
		return out
	}
	for lag := 0; lag <= maxLag; lag++ {
		var s float64
		for t := 0; t+lag < n; t++ {
			s += (x[t] - mean) * (x[t+lag] - mean)
		}
		out[lag] = s / c0
	}
	return out
}

// MaxFrequency estimates the maximum significant frequency f_max in a real
// signal sampled at sampleRate Hz. confidence ∈ (0,1] is the fraction of
// total spectral energy that must lie at or below the returned frequency —
// the paper's "within a specified confidence threshold". A confidence of
// 0.99 returns the frequency below which 99 % of the energy lives.
//
// The DC bin is excluded from the energy budget: a constant offset carries
// no information about how fast the sensor moves.
func MaxFrequency(x []float64, sampleRate, confidence float64) float64 {
	freqs, power := Periodogram(x, sampleRate)
	if len(freqs) == 0 {
		return 0
	}
	if confidence <= 0 || confidence > 1 {
		confidence = 0.99
	}
	var total float64
	for k := 1; k < len(power); k++ {
		total += power[k]
	}
	if total == 0 {
		return 0
	}
	target := confidence * total
	var acc float64
	for k := 1; k < len(power); k++ {
		acc += power[k]
		if acc >= target {
			return freqs[k]
		}
	}
	return freqs[len(freqs)-1]
}

// NyquistRate returns the minimum sampling rate that allows exact
// reconstruction of a signal whose maximum frequency is fMax:
// r_nyquist = 2·f_max (Nyquist 1924, as cited by the paper).
func NyquistRate(fMax float64) float64 { return 2 * fMax }

// DominantPeriod estimates the dominant period of x (in samples) from the
// first significant autocorrelation peak after lag 0, or 0 when no peak is
// found. Used as the minimum-square-error cross-check on the spectral
// estimate.
func DominantPeriod(x []float64) int {
	ac := Autocorrelation(x, len(x)/2)
	if len(ac) < 3 {
		return 0
	}
	// Skip the initial decay, then find the first local maximum above a
	// noise floor.
	i := 1
	for i < len(ac)-1 && ac[i] > ac[i+1] {
		i++
	}
	best, bestLag := 0.2, 0
	for ; i < len(ac)-1; i++ {
		if ac[i] > ac[i-1] && ac[i] >= ac[i+1] && ac[i] > best {
			best = ac[i]
			bestLag = i
		}
	}
	return bestLag
}

// Resample reconstructs a signal of length outLen from samples x taken at
// inRate by linear interpolation, simulating playback at outRate. It is the
// measurement half of the sampling experiments: sample at a policy's rate,
// reconstruct at the device rate, compare MSE.
func Resample(x []float64, inRate, outRate float64, outLen int) []float64 {
	out := make([]float64, outLen)
	if len(x) == 0 || inRate <= 0 || outRate <= 0 {
		return out
	}
	for i := 0; i < outLen; i++ {
		t := float64(i) / outRate // seconds
		pos := t * inRate
		lo := int(math.Floor(pos))
		if lo >= len(x)-1 {
			out[i] = x[len(x)-1]
			continue
		}
		frac := pos - float64(lo)
		out[i] = x[lo]*(1-frac) + x[lo+1]*frac
	}
	return out
}
