// Package stream provides the continuous-data-stream plumbing of AIMS:
// frame sources, sliding windows that aggregate several sensor streams into
// the matrices the online analysis consumes (§3.4), and the double-buffered
// asynchronous acquisition pipeline from the paper's recording study
// (§3.1) — one producer answering the device clock, one consumer storing
// data, realised as goroutines.
package stream

import (
	"fmt"
	"sync"
	"time"

	"aims/internal/vec"
)

// Frame is one multi-sensor sample: all channel values at one clock tick.
type Frame struct {
	T      float64 // seconds since session start
	Values []float64
}

// Source yields frames in time order. Next reports ok=false when the
// stream ends.
type Source interface {
	Next() (Frame, bool)
}

// SliceSource replays a recorded frame sequence at a nominal rate.
type SliceSource struct {
	Rate   float64
	Frames [][]float64
	pos    int
}

// NewSliceSource wraps frames (time-major: frames[i] is tick i) recorded at
// the given rate.
func NewSliceSource(frames [][]float64, rate float64) *SliceSource {
	return &SliceSource{Rate: rate, Frames: frames}
}

// Next implements Source.
func (s *SliceSource) Next() (Frame, bool) {
	if s.pos >= len(s.Frames) {
		return Frame{}, false
	}
	f := Frame{T: float64(s.pos) / s.Rate, Values: s.Frames[s.pos]}
	s.pos++
	return f, true
}

// Reset rewinds the source to the beginning.
func (s *SliceSource) Reset() { s.pos = 0 }

// FuncSource adapts a frame-generating function (e.g. a live device) into a
// Source that produces n frames.
type FuncSource struct {
	Rate float64
	N    int
	Fn   func(i int) []float64
	pos  int
}

// Next implements Source.
func (s *FuncSource) Next() (Frame, bool) {
	if s.pos >= s.N {
		return Frame{}, false
	}
	f := Frame{T: float64(s.pos) / s.Rate, Values: s.Fn(s.pos)}
	s.pos++
	return f, true
}

// Window is a fixed-capacity sliding window over frames. It aggregates the
// most recent frames of all sensors into one matrix — the "tight
// aggregation" the paper argues online immersidata analysis needs.
type Window struct {
	cap   int
	buf   [][]float64
	start int
	size  int
}

// NewWindow returns a window holding up to capacity frames.
func NewWindow(capacity int) *Window {
	if capacity <= 0 {
		panic(fmt.Sprintf("stream: window capacity %d", capacity))
	}
	return &Window{cap: capacity, buf: make([][]float64, capacity)}
}

// Push appends a frame's values, evicting the oldest when full.
func (w *Window) Push(values []float64) {
	idx := (w.start + w.size) % w.cap
	if w.size == w.cap {
		w.buf[w.start] = values
		w.start = (w.start + 1) % w.cap
		return
	}
	w.buf[idx] = values
	w.size++
}

// Len returns the number of buffered frames.
func (w *Window) Len() int { return w.size }

// Full reports whether the window has reached capacity.
func (w *Window) Full() bool { return w.size == w.cap }

// Matrix materialises the window as a rows=time × cols=sensors matrix,
// oldest frame first.
func (w *Window) Matrix() *vec.Matrix {
	if w.size == 0 {
		return vec.NewMatrix(0, 0)
	}
	rows := make([][]float64, w.size)
	for i := 0; i < w.size; i++ {
		rows[i] = w.buf[(w.start+i)%w.cap]
	}
	return vec.MatrixFromRows(rows)
}

// Reset empties the window.
func (w *Window) Reset() { w.start, w.size = 0, 0 }

// AcquireStats reports what the acquisition pipeline did.
type AcquireStats struct {
	Produced int // frames delivered by the device
	Stored   int // frames persisted by the consumer
	Dropped  int // frames lost because both buffers were in flight
	Flushes  int // buffer handoffs
}

// Acquire runs the paper's double-buffering recording strategy: the
// producer (the "interrupt handler" thread) fills one buffer while the
// consumer (the "process and store" thread) drains the other; store is
// called with each full buffer. The source is pull-based, so the producer
// applies backpressure when both buffers are in flight — acquisition is
// lossless and Dropped is always 0 here. Use AcquireRealtime to model a
// fixed-rate device that cannot wait.
func Acquire(src Source, bufFrames int, store func(batch []Frame)) AcquireStats {
	return acquire(src, bufFrames, store, true)
}

// AcquireRealtime is Acquire for a device that produces on a hard clock:
// when the consumer still owns both buffers at flush time, incoming frames
// are dropped instead of stalling the device. The returned stats expose the
// loss, which experiment E11 uses to find the sustainable rate.
func AcquireRealtime(src Source, bufFrames int, store func(batch []Frame)) AcquireStats {
	return acquire(src, bufFrames, store, false)
}

// TimedSource is a Source that can bound its wait for the next frame —
// what a live network feed (as opposed to a replayed recording) looks
// like to the acquisition pipeline.
type TimedSource interface {
	Source
	// NextTimeout waits at most d for a frame: (frame, true, false) on
	// delivery, (_, false, true) when the wait timed out but the stream is
	// still open, and (_, false, false) at end of stream.
	NextTimeout(d time.Duration) (f Frame, ok bool, timedOut bool)
}

// AcquireFlushing runs the lossless double-buffered pipeline with bounded
// batching latency: when the source stays quiet for maxLatency while a
// partially filled buffer exists, that partial buffer is handed to the
// consumer instead of waiting to fill — so a live session's tail frames
// become queryable within maxLatency rather than at session end. The
// producer still applies backpressure when both buffers are in flight.
func AcquireFlushing(src TimedSource, bufFrames int, maxLatency time.Duration, store func(batch []Frame)) AcquireStats {
	if bufFrames <= 0 {
		bufFrames = 256
	}
	if maxLatency <= 0 {
		maxLatency = 2 * time.Millisecond
	}
	var stats AcquireStats
	free := make(chan []Frame, 2)
	full := make(chan []Frame, 2)
	free <- make([]Frame, 0, bufFrames)
	free <- make([]Frame, 0, bufFrames)

	var wg sync.WaitGroup
	var mu sync.Mutex
	wg.Add(1)
	go func() {
		defer wg.Done()
		for batch := range full {
			store(batch)
			mu.Lock()
			stats.Stored += len(batch)
			stats.Flushes++
			mu.Unlock()
			free <- batch[:0]
		}
	}()

	cur := <-free
	for {
		f, ok, timedOut := src.NextTimeout(maxLatency)
		if timedOut {
			if cur != nil && len(cur) > 0 {
				full <- cur
				cur = nil
			}
			continue
		}
		if !ok {
			break
		}
		stats.Produced++
		if cur == nil {
			cur = <-free
		}
		cur = append(cur, f)
		if len(cur) == cap(cur) {
			full <- cur
			cur = nil
		}
	}
	if cur != nil && len(cur) > 0 {
		full <- cur
	}
	close(full)
	wg.Wait()
	return stats
}

func acquire(src Source, bufFrames int, store func(batch []Frame), block bool) AcquireStats {
	if bufFrames <= 0 {
		bufFrames = 256
	}
	var stats AcquireStats
	// Two buffers circulate between producer and consumer.
	free := make(chan []Frame, 2)
	full := make(chan []Frame, 2)
	free <- make([]Frame, 0, bufFrames)
	free <- make([]Frame, 0, bufFrames)

	var wg sync.WaitGroup
	var mu sync.Mutex // guards stats.Stored/Flushes from the consumer side
	wg.Add(1)
	go func() {
		defer wg.Done()
		for batch := range full {
			store(batch)
			mu.Lock()
			stats.Stored += len(batch)
			stats.Flushes++
			mu.Unlock()
			free <- batch[:0]
		}
	}()

	cur := <-free
	for {
		f, ok := src.Next()
		if !ok {
			break
		}
		stats.Produced++
		if cur == nil {
			if block {
				cur = <-free
			} else {
				select {
				case cur = <-free:
				default:
					stats.Dropped++
					continue
				}
			}
		}
		cur = append(cur, f)
		if len(cur) == cap(cur) {
			full <- cur
			cur = nil
		}
	}
	if cur != nil && len(cur) > 0 {
		full <- cur
	}
	close(full)
	wg.Wait()
	return stats
}
