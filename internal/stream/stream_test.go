package stream

import (
	"sync/atomic"
	"testing"
	"time"
)

func frames(n, dim int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		row := make([]float64, dim)
		for j := range row {
			row[j] = float64(i*dim + j)
		}
		out[i] = row
	}
	return out
}

func TestSliceSource(t *testing.T) {
	src := NewSliceSource(frames(3, 2), 100)
	var got []Frame
	for {
		f, ok := src.Next()
		if !ok {
			break
		}
		got = append(got, f)
	}
	if len(got) != 3 {
		t.Fatalf("frames = %d", len(got))
	}
	if got[1].T != 0.01 {
		t.Fatalf("T = %v, want 0.01", got[1].T)
	}
	if got[2].Values[1] != 5 {
		t.Fatalf("values = %v", got[2].Values)
	}
	src.Reset()
	if _, ok := src.Next(); !ok {
		t.Fatal("Reset should rewind")
	}
}

func TestFuncSource(t *testing.T) {
	src := &FuncSource{Rate: 10, N: 4, Fn: func(i int) []float64 { return []float64{float64(i)} }}
	count := 0
	for {
		f, ok := src.Next()
		if !ok {
			break
		}
		if f.Values[0] != float64(count) {
			t.Fatalf("value = %v at %d", f.Values[0], count)
		}
		count++
	}
	if count != 4 {
		t.Fatalf("count = %d", count)
	}
}

func TestWindowSliding(t *testing.T) {
	w := NewWindow(3)
	if w.Full() {
		t.Fatal("empty window reported full")
	}
	for i := 0; i < 5; i++ {
		w.Push([]float64{float64(i), float64(i * 10)})
	}
	if !w.Full() || w.Len() != 3 {
		t.Fatalf("Len = %d", w.Len())
	}
	m := w.Matrix()
	if m.Rows != 3 || m.Cols != 2 {
		t.Fatalf("Matrix %dx%d", m.Rows, m.Cols)
	}
	// Oldest surviving frame is i=2.
	if m.At(0, 0) != 2 || m.At(2, 0) != 4 {
		t.Fatalf("window order wrong: %v", m.Data)
	}
	w.Reset()
	if w.Len() != 0 {
		t.Fatal("Reset failed")
	}
	if got := w.Matrix(); got.Rows != 0 {
		t.Fatal("empty matrix expected")
	}
}

func TestWindowPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewWindow(0)
}

func TestAcquireStoresEverythingWhenConsumerKeepsUp(t *testing.T) {
	src := NewSliceSource(frames(1000, 4), 100)
	var stored int64
	stats := Acquire(src, 64, func(batch []Frame) {
		atomic.AddInt64(&stored, int64(len(batch)))
	})
	if stats.Produced != 1000 {
		t.Fatalf("Produced = %d", stats.Produced)
	}
	if stats.Stored != 1000 || stats.Dropped != 0 {
		t.Fatalf("Stored = %d Dropped = %d", stats.Stored, stats.Dropped)
	}
	if atomic.LoadInt64(&stored) != 1000 {
		t.Fatalf("store callback saw %d", stored)
	}
	if stats.Flushes < 1000/64 {
		t.Fatalf("Flushes = %d", stats.Flushes)
	}
}

func TestAcquirePreservesOrder(t *testing.T) {
	src := NewSliceSource(frames(500, 1), 100)
	var seen []float64
	Acquire(src, 32, func(batch []Frame) {
		for _, f := range batch {
			seen = append(seen, f.Values[0])
		}
	})
	for i := 1; i < len(seen); i++ {
		if seen[i] <= seen[i-1] {
			t.Fatalf("order violated at %d: %v after %v", i, seen[i], seen[i-1])
		}
	}
	if len(seen) != 500 {
		t.Fatalf("saw %d frames", len(seen))
	}
}

func TestAcquireRealtimeDropsWhenConsumerStalls(t *testing.T) {
	src := NewSliceSource(frames(2000, 2), 100)
	stats := AcquireRealtime(src, 16, func(batch []Frame) {
		time.Sleep(2 * time.Millisecond) // pathological storage latency
	})
	if stats.Dropped == 0 {
		t.Fatal("expected drops with a stalled consumer")
	}
	if stats.Stored+stats.Dropped != stats.Produced {
		t.Fatalf("accounting broken: %d + %d != %d", stats.Stored, stats.Dropped, stats.Produced)
	}
}

func TestAcquireBlocksInsteadOfDropping(t *testing.T) {
	src := NewSliceSource(frames(300, 2), 100)
	stats := Acquire(src, 16, func(batch []Frame) {
		time.Sleep(time.Millisecond)
	})
	if stats.Dropped != 0 || stats.Stored != 300 {
		t.Fatalf("lossless acquire lost data: %+v", stats)
	}
}

func TestAcquireEmptySource(t *testing.T) {
	stats := Acquire(NewSliceSource(nil, 100), 8, func([]Frame) {})
	if stats.Produced != 0 || stats.Stored != 0 {
		t.Fatalf("empty source stats: %+v", stats)
	}
}

func TestAcquireDefaultBufSize(t *testing.T) {
	src := NewSliceSource(frames(10, 1), 100)
	stats := Acquire(src, 0, func([]Frame) {})
	if stats.Stored != 10 {
		t.Fatalf("Stored = %d", stats.Stored)
	}
}
