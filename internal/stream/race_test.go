package stream

// Race-focused tests for the double-buffered acquisition pipeline: run
// with -race. The single-threaded behaviour is covered in stream_test.go;
// these exercise concurrent producers/consumers, early stop, and source
// exhaustion at awkward boundaries.

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// jitterSource yields n frames with occasional producer-side delays, so
// buffer handoffs race with a consumer that is itself jittery.
type jitterSource struct {
	n   int
	pos int
	rng *rand.Rand
}

func (s *jitterSource) Next() (Frame, bool) {
	if s.pos >= s.n {
		return Frame{}, false
	}
	if s.rng.Intn(64) == 0 {
		time.Sleep(time.Duration(s.rng.Intn(100)) * time.Microsecond)
	}
	f := Frame{T: float64(s.pos) / 100, Values: []float64{float64(s.pos)}}
	s.pos++
	return f, true
}

// stoppableSource ends the stream when another goroutine sets the flag —
// the early-stop shape of a device being unplugged mid-acquisition.
type stoppableSource struct {
	stopped atomic.Bool
	pos     int
}

func (s *stoppableSource) Next() (Frame, bool) {
	if s.stopped.Load() {
		return Frame{}, false
	}
	f := Frame{T: float64(s.pos) / 100, Values: []float64{float64(s.pos)}}
	s.pos++
	return f, true
}

func TestAcquireConcurrentProducerConsumer(t *testing.T) {
	const n = 20000
	src := &jitterSource{n: n, rng: rand.New(rand.NewSource(7))}
	var stored atomic.Int64
	var lastSeen atomic.Int64
	lastSeen.Store(-1)
	rng := rand.New(rand.NewSource(8))
	jitter := make([]bool, 1024)
	for i := range jitter {
		jitter[i] = rng.Intn(16) == 0
	}
	var batchIdx atomic.Int64
	stats := Acquire(src, 64, func(batch []Frame) {
		if jitter[int(batchIdx.Add(1))%len(jitter)] {
			time.Sleep(50 * time.Microsecond)
		}
		for _, f := range batch {
			v := int64(f.Values[0])
			if prev := lastSeen.Load(); v != prev+1 {
				t.Errorf("order break: %d after %d", v, prev)
				return
			}
			lastSeen.Store(v)
		}
		stored.Add(int64(len(batch)))
	})
	if stats.Produced != n || stats.Stored != n || stats.Dropped != 0 {
		t.Fatalf("stats: %+v", stats)
	}
	if stored.Load() != n {
		t.Fatalf("consumer saw %d frames", stored.Load())
	}
}

func TestAcquireManyPipelinesConcurrently(t *testing.T) {
	const pipelines = 8
	const n = 5000
	var total atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < pipelines; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			src := &jitterSource{n: n, rng: rand.New(rand.NewSource(int64(p)))}
			stats := Acquire(src, 32+p, func(batch []Frame) {
				total.Add(int64(len(batch)))
			})
			if stats.Stored != n {
				t.Errorf("pipeline %d stored %d", p, stats.Stored)
			}
		}(p)
	}
	wg.Wait()
	if total.Load() != pipelines*n {
		t.Fatalf("total %d != %d", total.Load(), pipelines*n)
	}
}

func TestAcquireEarlyStop(t *testing.T) {
	src := &stoppableSource{}
	go func() {
		time.Sleep(2 * time.Millisecond)
		src.stopped.Store(true)
	}()
	var stored atomic.Int64
	stats := Acquire(src, 64, func(batch []Frame) {
		stored.Add(int64(len(batch)))
	})
	// Everything produced before the stop must be stored: the final
	// partial buffer flushes, nothing deadlocks, nothing is lost.
	if stats.Stored != stats.Produced || stats.Dropped != 0 {
		t.Fatalf("early stop lost frames: %+v", stats)
	}
	if stored.Load() != int64(stats.Stored) {
		t.Fatalf("consumer saw %d, stats say %d", stored.Load(), stats.Stored)
	}
}

func TestAcquireRealtimeAccountingUnderRace(t *testing.T) {
	const n = 30000
	src := &jitterSource{n: n, rng: rand.New(rand.NewSource(9))}
	rng := rand.New(rand.NewSource(10))
	delays := make([]int, 256)
	for i := range delays {
		delays[i] = rng.Intn(120)
	}
	var batches atomic.Int64
	stats := AcquireRealtime(src, 32, func(batch []Frame) {
		time.Sleep(time.Duration(delays[int(batches.Add(1))%len(delays)]) * time.Microsecond)
	})
	if stats.Produced != n {
		t.Fatalf("Produced = %d", stats.Produced)
	}
	if stats.Stored+stats.Dropped != stats.Produced {
		t.Fatalf("accounting broken: %d + %d != %d", stats.Stored, stats.Dropped, stats.Produced)
	}
}

func TestAcquireExhaustionAtBufferBoundaries(t *testing.T) {
	// Source lengths straddling buffer multiples: the final flush must
	// deliver exactly the remainder, even with a slow consumer holding
	// both buffers near the end.
	for _, n := range []int{0, 1, 31, 32, 33, 63, 64, 65, 96} {
		src := NewSliceSource(frames(n, 2), 100)
		var stored int64
		stats := Acquire(src, 32, func(batch []Frame) {
			time.Sleep(100 * time.Microsecond)
			atomic.AddInt64(&stored, int64(len(batch)))
		})
		if stats.Stored != n || atomic.LoadInt64(&stored) != int64(n) {
			t.Fatalf("n=%d: stats=%+v stored=%d", n, stats, stored)
		}
	}
}

// timedChanSource is the server's live-feed shape: frames arrive over a
// channel, possibly with gaps.
type timedChanSource struct{ ch chan Frame }

func (s *timedChanSource) Next() (Frame, bool) {
	f, ok := <-s.ch
	return f, ok
}

func (s *timedChanSource) NextTimeout(d time.Duration) (Frame, bool, bool) {
	select {
	case f, ok := <-s.ch:
		return f, ok, false
	case <-time.After(d):
		return Frame{}, false, true
	}
}

func TestAcquireFlushingDeliversPartialBuffers(t *testing.T) {
	src := &timedChanSource{ch: make(chan Frame, 16)}
	delivered := make(chan int, 64)
	done := make(chan AcquireStats, 1)
	go func() {
		done <- AcquireFlushing(src, 64, time.Millisecond, func(batch []Frame) {
			delivered <- len(batch)
		})
	}()
	// 10 frames — far less than one 64-frame buffer — must still reach
	// the consumer once the source goes quiet.
	for i := 0; i < 10; i++ {
		src.ch <- Frame{T: float64(i) / 100, Values: []float64{float64(i)}}
	}
	select {
	case n := <-delivered:
		if n == 0 {
			t.Fatal("empty flush")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("partial buffer never flushed")
	}
	close(src.ch)
	stats := <-done
	if stats.Produced != 10 || stats.Stored != 10 || stats.Dropped != 0 {
		t.Fatalf("stats: %+v", stats)
	}
}

func TestAcquireFlushingLosslessUnderConcurrentFeed(t *testing.T) {
	const n = 20000
	src := &timedChanSource{ch: make(chan Frame, 128)}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(11))
		for i := 0; i < n; i++ {
			if rng.Intn(512) == 0 {
				time.Sleep(300 * time.Microsecond) // bursty device
			}
			src.ch <- Frame{T: float64(i) / 100, Values: []float64{float64(i)}}
		}
		close(src.ch)
	}()
	var stored atomic.Int64
	var last atomic.Int64
	last.Store(-1)
	stats := AcquireFlushing(src, 64, 200*time.Microsecond, func(batch []Frame) {
		for _, f := range batch {
			v := int64(f.Values[0])
			if prev := last.Load(); v != prev+1 {
				t.Errorf("order break: %d after %d", v, prev)
				return
			}
			last.Store(v)
		}
		stored.Add(int64(len(batch)))
	})
	wg.Wait()
	if stats.Produced != n || stats.Stored != n || stats.Dropped != 0 {
		t.Fatalf("stats: %+v", stats)
	}
	if stored.Load() != n {
		t.Fatalf("consumer saw %d", stored.Load())
	}
	// The bursty gaps must have forced at least one partial flush.
	if stats.Flushes <= n/64 {
		t.Fatalf("no partial flushes happened (flushes=%d)", stats.Flushes)
	}
}
