package vec

import (
	"fmt"
	"math"
	"sort"
)

// Eigen holds the eigendecomposition of a real symmetric matrix:
// A = V · diag(Values) · Vᵀ, with Values sorted in descending order and the
// columns of V the corresponding orthonormal eigenvectors.
type Eigen struct {
	Values  []float64
	Vectors *Matrix // n×n, column j is the eigenvector for Values[j]
}

// SymEigen computes the eigendecomposition of the symmetric matrix a using
// the cyclic Jacobi method. The input is not modified. It panics if a is not
// square; symmetry is assumed (only the upper triangle drives rotations but
// the matrix is processed symmetrically).
//
// Jacobi is quadratic per sweep but converges in a handful of sweeps for the
// small (≤ a few hundred) dimensionalities AIMS works with, and is
// numerically very robust — exactly the trade-off a sensor-space eigensolver
// wants.
func SymEigen(a *Matrix) Eigen {
	return symEigenFrom(a.Clone(), nil)
}

// symEigenFrom runs cyclic Jacobi on w (destroyed) starting from the given
// accumulated rotation matrix (or identity when v0 is nil). Passing the
// previous decomposition's rotation matrix warm-starts incremental updates.
func symEigenFrom(w *Matrix, v0 *Matrix) Eigen {
	n := w.Rows
	if n != w.Cols {
		panic(fmt.Sprintf("vec: SymEigen non-square %dx%d", n, w.Cols))
	}
	v := v0
	if v == nil {
		v = Identity(n)
	}
	if n <= 1 {
		vals := make([]float64, n)
		if n == 1 {
			vals[0] = w.At(0, 0)
		}
		return Eigen{Values: vals, Vectors: v}
	}

	const maxSweeps = 64
	tol := 1e-14 * w.FrobeniusNorm()
	if tol == 0 {
		tol = 1e-300
	}
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := w.MaxOffDiagonal()
		if off <= tol {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) <= tol/float64(n) {
					continue
				}
				app, aqq := w.At(p, p), w.At(q, q)
				// Rotation angle (Golub & Van Loan 8.4).
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c

				// Apply the rotation J(p,q,θ): w = Jᵀ w J.
				for k := 0; k < n; k++ {
					wkp, wkq := w.At(k, p), w.At(k, q)
					w.Set(k, p, c*wkp-s*wkq)
					w.Set(k, q, s*wkp+c*wkq)
				}
				for k := 0; k < n; k++ {
					wpk, wqk := w.At(p, k), w.At(q, k)
					w.Set(p, k, c*wpk-s*wqk)
					w.Set(q, k, s*wpk+c*wqk)
				}
				for k := 0; k < n; k++ {
					vkp, vkq := v.At(k, p), v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}

	// Extract and sort eigenpairs descending by value.
	idx := make([]int, n)
	vals := make([]float64, n)
	for i := range idx {
		idx[i] = i
		vals[i] = w.At(i, i)
	}
	sort.Slice(idx, func(i, j int) bool { return vals[idx[i]] > vals[idx[j]] })

	sorted := make([]float64, n)
	vecs := NewMatrix(n, n)
	for newJ, oldJ := range idx {
		sorted[newJ] = vals[oldJ]
		for i := 0; i < n; i++ {
			vecs.Set(i, newJ, v.At(i, oldJ))
		}
	}
	return Eigen{Values: sorted, Vectors: vecs}
}

// SymEigenWarm computes the eigendecomposition of symmetric a starting
// from a previous decomposition's eigenvector matrix v0. When a changed
// only slightly (e.g. a sliding-window second-moment matrix after one
// frame), v0ᵀ·a·v0 is nearly diagonal and Jacobi converges in one or two
// sweeps instead of several — the incremental-SVD path of AIMS's online
// subsystem. Passing nil v0 falls back to SymEigen.
func SymEigenWarm(a *Matrix, v0 *Matrix) Eigen {
	if v0 == nil {
		return SymEigen(a)
	}
	if v0.Rows != a.Rows || v0.Cols != a.Cols {
		panic(fmt.Sprintf("vec: SymEigenWarm v0 %dx%d for a %dx%d", v0.Rows, v0.Cols, a.Rows, a.Cols))
	}
	b := v0.T().Mul(a).Mul(v0)
	return symEigenFrom(b, v0.Clone())
}

// SVD holds the thin singular value decomposition A = U · diag(S) · Vᵀ of an
// m×n matrix with m ≥ n (AIMS window matrices are tall: many time samples,
// few sensors). S is sorted descending; V is n×n with orthonormal columns;
// U is m×n (columns for nonzero singular values are orthonormal).
type SVD struct {
	U *Matrix
	S []float64
	V *Matrix
}

// ComputeSVD computes the thin SVD of a via the eigendecomposition of the
// Gram matrix aᵀa. This is accurate to ~sqrt(machine epsilon) for the small
// condition numbers of sensor windows and costs O(m·n² + n³) — ideal for
// tall-skinny immersidata windows.
func ComputeSVD(a *Matrix) SVD {
	if a.Rows < a.Cols {
		// Handle wide matrices by transposing: A = U S Vᵀ ⇔ Aᵀ = V S Uᵀ.
		sv := ComputeSVD(a.T())
		return SVD{U: sv.V, S: sv.S, V: sv.U}
	}
	eig := SymEigen(a.Gram())
	n := a.Cols
	s := make([]float64, n)
	for i, lam := range eig.Values {
		if lam < 0 {
			lam = 0
		}
		s[i] = math.Sqrt(lam)
	}
	// U = A V S⁻¹ for nonzero singular values.
	av := a.Mul(eig.Vectors)
	u := NewMatrix(a.Rows, n)
	for j := 0; j < n; j++ {
		if s[j] > 1e-12*s[0] && s[j] > 0 {
			inv := 1 / s[j]
			for i := 0; i < a.Rows; i++ {
				u.Set(i, j, av.At(i, j)*inv)
			}
		}
	}
	return SVD{U: u, S: s, V: eig.Vectors}
}
