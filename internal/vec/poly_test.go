package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPolyEval(t *testing.T) {
	p := Poly{1, 2, 3} // 1 + 2x + 3x²
	if got := p.Eval(2); got != 17 {
		t.Fatalf("Eval = %v, want 17", got)
	}
	if got := (Poly{}).Eval(5); got != 0 {
		t.Fatalf("zero poly Eval = %v", got)
	}
}

func TestPolyDegree(t *testing.T) {
	if got := (Poly{0, 0, 0}).Degree(); got != -1 {
		t.Fatalf("Degree = %d, want -1", got)
	}
	if got := (Poly{1, 0, 2, 0}).Degree(); got != 2 {
		t.Fatalf("Degree = %d, want 2", got)
	}
}

func TestPolyAddScaleMul(t *testing.T) {
	p := Poly{1, 1}
	q := Poly{0, 0, 2}
	sum := p.Add(q)
	if sum.Eval(3) != p.Eval(3)+q.Eval(3) {
		t.Fatal("Add broken")
	}
	if p.Scale(2).Eval(5) != 2*p.Eval(5) {
		t.Fatal("Scale broken")
	}
	prod := p.Mul(p) // (1+x)² = 1 + 2x + x²
	want := Poly{1, 2, 1}
	for i := range want {
		if !almostEqual(prod[i], want[i], 1e-12) {
			t.Fatalf("Mul = %v", prod)
		}
	}
	if got := (Poly{}).Mul(p); len(got) != 0 {
		t.Fatalf("zero Mul = %v", got)
	}
}

func TestComposeAffine(t *testing.T) {
	p := Poly{0, 0, 1} // x²
	q := p.ComposeAffine(2, 3)
	// (2x+3)² = 4x² + 12x + 9
	want := Poly{9, 12, 4}
	for i := range want {
		if !almostEqual(q[i], want[i], 1e-12) {
			t.Fatalf("ComposeAffine = %v, want %v", q, want)
		}
	}
}

func TestComposeAffineMatchesEvalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		deg := rng.Intn(5)
		p := make(Poly, deg+1)
		for i := range p {
			p[i] = rng.NormFloat64()
		}
		a, b := rng.NormFloat64(), rng.NormFloat64()
		q := p.ComposeAffine(a, b)
		for trial := 0; trial < 5; trial++ {
			x := rng.NormFloat64()
			lhs, rhs := q.Eval(x), p.Eval(a*x+b)
			if math.Abs(lhs-rhs) > 1e-7*(1+math.Abs(rhs)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPolyTrimIsZero(t *testing.T) {
	p := Poly{1, 2, 1e-15}
	q := p.Trim(1e-12)
	if len(q) != 2 {
		t.Fatalf("Trim = %v", q)
	}
	if !(Poly{1e-13, -1e-14}).IsZero(1e-12) {
		t.Fatal("IsZero false negative")
	}
	if (Poly{0.1}).IsZero(1e-12) {
		t.Fatal("IsZero false positive")
	}
}

func TestPolyString(t *testing.T) {
	cases := map[string]Poly{
		"0":             {},
		"1 + 2x":        {1, 2},
		"3x^2":          {0, 0, 3},
		"1 - 2x":        {1, -2},
		"-1 + 1x":       {-1, 1},
		"2 + 1x + 3x^2": {2, 1, 3},
	}
	for want, p := range cases {
		if got := p.String(); got != want {
			t.Errorf("String(%v) = %q, want %q", []float64(p), got, want)
		}
	}
}

func TestPolyConstAndX(t *testing.T) {
	if PolyConst(4).Eval(100) != 4 {
		t.Fatal("PolyConst broken")
	}
	if PolyX(3).Eval(2) != 8 {
		t.Fatal("PolyX broken")
	}
}
