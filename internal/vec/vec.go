// Package vec provides the small dense linear-algebra kernel used across
// AIMS: vectors, matrices, a cyclic-Jacobi symmetric eigensolver, an SVD
// built on it, and univariate polynomials.
//
// The package is deliberately self-contained (stdlib only) and tuned for the
// modest dimensionalities that appear in immersidata processing: sensor
// spaces of a few dozen dimensions and window matrices of a few thousand
// rows. All types use float64 throughout.
package vec

import (
	"fmt"
	"math"
)

// Dot returns the inner product of a and b.
// It panics if the lengths differ.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: Dot length mismatch %d != %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm returns the Euclidean (L2) norm of v.
func Norm(v []float64) float64 {
	return math.Sqrt(Dot(v, v))
}

// Norm1 returns the L1 norm of v.
func Norm1(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += math.Abs(x)
	}
	return s
}

// NormInf returns the L∞ norm of v.
func NormInf(v []float64) float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Scale multiplies every element of v by c in place and returns v.
func Scale(v []float64, c float64) []float64 {
	for i := range v {
		v[i] *= c
	}
	return v
}

// AddTo adds src into dst element-wise (dst += src) and returns dst.
// It panics if the lengths differ.
func AddTo(dst, src []float64) []float64 {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("vec: AddTo length mismatch %d != %d", len(dst), len(src)))
	}
	for i, v := range src {
		dst[i] += v
	}
	return dst
}

// Sub returns a new vector a - b.
func Sub(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: Sub length mismatch %d != %d", len(a), len(b)))
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// Clone returns a copy of v.
func Clone(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

// Sum returns the sum of the elements of v.
func Sum(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of v, or 0 for an empty slice.
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	return Sum(v) / float64(len(v))
}

// Variance returns the population variance of v, or 0 for fewer than one
// element.
func Variance(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	m := Mean(v)
	var s float64
	for _, x := range v {
		d := x - m
		s += d * d
	}
	return s / float64(len(v))
}

// Covariance returns the population covariance of a and b.
// It panics if the lengths differ.
func Covariance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: Covariance length mismatch %d != %d", len(a), len(b)))
	}
	if len(a) == 0 {
		return 0
	}
	ma, mb := Mean(a), Mean(b)
	var s float64
	for i := range a {
		s += (a[i] - ma) * (b[i] - mb)
	}
	return s / float64(len(a))
}

// MSE returns the mean squared error between a and b.
// It panics if the lengths differ.
func MSE(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: MSE length mismatch %d != %d", len(a), len(b)))
	}
	if len(a) == 0 {
		return 0
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s / float64(len(a))
}

// RelativeError returns |approx-exact| / max(|exact|, floor). The floor
// guards against division by tiny exact answers; callers that want a pure
// relative error can pass floor = 0 (the result is then +Inf for exact = 0,
// approx != 0).
func RelativeError(approx, exact, floor float64) float64 {
	denom := math.Abs(exact)
	if denom < floor {
		denom = floor
	}
	if denom == 0 {
		if approx == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(approx-exact) / denom
}
