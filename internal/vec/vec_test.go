package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestNorms(t *testing.T) {
	v := []float64{3, -4}
	if got := Norm(v); !almostEqual(got, 5, 1e-12) {
		t.Errorf("Norm = %v, want 5", got)
	}
	if got := Norm1(v); got != 7 {
		t.Errorf("Norm1 = %v, want 7", got)
	}
	if got := NormInf(v); got != 4 {
		t.Errorf("NormInf = %v, want 4", got)
	}
}

func TestScaleAddSubClone(t *testing.T) {
	v := []float64{1, 2}
	Scale(v, 3)
	if v[0] != 3 || v[1] != 6 {
		t.Fatalf("Scale: %v", v)
	}
	AddTo(v, []float64{1, 1})
	if v[0] != 4 || v[1] != 7 {
		t.Fatalf("AddTo: %v", v)
	}
	d := Sub(v, []float64{4, 7})
	if d[0] != 0 || d[1] != 0 {
		t.Fatalf("Sub: %v", d)
	}
	c := Clone(v)
	c[0] = 99
	if v[0] == 99 {
		t.Fatal("Clone aliases input")
	}
}

func TestStats(t *testing.T) {
	v := []float64{1, 2, 3, 4}
	if got := Mean(v); got != 2.5 {
		t.Errorf("Mean = %v", got)
	}
	if got := Variance(v); !almostEqual(got, 1.25, 1e-12) {
		t.Errorf("Variance = %v, want 1.25", got)
	}
	if got := Covariance(v, v); !almostEqual(got, 1.25, 1e-12) {
		t.Errorf("Covariance(v,v) = %v, want Variance", got)
	}
	b := []float64{4, 3, 2, 1}
	if got := Covariance(v, b); !almostEqual(got, -1.25, 1e-12) {
		t.Errorf("Covariance = %v, want -1.25", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
}

func TestMSEAndRelativeError(t *testing.T) {
	if got := MSE([]float64{1, 2}, []float64{1, 4}); got != 2 {
		t.Errorf("MSE = %v, want 2", got)
	}
	if got := RelativeError(9, 10, 0); !almostEqual(got, 0.1, 1e-12) {
		t.Errorf("RelativeError = %v", got)
	}
	if got := RelativeError(0, 0, 0); got != 0 {
		t.Errorf("RelativeError(0,0) = %v", got)
	}
	if got := RelativeError(1, 0, 0); !math.IsInf(got, 1) {
		t.Errorf("RelativeError(1,0) = %v, want +Inf", got)
	}
	if got := RelativeError(1, 0.5, 2); got != 0.25 {
		t.Errorf("RelativeError floor = %v, want 0.25", got)
	}
}

func TestCovarianceSymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(64)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		return almostEqual(Covariance(a, b), Covariance(b, a), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVarianceNonNegativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64() * 100
		}
		return Variance(v) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
