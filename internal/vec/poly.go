package vec

import (
	"fmt"
	"math"
	"strings"
)

// Poly is a univariate polynomial with Poly[i] the coefficient of x^i.
// The zero-length polynomial is identically zero. Polynomials are the query
// language of ProPolyne: a range aggregate is ⟨data, p(x)·1_range(x)⟩ for a
// polynomial p.
type Poly []float64

// PolyConst returns the constant polynomial c.
func PolyConst(c float64) Poly { return Poly{c} }

// PolyX returns the monomial x^k.
func PolyX(k int) Poly {
	p := make(Poly, k+1)
	p[k] = 1
	return p
}

// Degree returns the degree of p, treating trailing zero coefficients as
// absent. The zero polynomial has degree -1.
func (p Poly) Degree() int {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] != 0 {
			return i
		}
	}
	return -1
}

// Eval evaluates p at x by Horner's rule.
func (p Poly) Eval(x float64) float64 {
	var s float64
	for i := len(p) - 1; i >= 0; i-- {
		s = s*x + p[i]
	}
	return s
}

// Add returns p + q.
func (p Poly) Add(q Poly) Poly {
	n := len(p)
	if len(q) > n {
		n = len(q)
	}
	out := make(Poly, n)
	copy(out, p)
	for i, v := range q {
		out[i] += v
	}
	return out
}

// Scale returns c·p as a new polynomial.
func (p Poly) Scale(c float64) Poly {
	out := make(Poly, len(p))
	for i, v := range p {
		out[i] = c * v
	}
	return out
}

// Mul returns the product p·q.
func (p Poly) Mul(q Poly) Poly {
	if len(p) == 0 || len(q) == 0 {
		return Poly{}
	}
	out := make(Poly, len(p)+len(q)-1)
	for i, a := range p {
		if a == 0 {
			continue
		}
		for j, b := range q {
			out[i+j] += a * b
		}
	}
	return out
}

// ComposeAffine returns q(x) = p(a·x + b), expanded via the binomial
// theorem. This is the workhorse of the lazy wavelet transform: one analysis
// level maps an interior polynomial p(n) to Σ_m h[m]·p(2k+m), i.e. a sum of
// affine compositions with a = 2.
func (p Poly) ComposeAffine(a, b float64) Poly {
	out := make(Poly, len(p))
	if len(p) == 0 {
		return out
	}
	// (a x + b)^k expanded iteratively.
	pow := Poly{1} // (a x + b)^0
	for k := 0; k < len(p); k++ {
		if c := p[k]; c != 0 {
			for i, v := range pow {
				out[i] += c * v
			}
		}
		if k+1 < len(p) {
			pow = pow.Mul(Poly{b, a})
		}
	}
	return out
}

// Trim removes trailing coefficients with magnitude ≤ eps and returns the
// (possibly shorter) polynomial.
func (p Poly) Trim(eps float64) Poly {
	n := len(p)
	for n > 0 && math.Abs(p[n-1]) <= eps {
		n--
	}
	return p[:n]
}

// IsZero reports whether every coefficient has magnitude ≤ eps.
func (p Poly) IsZero(eps float64) bool {
	for _, v := range p {
		if math.Abs(v) > eps {
			return false
		}
	}
	return true
}

// String renders the polynomial for diagnostics, e.g. "1 + 2x - 0.5x^2".
func (p Poly) String() string {
	if p.Degree() < 0 {
		return "0"
	}
	var b strings.Builder
	first := true
	for i, c := range p {
		if c == 0 {
			continue
		}
		if !first {
			if c >= 0 {
				b.WriteString(" + ")
			} else {
				b.WriteString(" - ")
				c = -c
			}
		}
		switch i {
		case 0:
			fmt.Fprintf(&b, "%g", c)
		case 1:
			fmt.Fprintf(&b, "%gx", c)
		default:
			fmt.Fprintf(&b, "%gx^%d", c, i)
		}
		first = false
	}
	return b.String()
}
