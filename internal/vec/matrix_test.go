package vec

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func randMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestMatrixBasics(t *testing.T) {
	m := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(1, 0) != 3 {
		t.Fatalf("At(1,0) = %v", m.At(1, 0))
	}
	m.Set(1, 0, 9)
	if m.At(1, 0) != 9 {
		t.Fatalf("Set failed")
	}
	if got := m.Col(1); got[0] != 2 || got[1] != 4 {
		t.Fatalf("Col = %v", got)
	}
	c := m.Clone()
	c.Set(0, 0, -1)
	if m.At(0, 0) == -1 {
		t.Fatal("Clone aliases data")
	}
	if !strings.Contains(m.String(), "9.0000") {
		t.Fatalf("String output missing element: %q", m.String())
	}
}

func TestMatrixMul(t *testing.T) {
	a := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	b := MatrixFromRows([][]float64{{5, 6}, {7, 8}})
	got := a.Mul(b)
	want := MatrixFromRows([][]float64{{19, 22}, {43, 50}})
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("Mul = %v, want %v", got.Data, want.Data)
		}
	}
}

func TestMulVec(t *testing.T) {
	a := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	got := a.MulVec([]float64{1, 1})
	if got[0] != 3 || got[1] != 7 {
		t.Fatalf("MulVec = %v", got)
	}
}

func TestTransposeInvolutionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randMatrix(rng, 1+rng.Intn(8), 1+rng.Intn(8))
		tt := m.T().T()
		for i := range m.Data {
			if m.Data[i] != tt.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGramMatchesExplicitProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := randMatrix(rng, 20, 6)
	g1 := m.Gram()
	g2 := m.T().Mul(m)
	for i := range g1.Data {
		if !almostEqual(g1.Data[i], g2.Data[i], 1e-10) {
			t.Fatalf("Gram mismatch at %d: %v vs %v", i, g1.Data[i], g2.Data[i])
		}
	}
}

func TestIdentityAndAddScaled(t *testing.T) {
	i3 := Identity(3)
	m := i3.Clone().AddScaled(i3, 2)
	for k := 0; k < 3; k++ {
		if m.At(k, k) != 3 {
			t.Fatalf("AddScaled diag = %v", m.At(k, k))
		}
	}
}

func TestSymEigenReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(12)
		a := randMatrix(rng, n, n)
		sym := a.T().Mul(a) // symmetric PSD
		eig := SymEigen(sym)

		// Check A·v = λ·v for every eigenpair.
		for j := 0; j < n; j++ {
			v := eig.Vectors.Col(j)
			av := sym.MulVec(v)
			for i := 0; i < n; i++ {
				if !almostEqual(av[i], eig.Values[j]*v[i], 1e-7*(1+math.Abs(eig.Values[0]))) {
					t.Fatalf("trial %d: eigenpair %d violated at row %d: %v vs %v",
						trial, j, i, av[i], eig.Values[j]*v[i])
				}
			}
		}
		// Eigenvalues sorted descending.
		for j := 1; j < n; j++ {
			if eig.Values[j] > eig.Values[j-1]+1e-9 {
				t.Fatalf("eigenvalues not sorted: %v", eig.Values)
			}
		}
		// Eigenvectors orthonormal.
		vtv := eig.Vectors.T().Mul(eig.Vectors)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if !almostEqual(vtv.At(i, j), want, 1e-8) {
					t.Fatalf("VᵀV[%d][%d] = %v", i, j, vtv.At(i, j))
				}
			}
		}
	}
}

func TestSymEigenDiagonal(t *testing.T) {
	d := NewMatrix(3, 3)
	d.Set(0, 0, 1)
	d.Set(1, 1, 5)
	d.Set(2, 2, 3)
	eig := SymEigen(d)
	want := []float64{5, 3, 1}
	for i, w := range want {
		if !almostEqual(eig.Values[i], w, 1e-12) {
			t.Fatalf("Values = %v, want %v", eig.Values, want)
		}
	}
}

func TestSymEigenTrivialSizes(t *testing.T) {
	e0 := SymEigen(NewMatrix(0, 0))
	if len(e0.Values) != 0 {
		t.Fatal("0x0 eigen should be empty")
	}
	m1 := NewMatrix(1, 1)
	m1.Set(0, 0, 7)
	e1 := SymEigen(m1)
	if e1.Values[0] != 7 {
		t.Fatalf("1x1 eigenvalue = %v", e1.Values[0])
	}
}

func TestSVDReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 8; trial++ {
		rows, cols := 10+rng.Intn(30), 2+rng.Intn(6)
		a := randMatrix(rng, rows, cols)
		sv := ComputeSVD(a)

		// Rebuild A = U S Vᵀ.
		us := sv.U.Clone()
		for j := 0; j < cols; j++ {
			for i := 0; i < rows; i++ {
				us.Set(i, j, us.At(i, j)*sv.S[j])
			}
		}
		rec := us.Mul(sv.V.T())
		for i := range a.Data {
			if !almostEqual(a.Data[i], rec.Data[i], 1e-6*(1+sv.S[0])) {
				t.Fatalf("trial %d: SVD reconstruction mismatch at %d: %v vs %v",
					trial, i, a.Data[i], rec.Data[i])
			}
		}
		// Singular values descending, non-negative.
		for j := 0; j < cols; j++ {
			if sv.S[j] < 0 {
				t.Fatalf("negative singular value %v", sv.S[j])
			}
			if j > 0 && sv.S[j] > sv.S[j-1]+1e-9 {
				t.Fatalf("singular values not sorted: %v", sv.S)
			}
		}
	}
}

func TestSVDWideMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randMatrix(rng, 3, 8)
	sv := ComputeSVD(a)
	us := sv.U.Clone()
	for j := 0; j < us.Cols; j++ {
		for i := 0; i < us.Rows; i++ {
			us.Set(i, j, us.At(i, j)*sv.S[j])
		}
	}
	rec := us.Mul(sv.V.T())
	if rec.Rows != 3 || rec.Cols != 8 {
		t.Fatalf("wide SVD shape %dx%d", rec.Rows, rec.Cols)
	}
	for i := range a.Data {
		if !almostEqual(a.Data[i], rec.Data[i], 1e-6*(1+sv.S[0])) {
			t.Fatalf("wide SVD reconstruction mismatch at %d", i)
		}
	}
}

func TestSVDEnergyProperty(t *testing.T) {
	// Σ σ² must equal ‖A‖_F² (Parseval for the SVD).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randMatrix(rng, 4+rng.Intn(20), 2+rng.Intn(5))
		sv := ComputeSVD(a)
		var e float64
		for _, s := range sv.S {
			e += s * s
		}
		fn := a.FrobeniusNorm()
		return almostEqual(e, fn*fn, 1e-6*(1+fn*fn))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
