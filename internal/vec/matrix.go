package vec

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense row-major matrix of float64.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix returns a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("vec: NewMatrix negative dimension %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// MatrixFromRows builds a matrix whose rows are copies of the given slices.
// All rows must have equal length.
func MatrixFromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	c := len(rows[0])
	m := NewMatrix(len(rows), c)
	for i, r := range rows {
		if len(r) != c {
			panic(fmt.Sprintf("vec: MatrixFromRows ragged row %d: %d != %d", i, len(r), c))
		}
		copy(m.Data[i*c:(i+1)*c], r)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.At(i, j)
	}
	return out
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Mul returns the matrix product m·b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("vec: Mul dimension mismatch %dx%d · %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		ri := m.Row(i)
		oi := out.Row(i)
		for k := 0; k < m.Cols; k++ {
			a := ri[k]
			if a == 0 {
				continue
			}
			bk := b.Row(k)
			for j := range oi {
				oi[j] += a * bk[j]
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m·v.
func (m *Matrix) MulVec(v []float64) []float64 {
	if m.Cols != len(v) {
		panic(fmt.Sprintf("vec: MulVec dimension mismatch %dx%d · %d", m.Rows, m.Cols, len(v)))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = Dot(m.Row(i), v)
	}
	return out
}

// AddScaled adds c·b into m in place (m += c·b) and returns m.
func (m *Matrix) AddScaled(b *Matrix, c float64) *Matrix {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic(fmt.Sprintf("vec: AddScaled dimension mismatch %dx%d vs %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	for i := range m.Data {
		m.Data[i] += c * b.Data[i]
	}
	return m
}

// Gram returns mᵀ·m, the Gram matrix of the columns of m.
// For a window matrix with rows = time samples and cols = sensors this is
// the (unnormalised) second-moment matrix of the sensor space.
func (m *Matrix) Gram() *Matrix {
	out := NewMatrix(m.Cols, m.Cols)
	for t := 0; t < m.Rows; t++ {
		r := m.Row(t)
		for i := 0; i < m.Cols; i++ {
			vi := r[i]
			if vi == 0 {
				continue
			}
			oi := out.Row(i)
			for j := i; j < m.Cols; j++ {
				oi[j] += vi * r[j]
			}
		}
	}
	// mirror the upper triangle
	for i := 0; i < m.Cols; i++ {
		for j := i + 1; j < m.Cols; j++ {
			out.Set(j, i, out.At(i, j))
		}
	}
	return out
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxOffDiagonal returns the largest |m[i][j]|, i != j, for a square matrix.
func (m *Matrix) MaxOffDiagonal() float64 {
	var mx float64
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if i == j {
				continue
			}
			if a := math.Abs(m.At(i, j)); a > mx {
				mx = a
			}
		}
	}
	return mx
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%9.4f", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
