// Package ws is a dependency-free RFC 6455 WebSocket transport for the
// AIMS middle tier, built so browser-resident immersive clients can speak
// the existing wire protocol end-to-end. A ws.Conn is a net.Conn over a
// WebSocket link: callers keep writing and reading the raw wire byte
// stream while the conn re-frames it into binary WebSocket messages.
//
// Framing contract: the write side parses the AIMS wire framing (uint32
// little-endian payload length + type byte + payload) out of the byte
// stream and ships every complete wire message as exactly one WebSocket
// binary message, so a browser client receives one protocol message per
// WebSocket event regardless of how the sender's bufio flush boundaries
// fell. WebSocket ping/pong frames are a link-level keepalive answered
// inside Read and invisible to the application; the wire protocol's v4
// MsgPing/MsgPong heartbeats ride above as ordinary data, because they
// probe the AIMS session (server-side liveness windows, parked-session
// sweeps), not the socket.
package ws

import (
	"bufio"
	"context"
	crand "crypto/rand"
	"crypto/sha1"
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"
)

// guid is the fixed handshake UUID of RFC 6455 §1.3.
const guid = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

// Frame opcodes (RFC 6455 §5.2).
const (
	opContinuation byte = 0x0
	opText         byte = 0x1
	opBinary       byte = 0x2
	opClose        byte = 0x8
	opPing         byte = 0x9
	opPong         byte = 0xA
)

const (
	finBit  = 0x80
	maskBit = 0x80
)

// MaxMessage bounds a single inbound WebSocket message payload: the wire
// protocol's MaxPayload (1<<24) plus framing slack. Anything larger is a
// broken or hostile peer, not AIMS traffic.
const MaxMessage = 1<<24 + 64

// maxWirePayload mirrors wire.MaxPayload; a length prefix beyond it means
// the outbound byte stream is not AIMS wire framing (see Conn.Write).
const maxWirePayload = 1 << 24

var errWriteClosed = errors.New("ws: write after close handshake")

// Conn is a net.Conn over one WebSocket link. Reads and writes may run
// concurrently (one reader, any writers — writes serialize on an internal
// mutex, matching net.Conn semantics), and the conn implements the
// transport capability methods CloseWrite/CloseRead/SetLinger so
// half-close-based protocols and the chaos proxy's RST lever keep working
// over WebSocket.
type Conn struct {
	raw    net.Conn
	br     *bufio.Reader
	client bool // mask outgoing frames (RFC 6455 §5.3)

	wmu       sync.Mutex
	out       []byte // assembled outbound frames; one raw.Write per call
	pend      []byte // outbound bytes awaiting a complete wire message
	aligned   bool   // pend still parses as wire framing
	closeSent bool
	rng       *rand.Rand // mask keys (client side only)

	rdbuf      []byte // unconsumed payload of the current inbound message
	frame      []byte // inbound frame scratch
	peerClosed bool   // peer sent Close; reads are EOF from here on
}

func newConn(raw net.Conn, br *bufio.Reader, client bool) *Conn {
	if br == nil {
		br = bufio.NewReaderSize(raw, 4<<10)
	}
	c := &Conn{raw: raw, br: br, client: client, aligned: true}
	if client {
		c.rng = rand.New(rand.NewSource(rand.Int63()))
	}
	return c
}

// wireMessageLen inspects the head of b for a complete AIMS wire message
// (uint32 LE payload length + 1 type byte + payload) and returns its total
// size, 0 if the head is still incomplete, or -1 if the prefix cannot be
// wire framing (claimed payload beyond the protocol bound).
func wireMessageLen(b []byte) int {
	if len(b) < 5 {
		return 0
	}
	n := binary.LittleEndian.Uint32(b)
	if n > maxWirePayload {
		return -1
	}
	total := 5 + int(n)
	if len(b) < total {
		return 0
	}
	return total
}

// Write appends p to the outbound byte stream. The stream is re-framed on
// AIMS wire-message boundaries: every complete wire message ships as one
// WebSocket binary message, with any incomplete tail held back until later
// writes complete it (the wire client and server always flush on message
// boundaries, so nothing is held back across a request/response turn). If
// the stream ever stops parsing as wire framing the conn degrades
// permanently to shipping each Write as one message — still a correct byte
// stream, just without the one-message-per-frame guarantee.
func (c *Conn) Write(p []byte) (int, error) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.closeSent {
		return 0, errWriteClosed
	}
	c.pend = append(c.pend, p...)
	c.out = c.out[:0]
	at := 0
	for c.aligned {
		n := wireMessageLen(c.pend[at:])
		if n == 0 {
			break
		}
		if n < 0 {
			c.aligned = false
			break
		}
		c.appendFrame(opBinary, c.pend[at:at+n])
		at += n
	}
	if !c.aligned && at < len(c.pend) {
		c.appendFrame(opBinary, c.pend[at:])
		at = len(c.pend)
	}
	c.pend = append(c.pend[:0], c.pend[at:]...)
	if len(c.out) > 0 {
		if _, err := c.raw.Write(c.out); err != nil {
			return 0, err
		}
	}
	return len(p), nil
}

// appendFrame appends one FIN frame carrying payload to the outbound
// buffer, masking client→server frames as the RFC requires.
func (c *Conn) appendFrame(op byte, payload []byte) {
	c.out = append(c.out, finBit|op)
	mask := byte(0)
	if c.client {
		mask = maskBit
	}
	n := len(payload)
	switch {
	case n < 126:
		c.out = append(c.out, mask|byte(n))
	case n < 1<<16:
		c.out = append(c.out, mask|126)
		c.out = binary.BigEndian.AppendUint16(c.out, uint16(n))
	default:
		c.out = append(c.out, mask|127)
		c.out = binary.BigEndian.AppendUint64(c.out, uint64(n))
	}
	if !c.client {
		c.out = append(c.out, payload...)
		return
	}
	var key [4]byte
	binary.BigEndian.PutUint32(key[:], c.rng.Uint32())
	c.out = append(c.out, key[:]...)
	off := len(c.out)
	c.out = append(c.out, payload...)
	body := c.out[off:]
	for i := range body {
		body[i] ^= key[i&3]
	}
}

// writeControl sends one control frame. A Close frame is sent at most
// once; after it the write side is down (reads stay open — see CloseWrite).
func (c *Conn) writeControl(op byte, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.closeSent {
		return nil
	}
	if op == opClose {
		c.closeSent = true
	}
	c.out = c.out[:0]
	c.appendFrame(op, payload)
	_, err := c.raw.Write(c.out)
	return err
}

// Read delivers the inbound byte stream: data message payloads in arrival
// order, with WebSocket control frames consumed transparently (pings are
// answered with pongs here; a peer Close surfaces as io.EOF while our
// write side stays usable so in-flight responses drain — the
// TCP-half-close analogue; the answering Close frame goes out when this
// side ends its own write half via Close or CloseWrite, mirroring a FIN).
func (c *Conn) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	for {
		if c.peerClosed && len(c.rdbuf) == 0 {
			return 0, io.EOF
		}
		if len(c.rdbuf) > 0 {
			n := copy(p, c.rdbuf)
			c.rdbuf = c.rdbuf[n:]
			return n, nil
		}
		op, payload, err := c.readFrame()
		if err != nil {
			return 0, err
		}
		switch op {
		case opBinary, opText, opContinuation:
			if len(payload) == 0 {
				continue
			}
			n := copy(p, payload)
			c.rdbuf = append(c.rdbuf[:0], payload[n:]...)
			return n, nil
		case opPing:
			if err := c.writeControl(opPong, payload); err != nil {
				return 0, err
			}
		case opPong:
			// Unsolicited pong: legal, ignored.
		case opClose:
			c.peerClosed = true
			return 0, io.EOF
		default:
			return 0, fmt.Errorf("ws: unknown opcode %#x", op)
		}
	}
}

// readFrame reads one frame, unmasking if needed. The payload aliases an
// internal scratch buffer valid until the next readFrame.
func (c *Conn) readFrame() (op byte, payload []byte, err error) {
	var h [2]byte
	if _, err := io.ReadFull(c.br, h[:]); err != nil {
		return 0, nil, err
	}
	op = h[0] & 0x0F
	fin := h[0]&finBit != 0
	masked := h[1]&maskBit != 0
	n := uint64(h[1] & 0x7F)
	switch n {
	case 126:
		var ext [2]byte
		if _, err := io.ReadFull(c.br, ext[:]); err != nil {
			return 0, nil, err
		}
		n = uint64(binary.BigEndian.Uint16(ext[:]))
	case 127:
		var ext [8]byte
		if _, err := io.ReadFull(c.br, ext[:]); err != nil {
			return 0, nil, err
		}
		n = binary.BigEndian.Uint64(ext[:])
	}
	if op >= opClose && (n > 125 || !fin) {
		return 0, nil, fmt.Errorf("ws: malformed control frame (op %#x, len %d, fin %v)", op, n, fin)
	}
	if n > MaxMessage {
		return 0, nil, fmt.Errorf("ws: frame of %d bytes exceeds the %d-byte bound", n, MaxMessage)
	}
	var key [4]byte
	if masked {
		if _, err := io.ReadFull(c.br, key[:]); err != nil {
			return 0, nil, err
		}
	}
	if uint64(cap(c.frame)) < n {
		c.frame = make([]byte, n)
	}
	payload = c.frame[:n]
	if _, err := io.ReadFull(c.br, payload); err != nil {
		return 0, nil, err
	}
	if masked {
		for i := range payload {
			payload[i] ^= key[i&3]
		}
	}
	return op, payload, nil
}

var closeNormal = []byte{0x03, 0xE8} // status 1000, normal closure

// Close sends a best-effort Close frame and closes the underlying conn.
func (c *Conn) Close() error {
	c.raw.SetWriteDeadline(time.Now().Add(time.Second))
	c.writeControl(opClose, closeNormal)
	return c.raw.Close()
}

// CloseWrite ends the write side only: the WebSocket Close frame goes out
// (and the underlying transport half-closes when it can) while reads stay
// open — the transport.CloseWriter capability the chaos proxy uses to
// drain in-flight responses after a clean client close.
func (c *Conn) CloseWrite() error {
	if err := c.writeControl(opClose, closeNormal); err != nil {
		return err
	}
	if cw, ok := c.raw.(interface{ CloseWrite() error }); ok {
		return cw.CloseWrite()
	}
	return nil
}

// CloseRead half-closes the read side of the underlying transport when it
// supports it (best-effort otherwise).
func (c *Conn) CloseRead() error {
	if cr, ok := c.raw.(interface{ CloseRead() error }); ok {
		return cr.CloseRead()
	}
	return nil
}

// SetLinger forwards to the underlying TCP conn when present — the chaos
// proxy's RST-on-accept lever (best-effort otherwise).
func (c *Conn) SetLinger(sec int) error {
	if l, ok := c.raw.(interface{ SetLinger(int) error }); ok {
		return l.SetLinger(sec)
	}
	return nil
}

func (c *Conn) LocalAddr() net.Addr                { return c.raw.LocalAddr() }
func (c *Conn) RemoteAddr() net.Addr               { return c.raw.RemoteAddr() }
func (c *Conn) SetDeadline(t time.Time) error      { return c.raw.SetDeadline(t) }
func (c *Conn) SetReadDeadline(t time.Time) error  { return c.raw.SetReadDeadline(t) }
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.raw.SetWriteDeadline(t) }

// acceptKey computes the Sec-WebSocket-Accept value for a client key
// (RFC 6455 §4.2.2 step 5.4: SHA-1 over key+GUID, base64).
func acceptKey(key string) string {
	h := sha1.New()
	io.WriteString(h, key)
	io.WriteString(h, guid)
	return base64.StdEncoding.EncodeToString(h.Sum(nil))
}

// tokenEq reports a case-insensitive header token match.
func tokenEq(h, want string) bool { return strings.EqualFold(strings.TrimSpace(h), want) }

// headerHasToken reports whether a comma-separated header value contains
// the token (Connection: keep-alive, Upgrade).
func headerHasToken(h, want string) bool {
	for _, part := range strings.Split(h, ",") {
		if tokenEq(part, want) {
			return true
		}
	}
	return false
}

// DefaultHandshakeTimeout bounds one server-side upgrade handshake.
const DefaultHandshakeTimeout = 10 * time.Second

// Listener upgrades connections accepted from an inner listener through
// the RFC 6455 HTTP/1.1 handshake and yields framed conns. Handshakes run
// concurrently under a deadline, so a slow or hostile client cannot
// head-of-line block Accept.
type Listener struct {
	inner   net.Listener
	path    string // "" accepts any request path
	timeout time.Duration

	conns chan net.Conn
	done  chan struct{} // closed by Close
	fail  chan struct{} // closed when the inner Accept loop exits
	err   error         // set before fail closes

	closeOnce sync.Once
}

// NewListener wraps an inner stream listener. path, when non-empty,
// restricts upgrades to that exact request path; anything else is
// answered 404.
func NewListener(inner net.Listener, path string) *Listener {
	l := &Listener{
		inner:   inner,
		path:    path,
		timeout: DefaultHandshakeTimeout,
		conns:   make(chan net.Conn, 16),
		done:    make(chan struct{}),
		fail:    make(chan struct{}),
	}
	go l.acceptLoop()
	return l
}

func (l *Listener) acceptLoop() {
	for {
		raw, err := l.inner.Accept()
		if err != nil {
			l.err = err
			close(l.fail)
			return
		}
		go l.upgrade(raw)
	}
}

// upgrade runs one handshake and delivers the framed conn to Accept.
func (l *Listener) upgrade(raw net.Conn) {
	raw.SetDeadline(time.Now().Add(l.timeout))
	br := bufio.NewReaderSize(raw, 4<<10)
	req, err := http.ReadRequest(br)
	if err != nil {
		raw.Close()
		return
	}
	key := req.Header.Get("Sec-WebSocket-Key")
	switch {
	case l.path != "" && req.URL.Path != l.path:
		refuse(raw, "404 Not Found")
		return
	case req.Method != http.MethodGet,
		!tokenEq(req.Header.Get("Upgrade"), "websocket"),
		!headerHasToken(req.Header.Get("Connection"), "upgrade"),
		req.Header.Get("Sec-WebSocket-Version") != "13",
		key == "":
		refuse(raw, "400 Bad Request")
		return
	}
	resp := "HTTP/1.1 101 Switching Protocols\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Accept: " + acceptKey(key) + "\r\n\r\n"
	if _, err := io.WriteString(raw, resp); err != nil {
		raw.Close()
		return
	}
	raw.SetDeadline(time.Time{})
	select {
	case l.conns <- newConn(raw, br, false):
	case <-l.done:
		raw.Close()
	}
}

func refuse(raw net.Conn, status string) {
	io.WriteString(raw, "HTTP/1.1 "+status+"\r\nConnection: close\r\n\r\n")
	raw.Close()
}

// Accept returns the next upgraded connection.
func (l *Listener) Accept() (net.Conn, error) {
	select {
	case c := <-l.conns:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	case <-l.fail:
		// Drain any handshake that completed in the gap before reporting
		// the inner listener's failure.
		select {
		case c := <-l.conns:
			return c, nil
		default:
		}
		return nil, l.err
	}
}

// Addr returns the inner listener's bound address.
func (l *Listener) Addr() net.Addr { return l.inner.Addr() }

// Close stops the listener; pending handshakes are abandoned.
func (l *Listener) Close() error {
	err := errors.New("ws: listener already closed")
	l.closeOnce.Do(func() {
		close(l.done)
		err = l.inner.Close()
	})
	return err
}

// Dial opens a WebSocket client connection to host:port and completes the
// upgrade handshake on path (default "/"). The context bounds the TCP
// connect and the handshake together.
func Dial(ctx context.Context, addr, path string) (net.Conn, error) {
	var d net.Dialer
	raw, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	c, err := Client(ctx, raw, addr, path)
	if err != nil {
		raw.Close()
		return nil, err
	}
	return c, nil
}

// Client runs the client side of the upgrade handshake over an
// already-established conn (exposed so tests and benchmarks can interpose
// byte-counting or fault-injecting conns below the WebSocket framing).
func Client(ctx context.Context, raw net.Conn, host, path string) (net.Conn, error) {
	if path == "" {
		path = "/"
	}
	if dl, ok := ctx.Deadline(); ok {
		raw.SetDeadline(dl)
		defer raw.SetDeadline(time.Time{})
	}
	var nonce [16]byte
	if _, err := crand.Read(nonce[:]); err != nil {
		return nil, fmt.Errorf("ws: handshake nonce: %w", err)
	}
	key := base64.StdEncoding.EncodeToString(nonce[:])
	req := "GET " + path + " HTTP/1.1\r\n" +
		"Host: " + host + "\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Key: " + key + "\r\n" +
		"Sec-WebSocket-Version: 13\r\n\r\n"
	if _, err := io.WriteString(raw, req); err != nil {
		return nil, err
	}
	br := bufio.NewReaderSize(raw, 4<<10)
	resp, err := http.ReadResponse(br, nil)
	if err != nil {
		return nil, fmt.Errorf("ws: reading upgrade response: %w", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusSwitchingProtocols {
		return nil, fmt.Errorf("ws: upgrade refused: %s", resp.Status)
	}
	if !tokenEq(resp.Header.Get("Upgrade"), "websocket") {
		return nil, fmt.Errorf("ws: server did not upgrade (Upgrade: %q)", resp.Header.Get("Upgrade"))
	}
	if got := resp.Header.Get("Sec-WebSocket-Accept"); got != acceptKey(key) {
		return nil, fmt.Errorf("ws: bad Sec-WebSocket-Accept %q", got)
	}
	return newConn(raw, br, true), nil
}
