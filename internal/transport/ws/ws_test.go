package ws

import (
	"bytes"
	"context"
	"encoding/binary"
	"io"
	"net"
	"strings"
	"testing"
	"time"
)

// pair stands up a real loopback listener and returns an upgraded
// client/server conn pair.
func pair(t *testing.T) (client, server net.Conn) {
	t.Helper()
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	l := NewListener(inner, "")
	t.Cleanup(func() { l.Close() })

	done := make(chan error, 1)
	go func() {
		var err error
		server, err = l.Accept()
		done <- err
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	client, err = Dial(ctx, inner.Addr().String(), "/")
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close(); server.Close() })
	return client, server
}

// wireMsg builds one AIMS-framed wire message (u32 LE payload length +
// type byte + payload) so the alignment logic sees real framing.
func wireMsg(typ byte, payload []byte) []byte {
	b := binary.LittleEndian.AppendUint32(nil, uint32(len(payload)))
	b = append(b, typ)
	return append(b, payload...)
}

func TestAcceptKeyRFCExample(t *testing.T) {
	// The worked example from RFC 6455 §1.3.
	got := acceptKey("dGhlIHNhbXBsZSBub25jZQ==")
	if want := "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="; got != want {
		t.Fatalf("acceptKey = %q, want %q", got, want)
	}
}

func TestRoundTripBothDirections(t *testing.T) {
	c, s := pair(t)
	for i, conns := range [][2]net.Conn{{c, s}, {s, c}} {
		src, dst := conns[0], conns[1]
		msg := wireMsg(byte(i+1), []byte("hello immersidata"))
		if _, err := src.Write(msg); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(msg))
		if _, err := io.ReadFull(dst, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("direction %d: got % x, want % x", i, got, msg)
		}
	}
}

// TestWriteCoalescesWireMessages feeds one wire message split across many
// Writes and two wire messages in one Write: the peer must receive exactly
// one WebSocket message per wire message either way.
func TestWriteCoalescesWireMessages(t *testing.T) {
	c, s := pair(t)
	big := wireMsg(2, bytes.Repeat([]byte{0xAB}, 300))
	for i := 0; i < len(big); i += 7 {
		end := i + 7
		if end > len(big) {
			end = len(big)
		}
		if _, err := c.Write(big[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	m1 := wireMsg(3, []byte("first"))
	m2 := wireMsg(4, []byte("second"))
	if _, err := c.Write(append(append([]byte{}, m1...), m2...)); err != nil {
		t.Fatal(err)
	}

	sc := s.(*Conn)
	for i, want := range [][]byte{big, m1, m2} {
		op, payload, err := sc.readFrame()
		if err != nil {
			t.Fatal(err)
		}
		if op != opBinary {
			t.Fatalf("message %d: opcode %#x, want binary", i, op)
		}
		if !bytes.Equal(payload, want) {
			t.Fatalf("message %d: got %d bytes, want %d (one wire message per WS message)", i, len(payload), len(want))
		}
	}
}

// TestClientFramesAreMasked sniffs the raw bytes a client writes: the
// payload must not appear in cleartext (RFC 6455 §5.3 requires client
// masking), and the mask bit must be set.
func TestClientFramesAreMasked(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	cc := newConn(a, nil, true)
	payload := []byte("immersidata-in-the-clear")
	msg := wireMsg(9, payload)

	raw := make(chan []byte, 1)
	go func() {
		buf := make([]byte, 1024)
		n, _ := b.Read(buf)
		raw <- buf[:n]
	}()
	if _, err := cc.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := <-raw
	if len(got) < 2 || got[1]&maskBit == 0 {
		t.Fatalf("client frame not masked: header % x", got[:2])
	}
	if bytes.Contains(got, payload) {
		t.Fatal("client payload appeared unmasked on the wire")
	}
}

// TestServerAnswersPing writes a raw Ping frame from the client side; the
// server's Read loop must answer with a Pong carrying the same payload,
// without surfacing anything to the application.
func TestServerAnswersPing(t *testing.T) {
	c, s := pair(t)
	cc := c.(*Conn)
	if err := cc.writeControl(opPing, []byte("ka")); err != nil {
		t.Fatal(err)
	}
	// Give the server's Read something to return after the ping.
	data := wireMsg(1, []byte("after-ping"))
	if _, err := c.Write(data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	done := make(chan error, 1)
	go func() {
		_, err := io.ReadFull(s, got)
		done <- err
	}()
	// The client should now see the pong.
	op, payload, err := cc.readFrame()
	if err != nil {
		t.Fatal(err)
	}
	if op != opPong || string(payload) != "ka" {
		t.Fatalf("got op %#x payload %q, want pong %q", op, payload, "ka")
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data after ping corrupted")
	}
}

// TestCloseHandshake: Close on one side surfaces io.EOF on the other, and
// the closing side's write path refuses further writes.
func TestCloseHandshake(t *testing.T) {
	c, s := pair(t)
	if err := c.(*Conn).CloseWrite(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("peer read after close = %v, want io.EOF", err)
	}
	if _, err := c.Write(wireMsg(1, nil)); err == nil {
		t.Fatal("write after CloseWrite succeeded")
	}
}

// TestHalfCloseDrainsResponses is the transport.CloseWriter contract the
// chaos proxy leans on: after the client half-closes, the server can
// still write and the client can still read.
func TestHalfCloseDrainsResponses(t *testing.T) {
	c, s := pair(t)
	if err := c.(*Conn).CloseWrite(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("server read = %v, want io.EOF", err)
	}
	reply := wireMsg(7, []byte("draining reply"))
	if _, err := s.Write(reply); err != nil {
		t.Fatalf("server write after peer half-close: %v", err)
	}
	got := make([]byte, len(reply))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, reply) {
		t.Fatal("reply corrupted across half-close")
	}
}

// TestFragmentedMessageReassembles hand-crafts a fragmented data message
// (FIN clear + continuation): the byte stream must come out intact.
func TestFragmentedMessageReassembles(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	sc := newConn(b, nil, false)

	frame := func(fin bool, op byte, payload []byte) []byte {
		h := byte(op)
		if fin {
			h |= finBit
		}
		return append([]byte{h, byte(len(payload))}, payload...)
	}
	go func() {
		a.Write(frame(false, opBinary, []byte("im")))
		a.Write(frame(false, opContinuation, []byte("mersi")))
		a.Write(frame(true, opContinuation, []byte("data")))
	}()
	got := make([]byte, 11)
	if _, err := io.ReadFull(sc, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "immersidata" {
		t.Fatalf("reassembled %q", got)
	}
}

// TestDegradedByteStreamStillDelivers writes bytes that are not wire
// framing: the conn must fall back to shipping them as-is.
func TestDegradedByteStreamStillDelivers(t *testing.T) {
	c, s := pair(t)
	junk := bytes.Repeat([]byte{0xFF}, 64) // 0xFFFFFFFF length prefix: implausible
	if _, err := c.Write(junk); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(junk))
	if _, err := io.ReadFull(s, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, junk) {
		t.Fatal("degraded stream corrupted")
	}
}

func TestListenerRejectsBadHandshakes(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	l := NewListener(inner, "/aims")
	defer l.Close()

	send := func(req string) string {
		raw, err := net.Dial("tcp", inner.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer raw.Close()
		raw.SetDeadline(time.Now().Add(2 * time.Second))
		io.WriteString(raw, req)
		resp, _ := io.ReadAll(raw)
		return string(resp)
	}
	base := "Host: x\r\nUpgrade: websocket\r\nConnection: Upgrade\r\nSec-WebSocket-Key: AQIDBAUGBwgJCgsMDQ4PEA==\r\n"
	if got := send("GET /nope HTTP/1.1\r\n" + base + "Sec-WebSocket-Version: 13\r\n\r\n"); !strings.Contains(got, "404") {
		t.Fatalf("wrong path accepted: %q", got)
	}
	if got := send("GET /aims HTTP/1.1\r\n" + base + "Sec-WebSocket-Version: 12\r\n\r\n"); !strings.Contains(got, "400") {
		t.Fatalf("wrong version accepted: %q", got)
	}
	if got := send("POST /aims HTTP/1.1\r\n" + base + "Sec-WebSocket-Version: 13\r\n\r\n"); !strings.Contains(got, "400") {
		t.Fatalf("wrong method accepted: %q", got)
	}
	// A well-formed handshake on the right path must still work.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	ok, err := Dial(ctx, inner.Addr().String(), "/aims")
	if err != nil {
		t.Fatal(err)
	}
	ok.Close()
}

// TestLargeMessage pushes one max-ish wire message through (1 MiB): the
// 64-bit extended length path on both sides.
func TestLargeMessage(t *testing.T) {
	c, s := pair(t)
	payload := make([]byte, 1<<20)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	msg := wireMsg(2, payload)
	go func() {
		c.Write(msg)
	}()
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(s, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("large message corrupted")
	}
}
