// Package transport decouples the AIMS middle tier from any single byte
// transport. Endpoints are strings — "tcp://host:port", "ws://host:port
// [/path]", or a bare "host:port" (TCP, the historical form) — and every
// layer above (wire clients, the server accept loop, the chaos fault
// proxy, the cmd tools) listens and dials through this package, so adding
// a transport (QUIC next) means adding a scheme here, not surgery there.
//
// Conns are plain net.Conn byte streams regardless of transport; framing
// concerns (WebSocket messages, and later QUIC streams) live inside the
// transport's conn. Optional conn capabilities — half-close and linger —
// are expressed as interfaces with best-effort helpers instead of
// *net.TCPConn type assertions, so fault injection and graceful-drain
// logic compose with any transport that can honour them.
package transport

import (
	"context"
	"fmt"
	"net"
	"strings"

	"aims/internal/transport/ws"
)

// Endpoint is one parsed transport endpoint.
type Endpoint struct {
	Scheme string // "tcp" or "ws"
	Host   string // host:port
	Path   string // ws only: upgrade path ("" = any on listen, "/" on dial)
}

// String renders the endpoint in its dialable form; plain TCP endpoints
// stay bare host:port for compatibility with pre-transport callers.
func (e Endpoint) String() string {
	if e.Scheme == "" || e.Scheme == "tcp" {
		return e.Host
	}
	return e.Scheme + "://" + e.Host + e.Path
}

// ParseEndpoint parses "tcp://host:port", "ws://host:port[/path]" or a
// bare "host:port" (TCP).
func ParseEndpoint(s string) (Endpoint, error) {
	if s == "" {
		return Endpoint{}, fmt.Errorf("transport: empty endpoint")
	}
	scheme, rest, found := strings.Cut(s, "://")
	if !found {
		return Endpoint{Scheme: "tcp", Host: s}, nil
	}
	switch scheme {
	case "tcp":
		if strings.Contains(rest, "/") {
			return Endpoint{}, fmt.Errorf("transport: tcp endpoint %q must not carry a path", s)
		}
		return Endpoint{Scheme: "tcp", Host: rest}, nil
	case "ws":
		host, path, hasPath := strings.Cut(rest, "/")
		ep := Endpoint{Scheme: "ws", Host: host}
		if hasPath {
			ep.Path = "/" + path
		}
		if ep.Host == "" {
			return Endpoint{}, fmt.Errorf("transport: ws endpoint %q has no host", s)
		}
		return ep, nil
	default:
		return Endpoint{}, fmt.Errorf("transport: unknown scheme %q in %q (want tcp or ws)", scheme, s)
	}
}

// Addr decorates a non-TCP listener's bound address with its scheme, so
// Addr().String() is directly dialable through Dial.
type Addr struct {
	Scheme string
	Inner  net.Addr
}

func (a Addr) Network() string { return a.Scheme }
func (a Addr) String() string  { return a.Scheme + "://" + a.Inner.String() }

// schemeListener stamps the transport scheme onto the bound address.
type schemeListener struct {
	net.Listener
	scheme string
}

func (l schemeListener) Addr() net.Addr { return Addr{Scheme: l.scheme, Inner: l.Listener.Addr()} }

// Listen opens a server listener on an endpoint. The returned listener's
// Addr().String() is directly dialable (scheme included for non-TCP
// transports), which is how tests and the chaos proxy advertise
// ephemeral-port endpoints.
func Listen(endpoint string) (net.Listener, error) {
	ep, err := ParseEndpoint(endpoint)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", ep.Host)
	if err != nil {
		return nil, err
	}
	if ep.Scheme == "ws" {
		return schemeListener{Listener: ws.NewListener(ln, ep.Path), scheme: "ws"}, nil
	}
	return ln, nil
}

// Dialer opens client connections to AIMS endpoints. Inject one into
// wire.ResilientClient to re-dial over any transport, or to fault-inject
// and instrument dialing in tests.
type Dialer interface {
	DialContext(ctx context.Context, endpoint string) (net.Conn, error)
}

// Net is the default dialer: it dispatches on the endpoint's scheme.
var Net Dialer = netDialer{}

type netDialer struct{}

func (netDialer) DialContext(ctx context.Context, endpoint string) (net.Conn, error) {
	ep, err := ParseEndpoint(endpoint)
	if err != nil {
		return nil, err
	}
	if ep.Scheme == "ws" {
		return ws.Dial(ctx, ep.Host, ep.Path)
	}
	var d net.Dialer
	return d.DialContext(ctx, "tcp", ep.Host)
}

// Dial connects to an endpoint with no connect bound.
func Dial(endpoint string) (net.Conn, error) {
	return Net.DialContext(context.Background(), endpoint)
}

// DialContext connects to an endpoint; the context bounds the connect and
// any transport handshake.
func DialContext(ctx context.Context, endpoint string) (net.Conn, error) {
	return Net.DialContext(ctx, endpoint)
}

// CloseWriter is the half-close-writes capability. *net.TCPConn and
// *ws.Conn both implement it.
type CloseWriter interface{ CloseWrite() error }

// CloseReader is the half-close-reads capability.
type CloseReader interface{ CloseRead() error }

// Lingerer is the SO_LINGER capability (SetLinger(0) turns close into an
// RST — the chaos proxy's reset lever).
type Lingerer interface{ SetLinger(sec int) error }

// CloseWrite half-closes the write side when the conn supports it and
// reports whether the half-close happened; callers choose their own
// fallback (the chaos proxy falls back to a full close).
func CloseWrite(c net.Conn) bool {
	cw, ok := c.(CloseWriter)
	return ok && cw.CloseWrite() == nil
}

// CloseRead half-closes the read side when the conn supports it.
func CloseRead(c net.Conn) bool {
	cr, ok := c.(CloseReader)
	return ok && cr.CloseRead() == nil
}

// SetLinger applies SO_LINGER when the conn supports it.
func SetLinger(c net.Conn, sec int) bool {
	lg, ok := c.(Lingerer)
	return ok && lg.SetLinger(sec) == nil
}
