package transport

import (
	"bytes"
	"context"
	"io"
	"net"
	"testing"
	"time"
)

func TestParseEndpoint(t *testing.T) {
	cases := []struct {
		in   string
		want Endpoint
		err  bool
	}{
		{in: "127.0.0.1:7009", want: Endpoint{Scheme: "tcp", Host: "127.0.0.1:7009"}},
		{in: "tcp://127.0.0.1:7009", want: Endpoint{Scheme: "tcp", Host: "127.0.0.1:7009"}},
		{in: "ws://127.0.0.1:7010", want: Endpoint{Scheme: "ws", Host: "127.0.0.1:7010"}},
		{in: "ws://127.0.0.1:7010/aims", want: Endpoint{Scheme: "ws", Host: "127.0.0.1:7010", Path: "/aims"}},
		{in: ":7009", want: Endpoint{Scheme: "tcp", Host: ":7009"}},
		{in: "", err: true},
		{in: "quic://127.0.0.1:7011", err: true},
		{in: "tcp://127.0.0.1:7009/path", err: true},
		{in: "ws:///aims", err: true},
	}
	for _, c := range cases {
		got, err := ParseEndpoint(c.in)
		if c.err {
			if err == nil {
				t.Errorf("ParseEndpoint(%q): expected error, got %+v", c.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseEndpoint(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseEndpoint(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

// TestListenDialRoundTrip exercises the scheme dispatch end-to-end: the
// listener's advertised Addr().String() must be directly dialable, and
// the conn must carry bytes both ways, over both transports.
func TestListenDialRoundTrip(t *testing.T) {
	for _, scheme := range []string{"tcp", "ws"} {
		t.Run(scheme, func(t *testing.T) {
			ln, err := Listen(scheme + "://127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer ln.Close()
			if scheme == "ws" {
				if got := ln.Addr().String(); len(got) < 5 || got[:5] != "ws://" {
					t.Fatalf("ws listener advertises %q, want ws:// prefix", got)
				}
			}
			accepted := make(chan net.Conn, 1)
			go func() {
				c, err := ln.Accept()
				if err != nil {
					t.Error(err)
					accepted <- nil
					return
				}
				accepted <- c
			}()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			c, err := DialContext(ctx, ln.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			s := <-accepted
			if s == nil {
				t.FailNow()
			}
			defer s.Close()

			// A wire-framed message survives the round trip verbatim.
			msg := append([]byte{5, 0, 0, 0, 9}, []byte("hello")...)
			if _, err := c.Write(msg); err != nil {
				t.Fatal(err)
			}
			got := make([]byte, len(msg))
			if _, err := io.ReadFull(s, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, msg) {
				t.Fatalf("round trip corrupted: % x", got)
			}

			// Both transports must offer the capability set the middle
			// tier depends on.
			for name, ok := range map[string]bool{
				"CloseWriter": func() bool { _, ok := c.(CloseWriter); return ok }(),
				"CloseReader": func() bool { _, ok := c.(CloseReader); return ok }(),
				"Lingerer":    func() bool { _, ok := c.(Lingerer); return ok }(),
			} {
				if !ok {
					t.Errorf("%s conn lacks %s", scheme, name)
				}
			}

			// Half-close drains: after CloseWrite the server sees EOF but
			// its reply still reaches the client.
			if !CloseWrite(c) {
				t.Fatal("CloseWrite failed")
			}
			if _, err := s.Read(make([]byte, 1)); err != io.EOF {
				t.Fatalf("server read after half-close = %v, want EOF", err)
			}
			reply := append([]byte{2, 0, 0, 0, 7}, []byte("ok")...)
			if _, err := s.Write(reply); err != nil {
				t.Fatalf("reply after half-close: %v", err)
			}
			back := make([]byte, len(reply))
			if _, err := io.ReadFull(c, back); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(back, reply) {
				t.Fatal("reply corrupted across half-close")
			}
		})
	}
}

func TestDialContextHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// TEST-NET-1 address: unroutable, so only the context can end the dial
	// quickly. The point is that cancellation is respected at all.
	start := time.Now()
	if _, err := DialContext(ctx, "tcp://192.0.2.1:9"); err == nil {
		t.Fatal("dial to unroutable address with cancelled context succeeded")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("cancelled dial did not return promptly")
	}
}
