package svdstream

import "math"

// DTWDistance is dynamic time warping over multi-channel frame sequences —
// the similarity-search-for-time-warped-subsequences line of related work
// (§3.4.2, Park et al.). It aligns sequences of different lengths by a
// monotone warping path and is the strongest classical baseline for
// variable-duration motions, at O(len(a)·len(b)) per comparison (versus
// the SVD signature's O(len)·d² + d³ once per window).
//
// window is the Sakoe–Chiba band half-width in ticks (≤ 0 = unconstrained).
func DTWDistance(a, b [][]float64, window int) float64 {
	na, nb := len(a), len(b)
	if na == 0 || nb == 0 {
		return math.Inf(1)
	}
	if window <= 0 {
		window = maxInt2(na, nb)
	}
	// Ensure the band can reach the corner.
	if diff := nb - na; diff < 0 {
		diff = -diff
		if window < diff {
			window = diff
		}
	} else if window < diff {
		window = diff
	}

	const inf = math.MaxFloat64
	prev := make([]float64, nb+1)
	cur := make([]float64, nb+1)
	for j := range prev {
		prev[j] = inf
	}
	prev[0] = 0
	for i := 1; i <= na; i++ {
		for j := range cur {
			cur[j] = inf
		}
		lo := i - window
		if lo < 1 {
			lo = 1
		}
		hi := i + window
		if hi > nb {
			hi = nb
		}
		for j := lo; j <= hi; j++ {
			c := frameDelta(a[i-1], b[j-1])
			best := prev[j] // insertion
			if prev[j-1] < best {
				best = prev[j-1] // match
			}
			if cur[j-1] < best {
				best = cur[j-1] // deletion
			}
			if best == inf {
				continue
			}
			cur[j] = c + best
		}
		prev, cur = cur, prev
	}
	total := prev[nb]
	if total == inf {
		return math.Inf(1)
	}
	// Normalise by path length so short sequences are not favoured.
	return math.Sqrt(total / float64(na+nb))
}

func maxInt2(a, b int) int {
	if a > b {
		return a
	}
	return b
}
