package svdstream

import (
	"math"
	"math/rand"
	"testing"

	"aims/internal/synth"
)

func TestPairAUCKnownValues(t *testing.T) {
	// Perfect separation.
	if got := pairAUC([]float64{1, 2}, []float64{5, 6}); got != 1 {
		t.Fatalf("perfect AUC = %v", got)
	}
	// Perfectly wrong.
	if got := pairAUC([]float64{5, 6}, []float64{1, 2}); got != 0 {
		t.Fatalf("inverted AUC = %v", got)
	}
	// All tied.
	if got := pairAUC([]float64{3, 3}, []float64{3, 3}); got != 0.5 {
		t.Fatalf("tied AUC = %v", got)
	}
	// Empty population.
	if got := pairAUC(nil, []float64{1}); got != 0.5 {
		t.Fatalf("empty AUC = %v", got)
	}
	// Interleaved: same {1,3}, cross {2,4} → pairs: (1,2)✓ (1,4)✓ (3,2)✗ (3,4)✓ → 0.75.
	if got := pairAUC([]float64{1, 3}, []float64{2, 4}); got != 0.75 {
		t.Fatalf("interleaved AUC = %v", got)
	}
}

func TestPairAUCMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		same := make([]float64, 1+rng.Intn(30))
		cross := make([]float64, 1+rng.Intn(30))
		for i := range same {
			same[i] = math.Floor(rng.Float64() * 10)
		}
		for i := range cross {
			cross[i] = math.Floor(rng.Float64() * 10)
		}
		var wins, ties float64
		for _, s := range same {
			for _, c := range cross {
				switch {
				case s < c:
					wins++
				case s == c:
					ties++
				}
			}
		}
		want := (wins + ties/2) / float64(len(same)*len(cross))
		sc := append([]float64(nil), same...)
		cc := append([]float64(nil), cross...)
		if got := pairAUC(sc, cc); math.Abs(got-want) > 1e-12 {
			t.Fatalf("trial %d: %v vs brute %v", trial, got, want)
		}
	}
}

func TestEffectivenessRanksMeasuresSanely(t *testing.T) {
	vocab := synth.Vocabulary(5, 31)
	rng := rand.New(rand.NewSource(32))
	var segs []LabeledSegment
	for _, s := range vocab {
		for k := 0; k < 4; k++ {
			segs = append(segs, LabeledSegment{
				Name:   s.Name,
				Frames: s.Render(0.8+0.1*float64(k), 0.5, rng),
			})
		}
	}
	svdAUC := Effectiveness(segs, SVDDistance(6))
	if svdAUC < 0.95 {
		t.Fatalf("SVD effectiveness %v on easy vocabulary", svdAUC)
	}
	// A broken measure (constant distance) sits at chance.
	flat := Effectiveness(segs, func(a, b [][]float64) float64 { return 1 })
	if flat != 0.5 {
		t.Fatalf("constant measure AUC %v, want 0.5", flat)
	}
	// A random measure hovers near chance.
	rr := rand.New(rand.NewSource(33))
	random := Effectiveness(segs, func(a, b [][]float64) float64 { return rr.Float64() })
	if random < 0.3 || random > 0.7 {
		t.Fatalf("random measure AUC %v", random)
	}
}
