package svdstream

import (
	"fmt"
	"math"

	"aims/internal/vec"
)

// Incremental maintains the SVD signature of a sliding window of frames
// with rank-1 second-moment updates and warm-started Jacobi sweeps —
// "computation of SVD utilizing results that have already been computed in
// the earlier steps" (§3.4.1).
type Incremental struct {
	dims int
	cap  int
	buf  [][]float64
	head int
	size int
	gram *vec.Matrix

	prevVectors *vec.Matrix
	dirty       bool
	cached      Signature
}

// NewIncremental creates a sliding-window signature tracker for the given
// frame dimensionality and window capacity.
func NewIncremental(dims, capacity int) *Incremental {
	if dims <= 0 || capacity <= 0 {
		panic(fmt.Sprintf("svdstream: incremental dims=%d capacity=%d", dims, capacity))
	}
	return &Incremental{
		dims: dims,
		cap:  capacity,
		buf:  make([][]float64, capacity),
		gram: vec.NewMatrix(dims, dims),
	}
}

// Len returns the number of frames currently in the window.
func (inc *Incremental) Len() int { return inc.size }

// Full reports whether the window is at capacity.
func (inc *Incremental) Full() bool { return inc.size == inc.cap }

// Push adds a frame, evicting the oldest when full; the second-moment
// matrix is updated with one rank-1 addition (and one subtraction on
// eviction) instead of being rebuilt.
func (inc *Incremental) Push(frame []float64) {
	if len(frame) != inc.dims {
		panic(fmt.Sprintf("svdstream: frame dims %d != %d", len(frame), inc.dims))
	}
	if inc.size == inc.cap {
		old := inc.buf[inc.head]
		rank1(inc.gram, old, -1)
	} else {
		inc.size++
	}
	stored := append([]float64(nil), frame...)
	inc.buf[inc.head] = stored
	inc.head = (inc.head + 1) % inc.cap
	rank1(inc.gram, stored, +1)
	inc.dirty = true
}

func rank1(g *vec.Matrix, x []float64, sign float64) {
	for i := range x {
		if x[i] == 0 {
			continue
		}
		gi := g.Row(i)
		s := sign * x[i]
		for j := range x {
			gi[j] += s * x[j]
		}
	}
}

// Signature returns the current window's signature, warm-starting the
// eigensolver from the previous call's rotation.
func (inc *Incremental) Signature() Signature {
	if !inc.dirty && inc.cached.Vectors != nil {
		return inc.cached
	}
	eig := vec.SymEigenWarm(inc.gram, inc.prevVectors)
	vals := make([]float64, len(eig.Values))
	for i, l := range eig.Values {
		if l < 0 {
			l = 0
		}
		vals[i] = math.Sqrt(l)
	}
	inc.prevVectors = eig.Vectors
	inc.cached = Signature{Vectors: eig.Vectors, Values: vals}
	inc.dirty = false
	return inc.cached
}

// Energy returns the trace of the second-moment matrix — total signal
// energy in the window, used by the recogniser's rest detector.
func (inc *Incremental) Energy() float64 {
	var tr float64
	for i := 0; i < inc.dims; i++ {
		tr += inc.gram.At(i, i)
	}
	return tr
}

// Reset empties the window.
func (inc *Incremental) Reset() {
	inc.size, inc.head = 0, 0
	inc.gram = vec.NewMatrix(inc.dims, inc.dims)
	inc.dirty = true
	inc.prevVectors = nil
	inc.cached = Signature{}
}
