package svdstream

import (
	"testing"

	"aims/internal/synth"
)

// TestRecognizerRejectsOutOfVocabulary streams a session containing signs
// from a vocabulary the recogniser was never shown; with RejectBelow set,
// those motions must mostly come back as Unknown while in-vocabulary signs
// keep being recognised.
func TestRecognizerRejectsOutOfVocabulary(t *testing.T) {
	known := synth.Vocabulary(6, 501)
	foreign := synth.Vocabulary(6, 777) // disjoint seed ⇒ different signs
	templates := makeTemplates(known, 502)

	run := func(vocab []synth.Sign, seed int64) (named, unknown int) {
		frames, _ := synth.SignStream(vocab, synth.StreamOptions{
			Count: 15, Noise: 0.4, DurJitter: 0.25, GapTicks: 80, Seed: seed,
		})
		r := NewRecognizer(templates, RecognizerConfig{
			Dims:          synth.SignDims,
			RestThreshold: CalibrateRest(frames[:20]),
			RejectBelow:   0.8,
		})
		for tick, fr := range frames {
			if d := r.Feed(tick, fr); d != nil {
				if d.Name == Unknown {
					unknown++
				} else {
					named++
				}
			}
		}
		if d := r.Flush(len(frames)); d != nil {
			if d.Name == Unknown {
				unknown++
			} else {
				named++
			}
		}
		return named, unknown
	}

	inNamed, inUnknown := run(known, 503)
	outNamed, outUnknown := run(foreign, 504)

	if inNamed < 10 {
		t.Fatalf("in-vocab: only %d named (%d unknown) — rejection too aggressive", inNamed, inUnknown)
	}
	if outUnknown <= outNamed {
		t.Fatalf("out-of-vocab: %d named vs %d unknown — rejection ineffective", outNamed, outUnknown)
	}
}
