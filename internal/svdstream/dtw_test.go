package svdstream

import (
	"math"
	"math/rand"
	"testing"

	"aims/internal/synth"
)

func TestDTWIdenticalSequencesZero(t *testing.T) {
	a := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	if d := DTWDistance(a, a, 0); d != 0 {
		t.Fatalf("self distance %v", d)
	}
}

func TestDTWEmptyIsInfinite(t *testing.T) {
	if d := DTWDistance(nil, [][]float64{{1}}, 0); !math.IsInf(d, 1) {
		t.Fatalf("empty = %v", d)
	}
}

func TestDTWHandlesTimeWarp(t *testing.T) {
	// The same trajectory at half speed should be near-zero under DTW but
	// large under truncating Euclidean.
	fast := make([][]float64, 40)
	slow := make([][]float64, 80)
	for i := range fast {
		fast[i] = []float64{math.Sin(float64(i) / 6)}
	}
	for i := range slow {
		slow[i] = []float64{math.Sin(float64(i) / 12)}
	}
	dtw := DTWDistance(fast, slow, 0)
	euc := EuclideanDistance(fast, slow)
	if dtw > euc/4 {
		t.Fatalf("DTW %v should absorb warping far better than Euclid %v", dtw, euc)
	}
}

func TestDTWSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := make([][]float64, 20)
	b := make([][]float64, 33)
	for i := range a {
		a[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
	}
	for i := range b {
		b[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
	}
	d1 := DTWDistance(a, b, 0)
	d2 := DTWDistance(b, a, 0)
	if math.Abs(d1-d2) > 1e-9 {
		t.Fatalf("asymmetric: %v vs %v", d1, d2)
	}
}

func TestDTWBandConstraint(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := make([][]float64, 50)
	b := make([][]float64, 50)
	for i := range a {
		a[i] = []float64{rng.NormFloat64()}
		b[i] = []float64{rng.NormFloat64()}
	}
	// A tight band restricts warping, so the distance cannot decrease.
	wide := DTWDistance(a, b, 0)
	tight := DTWDistance(a, b, 2)
	if tight+1e-9 < wide {
		t.Fatalf("band widened the match: tight %v < wide %v", tight, wide)
	}
	// Unequal lengths with a tiny band must still reach the corner.
	c := b[:30]
	if d := DTWDistance(a, c, 1); math.IsInf(d, 1) {
		t.Fatal("band failed to reach the corner")
	}
}

func TestDTWRecognisesSigns(t *testing.T) {
	vocab := synth.Vocabulary(6, 9)
	rng := rand.New(rand.NewSource(10))
	refs := make(map[string][][]float64, len(vocab))
	for _, s := range vocab {
		refs[s.Name] = s.Render(1, 0, rng)
	}
	dist := func(a, b [][]float64) float64 { return DTWDistance(a, b, 20) }
	correct, trials := 0, 0
	for _, s := range vocab {
		for k := 0; k < 3; k++ {
			seg := s.Render(0.7+0.3*float64(k), 0.4, rng)
			if NearestTemplate(seg, refs, dist) == s.Name {
				correct++
			}
			trials++
		}
	}
	if correct*5 < trials*4 {
		t.Fatalf("DTW recognition %d/%d", correct, trials)
	}
}
