package svdstream

import (
	"fmt"
	"math"
	"math/rand"

	"aims/internal/vec"
)

// Random-projection dimension reduction (§3.3.1 lists "dimension reduction
// techniques such as random projections" among the planned refinements):
// project the 28-D sensor space onto k ≪ 28 Gaussian directions before
// computing signatures. The Johnson–Lindenstrauss property keeps pairwise
// geometry approximately intact while the eigensolver shrinks from O(d³)
// to O(k³) per window — the ablation experiment quantifies the
// accuracy/cost trade.

// Projector is a fixed random linear map ℝ^in → ℝ^out.
type Projector struct {
	In, Out int
	m       *vec.Matrix // Out × In, entries N(0, 1/Out)
}

// NewProjector draws a Gaussian projection with the given shape and seed.
func NewProjector(in, out int, seed int64) *Projector {
	if in <= 0 || out <= 0 || out > in {
		panic(fmt.Sprintf("svdstream: projector %d→%d", in, out))
	}
	rng := rand.New(rand.NewSource(seed))
	m := vec.NewMatrix(out, in)
	scale := 1 / math.Sqrt(float64(out))
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * scale
	}
	return &Projector{In: in, Out: out, m: m}
}

// Apply projects one frame.
func (p *Projector) Apply(frame []float64) []float64 {
	return p.m.MulVec(frame)
}

// ApplyAll projects a time-major frame sequence.
func (p *Projector) ApplyAll(frames [][]float64) [][]float64 {
	out := make([][]float64, len(frames))
	for i, fr := range frames {
		out[i] = p.Apply(fr)
	}
	return out
}

// SignatureProjected computes the SVD signature in the projected space.
func (p *Projector) SignatureProjected(frames [][]float64) Signature {
	return SignatureOf(vec.MatrixFromRows(p.ApplyAll(frames)))
}

// ProjectedSVDDistance is SVDDistance computed after random projection —
// the cheap variant for the ablation.
func ProjectedSVDDistance(p *Projector, topK int) func(a, b [][]float64) float64 {
	return func(a, b [][]float64) float64 {
		sa := p.SignatureProjected(SmoothFrames(a, 7))
		sb := p.SignatureProjected(SmoothFrames(b, 7))
		return 1 - SimilarityTopK(sa, sb, topK)
	}
}
