package svdstream

import (
	"math"
	"math/rand"
	"testing"

	"aims/internal/synth"
	"aims/internal/vec"
)

func TestProjectorShapes(t *testing.T) {
	p := NewProjector(28, 8, 1)
	out := p.Apply(make([]float64, 28))
	if len(out) != 8 {
		t.Fatalf("projected width %d", len(out))
	}
	frames := [][]float64{make([]float64, 28), make([]float64, 28)}
	all := p.ApplyAll(frames)
	if len(all) != 2 || len(all[0]) != 8 {
		t.Fatal("ApplyAll shape")
	}
}

func TestProjectorPanicsOnBadShape(t *testing.T) {
	for _, bad := range [][2]int{{0, 1}, {8, 0}, {8, 9}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for %v", bad)
				}
			}()
			NewProjector(bad[0], bad[1], 1)
		}()
	}
}

func TestProjectorApproximatelyPreservesGeometry(t *testing.T) {
	// JL flavour: relative distances between random frames survive a
	// 28→12 projection within a loose factor.
	rng := rand.New(rand.NewSource(2))
	p := NewProjector(28, 12, 3)
	for trial := 0; trial < 20; trial++ {
		a := make([]float64, 28)
		b := make([]float64, 28)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		orig := vec.Norm(vec.Sub(a, b))
		proj := vec.Norm(vec.Sub(p.Apply(a), p.Apply(b)))
		ratio := proj / orig
		if ratio < 0.35 || ratio > 2.2 {
			t.Fatalf("distance ratio %v outside sane JL band", ratio)
		}
	}
}

func TestProjectedRecognitionStillWorks(t *testing.T) {
	vocab := synth.Vocabulary(6, 5)
	rng := rand.New(rand.NewSource(6))
	refs := make(map[string][][]float64, len(vocab))
	for _, s := range vocab {
		refs[s.Name] = s.Render(1, 0, rng)
	}
	p := NewProjector(synth.SignDims, 10, 7)
	dist := ProjectedSVDDistance(p, 6)
	correct, trials := 0, 0
	for _, s := range vocab {
		for k := 0; k < 4; k++ {
			seg := s.Render(0.8+0.1*float64(k), 0.4, rng)
			if NearestTemplate(seg, refs, dist) == s.Name {
				correct++
			}
			trials++
		}
	}
	if correct*4 < trials*3 {
		t.Fatalf("projected recognition %d/%d", correct, trials)
	}
}

func TestSmoothFramesReducesNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	frames := make([][]float64, 200)
	for i := range frames {
		frames[i] = []float64{math.Sin(float64(i) / 10), rng.NormFloat64()}
	}
	sm := SmoothFrames(frames, 7)
	var rawVar, smVar float64
	for i := range frames {
		rawVar += frames[i][1] * frames[i][1]
		smVar += sm[i][1] * sm[i][1]
	}
	if smVar > rawVar/2 {
		t.Fatalf("smoothing weak: %v vs %v", smVar, rawVar)
	}
	// Width ≤ 1 is the identity.
	same := SmoothFrames(frames, 1)
	if &same[0][0] != &frames[0][0] {
		t.Fatal("width-1 smoothing should be a no-op")
	}
}
