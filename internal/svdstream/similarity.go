// Package svdstream implements AIMS's online query-and-analysis subsystem
// (§3.4): the weighted-sum SVD similarity measure over aggregated sensor
// streams, incremental SVD maintenance for sliding windows, the
// information-accumulation heuristic that simultaneously isolates and
// recognises variable-length motions in a continuous stream, and the
// Euclidean/DFT/DWT similarity baselines of the related-work comparison.
package svdstream

import (
	"fmt"
	"math"

	"aims/internal/vec"
)

// Signature is the SVD fingerprint of a multi-sensor window: the right
// singular vectors of the rows=time × cols=sensors matrix (equivalently the
// eigenvectors of its uncentered second-moment matrix) with their singular
// values. Rotations capture the directions hand state occupies; magnitudes
// their energies. Signatures of different window lengths are comparable —
// the property that frees the recogniser from fixed-length matching.
type Signature struct {
	Vectors *vec.Matrix // sensors × sensors, column i ↔ Values[i]
	Values  []float64   // singular values, descending
}

// SignatureOf computes the signature of a window matrix (rows = time,
// cols = sensors).
func SignatureOf(m *vec.Matrix) Signature {
	eig := vec.SymEigen(m.Gram())
	vals := make([]float64, len(eig.Values))
	for i, l := range eig.Values {
		if l < 0 {
			l = 0
		}
		vals[i] = math.Sqrt(l)
	}
	return Signature{Vectors: eig.Vectors, Values: vals}
}

// SignatureFromMoments builds a signature from a second-moment (or
// covariance) matrix — the §3.4.1 port: every entry of that matrix is a
// second-order polynomial range-sum, so the whole signature is derivable
// from ProPolyne queries in the wavelet domain.
func SignatureFromMoments(moments [][]float64) Signature {
	n := len(moments)
	m := vec.NewMatrix(n, n)
	for i := range moments {
		if len(moments[i]) != n {
			panic(fmt.Sprintf("svdstream: ragged moment matrix row %d", i))
		}
		for j, v := range moments[i] {
			m.Set(i, j, v)
		}
	}
	eig := vec.SymEigen(m)
	vals := make([]float64, n)
	for i, l := range eig.Values {
		if l < 0 {
			l = 0
		}
		vals[i] = math.Sqrt(l)
	}
	return Signature{Vectors: eig.Vectors, Values: vals}
}

// Similarity is the weighted-sum SVD measure: corresponding singular
// vectors are compared by |cosine| and weighted by the (normalised)
// geometric mean of their singular values. The result lies in [0, 1]; 1
// means identical rotation structure with identical energy profile.
func Similarity(a, b Signature) float64 {
	if a.Vectors.Cols != b.Vectors.Cols {
		panic(fmt.Sprintf("svdstream: signature dims %d != %d", a.Vectors.Cols, b.Vectors.Cols))
	}
	n := a.Vectors.Cols
	var weightSum, sim float64
	weights := make([]float64, n)
	for i := 0; i < n; i++ {
		weights[i] = math.Sqrt(a.Values[i] * b.Values[i])
		weightSum += weights[i]
	}
	if weightSum == 0 {
		return 0
	}
	for i := 0; i < n; i++ {
		if weights[i] == 0 {
			continue
		}
		dot := 0.0
		for r := 0; r < n; r++ {
			dot += a.Vectors.At(r, i) * b.Vectors.At(r, i)
		}
		sim += weights[i] / weightSum * math.Abs(dot)
	}
	return sim
}

// SimilarityTopK restricts the weighted sum to the k strongest components,
// which suppresses noise-dominated directions.
func SimilarityTopK(a, b Signature, k int) float64 {
	n := a.Vectors.Cols
	if k <= 0 || k > n {
		k = n
	}
	var weightSum, sim float64
	for i := 0; i < k; i++ {
		w := math.Sqrt(a.Values[i] * b.Values[i])
		weightSum += w
		if w == 0 {
			continue
		}
		dot := 0.0
		for r := 0; r < n; r++ {
			dot += a.Vectors.At(r, i) * b.Vectors.At(r, i)
		}
		sim += w * math.Abs(dot)
	}
	if weightSum == 0 {
		return 0
	}
	return sim / weightSum
}

// MomentMatrix returns the uncentered second-moment matrix XᵀX of a frame
// sequence (time-major) — the quantity §3.4.1 shows is computable from
// degree-2 polynomial range-sums.
func MomentMatrix(frames [][]float64) [][]float64 {
	if len(frames) == 0 {
		return nil
	}
	d := len(frames[0])
	out := make([][]float64, d)
	for i := range out {
		out[i] = make([]float64, d)
	}
	for _, fr := range frames {
		for i := 0; i < d; i++ {
			vi := fr[i]
			if vi == 0 {
				continue
			}
			for j := i; j < d; j++ {
				out[i][j] += vi * fr[j]
			}
		}
	}
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			out[j][i] = out[i][j]
		}
	}
	return out
}
