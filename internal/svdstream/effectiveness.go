package svdstream

import "sort"

// Effectiveness quantifies how well a similarity/distance measure
// separates same-motion pairs from cross-motion pairs — §3.4.1's closing
// proposal: "our information-theory based heuristic can be evolved into a
// metric to measure the effectiveness of different similarity measures."
//
// The statistic is the pairwise ROC-AUC: the probability that a uniformly
// random same-label pair is scored closer than a uniformly random
// cross-label pair. 1.0 = perfect separation; 0.5 = chance.

// LabeledSegment is one observation for the effectiveness evaluation.
type LabeledSegment struct {
	Name   string
	Frames [][]float64
}

// Effectiveness computes the pairwise AUC of a distance function over a
// labelled segment set. It returns 0.5 when either pair population is
// empty.
func Effectiveness(segments []LabeledSegment, dist func(a, b [][]float64) float64) float64 {
	var same, cross []float64
	for i := 0; i < len(segments); i++ {
		for j := i + 1; j < len(segments); j++ {
			d := dist(segments[i].Frames, segments[j].Frames)
			if segments[i].Name == segments[j].Name {
				same = append(same, d)
			} else {
				cross = append(cross, d)
			}
		}
	}
	return pairAUC(same, cross)
}

// pairAUC returns P(same < cross) + ½·P(same == cross) via a merge over
// the sorted populations — O((n+m) log(n+m)).
func pairAUC(same, cross []float64) float64 {
	if len(same) == 0 || len(cross) == 0 {
		return 0.5
	}
	sort.Float64s(same)
	sort.Float64s(cross)
	// For each same distance, count how many cross distances exceed it.
	var wins, ties float64
	j := 0
	jEq := 0
	for _, s := range same {
		for j < len(cross) && cross[j] < s {
			j++
		}
		jEq = j
		for jEq < len(cross) && cross[jEq] == s {
			jEq++
		}
		wins += float64(len(cross) - jEq)
		ties += float64(jEq - j)
	}
	total := float64(len(same) * len(cross))
	return (wins + ties/2) / total
}
