package svdstream

import (
	"math"
	"math/rand"
	"testing"

	"aims/internal/synth"
	"aims/internal/vec"
)

func randWindow(rng *rand.Rand, rows, cols int) *vec.Matrix {
	m := vec.NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestSimilaritySelfIsOne(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randWindow(rng, 50, 8)
	s := SignatureOf(m)
	if got := Similarity(s, s); math.Abs(got-1) > 1e-9 {
		t.Fatalf("self similarity = %v", got)
	}
	if got := SimilarityTopK(s, s, 3); math.Abs(got-1) > 1e-9 {
		t.Fatalf("topK self similarity = %v", got)
	}
}

func TestSimilaritySymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := SignatureOf(randWindow(rng, 40, 6))
	b := SignatureOf(randWindow(rng, 55, 6))
	if math.Abs(Similarity(a, b)-Similarity(b, a)) > 1e-9 {
		t.Fatal("similarity not symmetric")
	}
}

func TestSimilarityBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		a := SignatureOf(randWindow(rng, 30+rng.Intn(40), 7))
		b := SignatureOf(randWindow(rng, 30+rng.Intn(40), 7))
		s := Similarity(a, b)
		if s < 0 || s > 1+1e-9 {
			t.Fatalf("similarity %v out of [0,1]", s)
		}
	}
}

func TestSimilarityScaleInvariantInLength(t *testing.T) {
	// The same motion executed slower (frames repeated) must keep a high
	// similarity — the variable-length property.
	vocab := synth.Vocabulary(1, 7)
	rng := rand.New(rand.NewSource(4))
	fast := vocab[0].Render(0.7, 0.1, rng)
	slow := vocab[0].Render(1.4, 0.1, rng)
	sf := SignatureOf(vec.MatrixFromRows(fast))
	ss := SignatureOf(vec.MatrixFromRows(slow))
	if got := SimilarityTopK(sf, ss, 6); got < 0.9 {
		t.Fatalf("same sign at different speeds: similarity %v < 0.9", got)
	}
}

func TestSimilarityDiscriminatesSigns(t *testing.T) {
	vocab := synth.Vocabulary(8, 9)
	rng := rand.New(rand.NewSource(5))
	// Same sign twice vs different signs.
	for i := 0; i < 4; i++ {
		a1 := SignatureOf(vec.MatrixFromRows(vocab[i].Render(1, 0.2, rng)))
		a2 := SignatureOf(vec.MatrixFromRows(vocab[i].Render(1.2, 0.2, rng)))
		b := SignatureOf(vec.MatrixFromRows(vocab[i+4].Render(1, 0.2, rng)))
		same := SimilarityTopK(a1, a2, 6)
		diff := SimilarityTopK(a1, b, 6)
		if same <= diff {
			t.Fatalf("sign %d: same-sign similarity %v not above cross-sign %v", i, same, diff)
		}
	}
}

func TestSignatureFromMomentsMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	frames := make([][]float64, 80)
	for i := range frames {
		fr := make([]float64, 5)
		for d := range fr {
			fr[d] = rng.NormFloat64() * float64(d+1)
		}
		frames[i] = fr
	}
	direct := SignatureOf(vec.MatrixFromRows(frames))
	viaMoments := SignatureFromMoments(MomentMatrix(frames))
	// Same eigenstructure ⇒ similarity 1.
	if got := Similarity(direct, viaMoments); math.Abs(got-1) > 1e-6 {
		t.Fatalf("moment-derived signature similarity %v, want 1", got)
	}
	for i := range direct.Values {
		if math.Abs(direct.Values[i]-viaMoments.Values[i]) > 1e-6*(1+direct.Values[0]) {
			t.Fatalf("singular value %d: %v vs %v", i, direct.Values[i], viaMoments.Values[i])
		}
	}
}

func TestIncrementalMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const dims, capacity = 6, 32
	inc := NewIncremental(dims, capacity)
	var all [][]float64
	for i := 0; i < 100; i++ {
		fr := make([]float64, dims)
		for d := range fr {
			fr[d] = rng.NormFloat64()
		}
		all = append(all, fr)
		inc.Push(fr)

		if i >= capacity-1 && i%7 == 0 {
			window := all[len(all)-capacity:]
			batch := SignatureOf(vec.MatrixFromRows(window))
			got := inc.Signature()
			if sim := Similarity(batch, got); math.Abs(sim-1) > 1e-6 {
				t.Fatalf("tick %d: incremental signature similarity %v", i, sim)
			}
			for k := range got.Values {
				if math.Abs(got.Values[k]-batch.Values[k]) > 1e-6*(1+batch.Values[0]) {
					t.Fatalf("tick %d: singular value %d mismatch", i, k)
				}
			}
		}
	}
	if !inc.Full() || inc.Len() != capacity {
		t.Fatal("window accounting broken")
	}
	inc.Reset()
	if inc.Len() != 0 || inc.Energy() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestIncrementalEnergy(t *testing.T) {
	inc := NewIncremental(2, 4)
	inc.Push([]float64{3, 4})
	if math.Abs(inc.Energy()-25) > 1e-12 {
		t.Fatalf("Energy = %v", inc.Energy())
	}
}

func makeTemplates(vocab []synth.Sign, seed int64) map[string]Signature {
	rng := rand.New(rand.NewSource(seed))
	out := make(map[string]Signature, len(vocab))
	for _, s := range vocab {
		// Aggregate moment matrices of three executions for robustness.
		var agg [][]float64
		for k := 0; k < 3; k++ {
			m := MomentMatrix(s.Render(0.8+0.2*float64(k), 0.1, rng))
			if agg == nil {
				agg = m
			} else {
				for i := range m {
					for j := range m[i] {
						agg[i][j] += m[i][j]
					}
				}
			}
		}
		out[s.Name] = SignatureFromMoments(agg)
	}
	return out
}

func TestRecognizerIsolatesAndRecognises(t *testing.T) {
	vocab := synth.Vocabulary(6, 11)
	templates := makeTemplates(vocab, 100)

	frames, segs := synth.SignStream(vocab, synth.StreamOptions{
		Count: 20, Noise: 0.4, DurJitter: 0.3, GapTicks: 50, Seed: 12,
	})
	rest := frames[:20]
	r := NewRecognizer(templates, RecognizerConfig{
		Dims:          synth.SignDims,
		RestThreshold: CalibrateRest(rest),
	})
	var dets []Detection
	for tick, fr := range frames {
		if d := r.Feed(tick, fr); d != nil {
			dets = append(dets, *d)
		}
	}
	if d := r.Flush(len(frames)); d != nil {
		dets = append(dets, *d)
	}

	// Match detections to ground truth by overlap.
	correct, matched := 0, 0
	for _, seg := range segs {
		for _, d := range dets {
			overlap := minInt(seg.End, d.End) - maxInt(seg.Start, d.Start)
			if overlap > (seg.End-seg.Start)/2 {
				matched++
				if d.Name == seg.Name {
					correct++
				}
				break
			}
		}
	}
	if matched < len(segs)*8/10 {
		t.Fatalf("isolated %d/%d segments", matched, len(segs))
	}
	if correct < matched*7/10 {
		t.Fatalf("recognised %d/%d matched segments", correct, matched)
	}
	// No rampant over-segmentation.
	if len(dets) > len(segs)*2 {
		t.Fatalf("%d detections for %d true segments", len(dets), len(segs))
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestNearestTemplateBaselines(t *testing.T) {
	vocab := synth.Vocabulary(5, 13)
	rng := rand.New(rand.NewSource(14))
	refs := make(map[string][][]float64, len(vocab))
	for _, s := range vocab {
		refs[s.Name] = s.Render(1, 0, rng)
	}
	dists := map[string]func(a, b [][]float64) float64{
		"euclid": EuclideanDistance,
		"dft":    func(a, b [][]float64) float64 { return DFTDistance(a, b, 8) },
		"dwt":    func(a, b [][]float64) float64 { return DWTDistance(a, b, 8) },
		"svd":    SVDDistance(6),
	}
	for name, dist := range dists {
		correct := 0
		trials := 0
		for _, s := range vocab {
			for k := 0; k < 3; k++ {
				seg := s.Render(0.8+0.2*float64(k), 0.3, rng)
				if NearestTemplate(seg, refs, dist) == s.Name {
					correct++
				}
				trials++
			}
		}
		// Every measure should beat chance comfortably on clean-ish data;
		// exact rankings are the subject of experiment E7.
		if correct*5 < trials*3 {
			t.Errorf("%s: %d/%d correct", name, correct, trials)
		}
	}
}

func TestResampleFrames(t *testing.T) {
	frames := [][]float64{{0, 0}, {1, 10}, {2, 20}, {3, 30}}
	out := ResampleFrames(frames, 8)
	if len(out) != 8 || len(out[0]) != 2 {
		t.Fatalf("shape %dx%d", len(out), len(out[0]))
	}
	// Monotone ramps stay monotone.
	for i := 1; i < len(out); i++ {
		if out[i][0] < out[i-1][0]-1e-9 {
			t.Fatal("resample broke monotonicity")
		}
	}
	if ResampleFrames(nil, 8) != nil {
		t.Fatal("nil input")
	}
}

func TestCalibrateRest(t *testing.T) {
	if got := CalibrateRest(nil); got <= 0 {
		t.Fatal("degenerate calibration")
	}
	idle := [][]float64{{0, 0}, {0.1, 0}, {0, 0.1}, {0.1, 0.1}}
	if got := CalibrateRest(idle); got <= 0 {
		t.Fatalf("calibration = %v", got)
	}
}
