package svdstream

import (
	"math"
	"math/cmplx"

	"aims/internal/dsp"
	"aims/internal/vec"
)

// Similarity baselines from the related-work comparison of §3.4.2:
// Euclidean distance (needs identical lengths — its documented weakness),
// DFT and DWT feature distances (linear transforms that rotate the axes of
// the per-channel time series). All operate on time-major frame sequences.

// ResampleFrames linearly resamples a frame sequence to outLen ticks per
// channel — the length normalisation the transform baselines require.
func ResampleFrames(frames [][]float64, outLen int) [][]float64 {
	if len(frames) == 0 || outLen <= 0 {
		return nil
	}
	d := len(frames[0])
	out := make([][]float64, outLen)
	for i := range out {
		out[i] = make([]float64, d)
	}
	for c := 0; c < d; c++ {
		col := make([]float64, len(frames))
		for i := range frames {
			col[i] = frames[i][c]
		}
		re := dsp.Resample(col, float64(len(frames)), float64(outLen), outLen)
		for i := range out {
			out[i][c] = re[i]
		}
	}
	return out
}

// EuclideanDistance flattens both sequences (truncated to the shorter
// length) and returns the L2 distance — the straw-man measure the paper
// rejects for its identical-length requirement and dimensionality-curse
// sensitivity.
func EuclideanDistance(a, b [][]float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var s float64
	for i := 0; i < n; i++ {
		for c := range a[i] {
			d := a[i][c] - b[i][c]
			s += d * d
		}
	}
	// Penalise the unmatched tail so trivially-short sequences don't win.
	s *= float64(maxInt(len(a), len(b))) / float64(maxInt(n, 1))
	return math.Sqrt(s)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// DFTDistance resamples both sequences to a common length, keeps the k
// lowest-frequency magnitude coefficients per channel, and compares them
// in L2 — the Agrawal/Faloutsos-style spectral feature distance.
func DFTDistance(a, b [][]float64, k int) float64 {
	const norm = 64
	ra, rb := ResampleFrames(a, norm), ResampleFrames(b, norm)
	if ra == nil || rb == nil {
		return math.Inf(1)
	}
	d := len(ra[0])
	var s float64
	for c := 0; c < d; c++ {
		fa := dftMags(column(ra, c), k)
		fb := dftMags(column(rb, c), k)
		for i := range fa {
			diff := fa[i] - fb[i]
			s += diff * diff
		}
	}
	return math.Sqrt(s)
}

func column(frames [][]float64, c int) []float64 {
	out := make([]float64, len(frames))
	for i := range frames {
		out[i] = frames[i][c]
	}
	return out
}

func dftMags(x []float64, k int) []float64 {
	spec := dsp.FFTReal(x)
	if k > len(spec) {
		k = len(spec)
	}
	out := make([]float64, k)
	for i := 0; i < k; i++ {
		out[i] = cmplx.Abs(spec[i]) / float64(len(x))
	}
	return out
}

// DWTDistance resamples to a power-of-two length, Haar-transforms each
// channel and compares the k coarsest coefficients — the Chan–Fu wavelet
// feature distance.
func DWTDistance(a, b [][]float64, k int) float64 {
	const norm = 64
	ra, rb := ResampleFrames(a, norm), ResampleFrames(b, norm)
	if ra == nil || rb == nil {
		return math.Inf(1)
	}
	d := len(ra[0])
	var s float64
	for c := 0; c < d; c++ {
		wa := haarPrefix(column(ra, c), k)
		wb := haarPrefix(column(rb, c), k)
		for i := range wa {
			diff := wa[i] - wb[i]
			s += diff * diff
		}
	}
	return math.Sqrt(s)
}

func haarPrefix(x []float64, k int) []float64 {
	w := append([]float64(nil), x...)
	// In-place Haar via the wavelet package would add a dependency cycle
	// risk-free; reuse the dsp-free local cascade instead.
	n := len(w)
	tmp := make([]float64, n)
	for n > 1 {
		half := n / 2
		for i := 0; i < half; i++ {
			tmp[i] = (w[2*i] + w[2*i+1]) / math.Sqrt2
			tmp[half+i] = (w[2*i] - w[2*i+1]) / math.Sqrt2
		}
		copy(w[:n], tmp[:n])
		n = half
	}
	if k > len(w) {
		k = len(w)
	}
	return w[:k]
}

// SmoothFrames applies a centred moving average of the given width to each
// channel — the conventional noise filtering AIMS acquisition performs
// before analysis (§3.1). Width ≤ 1 returns the input unchanged.
func SmoothFrames(frames [][]float64, width int) [][]float64 {
	if width <= 1 || len(frames) == 0 {
		return frames
	}
	d := len(frames[0])
	out := make([][]float64, len(frames))
	half := width / 2
	for i := range frames {
		lo := i - half
		if lo < 0 {
			lo = 0
		}
		hi := i + half
		if hi >= len(frames) {
			hi = len(frames) - 1
		}
		fr := make([]float64, d)
		for c := 0; c < d; c++ {
			var s float64
			for k := lo; k <= hi; k++ {
				s += frames[k][c]
			}
			fr[c] = s / float64(hi-lo+1)
		}
		out[i] = fr
	}
	return out
}

// SVDDistance converts the weighted-sum similarity into a distance for the
// common classifier interface. Inputs are noise-filtered first (§3.1):
// unlike the DFT/DWT feature distances, the raw SVD signature has no
// implicit low-pass stage, so the acquisition filter levels the field.
func SVDDistance(topK int) func(a, b [][]float64) float64 {
	return func(a, b [][]float64) float64 {
		sa := SignatureOf(vec.MatrixFromRows(SmoothFrames(a, 7)))
		sb := SignatureOf(vec.MatrixFromRows(SmoothFrames(b, 7)))
		return 1 - SimilarityTopK(sa, sb, topK)
	}
}

// NearestTemplate classifies an isolated segment by minimum distance to
// the labelled reference executions.
func NearestTemplate(segment [][]float64, refs map[string][][]float64,
	dist func(a, b [][]float64) float64) string {
	best := ""
	bestD := math.Inf(1)
	for name, ref := range refs {
		if d := dist(segment, ref); d < bestD || (d == bestD && name < best) {
			best, bestD = name, d
		}
	}
	return best
}
