package svdstream

import (
	"fmt"
	"math"
	"sort"
)

// Recognizer performs simultaneous pattern isolation and recognition over
// a continuous multi-sensor stream (§3.4): frames accumulate information
// about the motion currently in progress; similarity against every
// vocabulary member is tracked incrementally; the moment the leading
// sign's accumulated evidence dominates decisively the recogniser commits
// to it (low latency), and the motion's span is closed when the stream
// returns to rest (accurate isolation).
type Recognizer struct {
	cfg       RecognizerConfig
	templates []template

	inMotion    bool
	motionStart int
	ewma        float64
	prevFrame   []float64
	restTicks   int

	decided      bool
	decidedName  string
	decidedTick  int
	decidedScore float64

	window      *Incremental
	acc         map[string]float64
	lastBestSim float64
	ticks       int
}

type template struct {
	name string
	sig  Signature
}

// RecognizerConfig tunes the isolation heuristic.
type RecognizerConfig struct {
	Dims int
	// Stride is how often (in ticks) similarities are re-evaluated while a
	// motion is in progress. Default 8.
	Stride int
	// TopK components used in the weighted-sum similarity. Default 6.
	TopK int
	// RestThreshold is the EWMA frame-to-frame energy below which the
	// stream counts as resting. Must be calibrated to the rig's noise
	// floor (see CalibrateRest).
	RestThreshold float64
	// RestTicks is how many consecutive sub-threshold ticks end a motion;
	// it must bridge the momentary slow-downs at keyframe plateaus.
	// Default 15.
	RestTicks int
	// MinMotionTicks discards twitches shorter than this. Default 20.
	MinMotionTicks int
	// DominanceMargin commits early when the leader's accumulated score
	// exceeds the runner-up by this factor. Default 1.25.
	DominanceMargin float64
	// MinEvaluations before an early commitment is allowed. Default 4.
	MinEvaluations int
	// RejectBelow, when > 0, labels motions whose best raw weighted-SVD
	// similarity never reaches it as unknown (Detection.Name == Unknown)
	// instead of forcing the nearest vocabulary entry — out-of-vocabulary
	// rejection. In-vocabulary motions score near 1.0; foreign motions
	// far lower, so thresholds around 0.8 work across noise levels.
	RejectBelow float64
}

// Unknown is the Detection.Name of a rejected (out-of-vocabulary) motion.
const Unknown = "<unknown>"

func (c RecognizerConfig) withDefaults() RecognizerConfig {
	if c.Stride <= 0 {
		c.Stride = 8
	}
	if c.TopK <= 0 {
		c.TopK = 6
	}
	if c.RestTicks <= 0 {
		c.RestTicks = 15
	}
	if c.MinMotionTicks <= 0 {
		c.MinMotionTicks = 20
	}
	if c.DominanceMargin <= 0 {
		c.DominanceMargin = 1.25
	}
	if c.MinEvaluations <= 0 {
		c.MinEvaluations = 4
	}
	return c
}

// Detection is one isolated-and-recognised motion.
type Detection struct {
	Name       string
	Start, End int // tick range [Start, End)
	Score      float64
	// Early is true when the dominance rule committed before the motion
	// ended; DecisionTick is when the name was locked in (recognition
	// latency = DecisionTick − Start).
	Early        bool
	DecisionTick int
}

// NewRecognizer builds a recogniser from named template signatures.
func NewRecognizer(templates map[string]Signature, cfg RecognizerConfig) *Recognizer {
	cfg = cfg.withDefaults()
	if cfg.Dims <= 0 {
		panic("svdstream: RecognizerConfig.Dims required")
	}
	r := &Recognizer{
		cfg:    cfg,
		window: NewIncremental(cfg.Dims, 1<<20), // growing segment window
		acc:    map[string]float64{},
	}
	names := make([]string, 0, len(templates))
	for n := range templates {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		r.templates = append(r.templates, template{name: n, sig: templates[n]})
	}
	return r
}

// CalibrateRest estimates a rest threshold from a stretch of known-idle
// frames: 2× the mean frame-to-frame energy — several noise standard
// deviations above the floor yet low enough that slow mid-sign passages
// do not read as rest.
func CalibrateRest(idle [][]float64) float64 {
	if len(idle) < 2 {
		return 1e-6
	}
	var sum float64
	for i := 1; i < len(idle); i++ {
		sum += frameDelta(idle[i], idle[i-1])
	}
	return 2 * sum / float64(len(idle)-1)
}

func frameDelta(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Feed consumes one frame and returns a detection when a motion closes.
func (r *Recognizer) Feed(tick int, frame []float64) *Detection {
	if len(frame) != r.cfg.Dims {
		panic(fmt.Sprintf("svdstream: frame dims %d != %d", len(frame), r.cfg.Dims))
	}
	defer func() { r.prevFrame = append(r.prevFrame[:0], frame...); r.ticks++ }()

	if r.prevFrame == nil {
		return nil
	}
	delta := frameDelta(frame, r.prevFrame)
	const alpha = 0.2
	r.ewma = (1-alpha)*r.ewma + alpha*delta
	moving := r.ewma > r.cfg.RestThreshold

	if !r.inMotion {
		if moving {
			r.inMotion = true
			r.motionStart = tick
			r.restTicks = 0
			r.decided = false
			r.window.Reset()
			for k := range r.acc {
				delete(r.acc, k)
			}
		}
		return nil
	}

	// In motion: the segment grows.
	r.window.Push(frame)

	if !moving {
		r.restTicks++
		if r.restTicks >= r.cfg.RestTicks {
			det := r.finishMotion(tick + 1 - r.restTicks)
			r.inMotion = false
			return det
		}
	} else {
		r.restTicks = 0
	}

	if !r.decided && r.window.Len()%r.cfg.Stride == 0 && r.window.Len() >= r.cfg.MinMotionTicks {
		r.evaluate()
		if name, score, ok := r.dominant(); ok {
			r.decided = true
			r.decidedName = name
			r.decidedScore = score
			r.decidedTick = tick
		}
	}
	return nil
}

// evaluate updates accumulated evidence: positive information flows to the
// best-matching signs, negative information (the mean drain) to all — the
// stream "carries negative information about all the other absent
// patterns".
func (r *Recognizer) evaluate() {
	sig := r.window.Signature()
	var mean float64
	sims := make([]float64, len(r.templates))
	r.lastBestSim = 0
	for i, t := range r.templates {
		sims[i] = SimilarityTopK(sig, t.sig, r.cfg.TopK)
		mean += sims[i]
		if sims[i] > r.lastBestSim {
			r.lastBestSim = sims[i]
		}
	}
	if len(sims) > 0 {
		mean /= float64(len(sims))
	}
	for i, t := range r.templates {
		r.acc[t.name] += sims[i] - mean
	}
}

// leaders returns the best and second-best accumulated names.
func (r *Recognizer) leaders() (best string, bestV, second float64) {
	bestV, second = math.Inf(-1), math.Inf(-1)
	for _, t := range r.templates {
		v := r.acc[t.name]
		if v > bestV {
			second = bestV
			best, bestV = t.name, v
		} else if v > second {
			second = v
		}
	}
	return
}

// dominant reports whether the accumulated evidence singles out one sign.
func (r *Recognizer) dominant() (string, float64, bool) {
	best, bestV, second := r.leaders()
	evals := r.window.Len() / r.cfg.Stride
	if evals < r.cfg.MinEvaluations || best == "" {
		return "", 0, false
	}
	if second <= 0 {
		second = 1e-9
	}
	if r.cfg.RejectBelow > 0 && r.lastBestSim < r.cfg.RejectBelow {
		// The motion does not resemble any vocabulary entry strongly
		// enough to commit while rejection is on.
		return "", 0, false
	}
	if bestV > 0 && bestV/second >= r.cfg.DominanceMargin && bestV-second > 0.05*float64(evals) {
		return best, bestV, true
	}
	return "", 0, false
}

// finishMotion closes the current segment at the given end tick: the
// committed name wins if a dominance decision was made, otherwise the
// final accumulated leader.
func (r *Recognizer) finishMotion(end int) *Detection {
	if r.window.Len() < r.cfg.MinMotionTicks {
		return nil
	}
	if r.decided {
		return &Detection{
			Name: r.decidedName, Start: r.motionStart, End: end,
			Score: r.decidedScore, Early: true, DecisionTick: r.decidedTick,
		}
	}
	r.evaluate()
	best, bestV, _ := r.leaders()
	if best == "" {
		return nil
	}
	if r.cfg.RejectBelow > 0 && r.lastBestSim < r.cfg.RejectBelow {
		return &Detection{Name: Unknown, Start: r.motionStart, End: end, Score: r.lastBestSim, DecisionTick: end}
	}
	return &Detection{Name: best, Start: r.motionStart, End: end, Score: bestV, DecisionTick: end}
}

// Flush closes any in-progress motion at stream end.
func (r *Recognizer) Flush(tick int) *Detection {
	if !r.inMotion {
		return nil
	}
	r.inMotion = false
	return r.finishMotion(tick)
}
