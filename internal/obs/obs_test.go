package obs

import (
	"bytes"
	"io"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeHistogramValues(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_frames_total", "frames")
	c.Inc()
	c.Add(9)
	if c.Value() != 10 {
		t.Fatalf("counter = %d", c.Value())
	}
	g := r.Gauge("t_depth", "depth")
	g.Add(5)
	g.Add(-2)
	if g.Value() != 3 {
		t.Fatalf("gauge = %d", g.Value())
	}
	g.Set(-7)
	if g.Value() != -7 {
		t.Fatalf("gauge after set = %d", g.Value())
	}
	h := r.Histogram("t_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("histogram count = %d", h.Count())
	}
	want := []uint64{2, 1, 1, 1} // <=0.1, <=1, <=10, +Inf
	got := h.BucketCounts()
	if len(got) != len(want) {
		t.Fatalf("bucket slice length %d, want %d (bounds+1)", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, got[i], want[i], got)
		}
	}
	if h.Sum() != 102.65 {
		t.Fatalf("histogram sum = %v", h.Sum())
	}
}

func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("t_x_total", "x")
	b := r.Counter("t_x_total", "x")
	if a != b {
		t.Fatal("same identity returned distinct counters")
	}
	l1 := r.CounterWith("t_x_total", `dir="in"`, "x")
	if l1 == a {
		t.Fatal("labelled counter aliased the unlabelled one")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering an identity as a different kind did not panic")
		}
	}()
	r.Gauge("t_x_total", "x")
}

var (
	headerRe = regexp.MustCompile(`^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+$`)
	// A sample line, optionally carrying an OpenMetrics exemplar suffix
	// (` # {trace_id="..."} value`) on histogram buckets.
	sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? [^ ]+( # \{[^}]*\} [^ ]+)?$`)
)

// validateExposition is the shared Prometheus-text checker: every line is
// a well-formed HELP/TYPE header or sample, each metric name has exactly
// one HELP and one TYPE line (before its samples), and no series key
// (name+labels) repeats.
func validateExposition(t *testing.T, text string) map[string]bool {
	t.Helper()
	names := map[string]bool{}
	helpSeen := map[string]int{}
	typeSeen := map[string]int{}
	series := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# ") {
			if !headerRe.MatchString(line) {
				t.Fatalf("malformed header line %q", line)
			}
			f := strings.Fields(line)
			if f[1] == "HELP" {
				helpSeen[f[2]]++
			} else {
				typeSeen[f[2]]++
			}
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed sample line %q", line)
		}
		key := m[1] + m[2]
		if series[key] {
			t.Fatalf("duplicate series %q", key)
		}
		series[key] = true
		// _bucket/_sum/_count roll up to the histogram's base name.
		base := m[1]
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(base, suf) {
				base = strings.TrimSuffix(base, suf)
			}
		}
		names[base] = true
		if helpSeen[base] == 0 || typeSeen[base] == 0 {
			t.Fatalf("sample %q before its HELP/TYPE header", line)
		}
	}
	for name, n := range helpSeen {
		if n != 1 || typeSeen[name] != 1 {
			t.Fatalf("metric %s has %d HELP / %d TYPE lines", name, n, typeSeen[name])
		}
	}
	return names
}

func TestWritePrometheusWellFormed(t *testing.T) {
	r := NewRegistry()
	r.Counter("t_frames_total", "Frames ingested.").Add(7)
	r.CounterWith("t_bytes_total", `dir="in",type="batch"`, "Wire bytes.").Add(100)
	r.CounterWith("t_bytes_total", `dir="out",type="result"`, "Wire bytes.").Add(42)
	r.Gauge("t_depth", "Queue depth.").Set(3)
	r.Histogram("t_seconds", "Latency.", []float64{0.001, 0.1}).Observe(0.05)
	r.HistogramWith("t_seal_seconds", `mode="incremental"`, "Seal time.", []float64{0.01}).Observe(0.5)
	r.GaugeFunc("t_util", "Utilisation.", func() float64 { return 0.25 })
	r.CounterFunc("t_lines_total", "Lines.", func() float64 { return 12 })

	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	names := validateExposition(t, buf.String())
	for _, want := range []string{
		"t_frames_total", "t_bytes_total", "t_depth", "t_seconds",
		"t_seal_seconds", "t_util", "t_lines_total",
	} {
		if !names[want] {
			t.Fatalf("registered instrument %s missing from exposition:\n%s", want, buf.String())
		}
	}
	out := buf.String()
	for _, want := range []string{
		`t_bytes_total{dir="in",type="batch"} 100`,
		`t_seconds_bucket{le="+Inf"} 1`,
		`t_seconds_sum 0.05`,
		`t_seconds_count 1`,
		`t_seal_seconds_bucket{mode="incremental",le="0.01"} 0`,
		`t_seal_seconds_count{mode="incremental"} 1`,
		"t_util 0.25",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestRegistryConcurrency hammers instruments, registration and
// exposition from many goroutines; run under -race this is the registry
// half of the observability stress satellite.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_hits_total", "hits")
	g := r.Gauge("t_depth", "depth")
	h := r.Histogram("t_seconds", "lat", []float64{0.001, 0.01, 0.1})
	const workers, per = 16, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%100) / 1000)
				g.Add(-1)
				if i%100 == 0 {
					// Concurrent idempotent registration and scraping.
					r.Counter("t_hits_total", "hits")
					r.WritePrometheus(io.Discard)
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*per)
	}
	if g.Value() != 0 {
		t.Fatalf("gauge = %d, want exactly 0 after symmetric add/sub", g.Value())
	}
	if h.Count() != workers*per {
		t.Fatalf("histogram count = %d", h.Count())
	}
}

func TestTracerSamplingAndRing(t *testing.T) {
	tr := NewTracer(4, 8)
	sampled := 0
	for i := 0; i < 64; i++ {
		if x := tr.Sample("ingest"); x != nil {
			sampled++
			t0 := time.Now()
			x.Span("decode", t0, t0.Add(time.Microsecond))
			x.Span("append", t0.Add(time.Microsecond), t0.Add(3*time.Microsecond))
			x.Finish()
			x.Finish() // double Finish is a no-op
		}
	}
	if sampled != 16 {
		t.Fatalf("sampled %d of 64 at 1/4", sampled)
	}
	slow := tr.Slowest(100)
	if len(slow) != 8 {
		t.Fatalf("ring kept %d traces, want its capacity 8", len(slow))
	}
	for i := 1; i < len(slow); i++ {
		if slow[i].TotalNS > slow[i-1].TotalNS {
			t.Fatal("Slowest not ordered by total duration")
		}
	}
	if len(slow[0].Spans) != 2 {
		t.Fatalf("trace has %d spans, want 2", len(slow[0].Spans))
	}
}

func TestNilTracerIsNoop(t *testing.T) {
	var tr *Tracer
	if tr.Sample("q") != nil {
		t.Fatal("nil tracer sampled")
	}
	if tr.SampleEvery() != 0 {
		t.Fatal("nil tracer has a sample period")
	}
	if tr.Slowest(10) != nil {
		t.Fatal("nil tracer returned traces")
	}
	var x *Trace
	x.Span("a", time.Now(), time.Now()) // must not panic
	x.Annotate("b")
	x.Finish()
}

func TestTracerEveryOneSamplesAll(t *testing.T) {
	tr := NewTracer(1, 4)
	for i := 0; i < 5; i++ {
		x := tr.Sample("q")
		if x == nil {
			t.Fatal("1/1 sampling skipped an entry")
		}
		x.Finish()
	}
	if got := len(tr.Slowest(10)); got != 4 {
		t.Fatalf("ring size %d, want 4", got)
	}
}
