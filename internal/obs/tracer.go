package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultTraceSample is the default sampling period: one in every N
// pipeline entries (batches, queries) is traced, keeping tracing overhead
// unmeasurable on the hot path.
const DefaultTraceSample = 256

// DefaultTraceBuffer is the default completed-trace ring capacity.
const DefaultTraceBuffer = 128

// Tracer records sampled pipeline traces into a bounded ring. A nil
// *Tracer is the compiled-out no-op: Sample returns nil and every *Trace
// method is nil-safe, so instrumented code needs no branches beyond the
// ones it already has.
type Tracer struct {
	every  uint64
	tick   atomic.Uint64
	nextID atomic.Uint64

	mu   sync.Mutex
	ring []*Trace // completed traces, overwritten oldest-first
	pos  int
}

// NewTracer creates a tracer sampling one in sampleEvery pipeline entries
// (<= 0 uses DefaultTraceSample) into a ring of bufferSize completed
// traces (<= 0 uses DefaultTraceBuffer).
func NewTracer(sampleEvery, bufferSize int) *Tracer {
	if sampleEvery <= 0 {
		sampleEvery = DefaultTraceSample
	}
	if bufferSize <= 0 {
		bufferSize = DefaultTraceBuffer
	}
	return &Tracer{every: uint64(sampleEvery), ring: make([]*Trace, 0, bufferSize)}
}

// SampleEvery returns the sampling period (0 for a nil tracer).
func (t *Tracer) SampleEvery() int {
	if t == nil {
		return 0
	}
	return int(t.every)
}

// Sample starts a new trace of the given kind if this entry is the
// sampled one of the current period, and returns nil otherwise (or when
// the tracer itself is nil/disabled). The returned trace is safe to stamp
// from multiple goroutines.
func (t *Tracer) Sample(kind string) *Trace {
	if t == nil {
		return nil
	}
	if t.every > 1 && t.tick.Add(1)%t.every != 1 {
		return nil
	}
	return &Trace{
		tracer: t,
		id:     t.nextID.Add(1),
		kind:   kind,
		start:  time.Now(),
	}
}

// Trace is one sampled pipeline entry's span timeline. All methods are
// nil-safe so unsampled paths pay only the nil check.
type Trace struct {
	tracer *Tracer
	id     uint64
	kind   string
	start  time.Time

	mu    sync.Mutex
	spans []Span
	total time.Duration
	done  bool
}

// Span is one stage crossing within a trace, with offsets relative to the
// trace start.
type Span struct {
	Name       string `json:"name"`
	OffsetNS   int64  `json:"offset_ns"`
	DurationNS int64  `json:"duration_ns"`
}

// Span records a completed stage [start, end].
func (tr *Trace) Span(name string, start, end time.Time) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	tr.spans = append(tr.spans, Span{
		Name:       name,
		OffsetNS:   start.Sub(tr.start).Nanoseconds(),
		DurationNS: end.Sub(start).Nanoseconds(),
	})
	tr.mu.Unlock()
}

// Annotate records an instantaneous event at now.
func (tr *Trace) Annotate(name string) {
	if tr == nil {
		return
	}
	now := time.Now()
	tr.Span(name, now, now)
}

// Finish seals the trace and publishes it to the tracer's ring. Calling
// Finish more than once is a no-op.
func (tr *Trace) Finish() {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	if tr.done {
		tr.mu.Unlock()
		return
	}
	tr.done = true
	tr.total = time.Since(tr.start)
	tr.mu.Unlock()

	t := tr.tracer
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, tr)
	} else {
		t.ring[t.pos] = tr
		t.pos = (t.pos + 1) % cap(t.ring)
	}
	t.mu.Unlock()
}

// TraceSnapshot is the JSON form of a completed trace (what /tracez
// serves).
type TraceSnapshot struct {
	ID      uint64    `json:"id"`
	Kind    string    `json:"kind"`
	Start   time.Time `json:"start"`
	TotalNS int64     `json:"total_ns"`
	Spans   []Span    `json:"spans"`
}

// Slowest returns up to n completed traces ordered by total duration,
// slowest first.
func (t *Tracer) Slowest(n int) []TraceSnapshot {
	if t == nil || n <= 0 {
		return nil
	}
	t.mu.Lock()
	all := append([]*Trace(nil), t.ring...)
	t.mu.Unlock()
	out := make([]TraceSnapshot, 0, len(all))
	for _, tr := range all {
		tr.mu.Lock()
		out = append(out, TraceSnapshot{
			ID:      tr.id,
			Kind:    tr.kind,
			Start:   tr.start,
			TotalNS: tr.total.Nanoseconds(),
			Spans:   append([]Span(nil), tr.spans...),
		})
		tr.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TotalNS > out[j].TotalNS })
	if len(out) > n {
		out = out[:n]
	}
	return out
}
