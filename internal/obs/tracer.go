package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultTraceSample is the default sampling period: one in every N
// pipeline entries (batches, queries) is traced, keeping tracing overhead
// unmeasurable on the hot path.
const DefaultTraceSample = 256

// DefaultTraceBuffer is the default completed-trace ring capacity.
const DefaultTraceBuffer = 128

// DefaultSlowBuffer is the slow-trace ring capacity: traces exceeding the
// slow threshold are force-retained here regardless of sampling.
const DefaultSlowBuffer = 64

// DefaultSlowQuery is the default slow-trace threshold (the server's
// -slow-query flag): any trace whose total wall time meets it is retained
// with 100% probability, independent of the 1/N sampler.
const DefaultSlowQuery = 100 * time.Millisecond

// SpanID identifies one span within a trace; 0 is the trace root (a span
// with parent 0 is a top-level stage).
type SpanID int32

// Tracer records pipeline traces into two bounded rings: a sampled ring
// (one in every N entries, plus any wire-force-sampled request) and a slow
// ring holding every trace that exceeded the slow threshold. A nil *Tracer
// is the compiled-out no-op: Begin/Sample return nil and every *Trace
// method is nil-safe, so instrumented code needs no branches beyond the
// ones it already has.
type Tracer struct {
	every uint64
	tick  atomic.Uint64
	seq   atomic.Uint64
	seed  uint64

	// slowNS is the slow-trace threshold in nanoseconds; <= 0 disables the
	// slow ring. onSlow fires once per retained slow trace (metric hook).
	slowNS atomic.Int64
	onSlow atomic.Pointer[func(kind string)]

	mu   sync.Mutex
	ring []*Trace // completed sampled traces, overwritten oldest-first
	pos  int

	slowMu   sync.Mutex
	slowRing []*Trace // completed slow traces, overwritten oldest-first
	slowPos  int
}

// NewTracer creates a tracer sampling one in sampleEvery pipeline entries
// (<= 0 uses DefaultTraceSample) into a ring of bufferSize completed
// traces (<= 0 uses DefaultTraceBuffer). The slow ring starts disabled;
// arm it with SetSlowThreshold.
func NewTracer(sampleEvery, bufferSize int) *Tracer {
	if sampleEvery <= 0 {
		sampleEvery = DefaultTraceSample
	}
	if bufferSize <= 0 {
		bufferSize = DefaultTraceBuffer
	}
	return &Tracer{
		every:    uint64(sampleEvery),
		seed:     uint64(time.Now().UnixNano()),
		ring:     make([]*Trace, 0, bufferSize),
		slowRing: make([]*Trace, 0, DefaultSlowBuffer),
	}
}

// SampleEvery returns the sampling period (0 for a nil tracer).
func (t *Tracer) SampleEvery() int {
	if t == nil {
		return 0
	}
	return int(t.every)
}

// Capacity returns the sampled ring's capacity (0 for a nil tracer); the
// admin plane clamps /tracez?n= to it. The capacity is fixed at
// construction, but the slice header itself moves under Finish's appends,
// so the read takes the ring lock.
func (t *Tracer) Capacity() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return cap(t.ring)
}

// SetSlowThreshold arms (or, with d <= 0, disarms) the slow ring: any
// trace whose total duration reaches d is retained there at Finish,
// regardless of sampling.
func (t *Tracer) SetSlowThreshold(d time.Duration) {
	if t == nil {
		return
	}
	t.slowNS.Store(d.Nanoseconds())
}

// SlowThreshold returns the current slow-trace threshold (0 when the slow
// ring is disarmed or the tracer is nil).
func (t *Tracer) SlowThreshold() time.Duration {
	if t == nil {
		return 0
	}
	ns := t.slowNS.Load()
	if ns <= 0 {
		return 0
	}
	return time.Duration(ns)
}

// SetOnSlow installs the slow-trace hook, fired once per trace retained
// into the slow ring (the server counts these per kind).
func (t *Tracer) SetOnSlow(fn func(kind string)) {
	if t == nil {
		return
	}
	t.onSlow.Store(&fn)
}

// tickSample advances the 1/N sampler and reports whether this entry is
// the sampled one of the current period.
func (t *Tracer) tickSample() bool {
	return t.every <= 1 || t.tick.Add(1)%t.every == 1
}

// genID derives a process-unique, well-mixed trace ID (splitmix64 over a
// boot-time seed plus a sequence counter). Never returns 0.
func (t *Tracer) genID() uint64 {
	x := t.seed + t.seq.Add(1)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	return x
}

// Sample starts a new trace of the given kind if this entry is the sampled
// one of the current period, and returns nil otherwise (or when the tracer
// itself is nil/disabled). The returned trace is safe to stamp from
// multiple goroutines.
func (t *Tracer) Sample(kind string) *Trace {
	if t == nil {
		return nil
	}
	if !t.tickSample() {
		return nil
	}
	return newTrace(t, t.genID(), kind, true, time.Now())
}

// Begin starts a trace for one pipeline entry, honouring wire-propagated
// trace context: traceID (0 = generate one) and forceSample (the client's
// -trace flag) mark the trace for the sampled ring regardless of the 1/N
// sampler. Unlike Sample, Begin also returns a live trace for *unsampled*
// entries whenever the slow ring is armed, so a slow outlier is captured
// with 100% probability; when neither sampling nor the slow threshold
// wants the entry, it returns nil and the hot path stays allocation-free.
func (t *Tracer) Begin(kind string, traceID uint64, forceSample bool, start time.Time) *Trace {
	if t == nil {
		return nil
	}
	sampled := t.tickSample() || forceSample
	if !sampled && t.slowNS.Load() <= 0 {
		return nil
	}
	if traceID == 0 {
		traceID = t.genID()
	}
	return newTrace(t, traceID, kind, sampled, start)
}

// TickSample advances the 1/N sampler and reports whether this entry
// should trace live: the sampler picked it or the wire forced it (the
// client's -trace flag). Callers pairing this with BeginAt get the same
// behaviour as Begin for sampled entries while keeping unsampled ones
// allocation-free.
func (t *Tracer) TickSample(force bool) bool {
	if t == nil {
		return false
	}
	return t.tickSample() || force
}

// BeginAt returns a live trace unconditionally, without consulting the
// sampler: the caller has already decided this entry traces (TickSample
// said so) or is materialising a slow trace after the fact (sampled=false,
// so Finish publishes it only to the slow ring). traceID 0 generates one.
func (t *Tracer) BeginAt(kind string, traceID uint64, sampled bool, start time.Time) *Trace {
	if t == nil {
		return nil
	}
	if traceID == 0 {
		traceID = t.genID()
	}
	return newTrace(t, traceID, kind, sampled, start)
}

// SlowExceeded reports whether d crosses the armed slow threshold (false
// when disarmed or on a nil tracer).
func (t *Tracer) SlowExceeded(d time.Duration) bool {
	if t == nil {
		return false
	}
	th := t.slowNS.Load()
	return th > 0 && d.Nanoseconds() >= th
}

// Trace is one pipeline entry's span tree. All methods are nil-safe so
// unsampled paths pay only the nil check, and every mutation is a no-op
// once Finish has sealed the trace — a late stamp from a straggling
// goroutine can never mutate a published trace.
type Trace struct {
	tracer  *Tracer
	id      uint64
	kind    string
	sampled bool
	start   time.Time

	mu    sync.Mutex
	spans []Span
	attrs []attr
	total time.Duration
	done  bool

	// Inline backing arrays for spans/attrs: a typical query trace stamps
	// 6–8 spans and a handful of attributes, and with the slow ring armed
	// EVERY entry carries a live trace, so the always-on path must stay one
	// allocation (the Trace itself). Longer traces spill to the heap
	// normally.
	spanArr [8]Span
	attrArr [6]attr
}

// newTrace allocates a trace with its span/attr storage pointed at the
// inline arrays.
func newTrace(t *Tracer, id uint64, kind string, sampled bool, start time.Time) *Trace {
	tr := &Trace{tracer: t, id: id, kind: kind, sampled: sampled, start: start}
	tr.spans = tr.spanArr[:0]
	tr.attrs = tr.attrArr[:0]
	return tr
}

// attr is one key/value annotation on a trace (session, class, plan-cache
// outcome, byte counts — the structured fields of a slow-query record).
type attr struct{ k, v string }

// Span is one stage within a trace. Parent links spans into a tree: 0 is
// the trace root, anything else the ID of an enclosing span (IDs are
// assigned at StartSpan/AddSpan time, so parents exist before children).
// DurationNS is -1 while a started span is still open.
type Span struct {
	ID         SpanID `json:"id"`
	Parent     SpanID `json:"parent,omitempty"`
	Name       string `json:"name"`
	OffsetNS   int64  `json:"offset_ns"`
	DurationNS int64  `json:"duration_ns"`
}

// TraceID returns the trace's wire-propagated identity (0 on nil).
func (tr *Trace) TraceID() uint64 {
	if tr == nil {
		return 0
	}
	return tr.id
}

// Sampled reports whether the trace is destined for the sampled ring
// (false on nil).
func (tr *Trace) Sampled() bool {
	if tr == nil {
		return false
	}
	return tr.sampled
}

// addSpanLocked appends a span and returns its ID. Caller holds tr.mu and
// has checked tr.done.
func (tr *Trace) addSpanLocked(parent SpanID, name string, offsetNS, durationNS int64) SpanID {
	id := SpanID(len(tr.spans) + 1)
	tr.spans = append(tr.spans, Span{
		ID: id, Parent: parent, Name: name,
		OffsetNS: offsetNS, DurationNS: durationNS,
	})
	return id
}

// StartSpan opens a span under parent (0 = trace root) and returns its ID
// for EndSpan and for attaching children — possibly from other goroutines.
// Returns 0 on a nil or finished trace; 0 is safe to pass everywhere.
func (tr *Trace) StartSpan(parent SpanID, name string) SpanID {
	if tr == nil {
		return 0
	}
	now := time.Now()
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.done {
		return 0
	}
	return tr.addSpanLocked(parent, name, now.Sub(tr.start).Nanoseconds(), -1)
}

// EndSpan closes a span opened by StartSpan. No-op for id 0, nil or
// finished traces.
func (tr *Trace) EndSpan(id SpanID) {
	if tr == nil || id <= 0 {
		return
	}
	now := time.Now()
	tr.mu.Lock()
	if !tr.done && int(id) <= len(tr.spans) {
		sp := &tr.spans[id-1]
		if sp.DurationNS < 0 {
			sp.DurationNS = now.Sub(tr.start).Nanoseconds() - sp.OffsetNS
		}
	}
	tr.mu.Unlock()
}

// AddSpan records a completed stage [start, end] under parent (0 = trace
// root) and returns its ID, or 0 on a nil/finished trace.
func (tr *Trace) AddSpan(parent SpanID, name string, start, end time.Time) SpanID {
	if tr == nil {
		return 0
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.done {
		return 0
	}
	return tr.addSpanLocked(parent, name,
		start.Sub(tr.start).Nanoseconds(), end.Sub(start).Nanoseconds())
}

// Span records a completed root-level stage [start, end].
func (tr *Trace) Span(name string, start, end time.Time) {
	tr.AddSpan(0, name, start, end)
}

// Annotate records an instantaneous root-level event at now.
func (tr *Trace) Annotate(name string) {
	if tr == nil {
		return
	}
	now := time.Now()
	tr.AddSpan(0, name, now, now)
}

// SetAttr attaches (or overwrites) a key/value annotation.
func (tr *Trace) SetAttr(key, value string) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	if !tr.done {
		for i := range tr.attrs {
			if tr.attrs[i].k == key {
				tr.attrs[i].v = value
				tr.mu.Unlock()
				return
			}
		}
		tr.attrs = append(tr.attrs, attr{k: key, v: value})
	}
	tr.mu.Unlock()
}

// Finish seals the trace and publishes it: to the sampled ring if the
// trace is sampled, and to the slow ring (firing the slow hook) if its
// total duration reached the armed threshold. Open spans are clamped to
// the trace end. Calling Finish more than once is a no-op, and every later
// Span/Annotate/SetAttr/StartSpan call is too.
func (tr *Trace) Finish() {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	if tr.done {
		tr.mu.Unlock()
		return
	}
	tr.done = true
	tr.total = time.Since(tr.start)
	totalNS := tr.total.Nanoseconds()
	for i := range tr.spans {
		if tr.spans[i].DurationNS < 0 {
			tr.spans[i].DurationNS = totalNS - tr.spans[i].OffsetNS
		}
	}
	tr.mu.Unlock()

	t := tr.tracer
	if tr.sampled {
		t.mu.Lock()
		if len(t.ring) < cap(t.ring) {
			t.ring = append(t.ring, tr)
		} else {
			t.ring[t.pos] = tr
			t.pos = (t.pos + 1) % cap(t.ring)
		}
		t.mu.Unlock()
	}
	if th := t.slowNS.Load(); th > 0 && totalNS >= th {
		t.slowMu.Lock()
		if len(t.slowRing) < cap(t.slowRing) {
			t.slowRing = append(t.slowRing, tr)
		} else {
			t.slowRing[t.slowPos] = tr
			t.slowPos = (t.slowPos + 1) % cap(t.slowRing)
		}
		t.slowMu.Unlock()
		if fn := t.onSlow.Load(); fn != nil && *fn != nil {
			(*fn)(tr.kind)
		}
	}
}

// TraceSnapshot is the JSON form of a completed trace (what /tracez
// serves). ID is the numeric trace ID; TraceID its zero-padded hex form,
// the spelling exemplars and clients use.
type TraceSnapshot struct {
	ID      uint64            `json:"id"`
	TraceID string            `json:"trace_id"`
	Kind    string            `json:"kind"`
	Sampled bool              `json:"sampled"`
	Start   time.Time         `json:"start"`
	TotalNS int64             `json:"total_ns"`
	Attrs   map[string]string `json:"attrs,omitempty"`
	Spans   []Span            `json:"spans"`
}

// TraceIDString renders a trace ID the way snapshots and exemplars spell
// it: 16 lower-case hex digits.
func TraceIDString(id uint64) string {
	const hexDigits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexDigits[id&0xf]
		id >>= 4
	}
	return string(b[:])
}

// snapshot renders the trace; safe on completed and in-flight traces.
func (tr *Trace) snapshot() TraceSnapshot {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	s := TraceSnapshot{
		ID:      tr.id,
		TraceID: TraceIDString(tr.id),
		Kind:    tr.kind,
		Sampled: tr.sampled,
		Start:   tr.start,
		TotalNS: tr.total.Nanoseconds(),
		Spans:   append([]Span(nil), tr.spans...),
	}
	if len(tr.attrs) > 0 {
		s.Attrs = make(map[string]string, len(tr.attrs))
		for _, a := range tr.attrs {
			s.Attrs[a.k] = a.v
		}
	}
	return s
}

// Slowest returns up to n completed sampled traces ordered by total
// duration, slowest first.
func (t *Tracer) Slowest(n int) []TraceSnapshot {
	if t == nil || n <= 0 {
		return nil
	}
	t.mu.Lock()
	all := append([]*Trace(nil), t.ring...)
	t.mu.Unlock()
	out := make([]TraceSnapshot, 0, len(all))
	for _, tr := range all {
		out = append(out, tr.snapshot())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TotalNS > out[j].TotalNS })
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// FindByID returns the completed trace with the given ID from either ring
// (the sampled ring is checked first). The rings are small, so a linear
// scan serves the admin plane fine.
func (t *Tracer) FindByID(id uint64) (TraceSnapshot, bool) {
	if t == nil || id == 0 {
		return TraceSnapshot{}, false
	}
	t.mu.Lock()
	sampled := append([]*Trace(nil), t.ring...)
	t.mu.Unlock()
	for _, tr := range sampled {
		if tr.id == id {
			return tr.snapshot(), true
		}
	}
	t.slowMu.Lock()
	slow := append([]*Trace(nil), t.slowRing...)
	t.slowMu.Unlock()
	for _, tr := range slow {
		if tr.id == id {
			return tr.snapshot(), true
		}
	}
	return TraceSnapshot{}, false
}

// SlowRecord is the structured form of one slow-trace retention (what
// /slowlog serves): identity, shape attributes, and the per-stage
// breakdown derived from the trace's root-level spans.
type SlowRecord struct {
	TraceID string            `json:"trace_id"`
	Kind    string            `json:"kind"`
	Start   time.Time         `json:"start"`
	TotalNS int64             `json:"total_ns"`
	Attrs   map[string]string `json:"attrs,omitempty"`
	StageNS map[string]int64  `json:"stage_ns,omitempty"`
}

// SlowLog returns up to n slow-trace records, most recent first.
func (t *Tracer) SlowLog(n int) []SlowRecord {
	if t == nil || n <= 0 {
		return nil
	}
	t.slowMu.Lock()
	all := make([]*Trace, 0, len(t.slowRing))
	// Oldest-first ring order: entries [pos..] then [..pos) when full.
	for i := 0; i < len(t.slowRing); i++ {
		all = append(all, t.slowRing[(t.slowPos+i)%len(t.slowRing)])
	}
	t.slowMu.Unlock()
	if len(all) > n {
		all = all[len(all)-n:]
	}
	out := make([]SlowRecord, 0, len(all))
	for i := len(all) - 1; i >= 0; i-- {
		s := all[i].snapshot()
		rec := SlowRecord{
			TraceID: s.TraceID,
			Kind:    s.Kind,
			Start:   s.Start,
			TotalNS: s.TotalNS,
			Attrs:   s.Attrs,
		}
		if len(s.Spans) > 0 {
			rec.StageNS = make(map[string]int64)
			for _, sp := range s.Spans {
				if sp.Parent == 0 {
					rec.StageNS[sp.Name] += sp.DurationNS
				}
			}
		}
		out = append(out, rec)
	}
	return out
}

// SlowCount reports how many slow traces are currently retained.
func (t *Tracer) SlowCount() int {
	if t == nil {
		return 0
	}
	t.slowMu.Lock()
	defer t.slowMu.Unlock()
	return len(t.slowRing)
}
