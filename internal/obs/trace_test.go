package obs

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceSpanTree(t *testing.T) {
	tr := NewTracer(1, 4)
	x := tr.Begin("fleet-query", 0, false, time.Now())
	if x == nil {
		t.Fatal("1/1 Begin returned nil")
	}
	if x.TraceID() == 0 {
		t.Fatal("Begin did not assign a trace ID")
	}
	ev := x.StartSpan(0, "evaluate")
	if ev == 0 {
		t.Fatal("StartSpan returned 0 on a live trace")
	}
	s1 := x.StartSpan(ev, "session-1")
	x.AddSpan(s1, "queue-wait", time.Now(), time.Now().Add(time.Microsecond))
	x.EndSpan(s1)
	x.EndSpan(ev)
	x.SetAttr("kind", "approx_count")
	x.Finish()

	snap, ok := tr.FindByID(x.TraceID())
	if !ok {
		t.Fatal("FindByID missed a sampled trace")
	}
	if len(snap.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(snap.Spans))
	}
	byName := map[string]Span{}
	for _, sp := range snap.Spans {
		byName[sp.Name] = sp
	}
	if byName["evaluate"].Parent != 0 {
		t.Fatalf("evaluate parent = %d, want root", byName["evaluate"].Parent)
	}
	if byName["session-1"].Parent != byName["evaluate"].ID {
		t.Fatal("session-1 not parented under evaluate")
	}
	if byName["queue-wait"].Parent != byName["session-1"].ID {
		t.Fatal("queue-wait not parented under session-1")
	}
	for _, sp := range snap.Spans {
		if sp.DurationNS < 0 {
			t.Fatalf("span %s left unfinished after Finish: %d", sp.Name, sp.DurationNS)
		}
	}
	if snap.Attrs["kind"] != "approx_count" {
		t.Fatalf("attrs = %v", snap.Attrs)
	}
}

func TestTraceSealedAfterFinish(t *testing.T) {
	tr := NewTracer(1, 4)
	x := tr.Begin("query", 0, false, time.Now())
	x.Span("decode", time.Now(), time.Now())
	open := x.StartSpan(0, "evaluate")
	x.Finish()

	// Every post-Finish mutation must be a no-op: the trace is published.
	x.Span("late", time.Now(), time.Now().Add(time.Hour))
	x.Annotate("late-note")
	x.SetAttr("late", "yes")
	if id := x.StartSpan(0, "late-span"); id != 0 {
		t.Fatalf("StartSpan after Finish returned %d, want 0", id)
	}
	if id := x.AddSpan(0, "late-add", time.Now(), time.Now()); id != 0 {
		t.Fatalf("AddSpan after Finish returned %d, want 0", id)
	}
	x.EndSpan(open) // must not resurrect or panic

	snap, ok := tr.FindByID(x.TraceID())
	if !ok {
		t.Fatal("trace not published")
	}
	if len(snap.Spans) != 2 {
		t.Fatalf("sealed trace has %d spans, want 2", len(snap.Spans))
	}
	if len(snap.Attrs) != 0 {
		t.Fatalf("sealed trace grew attrs: %v", snap.Attrs)
	}
	for _, sp := range snap.Spans {
		if sp.OffsetNS+sp.DurationNS > snap.TotalNS {
			t.Fatalf("span %s extends past sealed total", sp.Name)
		}
	}
}

func TestBeginSlowThresholdForcesRetention(t *testing.T) {
	tr := NewTracer(1<<30, 8) // sampler fires once, then never again
	tr.Sample("warmup")       // burn the period's one sampled tick
	tr.SetSlowThreshold(time.Microsecond)
	var slowKinds []string
	tr.SetOnSlow(func(kind string) { slowKinds = append(slowKinds, kind) })

	// Unsampled but slow: must land in the slow ring with 100% probability.
	x := tr.Begin("query", 0, false, time.Now().Add(-time.Millisecond))
	if x == nil {
		t.Fatal("Begin returned nil with the slow ring armed")
	}
	if x.Sampled() {
		t.Fatal("entry unexpectedly sampled at 1/2^30")
	}
	x.SetAttr("session", "7")
	x.Span("evaluate", time.Now().Add(-time.Millisecond), time.Now())
	x.Finish()

	if n := tr.SlowCount(); n != 1 {
		t.Fatalf("slow ring holds %d, want 1", n)
	}
	if len(slowKinds) != 1 || slowKinds[0] != "query" {
		t.Fatalf("onSlow fired with %v", slowKinds)
	}
	recs := tr.SlowLog(10)
	if len(recs) != 1 {
		t.Fatalf("SlowLog returned %d records", len(recs))
	}
	r := recs[0]
	if r.Kind != "query" || r.Attrs["session"] != "7" || r.StageNS["evaluate"] <= 0 {
		t.Fatalf("slow record = %+v", r)
	}
	if r.TotalNS < time.Microsecond.Nanoseconds() {
		t.Fatalf("slow record total %d below threshold", r.TotalNS)
	}
	// Unsampled traces stay off /tracez...
	if got := len(tr.Slowest(100)); got != 0 {
		t.Fatalf("unsampled slow trace leaked into the sampled ring (%d)", got)
	}
	// ...but remain findable by ID for /tracez?id=.
	if _, ok := tr.FindByID(x.TraceID()); !ok {
		t.Fatal("slow trace not findable by ID")
	}
}

func TestBeginFastPathAndForceSample(t *testing.T) {
	tr := NewTracer(1<<30, 8)
	tr.Sample("warmup") // burn the period's one sampled tick
	// Slow ring disarmed + unsampled: Begin must return nil (no alloc).
	if x := tr.Begin("ingest", 0, false, time.Now()); x != nil {
		t.Fatal("unsampled Begin with slow ring disarmed returned a trace")
	}
	// forceSample (wire -trace) overrides the sampler and keeps the ID.
	x := tr.Begin("query", 0xabcdef, true, time.Now())
	if x == nil || !x.Sampled() {
		t.Fatal("forceSample did not sample")
	}
	if x.TraceID() != 0xabcdef {
		t.Fatalf("trace ID = %x, want wire-propagated abcdef", x.TraceID())
	}
	x.Finish()
	snap, ok := tr.FindByID(0xabcdef)
	if !ok || snap.TraceID != TraceIDString(0xabcdef) {
		t.Fatalf("forced trace not served by ID: %+v ok=%v", snap, ok)
	}
}

func TestSlowRingBounded(t *testing.T) {
	tr := NewTracer(1<<30, 8)
	tr.Sample("warmup")
	tr.SetSlowThreshold(time.Nanosecond)
	for i := 0; i < 3*DefaultSlowBuffer; i++ {
		x := tr.Begin("query", 0, false, time.Now().Add(-time.Millisecond))
		x.Finish()
	}
	if n := tr.SlowCount(); n != DefaultSlowBuffer {
		t.Fatalf("slow ring holds %d, want capacity %d", n, DefaultSlowBuffer)
	}
	if n := len(tr.SlowLog(10)); n != 10 {
		t.Fatalf("SlowLog(10) returned %d", n)
	}
}

// TestTraceConcurrentChildren is the obs-race half of the distributed
// tracing satellite: many goroutines attach child spans to one trace while
// readers snapshot both rings, and stragglers keep stamping after Finish.
func TestTraceConcurrentChildren(t *testing.T) {
	tr := NewTracer(1, 64)
	tr.SetSlowThreshold(time.Nanosecond)
	x := tr.Begin("fleet-query", 0, false, time.Now())
	root := x.StartSpan(0, "evaluate")

	const workers = 8
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sid := x.StartSpan(root, fmt.Sprintf("session-%d", w))
				x.AddSpan(sid, "queue-wait", time.Now(), time.Now())
				x.EndSpan(sid)
				x.SetAttr(fmt.Sprintf("w%d", w), "done")
				if i == 100 && w == 0 {
					x.Finish() // some writers race the publication
				}
			}
		}(w)
	}
	var rg sync.WaitGroup
	rg.Add(1)
	go func() {
		defer rg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				tr.Slowest(16)
				tr.SlowLog(16)
				tr.FindByID(x.TraceID())
			}
		}
	}()
	wg.Wait()
	x.EndSpan(root)
	x.Finish()
	close(stop)
	rg.Wait()

	snap, ok := tr.FindByID(x.TraceID())
	if !ok {
		t.Fatal("trace lost")
	}
	for _, sp := range snap.Spans {
		if sp.OffsetNS+sp.DurationNS > snap.TotalNS {
			t.Fatalf("span %s extends past sealed total", sp.Name)
		}
	}
}

func TestHistogramExemplarExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t_lat_seconds", "Latency.", []float64{0.01, 1})
	h.ObserveExemplar(0.5, 0xdeadbeef)
	h.ObserveExemplar(0.002, 0) // zero trace ID: counted, no exemplar

	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()
	validateExposition(t, out)
	want := `t_lat_seconds_bucket{le="1"} 2 # {trace_id="00000000deadbeef"} 0.5`
	if !strings.Contains(out, want) {
		t.Fatalf("exposition missing exemplar line %q:\n%s", want, out)
	}
	if strings.Contains(out, `le="0.01"} 1 #`) {
		t.Fatalf("bucket without traced observation grew an exemplar:\n%s", out)
	}
	if h.Count() != 2 {
		t.Fatalf("count = %d, want 2", h.Count())
	}
}

func TestTraceIDString(t *testing.T) {
	if got := TraceIDString(0x1a2b); got != "0000000000001a2b" {
		t.Fatalf("TraceIDString = %q", got)
	}
}
