// Package obs is the observability substrate of the AIMS middle tier: a
// dependency-free registry of named, lock-free instruments (counters,
// gauges, fixed-bucket histograms, scrape-time callback instruments) with
// Prometheus text exposition, and a sampling pipeline tracer that records
// span timelines of batches and queries crossing the ingest and query
// stages into a bounded ring (tracer.go).
//
// Hot-path updates are single atomic operations; the registry mutex is
// taken only at registration and exposition time, so instruments are safe
// to hammer from thousands of session goroutines.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Registry holds named instruments and renders them in Prometheus text
// exposition format. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu   sync.Mutex
	inst []instrument
	byID map[string]instrument
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byID: map[string]instrument{}}
}

// meta is the identity of one instrument: its metric name, optional
// label pairs (`dir="in",type="batch"` — no braces), help text and
// exposition TYPE.
type meta struct {
	name   string
	labels string
	help   string
	typ    string
}

func (m *meta) id() string { return m.name + "{" + m.labels + "}" }

// series renders the sample-line prefix: name plus the label set, with
// extra merged in (used for histogram le labels).
func (m *meta) series(extra string) string {
	l := m.labels
	if extra != "" {
		if l != "" {
			l += ","
		}
		l += extra
	}
	if l == "" {
		return m.name
	}
	return m.name + "{" + l + "}"
}

type instrument interface {
	metaRef() *meta
	expose(w io.Writer)
}

// register adds inst, or returns the already-registered instrument of the
// same (name, labels) identity. Re-registering an identity as a different
// instrument kind panics: that is a programming error, not load-time
// input.
func (r *Registry) register(inst instrument) instrument {
	r.mu.Lock()
	defer r.mu.Unlock()
	id := inst.metaRef().id()
	if prev, ok := r.byID[id]; ok {
		if fmt.Sprintf("%T", prev) != fmt.Sprintf("%T", inst) {
			panic(fmt.Sprintf("obs: %s re-registered as a different kind", id))
		}
		return prev
	}
	r.byID[id] = inst
	r.inst = append(r.inst, inst)
	return inst
}

// Counter is a monotonically increasing uint64.
type Counter struct {
	m meta
	v atomic.Uint64
}

// Counter registers (or returns the existing) unlabelled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.CounterWith(name, "", help)
}

// CounterWith registers a counter with a fixed label set, e.g.
// `dir="in",type="batch"`.
func (r *Registry) CounterWith(name, labels, help string) *Counter {
	c := &Counter{m: meta{name: name, labels: labels, help: help, typ: "counter"}}
	return r.register(c).(*Counter)
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) metaRef() *meta { return &c.m }
func (c *Counter) expose(w io.Writer) {
	fmt.Fprintf(w, "%s %s\n", c.m.series(""), strconv.FormatUint(c.v.Load(), 10))
}

// Gauge is a settable signed value.
type Gauge struct {
	m meta
	v atomic.Int64
}

// Gauge registers (or returns the existing) unlabelled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.GaugeWith(name, "", help)
}

// GaugeWith registers a gauge with a fixed label set.
func (r *Registry) GaugeWith(name, labels, help string) *Gauge {
	g := &Gauge{m: meta{name: name, labels: labels, help: help, typ: "gauge"}}
	return r.register(g).(*Gauge)
}

// Add moves the gauge by delta (negative to decrement).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) metaRef() *meta { return &g.m }
func (g *Gauge) expose(w io.Writer) {
	fmt.Fprintf(w, "%s %s\n", g.m.series(""), strconv.FormatInt(g.v.Load(), 10))
}

// atomicFloat is a lock-free float64 accumulator (CAS on the bit pattern).
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) Load() float64 { return math.Float64frombits(f.bits.Load()) }

// Histogram is a fixed-bucket histogram: Observe is one atomic increment
// plus one CAS on the sum. Bucket b counts observations v <= Bounds[b];
// the final implicit bucket is unbounded, so the per-bucket count slice is
// always len(Bounds)+1 — derived, never hard-coded.
type Histogram struct {
	m      meta
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1, the tail bucket is +Inf
	n      atomic.Uint64
	sum    atomicFloat
	// exemplars holds the latest traced observation per bucket (OpenMetrics
	// exemplars), published as immutable snapshots so exposition never tears.
	exemplars []atomic.Pointer[exemplar]
}

// exemplar links one observed value to the trace that produced it.
type exemplar struct {
	value   float64
	traceID uint64
}

// Histogram registers (or returns the existing) unlabelled histogram with
// the given ascending bucket upper bounds.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return r.HistogramWith(name, "", help, bounds)
}

// HistogramWith registers a histogram with a fixed label set.
func (r *Registry) HistogramWith(name, labels, help string, bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %s bounds not ascending at %d", name, i))
		}
	}
	h := &Histogram{
		m:         meta{name: name, labels: labels, help: help, typ: "histogram"},
		bounds:    append([]float64(nil), bounds...),
		counts:    make([]atomic.Uint64, len(bounds)+1),
		exemplars: make([]atomic.Pointer[exemplar], len(bounds)+1),
	}
	return r.register(h).(*Histogram)
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.counts[h.bucketOf(v)].Add(1)
	h.n.Add(1)
	h.sum.Add(v)
}

// ObserveExemplar records one value and, when traceID is non-zero, pins it
// as the bucket's exemplar so the exposition links the bucket to the trace
// that landed there (a bad p99 bucket points at a captured trace).
func (h *Histogram) ObserveExemplar(v float64, traceID uint64) {
	i := h.bucketOf(v)
	h.counts[i].Add(1)
	h.n.Add(1)
	h.sum.Add(v)
	if traceID != 0 {
		h.exemplars[i].Store(&exemplar{value: v, traceID: traceID})
	}
}

func (h *Histogram) bucketOf(v float64) int {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	return i
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.n.Load() }

// Sum returns the running sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum.Load() }

// BucketCounts returns a copy of the per-bucket (non-cumulative) counts,
// one per bound plus the unbounded tail.
func (h *Histogram) BucketCounts() []uint64 {
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

func (h *Histogram) metaRef() *meta { return &h.m }
func (h *Histogram) expose(w io.Writer) {
	cum := uint64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatFloat(h.bounds[i])
		}
		// OpenMetrics-style exemplar suffix: the latest traced observation
		// that landed in this bucket, keyed by trace ID.
		ex := ""
		if ep := h.exemplars[i].Load(); ep != nil {
			ex = fmt.Sprintf(" # {trace_id=\"%s\"} %s", TraceIDString(ep.traceID), formatFloat(ep.value))
		}
		fmt.Fprintf(w, "%s_bucket%s %d%s\n",
			h.m.name, labelSuffix(h.m.labels, `le="`+le+`"`), cum, ex)
	}
	suffix := ""
	if h.m.labels != "" {
		suffix = "{" + h.m.labels + "}"
	}
	fmt.Fprintf(w, "%s_sum%s %s\n", h.m.name, suffix, formatFloat(h.sum.Load()))
	fmt.Fprintf(w, "%s_count%s %d\n", h.m.name, suffix, h.n.Load())
}

// labelSuffix renders {labels,extra} merging the fixed label set with one
// extra pair.
func labelSuffix(labels, extra string) string {
	l := labels
	if l != "" {
		l += ","
	}
	return "{" + l + extra + "}"
}

// Func is a scrape-time callback instrument: the function is evaluated at
// exposition, for values maintained elsewhere (e.g. package-level
// transform statistics).
type Func struct {
	m  meta
	fn func() float64
}

// GaugeFunc registers a callback gauge.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) *Func {
	f := &Func{m: meta{name: name, help: help, typ: "gauge"}, fn: fn}
	return r.register(f).(*Func)
}

// CounterFunc registers a callback counter (the function must be
// monotonic for the exposition TYPE to be truthful).
func (r *Registry) CounterFunc(name, help string, fn func() float64) *Func {
	f := &Func{m: meta{name: name, help: help, typ: "counter"}, fn: fn}
	return r.register(f).(*Func)
}

func (f *Func) metaRef() *meta { return &f.m }
func (f *Func) expose(w io.Writer) {
	fmt.Fprintf(w, "%s %s\n", f.m.series(""), formatFloat(f.fn()))
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered instrument in Prometheus text
// exposition format, sorted by metric name then label set, with one
// HELP/TYPE header per metric name.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	inst := append([]instrument(nil), r.inst...)
	r.mu.Unlock()
	sort.SliceStable(inst, func(i, j int) bool {
		a, b := inst[i].metaRef(), inst[j].metaRef()
		if a.name != b.name {
			return a.name < b.name
		}
		return a.labels < b.labels
	})
	prev := ""
	for _, in := range inst {
		m := in.metaRef()
		if m.name != prev {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", m.name, m.help, m.name, m.typ)
			prev = m.name
		}
		in.expose(w)
	}
}
