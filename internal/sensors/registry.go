// Package sensors models the immersive sensing hardware AIMS acquires data
// from: the 22-sensor CyberGlove of Table 1 in the paper, the 6-D Polhemus
// wrist tracker, and the 6-D body trackers (head, hands, legs) used by the
// ADHD Virtual-Classroom study. Since the physical devices are unavailable,
// the package synthesises band-limited, noisy per-sensor signals with the
// same dimensionality, sampling clock and spectral character — everything
// the downstream algorithms actually depend on.
package sensors

import "fmt"

// Kind classifies what a sensor channel measures.
type Kind string

const (
	KindJointAngle Kind = "joint-angle" // degrees of flexion/abduction
	KindPosition   Kind = "position"    // spatial coordinate
	KindRotation   Kind = "rotation"    // orientation angle (H/P/R)
)

// Spec describes one sensor channel.
type Spec struct {
	ID    int
	Name  string
	Group string // anatomical group, e.g. "thumb", "wrist", "tracker"
	Kind  Kind
	// MaxHz is the fastest frequency the underlying physical quantity
	// meaningfully contains (human joint motion tops out well below the
	// 100 Hz device clock — the premise of the paper's sampling study).
	MaxHz float64
	// Noise is the standard deviation of additive sensor noise, in the
	// channel's natural units.
	Noise float64
}

// cyberGloveTable reproduces Table 1 of the paper: the 22 joint-angle
// sensors of the CyberGlove.
var cyberGloveTable = []struct {
	name, group string
	maxHz       float64
}{
	{"thumb roll sensor", "thumb", 8},
	{"thumb inner joint", "thumb", 10},
	{"thumb outer joint", "thumb", 10},
	{"thumb-index abduction", "thumb", 6},
	{"index inner joint", "index", 12},
	{"index middle joint", "index", 12},
	{"index outer joint", "index", 12},
	{"middle inner joint", "middle", 12},
	{"middle middle joint", "middle", 12},
	{"middle outer joint", "middle", 12},
	{"index-middle abduction", "index", 6},
	{"ring inner joint", "ring", 10},
	{"ring middle joint", "ring", 10},
	{"ring outer joint", "ring", 10},
	{"ring-middle abduction", "ring", 5},
	{"pinky inner joint", "pinky", 10},
	{"pinky middle joint", "pinky", 10},
	{"pinky outer joint", "pinky", 10},
	{"pinky-ring abduction", "pinky", 5},
	{"palm arch", "palm", 4},
	{"wrist flexion", "wrist", 6},
	{"wrist abduction", "wrist", 6},
}

// CyberGloveSpecs returns the 22 joint sensors of Table 1, IDs 1..22.
func CyberGloveSpecs() []Spec {
	out := make([]Spec, len(cyberGloveTable))
	for i, row := range cyberGloveTable {
		out[i] = Spec{
			ID:    i + 1,
			Name:  row.name,
			Group: row.group,
			Kind:  KindJointAngle,
			MaxHz: row.maxHz,
			Noise: 0.35,
		}
	}
	return out
}

// PolhemusSpecs returns the 6 tracker channels mounted on the wrist: X/Y/Z
// position and H/P/R rotation, IDs 23..28.
func PolhemusSpecs() []Spec {
	names := []struct {
		name string
		kind Kind
		hz   float64
	}{
		{"tracker X", KindPosition, 5},
		{"tracker Y", KindPosition, 5},
		{"tracker Z", KindPosition, 5},
		{"tracker H (yaw)", KindRotation, 4},
		{"tracker P (pitch)", KindRotation, 4},
		{"tracker R (roll)", KindRotation, 4},
	}
	out := make([]Spec, len(names))
	for i, row := range names {
		out[i] = Spec{
			ID:    23 + i,
			Name:  row.name,
			Group: "tracker",
			Kind:  row.kind,
			MaxHz: row.hz,
			// Polhemus trackers resolve to millimetres/fractions of a
			// degree; the noise floor must stay well below the signal or
			// Nyquist estimation saturates at the device rate.
			Noise: 0.01,
		}
	}
	return out
}

// GloveSpecs returns the full 28-channel hand-capture rig: CyberGlove plus
// Polhemus — "collectively the data from the 28 sensors capture the
// entirety of a hand motion" (§2.2).
func GloveSpecs() []Spec {
	return append(CyberGloveSpecs(), PolhemusSpecs()...)
}

// BodyTrackerLocations lists the tracker placements of the ADHD study
// (§2.1): head, both hands, both legs.
var BodyTrackerLocations = []string{"head", "left-hand", "right-hand", "left-leg", "right-leg"}

// BodyTrackerSpecs returns the 6 channels (x, y, z, h, p, r) of one body
// tracker, with IDs offset by 6·trackerIndex.
func BodyTrackerSpecs(trackerIndex int, location string) []Spec {
	chans := []struct {
		name string
		kind Kind
	}{
		{"x", KindPosition}, {"y", KindPosition}, {"z", KindPosition},
		{"h", KindRotation}, {"p", KindRotation}, {"r", KindRotation},
	}
	out := make([]Spec, len(chans))
	for i, c := range chans {
		out[i] = Spec{
			ID:    trackerIndex*6 + i + 1,
			Name:  fmt.Sprintf("%s %s", location, c.name),
			Group: location,
			Kind:  c.kind,
			MaxHz: 5,
			Noise: 0.1,
		}
	}
	return out
}

// DefaultClock is the CyberGlove sensor clock of §2.2: one sample every
// 0.01 s, i.e. 100 Hz.
const DefaultClock = 100.0

// BytesPerSample is the storage cost of one raw sensor reading (float64).
const BytesPerSample = 8
