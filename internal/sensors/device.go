package sensors

import (
	"math"
	"math/rand"
)

// BandlimitedSource synthesises a continuous signal whose spectral energy
// lies (almost) entirely below MaxHz: a sum of sinusoids with 1/f-flavoured
// amplitudes plus white sensor noise. It stands in for one physical sensor
// channel.
type BandlimitedSource struct {
	freqs  []float64
	phases []float64
	amps   []float64
	offset float64
	noise  float64
	rng    *rand.Rand
}

// NewBandlimitedSource builds a source with nComponents sinusoids below
// maxHz, an amplitude scale, additive noise stddev, and a deterministic
// seed.
func NewBandlimitedSource(maxHz, amplitude, noise float64, nComponents int, seed int64) *BandlimitedSource {
	rng := rand.New(rand.NewSource(seed))
	s := &BandlimitedSource{
		freqs:  make([]float64, nComponents),
		phases: make([]float64, nComponents),
		amps:   make([]float64, nComponents),
		offset: amplitude * rng.NormFloat64() * 0.3,
		noise:  noise,
		rng:    rng,
	}
	for i := 0; i < nComponents; i++ {
		// Concentrate energy at low frequencies (human motion is smooth)
		// while guaranteeing some content near maxHz so Nyquist estimation
		// has a genuine edge to find.
		frac := rng.Float64()
		s.freqs[i] = maxHz * (0.1 + 0.9*frac*frac)
		s.phases[i] = 2 * math.Pi * rng.Float64()
		s.amps[i] = amplitude / (1 + 4*frac)
	}
	return s
}

// At returns the clean (noise-free) signal value at time t seconds.
func (s *BandlimitedSource) At(t float64) float64 {
	v := s.offset
	for i := range s.freqs {
		v += s.amps[i] * math.Sin(2*math.Pi*s.freqs[i]*t+s.phases[i])
	}
	return v
}

// Sample returns the noisy reading at time t.
func (s *BandlimitedSource) Sample(t float64) float64 {
	return s.At(t) + s.noise*s.rng.NormFloat64()
}

// Device simulates a multi-channel immersive sensing rig driven by a common
// sample clock.
type Device struct {
	Specs   []Spec
	Clock   float64 // samples per second
	sources []*BandlimitedSource
}

// NewDevice builds a device from sensor specs with per-channel synthetic
// signals. activity scales motion amplitude (1 = normal session).
func NewDevice(specs []Spec, clock, activity float64, seed int64) *Device {
	d := &Device{Specs: specs, Clock: clock, sources: make([]*BandlimitedSource, len(specs))}
	for i, sp := range specs {
		amp := 20.0 * activity // joint angles in degrees
		if sp.Kind == KindPosition {
			amp = 0.5 * activity // metres
		}
		d.sources[i] = NewBandlimitedSource(sp.MaxHz, amp, sp.Noise, 6, seed+int64(sp.ID)*101)
	}
	return d
}

// Frame samples all channels at sample index i (time i/Clock).
func (d *Device) Frame(i int) []float64 {
	t := float64(i) / d.Clock
	out := make([]float64, len(d.sources))
	for c, src := range d.sources {
		out[c] = src.Sample(t)
	}
	return out
}

// Record captures n consecutive frames as a slice of per-channel signals:
// out[channel][sampleIndex]. This channel-major layout feeds the sampling
// and compression experiments directly.
func (d *Device) Record(n int) [][]float64 {
	out := make([][]float64, len(d.sources))
	for c := range out {
		out[c] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		t := float64(i) / d.Clock
		for c, src := range d.sources {
			out[c][i] = src.Sample(t)
		}
	}
	return out
}

// RecordClean is Record without sensor noise — ground truth for
// reconstruction-error measurements.
func (d *Device) RecordClean(n int) [][]float64 {
	out := make([][]float64, len(d.sources))
	for c := range out {
		out[c] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		t := float64(i) / d.Clock
		for c, src := range d.sources {
			out[c][i] = src.At(t)
		}
	}
	return out
}
