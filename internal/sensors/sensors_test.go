package sensors

import (
	"math"
	"testing"

	"aims/internal/dsp"
)

func TestCyberGloveSpecsMatchTable1(t *testing.T) {
	specs := CyberGloveSpecs()
	if len(specs) != 22 {
		t.Fatalf("CyberGlove has %d sensors, Table 1 lists 22", len(specs))
	}
	wantNames := map[int]string{
		1:  "thumb roll sensor",
		4:  "thumb-index abduction",
		12: "ring inner joint",
		15: "ring-middle abduction",
		20: "palm arch",
		21: "wrist flexion",
		22: "wrist abduction",
	}
	for id, name := range wantNames {
		if specs[id-1].Name != name {
			t.Errorf("sensor %d = %q, Table 1 says %q", id, specs[id-1].Name, name)
		}
		if specs[id-1].ID != id {
			t.Errorf("sensor %d has ID %d", id, specs[id-1].ID)
		}
	}
	for _, sp := range specs {
		if sp.Kind != KindJointAngle {
			t.Errorf("sensor %d kind = %v", sp.ID, sp.Kind)
		}
		if sp.MaxHz <= 0 || sp.MaxHz >= DefaultClock/2 {
			t.Errorf("sensor %d MaxHz %v outside (0, Nyquist)", sp.ID, sp.MaxHz)
		}
	}
}

func TestGloveSpecsFull28(t *testing.T) {
	specs := GloveSpecs()
	if len(specs) != 28 {
		t.Fatalf("glove rig has %d channels, want 28", len(specs))
	}
	ids := map[int]bool{}
	for _, sp := range specs {
		if ids[sp.ID] {
			t.Fatalf("duplicate sensor ID %d", sp.ID)
		}
		ids[sp.ID] = true
	}
	// Last six are the Polhemus channels.
	if specs[22].Kind != KindPosition || specs[27].Kind != KindRotation {
		t.Error("Polhemus channel kinds wrong")
	}
}

func TestBodyTrackerSpecs(t *testing.T) {
	if len(BodyTrackerLocations) != 5 {
		t.Fatalf("ADHD rig should have 5 trackers (head, hands, legs)")
	}
	specs := BodyTrackerSpecs(2, "right-hand")
	if len(specs) != 6 {
		t.Fatalf("tracker has %d channels", len(specs))
	}
	if specs[0].ID != 13 {
		t.Fatalf("tracker 2 first ID = %d, want 13", specs[0].ID)
	}
	if specs[3].Kind != KindRotation {
		t.Error("h channel should be rotation")
	}
}

func TestBandlimitedSourceRespectsBandLimit(t *testing.T) {
	src := NewBandlimitedSource(8, 10, 0, 6, 42)
	const rate = 200.0
	n := 4096
	x := make([]float64, n)
	for i := range x {
		x[i] = src.At(float64(i) / rate)
	}
	fmax := dsp.MaxFrequency(x, rate, 0.999)
	if fmax > 10 {
		t.Fatalf("f_max = %v Hz for an 8 Hz band-limited source", fmax)
	}
	if fmax < 1 {
		t.Fatalf("f_max = %v Hz, source should have real spectral content", fmax)
	}
}

func TestBandlimitedSourceDeterministicCleanSignal(t *testing.T) {
	a := NewBandlimitedSource(5, 1, 0.5, 4, 7)
	b := NewBandlimitedSource(5, 1, 0.5, 4, 7)
	for i := 0; i < 50; i++ {
		t1 := float64(i) * 0.01
		if a.At(t1) != b.At(t1) {
			t.Fatal("same seed must give same clean signal")
		}
	}
}

func TestDeviceRecordShape(t *testing.T) {
	d := NewDevice(GloveSpecs(), DefaultClock, 1, 1)
	rec := d.Record(200)
	if len(rec) != 28 {
		t.Fatalf("Record channels = %d", len(rec))
	}
	for c := range rec {
		if len(rec[c]) != 200 {
			t.Fatalf("channel %d has %d samples", c, len(rec[c]))
		}
	}
	fr := d.Frame(3)
	if len(fr) != 28 {
		t.Fatalf("Frame size = %d", len(fr))
	}
}

func TestDeviceCleanVsNoisy(t *testing.T) {
	d := NewDevice(CyberGloveSpecs(), DefaultClock, 1, 3)
	clean := d.RecordClean(512)
	// The clean recording must have no white noise: its high-frequency
	// energy should be negligible compared with a noisy recording.
	d2 := NewDevice(CyberGloveSpecs(), DefaultClock, 1, 3)
	noisy := d2.Record(512)
	if cleanF := dsp.MaxFrequency(clean[0], DefaultClock, 0.999); cleanF > 20 {
		t.Fatalf("clean f_max = %v, want below 20 Hz", cleanF)
	}
	highBand := func(x []float64) float64 {
		freqs, power := dsp.Periodogram(x, DefaultClock)
		var e float64
		for i, f := range freqs {
			if f > 25 {
				e += power[i]
			}
		}
		return e
	}
	if hc, hn := highBand(clean[0]), highBand(noisy[0]); hn <= hc*2 {
		t.Fatalf("noise should add high-band energy: clean %v vs noisy %v", hc, hn)
	}
}

func TestDeviceActivityScalesAmplitude(t *testing.T) {
	calm := NewDevice(CyberGloveSpecs(), DefaultClock, 0.1, 5)
	active := NewDevice(CyberGloveSpecs(), DefaultClock, 2.0, 5)
	cv, av := 0.0, 0.0
	cRec, aRec := calm.RecordClean(256), active.RecordClean(256)
	for c := range cRec {
		for i := range cRec[c] {
			cv += math.Abs(cRec[c][i])
			av += math.Abs(aRec[c][i])
		}
	}
	if av <= cv*2 {
		t.Fatalf("activity scaling weak: calm %v vs active %v", cv, av)
	}
}
