package disk

import "fmt"

// CachedStore wraps a Store with an LRU buffer pool of a fixed number of
// block frames — the piece a production storage engine would put between
// the query engine and the device. Hits avoid device reads; the hit/miss
// accounting feeds the caching ablation (A3): the tiling allocation's
// locality shows up directly as buffer-pool hit rate on real workloads.
type CachedStore struct {
	store    *Store
	capacity int

	frames map[int]*lruNode
	head   *lruNode // most recent
	tail   *lruNode // least recent

	Hits, Misses int
}

type lruNode struct {
	block      int
	items      []Item
	prev, next *lruNode
}

// NewCachedStore wraps store with a buffer pool of capacity block frames.
func NewCachedStore(store *Store, capacity int) *CachedStore {
	if capacity <= 0 {
		panic(fmt.Sprintf("disk: cache capacity %d", capacity))
	}
	return &CachedStore{store: store, capacity: capacity, frames: map[int]*lruNode{}}
}

// Store exposes the wrapped device (for stats inspection).
func (c *CachedStore) Store() *Store { return c.store }

// ReadBlock returns a block through the pool.
func (c *CachedStore) ReadBlock(b int) []Item {
	if n, ok := c.frames[b]; ok {
		c.Hits++
		c.touch(n)
		return n.items
	}
	c.Misses++
	items := c.store.ReadBlock(b)
	n := &lruNode{block: b, items: items}
	c.frames[b] = n
	c.pushFront(n)
	if len(c.frames) > c.capacity {
		c.evict()
	}
	return items
}

func (c *CachedStore) pushFront(n *lruNode) {
	n.prev = nil
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

func (c *CachedStore) unlink(n *lruNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (c *CachedStore) touch(n *lruNode) {
	if c.head == n {
		return
	}
	c.unlink(n)
	c.pushFront(n)
}

func (c *CachedStore) evict() {
	victim := c.tail
	if victim == nil {
		return
	}
	c.unlink(victim)
	delete(c.frames, victim.block)
}

// Len returns the number of resident blocks.
func (c *CachedStore) Len() int { return len(c.frames) }

// HitRate returns Hits / (Hits + Misses), or 0 before any access.
func (c *CachedStore) HitRate() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Hits) / float64(total)
}

// Fetch mirrors Store.Fetch through the pool.
func (c *CachedStore) Fetch(positions []int) (map[int]float64, int) {
	needBlocks := map[int]bool{}
	for _, p := range positions {
		needBlocks[c.store.Alloc.BlockOf(p)] = true
	}
	want := map[int]bool{}
	for _, p := range positions {
		want[p] = true
	}
	out := make(map[int]float64, len(positions))
	for b := range needBlocks {
		for _, it := range c.ReadBlock(b) {
			if want[it.Pos] {
				out[it.Pos] = it.Value
			}
		}
	}
	return out, len(needBlocks)
}
