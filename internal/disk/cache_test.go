package disk

import (
	"math/rand"
	"testing"

	"aims/internal/wavelet"
)

func cachedFixture(t *testing.T, capacity int) (*CachedStore, *Store) {
	t.Helper()
	w := make([]float64, 256)
	for i := range w {
		w[i] = float64(i)
	}
	st := NewStore(w, NewTiling(256, 8), 8)
	st.ResetStats()
	return NewCachedStore(st, capacity), st
}

func TestCachedStoreHitsOnRepeat(t *testing.T) {
	c, st := cachedFixture(t, 4)
	a := c.ReadBlock(0)
	b := c.ReadBlock(0)
	if &a[0] != &b[0] {
		t.Fatal("repeat read did not serve from cache")
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("hits %d misses %d", c.Hits, c.Misses)
	}
	if st.Stats().BlockReads != 1 {
		t.Fatalf("device reads %d, want 1", st.Stats().BlockReads)
	}
	if c.HitRate() != 0.5 {
		t.Fatalf("hit rate %v", c.HitRate())
	}
}

func TestCachedStoreEvictsLRU(t *testing.T) {
	c, st := cachedFixture(t, 2)
	c.ReadBlock(0)
	c.ReadBlock(1)
	c.ReadBlock(0) // 0 is now most recent
	c.ReadBlock(2) // evicts 1
	if c.Len() != 2 {
		t.Fatalf("resident %d", c.Len())
	}
	before := st.Stats().BlockReads
	c.ReadBlock(0) // hit
	if st.Stats().BlockReads != before {
		t.Fatal("block 0 should still be resident")
	}
	c.ReadBlock(1) // miss: was evicted
	if st.Stats().BlockReads != before+1 {
		t.Fatal("block 1 should have been evicted")
	}
}

func TestCachedStorePanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCachedStore(&Store{}, 0)
}

func TestCachedFetchMatchesUncached(t *testing.T) {
	c, _ := cachedFixture(t, 8)
	vals, blocks := c.Fetch([]int{0, 1, 2, 100, 200})
	if len(vals) != 5 || blocks < 2 {
		t.Fatalf("vals %d blocks %d", len(vals), blocks)
	}
	if vals[100] != 100 {
		t.Fatalf("vals[100] = %v", vals[100])
	}
	// Second identical fetch: all hits.
	missesBefore := c.Misses
	c.Fetch([]int{0, 1, 2, 100, 200})
	if c.Misses != missesBefore {
		t.Fatal("repeat fetch caused device reads")
	}
}

func TestCacheExploitsTilingLocality(t *testing.T) {
	// Point-query workloads over tiling share the hot top-of-tree blocks;
	// the pool's hit rate should be substantial even with few frames.
	const n = 1 << 14
	const b = 64
	w := make([]float64, n)
	tree := wavelet.NewErrorTree(n)
	til := NewStore(w, NewTiling(n, b), b)
	seq := NewStore(w, NewSequential(n, b), b)
	rng := rand.New(rand.NewSource(4))

	run := func(st *Store) float64 {
		c := NewCachedStore(st, 8)
		for i := 0; i < 300; i++ {
			c.Fetch(tree.PointPath(rng.Intn(n)))
		}
		return c.HitRate()
	}
	rng = rand.New(rand.NewSource(4))
	tilHit := run(til)
	rng = rand.New(rand.NewSource(4))
	seqHit := run(seq)
	if tilHit < 0.3 {
		t.Fatalf("tiling hit rate %v too low", tilHit)
	}
	if tilHit <= seqHit {
		t.Fatalf("tiling hit rate %v not above sequential %v", tilHit, seqHit)
	}
}
