package disk

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"aims/internal/wavelet"
)

func TestSequentialAllocation(t *testing.T) {
	a := NewSequential(100, 8)
	if a.BlockOf(0) != 0 || a.BlockOf(7) != 0 || a.BlockOf(8) != 1 {
		t.Fatal("BlockOf broken")
	}
	if a.Blocks() != 13 {
		t.Fatalf("Blocks = %d", a.Blocks())
	}
}

func TestTilingCoversAllPositions(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (4 + rng.Intn(8))
		b := 4 << rng.Intn(6)
		ti := NewTiling(n, b)
		counts := make(map[int]int)
		for p := 0; p < n; p++ {
			blk := ti.BlockOf(p)
			if blk < 0 || blk >= ti.Blocks() {
				return false
			}
			counts[blk]++
		}
		// No block exceeds capacity.
		for _, c := range counts {
			if c > b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTilingKeepsSubtreesTogether(t *testing.T) {
	ti := NewTiling(1024, 16) // height 4
	if ti.Height() != 4 {
		t.Fatalf("height = %d", ti.Height())
	}
	// Position 0 and the top of the tree share a block.
	if ti.BlockOf(0) != ti.BlockOf(1) {
		t.Fatal("root average should live with the tree top")
	}
	// A node at depth < height shares with position 1.
	if ti.BlockOf(5) != ti.BlockOf(1) { // depth 2 < 4
		t.Fatal("shallow nodes should share the root block")
	}
	// A node and its within-tile descendants share a block.
	root := 16 // depth 4 → a tile root
	if ti.BlockOf(root) == ti.BlockOf(1) {
		t.Fatal("depth-4 node should start a new tile")
	}
	if ti.BlockOf(root*2) != ti.BlockOf(root) || ti.BlockOf(root*8+3) != ti.BlockOf(root) {
		t.Fatal("descendants within the tile must share the block")
	}
	if ti.BlockOf(root*16) == ti.BlockOf(root) {
		t.Fatal("depth-8 descendant must start a new tile")
	}
}

func TestTilingPointPathBlockCount(t *testing.T) {
	// A point query path (log2 N + 1 coefficients) should cross about
	// log2(N)/lg(B) blocks under tiling and log2(N) blocks sequentially.
	const n = 1 << 16
	const b = 64 // height 6
	tree := wavelet.NewErrorTree(n)
	til := NewTiling(n, b)
	seq := NewSequential(n, b)
	rng := rand.New(rand.NewSource(1))
	var tilBlocks, seqBlocks int
	const trials = 200
	for i := 0; i < trials; i++ {
		path := tree.PointPath(rng.Intn(n))
		tb := map[int]bool{}
		sb := map[int]bool{}
		for _, p := range path {
			tb[til.BlockOf(p)] = true
			sb[seq.BlockOf(p)] = true
		}
		tilBlocks += len(tb)
		seqBlocks += len(sb)
	}
	avgTil := float64(tilBlocks) / trials
	avgSeq := float64(seqBlocks) / trials
	if avgTil > 4 { // ceil(16/6) + 1 slack
		t.Fatalf("tiling path cost %v blocks, want ≤ 4", avgTil)
	}
	if avgSeq < 2*avgTil {
		t.Fatalf("sequential (%v) should cost ≫ tiling (%v)", avgSeq, avgTil)
	}
	// Utilisation: items per block ≈ height, within the 1+lg B bound's
	// regime (the bound is an upper bound on the expectation).
	items := float64(len(tree.PointPath(0)))
	if perBlock := items / avgTil; perBlock > UtilizationBound(b) {
		t.Fatalf("utilisation %v exceeds bound %v", perBlock, UtilizationBound(b))
	}
}

func TestProductAllocation(t *testing.T) {
	dims := []int{16, 16}
	pa := NewProduct(dims, []Allocation{NewTiling(16, 4), NewTiling(16, 4)})
	if pa.Blocks() != NewTiling(16, 4).Blocks()*NewTiling(16, 4).Blocks() {
		t.Fatal("product block count")
	}
	seen := map[int]int{}
	for flat := 0; flat < 256; flat++ {
		id := pa.BlockOf(flat)
		if id < 0 || id >= pa.Blocks() {
			t.Fatalf("block %d out of range", id)
		}
		seen[id]++
	}
	// Each product block holds per-dim capacities multiplied.
	for id, c := range seen {
		if c > 16 {
			t.Fatalf("product block %d holds %d items", id, c)
		}
	}
}

func TestUtilizationBound(t *testing.T) {
	if got := UtilizationBound(64); math.Abs(got-7) > 1e-12 {
		t.Fatalf("bound(64) = %v", got)
	}
}

func TestStoreFetchAndStats(t *testing.T) {
	w := make([]float64, 64)
	for i := range w {
		w[i] = float64(i)
	}
	st := NewStore(w, NewTiling(64, 8), 8)
	vals, blocks := st.Fetch([]int{0, 1, 2, 5})
	if len(vals) != 4 {
		t.Fatalf("fetched %d values", len(vals))
	}
	if vals[5] != 5 {
		t.Fatalf("vals[5] = %v", vals[5])
	}
	if blocks != 1 { // all within the root tile (height 3: depths 0..2)
		t.Fatalf("blocks = %d, want 1", blocks)
	}
	s := st.Stats()
	if s.BlockReads != 1 || s.ItemsRead == 0 {
		t.Fatalf("stats = %+v", s)
	}
	st.ResetStats()
	if st.Stats().BlockReads != 0 {
		t.Fatal("ResetStats failed")
	}
}

func TestStoreOverfillPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	// Sequential with block size 4 but capacity declared 2.
	NewStore(make([]float64, 16), NewSequential(16, 4), 2)
}

func TestMeasureUtilizationTilingVsSequential(t *testing.T) {
	const n = 1 << 14
	const b = 64
	tree := wavelet.NewErrorTree(n)
	w := make([]float64, n)
	tilStore := NewStore(w, NewTiling(n, b), b)
	seqStore := NewStore(w, NewSequential(n, b), b)

	// Tiling optimises the root-to-leaf dependency paths of point and
	// short-range queries (the access pattern §3.2.1 analyses); wide ranges
	// degenerate to scans where any contiguous layout does fine.
	rng := rand.New(rand.NewSource(2))
	var tilSum, seqSum float64
	const trials = 100
	for i := 0; i < trials; i++ {
		lo := rng.Intn(n - 10)
		hi := lo + rng.Intn(8)
		need := tree.RangeNeed(lo, hi)
		tilU := tilStore.MeasureUtilization(need)
		seqU := seqStore.MeasureUtilization(need)
		tilSum += tilU.ItemsPerBlock
		seqSum += seqU.ItemsPerBlock
		if tilU.ItemsPerBlock > tilU.Bound {
			t.Fatalf("tiling utilisation %v exceeds the 1+lgB bound %v", tilU.ItemsPerBlock, tilU.Bound)
		}
	}
	if tilSum <= 2*seqSum {
		t.Fatalf("tiling utilisation %v should dominate sequential %v on point paths",
			tilSum/trials, seqSum/trials)
	}
}

func TestImportanceOrderAndProgressiveDot(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 256
	w := make([]float64, n)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	st := NewStore(w, NewTiling(n, 8), 8)
	// Query referencing a handful of positions with varying weights.
	query := map[int]float64{0: 5, 1: 0.01, 17: 2, 200: -3, 90: 0.001}
	order := st.ImportanceOrder(query)
	if len(order) == 0 {
		t.Fatal("no blocks ordered")
	}
	steps := st.ProgressiveDot(query, order)
	var exact float64
	for p, qv := range query {
		exact += qv * w[p]
	}
	final := steps[len(steps)-1].Estimate
	if math.Abs(final-exact) > 1e-9 {
		t.Fatalf("progressive final %v vs exact %v", final, exact)
	}
	// Importance ordering front-loads contribution magnitude: after the
	// first fetch, the remaining absolute contribution must be no larger
	// than under any other order (checked against the reverse order).
	remaining := func(fetched map[int]bool) float64 {
		var r float64
		for p, qv := range query {
			if !fetched[st.Alloc.BlockOf(p)] {
				r += math.Abs(qv * w[p])
			}
		}
		return r
	}
	remImp := remaining(map[int]bool{order[0]: true})
	remRev := remaining(map[int]bool{order[len(order)-1]: true})
	if remImp > remRev+1e-12 {
		t.Fatalf("importance-first remaining %v worse than reverse %v", remImp, remRev)
	}
}

func TestLevelOrderName(t *testing.T) {
	lo := NewLevelOrder(64, 8)
	if lo.Name() != "level-order" {
		t.Fatal("name")
	}
	if lo.BlockOf(9) != 1 {
		t.Fatal("BlockOf")
	}
}
