package disk

import (
	"fmt"
	"math"
	"sort"
)

// Item is one stored coefficient: its position in the transform layout and
// its value.
type Item struct {
	Pos   int
	Value float64
}

// Stats counts simulated device traffic.
type Stats struct {
	BlockReads  int
	BlockWrites int
	ItemsRead   int
}

// Store is a simulated block device holding wavelet coefficients under a
// chosen allocation. All I/O is counted; there is no caching, so the
// counters reflect the allocation quality directly.
type Store struct {
	Alloc     Allocation
	BlockSize int
	blocks    [][]Item
	loc       map[int]struct{ blk, idx int }
	stats     Stats
}

// NewStore writes the dense coefficient vector w to a device under the
// given allocation. Zero coefficients are stored too (the paper's engine
// stores the full transform; sparsity handling belongs to the
// approximation layer).
func NewStore(w []float64, alloc Allocation, blockSize int) *Store {
	s := &Store{
		Alloc:     alloc,
		BlockSize: blockSize,
		blocks:    make([][]Item, alloc.Blocks()),
		loc:       make(map[int]struct{ blk, idx int }, len(w)),
	}
	for p, v := range w {
		b := alloc.BlockOf(p)
		s.loc[p] = struct{ blk, idx int }{b, len(s.blocks[b])}
		s.blocks[b] = append(s.blocks[b], Item{Pos: p, Value: v})
	}
	for b, items := range s.blocks {
		if len(items) > blockSize {
			panic(fmt.Sprintf("disk: allocation %s overfilled block %d: %d > %d",
				alloc.Name(), b, len(items), blockSize))
		}
	}
	s.stats.BlockWrites = alloc.Blocks()
	return s
}

// Stats returns a copy of the I/O counters.
func (s *Store) Stats() Stats { return s.stats }

// ResetStats zeroes the counters.
func (s *Store) ResetStats() { s.stats = Stats{} }

// ReadBlock fetches a whole block, counting the I/O.
func (s *Store) ReadBlock(b int) []Item {
	s.stats.BlockReads++
	s.stats.ItemsRead += len(s.blocks[b])
	return s.blocks[b]
}

// Fetch reads every block needed to obtain the given coefficient
// positions and returns their values plus the number of distinct blocks
// read. It models one query's dependency fetch.
func (s *Store) Fetch(positions []int) (map[int]float64, int) {
	needBlocks := map[int]bool{}
	for _, p := range positions {
		needBlocks[s.Alloc.BlockOf(p)] = true
	}
	want := map[int]bool{}
	for _, p := range positions {
		want[p] = true
	}
	out := make(map[int]float64, len(positions))
	for b := range needBlocks {
		for _, it := range s.ReadBlock(b) {
			if want[it.Pos] {
				out[it.Pos] = it.Value
			}
		}
	}
	return out, len(needBlocks)
}

// Utilization describes how well an access pattern used the fetched
// blocks.
type Utilization struct {
	Strategy        string
	Blocks          int     // distinct blocks fetched
	Needed          int     // coefficients the query required
	ItemsPerBlock   float64 // Needed / Blocks — the paper's utilisation metric
	Bound           float64 // 1 + lg B
	FractionOfBound float64
}

// MeasureUtilization evaluates an access pattern (set of needed positions)
// against the store's allocation.
func (s *Store) MeasureUtilization(need map[int]bool) Utilization {
	blocks := map[int]bool{}
	for p := range need {
		blocks[s.Alloc.BlockOf(p)] = true
	}
	u := Utilization{
		Strategy: s.Alloc.Name(),
		Blocks:   len(blocks),
		Needed:   len(need),
		Bound:    UtilizationBound(s.BlockSize),
	}
	if u.Blocks > 0 {
		u.ItemsPerBlock = float64(u.Needed) / float64(u.Blocks)
	}
	if u.Bound > 0 {
		u.FractionOfBound = u.ItemsPerBlock / u.Bound
	}
	return u
}

// ImportanceOrder ranks block IDs by the query importance of their
// contents: Σ |q_p · w_p| over positions p in the block that the sparse
// query q references. Fetching blocks in this order front-loads the most
// valuable I/Os — the paper's progressive block-level evaluation (§3.2.1).
func (s *Store) ImportanceOrder(query map[int]float64) []int {
	imp := map[int]float64{}
	for p, qv := range query {
		l, ok := s.loc[p]
		if !ok {
			continue
		}
		imp[l.blk] += math.Abs(qv * s.blocks[l.blk][l.idx].Value)
	}
	ids := make([]int, 0, len(imp))
	for b := range imp {
		ids = append(ids, b)
	}
	sort.Slice(ids, func(i, j int) bool {
		if imp[ids[i]] != imp[ids[j]] {
			return imp[ids[i]] > imp[ids[j]]
		}
		return ids[i] < ids[j]
	})
	return ids
}

// ProgressiveStep is the state after fetching one more block.
type ProgressiveStep struct {
	BlocksFetched int
	Estimate      float64
}

// ProgressiveDot evaluates ⟨query, data⟩ block by block in the given fetch
// order, emitting the running estimate after every block. With
// ImportanceOrder this is the progressive query evaluation of §3.2.1.
func (s *Store) ProgressiveDot(query map[int]float64, order []int) []ProgressiveStep {
	var est float64
	steps := make([]ProgressiveStep, 0, len(order))
	for i, b := range order {
		for _, it := range s.ReadBlock(b) {
			if qv, ok := query[it.Pos]; ok {
				est += qv * it.Value
			}
		}
		steps = append(steps, ProgressiveStep{BlocksFetched: i + 1, Estimate: est})
	}
	return steps
}
