// Package disk implements the storage subsystem of AIMS (§3.2): a
// simulated block device with exact I/O accounting, allocation strategies
// that map wavelet coefficients to disk blocks — including the error-tree
// tiling allocator designed to approach the paper's 1+lg B utilisation
// bound — and a block store with query-importance-ordered progressive
// fetching.
package disk

import (
	"fmt"
	"math"
	"math/bits"
)

// Allocation maps coefficient positions to block IDs. Implementations must
// be total over [0, N).
type Allocation interface {
	// BlockOf returns the block holding coefficient position p.
	BlockOf(p int) int
	// Blocks returns the number of blocks used.
	Blocks() int
	// Name identifies the strategy in experiment output.
	Name() string
}

// Sequential is the naive baseline: coefficients are laid out in index
// order, B per block. Fine for scans, poor for error-tree paths.
type Sequential struct {
	N, B int
}

// NewSequential allocates positions [0, n) in index order, b per block.
func NewSequential(n, b int) Sequential {
	if b <= 0 || n <= 0 {
		panic(fmt.Sprintf("disk: sequential allocation n=%d b=%d", n, b))
	}
	return Sequential{N: n, B: b}
}

// BlockOf implements Allocation.
func (s Sequential) BlockOf(p int) int { return p / s.B }

// Blocks implements Allocation.
func (s Sequential) Blocks() int { return (s.N + s.B - 1) / s.B }

// Name implements Allocation.
func (s Sequential) Name() string { return "sequential" }

// LevelOrder groups coefficients band by band (all of d_1, then d_2, …) —
// the layout a straightforward "store the transform output" implementation
// produces. Identical to Sequential for the standard layout, included for
// clarity of the experiment tables.
type LevelOrder struct{ Sequential }

// NewLevelOrder builds the band-major baseline.
func NewLevelOrder(n, b int) LevelOrder { return LevelOrder{NewSequential(n, b)} }

// Name implements Allocation.
func (LevelOrder) Name() string { return "level-order" }

// Tiling is the error-tree tiling allocator: the Haar error tree over the
// standard layout is cut into aligned subtrees of height h = ⌊log2(B+1)⌋,
// each stored in one block. A root-to-leaf dependency path of length
// log2 N then touches ≈ log2(N)/h blocks and needs h ≈ lg B items from
// each — the access pattern behind the paper's 1+lg B expectation bound.
type Tiling struct {
	N, B   int
	height int
	// blockID is assigned densely in discovery order of subtree roots.
	roots map[int]int
	count int
}

// NewTiling builds the tiling allocation for a fully decomposed length-n
// Haar transform with blocks of b items. n must be a power of two.
func NewTiling(n, b int) *Tiling {
	if n <= 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("disk: tiling length %d not a power of two", n))
	}
	if b < 1 {
		panic(fmt.Sprintf("disk: tiling block size %d", b))
	}
	// Subtree of height h has 2^h−1 nodes; the root block additionally
	// carries the overall average (position 0), so 2^h ≤ b keeps every
	// block within capacity.
	h := bits.Len(uint(b)) - 1
	if h < 1 {
		h = 1
	}
	t := &Tiling{N: n, B: b, height: h, roots: map[int]int{}}
	// Enumerate block roots breadth-first so block IDs are stable and the
	// root block is block 0.
	t.rootID(1)
	for p := 1; p < n; p++ {
		t.rootID(t.subtreeRoot(p))
	}
	return t
}

// treeDepth returns the detail-tree depth of position p ≥ 1 (position 1 is
// depth 0).
func treeDepth(p int) int { return bits.Len(uint(p)) - 1 }

// subtreeRoot returns the tiling-root ancestor of detail position p.
func (t *Tiling) subtreeRoot(p int) int {
	d := treeDepth(p)
	up := d % t.height
	return p >> uint(up)
}

func (t *Tiling) rootID(root int) int {
	if id, ok := t.roots[root]; ok {
		return id
	}
	id := t.count
	t.roots[root] = id
	t.count++
	return id
}

// BlockOf implements Allocation. The overall average (position 0) lives
// with the top of the tree in block 0.
func (t *Tiling) BlockOf(p int) int {
	if p < 0 || p >= t.N {
		panic(fmt.Sprintf("disk: position %d out of [0,%d)", p, t.N))
	}
	if p == 0 {
		return t.roots[1]
	}
	return t.roots[t.subtreeRoot(p)]
}

// Blocks implements Allocation.
func (t *Tiling) Blocks() int { return t.count }

// Name implements Allocation.
func (t *Tiling) Name() string { return "error-tree-tiling" }

// Height exposes the subtree height (items used per block on a path).
func (t *Tiling) Height() int { return t.height }

// UtilizationBound returns the paper's theoretical expectation bound on
// needed items per fetched block: 1 + lg B.
func UtilizationBound(b int) float64 { return 1 + math.Log2(float64(b)) }

// ProductAllocation composes per-dimension 1-D allocations into a
// multivariate allocation by Cartesian product: the block of a
// multidimensional coefficient is the tuple of its per-dimension virtual
// blocks ("we simply decompose each dimension into optimal virtual blocks,
// and take the Cartesian products of these virtual blocks to be our actual
// blocks", §3.2.1).
type ProductAllocation struct {
	Dims    []int
	Per     []Allocation
	strides []int
}

// NewProduct builds the product of per-dimension allocations for a cube
// with the given extents.
func NewProduct(dims []int, per []Allocation) *ProductAllocation {
	if len(dims) != len(per) {
		panic(fmt.Sprintf("disk: %d dims vs %d allocations", len(dims), len(per)))
	}
	st := make([]int, len(dims))
	acc := 1
	for i := len(dims) - 1; i >= 0; i-- {
		st[i] = acc
		acc *= dims[i]
	}
	return &ProductAllocation{Dims: dims, Per: per, strides: st}
}

// BlockOf implements Allocation over flattened (row-major) positions.
func (pa *ProductAllocation) BlockOf(flat int) int {
	id := 0
	for d := 0; d < len(pa.Dims); d++ {
		coord := flat / pa.strides[d] % pa.Dims[d]
		id = id*pa.Per[d].Blocks() + pa.Per[d].BlockOf(coord)
	}
	return id
}

// Blocks implements Allocation.
func (pa *ProductAllocation) Blocks() int {
	n := 1
	for _, a := range pa.Per {
		n *= a.Blocks()
	}
	return n
}

// Name implements Allocation.
func (pa *ProductAllocation) Name() string {
	return "product(" + pa.Per[0].Name() + ")"
}
