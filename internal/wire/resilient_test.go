package wire

import (
	"context"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"aims/internal/stream"
	"aims/internal/transport"
)

func ringFrames(n int, base float64) []stream.Frame {
	out := make([]stream.Frame, n)
	for i := range out {
		out[i] = stream.Frame{T: base + float64(i), Values: []float64{base, -base}}
	}
	return out
}

// TestReplayRingCopiesFrames pins the ownership contract: the ring must
// hold private copies, because devices reuse their batch buffers.
func TestReplayRingCopiesFrames(t *testing.T) {
	rc := &ResilientClient{cfg: ResilientConfig{ReplayFrames: 100}.withDefaults()}
	batch := ringFrames(4, 1)
	rc.buffer(0, batch)
	batch[2].T = -999
	batch[2].Values[0] = -999
	if got := rc.ring[0].frames[2]; got.T != 3 || got.Values[0] != 1 {
		t.Fatalf("ring aliases the caller's batch: %+v", got)
	}
	if rc.ring[0].end() != 4 {
		t.Fatalf("entry end = %d, want 4", rc.ring[0].end())
	}
}

// TestReplayRingEvictsOnlyAckedPrefix fills the ring past its frame budget
// and checks eviction: acked entries go oldest-first, but entries still
// outstanding on the wire are pinned — they are the only copy left.
func TestReplayRingEvictsOnlyAckedPrefix(t *testing.T) {
	rc := &ResilientClient{cfg: ResilientConfig{ReplayFrames: 10}.withDefaults()}

	// No live client: every entry counts as acked, so the budget rules.
	for i := 0; i < 3; i++ {
		rc.buffer(uint64(i*4), ringFrames(4, float64(i)))
	}
	if len(rc.ring) != 2 || rc.ringFrames != 8 {
		t.Fatalf("ring = %d entries / %d frames, want 2 / 8", len(rc.ring), rc.ringFrames)
	}
	if rc.ring[0].start != 4 {
		t.Fatalf("oldest surviving entry starts at %d, want 4 (evict oldest-first)", rc.ring[0].start)
	}

	// All but one entry outstanding: the budget may only claim the single
	// acked entry, then eviction must stop even though the ring is over.
	rc = &ResilientClient{cfg: ResilientConfig{ReplayFrames: 10}.withDefaults()}
	rc.c = &Client{outstanding: 2}
	for i := 0; i < 3; i++ {
		rc.buffer(uint64(i*4), ringFrames(4, float64(i)))
	}
	if len(rc.ring) != 2 || rc.ring[0].start != 4 {
		t.Fatalf("ring after one eviction = %d entries, oldest %d; want 2 entries from 4",
			len(rc.ring), rc.ring[0].start)
	}
	rc.c.outstanding = 3
	rc.buffer(12, ringFrames(4, 3))
	if len(rc.ring) != 3 {
		t.Fatalf("ring evicted an outstanding entry: %d entries, want 3", len(rc.ring))
	}
}

// TestResumeTerminalOnForeignWatermark covers the name-collision guard: a
// Welcome watermark ahead of everything this client ever sent means the
// session name belongs to someone else's stream, and retrying can only
// make it worse.
func TestResumeTerminalOnForeignWatermark(t *testing.T) {
	rc := &ResilientClient{cfg: ResilientConfig{}.withDefaults(), nextSeq: 5}
	err := rc.resumeLocked(nil, Welcome{AckSeq: 9})
	if !IsTerminal(err) {
		t.Fatalf("watermark ahead of stream: err = %v, want terminal", err)
	}
	if !strings.Contains(err.Error(), "collision") {
		t.Fatalf("terminal error should name the likely cause: %v", err)
	}
}

// TestResumeTerminalOnEvictedGap covers the bounded-buffer guard: if the
// server's watermark fell below the oldest buffered frame, the gap is
// unreplayable and the client must fail loudly rather than drop data.
func TestResumeTerminalOnEvictedGap(t *testing.T) {
	rc := &ResilientClient{cfg: ResilientConfig{}.withDefaults(), nextSeq: 100}
	rc.ring = []replayEntry{{start: 50, frames: ringFrames(10, 0)}}
	err := rc.resumeLocked(nil, Welcome{AckSeq: 40})
	if !IsTerminal(err) {
		t.Fatalf("gap below buffer: err = %v, want terminal", err)
	}
	if !strings.Contains(err.Error(), "ReplayFrames") {
		t.Fatalf("terminal error should point at the buffer knob: %v", err)
	}
}

// gatedDialer delegates its first dial to the real transport, then
// blackholes every later attempt until the dial context expires — a hang
// that only the DialTimeout deadline can break.
type gatedDialer struct {
	mu      sync.Mutex
	dials   int
	blocked int
}

func (d *gatedDialer) DialContext(ctx context.Context, addr string) (net.Conn, error) {
	d.mu.Lock()
	d.dials++
	first := d.dials == 1
	if !first {
		d.blocked++
	}
	d.mu.Unlock()
	if first {
		return transport.DialContext(ctx, addr)
	}
	<-ctx.Done()
	return nil, ctx.Err()
}

func (d *gatedDialer) counts() (dials, blocked int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.dials, d.blocked
}

// TestInjectedDialerAndDialTimeout proves the two plumbing contracts the
// transport refactor added to ResilientConfig: an injected Dialer carries
// every connection (the initial dial and each reconnect attempt), and
// DialTimeout bounds each attempt so a blackholed dial cannot wedge the
// reconnect loop — it burns exactly its slot and moves on to the attempt
// budget.
func TestInjectedDialerAndDialTimeout(t *testing.T) {
	const dialTimeout = 25 * time.Millisecond
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		c, err := ln.Accept()
		if err != nil {
			return
		}
		srv := NewClient(c)
		if _, payload, err := srv.read(); err == nil {
			if _, err := DecodeHello(payload); err == nil {
				srv.send(MsgWelcome, Welcome{SessionID: 1, Code: CodeOK}.Encode())
				srv.flush()
			}
		}
		c.Close()
	}()

	d := &gatedDialer{}
	rc, _, err := DialResilient(ResilientConfig{
		Addr:        ln.Addr().String(),
		Dialer:      d,
		DialTimeout: dialTimeout,
		Timeout:     time.Second,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  2 * time.Millisecond,
		MaxAttempts: 2,
		Seed:        31,
		Logf:        t.Logf,
	}, Hello{Rate: 100, Name: "gated", Mins: []float64{0, 0}, Maxs: []float64{1, 1}})
	if err != nil {
		t.Fatalf("initial dial through injected dialer: %v", err)
	}
	<-done
	ln.Close()

	start := time.Now()
	if err := rc.SendBatch(ringFrames(4, 0)); err != nil && !IsTerminal(err) {
		t.Fatalf("send into dead server: unexpected error class: %v", err)
	}
	_, err = rc.Flush()
	elapsed := time.Since(start)
	if !IsTerminal(err) {
		t.Fatalf("flush with blackholed dialer: err = %v, want terminal", err)
	}
	if !strings.Contains(err.Error(), "2 attempts") {
		t.Fatalf("terminal error should report the attempt budget: %v", err)
	}
	dials, blocked := d.counts()
	if dials != 3 || blocked != 2 {
		t.Fatalf("dialer saw %d dials (%d blackholed), want 3 (2): injected dialer not used everywhere", dials, blocked)
	}
	// Each blackholed attempt is released only by its DialTimeout deadline,
	// so two attempts cannot finish before 2x the bound — and the bound in
	// turn keeps the whole ordeal far under the 2s MaxBackoff default that
	// DialTimeout would have inherited.
	if elapsed < 2*dialTimeout {
		t.Fatalf("2 blackholed attempts returned in %s, before 2x DialTimeout: the bound is not plumbed", elapsed)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("giving up took %s; DialTimeout not honoured", elapsed)
	}
	rc.Abort()
}

// TestReconnectGivesUpAfterMaxAttempts registers against a throwaway
// listener, kills it, and checks the reconnect loop surfaces a terminal
// error after exactly MaxAttempts dials — and that the capped backoff
// keeps the whole ordeal brief.
func TestReconnectGivesUpAfterMaxAttempts(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		c, err := ln.Accept()
		if err != nil {
			return
		}
		// Speak just enough protocol to complete the handshake, then die.
		srv := NewClient(c) // reuse the framing helpers for the fake
		_, payload, err := srv.read()
		if err != nil {
			c.Close()
			return
		}
		if _, err := DecodeHello(payload); err != nil {
			c.Close()
			return
		}
		srv.send(MsgWelcome, Welcome{SessionID: 1, Code: CodeOK}.Encode())
		srv.flush()
		c.Close()
	}()

	rc, _, err := DialResilient(ResilientConfig{
		Addr:        ln.Addr().String(),
		Timeout:     time.Second,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  4 * time.Millisecond,
		MaxAttempts: 3,
		Seed:        21,
		Logf:        t.Logf,
	}, Hello{Rate: 100, Name: "doomed", Mins: []float64{0, 0}, Maxs: []float64{1, 1}})
	if err != nil {
		t.Fatalf("initial dial: %v", err)
	}
	<-done
	ln.Close() // further dials: connection refused

	start := time.Now()
	// A small batch parks in the write buffer without touching the socket;
	// the flush barrier is what discovers the link is gone.
	if err := rc.SendBatch(ringFrames(4, 0)); err != nil && !IsTerminal(err) {
		t.Fatalf("send into dead server: unexpected error class: %v", err)
	}
	_, err = rc.Flush()
	elapsed := time.Since(start)
	if !IsTerminal(err) {
		t.Fatalf("flush into dead server: err = %v, want terminal", err)
	}
	if !strings.Contains(err.Error(), "3 attempts") {
		t.Fatalf("terminal error should report the attempt budget: %v", err)
	}
	// 3 attempts against a closed port: jittered sleeps bounded by
	// 1+2+4 ms plus dial overhead — far under a second.
	if elapsed > 5*time.Second {
		t.Fatalf("giving up took %s; backoff cap not honoured", elapsed)
	}
	rc.Abort()
}
