// Package wire defines the binary protocol of the AIMS middle tier: the
// compact, length-prefixed frame/batch encoding an immersive client device
// uses to register its sensor rig, stream frame batches, and issue
// exact/approximate/progressive range-aggregate queries against a live
// session (the client ↔ middle-tier edge of the paper's Fig. 2
// three-tier architecture).
//
// Every message on the connection is
//
//	uint32 payload length | uint8 message type | payload
//
// in little-endian byte order. The first message of a connection must be
// Hello, which carries the protocol magic and version; everything after
// that is implicitly versioned by the handshake. Frame payloads reuse
// stream.Frame verbatim: a batch is a sequence of (T, values...) float64
// records of a width fixed at registration.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"math/rand"

	"aims/internal/stream"
)

// Magic opens every Hello payload ("AIMW").
const Magic uint32 = 0x41494D57

// Version is the protocol version this package speaks. Version 2 added the
// device-class tag to Hello (appended after the channel ranges, so a v1
// payload is a strict prefix of v2) and the fleet query/result messages.
// Version 3 adds wire-propagated trace context to Query and FleetQuery:
// a (traceID, sampled) suffix appended after the v2 fields, emitted only
// when a trace ID is set — so a v3 client not tracing stays byte-identical
// to v2, and a v2 payload decodes unchanged with no context.
// Version 4 adds link resilience: Ping/Pong heartbeats, an AckSeq
// high-watermark suffix on Welcome (emitted only when non-zero, and only
// to v4 clients, so v3 decoders never see trailing bytes), and a new
// contract for Batch.Seq — a v4 client stamps each batch with the
// absolute index of its first frame in the session's stream, which lets
// the server drop replayed batches at or below its watermark
// (exactly-once append under at-least-once replay).
const Version uint8 = 4

// MinVersion is the oldest protocol version DecodeHello still accepts; a
// v1 client registers with an empty device class and never sees a fleet
// message unless it sends one.
const MinVersion uint8 = 1

// MaxPayload bounds a single message (guards the length prefix against
// garbage and hostile peers).
const MaxPayload = 1 << 24

// MaxChannels bounds a device registration.
const MaxChannels = 4096

// Message types.
const (
	MsgHello    byte = 1  // client → server: register a device/session
	MsgWelcome  byte = 2  // server → client: session accepted
	MsgBatch    byte = 3  // client → server: one frame batch
	MsgBatchAck byte = 4  // server → client: batch accepted or shed
	MsgQuery    byte = 5  // client → server: range-aggregate query
	MsgResult   byte = 6  // server → client: one query answer/step
	MsgClose    byte = 7  // client → server: end session (server drains)
	MsgCloseAck byte = 8  // server → client: final session accounting
	MsgError    byte = 9  // server → client: terminal error, conn closes
	MsgFlush    byte = 10 // client → server: barrier — drain my queue
	MsgFlushAck byte = 11 // server → client: barrier reached

	// Fleet messages (protocol v2): one range-aggregate evaluated across
	// every session of a device class (or an explicit session-ID set) and
	// merged server-side.
	MsgFleetQuery  byte = 12 // client → server: cross-session aggregate
	MsgFleetResult byte = 13 // server → client: merged answer + per-session detail

	// Heartbeats (protocol v4): a client pings to prove liveness across an
	// otherwise-idle link; the server echoes the nonce. Once a session has
	// pinged, the server holds it to the heartbeat window instead of the
	// (much longer) idle timeout, so a dead link is detected in seconds.
	MsgPing byte = 14 // client → server: liveness probe
	MsgPong byte = 15 // server → client: nonce echo
)

// TypeName returns the wire-format name of a message type, for metric
// labels and trace annotations.
func TypeName(typ byte) string {
	switch typ {
	case MsgHello:
		return "hello"
	case MsgWelcome:
		return "welcome"
	case MsgBatch:
		return "batch"
	case MsgBatchAck:
		return "batch_ack"
	case MsgQuery:
		return "query"
	case MsgResult:
		return "result"
	case MsgClose:
		return "close"
	case MsgCloseAck:
		return "close_ack"
	case MsgError:
		return "error"
	case MsgFlush:
		return "flush"
	case MsgFlushAck:
		return "flush_ack"
	case MsgFleetQuery:
		return "fleet_query"
	case MsgFleetResult:
		return "fleet_result"
	case MsgPing:
		return "ping"
	case MsgPong:
		return "pong"
	}
	return fmt.Sprintf("type_%d", typ)
}

// headerSize is the fixed framing overhead of every message: the uint32
// length prefix plus the type byte.
const headerSize = 5

// MessageSize returns the on-the-wire size of a message with the given
// payload length, framing header included.
func MessageSize(payloadLen int) int { return headerSize + payloadLen }

// Code is the shared error/ack vocabulary of the protocol.
type Code uint16

const (
	CodeOK            Code = 0
	CodeShed          Code = 1 // batch dropped under the shed backpressure policy
	CodeBadMessage    Code = 2
	CodeBadVersion    Code = 3
	CodeNotRegistered Code = 4
	CodeBadQuery      Code = 5
	CodeShuttingDown  Code = 6
	CodeInternal      Code = 7
	CodeIdleEvicted   Code = 8
	// CodeResumed is a successful Welcome that adopted a recovered session:
	// the server already holds frames this session journaled before a crash
	// or restart, and ingest continues on top of them.
	CodeResumed Code = 9
	// CodeNoSessions is a fleet result whose scope matched no live session.
	CodeNoSessions Code = 10
	// CodePartial is a fleet result merged from a strict subset of its
	// scope: some sessions failed or missed the deadline (detail rides in
	// FleetResult.Failures) and the query allowed partial answers.
	CodePartial Code = 11
	// CodeDeadline marks a per-session fleet failure: the session's scan
	// had not finished when the fleet deadline expired.
	CodeDeadline Code = 12
	// CodeDuplicate acknowledges a batch the server already holds (its
	// frames sit at or below the session's append watermark): the batch is
	// dropped without re-appending, which is what makes at-least-once
	// replay after a reconnect an exactly-once append (v4).
	CodeDuplicate Code = 13
)

// String names a code for logs and error text.
func (c Code) String() string {
	switch c {
	case CodeOK:
		return "ok"
	case CodeShed:
		return "shed"
	case CodeBadMessage:
		return "bad-message"
	case CodeBadVersion:
		return "bad-version"
	case CodeNotRegistered:
		return "not-registered"
	case CodeBadQuery:
		return "bad-query"
	case CodeShuttingDown:
		return "shutting-down"
	case CodeInternal:
		return "internal"
	case CodeIdleEvicted:
		return "idle-evicted"
	case CodeResumed:
		return "resumed"
	case CodeNoSessions:
		return "no-sessions"
	case CodePartial:
		return "partial"
	case CodeDeadline:
		return "deadline"
	case CodeDuplicate:
		return "duplicate"
	}
	return fmt.Sprintf("code(%d)", uint16(c))
}

// QueryKind selects the aggregate a Query evaluates.
type QueryKind uint8

const (
	QueryCount            QueryKind = 1 // exact COUNT over [T0,T1]
	QueryAverage          QueryKind = 2 // exact AVERAGE (value units)
	QueryVariance         QueryKind = 3 // exact VARIANCE (value units²)
	QueryApproxCount      QueryKind = 4 // approximate COUNT, Arg = coefficient budget
	QueryProgressiveCount QueryKind = 5 // progressive COUNT, Arg = max steps
)

// WriteMessage frames one message onto w.
func WriteMessage(w io.Writer, typ byte, payload []byte) error {
	if len(payload) > MaxPayload {
		return fmt.Errorf("wire: payload %d exceeds max %d", len(payload), MaxPayload)
	}
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadMessage reads one framed message from r.
func ReadMessage(r io.Reader) (typ byte, payload []byte, err error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n > MaxPayload {
		return 0, nil, fmt.Errorf("wire: payload length %d exceeds max %d", n, MaxPayload)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[4], payload, nil
}

// buf is a little-endian append-only encoder / cursor decoder.
type buf struct {
	b   []byte
	pos int
	err error
}

func (e *buf) u8(v uint8)   { e.b = append(e.b, v) }
func (e *buf) u16(v uint16) { e.b = binary.LittleEndian.AppendUint16(e.b, v) }
func (e *buf) u32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *buf) u64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *buf) f64(v float64) {
	e.b = binary.LittleEndian.AppendUint64(e.b, math.Float64bits(v))
}
func (e *buf) str(s string) {
	e.u16(uint16(len(s)))
	e.b = append(e.b, s...)
}

func (e *buf) fail() {
	if e.err == nil {
		e.err = fmt.Errorf("wire: truncated payload at offset %d", e.pos)
	}
}
func (e *buf) rdU8() uint8 {
	if e.err != nil || e.pos+1 > len(e.b) {
		e.fail()
		return 0
	}
	v := e.b[e.pos]
	e.pos++
	return v
}
func (e *buf) rdU16() uint16 {
	if e.err != nil || e.pos+2 > len(e.b) {
		e.fail()
		return 0
	}
	v := binary.LittleEndian.Uint16(e.b[e.pos:])
	e.pos += 2
	return v
}
func (e *buf) rdU32() uint32 {
	if e.err != nil || e.pos+4 > len(e.b) {
		e.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(e.b[e.pos:])
	e.pos += 4
	return v
}
func (e *buf) rdU64() uint64 {
	if e.err != nil || e.pos+8 > len(e.b) {
		e.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(e.b[e.pos:])
	e.pos += 8
	return v
}
func (e *buf) rdF64() float64 { return math.Float64frombits(e.rdU64()) }
func (e *buf) rdStr() string {
	n := int(e.rdU16())
	if e.err != nil || e.pos+n > len(e.b) {
		e.fail()
		return ""
	}
	s := string(e.b[e.pos : e.pos+n])
	e.pos += n
	return s
}
func (e *buf) done() error {
	if e.err != nil {
		return e.err
	}
	if e.pos != len(e.b) {
		return fmt.Errorf("wire: %d trailing bytes", len(e.b)-e.pos)
	}
	return nil
}

// Hello registers a device/session: its clock, expected session length in
// device ticks (0 lets the server choose), and the per-channel value
// ranges the store's quantisers should span. Class (v2) tags the session
// with its device class — "cyberglove", "tracker" — so fleet queries can
// aggregate over every session of a class; v1 clients register with an
// empty class.
type Hello struct {
	Rate         float64
	HorizonTicks uint32
	Name         string
	Class        string
	Mins, Maxs   []float64 // len == channel count

	// Proto is the protocol version the peer spoke, filled in by
	// DecodeHello (Encode always writes this package's Version). The server
	// gates v4-only behaviour — the Welcome AckSeq suffix, watermark-based
	// batch dedup — on Proto, because a v3 client's batch Seqs are opaque
	// ordinals, not frame offsets.
	Proto uint8
}

// Channels returns the registered channel count.
func (h Hello) Channels() int { return len(h.Mins) }

// Encode serialises the Hello payload.
func (h Hello) Encode() ([]byte, error) {
	if len(h.Mins) != len(h.Maxs) {
		return nil, fmt.Errorf("wire: hello mins %d != maxs %d", len(h.Mins), len(h.Maxs))
	}
	if len(h.Mins) == 0 || len(h.Mins) > MaxChannels {
		return nil, fmt.Errorf("wire: hello channel count %d out of [1,%d]", len(h.Mins), MaxChannels)
	}
	var e buf
	e.u32(Magic)
	e.u8(Version)
	e.f64(h.Rate)
	e.u32(h.HorizonTicks)
	e.str(h.Name)
	e.u16(uint16(len(h.Mins)))
	for i := range h.Mins {
		e.f64(h.Mins[i])
		e.f64(h.Maxs[i])
	}
	e.str(h.Class)
	return e.b, nil
}

// DecodeHello parses a Hello payload, checking magic and accepting any
// version in [MinVersion, Version]. A v1 payload ends at the channel
// ranges and decodes with an empty Class.
func DecodeHello(p []byte) (Hello, error) {
	d := buf{b: p}
	if m := d.rdU32(); d.err == nil && m != Magic {
		return Hello{}, fmt.Errorf("wire: bad magic %#x", m)
	}
	v := d.rdU8()
	if d.err == nil && (v < MinVersion || v > Version) {
		return Hello{}, fmt.Errorf("wire: version %d outside [%d,%d]", v, MinVersion, Version)
	}
	var h Hello
	h.Rate = d.rdF64()
	h.HorizonTicks = d.rdU32()
	h.Name = d.rdStr()
	n := int(d.rdU16())
	if d.err == nil && (n == 0 || n > MaxChannels) {
		return Hello{}, fmt.Errorf("wire: hello channel count %d out of [1,%d]", n, MaxChannels)
	}
	if d.err == nil {
		h.Mins = make([]float64, n)
		h.Maxs = make([]float64, n)
		for i := 0; i < n; i++ {
			h.Mins[i] = d.rdF64()
			h.Maxs[i] = d.rdF64()
		}
	}
	if v >= 2 {
		h.Class = d.rdStr()
	}
	h.Proto = v
	if h.Rate <= 0 && d.err == nil {
		return Hello{}, fmt.Errorf("wire: hello rate %v must be positive", h.Rate)
	}
	return h, d.done()
}

// Welcome acknowledges a Hello. AckSeq (v4) is the server's append
// high-watermark for the session in absolute frame offsets: everything
// below it is already held (journaled or live), so a resuming client
// replays only from AckSeq. It rides as a strict suffix emitted only when
// non-zero, and the server additionally gates emission on the client's
// hello version — a v3 decoder rejects trailing bytes.
type Welcome struct {
	SessionID uint64
	Code      Code
	AckSeq    uint64
}

// Encode serialises the Welcome payload.
func (w Welcome) Encode() []byte {
	var e buf
	e.u64(w.SessionID)
	e.u16(uint16(w.Code))
	if w.AckSeq != 0 {
		e.u64(w.AckSeq)
	}
	return e.b
}

// DecodeWelcome parses a Welcome payload. A v3 payload (no suffix) decodes
// with AckSeq zero.
func DecodeWelcome(p []byte) (Welcome, error) {
	d := buf{b: p}
	w := Welcome{SessionID: d.rdU64(), Code: Code(d.rdU16())}
	if d.err == nil && d.pos < len(d.b) {
		w.AckSeq = d.rdU64()
	}
	return w, d.done()
}

// Ping is a liveness probe (v4); the server echoes the nonce in a Pong.
type Ping struct {
	Nonce uint64
}

// Encode serialises the Ping payload.
func (p Ping) Encode() []byte {
	var e buf
	e.u64(p.Nonce)
	return e.b
}

// DecodePing parses a Ping payload.
func DecodePing(b []byte) (Ping, error) {
	d := buf{b: b}
	p := Ping{Nonce: d.rdU64()}
	return p, d.done()
}

// Pong answers a Ping, echoing its nonce.
type Pong struct {
	Nonce uint64
}

// Encode serialises the Pong payload.
func (p Pong) Encode() []byte {
	var e buf
	e.u64(p.Nonce)
	return e.b
}

// DecodePong parses a Pong payload.
func DecodePong(b []byte) (Pong, error) {
	d := buf{b: b}
	p := Pong{Nonce: d.rdU64()}
	return p, d.done()
}

// Batch carries consecutive frames of a session. Width must match the
// registered channel count.
type Batch struct {
	Seq    uint64
	Frames []stream.Frame
}

// EncodeBatch serialises a batch of frames of the given width.
func EncodeBatch(seq uint64, frames []stream.Frame, width int) ([]byte, error) {
	return AppendBatch(nil, seq, frames, width)
}

// AppendBatch appends the batch encoding to dst and returns the extended
// slice, letting hot paths (the WAL append side) reuse one scratch buffer
// across batches instead of re-allocating per call.
func AppendBatch(dst []byte, seq uint64, frames []stream.Frame, width int) ([]byte, error) {
	e := buf{b: dst}
	e.u64(seq)
	e.u32(uint32(len(frames)))
	e.u16(uint16(width))
	for i := range frames {
		if len(frames[i].Values) != width {
			return nil, fmt.Errorf("wire: frame %d width %d != %d", i, len(frames[i].Values), width)
		}
		e.f64(frames[i].T)
		for _, v := range frames[i].Values {
			e.f64(v)
		}
	}
	return e.b, nil
}

// DecodeBatch parses a batch payload, enforcing the expected frame width
// (pass width < 0 to accept any width).
func DecodeBatch(p []byte, width int) (Batch, error) {
	d := buf{b: p}
	var b Batch
	b.Seq = d.rdU64()
	count := int(d.rdU32())
	w := int(d.rdU16())
	if d.err == nil && width >= 0 && w != width {
		return Batch{}, fmt.Errorf("wire: batch width %d != registered %d", w, width)
	}
	if d.err == nil && count*(w+1)*8 != len(p)-d.pos {
		return Batch{}, fmt.Errorf("wire: batch size %d != %d frames × width %d", len(p)-d.pos, count, w)
	}
	if d.err == nil {
		b.Frames = make([]stream.Frame, count)
		// One flat allocation for all values keeps decode cheap on the
		// ingest hot path.
		flat := make([]float64, count*w)
		for i := 0; i < count; i++ {
			b.Frames[i].T = d.rdF64()
			vals := flat[i*w : (i+1)*w : (i+1)*w]
			for j := 0; j < w; j++ {
				vals[j] = d.rdF64()
			}
			b.Frames[i].Values = vals
		}
	}
	return b, d.done()
}

// BatchAck acknowledges one batch: CodeOK with the accepted frame count,
// or CodeShed when the backpressure policy dropped it.
type BatchAck struct {
	Seq    uint64
	Code   Code
	Stored uint32
}

// Encode serialises the BatchAck payload.
func (a BatchAck) Encode() []byte {
	var e buf
	e.u64(a.Seq)
	e.u16(uint16(a.Code))
	e.u32(a.Stored)
	return e.b
}

// DecodeBatchAck parses a BatchAck payload.
func DecodeBatchAck(p []byte) (BatchAck, error) {
	d := buf{b: p}
	a := BatchAck{Seq: d.rdU64(), Code: Code(d.rdU16()), Stored: d.rdU32()}
	return a, d.done()
}

// RangeError is the typed decode error for a malformed query range —
// NaN/Inf endpoints or an inverted interval. Rejecting these at decode
// keeps garbage out of the engine (a NaN endpoint would otherwise clamp
// unpredictably deep inside the bucket arithmetic).
type RangeError struct {
	T0, T1 float64
}

// Error implements error.
func (e *RangeError) Error() string {
	return fmt.Sprintf("wire: malformed query range [%v,%v]", e.T0, e.T1)
}

// checkRange validates a query's time range: both endpoints finite, not
// NaN, and T0 ≤ T1.
func checkRange(t0, t1 float64) error {
	if math.IsNaN(t0) || math.IsNaN(t1) || math.IsInf(t0, 0) || math.IsInf(t1, 0) || t1 < t0 {
		return &RangeError{T0: t0, T1: t1}
	}
	return nil
}

// Query is one range-aggregate request over the live session: aggregate
// Kind over Channel for session time [T0, T1] seconds. Arg carries the
// coefficient budget (approximate) or max step count (progressive).
//
// TraceID/TraceSampled (v3) carry distributed trace context: a non-zero
// TraceID names the request's trace end-to-end, and TraceSampled forces
// the server to retain the trace regardless of its 1/N sampler (the
// client's -trace flag). The pair rides as a strict suffix after the v2
// fields and is emitted only when TraceID is non-zero, so an untraced v3
// query is byte-identical to v2 — a v2 server (whose decoder rejects
// trailing bytes) tolerates v3 clients that do not trace.
type Query struct {
	Kind    QueryKind
	Channel uint16
	T0, T1  float64
	Arg     uint32

	TraceID      uint64
	TraceSampled bool
}

// NewTraceID returns a random non-zero trace ID for a client that wants to
// trace a request end-to-end (zero means "no trace context" on the wire).
func NewTraceID() uint64 {
	for {
		if id := rand.Uint64(); id != 0 {
			return id
		}
	}
}

// appendTraceContext appends the v3 trace-context suffix when set.
func appendTraceContext(e *buf, traceID uint64, sampled bool) {
	if traceID == 0 {
		return
	}
	e.u64(traceID)
	var flags uint8
	if sampled {
		flags |= 1
	}
	e.u8(flags)
}

// readTraceContext consumes the optional v3 trace-context suffix: present
// when payload bytes remain past the v2 fields, absent (zero context) on a
// v2 payload.
func readTraceContext(d *buf) (traceID uint64, sampled bool) {
	if d.err != nil || d.pos >= len(d.b) {
		return 0, false
	}
	traceID = d.rdU64()
	flags := d.rdU8()
	return traceID, flags&1 != 0
}

// Encode serialises the Query payload.
func (q Query) Encode() []byte {
	var e buf
	e.u8(uint8(q.Kind))
	e.u16(q.Channel)
	e.f64(q.T0)
	e.f64(q.T1)
	e.u32(q.Arg)
	appendTraceContext(&e, q.TraceID, q.TraceSampled)
	return e.b
}

// DecodeQuery parses a Query payload, rejecting malformed time ranges
// (NaN/Inf endpoints, T1 < T0) with a *RangeError. A v2 payload decodes
// with zero trace context.
func DecodeQuery(p []byte) (Query, error) {
	d := buf{b: p}
	q := Query{
		Kind:    QueryKind(d.rdU8()),
		Channel: d.rdU16(),
		T0:      d.rdF64(),
		T1:      d.rdF64(),
		Arg:     d.rdU32(),
	}
	q.TraceID, q.TraceSampled = readTraceContext(&d)
	if err := d.done(); err != nil {
		return Query{}, err
	}
	if err := checkRange(q.T0, q.T1); err != nil {
		return Query{}, err
	}
	return q, nil
}

// Result is one query answer. Progressive queries emit a Result per
// refinement step with Final set on the last; all other kinds emit exactly
// one Final result. OK=false mirrors the engine's "empty range" signal
// (e.g. AVERAGE over zero samples). Bound is the guaranteed error bound of
// approximate/progressive estimates; Coefficients the transformed-domain
// coefficients spent.
type Result struct {
	Kind         QueryKind
	Final        bool
	OK           bool
	Code         Code
	Value        float64
	Bound        float64
	Coefficients uint32
}

// Encode serialises the Result payload.
func (r Result) Encode() []byte {
	var e buf
	e.u8(uint8(r.Kind))
	var flags uint8
	if r.Final {
		flags |= 1
	}
	if r.OK {
		flags |= 2
	}
	e.u8(flags)
	e.u16(uint16(r.Code))
	e.f64(r.Value)
	e.f64(r.Bound)
	e.u32(r.Coefficients)
	return e.b
}

// DecodeResult parses a Result payload.
func DecodeResult(p []byte) (Result, error) {
	d := buf{b: p}
	r := Result{Kind: QueryKind(d.rdU8())}
	flags := d.rdU8()
	r.Final = flags&1 != 0
	r.OK = flags&2 != 0
	r.Code = Code(d.rdU16())
	r.Value = d.rdF64()
	r.Bound = d.rdF64()
	r.Coefficients = d.rdU32()
	return r, d.done()
}

// CloseAck is the final accounting of a drained session.
type CloseAck struct {
	Stored uint64 // frames persisted into the live store
	Shed   uint64 // frames lost to the shed backpressure policy
}

// Encode serialises the CloseAck payload.
func (c CloseAck) Encode() []byte {
	var e buf
	e.u64(c.Stored)
	e.u64(c.Shed)
	return e.b
}

// DecodeCloseAck parses a CloseAck payload.
func DecodeCloseAck(p []byte) (CloseAck, error) {
	d := buf{b: p}
	c := CloseAck{Stored: d.rdU64(), Shed: d.rdU64()}
	return c, d.done()
}

// FlushAck answers a Flush barrier with the frames stored so far.
type FlushAck struct {
	Stored uint64
}

// EncodeFlushAck serialises the FlushAck payload.
func (f FlushAck) Encode() []byte {
	var e buf
	e.u64(f.Stored)
	return e.b
}

// DecodeFlushAck parses a FlushAck payload.
func DecodeFlushAck(p []byte) (FlushAck, error) {
	d := buf{b: p}
	f := FlushAck{Stored: d.rdU64()}
	return f, d.done()
}

// ErrMsg is a terminal server-side error; the connection closes after it.
type ErrMsg struct {
	Code Code
	Text string
}

// Error implements error.
func (e ErrMsg) Error() string { return fmt.Sprintf("wire: server error %s: %s", e.Code, e.Text) }

// Encode serialises the ErrMsg payload.
func (e ErrMsg) Encode() []byte {
	var b buf
	b.u16(uint16(e.Code))
	b.str(e.Text)
	return b.b
}

// DecodeErr parses an ErrMsg payload.
func DecodeErr(p []byte) (ErrMsg, error) {
	d := buf{b: p}
	m := ErrMsg{Code: Code(d.rdU16()), Text: d.rdStr()}
	return m, d.done()
}
