package wire

// Protocol v3 compatibility: trace context is a strict suffix on Query and
// FleetQuery. Three contracts keep the fleet mixed-version safe (mirroring
// the Hello MinVersion tests): a v3 peer round-trips the context, a v3
// server decodes v2 payloads with zero context, and a v2 server — whose
// decoder rejects trailing bytes — tolerates v3 clients because untraced
// v3 encodings are byte-identical to v2.

import (
	"bytes"
	"reflect"
	"testing"
)

// encodeQueryV2 hand-builds the 23-byte v2 Query payload, independent of
// Query.Encode, so the tests pin the actual v2 byte layout.
func encodeQueryV2(q Query) []byte {
	var e buf
	e.u8(uint8(q.Kind))
	e.u16(q.Channel)
	e.f64(q.T0)
	e.f64(q.T1)
	e.u32(q.Arg)
	return e.b
}

func TestQueryTraceContextRoundTrip(t *testing.T) {
	q := Query{
		Kind: QueryApproxCount, Channel: 3, T0: 0.5, T1: 9, Arg: 64,
		TraceID: 0xDEADBEEFCAFEF00D, TraceSampled: true,
	}
	got, err := DecodeQuery(q.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got != q {
		t.Fatalf("v3 round trip dropped context: %+v != %+v", got, q)
	}
	// Unsampled context (trace ID without the force bit) survives too.
	q.TraceSampled = false
	if got, err := DecodeQuery(q.Encode()); err != nil || got != q {
		t.Fatalf("unsampled context: %+v %v", got, err)
	}
}

func TestQueryWithoutTraceIsByteIdenticalToV2(t *testing.T) {
	q := Query{Kind: QueryCount, Channel: 7, T0: 1, T1: 2, Arg: 5}
	v3 := q.Encode()
	v2 := encodeQueryV2(q)
	if !bytes.Equal(v3, v2) {
		t.Fatalf("untraced v3 encoding (%d bytes) differs from v2 (%d bytes):\n%x\n%x",
			len(v3), len(v2), v3, v2)
	}
	// This byte-identity is exactly what lets a v2 server — which rejects
	// trailing bytes — accept a v3 client that is not tracing. Conversely a
	// traced payload must carry the 9-byte suffix.
	traced := Query{Kind: QueryCount, Channel: 7, T0: 1, T1: 2, Arg: 5, TraceID: 1}
	if got := len(traced.Encode()); got != len(v2)+9 {
		t.Fatalf("traced payload is %d bytes, want v2 %d + 9-byte suffix", got, len(v2))
	}
}

func TestV3ServerDecodesV2QueryPayload(t *testing.T) {
	want := Query{Kind: QueryProgressiveCount, Channel: 2, T0: 0, T1: 4.5, Arg: 10}
	got, err := DecodeQuery(encodeQueryV2(want))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("v2 payload decoded as %+v, want %+v", got, want)
	}
	if got.TraceID != 0 || got.TraceSampled {
		t.Fatalf("v2 payload grew trace context: %+v", got)
	}
}

func TestQueryTraceSuffixTruncationRejected(t *testing.T) {
	q := Query{Kind: QueryCount, Channel: 1, T0: 0, T1: 1, TraceID: 42, TraceSampled: true}
	p := q.Encode()
	// Any cut through the suffix (a partial trace context) must fail, not
	// silently decode as an untraced v2 payload.
	for cut := len(p) - 9 + 1; cut < len(p); cut++ {
		if _, err := DecodeQuery(p[:cut]); err == nil {
			t.Fatalf("accepted query with trace suffix truncated to %d bytes", cut)
		}
	}
	if _, err := DecodeQuery(append(p, 0)); err == nil {
		t.Fatal("trailing bytes after trace context accepted")
	}
}

func TestFleetQueryTraceContextRoundTrip(t *testing.T) {
	fq := FleetQuery{
		Query: Query{
			Kind: QueryAverage, Channel: 1, T0: 0, T1: 10,
			TraceID: 0xABCD, TraceSampled: true,
		},
		Scope:         FleetScope{Class: "cyberglove"},
		Partial:       true,
		TimeoutMillis: 250,
	}
	p, err := fq.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeFleetQuery(p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, fq) {
		t.Fatalf("fleet round trip: %+v != %+v", got, fq)
	}
}

func TestFleetQueryWithoutTraceIsByteIdenticalToV2(t *testing.T) {
	fq := FleetQuery{
		Query: Query{Kind: QueryCount, Channel: 0, T0: 0, T1: 5},
		Scope: FleetScope{IDs: []uint64{3, 9}},
	}
	p, err := fq.Encode()
	if err != nil {
		t.Fatal(err)
	}
	// The v2 layout ends at the session-ID list; an untraced v3 encoding
	// adds nothing, so a traced one is exactly 9 bytes longer.
	traced := fq
	traced.TraceID = 7
	tp, err := traced.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(tp) != len(p)+9 {
		t.Fatalf("traced fleet payload %d bytes, want untraced %d + 9", len(tp), len(p))
	}
	if !bytes.Equal(tp[:len(p)], p) {
		t.Fatal("trace context not a strict suffix of the v2 fleet payload")
	}
	// A v3 server decoding the v2 payload sees zero context.
	got, err := DecodeFleetQuery(p)
	if err != nil {
		t.Fatal(err)
	}
	if got.TraceID != 0 || got.TraceSampled {
		t.Fatalf("v2 fleet payload grew trace context: %+v", got)
	}
}

func TestNewTraceIDNonZero(t *testing.T) {
	for i := 0; i < 100; i++ {
		if NewTraceID() == 0 {
			t.Fatal("NewTraceID returned 0")
		}
	}
}
