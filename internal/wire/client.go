package wire

import (
	"bufio"
	"context"
	"fmt"
	"math/rand"
	"net"
	"time"

	"aims/internal/stream"
	"aims/internal/transport"
)

// Client is the device side of the protocol: one registered session on one
// connection. It pipelines up to Window unacknowledged batches (closed-loop
// flow control) and is not safe for concurrent use — one goroutine per
// client, like one thread per physical device.
type Client struct {
	conn net.Conn
	bw   *bufio.Writer
	br   *bufio.Reader

	// Window is the max number of in-flight (unacked) batches; <= 0 means 1.
	Window int

	// Timeout bounds every socket read and write (a deadline is re-armed
	// per operation). Zero keeps the historical behaviour — no deadlines —
	// in which case Hello or a query can block forever on a half-open
	// connection; any caller crossing a real network should set it.
	Timeout time.Duration

	session     uint64
	width       int
	nextSeq     uint64 // absolute frame offset the next SendBatch stamps (v4)
	outstanding int
	shedBatches uint64
	shedFrames  uint64
	dupBatches  uint64
	bytesOut    uint64
	bytesIn     uint64
}

// Dial connects to an AIMS server endpoint — bare host:port (TCP),
// tcp://host:port, or ws://host:port[/path] — with no connect bound.
func Dial(addr string) (*Client, error) {
	return DialContext(context.Background(), addr)
}

// DialContext connects to an AIMS server endpoint; the context bounds the
// connect and any transport handshake (the WebSocket upgrade included),
// so a blackholed address fails the attempt instead of hanging it.
func DialContext(ctx context.Context, addr string) (*Client, error) {
	conn, err := transport.DialContext(ctx, addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	return &Client{
		conn: conn,
		bw:   bufio.NewWriterSize(conn, 64<<10),
		br:   bufio.NewReaderSize(conn, 64<<10),
	}
}

// SessionID returns the server-assigned session ID (0 before Hello).
func (c *Client) SessionID() uint64 { return c.session }

// ShedBatches returns how many of this client's batches the server shed.
func (c *Client) ShedBatches() uint64 { return c.shedBatches }

// ShedFrames returns how many frames those shed batches carried.
func (c *Client) ShedFrames() uint64 { return c.shedFrames }

// DupBatches returns how many of this client's batches the server dropped
// as already-held duplicates (replay after a resume).
func (c *Client) DupBatches() uint64 { return c.dupBatches }

// NextSeq returns the absolute frame offset the next SendBatch will stamp.
func (c *Client) NextSeq() uint64 { return c.nextSeq }

// SetNextSeq overrides the next batch's frame offset; a resuming client
// sets it to the stream position it is replaying or continuing from.
func (c *Client) SetNextSeq(seq uint64) { c.nextSeq = seq }

// Outstanding returns the number of sent-but-unacknowledged batches.
func (c *Client) Outstanding() int { return c.outstanding }

// BytesOut returns how many protocol bytes this client has sent, framing
// headers included.
func (c *Client) BytesOut() uint64 { return c.bytesOut }

// BytesIn returns how many protocol bytes this client has received,
// framing headers included.
func (c *Client) BytesIn() uint64 { return c.bytesIn }

// send frames one message and accounts its bytes. The write deadline
// covers buffered-writer overflow onto the socket mid-message.
func (c *Client) send(typ byte, payload []byte) error {
	if c.Timeout > 0 {
		c.conn.SetWriteDeadline(time.Now().Add(c.Timeout))
	}
	if err := WriteMessage(c.bw, typ, payload); err != nil {
		return err
	}
	c.bytesOut += uint64(MessageSize(len(payload)))
	return nil
}

// flush pushes buffered writes onto the socket under the write deadline.
func (c *Client) flush() error {
	if c.Timeout > 0 {
		c.conn.SetWriteDeadline(time.Now().Add(c.Timeout))
	}
	return c.bw.Flush()
}

// Hello registers the session and blocks for the server's Welcome.
func (c *Client) Hello(h Hello) (Welcome, error) {
	p, err := h.Encode()
	if err != nil {
		return Welcome{}, err
	}
	if err := c.send(MsgHello, p); err != nil {
		return Welcome{}, err
	}
	if err := c.flush(); err != nil {
		return Welcome{}, err
	}
	typ, payload, err := c.read()
	if err != nil {
		return Welcome{}, err
	}
	if typ != MsgWelcome {
		return Welcome{}, fmt.Errorf("wire: expected welcome, got type %d", typ)
	}
	w, err := DecodeWelcome(payload)
	if err != nil {
		return Welcome{}, err
	}
	if w.Code != CodeOK && w.Code != CodeResumed {
		return w, fmt.Errorf("wire: registration rejected: %s", w.Code)
	}
	c.session = w.SessionID
	c.width = h.Channels()
	if w.AckSeq > c.nextSeq {
		// The server already holds frames up to AckSeq (a resumed session);
		// continue the stream from there so v4 watermark dedup never
		// misreads fresh frames as replay.
		c.nextSeq = w.AckSeq
	}
	return w, nil
}

// read returns the next message, converting MsgError into a Go error.
func (c *Client) read() (byte, []byte, error) {
	if c.Timeout > 0 {
		c.conn.SetReadDeadline(time.Now().Add(c.Timeout))
	}
	typ, payload, err := ReadMessage(c.br)
	if err != nil {
		return 0, nil, err
	}
	c.bytesIn += uint64(MessageSize(len(payload)))
	if typ == MsgError {
		if em, derr := DecodeErr(payload); derr == nil {
			return 0, nil, em
		}
		return 0, nil, fmt.Errorf("wire: undecodable server error")
	}
	return typ, payload, nil
}

// readAck consumes one BatchAck, updating shed accounting.
func (c *Client) readAck() error {
	typ, payload, err := c.read()
	if err != nil {
		return err
	}
	if typ != MsgBatchAck {
		return fmt.Errorf("wire: expected batch ack, got type %d", typ)
	}
	a, err := DecodeBatchAck(payload)
	if err != nil {
		return err
	}
	c.outstanding--
	c.noteAck(a)
	return nil
}

// noteAck folds one BatchAck into the client's shed/duplicate accounting.
func (c *Client) noteAck(a BatchAck) {
	switch a.Code {
	case CodeShed:
		c.shedBatches++
		c.shedFrames += uint64(a.Stored)
	case CodeDuplicate:
		c.dupBatches++
	}
}

// drainAcks blocks until at most n batches remain unacknowledged.
func (c *Client) drainAcks(n int) error {
	if c.outstanding > n {
		// Acks are behind buffered writes: push them out first.
		if err := c.flush(); err != nil {
			return err
		}
	}
	for c.outstanding > n {
		if err := c.readAck(); err != nil {
			return err
		}
	}
	return nil
}

// SendBatch streams one batch at the client's current stream position,
// blocking on acknowledgements when the pipeline window is full.
func (c *Client) SendBatch(frames []stream.Frame) error {
	if err := c.SendBatchAt(c.nextSeq, frames); err != nil {
		return err
	}
	c.nextSeq += uint64(len(frames))
	return nil
}

// SendBatchAt streams one batch stamped with an explicit frame offset
// without advancing the stream position — the replay path of a resuming
// client, which re-sends buffered batches at their original offsets so
// the server's watermark dedup can drop whatever it already holds.
func (c *Client) SendBatchAt(seq uint64, frames []stream.Frame) error {
	if c.session == 0 {
		return fmt.Errorf("wire: SendBatch before Hello")
	}
	win := c.Window
	if win <= 0 {
		win = 1
	}
	if err := c.drainAcks(win - 1); err != nil {
		return err
	}
	p, err := EncodeBatch(seq, frames, c.width)
	if err != nil {
		return err
	}
	if err := c.send(MsgBatch, p); err != nil {
		return err
	}
	c.outstanding++
	return nil
}

// Ping round-trips a liveness probe. Batch acks arriving ahead of the pong
// are folded into the normal ack accounting, so a ping can interleave with
// a pipelined stream.
func (c *Client) Ping() error {
	if c.session == 0 {
		return fmt.Errorf("wire: Ping before Hello")
	}
	nonce := rand.Uint64()
	if err := c.send(MsgPing, Ping{Nonce: nonce}.Encode()); err != nil {
		return err
	}
	if err := c.flush(); err != nil {
		return err
	}
	for {
		typ, payload, err := c.read()
		if err != nil {
			return err
		}
		switch typ {
		case MsgBatchAck:
			a, err := DecodeBatchAck(payload)
			if err != nil {
				return err
			}
			c.outstanding--
			c.noteAck(a)
		case MsgPong:
			p, err := DecodePong(payload)
			if err != nil {
				return err
			}
			if p.Nonce != nonce {
				return fmt.Errorf("wire: pong nonce %#x != ping %#x", p.Nonce, nonce)
			}
			return nil
		default:
			return fmt.Errorf("wire: expected pong, got type %d", typ)
		}
	}
}

// Flush is a drain barrier: it blocks until every frame this client has
// sent is either stored in the live store or (under the shed policy)
// explicitly dropped, and returns the stored total.
func (c *Client) Flush() (uint64, error) {
	if err := c.drainAcks(0); err != nil {
		return 0, err
	}
	if err := c.send(MsgFlush, nil); err != nil {
		return 0, err
	}
	if err := c.flush(); err != nil {
		return 0, err
	}
	typ, payload, err := c.read()
	if err != nil {
		return 0, err
	}
	if typ != MsgFlushAck {
		return 0, fmt.Errorf("wire: expected flush ack, got type %d", typ)
	}
	a, err := DecodeFlushAck(payload)
	return a.Stored, err
}

// Query evaluates one non-progressive aggregate and returns its single
// result. Pending batch acks are drained first so responses stay ordered.
func (c *Client) Query(q Query) (Result, error) {
	if q.Kind == QueryProgressiveCount {
		steps, err := c.QueryProgressive(q)
		if err != nil {
			return Result{}, err
		}
		return steps[len(steps)-1], nil
	}
	steps, err := c.runQuery(q)
	if err != nil {
		return Result{}, err
	}
	return steps[len(steps)-1], nil
}

// QueryProgressive evaluates a progressive aggregate and returns every
// refinement step, the exact answer last.
func (c *Client) QueryProgressive(q Query) ([]Result, error) {
	q.Kind = QueryProgressiveCount
	return c.runQuery(q)
}

func (c *Client) runQuery(q Query) ([]Result, error) {
	if c.session == 0 {
		return nil, fmt.Errorf("wire: Query before Hello")
	}
	if err := c.drainAcks(0); err != nil {
		return nil, err
	}
	if err := c.send(MsgQuery, q.Encode()); err != nil {
		return nil, err
	}
	if err := c.flush(); err != nil {
		return nil, err
	}
	var steps []Result
	for {
		typ, payload, err := c.read()
		if err != nil {
			return nil, err
		}
		if typ != MsgResult {
			return nil, fmt.Errorf("wire: expected result, got type %d", typ)
		}
		r, err := DecodeResult(payload)
		if err != nil {
			return nil, err
		}
		if r.Code != CodeOK {
			return nil, fmt.Errorf("wire: query failed: %s", r.Code)
		}
		steps = append(steps, r)
		if r.Final {
			return steps, nil
		}
	}
}

// FleetQuery evaluates one cross-session aggregate and returns the merged
// result. A FleetResult with OK=false (or CodePartial, when the query
// allowed partial answers) is returned without error so the caller can
// inspect the per-session failure detail.
func (c *Client) FleetQuery(q FleetQuery) (FleetResult, error) {
	if c.session == 0 {
		return FleetResult{}, fmt.Errorf("wire: FleetQuery before Hello")
	}
	if err := c.drainAcks(0); err != nil {
		return FleetResult{}, err
	}
	p, err := q.Encode()
	if err != nil {
		return FleetResult{}, err
	}
	if err := c.send(MsgFleetQuery, p); err != nil {
		return FleetResult{}, err
	}
	if err := c.flush(); err != nil {
		return FleetResult{}, err
	}
	typ, payload, err := c.read()
	if err != nil {
		return FleetResult{}, err
	}
	if typ != MsgFleetResult {
		return FleetResult{}, fmt.Errorf("wire: expected fleet result, got type %d", typ)
	}
	return DecodeFleetResult(payload)
}

// Close drains outstanding acks, ends the session, waits for the server's
// final accounting, and closes the connection.
func (c *Client) Close() (CloseAck, error) {
	defer c.conn.Close()
	if c.session == 0 {
		return CloseAck{}, nil
	}
	if err := c.drainAcks(0); err != nil {
		return CloseAck{}, err
	}
	if err := c.send(MsgClose, nil); err != nil {
		return CloseAck{}, err
	}
	if err := c.flush(); err != nil {
		return CloseAck{}, err
	}
	typ, payload, err := c.read()
	if err != nil {
		return CloseAck{}, err
	}
	if typ != MsgCloseAck {
		return CloseAck{}, fmt.Errorf("wire: expected close ack, got type %d", typ)
	}
	return DecodeCloseAck(payload)
}

// Abort closes the connection without the drain handshake.
func (c *Client) Abort() error { return c.conn.Close() }
