package wire

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"aims/internal/obs"
	"aims/internal/stream"
	"aims/internal/transport"
)

// ResilientClient wraps Client with everything a device on a flaky link
// needs: I/O deadlines on every operation, automatic re-dial with capped
// exponential backoff and full jitter, session resume by name, and a
// bounded replay buffer so frames in flight across a disconnect are
// re-sent at their original offsets — the server's v4 watermark dedup
// turns that at-least-once replay into exactly-once append.
//
// The replay ring retains batches even after the server acknowledges
// them, because an ack only proves the frame was enqueued — a server
// killed before journaling it loses it, and on resume the Welcome AckSeq
// (the durable watermark) can sit below the last ack. Acked entries are
// evicted oldest-first only when the ring exceeds its frame budget, so as
// long as the budget covers the server's queue-plus-journal lag, recovery
// is lossless; if a resume's AckSeq falls below the oldest buffered
// frame, the gap is unreplayable and the client fails with a terminal
// error instead of silently dropping data.
//
// Unlike Client, a ResilientClient is safe for one sender goroutine plus
// its own background heartbeat: all connection state is mutex-guarded.
type ResilientClient struct {
	cfg ResilientConfig

	mu      sync.Mutex
	c       *Client
	hello   Hello
	greeted bool
	broken  bool
	closed  bool

	ring       []replayEntry
	ringFrames int
	nextSeq    uint64 // client-stream offset of the next new frame

	lastIO     time.Time
	pingStop   chan struct{}
	pingDone   chan struct{}
	pingOnce   sync.Once
	reconnects uint64
	replayed   uint64
	outages    []time.Duration

	rng *rand.Rand

	mReconnects *obs.Counter
	mReplayed   *obs.Counter
}

// replayEntry is one buffered batch: its absolute first-frame offset and
// a private copy of the frames (callers reuse their batch buffers).
type replayEntry struct {
	start  uint64
	frames []stream.Frame
}

func (e replayEntry) end() uint64 { return e.start + uint64(len(e.frames)) }

// ResilientConfig shapes a ResilientClient.
type ResilientConfig struct {
	// Addr is the server endpoint (bare host:port, tcp:// or ws://),
	// re-dialed on every reconnect.
	Addr string
	// Dialer opens each (re)connection; nil uses the endpoint-scheme
	// default (transport.Net). Tests inject fault or counting dialers.
	Dialer transport.Dialer
	// DialTimeout bounds each connect attempt, transport handshake
	// included (default MaxBackoff — the reconnect loop's pacing budget —
	// so a blackholed address cannot stall an attempt past its backoff
	// slot).
	DialTimeout time.Duration
	// Window is the pipelining window of the underlying Client.
	Window int
	// Timeout bounds every socket read/write (default 10s).
	Timeout time.Duration
	// Heartbeat is the idle-ping interval of the background prober; once a
	// ping reaches the server, it holds the session to the heartbeat
	// window instead of the idle timeout. <= 0 disables the prober.
	Heartbeat time.Duration
	// BaseBackoff seeds the reconnect backoff (default 50ms); each failed
	// attempt doubles the cap until MaxBackoff, and the actual sleep is
	// uniform in [0, cap] (full jitter).
	BaseBackoff time.Duration
	// MaxBackoff caps the reconnect backoff (default 2s).
	MaxBackoff time.Duration
	// MaxAttempts bounds dial attempts per outage (default 10; negative
	// means unlimited).
	MaxAttempts int
	// ReplayFrames bounds the replay ring (default 16384 frames — twice a
	// default server queue, so acked-but-unjournaled frames stay covered).
	ReplayFrames int
	// Registry, when set, receives the client-side resilience counters
	// aims_client_reconnects_total and aims_client_replayed_batches_total.
	Registry *obs.Registry
	// Seed makes the backoff jitter deterministic in tests (0 seeds from
	// the global source).
	Seed int64
	// Logf receives reconnect lifecycle logs (nil discards them).
	Logf func(format string, args ...interface{})
}

func (c ResilientConfig) withDefaults() ResilientConfig {
	if c.Timeout <= 0 {
		c.Timeout = 10 * time.Second
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 50 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 2 * time.Second
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = c.MaxBackoff
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 10
	}
	if c.ReplayFrames <= 0 {
		c.ReplayFrames = 16384
	}
	if c.Logf == nil {
		c.Logf = func(string, ...interface{}) {}
	}
	return c
}

// TerminalError is a non-retryable client failure: reconnecting cannot
// help, and retrying would either lose data silently or loop forever.
type TerminalError struct {
	Reason string
	Err    error
}

// Error implements error.
func (e *TerminalError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("wire: terminal: %s: %v", e.Reason, e.Err)
	}
	return "wire: terminal: " + e.Reason
}

// Unwrap exposes the underlying cause.
func (e *TerminalError) Unwrap() error { return e.Err }

// IsTerminal reports whether err is a non-retryable client failure.
func IsTerminal(err error) bool {
	var te *TerminalError
	return errors.As(err, &te)
}

// DialResilient connects, registers the session, and starts the heartbeat
// prober. The Hello's Name is the resume key: every reconnect re-Hellos
// under it and the server hands back its append watermark.
func DialResilient(cfg ResilientConfig, h Hello) (*ResilientClient, Welcome, error) {
	cfg = cfg.withDefaults()
	seed := cfg.Seed
	if seed == 0 {
		seed = rand.Int63()
	}
	rc := &ResilientClient{cfg: cfg, hello: h, rng: rand.New(rand.NewSource(seed))}
	if cfg.Registry != nil {
		rc.mReconnects = cfg.Registry.Counter("aims_client_reconnects_total",
			"Successful session reconnects after a link failure.")
		rc.mReplayed = cfg.Registry.Counter("aims_client_replayed_batches_total",
			"Buffered batches re-sent during session resume.")
	}
	c, w, err := rc.dialOnce()
	if err != nil {
		return nil, Welcome{}, err
	}
	rc.c = c
	rc.greeted = true
	rc.nextSeq = w.AckSeq
	rc.lastIO = time.Now()
	if cfg.Heartbeat > 0 {
		rc.pingStop = make(chan struct{})
		rc.pingDone = make(chan struct{})
		go rc.pingLoop()
	}
	return rc, w, nil
}

// dialOnce dials and registers without retry (the initial connect; the
// reconnect loop wraps it with backoff).
func (rc *ResilientClient) dialOnce() (*Client, Welcome, error) {
	ctx, cancel := context.WithTimeout(context.Background(), rc.cfg.DialTimeout)
	defer cancel()
	d := rc.cfg.Dialer
	if d == nil {
		d = transport.Net
	}
	conn, err := d.DialContext(ctx, rc.cfg.Addr)
	if err != nil {
		return nil, Welcome{}, err
	}
	c := NewClient(conn)
	c.Window = rc.cfg.Window
	c.Timeout = rc.cfg.Timeout
	w, err := c.Hello(rc.hello)
	if err != nil {
		c.Abort()
		return nil, Welcome{}, err
	}
	return c, w, nil
}

// Reconnects returns how many times the client re-established the link.
func (rc *ResilientClient) Reconnects() uint64 {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.reconnects
}

// ReplayedBatches returns how many buffered batches resume replays re-sent.
func (rc *ResilientClient) ReplayedBatches() uint64 {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.replayed
}

// DupBatches returns how many replayed batches the server dropped as
// already held (the exactly-once dedup at work).
func (rc *ResilientClient) DupBatches() uint64 {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.c == nil {
		return 0
	}
	return rc.c.DupBatches()
}

// Outages returns the recovery latency of every completed reconnect: the
// wall time from first failed operation to replay completion.
func (rc *ResilientClient) Outages() []time.Duration {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	out := make([]time.Duration, len(rc.outages))
	copy(out, rc.outages)
	return out
}

// pingLoop probes the link whenever it has been idle for a heartbeat
// interval. A failed ping only marks the connection broken — the next
// operation (or the next ping) triggers the reconnect, so the prober
// never races a concurrent sender's recovery.
func (rc *ResilientClient) pingLoop() {
	defer close(rc.pingDone)
	t := time.NewTicker(rc.cfg.Heartbeat)
	defer t.Stop()
	for {
		select {
		case <-rc.pingStop:
			return
		case <-t.C:
		}
		rc.mu.Lock()
		if rc.closed {
			rc.mu.Unlock()
			return
		}
		if rc.broken || rc.c == nil || time.Since(rc.lastIO) < rc.cfg.Heartbeat {
			rc.mu.Unlock()
			continue
		}
		if err := rc.c.Ping(); err != nil {
			rc.cfg.Logf("wire: heartbeat failed: %v", err)
			rc.broken = true
		} else {
			rc.lastIO = time.Now()
		}
		rc.mu.Unlock()
	}
}

// buffer copies one batch into the replay ring at the given offset,
// evicting acked entries oldest-first past the frame budget.
func (rc *ResilientClient) buffer(start uint64, frames []stream.Frame) {
	cp := make([]stream.Frame, len(frames))
	flat := make([]float64, 0, len(frames)*len(frames[0].Values))
	for i, f := range frames {
		cp[i].T = f.T
		flat = append(flat, f.Values...)
		cp[i].Values = flat[len(flat)-len(f.Values):]
	}
	rc.ring = append(rc.ring, replayEntry{start: start, frames: cp})
	rc.ringFrames += len(cp)
	// Entries past the tail's outstanding batches are acked; only those may
	// be evicted (an unacked batch must stay replayable at any cost).
	for rc.ringFrames > rc.cfg.ReplayFrames {
		acked := len(rc.ring)
		if rc.c != nil {
			acked -= rc.c.Outstanding()
		}
		if acked <= 0 {
			break
		}
		rc.ringFrames -= len(rc.ring[0].frames)
		rc.ring = rc.ring[1:]
	}
}

// SendBatch buffers and streams one batch, transparently reconnecting and
// replaying on link failure. Frames are copied; the caller may reuse the
// slice.
func (rc *ResilientClient) SendBatch(frames []stream.Frame) error {
	if len(frames) == 0 {
		return nil
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.closed {
		return &TerminalError{Reason: "client closed"}
	}
	start := rc.nextSeq
	rc.buffer(start, frames)
	rc.nextSeq = start + uint64(len(frames))
	for {
		if err := rc.ensureLinkLocked(); err != nil {
			return err
		}
		// A reconnect replays the ring — this batch included — so sending it
		// again here would be redundant (though harmless: the server would
		// dedup it). Skip when the watermark already advanced past it.
		if rc.c.NextSeq() >= rc.nextSeq {
			return nil
		}
		err := rc.c.SendBatchAt(start, frames)
		if err == nil {
			rc.c.SetNextSeq(rc.nextSeq)
			rc.lastIO = time.Now()
			return nil
		}
		rc.cfg.Logf("wire: send failed, reconnecting: %v", err)
		rc.broken = true
	}
}

// Flush drains the pipeline to a durable barrier, reconnecting on failure.
func (rc *ResilientClient) Flush() (uint64, error) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	for {
		if err := rc.ensureLinkLocked(); err != nil {
			return 0, err
		}
		stored, err := rc.c.Flush()
		if err == nil {
			rc.lastIO = time.Now()
			return stored, nil
		}
		rc.cfg.Logf("wire: flush failed, reconnecting: %v", err)
		rc.broken = true
	}
}

// Query evaluates one aggregate, reconnecting and retrying on link
// failure (queries are read-only, so a retry is always safe).
func (rc *ResilientClient) Query(q Query) (Result, error) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	for {
		if err := rc.ensureLinkLocked(); err != nil {
			return Result{}, err
		}
		r, err := rc.c.Query(q)
		if err == nil {
			rc.lastIO = time.Now()
			return r, nil
		}
		var em ErrMsg
		if errors.As(err, &em) {
			// The server answered — the link is fine, the query is bad.
			return Result{}, err
		}
		rc.cfg.Logf("wire: query failed, reconnecting: %v", err)
		rc.broken = true
	}
}

// Close drains and ends the session; the connection is not re-established
// afterwards.
func (rc *ResilientClient) Close() (CloseAck, error) {
	rc.mu.Lock()
	defer func() {
		rc.mu.Unlock()
		rc.stopPinger()
	}()
	if rc.closed {
		return CloseAck{}, nil
	}
	for {
		if err := rc.ensureLinkLocked(); err != nil {
			rc.closed = true
			return CloseAck{}, err
		}
		ack, err := rc.c.Close()
		if err == nil {
			rc.closed = true
			return ack, nil
		}
		rc.cfg.Logf("wire: close failed, reconnecting: %v", err)
		rc.broken = true
	}
}

// Abort tears the link down without the drain handshake.
func (rc *ResilientClient) Abort() {
	rc.mu.Lock()
	rc.closed = true
	if rc.c != nil {
		rc.c.Abort()
	}
	rc.mu.Unlock()
	rc.stopPinger()
}

// stopPinger ends the heartbeat prober exactly once; safe to call from
// both Close and Abort, in any order.
func (rc *ResilientClient) stopPinger() {
	if rc.pingStop == nil {
		return
	}
	rc.pingOnce.Do(func() {
		close(rc.pingStop)
		<-rc.pingDone
	})
}

// ensureLinkLocked reconnects (with backoff) and replays the ring if the
// connection is broken. Callers hold rc.mu.
func (rc *ResilientClient) ensureLinkLocked() error {
	if !rc.broken && rc.c != nil {
		return nil
	}
	outageStart := time.Now()
	if rc.c != nil {
		rc.c.Abort()
	}
	backoffCap := rc.cfg.BaseBackoff
	for attempt := 1; ; attempt++ {
		if rc.cfg.MaxAttempts > 0 && attempt > rc.cfg.MaxAttempts {
			return &TerminalError{Reason: fmt.Sprintf("reconnect gave up after %d attempts", rc.cfg.MaxAttempts)}
		}
		// Full jitter: uniform in [0, cap]. Deterministic under cfg.Seed.
		time.Sleep(time.Duration(rc.rng.Float64() * float64(backoffCap)))
		if backoffCap *= 2; backoffCap > rc.cfg.MaxBackoff {
			backoffCap = rc.cfg.MaxBackoff
		}
		c, w, err := rc.dialOnce()
		if err != nil {
			var te *TerminalError
			if errors.As(err, &te) {
				return err
			}
			rc.cfg.Logf("wire: reconnect attempt %d: %v", attempt, err)
			continue
		}
		if err := rc.resumeLocked(c, w); err != nil {
			c.Abort()
			if IsTerminal(err) {
				return err
			}
			rc.cfg.Logf("wire: replay attempt %d: %v", attempt, err)
			continue
		}
		rc.c = c
		rc.broken = false
		rc.reconnects++
		if rc.mReconnects != nil {
			rc.mReconnects.Inc()
		}
		d := time.Since(outageStart)
		rc.outages = append(rc.outages, d)
		rc.cfg.Logf("wire: session %q resumed after %s (attempt %d, ack=%d)",
			rc.hello.Name, d.Round(time.Millisecond), attempt, w.AckSeq)
		rc.lastIO = time.Now()
		return nil
	}
}

// resumeLocked replays the buffered tail above the server's watermark on a
// freshly registered connection and barriers on its completion.
func (rc *ResilientClient) resumeLocked(c *Client, w Welcome) error {
	if w.AckSeq > rc.nextSeq {
		return &TerminalError{Reason: fmt.Sprintf(
			"server watermark %d ahead of client stream %d (session name collision?)", w.AckSeq, rc.nextSeq)}
	}
	if w.AckSeq < rc.nextSeq {
		// The server is missing frames; they must all still be buffered.
		oldest := rc.nextSeq
		if len(rc.ring) > 0 {
			oldest = rc.ring[0].start
		}
		if w.AckSeq < oldest {
			return &TerminalError{Reason: fmt.Sprintf(
				"server lost frames [%d,%d) already evicted from the replay buffer (grow ReplayFrames)", w.AckSeq, oldest)}
		}
	}
	replayed := uint64(0)
	for _, e := range rc.ring {
		if e.end() <= w.AckSeq {
			continue // fully held by the server
		}
		if err := c.SendBatchAt(e.start, e.frames); err != nil {
			return err
		}
		replayed++
	}
	c.SetNextSeq(rc.nextSeq)
	if replayed > 0 {
		// Barrier: the resume is complete only once every replayed frame is
		// stored (or deduped) — a failure here retries the whole resume.
		if _, err := c.Flush(); err != nil {
			return err
		}
	}
	rc.replayed += replayed
	if rc.mReplayed != nil {
		rc.mReplayed.Add(replayed)
	}
	return nil
}
