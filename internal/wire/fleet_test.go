package wire

import (
	"errors"
	"math"
	"reflect"
	"testing"
)

// TestHelloV1Compat hand-encodes a protocol-v1 Hello — no device-class
// field — and checks a v2 decoder still accepts it, with an empty Class.
func TestHelloV1Compat(t *testing.T) {
	h := Hello{
		Rate:         250,
		HorizonTicks: 500,
		Name:         "legacy glove",
		Mins:         []float64{-1, 0},
		Maxs:         []float64{1, 9},
	}
	var e buf
	e.u32(Magic)
	e.u8(1) // protocol v1: payload ends at the channel ranges
	e.f64(h.Rate)
	e.u32(h.HorizonTicks)
	e.str(h.Name)
	e.u16(uint16(len(h.Mins)))
	for i := range h.Mins {
		e.f64(h.Mins[i])
		e.f64(h.Maxs[i])
	}
	got, err := DecodeHello(e.b)
	if err != nil {
		t.Fatalf("v1 hello rejected: %v", err)
	}
	h.Proto = 1 // DecodeHello stamps the version it negotiated
	if !reflect.DeepEqual(got, h) {
		t.Fatalf("v1 round trip: %+v != %+v", got, h)
	}
	if got.Class != "" {
		t.Fatalf("v1 hello decoded class %q", got.Class)
	}
	// Trailing garbage after a well-formed v1 payload still fails.
	if _, err := DecodeHello(append(e.b, 7)); err == nil {
		t.Fatal("v1 hello with trailing bytes accepted")
	}
}

func TestHelloV2CarriesClass(t *testing.T) {
	h := Hello{Rate: 100, Name: "g7", Class: "cyberglove", Mins: []float64{0}, Maxs: []float64{1}}
	p, err := h.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeHello(p)
	if err != nil {
		t.Fatal(err)
	}
	if got.Class != "cyberglove" {
		t.Fatalf("class %q", got.Class)
	}
}

func TestDecodeQueryRejectsMalformedRanges(t *testing.T) {
	cases := []struct{ t0, t1 float64 }{
		{math.NaN(), 1},
		{0, math.NaN()},
		{math.Inf(-1), 1},
		{0, math.Inf(1)},
		{5, 1}, // inverted
	}
	for _, c := range cases {
		p := Query{Kind: QueryCount, T0: c.t0, T1: c.t1}.Encode()
		_, err := DecodeQuery(p)
		if err == nil {
			t.Fatalf("range [%v,%v] accepted", c.t0, c.t1)
		}
		var re *RangeError
		if !errors.As(err, &re) {
			t.Fatalf("range [%v,%v]: error %v is not a *RangeError", c.t0, c.t1, err)
		}
	}
	// A point range (T0 == T1) is legal.
	if _, err := DecodeQuery(Query{Kind: QueryCount, T0: 2, T1: 2}.Encode()); err != nil {
		t.Fatalf("point range rejected: %v", err)
	}
}

func TestFleetQueryRoundTrip(t *testing.T) {
	byClass := FleetQuery{
		Query:         Query{Kind: QueryAverage, Channel: 3, T0: 1.5, T1: 20, Arg: 7},
		Scope:         FleetScope{Class: "cyberglove"},
		Partial:       true,
		TimeoutMillis: 1500,
	}
	p, err := byClass.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeFleetQuery(p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, byClass) {
		t.Fatalf("round trip: %+v != %+v", got, byClass)
	}

	byIDs := FleetQuery{
		Query: Query{Kind: QueryCount, T0: 0, T1: 4},
		Scope: FleetScope{IDs: []uint64{9, 2, 1 << 40}},
	}
	p, err = byIDs.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err = DecodeFleetQuery(p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, byIDs) {
		t.Fatalf("round trip: %+v != %+v", got, byIDs)
	}

	for cut := 0; cut < len(p); cut++ {
		if _, err := DecodeFleetQuery(p[:cut]); err == nil {
			t.Fatalf("accepted fleet query truncated to %d bytes", cut)
		}
	}
}

func TestFleetQueryValidation(t *testing.T) {
	// Both selectors, or neither, is malformed.
	if _, err := (FleetQuery{Query: Query{T1: 1}}).Encode(); err == nil {
		t.Fatal("empty scope accepted")
	}
	both := FleetQuery{Query: Query{T1: 1}, Scope: FleetScope{Class: "c", IDs: []uint64{1}}}
	if _, err := both.Encode(); err == nil {
		t.Fatal("double scope accepted")
	}
	// Malformed ranges are rejected with the same typed error as DecodeQuery.
	bad := FleetQuery{Query: Query{T0: 3, T1: 1}, Scope: FleetScope{Class: "c"}}
	if _, err := bad.Encode(); err == nil {
		t.Fatal("inverted range accepted at encode")
	}
	// And at decode, for payloads built by other implementations.
	ok := FleetQuery{Query: Query{T0: 0, T1: 1}, Scope: FleetScope{Class: "c"}}
	p, err := ok.Encode()
	if err != nil {
		t.Fatal(err)
	}
	// Patch T1 (offset: kind 1 + channel 2 + t0 8) to NaN.
	copy(p[11:19], nanBytes())
	_, err = DecodeFleetQuery(p)
	var re *RangeError
	if !errors.As(err, &re) {
		t.Fatalf("NaN endpoint: error %v is not a *RangeError", err)
	}
}

func nanBytes() []byte {
	var e buf
	e.f64(math.NaN())
	return e.b
}

func TestFleetResultRoundTrip(t *testing.T) {
	r := FleetResult{
		Kind:         QueryApproxCount,
		OK:           true,
		Code:         CodePartial,
		Value:        123.5,
		Bound:        4.25,
		Coefficients: 96,
		Sessions:     5,
		Merged:       3,
		Parts: []FleetPart{
			{ID: 1, Frames: 1000, N: 1000, Sum: 41.5, SumSq: 17, Bound: 1.5, Coefficients: 32},
			{ID: 4, Frames: 2000, N: 2000, Sum: 82, SumSq: 34, Bound: 2.75, Coefficients: 64},
		},
		Failures: []FleetFailure{
			{ID: 2, Code: CodeDeadline, Text: "scan missed the 50ms deadline"},
			{ID: 3, Code: CodeBadQuery, Text: "channel 3 out of [0,2)"},
		},
	}
	p, err := r.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeFleetResult(p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, r) {
		t.Fatalf("round trip:\n%+v\n!=\n%+v", got, r)
	}
	for cut := 0; cut < len(p); cut++ {
		if _, err := DecodeFleetResult(p[:cut]); err == nil {
			t.Fatalf("accepted fleet result truncated to %d bytes", cut)
		}
	}
}
