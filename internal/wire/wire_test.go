package wire

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"aims/internal/stream"
)

func TestMessageFraming(t *testing.T) {
	var b bytes.Buffer
	payloads := [][]byte{nil, {1}, bytes.Repeat([]byte{0xAB}, 1000)}
	for i, p := range payloads {
		if err := WriteMessage(&b, byte(i+1), p); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	for i, p := range payloads {
		typ, got, err := ReadMessage(&b)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if typ != byte(i+1) || !bytes.Equal(got, p) {
			t.Fatalf("message %d mismatched: type=%d len=%d", i, typ, len(got))
		}
	}
}

func TestMessageFramingRejectsOversize(t *testing.T) {
	var b bytes.Buffer
	if err := WriteMessage(&b, 1, make([]byte, MaxPayload+1)); err == nil {
		t.Fatal("oversize write accepted")
	}
	// A hostile length prefix must be rejected before allocation.
	b.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1})
	if _, _, err := ReadMessage(&b); err == nil {
		t.Fatal("oversize read accepted")
	}
}

func TestHelloRoundTrip(t *testing.T) {
	h := Hello{
		Rate:         100,
		HorizonTicks: 12345,
		Name:         "glove-7",
		Mins:         []float64{-1, 0, 2.5},
		Maxs:         []float64{1, 10, 3.5},
	}
	p, err := h.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeHello(p)
	if err != nil {
		t.Fatal(err)
	}
	h.Proto = Version // DecodeHello stamps the negotiated version
	if !reflect.DeepEqual(h, got) {
		t.Fatalf("round trip: %+v != %+v", got, h)
	}
}

func TestHelloRejectsBadMagicAndVersion(t *testing.T) {
	h := Hello{Rate: 100, Mins: []float64{0}, Maxs: []float64{1}}
	p, _ := h.Encode()
	p[0] ^= 0xFF
	if _, err := DecodeHello(p); err == nil {
		t.Fatal("bad magic accepted")
	}
	p[0] ^= 0xFF
	p[4] = Version + 1
	if _, err := DecodeHello(p); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestHelloValidation(t *testing.T) {
	if _, err := (Hello{Rate: 100, Mins: []float64{0}, Maxs: nil}).Encode(); err == nil {
		t.Fatal("mismatched ranges accepted")
	}
	if _, err := (Hello{Rate: 100}).Encode(); err == nil {
		t.Fatal("zero channels accepted")
	}
	p, _ := Hello{Rate: -1, Mins: []float64{0}, Maxs: []float64{1}}.Encode()
	if _, err := DecodeHello(p); err == nil {
		t.Fatal("non-positive rate accepted")
	}
}

func TestBatchRoundTrip(t *testing.T) {
	frames := []stream.Frame{
		{T: 0, Values: []float64{1, 2}},
		{T: 0.01, Values: []float64{3, math.Pi}},
		{T: 0.02, Values: []float64{-1, 1e-9}},
	}
	p, err := EncodeBatch(42, frames, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DecodeBatch(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if b.Seq != 42 || !reflect.DeepEqual(b.Frames, frames) {
		t.Fatalf("round trip: %+v", b)
	}
	if _, err := DecodeBatch(p, 3); err == nil {
		t.Fatal("width mismatch accepted")
	}
	if _, err := DecodeBatch(p[:len(p)-1], 2); err == nil {
		t.Fatal("truncated batch accepted")
	}
}

func TestBatchRejectsRaggedFrames(t *testing.T) {
	frames := []stream.Frame{{T: 0, Values: []float64{1}}, {T: 1, Values: []float64{1, 2}}}
	if _, err := EncodeBatch(1, frames, 1); err == nil {
		t.Fatal("ragged frame accepted")
	}
}

func TestSmallMessageRoundTrips(t *testing.T) {
	a := BatchAck{Seq: 9, Code: CodeShed, Stored: 128}
	if got, err := DecodeBatchAck(a.Encode()); err != nil || got != a {
		t.Fatalf("batch ack: %+v %v", got, err)
	}
	w := Welcome{SessionID: 77, Code: CodeOK}
	if got, err := DecodeWelcome(w.Encode()); err != nil || got != w {
		t.Fatalf("welcome: %+v %v", got, err)
	}
	q := Query{Kind: QueryApproxCount, Channel: 12, T0: 1.5, T1: 9.25, Arg: 64}
	if got, err := DecodeQuery(q.Encode()); err != nil || got != q {
		t.Fatalf("query: %+v %v", got, err)
	}
	r := Result{Kind: QueryProgressiveCount, Final: true, OK: true, Code: CodeOK, Value: 3.5, Bound: 0.25, Coefficients: 17}
	if got, err := DecodeResult(r.Encode()); err != nil || got != r {
		t.Fatalf("result: %+v %v", got, err)
	}
	c := CloseAck{Stored: 1 << 40, Shed: 3}
	if got, err := DecodeCloseAck(c.Encode()); err != nil || got != c {
		t.Fatalf("close ack: %+v %v", got, err)
	}
	f := FlushAck{Stored: 999}
	if got, err := DecodeFlushAck(f.Encode()); err != nil || got != f {
		t.Fatalf("flush ack: %+v %v", got, err)
	}
	e := ErrMsg{Code: CodeIdleEvicted, Text: "session idle"}
	if got, err := DecodeErr(e.Encode()); err != nil || got != e {
		t.Fatalf("err msg: %+v %v", got, err)
	}
}

func TestTruncatedPayloadsRejected(t *testing.T) {
	q := Query{Kind: QueryCount, Channel: 1, T0: 0, T1: 1}
	p := q.Encode()
	for cut := 0; cut < len(p); cut++ {
		if _, err := DecodeQuery(p[:cut]); err == nil {
			t.Fatalf("accepted query truncated to %d bytes", cut)
		}
	}
	if _, err := DecodeQuery(append(p, 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}
