package wire

import "fmt"

// Fleet messages (protocol v2): one range-aggregate evaluated over every
// live session of a device class — the paper's multi-user haptic scenario,
// where the question is about the *group* of CyberGlove sessions, not one
// recording — or over an explicit session-ID set. The server scatters the
// query across the matching sessions, each contributing frames up to its
// own high-water mark at scatter time, and merges the per-session answers;
// the result carries the merged value plus per-session detail (watermark
// and mergeable partials on success, a code and message on failure).

// MaxFleetIDs bounds an explicit session-ID scope.
const MaxFleetIDs = 65535

// MaxFleetDetail bounds the per-session detail lists a FleetResult may
// carry. A fleet over more sessions still answers — the server just elides
// the per-session parts past the cap (failures are never elided; they are
// bounded by the same cap at the policy layer).
const MaxFleetDetail = 65535

// FleetScope selects which sessions a fleet query spans: every live
// session of a device class, or an explicit session-ID set. Exactly one
// selector must be set.
type FleetScope struct {
	Class string
	IDs   []uint64
}

// Validate checks that exactly one selector is populated.
func (s FleetScope) Validate() error {
	if (s.Class == "") == (len(s.IDs) == 0) {
		return fmt.Errorf("wire: fleet scope needs exactly one of class or session IDs")
	}
	if len(s.IDs) > MaxFleetIDs {
		return fmt.Errorf("wire: fleet scope lists %d sessions, max %d", len(s.IDs), MaxFleetIDs)
	}
	return nil
}

// String renders the scope for logs and CLI output.
func (s FleetScope) String() string {
	if s.Class != "" {
		return "class=" + s.Class
	}
	return fmt.Sprintf("ids=%v", s.IDs)
}

// FleetQuery is one cross-session range-aggregate: the same aggregate
// vocabulary as Query, a scope selector, the partial-result policy and a
// per-query deadline (0 = server default).
type FleetQuery struct {
	Query
	Scope FleetScope
	// Partial lets the query answer from the sessions that succeeded when
	// some fail or miss the deadline (the result is CodePartial and names
	// the failures). Without it any per-session failure fails the query.
	Partial       bool
	TimeoutMillis uint32
}

// Encode serialises the FleetQuery payload.
func (q FleetQuery) Encode() ([]byte, error) {
	if err := q.Scope.Validate(); err != nil {
		return nil, err
	}
	if err := checkRange(q.T0, q.T1); err != nil {
		return nil, err
	}
	var e buf
	e.u8(uint8(q.Kind))
	e.u16(q.Channel)
	e.f64(q.T0)
	e.f64(q.T1)
	e.u32(q.Arg)
	var flags uint8
	if q.Partial {
		flags |= 1
	}
	e.u8(flags)
	e.u32(q.TimeoutMillis)
	e.str(q.Scope.Class)
	e.u16(uint16(len(q.Scope.IDs)))
	for _, id := range q.Scope.IDs {
		e.u64(id)
	}
	// v3 trace context rides as a strict suffix after the v2 fields, and
	// only when set — an untraced v3 fleet query is byte-identical to v2.
	appendTraceContext(&e, q.TraceID, q.TraceSampled)
	return e.b, nil
}

// DecodeFleetQuery parses a FleetQuery payload, mirroring DecodeQuery's
// malformed-range rejection (*RangeError) and the scope invariant.
func DecodeFleetQuery(p []byte) (FleetQuery, error) {
	d := buf{b: p}
	var q FleetQuery
	q.Kind = QueryKind(d.rdU8())
	q.Channel = d.rdU16()
	q.T0 = d.rdF64()
	q.T1 = d.rdF64()
	q.Arg = d.rdU32()
	flags := d.rdU8()
	q.Partial = flags&1 != 0
	q.TimeoutMillis = d.rdU32()
	q.Scope.Class = d.rdStr()
	n := int(d.rdU16())
	if d.err == nil && n > 0 {
		q.Scope.IDs = make([]uint64, n)
		for i := range q.Scope.IDs {
			q.Scope.IDs[i] = d.rdU64()
		}
	}
	q.TraceID, q.TraceSampled = readTraceContext(&d)
	if err := d.done(); err != nil {
		return FleetQuery{}, err
	}
	if err := checkRange(q.T0, q.T1); err != nil {
		return FleetQuery{}, err
	}
	if err := q.Scope.Validate(); err != nil {
		return FleetQuery{}, err
	}
	return q, nil
}

// FleetPart is one session's contribution to a fleet result: the frame
// high-water mark it answered at (the consistency contract — the session
// kept ingesting, but its answer covers exactly Frames frames) and its
// mergeable partial. Exact kinds fill the moment fields (N samples, Σv,
// Σv² in decoded value units); approximate and progressive kinds fill Sum
// with the estimate and Bound with its guaranteed error bound.
type FleetPart struct {
	ID           uint64
	Frames       uint64
	N            float64
	Sum          float64
	SumSq        float64
	Bound        float64
	Coefficients uint32
}

// FleetFailure is one session's failure inside a fleet query.
type FleetFailure struct {
	ID   uint64
	Code Code
	Text string
}

// FleetResult is the merged answer to a FleetQuery. Sessions is how many
// sessions the scope matched at scatter time; Merged how many contributed
// to Value. Code is CodeOK for a full answer, CodePartial when Partial
// was set and some sessions failed (Failures has the detail), or an error
// code with OK=false. Bound is the summed per-session error bound of
// approximate/progressive kinds — the merged estimate's guarantee is the
// sum of the per-session guarantees.
type FleetResult struct {
	Kind         QueryKind
	OK           bool
	Code         Code
	Value        float64
	Bound        float64
	Coefficients uint32
	Sessions     uint32
	Merged       uint32
	Parts        []FleetPart
	Failures     []FleetFailure
}

// Encode serialises the FleetResult payload.
func (r FleetResult) Encode() ([]byte, error) {
	if len(r.Parts) > MaxFleetDetail || len(r.Failures) > MaxFleetDetail {
		return nil, fmt.Errorf("wire: fleet detail %d/%d exceeds max %d",
			len(r.Parts), len(r.Failures), MaxFleetDetail)
	}
	var e buf
	e.u8(uint8(r.Kind))
	var flags uint8
	if r.OK {
		flags |= 1
	}
	e.u8(flags)
	e.u16(uint16(r.Code))
	e.f64(r.Value)
	e.f64(r.Bound)
	e.u32(r.Coefficients)
	e.u32(r.Sessions)
	e.u32(r.Merged)
	e.u16(uint16(len(r.Parts)))
	for _, p := range r.Parts {
		e.u64(p.ID)
		e.u64(p.Frames)
		e.f64(p.N)
		e.f64(p.Sum)
		e.f64(p.SumSq)
		e.f64(p.Bound)
		e.u32(p.Coefficients)
	}
	e.u16(uint16(len(r.Failures)))
	for _, f := range r.Failures {
		e.u64(f.ID)
		e.u16(uint16(f.Code))
		e.str(f.Text)
	}
	return e.b, nil
}

// DecodeFleetResult parses a FleetResult payload.
func DecodeFleetResult(p []byte) (FleetResult, error) {
	d := buf{b: p}
	var r FleetResult
	r.Kind = QueryKind(d.rdU8())
	flags := d.rdU8()
	r.OK = flags&1 != 0
	r.Code = Code(d.rdU16())
	r.Value = d.rdF64()
	r.Bound = d.rdF64()
	r.Coefficients = d.rdU32()
	r.Sessions = d.rdU32()
	r.Merged = d.rdU32()
	if n := int(d.rdU16()); d.err == nil && n > 0 {
		r.Parts = make([]FleetPart, n)
		for i := range r.Parts {
			r.Parts[i] = FleetPart{
				ID:           d.rdU64(),
				Frames:       d.rdU64(),
				N:            d.rdF64(),
				Sum:          d.rdF64(),
				SumSq:        d.rdF64(),
				Bound:        d.rdF64(),
				Coefficients: d.rdU32(),
			}
		}
	}
	if n := int(d.rdU16()); d.err == nil && n > 0 {
		r.Failures = make([]FleetFailure, n)
		for i := range r.Failures {
			r.Failures[i] = FleetFailure{ID: d.rdU64(), Code: Code(d.rdU16()), Text: d.rdStr()}
		}
	}
	return r, d.done()
}
