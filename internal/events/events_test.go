package events

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func buildLog(t *testing.T) *Log {
	t.Helper()
	l := NewLog()
	add := func(s, e float64, kind string) {
		if err := l.Add(Event{Start: s, End: e, Kind: kind}); err != nil {
			t.Fatal(err)
		}
	}
	add(2, 5, "distraction")
	add(8, 12, "distraction")
	add(3, 3, "miss") // instant inside the first distraction
	add(7, 7, "miss") // instant in the gap
	add(1, 10, "task")
	return l
}

func TestAddRejectsInvertedInterval(t *testing.T) {
	if err := NewLog().Add(Event{Start: 5, End: 4}); err == nil {
		t.Fatal("inverted interval accepted")
	}
}

func TestOverlapping(t *testing.T) {
	l := buildLog(t)
	got := l.Overlapping(4, 9)
	kinds := map[string]int{}
	for _, e := range got {
		kinds[e.Kind]++
	}
	// distraction [2,5) and [8,12) overlap; miss@7 inside; task [1,10).
	if kinds["distraction"] != 2 || kinds["miss"] != 1 || kinds["task"] != 1 {
		t.Fatalf("Overlapping(4,9) kinds = %v", kinds)
	}
	if len(l.Overlapping(20, 30)) != 0 {
		t.Fatal("phantom overlaps")
	}
	// Half-open: an event ending exactly at t0 does not overlap.
	if evs := l.Overlapping(5, 6); len(evs) != 1 || evs[0].Kind != "task" {
		t.Fatalf("Overlapping(5,6) = %v", evs)
	}
}

func TestAt(t *testing.T) {
	l := buildLog(t)
	at3 := l.At(3)
	kinds := map[string]bool{}
	for _, e := range at3 {
		kinds[e.Kind] = true
	}
	if !kinds["distraction"] || !kinds["miss"] || !kinds["task"] {
		t.Fatalf("At(3) = %v", at3)
	}
	if evs := l.At(5); len(evs) != 1 { // [2,5) excludes 5; only task remains
		t.Fatalf("At(5) = %v", evs)
	}
}

func TestKindAndLen(t *testing.T) {
	l := buildLog(t)
	if l.Len() != 5 {
		t.Fatalf("Len = %d", l.Len())
	}
	d := l.Kind("distraction")
	if len(d) != 2 || d[0].Start != 2 {
		t.Fatalf("Kind = %v", d)
	}
}

func TestJoinMissWithDistraction(t *testing.T) {
	l := buildLog(t)
	var pairs [][2]float64
	l.Join("miss", "distraction", func(a, b Event) {
		pairs = append(pairs, [2]float64{a.Start, b.Start})
	})
	// Only the miss at t=3 falls inside a distraction.
	if len(pairs) != 1 || pairs[0][0] != 3 || pairs[0][1] != 2 {
		t.Fatalf("Join = %v", pairs)
	}
}

func TestCoverageWithin(t *testing.T) {
	l := buildLog(t)
	// Distractions cover [2,5) ∪ [8,12); within [0,10): 3 + 2 = 5.
	if got := l.CoverageWithin("distraction", 0, 10); got != 5 {
		t.Fatalf("coverage = %v", got)
	}
	if got := l.CoverageWithin("distraction", 5, 8); got != 0 {
		t.Fatalf("gap coverage = %v", got)
	}
	// Overlapping events must not double count.
	l2 := NewLog()
	l2.Add(Event{Start: 0, End: 6, Kind: "x"})
	l2.Add(Event{Start: 4, End: 10, Kind: "x"})
	if got := l2.CoverageWithin("x", 0, 10); got != 10 {
		t.Fatalf("merged coverage = %v", got)
	}
}

func TestAddAfterQueryRebuildsIndex(t *testing.T) {
	l := buildLog(t)
	_ = l.Overlapping(0, 100)
	l.Add(Event{Start: 50, End: 60, Kind: "late"})
	if got := l.Overlapping(55, 56); len(got) != 1 || got[0].Kind != "late" {
		t.Fatalf("late event invisible: %v", got)
	}
}

func TestOverlappingMatchesNaiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := NewLog()
		type iv struct{ s, e float64 }
		var all []iv
		for i := 0; i < 60; i++ {
			s := rng.Float64() * 100
			e := s + rng.Float64()*20
			all = append(all, iv{s, e})
			l.Add(Event{Start: s, End: e, Kind: "x"})
		}
		for trial := 0; trial < 10; trial++ {
			t0 := rng.Float64() * 100
			t1 := t0 + rng.Float64()*30
			want := 0
			for _, v := range all {
				if v.e > t0 && v.s < t1 {
					want++
				}
			}
			if len(l.Overlapping(t0, t1)) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
