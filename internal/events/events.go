// Package events provides the session-annotation substrate of the ADHD
// study (§2.1): stimuli, distractions and responses are intervals/instants
// on the session clock, and the psychologists' queries join them with the
// sensor analytics — "which distraction was around when a particular child
// missed a question?". The log is an immutable, time-sorted interval store
// with O(log n + k) overlap queries.
package events

import (
	"fmt"
	"sort"
)

// Event is an annotated interval on the session clock (instants have
// End == Start).
type Event struct {
	Start, End float64 // seconds; [Start, End)
	Kind       string
	// Payload carries study-specific attributes (stimulus index, hit flag,
	// distraction type …).
	Payload map[string]float64
}

// Duration returns the event length in seconds.
func (e Event) Duration() float64 { return e.End - e.Start }

// Log is an append-then-freeze event store.
type Log struct {
	events []Event
	sorted bool
	maxEnd []float64 // prefix max of End for interval stabbing
}

// NewLog returns an empty log.
func NewLog() *Log { return &Log{} }

// Add appends an event. Adding after the first query is allowed; the
// index is rebuilt lazily.
func (l *Log) Add(e Event) error {
	if e.End < e.Start {
		return fmt.Errorf("events: interval [%v,%v) inverted", e.Start, e.End)
	}
	l.events = append(l.events, e)
	l.sorted = false
	return nil
}

// Len returns the number of events.
func (l *Log) Len() int { return len(l.events) }

func (l *Log) ensureSorted() {
	if l.sorted {
		return
	}
	sort.SliceStable(l.events, func(i, j int) bool {
		if l.events[i].Start != l.events[j].Start {
			return l.events[i].Start < l.events[j].Start
		}
		return l.events[i].End < l.events[j].End
	})
	l.maxEnd = make([]float64, len(l.events))
	run := 0.0
	for i, e := range l.events {
		if i == 0 || e.End > run {
			run = e.End
		}
		l.maxEnd[i] = run
	}
	l.sorted = true
}

// Overlapping returns the events intersecting [t0, t1), in start order.
// Instants (zero-length events) match when t0 ≤ Start < t1.
func (l *Log) Overlapping(t0, t1 float64) []Event {
	l.ensureSorted()
	var out []Event
	// Binary search for the first event whose Start < t1; walk left-to-
	// right and use the prefix max of End to stop early is not possible
	// going forward, so scan candidates with Start < t1 and filter. The
	// prefix-max lets us skip the head: find the first index whose
	// running max End exceeds t0.
	lo := sort.Search(len(l.events), func(i int) bool { return l.maxEnd[i] > t0 })
	hi := sort.Search(len(l.events), func(i int) bool { return l.events[i].Start >= t1 })
	for i := lo; i < hi; i++ {
		e := l.events[i]
		if e.End > t0 || (e.Start == e.End && e.Start >= t0) {
			out = append(out, e)
		}
	}
	return out
}

// At returns the events covering instant t.
func (l *Log) At(t float64) []Event {
	l.ensureSorted()
	var out []Event
	lo := sort.Search(len(l.events), func(i int) bool { return l.maxEnd[i] > t })
	hi := sort.Search(len(l.events), func(i int) bool { return l.events[i].Start > t })
	for i := lo; i < hi; i++ {
		e := l.events[i]
		if (t >= e.Start && t < e.End) || (e.Start == e.End && e.Start == t) {
			out = append(out, e)
		}
	}
	return out
}

// Kind returns all events of one kind, in start order.
func (l *Log) Kind(kind string) []Event {
	l.ensureSorted()
	var out []Event
	for _, e := range l.events {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// Join invokes fn for every pair (a, b) where a is of kindA, b of kindB,
// and b overlaps a — the "distraction around a miss" join. Instants join
// against intervals containing them.
func (l *Log) Join(kindA, kindB string, fn func(a, b Event)) {
	for _, a := range l.Kind(kindA) {
		t1 := a.End
		if a.Start == a.End {
			t1 = a.Start + 1e-9
		}
		for _, b := range l.Overlapping(a.Start, t1) {
			if b.Kind == kindB {
				fn(a, b)
			}
		}
	}
}

// CoverageWithin returns the total time within [t0, t1) covered by at
// least one event of the kind (overlaps are merged).
func (l *Log) CoverageWithin(kind string, t0, t1 float64) float64 {
	evs := l.Kind(kind)
	var total float64
	cursor := t0
	for _, e := range evs {
		s, en := e.Start, e.End
		if en <= cursor || s >= t1 {
			continue
		}
		if s < cursor {
			s = cursor
		}
		if en > t1 {
			en = t1
		}
		if en > s {
			total += en - s
			cursor = en
		}
	}
	return total
}
