package sampling

import (
	"math"
	"testing"

	"aims/internal/sensors"
)

// testRecording builds a 2-sensor recording: one slow channel, one fast.
func testRecording(n int) [][]float64 {
	rec := make([][]float64, 2)
	rec[0] = make([]float64, n)
	rec[1] = make([]float64, n)
	for i := 0; i < n; i++ {
		t := float64(i) / 100
		rec[0][i] = math.Sin(2 * math.Pi * 1 * t)  // 1 Hz
		rec[1][i] = math.Sin(2 * math.Pi * 20 * t) // 20 Hz
	}
	return rec
}

func cfg() Config { return Config{DeviceRate: 100} }

func TestNyquistRateClamps(t *testing.T) {
	c := Config{DeviceRate: 100, MinRate: 4}
	flat := make([]float64, 512)
	if got := c.NyquistRate(flat); got != 4 {
		t.Fatalf("flat rate = %v, want MinRate", got)
	}
	fast := make([]float64, 512)
	for i := range fast {
		fast[i] = math.Sin(2 * math.Pi * 49 * float64(i) / 100)
	}
	if got := c.NyquistRate(fast); got > 100 {
		t.Fatalf("rate = %v exceeds device rate", got)
	}
}

func TestFixedUsesOneRate(t *testing.T) {
	res := Fixed(testRecording(1024), cfg())
	if len(res.Traces) != 2 {
		t.Fatalf("traces = %d", len(res.Traces))
	}
	r0 := res.Traces[0].Segments[0].Rate
	r1 := res.Traces[1].Segments[0].Rate
	if r0 != r1 {
		t.Fatalf("fixed policy used different rates: %v vs %v", r0, r1)
	}
	// The common rate must satisfy the fast sensor: ≥ 40 Hz.
	if r0 < 40 {
		t.Fatalf("fixed rate %v too low for the 20 Hz channel", r0)
	}
}

func TestAdaptiveBeatsFixedOnBandwidth(t *testing.T) {
	// Slow channel gets sampled slowly only under Grouped/Adaptive.
	rec := testRecording(4096)
	fixed := Fixed(rec, cfg())
	adaptive := Adaptive(rec, cfg())
	grouped := Grouped(rec, cfg())
	if adaptive.Bytes >= fixed.Bytes {
		t.Fatalf("adaptive %d B should beat fixed %d B", adaptive.Bytes, fixed.Bytes)
	}
	if grouped.Bytes >= fixed.Bytes {
		t.Fatalf("grouped %d B should beat fixed %d B", grouped.Bytes, fixed.Bytes)
	}
}

func TestAdaptiveExploitsIdlePeriods(t *testing.T) {
	// A channel that is active then idle: adaptive should spend most of its
	// samples on the active half.
	n := 4096
	rec := [][]float64{make([]float64, n)}
	for i := 0; i < n/2; i++ {
		rec[0][i] = math.Sin(2 * math.Pi * 20 * float64(i) / 100)
	}
	// Second half: flat (idle user).
	res := Adaptive(rec, cfg())
	var activeSamples, idleSamples int
	ticks := 0
	for _, seg := range res.Traces[0].Segments {
		if ticks < n/2 {
			activeSamples += len(seg.Values)
		} else {
			idleSamples += len(seg.Values)
		}
		ticks += seg.DeviceTicks
	}
	if idleSamples*4 > activeSamples {
		t.Fatalf("idle half used %d samples vs active %d — no adaptation", idleSamples, activeSamples)
	}
	// Modified-fixed shares the rate across sensors but also adapts in time.
	mf := ModifiedFixed(rec, cfg())
	if mf.Bytes <= res.Bytes {
		// With one sensor they should be nearly identical; just sanity.
		t.Logf("modified-fixed %d B, adaptive %d B", mf.Bytes, res.Bytes)
	}
}

func TestReconstructionAccuracy(t *testing.T) {
	// All policies must reconstruct band-limited signals with low error.
	rec := testRecording(4096)
	for _, res := range All(rec, cfg()) {
		mse := res.MSE(rec, 100)
		if mse > 0.05 {
			t.Errorf("%s: reconstruction MSE %v too high", res.Policy, mse)
		}
	}
}

func TestMSEPanicsOnShapeMismatch(t *testing.T) {
	res := Fixed(testRecording(256), cfg())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	res.MSE([][]float64{{1}}, 100)
}

func TestAllOnRealGloveRecording(t *testing.T) {
	d := sensors.NewDevice(sensors.GloveSpecs(), sensors.DefaultClock, 1, 99)
	rec := d.Record(2048)
	clean := sensors.NewDevice(sensors.GloveSpecs(), sensors.DefaultClock, 1, 99).RecordClean(2048)
	results := All(rec, Config{DeviceRate: sensors.DefaultClock})
	raw := 28 * 2048 * 8
	for _, res := range results {
		if res.Bytes >= raw {
			t.Errorf("%s: %d B not below raw %d B", res.Policy, res.Bytes, raw)
		}
		if mse := res.MSE(clean, sensors.DefaultClock); math.IsNaN(mse) {
			t.Errorf("%s: NaN MSE", res.Policy)
		}
	}
	// Paper's headline: adaptive requires far less bandwidth than fixed.
	if results[3].Bytes >= results[0].Bytes {
		t.Errorf("adaptive %d B should undercut fixed %d B", results[3].Bytes, results[0].Bytes)
	}
}

func TestKmeans1D(t *testing.T) {
	vals := []float64{1, 1.1, 0.9, 10, 10.2, 9.8, 30}
	assign := kmeans1D(vals, 3)
	if assign[0] != assign[1] || assign[1] != assign[2] {
		t.Fatalf("low cluster split: %v", assign)
	}
	if assign[3] != assign[4] || assign[4] != assign[5] {
		t.Fatalf("mid cluster split: %v", assign)
	}
	if assign[6] == assign[0] || assign[6] == assign[3] {
		t.Fatalf("outlier not isolated: %v", assign)
	}
	// Degenerate cases.
	if got := kmeans1D([]float64{5}, 3); len(got) != 1 || got[0] != 0 {
		t.Fatalf("single value: %v", got)
	}
	if got := kmeans1D(vals, 1); len(got) != len(vals) {
		t.Fatalf("k=1: %v", got)
	}
}

func TestTraceSamplesAndSegments(t *testing.T) {
	res := Adaptive(testRecording(1000), Config{DeviceRate: 100, Window: 250})
	tr := res.Traces[0]
	if len(tr.Segments) != 4 {
		t.Fatalf("segments = %d, want 4", len(tr.Segments))
	}
	total := 0
	for _, seg := range tr.Segments {
		total += seg.DeviceTicks
	}
	if total != 1000 {
		t.Fatalf("device ticks covered = %d", total)
	}
	if tr.Samples() <= 0 {
		t.Fatal("no samples kept")
	}
}
