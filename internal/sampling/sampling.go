// Package sampling implements the four immersidata acquisition policies
// studied in §3.1 of the paper — Fixed, Modified Fixed, Grouped and
// Adaptive sampling — together with the Nyquist-rate estimation machinery
// they share and the bandwidth/accuracy accounting used to compare them.
//
// All policies consume a channel-major recording (rec[sensor][tick]) taken
// at the device clock and produce decimated per-sensor traces whose total
// byte size is the bandwidth requirement; reconstruction back to the device
// clock measures the information lost.
package sampling

import (
	"fmt"
	"math"
	"sort"

	"aims/internal/dsp"
)

// Config carries the knobs shared by every policy.
type Config struct {
	DeviceRate float64 // device clock, Hz
	Confidence float64 // spectral-energy confidence for f_max (default 0.99)
	MinRate    float64 // floor on any sampling rate, Hz (default 2)
	Window     int     // ticks per adaptation window (default 256)
	Groups     int     // number of clusters for Grouped sampling (default 3)
	// Oversample multiplies the theoretical Nyquist rate (default 2.5).
	// The Nyquist bound assumes ideal sinc reconstruction; the storage
	// layer reconstructs by linear interpolation, which needs this margin
	// to keep the error budget.
	Oversample float64
}

func (c Config) withDefaults() Config {
	if c.Confidence <= 0 || c.Confidence > 1 {
		c.Confidence = 0.99
	}
	if c.MinRate <= 0 {
		c.MinRate = 2
	}
	if c.Window <= 0 {
		c.Window = 256
	}
	if c.Groups <= 0 {
		c.Groups = 3
	}
	if c.Oversample <= 0 {
		c.Oversample = 2.5
	}
	return c
}

// NyquistRate estimates the required sampling rate of one signal segment:
// twice the confidence-bounded maximum frequency times the reconstruction
// margin, clamped to [MinRate, DeviceRate].
func (c Config) NyquistRate(x []float64) float64 {
	c = c.withDefaults()
	r := dsp.NyquistRate(dsp.MaxFrequency(x, c.DeviceRate, c.Confidence)) * c.Oversample
	if r < c.MinRate {
		r = c.MinRate
	}
	if r > c.DeviceRate {
		r = c.DeviceRate
	}
	return r
}

// Segment is a run of samples taken at one rate.
type Segment struct {
	Rate        float64   // Hz
	Values      []float64 // decimated samples
	DeviceTicks int       // device-clock ticks this segment covers
}

// Trace is one sensor's sampled output.
type Trace struct {
	Segments []Segment
}

// Samples returns the total number of stored samples.
func (t Trace) Samples() int {
	n := 0
	for _, s := range t.Segments {
		n += len(s.Values)
	}
	return n
}

// Result is the output of one policy run.
type Result struct {
	Policy string
	Traces []Trace
	// Bytes is the bandwidth requirement: 8 bytes per sample plus a small
	// per-segment rate header (4 bytes), mirroring a practical wire format.
	Bytes int
}

// segmentHeaderBytes is the per-segment metadata cost.
const segmentHeaderBytes = 4

// sampleBytes is the raw storage cost of one float64 reading.
const sampleBytes = 8

func finalize(policy string, traces []Trace) Result {
	bytes := 0
	for _, tr := range traces {
		for _, seg := range tr.Segments {
			bytes += len(seg.Values)*sampleBytes + segmentHeaderBytes
		}
	}
	return Result{Policy: policy, Traces: traces, Bytes: bytes}
}

// decimate keeps every stride-th sample of x and returns the values plus
// the effective rate.
func decimate(x []float64, deviceRate, targetRate float64) ([]float64, float64) {
	stride := int(math.Round(deviceRate / targetRate))
	if stride < 1 {
		stride = 1
	}
	out := make([]float64, 0, len(x)/stride+1)
	for i := 0; i < len(x); i += stride {
		out = append(out, x[i])
	}
	return out, deviceRate / float64(stride)
}

// Reconstruct rebuilds a device-rate signal of length n from a trace by
// per-segment linear interpolation.
func (t Trace) Reconstruct(deviceRate float64, n int) []float64 {
	out := make([]float64, 0, n)
	for _, seg := range t.Segments {
		out = append(out, dsp.Resample(seg.Values, seg.Rate, deviceRate, seg.DeviceTicks)...)
	}
	if len(out) > n {
		out = out[:n]
	}
	for len(out) < n {
		if len(out) == 0 {
			out = append(out, 0)
			continue
		}
		out = append(out, out[len(out)-1])
	}
	return out
}

// BytesQuantized returns the bandwidth requirement when samples are stored
// at the given bit width instead of full float64 precision — the matched-
// precision comparison against quantising compressors (Huffman/ADPCM).
// Per-segment headers are still counted.
func (r Result) BytesQuantized(bits int) int {
	totalBits := 0
	segments := 0
	for _, tr := range r.Traces {
		for _, seg := range tr.Segments {
			totalBits += len(seg.Values) * bits
			segments++
		}
	}
	return (totalBits+7)/8 + segments*segmentHeaderBytes
}

// MSE returns the mean squared reconstruction error of a result against a
// clean channel-major reference.
func (r Result) MSE(reference [][]float64, deviceRate float64) float64 {
	if len(r.Traces) != len(reference) {
		panic(fmt.Sprintf("sampling: %d traces vs %d reference channels", len(r.Traces), len(reference)))
	}
	var total float64
	var count int
	for c, tr := range r.Traces {
		rec := tr.Reconstruct(deviceRate, len(reference[c]))
		for i := range rec {
			d := rec[i] - reference[c][i]
			total += d * d
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return total / float64(count)
}

// Fixed samples every sensor at one session-wide rate: the maximum Nyquist
// rate across all sensors, estimated over the whole session. This is the
// paper's baseline "fix the sampling rate … across all sensors".
func Fixed(rec [][]float64, cfg Config) Result {
	cfg = cfg.withDefaults()
	rate := cfg.MinRate
	for _, x := range rec {
		if r := cfg.NyquistRate(x); r > rate {
			rate = r
		}
	}
	traces := make([]Trace, len(rec))
	for c, x := range rec {
		vals, eff := decimate(x, cfg.DeviceRate, rate)
		traces[c] = Trace{Segments: []Segment{{Rate: eff, Values: vals, DeviceTicks: len(x)}}}
	}
	return finalize("fixed", traces)
}

// ModifiedFixed re-estimates the common rate per window: all sensors still
// share one rate, but it tracks the session's activity over time.
func ModifiedFixed(rec [][]float64, cfg Config) Result {
	cfg = cfg.withDefaults()
	traces := make([]Trace, len(rec))
	n := sessionLen(rec)
	for start := 0; start < n; start += cfg.Window {
		end := start + cfg.Window
		if end > n {
			end = n
		}
		rate := cfg.MinRate
		for _, x := range rec {
			if r := cfg.NyquistRate(x[start:end]); r > rate {
				rate = r
			}
		}
		for c, x := range rec {
			vals, eff := decimate(x[start:end], cfg.DeviceRate, rate)
			traces[c].Segments = append(traces[c].Segments,
				Segment{Rate: eff, Values: vals, DeviceTicks: end - start})
		}
	}
	return finalize("modified-fixed", traces)
}

// Grouped clusters sensors by their session-wide Nyquist rates (1-D
// k-means) and samples each cluster at its maximum member rate — the
// paper's "clustering similar sensors (in rates)".
func Grouped(rec [][]float64, cfg Config) Result {
	cfg = cfg.withDefaults()
	rates := make([]float64, len(rec))
	for c, x := range rec {
		rates[c] = cfg.NyquistRate(x)
	}
	assign := kmeans1D(rates, cfg.Groups)
	groupRate := make(map[int]float64)
	for c, g := range assign {
		if rates[c] > groupRate[g] {
			groupRate[g] = rates[c]
		}
	}
	traces := make([]Trace, len(rec))
	for c, x := range rec {
		vals, eff := decimate(x, cfg.DeviceRate, groupRate[assign[c]])
		traces[c] = Trace{Segments: []Segment{{Rate: eff, Values: vals, DeviceTicks: len(x)}}}
	}
	return finalize("grouped", traces)
}

// Adaptive samples each sensor independently, re-estimating its rate in
// every window from the activity actually present — the policy the paper
// found "requires far less bandwidth … as compared to the other
// techniques".
func Adaptive(rec [][]float64, cfg Config) Result {
	cfg = cfg.withDefaults()
	traces := make([]Trace, len(rec))
	for c, x := range rec {
		for start := 0; start < len(x); start += cfg.Window {
			end := start + cfg.Window
			if end > len(x) {
				end = len(x)
			}
			rate := cfg.NyquistRate(x[start:end])
			vals, eff := decimate(x[start:end], cfg.DeviceRate, rate)
			traces[c].Segments = append(traces[c].Segments,
				Segment{Rate: eff, Values: vals, DeviceTicks: end - start})
		}
	}
	return finalize("adaptive", traces)
}

// All runs every policy on the same recording.
func All(rec [][]float64, cfg Config) []Result {
	return []Result{Fixed(rec, cfg), ModifiedFixed(rec, cfg), Grouped(rec, cfg), Adaptive(rec, cfg)}
}

func sessionLen(rec [][]float64) int {
	n := 0
	for _, x := range rec {
		if len(x) > n {
			n = len(x)
		}
	}
	return n
}

// kmeans1D clusters scalar values into k groups with Lloyd's algorithm
// seeded by quantiles; it returns the cluster index of each value.
func kmeans1D(values []float64, k int) []int {
	n := len(values)
	if k > n {
		k = n
	}
	if k <= 1 {
		return make([]int, n)
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	centers := make([]float64, k)
	for i := range centers {
		centers[i] = sorted[(2*i+1)*n/(2*k)]
	}
	assign := make([]int, n)
	for iter := 0; iter < 50; iter++ {
		changed := false
		for i, v := range values {
			best, bestD := 0, math.Inf(1)
			for j, c := range centers {
				if d := math.Abs(v - c); d < bestD {
					best, bestD = j, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		sums := make([]float64, k)
		counts := make([]int, k)
		for i, v := range values {
			sums[assign[i]] += v
			counts[assign[i]]++
		}
		for j := range centers {
			if counts[j] > 0 {
				centers[j] = sums[j] / float64(counts[j])
			}
		}
		if !changed {
			break
		}
	}
	return assign
}
