package propolyne

import (
	"math/rand"
	"sync"
	"testing"

	"aims/internal/vec"
)

func cacheTestEngine(t *testing.T, sizes []int, tuples int) *Engine {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(tuples)))
	rel := randomRelation(rng, sizes, tuples)
	e, err := New(rel.Cube(), sizes, 1)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestPlanCacheHitReturnsSamePlan(t *testing.T) {
	e := cacheTestEngine(t, []int{32, 32}, 300)
	c := NewPlanCache(1 << 16)
	q := Query{Lo: []int{1, 2}, Hi: []int{20, 30}}
	p1, err := c.Lookup(e, q)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := c.Lookup(e, q)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("second lookup should return the cached plan pointer")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Plans != 1 {
		t.Fatalf("stats %+v, want 1 hit / 1 miss / 1 plan", st)
	}
	// A geometry-equal engine shares the plan — the fleet property.
	e2 := cacheTestEngine(t, []int{32, 32}, 500)
	if e.Fingerprint() != e2.Fingerprint() {
		t.Fatalf("fingerprints differ: %q vs %q", e.Fingerprint(), e2.Fingerprint())
	}
	p3, err := c.Lookup(e2, q)
	if err != nil {
		t.Fatal(err)
	}
	if p3 != p1 {
		t.Fatal("geometry-equal engine should share the cached plan")
	}
	// A geometry-different engine must not.
	e3 := cacheTestEngine(t, []int{32, 64}, 300)
	if e.Fingerprint() == e3.Fingerprint() {
		t.Fatal("different geometry, same fingerprint")
	}
}

func TestPlanCacheDistinctQueriesDistinctPlans(t *testing.T) {
	e := cacheTestEngine(t, []int{32, 32}, 300)
	c := NewPlanCache(1 << 16)
	q := Query{Lo: []int{0, 0}, Hi: []int{15, 15}}
	qPoly := Query{Lo: []int{0, 0}, Hi: []int{15, 15}, Polys: []vec.Poly{nil, {0, 1}}}
	p1, _ := c.Lookup(e, q)
	p2, _ := c.Lookup(e, qPoly)
	if p1 == p2 {
		t.Fatal("different polynomials must compile different plans")
	}
	if st := c.Stats(); st.Misses != 2 || st.Plans != 2 {
		t.Fatalf("stats %+v, want 2 misses / 2 plans", st)
	}
}

func TestPlanCacheEviction(t *testing.T) {
	e := cacheTestEngine(t, []int{32, 32}, 200)
	// Tiny budget: one cost unit per shard, so every shard holds at most
	// one resident plan and inserts evict the previous occupant.
	c := NewPlanCache(planShards)
	for lo := 0; lo < 16; lo++ {
		for hi := lo; hi < 16; hi++ {
			if _, err := c.Lookup(e, Query{Lo: []int{lo, 0}, Hi: []int{hi, 31}}); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions under a %d-unit budget after %d inserts", planShards, 16*17/2)
	}
	if st.Plans > planShards {
		t.Fatalf("%d resident plans exceed the one-per-shard floor", st.Plans)
	}
	// Evicted plans recompile on demand and still evaluate.
	if _, err := c.Lookup(e, Query{Lo: []int{0, 0}, Hi: []int{0, 31}}); err != nil {
		t.Fatal(err)
	}
}

func TestPlanCacheDisabled(t *testing.T) {
	e := cacheTestEngine(t, []int{16, 16}, 100)
	c := NewPlanCache(-1)
	q := Query{Lo: []int{0, 0}, Hi: []int{7, 7}}
	for i := 0; i < 3; i++ {
		if _, err := c.Lookup(e, q); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Hits != 0 || st.Misses != 3 || st.Plans != 0 {
		t.Fatalf("disabled cache stats %+v, want 0 hits / 3 misses / 0 plans", st)
	}
}

func TestPlanCacheErrorNotCached(t *testing.T) {
	e := cacheTestEngine(t, []int{16, 16}, 100)
	c := NewPlanCache(1 << 10)
	bad := Query{Lo: []int{0, 0}, Hi: []int{99, 7}}
	for i := 0; i < 2; i++ {
		if _, err := c.Lookup(e, bad); err == nil {
			t.Fatal("invalid query accepted")
		}
	}
	if st := c.Stats(); st.Plans != 0 || st.Misses != 2 {
		t.Fatalf("failed compiles must not become residents: %+v", st)
	}
}

// TestPlanCacheSingleflight: concurrent misses on one key collapse into a
// single compilation.
func TestPlanCacheSingleflight(t *testing.T) {
	e := cacheTestEngine(t, []int{64, 64}, 500)
	c := NewPlanCache(1 << 16)
	q := Query{Lo: []int{3, 5}, Hi: []int{60, 50}, Polys: []vec.Poly{nil, {0, 1}}}
	const goroutines = 16
	var wg sync.WaitGroup
	start := make(chan struct{})
	plans := make([]*Plan, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			p, err := c.Lookup(e, q)
			if err != nil {
				t.Error(err)
				return
			}
			plans[g] = p
		}(g)
	}
	close(start)
	wg.Wait()
	st := c.Stats()
	if st.Misses != 1 {
		t.Fatalf("%d compilations for one key, want 1 (singleflight)", st.Misses)
	}
	if st.Hits != goroutines-1 {
		t.Fatalf("hits %d, want %d", st.Hits, goroutines-1)
	}
	for g := 1; g < goroutines; g++ {
		if plans[g] != plans[0] {
			t.Fatal("waiters must all receive the singleflighted plan")
		}
	}
}

// TestPlanCacheConcurrentWithAppends is the -race stress: readers keep
// evaluating cached plans while a writer appends batches into the engine.
// Plans are geometry-only, so appends never invalidate them; the test pins
// that the cache and the engine locks compose without races.
func TestPlanCacheConcurrentWithAppends(t *testing.T) {
	e := cacheTestEngine(t, []int{32, 32}, 200)
	c := NewPlanCache(1 << 12)
	stop := make(chan struct{})
	var writers, readers sync.WaitGroup

	// Writer: keeps appending tuples (the seal-path mutation).
	writers.Add(1)
	go func() {
		defer writers.Done()
		rng := rand.New(rand.NewSource(99))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			batch := make([]Tuple, 8)
			for j := range batch {
				batch[j] = Tuple{Index: []int{rng.Intn(32), rng.Intn(32)}, Weight: 1}
			}
			if err := e.AppendBatch(batch); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	// Readers: mixed cached evaluation, including the ordered/progressive
	// path, against a rotating set of queries.
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func(g int) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 300; i++ {
				lo := rng.Intn(16)
				hi := lo + rng.Intn(32-lo)
				q := Query{Lo: []int{lo, 0}, Hi: []int{hi, 31}}
				p, err := c.Lookup(e, q)
				if err != nil {
					t.Error(err)
					return
				}
				_ = e.EvalPlan(p)
				if i%16 == 0 {
					_, _ = p.Ordered()
				}
			}
		}(g)
	}
	readers.Wait()
	close(stop)
	writers.Wait()
}
