package propolyne

import (
	"math"
	"math/bits"
	"sort"
)

// Refined error estimation (§3.3.1, second extension): "some limited
// amount of information about the energy distribution of the data can be
// used to improve the performance of [the] query approximation version of
// ProPolyne … accurate error estimates and confidence intervals without
// introducing significant computational overhead."
//
// The global progressive bound is ‖q_rem‖·‖data‖ — one Cauchy–Schwarz over
// the whole cube. The refinement keeps one scalar per *subband cell* (the
// Cartesian product of per-dimension wavelet bands): applying
// Cauchy–Schwarz per cell and summing,
//
//	|Σ_c ⟨q_c, d_c⟩| ≤ Σ_c ‖q_c‖·‖d_c‖,
//
// which is never looser than the global bound on the same remainder and is
// dramatically tighter whenever the query's remaining energy sits in bands
// where the data is quiet.

// bandOf returns the subband index of position p in a length-n, levels-deep
// standard layout: 0 is the approximation band, j ∈ [1, levels] the detail
// band produced at analysis level levels-j+1 (coarse bands get small
// indices). Standard (untransformed) dimensions use a single band 0.
func bandOf(p, n, levels int) int {
	if levels == 0 || p < n>>uint(levels) {
		return 0
	}
	// p ∈ [n>>j, n>>(j-1)) for the level-j detail band.
	j := bits.Len(uint(n)) - 1 - (bits.Len(uint(p)) - 1)
	return levels - j + 1
}

// bandCells returns the per-dimension band counts.
func (e *Engine) bandCells() []int {
	counts := make([]int, len(e.Dims))
	for d := range e.Dims {
		if e.Bases[d].Standard {
			counts[d] = 1
		} else {
			counts[d] = e.Levels[d] + 1
		}
	}
	return counts
}

// cellOf maps a flat coefficient index to its subband-cell id.
func (e *Engine) cellOf(flat int, cells []int) int {
	strides := e.Dims.Strides()
	id := 0
	for d := range e.Dims {
		coord := flat / strides[d] % e.Dims[d]
		b := 0
		if !e.Bases[d].Standard {
			b = bandOf(coord, e.Dims[d], e.Levels[d])
		}
		id = id*cells[d] + b
	}
	return id
}

// bandEnergies lazily computes Σ coeff² per subband cell; safe for
// concurrent use (cacheMu before mu, matching Energy and Append).
func (e *Engine) bandEnergies() map[int]float64 {
	e.cacheMu.Lock()
	defer e.cacheMu.Unlock()
	if e.bandEnergy != nil {
		return e.bandEnergy
	}
	cells := e.bandCells()
	out := map[int]float64{}
	e.mu.RLock()
	for p, v := range e.Coeffs {
		if v == 0 {
			continue
		}
		out[e.cellOf(p, cells)] += v * v
	}
	e.mu.RUnlock()
	e.bandEnergy = out
	return out
}

// EstimateWithBudgetRefined is EstimateWithBudget with the per-subband
// bound: the estimate is identical, the guarantee is (weakly) tighter.
func (e *Engine) EstimateWithBudgetRefined(q Query, budget int) (estimate, bound float64, err error) {
	entries, _, err := e.QueryCoefficients(q)
	if err != nil {
		return 0, 0, err
	}
	sort.Slice(entries, func(i, j int) bool {
		ai, aj := math.Abs(entries[i].Value), math.Abs(entries[j].Value)
		if ai != aj {
			return ai > aj
		}
		return entries[i].Index < entries[j].Index
	})
	if budget > len(entries) {
		budget = len(entries)
	}
	cells := e.bandCells()
	bandData := e.bandEnergies()

	var est float64
	remPerCell := map[int]float64{}
	e.mu.RLock()
	for i, en := range entries {
		if i < budget {
			est += en.Value * e.Coeffs[en.Index]
			continue
		}
		remPerCell[e.cellOf(en.Index, cells)] += en.Value * en.Value
	}
	e.mu.RUnlock()
	for cell, qe := range remPerCell {
		bound += math.Sqrt(qe) * math.Sqrt(bandData[cell])
	}
	return est, bound, nil
}
