package propolyne

import (
	"fmt"

	"aims/internal/disk"
)

// Block-level progressive evaluation (§3.2.1 meets §3.3): the transformed
// cube lives on a simulated block device under a product-of-tilings
// allocation; a query's sparse coefficient set maps to blocks, blocks are
// fetched in query-importance order, and the running estimate improves
// with every I/O.

// NewBlockStore lays the engine's coefficients onto a block device. Each
// dimension gets an error-tree tiling of perDimBlock items (tiling assumes
// the fully decomposed Haar layout, so wavelet dimensions must use Haar;
// standard dimensions use a sequential 1-D allocation). The device block
// size is the product of per-dimension virtual block sizes.
func (e *Engine) NewBlockStore(perDimBlock int) (*disk.Store, error) {
	per := make([]disk.Allocation, len(e.Dims))
	blockItems := 1
	for d, n := range e.Dims {
		if e.Bases[d].Standard {
			per[d] = disk.NewSequential(n, perDimBlock)
		} else {
			if e.Bases[d].Filter.Name != "haar" {
				return nil, fmt.Errorf("propolyne: block tiling requires haar on dim %d, have %s",
					d, e.Bases[d].Filter.Name)
			}
			if e.Levels[d] != maxPow2Levels(n) {
				return nil, fmt.Errorf("propolyne: block tiling requires full decomposition on dim %d", d)
			}
			per[d] = disk.NewTiling(n, perDimBlock)
		}
		blockItems *= perDimBlock
	}
	alloc := disk.NewProduct(e.Dims, per)
	return disk.NewStore(e.Coeffs, alloc, blockItems), nil
}

func maxPow2Levels(n int) int {
	l := 0
	for n > 1 {
		n /= 2
		l++
	}
	return l
}

// ProgressiveByBlocks evaluates the query against the block store,
// fetching blocks in importance order, and returns the per-block estimate
// trajectory plus the exact answer.
func (e *Engine) ProgressiveByBlocks(q Query, store *disk.Store) ([]disk.ProgressiveStep, float64, error) {
	entries, _, err := e.QueryCoefficients(q)
	if err != nil {
		return nil, 0, err
	}
	queryMap := make(map[int]float64, len(entries))
	var exact float64
	e.mu.RLock()
	for _, en := range entries {
		queryMap[en.Index] += en.Value
		exact += en.Value * e.Coeffs[en.Index]
	}
	e.mu.RUnlock()
	order := store.ImportanceOrder(queryMap)
	steps := store.ProgressiveDot(queryMap, order)
	return steps, exact, nil
}
