package propolyne

import (
	"container/list"
	"hash/fnv"
	"math"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// PlanCache is a bounded, sharded, concurrency-safe cache of compiled
// query plans, keyed by engine geometry fingerprint (dims, bases, levels)
// plus query shape (box, polynomial coefficients). Because a plan depends
// only on geometry and query shape — never on coefficient data — appends,
// incremental seals and even full engine rebuilds with the same geometry
// all keep their cached plans valid; the cache needs eviction only to
// bound memory, never invalidation for correctness. That is also what
// makes fleet queries cheap: every session of a device class seals to the
// same geometry, so a 10k-session fleet scan compiles one plan and shares
// it across all scans.
//
// Concurrent misses on the same key collapse into a single compilation
// (per-entry singleflight): the first looker-up inserts a pending entry
// and compiles; the rest block on it and share the result. Eviction is LRU
// per shard against a cost budget measured in resident entries.
type PlanCache struct {
	capacity  atomic.Int64
	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
	obs       atomic.Pointer[PlanObserver]
	shards    [planShards]planShard
}

const planShards = 16

// DefaultPlanCacheCost is the default cache budget in cost units (one unit
// ≈ one resident plan entry; see planCost). At 16 bytes an entry this
// bounds the cache near 16 MiB.
const DefaultPlanCacheCost = 1 << 20

// SharedCache is the process-wide plan cache every Engine query surface
// (Exact, Progressive, EstimateWithBudget, GroupBy*, QueryCoefficients)
// compiles through. Size it with SetCapacity (the server's -plan-cache
// flag); a capacity ≤ 0 disables caching so every lookup compiles fresh.
var SharedCache = NewPlanCache(DefaultPlanCacheCost)

// PlanObserver carries the cache's metric hooks; nil funcs are skipped.
// The middle tier wires these onto its obs registry.
type PlanObserver struct {
	Hit            func()
	Miss           func()
	Evict          func()
	CompileSeconds func(s float64)
}

type planShard struct {
	mu   sync.Mutex
	lru  *list.List
	m    map[string]*list.Element
	cost int
}

// planEntry is one cached (or in-flight) compilation. done closes when
// plan/err are set; resident tracks whether the entry still lives in its
// shard (an entry can be evicted while waiters hold it — they still get
// the result, it just isn't cached).
type planEntry struct {
	key      string
	plan     *Plan
	err      error
	cost     int
	done     chan struct{}
	resident bool
}

// NewPlanCache creates a cache with the given cost budget; ≤ 0 disables
// caching (every Lookup compiles).
func NewPlanCache(costCapacity int) *PlanCache {
	c := &PlanCache{}
	c.capacity.Store(int64(costCapacity))
	for i := range c.shards {
		c.shards[i].lru = list.New()
		c.shards[i].m = map[string]*list.Element{}
	}
	return c
}

// SetCapacity adjusts the cost budget. Shrinking takes effect as inserts
// evict down to the new budget; ≤ 0 disables caching for future lookups.
func (c *PlanCache) SetCapacity(costCapacity int) {
	c.capacity.Store(int64(costCapacity))
}

// SetObserver installs the metric hooks (replacing any previous set).
func (c *PlanCache) SetObserver(o PlanObserver) {
	c.obs.Store(&o)
}

// PlanCacheStats is a point-in-time snapshot of cache effectiveness.
type PlanCacheStats struct {
	Hits, Misses, Evictions uint64
	Plans                   int // resident compiled plans
	Cost                    int // resident cost units
}

// Stats snapshots the cache counters.
func (c *PlanCache) Stats() PlanCacheStats {
	st := PlanCacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		st.Plans += sh.lru.Len()
		st.Cost += sh.cost
		sh.mu.Unlock()
	}
	return st
}

// Purge drops every cached plan (counters are kept). Mainly for
// benchmarks and tests that need a cold cache.
func (c *PlanCache) Purge() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for el := sh.lru.Front(); el != nil; el = el.Next() {
			el.Value.(*planEntry).resident = false
		}
		sh.lru.Init()
		sh.m = map[string]*list.Element{}
		sh.cost = 0
		sh.mu.Unlock()
	}
}

// PlanTrace reports what one traced query evaluation cost at the plan
// layer: whether the plan came from cache, how long a miss spent compiling,
// how long the coefficient dot product ran, and how many query coefficients
// it spent. Filled by the *Traced query variants; the middle tier stamps
// the fields into trace spans without propolyne ever importing obs.
type PlanTrace struct {
	Hit          bool
	CompileNS    int64
	EvalNS       int64
	Coefficients int
}

// Lookup returns the compiled plan for (engine geometry, query), compiling
// and caching it on a miss. Concurrent misses on one key compile once.
func (c *PlanCache) Lookup(e *Engine, q Query) (*Plan, error) {
	return c.LookupTraced(e, q, nil)
}

// LookupTraced is Lookup with per-call plan provenance: when pt is non-nil
// it records whether this call hit the cache and how long a miss compiled.
func (c *PlanCache) LookupTraced(e *Engine, q Query, pt *PlanTrace) (*Plan, error) {
	capacity := c.capacity.Load()
	if capacity <= 0 {
		return c.compileTraced(e, q, pt)
	}
	key := planKey(e, q)
	sh := &c.shards[shardOf(key)]
	sh.mu.Lock()
	if el, ok := sh.m[key]; ok {
		sh.lru.MoveToFront(el)
		en := el.Value.(*planEntry)
		sh.mu.Unlock()
		c.hits.Add(1)
		if o := c.obs.Load(); o != nil && o.Hit != nil {
			o.Hit()
		}
		if pt != nil {
			pt.Hit = true
		}
		<-en.done
		return en.plan, en.err
	}
	en := &planEntry{key: key, done: make(chan struct{}), resident: true}
	el := sh.lru.PushFront(en)
	sh.m[key] = el
	sh.mu.Unlock()

	plan, err := c.compileTraced(e, q, pt)
	en.plan, en.err = plan, err
	close(en.done)

	sh.mu.Lock()
	if err != nil {
		// Don't cache failures; later lookups revalidate.
		if en.resident {
			en.resident = false
			sh.lru.Remove(el)
			delete(sh.m, key)
		}
		sh.mu.Unlock()
		return nil, err
	}
	if en.resident {
		en.cost = planCost(plan)
		sh.cost += en.cost
		budget := int(capacity) / planShards
		if budget < 1 {
			budget = 1
		}
		for sh.cost > budget && sh.lru.Len() > 1 {
			back := sh.lru.Back()
			if back == el {
				break
			}
			old := back.Value.(*planEntry)
			old.resident = false
			sh.lru.Remove(back)
			delete(sh.m, old.key)
			sh.cost -= old.cost
			c.evictions.Add(1)
			if o := c.obs.Load(); o != nil && o.Evict != nil {
				o.Evict()
			}
		}
	}
	sh.mu.Unlock()
	return plan, nil
}

// compileTraced runs one timed compilation and accounts the miss; a
// non-nil pt records the compile time for the caller's trace.
func (c *PlanCache) compileTraced(e *Engine, q Query, pt *PlanTrace) (*Plan, error) {
	t0 := time.Now()
	p, err := e.CompilePlan(q)
	elapsed := time.Since(t0)
	if pt != nil {
		pt.Hit = false
		pt.CompileNS = elapsed.Nanoseconds()
	}
	c.misses.Add(1)
	if o := c.obs.Load(); o != nil {
		if o.Miss != nil {
			o.Miss()
		}
		if err == nil && o.CompileSeconds != nil {
			o.CompileSeconds(elapsed.Seconds())
		}
	}
	return p, err
}

// planCost estimates a plan's resident memory in entry units: the
// per-dimension sorted entries (run spans are O(1)) plus — when the
// support is small enough that Ordered() will pin its materialisation —
// the tensor-product size. Every plan costs at least one unit.
func planCost(p *Plan) int {
	cost := 1
	for d := range p.terms {
		if !p.terms[d].run {
			cost += len(p.terms[d].entries)
		}
	}
	if p.stats.QueryCoeffs <= maxOrderedCache {
		cost += p.stats.QueryCoeffs
	}
	return cost
}

// plan compiles q through the shared cache — the internal entry point of
// every engine query surface.
func (e *Engine) plan(q Query) (*Plan, error) {
	return SharedCache.Lookup(e, q)
}

// planTraced is plan with per-call provenance for traced evaluations.
func (e *Engine) planTraced(q Query, pt *PlanTrace) (*Plan, error) {
	return SharedCache.LookupTraced(e, q, pt)
}

// Fingerprint identifies the engine's plan-relevant geometry: dimension
// sizes, per-dimension basis, and decomposition levels. Engines with equal
// fingerprints compile identical plans for any query, by construction —
// this is what lets a fleet of per-session engines share one plan.
func (e *Engine) Fingerprint() string {
	e.fpOnce.Do(func() {
		b := make([]byte, 0, 16*len(e.Dims))
		for d := range e.Dims {
			b = strconv.AppendInt(b, int64(e.Dims[d]), 10)
			b = append(b, ':')
			if e.Bases[d].Standard {
				b = append(b, "std"...)
			} else {
				b = append(b, e.Bases[d].Filter.Name...)
			}
			b = append(b, ':')
			b = strconv.AppendInt(b, int64(e.Levels[d]), 10)
			b = append(b, ';')
		}
		e.fp = string(b)
	})
	return e.fp
}

// planKey renders the cache key: engine fingerprint plus the query's box
// and exact polynomial coefficients (bit-patterns, so -0 ≠ 0 never aliases
// distinct plans).
func planKey(e *Engine, q Query) string {
	b := make([]byte, 0, len(e.Fingerprint())+16*len(q.Lo))
	b = append(b, e.Fingerprint()...)
	b = append(b, '|')
	for d := range q.Lo {
		b = strconv.AppendInt(b, int64(q.Lo[d]), 10)
		b = append(b, ',')
		b = strconv.AppendInt(b, int64(q.Hi[d]), 10)
		b = append(b, ';')
	}
	b = append(b, '|')
	for d, p := range q.Polys {
		if p == nil {
			continue
		}
		b = strconv.AppendInt(b, int64(d), 10)
		b = append(b, ':')
		for _, cf := range p {
			b = strconv.AppendUint(b, math.Float64bits(cf), 16)
			b = append(b, ',')
		}
		b = append(b, ';')
	}
	return string(b)
}

func shardOf(key string) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % planShards)
}
