// Package propolyne implements ProPolyne — the Progressive Polynomial
// Range-Sum Evaluator at the heart of AIMS's off-line query subsystem
// (§3.3 of the paper; Schmidt & Shahabi, EDBT'02/PODS'02).
//
// The data is the dense frequency cube of a relation whose every attribute
// (measures included) is a dimension. The cube is wavelet-transformed per
// dimension — possibly with a different basis per dimension, including the
// standard (identity) basis for the hybrid engine of §3.3.1 — and a
// polynomial range-sum
//
//	Σ_{x ∈ range} Δ(x) · ∏_d p_d(x_d)
//
// becomes a sparse dot product in the transformed domain: the per-dimension
// lazy wavelet transform turns each factor p_d·1_range into O(filter·log n)
// coefficients, and the tensor product of those sparse vectors hits only a
// polylogarithmic number of data coefficients. Evaluating the largest query
// coefficients first yields progressive, error-bounded approximate answers.
package propolyne

import (
	"fmt"
	"sync"

	"aims/internal/vec"
	"aims/internal/wavelet"
)

// Basis selects the transform of one dimension.
type Basis struct {
	// Standard marks the identity basis (the hybrid engine's "standard
	// dimensions"); Filter is ignored when set.
	Standard bool
	Filter   wavelet.Filter
}

// Engine is a populated ProPolyne store: the transformed cube plus the
// per-dimension basis book-keeping.
type Engine struct {
	Dims   wavelet.Dims
	Bases  []Basis
	Levels []int
	// Coeffs is the cube transformed along every wavelet dimension
	// (identity along standard dimensions), row-major.
	Coeffs []float64

	// mu guards Coeffs: queries take the read lock, Append the write
	// lock, so any number of concurrent readers coexist with a single
	// writer. cacheMu guards the derived energy caches and is always
	// acquired BEFORE mu where both are needed. Direct Coeffs access
	// (tests, the block-store builder) is only safe without concurrent
	// appends.
	mu          sync.RWMutex
	cacheMu     sync.Mutex
	energy      float64
	energyValid bool
	// bandEnergy caches per-subband-cell Σ coeff² for the refined bounds;
	// nil means "recompute".
	bandEnergy map[int]float64

	// fp memoises Fingerprint — the geometry key plans are cached under.
	// Dims/Bases/Levels are immutable after construction, so once is enough.
	fpOnce sync.Once
	fp     string
}

// Query is a polynomial range-sum: per-dimension inclusive ranges and
// per-dimension polynomial factors (nil ⇒ constant 1). The measure
// polynomial's degree per dimension must stay below the vanishing moments
// of that dimension's filter for sparse evaluation; higher degrees still
// evaluate exactly via the dense fallback.
type Query struct {
	Lo, Hi []int
	Polys  []vec.Poly
}

// Stats reports the work one evaluation did.
type Stats struct {
	// PerDim is the nonzero count of each dimension's query vector.
	PerDim []int
	// QueryCoeffs is the size of the tensor-product query support — the
	// number of data coefficients the evaluation touches (its I/O cost).
	QueryCoeffs int
}

// New populates an engine from a dense cube. maxDegree is the highest
// per-dimension polynomial degree queries will use ("up to a degree
// specified when the database is populated"); it selects the shortest
// Daubechies filter with enough vanishing moments for every dimension.
func New(cube []float64, dims []int, maxDegree int) (*Engine, error) {
	f, err := wavelet.ForDegree(maxDegree)
	if err != nil {
		return nil, err
	}
	bases := make([]Basis, len(dims))
	for d := range bases {
		bases[d] = Basis{Filter: f}
	}
	return NewWithBases(cube, dims, bases)
}

// NewWithBases populates an engine with an explicit per-dimension basis
// assignment — the multi-basis configuration of §3.1.1/§3.3.1.
func NewWithBases(cube []float64, dims []int, bases []Basis) (*Engine, error) {
	if len(bases) != len(dims) {
		return nil, fmt.Errorf("propolyne: %d bases for %d dims", len(bases), len(dims))
	}
	wd := wavelet.Dims(dims)
	if wd.Size() != len(cube) {
		return nil, fmt.Errorf("propolyne: cube size %d != dims %v", len(cube), dims)
	}
	for _, n := range dims {
		if n <= 0 || n&(n-1) != 0 {
			return nil, fmt.Errorf("propolyne: dimension size %d is not a power of two", n)
		}
	}
	e := &Engine{
		Dims:   wd,
		Bases:  append([]Basis(nil), bases...),
		Levels: make([]int, len(dims)),
		Coeffs: append([]float64(nil), cube...),
	}
	for axis, b := range e.Bases {
		if b.Standard {
			continue
		}
		e.Levels[axis] = wavelet.TransformAxis(e.Coeffs, e.Dims, axis, b.Filter, -1)
	}
	return e, nil
}

// Energy returns Σ coefficient² — the data-energy term of the progressive
// error bound. Cached between updates; safe for concurrent use.
func (e *Engine) Energy() float64 {
	e.cacheMu.Lock()
	defer e.cacheMu.Unlock()
	if !e.energyValid {
		e.mu.RLock()
		var s float64
		for _, v := range e.Coeffs {
			s += v * v
		}
		e.mu.RUnlock()
		e.energy = s
		e.energyValid = true
	}
	return e.energy
}

// validate checks a query against the schema.
func (e *Engine) validate(q Query) error {
	d := len(e.Dims)
	if len(q.Lo) != d || len(q.Hi) != d {
		return fmt.Errorf("propolyne: query arity %d/%d != %d", len(q.Lo), len(q.Hi), d)
	}
	if len(q.Polys) > d {
		return fmt.Errorf("propolyne: %d polynomials for %d dims", len(q.Polys), d)
	}
	for i := range q.Lo {
		if q.Lo[i] < 0 || q.Hi[i] >= e.Dims[i] || q.Lo[i] > q.Hi[i] {
			return fmt.Errorf("propolyne: range [%d,%d] invalid for dim %d (size %d)",
				q.Lo[i], q.Hi[i], i, e.Dims[i])
		}
	}
	return nil
}

// queryVectors computes the per-dimension transformed query vectors: the
// lazy wavelet transform on wavelet dimensions, the literal restricted
// polynomial on standard dimensions.
//
// Query execution compiles plans instead (CompilePlan); this map-based
// form is kept as the independent reference implementation the
// plan-equivalence property tests check against.
func (e *Engine) queryVectors(q Query) ([]wavelet.Sparse, error) {
	if err := e.validate(q); err != nil {
		return nil, err
	}
	out := make([]wavelet.Sparse, len(e.Dims))
	for d := range e.Dims {
		var p vec.Poly
		if d < len(q.Polys) && q.Polys[d] != nil {
			p = q.Polys[d]
		} else {
			p = vec.PolyConst(1)
		}
		if e.Bases[d].Standard {
			s := make(wavelet.Sparse, q.Hi[d]-q.Lo[d]+1)
			for v := q.Lo[d]; v <= q.Hi[d]; v++ {
				s.Add(v, p.Eval(float64(v)))
			}
			out[d] = s
			continue
		}
		s, err := wavelet.LazyQuery(e.Dims[d], q.Lo[d], q.Hi[d], p, e.Bases[d].Filter, e.Levels[d])
		if err != nil {
			return nil, err
		}
		out[d] = s
	}
	return out, nil
}

// QueryCoefficients flattens the tensor product of per-dimension query
// vectors into (flat cube offset, weight) pairs, in ascending-offset order
// (a deterministic total order — offsets within one query are distinct).
// The slice is freshly allocated per call; callers may reorder it.
func (e *Engine) QueryCoefficients(q Query) ([]wavelet.Entry, Stats, error) {
	p, err := e.plan(q)
	if err != nil {
		return nil, Stats{}, err
	}
	entries := p.AppendEntries(make([]wavelet.Entry, 0, p.stats.QueryCoeffs))
	return entries, p.Stats(), nil
}

// Explain describes how a query would be evaluated without running it —
// the engine's EXPLAIN: per-dimension basis, range, polynomial degree and
// query-vector sparsity, plus the total touched-coefficient cost.
type Explain struct {
	PerDim      []DimPlan
	QueryCoeffs int
}

// DimPlan is one dimension's slice of the plan.
type DimPlan struct {
	Dim      int
	Basis    string // "standard" or the filter name
	Lo, Hi   int
	Degree   int
	Nonzeros int
}

// String renders the plan compactly.
func (ex Explain) String() string {
	s := fmt.Sprintf("touch %d coefficients:", ex.QueryCoeffs)
	for _, d := range ex.PerDim {
		s += fmt.Sprintf(" [dim %d %s range %d..%d deg %d → %d nz]",
			d.Dim, d.Basis, d.Lo, d.Hi, d.Degree, d.Nonzeros)
	}
	return s
}

// ExplainQuery returns the evaluation plan for q. It compiles (or fetches)
// the same plan execution would use, so the explained cost is the executed
// cost by construction — and explaining a query warms its cache slot.
func (e *Engine) ExplainQuery(q Query) (Explain, error) {
	p, err := e.plan(q)
	if err != nil {
		return Explain{}, err
	}
	ex := Explain{QueryCoeffs: p.stats.QueryCoeffs}
	for d := range e.Dims {
		basis := "standard"
		if !e.Bases[d].Standard {
			basis = e.Bases[d].Filter.Name
		}
		deg := 0
		if d < len(q.Polys) && q.Polys[d] != nil {
			deg = q.Polys[d].Degree()
		}
		ex.PerDim = append(ex.PerDim, DimPlan{
			Dim: d, Basis: basis, Lo: q.Lo[d], Hi: q.Hi[d],
			Degree: deg, Nonzeros: p.stats.PerDim[d],
		})
	}
	return ex, nil
}

// Exact evaluates the polynomial range-sum exactly in the transformed
// domain: compile (or fetch) the plan, then one allocation-free sparse dot
// product under the read lock. Summation order is ascending flat offset,
// so repeated evaluations over unchanged coefficients are bit-identical.
func (e *Engine) Exact(q Query) (float64, Stats, error) {
	p, err := e.plan(q)
	if err != nil {
		return 0, Stats{}, err
	}
	return e.EvalPlan(p), p.Stats(), nil
}

// Append inserts one tuple with the given weight (typically 1) without
// retransforming the cube: the wavelet transform of a point mass is sparse
// per dimension, so the update touches only the tensor product of those
// sparse vectors — the low-cost incremental append of §3.1.1.
func (e *Engine) Append(tuple []int, weight float64) error {
	if len(tuple) != len(e.Dims) {
		return fmt.Errorf("propolyne: tuple arity %d != %d", len(tuple), len(e.Dims))
	}
	per := make([]wavelet.Sparse, len(e.Dims))
	for d, v := range tuple {
		if v < 0 || v >= e.Dims[d] {
			return fmt.Errorf("propolyne: tuple value %d outside dim %d", v, d)
		}
		if e.Bases[d].Standard {
			per[d] = wavelet.Sparse{v: 1}
			continue
		}
		per[d] = wavelet.DeltaTransform(e.Dims[d], v, 1, e.Bases[d].Filter, e.Levels[d])
	}
	strides := e.Dims.Strides()
	var rec func(d, off int, w float64)
	rec = func(d, off int, w float64) {
		if d == len(per) {
			e.Coeffs[off] += w
			return
		}
		for i, v := range per[d] {
			rec(d+1, off+i*strides[d], w*v)
		}
	}
	e.cacheMu.Lock()
	e.mu.Lock()
	rec(0, 0, weight)
	e.mu.Unlock()
	e.energyValid = false
	e.bandEnergy = nil
	e.cacheMu.Unlock()
	return nil
}

// Tuple is one weighted point insertion for AppendBatch.
type Tuple struct {
	Index  []int
	Weight float64
}

// HasWaveletDims reports whether any dimension is wavelet-transformed
// (false means the engine is pure-relational: a point append touches
// exactly one coefficient).
func (e *Engine) HasWaveletDims() bool {
	for _, b := range e.Bases {
		if !b.Standard {
			return true
		}
	}
	return false
}

// AppendBatch inserts many weighted tuples in one engine transaction. It
// is the bulk form of Append, with two batch-level savings: the sparse
// per-dimension DeltaTransform vectors are computed once per distinct
// (dimension, index) pair — outside the locks — and reused across every
// tuple that shares the index, and the whole batch is scattered into the
// coefficient store under a single write-lock acquisition, so concurrent
// readers observe the batch atomically and the per-tuple work inside the
// lock is plain slice arithmetic.
//
// Validation is up-front and all-or-nothing: a malformed tuple anywhere in
// the batch leaves the engine untouched.
func (e *Engine) AppendBatch(tuples []Tuple) error {
	for _, t := range tuples {
		if len(t.Index) != len(e.Dims) {
			return fmt.Errorf("propolyne: tuple arity %d != %d", len(t.Index), len(e.Dims))
		}
		for d, v := range t.Index {
			if v < 0 || v >= e.Dims[d] {
				return fmt.Errorf("propolyne: tuple value %d outside dim %d", v, d)
			}
		}
	}
	if len(tuples) == 0 {
		return nil
	}
	// Memoise the wavelet dims' sparse vectors before taking any lock
	// (DeltaTransform is the expensive part); standard dims are inline
	// singletons and need no table.
	var caches []map[int][]wavelet.Entry
	for d := range e.Dims {
		if e.Bases[d].Standard {
			continue
		}
		if caches == nil {
			caches = make([]map[int][]wavelet.Entry, len(e.Dims))
		}
		caches[d] = make(map[int][]wavelet.Entry)
		for _, t := range tuples {
			v := t.Index[d]
			if _, ok := caches[d][v]; !ok {
				caches[d][v] = wavelet.DeltaTransform(e.Dims[d], v, 1, e.Bases[d].Filter, e.Levels[d]).Ordered()
			}
		}
	}
	strides := e.Dims.Strides()
	e.cacheMu.Lock()
	e.mu.Lock()
	if caches == nil {
		// Pure-relational engine: every tuple lands on exactly one
		// coefficient, so scatter directly without the tensor recursion.
		for _, t := range tuples {
			off := 0
			for d, v := range t.Index {
				off += v * strides[d]
			}
			e.Coeffs[off] += t.Weight
		}
	} else {
		per := make([][]wavelet.Entry, len(e.Dims))
		singles := make([]wavelet.Entry, len(e.Dims)) // storage for standard-dim singletons
		var rec func(d, off int, w float64)
		rec = func(d, off int, w float64) {
			if d == len(per) {
				e.Coeffs[off] += w
				return
			}
			for _, en := range per[d] {
				rec(d+1, off+en.Index*strides[d], w*en.Value)
			}
		}
		for _, t := range tuples {
			for d, v := range t.Index {
				if e.Bases[d].Standard {
					singles[d] = wavelet.Entry{Index: v, Value: 1}
					per[d] = singles[d : d+1]
				} else {
					per[d] = caches[d][v]
				}
			}
			rec(0, 0, t.Weight)
		}
	}
	e.mu.Unlock()
	e.energyValid = false
	e.bandEnergy = nil
	e.cacheMu.Unlock()
	return nil
}

// WithApproximation returns a copy of the engine whose coefficient store
// keeps only the k largest-magnitude coefficients — the classical wavelet
// *data approximation* baseline (Vitter–Wang style) that experiment E3
// contrasts with ProPolyne's query approximation.
func (e *Engine) WithApproximation(k int) *Engine {
	e.mu.RLock()
	sparse := wavelet.TopK(e.Coeffs, k)
	e.mu.RUnlock()
	out := &Engine{
		Dims:   e.Dims,
		Bases:  e.Bases,
		Levels: e.Levels,
		Coeffs: sparse.Dense(len(e.Coeffs)),
	}
	return out
}
