package propolyne

import (
	"fmt"
	"math"
	"sort"

	"aims/internal/vec"
)

// Multi-query evaluation (§3.3.1, third extension): OLAP queries that need
// several related range aggregates at once — SQL GROUP BY, drill-downs,
// MDX expressions — act as linear *maps* where single range queries act as
// linear functionals. Evaluating them well means approximating a matrix:
// the rows are the individual queries' coefficient vectors, they overlap
// heavily, and I/O should be shared maximally with the most important data
// retrieved first. Two notions of "important" are supported, matching the
// paper's discussion of error measures: total L2 error across the group,
// and worst-case (max) error over the group members.

// GroupBy describes a batch of polynomial range-sums that partition one
// dimension of a common box: one aggregate per bucket of the group
// dimension. This covers SQL GROUP BY and drill-down one level.
type GroupBy struct {
	Box   Box
	Polys []vec.Poly
	// Dim is the grouped dimension; its box range is partitioned into
	// len(Buckets) consecutive, disjoint [lo, hi] cells.
	Dim     int
	Buckets []Box // derived; see NewGroupBy
}

// NewGroupBy partitions the box's range on dim into `parts` near-equal
// buckets and returns the batch.
func NewGroupBy(b Box, polys []vec.Poly, dim, parts int) (GroupBy, error) {
	if dim < 0 || dim >= len(b.Lo) {
		return GroupBy{}, fmt.Errorf("propolyne: group dimension %d out of range", dim)
	}
	width := b.Hi[dim] - b.Lo[dim] + 1
	if parts <= 0 || parts > width {
		return GroupBy{}, fmt.Errorf("propolyne: %d parts for width %d", parts, width)
	}
	g := GroupBy{Box: b, Polys: polys, Dim: dim}
	start := b.Lo[dim]
	for p := 0; p < parts; p++ {
		lo := start + p*width/parts
		hi := start + (p+1)*width/parts - 1
		bucket := Box{Lo: append([]int(nil), b.Lo...), Hi: append([]int(nil), b.Hi...)}
		bucket.Lo[g.Dim] = lo
		bucket.Hi[g.Dim] = hi
		g.Buckets = append(g.Buckets, bucket)
	}
	return g, nil
}

// GroupResult is the exact answer vector of a GroupBy.
type GroupResult struct {
	Values []float64
	// SharedCoeffs is the number of *distinct* data coefficients touched
	// across the whole batch; IndividualCoeffs is the sum of per-bucket
	// counts — their ratio is the I/O sharing factor.
	SharedCoeffs, IndividualCoeffs int
}

// GroupByExact evaluates every bucket exactly while fetching each distinct
// data coefficient once — the "share I/O maximally" evaluation. The scan
// accumulates in ascending (coefficient, bucket) order, so the answer
// vector is bit-identical run to run.
func (e *Engine) GroupByExact(g GroupBy) (GroupResult, error) {
	var res GroupResult
	res.Values = make([]float64, len(g.Buckets))
	type entryRef struct {
		idx    int
		bucket int
		weight float64
	}
	var refs []entryRef
	for bi, b := range g.Buckets {
		p, err := e.plan(Query{Lo: b.Lo, Hi: b.Hi, Polys: g.Polys})
		if err != nil {
			return res, err
		}
		res.IndividualCoeffs += p.stats.QueryCoeffs
		if refs == nil {
			refs = make([]entryRef, 0, p.stats.QueryCoeffs*len(g.Buckets))
		}
		for _, en := range p.AppendEntries(nil) {
			refs = append(refs, entryRef{en.Index, bi, en.Value})
		}
	}
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].idx != refs[j].idx {
			return refs[i].idx < refs[j].idx
		}
		return refs[i].bucket < refs[j].bucket
	})
	e.mu.RLock()
	prev := -1
	for _, r := range refs {
		if r.idx != prev {
			res.SharedCoeffs++
			prev = r.idx
		}
		res.Values[r.bucket] += r.weight * e.Coeffs[r.idx]
	}
	e.mu.RUnlock()
	return res, nil
}

// ErrorMeasure selects the objective the progressive group evaluation
// minimises when ordering I/O.
type ErrorMeasure int

const (
	// L2Total orders fetches to shrink the summed squared error across
	// the group fastest (the "standard L2 norm" objective).
	L2Total ErrorMeasure = iota
	// WorstCase orders fetches to shrink the largest single-bucket error
	// bound fastest (the Sobolev/Besov-flavoured objective: large
	// differences between related ranges must be captured early).
	WorstCase
	// NaiveOrder fetches coefficients in ascending index order — the
	// unprioritised baseline a plain layout scan would produce.
	NaiveOrder
)

// GroupStep is the state of a progressive group evaluation after fetching
// one more distinct coefficient.
type GroupStep struct {
	Fetched   int
	Estimates []float64
	// Bounds[b] is the remaining Cauchy–Schwarz error bound of bucket b.
	Bounds []float64
}

// GroupByProgressive evaluates the batch progressively: distinct data
// coefficients are fetched one at a time in an order chosen by the error
// measure, every bucket's estimate advances with each shared fetch, and
// per-bucket guaranteed bounds shrink. maxSteps limits the emitted
// checkpoints (≤0: every fetch).
func (e *Engine) GroupByProgressive(g GroupBy, m ErrorMeasure, maxSteps int) ([]GroupStep, error) {
	type ref = bucketRef
	shared := map[int][]ref{}
	// Per-bucket remaining query energy (for bounds).
	remEnergy := make([]float64, len(g.Buckets))
	for bi, b := range g.Buckets {
		entries, _, err := e.QueryCoefficients(Query{Lo: b.Lo, Hi: b.Hi, Polys: g.Polys})
		if err != nil {
			return nil, err
		}
		for _, en := range entries {
			shared[en.Index] = append(shared[en.Index], ref{bi, en.Value})
			remEnergy[bi] += en.Value * en.Value
		}
	}
	dataNorm := math.Sqrt(e.Energy())

	var idxs []int
	switch m {
	case WorstCase:
		idxs = worstCaseOrder(shared, remEnergy)
	case NaiveOrder:
		idxs = make([]int, 0, len(shared))
		for i := range shared {
			idxs = append(idxs, i)
		}
		sort.Ints(idxs)
	default:
		// Static order by total squared weight across the group.
		idxs = make([]int, 0, len(shared))
		for i := range shared {
			idxs = append(idxs, i)
		}
		imp := func(refs []ref) float64 {
			var s float64
			for _, r := range refs {
				s += r.weight * r.weight
			}
			return s
		}
		sort.Slice(idxs, func(a, b int) bool {
			ia, ib := imp(shared[idxs[a]]), imp(shared[idxs[b]])
			if ia != ib {
				return ia > ib
			}
			return idxs[a] < idxs[b]
		})
	}

	every := 1
	if maxSteps > 0 && len(idxs) > maxSteps {
		every = (len(idxs) + maxSteps - 1) / maxSteps
	}
	est := make([]float64, len(g.Buckets))
	var steps []GroupStep
	e.mu.RLock()
	defer e.mu.RUnlock()
	for k, idx := range idxs {
		v := e.Coeffs[idx]
		for _, r := range shared[idx] {
			est[r.bucket] += r.weight * v
			remEnergy[r.bucket] -= r.weight * r.weight
			if remEnergy[r.bucket] < 0 {
				remEnergy[r.bucket] = 0
			}
		}
		if (k+1)%every == 0 || k == len(idxs)-1 {
			st := GroupStep{Fetched: k + 1,
				Estimates: append([]float64(nil), est...),
				Bounds:    make([]float64, len(g.Buckets))}
			for bi := range st.Bounds {
				st.Bounds[bi] = math.Sqrt(remEnergy[bi]) * dataNorm
			}
			steps = append(steps, st)
		}
	}
	if len(idxs) == 0 {
		steps = append(steps, GroupStep{Estimates: est, Bounds: make([]float64, len(g.Buckets))})
	}
	return steps, nil
}

// bucketRef ties one shared coefficient occurrence to its bucket.
type bucketRef struct {
	bucket int
	weight float64
}

// worstCaseOrder greedily minimises the maximum per-bucket remaining query
// energy: at every step it serves the currently-worst bucket its largest
// outstanding coefficient (fetching it for every bucket that shares it).
// energies is consumed as a working copy.
func worstCaseOrder(shared map[int][]bucketRef, energies []float64) []int {
	rem := append([]float64(nil), energies...)

	// Per-bucket coefficient lists sorted by descending squared weight.
	type cand struct {
		idx int
		w2  float64
	}
	perBucket := make([][]cand, len(rem))
	for idx, refs := range shared {
		for _, r := range refs {
			perBucket[r.bucket] = append(perBucket[r.bucket], cand{idx, r.weight * r.weight})
		}
	}
	for b := range perBucket {
		list := perBucket[b]
		sort.Slice(list, func(i, j int) bool {
			if list[i].w2 != list[j].w2 {
				return list[i].w2 > list[j].w2
			}
			return list[i].idx < list[j].idx
		})
	}
	cursor := make([]int, len(rem))

	fetched := make(map[int]bool, len(shared))
	order := make([]int, 0, len(shared))
	for len(order) < len(shared) {
		// Worst bucket with outstanding coefficients.
		worst, worstE := -1, -1.0
		for b := range rem {
			for cursor[b] < len(perBucket[b]) && fetched[perBucket[b][cursor[b]].idx] {
				cursor[b]++
			}
			if cursor[b] < len(perBucket[b]) && rem[b] > worstE {
				worst, worstE = b, rem[b]
			}
		}
		if worst < 0 {
			break
		}
		idx := perBucket[worst][cursor[worst]].idx
		fetched[idx] = true
		order = append(order, idx)
		for _, r := range shared[idx] {
			rem[r.bucket] -= r.weight * r.weight
			if rem[r.bucket] < 0 {
				rem[r.bucket] = 0
			}
		}
	}
	return order
}

// SharedSupport reports how much I/O the batch shares: the distinct
// coefficient count and the sum of per-bucket counts.
func (e *Engine) SharedSupport(g GroupBy) (distinct, total int, err error) {
	seen := map[int]bool{}
	for _, b := range g.Buckets {
		entries, st, err := e.QueryCoefficients(Query{Lo: b.Lo, Hi: b.Hi, Polys: g.Polys})
		if err != nil {
			return 0, 0, err
		}
		total += st.QueryCoeffs
		for _, en := range entries {
			seen[en.Index] = true
		}
	}
	return len(seen), total, nil
}
