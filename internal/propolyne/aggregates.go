package propolyne

import (
	"fmt"

	"aims/internal/vec"
)

// The standard OLAP aggregates as polynomial range-sums. Every attribute —
// including measures — is a dimension of the cube, so SUM(m) is the
// range-sum with polynomial x on dimension m, VARIANCE needs SUM(x²), and
// COVARIANCE needs the bilinear SUM(x·y): "not only COUNT, SUM and
// AVERAGE, but also VARIANCE, COVARIANCE and more" (§3.3).

// Box is a rectangular selection: inclusive per-dimension ranges.
type Box struct {
	Lo, Hi []int
}

// FullRange returns the box spanning the entire cube.
func (e *Engine) FullRange() Box {
	lo := make([]int, len(e.Dims))
	hi := make([]int, len(e.Dims))
	for d, n := range e.Dims {
		hi[d] = n - 1
	}
	return Box{Lo: lo, Hi: hi}
}

func (e *Engine) polyQuery(b Box, polys []vec.Poly) Query {
	return Query{Lo: b.Lo, Hi: b.Hi, Polys: polys}
}

func monomialOn(dims, target, degree int) []vec.Poly {
	polys := make([]vec.Poly, dims)
	polys[target] = vec.PolyX(degree)
	return polys
}

// Count returns the number of tuples in the box.
func (e *Engine) Count(b Box) (float64, error) {
	v, _, err := e.Exact(e.polyQuery(b, nil))
	return v, err
}

// Sum returns Σ x_dim over tuples in the box.
func (e *Engine) Sum(b Box, dim int) (float64, error) {
	if err := e.checkDim(dim); err != nil {
		return 0, err
	}
	v, _, err := e.Exact(e.polyQuery(b, monomialOn(len(e.Dims), dim, 1)))
	return v, err
}

// SumSquares returns Σ x_dim² over tuples in the box.
func (e *Engine) SumSquares(b Box, dim int) (float64, error) {
	if err := e.checkDim(dim); err != nil {
		return 0, err
	}
	v, _, err := e.Exact(e.polyQuery(b, monomialOn(len(e.Dims), dim, 2)))
	return v, err
}

// SumProduct returns Σ x_d1 · x_d2 over tuples in the box (d1 ≠ d2).
func (e *Engine) SumProduct(b Box, d1, d2 int) (float64, error) {
	if err := e.checkDim(d1); err != nil {
		return 0, err
	}
	if err := e.checkDim(d2); err != nil {
		return 0, err
	}
	if d1 == d2 {
		return e.SumSquares(b, d1)
	}
	polys := make([]vec.Poly, len(e.Dims))
	polys[d1] = vec.PolyX(1)
	polys[d2] = vec.PolyX(1)
	v, _, err := e.Exact(e.polyQuery(b, polys))
	return v, err
}

// Average returns the mean of x_dim over tuples in the box; ok is false
// when the box is empty.
func (e *Engine) Average(b Box, dim int) (avg float64, ok bool, err error) {
	n, err := e.Count(b)
	if err != nil {
		return 0, false, err
	}
	if n <= 0 {
		return 0, false, nil
	}
	s, err := e.Sum(b, dim)
	if err != nil {
		return 0, false, err
	}
	return s / n, true, nil
}

// Variance returns the population variance of x_dim over tuples in the
// box; ok is false when the box is empty.
func (e *Engine) Variance(b Box, dim int) (v float64, ok bool, err error) {
	n, err := e.Count(b)
	if err != nil {
		return 0, false, err
	}
	if n <= 0 {
		return 0, false, nil
	}
	s, err := e.Sum(b, dim)
	if err != nil {
		return 0, false, err
	}
	s2, err := e.SumSquares(b, dim)
	if err != nil {
		return 0, false, err
	}
	mean := s / n
	val := s2/n - mean*mean
	if val < 0 {
		val = 0 // numerical guard
	}
	return val, true, nil
}

// Covariance returns the population covariance of dimensions d1 and d2
// over tuples in the box; ok is false when the box is empty.
func (e *Engine) Covariance(b Box, d1, d2 int) (c float64, ok bool, err error) {
	n, err := e.Count(b)
	if err != nil {
		return 0, false, err
	}
	if n <= 0 {
		return 0, false, nil
	}
	sp, err := e.SumProduct(b, d1, d2)
	if err != nil {
		return 0, false, err
	}
	s1, err := e.Sum(b, d1)
	if err != nil {
		return 0, false, err
	}
	s2, err := e.Sum(b, d2)
	if err != nil {
		return 0, false, err
	}
	return sp/n - (s1/n)*(s2/n), true, nil
}

func (e *Engine) checkDim(d int) error {
	if d < 0 || d >= len(e.Dims) {
		return fmt.Errorf("propolyne: dimension %d out of range [0,%d)", d, len(e.Dims))
	}
	return nil
}

// CovarianceMatrix returns the full covariance matrix of the listed
// dimensions over tuples in the box — the second-order statistics block
// that §3.4.1 derives from SUM queries of degree-2 polynomials and feeds
// into the SVD-based similarity measure.
func (e *Engine) CovarianceMatrix(b Box, dims []int) ([][]float64, bool, error) {
	n, err := e.Count(b)
	if err != nil || n <= 0 {
		return nil, false, err
	}
	sums := make([]float64, len(dims))
	for i, d := range dims {
		if sums[i], err = e.Sum(b, d); err != nil {
			return nil, false, err
		}
	}
	out := make([][]float64, len(dims))
	for i := range out {
		out[i] = make([]float64, len(dims))
	}
	for i, di := range dims {
		for j := i; j < len(dims); j++ {
			sp, err := e.SumProduct(b, di, dims[j])
			if err != nil {
				return nil, false, err
			}
			cov := sp/n - (sums[i]/n)*(sums[j]/n)
			out[i][j] = cov
			out[j][i] = cov
		}
	}
	return out, true, nil
}
