package propolyne

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"aims/internal/synth"
	"aims/internal/vec"
)

// TestConcurrentQueriesAndAppends exercises the single-writer /
// many-readers protocol under the race detector: readers issue every query
// type while a writer appends tuples.
func TestConcurrentQueriesAndAppends(t *testing.T) {
	sizes := []int{64, 64}
	e, err := New(synth.ZipfCube(sizes, 20000, 1.2, 9), sizes, 1)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup

	// Writer: a fixed stream of appends racing the readers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 1500; i++ {
			if err := e.Append([]int{rng.Intn(64), rng.Intn(64)}, 1); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	// Readers: every public query path.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 50; i++ {
				lo := []int{rng.Intn(40), rng.Intn(40)}
				q := Query{Lo: lo, Hi: []int{lo[0] + 2 + rng.Intn(18), lo[1] + 2 + rng.Intn(18)},
					Polys: []vec.Poly{nil, {0, 1}}}
				if v, _, err := e.Exact(q); err != nil || math.IsNaN(v) {
					t.Errorf("Exact: %v %v", v, err)
					return
				}
				if _, _, err := e.EstimateWithBudget(q, 20); err != nil {
					t.Error(err)
					return
				}
				if _, _, err := e.EstimateWithBudgetRefined(q, 20); err != nil {
					t.Error(err)
					return
				}
				if _, _, err := e.Progressive(q, 5); err != nil {
					t.Error(err)
					return
				}
				g, err := NewGroupBy(Box{Lo: q.Lo, Hi: q.Hi}, nil, 0, 2)
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := e.GroupByExact(g); err != nil {
					t.Error(err)
					return
				}
				_ = e.Energy()
			}
		}(int64(r + 10))
	}

	wg.Wait()
}

// TestConcurrentAppendsSerialise verifies appends are not lost under
// contention.
func TestConcurrentAppendsSerialise(t *testing.T) {
	sizes := []int{32, 32}
	e, err := New(make([]float64, 32*32), sizes, 0)
	if err != nil {
		t.Fatal(err)
	}
	const writers = 4
	const perWriter = 200
	var wg sync.WaitGroup
	for wID := 0; wID < writers; wID++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWriter; i++ {
				if err := e.Append([]int{rng.Intn(32), rng.Intn(32)}, 1); err != nil {
					t.Error(err)
					return
				}
			}
		}(int64(wID))
	}
	wg.Wait()
	total, err := e.Count(e.FullRange())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(total-writers*perWriter) > 1e-6 {
		t.Fatalf("count = %v, want %d", total, writers*perWriter)
	}
}
