package propolyne

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"aims/internal/synth"
)

func TestBandOf(t *testing.T) {
	// n=16, 4 levels: approx [0,1), d4 [1,2), d3 [2,4), d2 [4,8), d1 [8,16).
	cases := map[int]int{0: 0, 1: 1, 2: 2, 3: 2, 4: 3, 7: 3, 8: 4, 15: 4}
	for p, want := range cases {
		if got := bandOf(p, 16, 4); got != want {
			t.Errorf("bandOf(%d) = %d, want %d", p, got, want)
		}
	}
	// Partial decomposition: n=16, 2 levels → approx [0,4), d2 [4,8), d1 [8,16).
	cases2 := map[int]int{0: 0, 3: 0, 4: 1, 7: 1, 8: 2, 15: 2}
	for p, want := range cases2 {
		if got := bandOf(p, 16, 2); got != want {
			t.Errorf("bandOf(%d, levels=2) = %d, want %d", p, got, want)
		}
	}
	if got := bandOf(5, 16, 0); got != 0 {
		t.Errorf("levels=0 band = %d", got)
	}
}

func TestRefinedBoundValidAndTighter(t *testing.T) {
	for _, seedCube := range []struct {
		name string
		cube []float64
	}{
		{"smooth", synth.SmoothCube([]int{64, 64}, 31)},
		{"zipf", synth.ZipfCube([]int{64, 64}, 20000, 1.2, 32)},
	} {
		e, err := New(seedCube.cube, []int{64, 64}, 0)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(33))
		for trial := 0; trial < 15; trial++ {
			lo := []int{rng.Intn(40), rng.Intn(40)}
			q := Query{Lo: lo, Hi: []int{lo[0] + 4 + rng.Intn(20), lo[1] + 4 + rng.Intn(20)}}
			exact, _, _ := e.Exact(q)
			budget := 10 + rng.Intn(80)

			est, loose, err := e.EstimateWithBudget(q, budget)
			if err != nil {
				t.Fatal(err)
			}
			estR, refined, err := e.EstimateWithBudgetRefined(q, budget)
			if err != nil {
				t.Fatal(err)
			}
			if est != estR {
				t.Fatalf("%s: estimates differ: %v vs %v", seedCube.name, est, estR)
			}
			// Validity: the refined bound still covers the true error.
			if math.Abs(est-exact) > refined+1e-6 {
				t.Fatalf("%s: refined bound %v violated: |%v-%v|", seedCube.name, refined, est, exact)
			}
			// Tightness: never looser than the global bound.
			if refined > loose+1e-9 {
				t.Fatalf("%s: refined %v looser than global %v", seedCube.name, refined, loose)
			}
		}
	}
}

func TestRefinedBoundStrictlyTighterOnStructuredData(t *testing.T) {
	// Smooth data concentrates energy in coarse bands while a query's
	// remainder lives mostly in fine bands — the refinement must win by a
	// clear margin somewhere.
	e, err := New(synth.SmoothCube([]int{128, 128}, 34), []int{128, 128}, 0)
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Lo: []int{13, 21}, Hi: []int{90, 110}}
	_, loose, _ := e.EstimateWithBudget(q, 30)
	_, refined, _ := e.EstimateWithBudgetRefined(q, 30)
	if refined > 0.8*loose {
		t.Fatalf("refined %v not clearly tighter than loose %v", refined, loose)
	}
}

func TestRefinedBoundInvalidatedByAppend(t *testing.T) {
	e, err := New(make([]float64, 64*64), []int{64, 64}, 0)
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Lo: []int{0, 0}, Hi: []int{63, 63}}
	_, b0, _ := e.EstimateWithBudgetRefined(q, 1)
	if b0 != 0 {
		t.Fatalf("empty cube bound = %v", b0)
	}
	for i := 0; i < 50; i++ {
		if err := e.Append([]int{i % 64, (i * 13) % 64}, 1); err != nil {
			t.Fatal(err)
		}
	}
	exact, _, _ := e.Exact(q)
	est, b1, _ := e.EstimateWithBudgetRefined(q, 2)
	if math.Abs(est-exact) > b1+1e-9 {
		t.Fatalf("stale band energies: |%v-%v| > %v", est, exact, b1)
	}
}

func TestRefinedBoundProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cube := synth.UniformCube([]int{32, 32}, 10, seed)
		e, err := New(cube, []int{32, 32}, 0)
		if err != nil {
			return false
		}
		lo := []int{rng.Intn(20), rng.Intn(20)}
		q := Query{Lo: lo, Hi: []int{lo[0] + rng.Intn(12), lo[1] + rng.Intn(12)}}
		exact, _, _ := e.Exact(q)
		budget := rng.Intn(60)
		est, bound, err := e.EstimateWithBudgetRefined(q, budget)
		if err != nil {
			return false
		}
		return math.Abs(est-exact) <= bound+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
