package propolyne

import (
	"math"
	"math/rand"
	"testing"

	"aims/internal/synth"
	"aims/internal/vec"
)

func TestNewGroupByPartitions(t *testing.T) {
	b := Box{Lo: []int{0, 10}, Hi: []int{31, 40}}
	g, err := NewGroupBy(b, nil, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Buckets) != 4 {
		t.Fatalf("buckets = %d", len(g.Buckets))
	}
	// Buckets tile [0,31] on dim 0, keep dim 1 intact.
	prev := -1
	for _, bk := range g.Buckets {
		if bk.Lo[0] != prev+1 {
			t.Fatalf("gap/overlap at %d", bk.Lo[0])
		}
		prev = bk.Hi[0]
		if bk.Lo[1] != 10 || bk.Hi[1] != 40 {
			t.Fatalf("non-grouped dim changed: %+v", bk)
		}
	}
	if prev != 31 {
		t.Fatalf("last bucket ends at %d", prev)
	}
}

func TestNewGroupByErrors(t *testing.T) {
	b := Box{Lo: []int{0}, Hi: []int{7}}
	if _, err := NewGroupBy(b, nil, 1, 2); err == nil {
		t.Fatal("bad dim accepted")
	}
	if _, err := NewGroupBy(b, nil, 0, 100); err == nil {
		t.Fatal("too many parts accepted")
	}
}

func TestGroupByExactMatchesPerBucket(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sizes := []int{32, 32}
	rel := randomRelation(rng, sizes, 900)
	e, err := New(rel.Cube(), sizes, 1)
	if err != nil {
		t.Fatal(err)
	}
	b := Box{Lo: []int{0, 4}, Hi: []int{31, 28}}
	polys := []vec.Poly{nil, {0, 1}}
	g, err := NewGroupBy(b, polys, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.GroupByExact(g)
	if err != nil {
		t.Fatal(err)
	}
	for bi, bucket := range g.Buckets {
		want := rel.RangeSum(bucket.Lo, bucket.Hi, polys)
		if math.Abs(res.Values[bi]-want) > 1e-5*(1+math.Abs(want)) {
			t.Fatalf("bucket %d: %v vs naive %v", bi, res.Values[bi], want)
		}
	}
	// I/O sharing must be real: distinct < sum of individual counts.
	if res.SharedCoeffs >= res.IndividualCoeffs {
		t.Fatalf("no sharing: %d distinct vs %d individual", res.SharedCoeffs, res.IndividualCoeffs)
	}
}

func TestSharedSupportMatchesExact(t *testing.T) {
	e, _ := New(synth.SmoothCube([]int{64, 64}, 5), []int{64, 64}, 0)
	g, err := NewGroupBy(Box{Lo: []int{0, 0}, Hi: []int{63, 63}}, nil, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	distinct, total, err := e.SharedSupport(g)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.GroupByExact(g)
	if err != nil {
		t.Fatal(err)
	}
	if distinct != res.SharedCoeffs || total != res.IndividualCoeffs {
		t.Fatalf("support mismatch: %d/%d vs %d/%d",
			distinct, total, res.SharedCoeffs, res.IndividualCoeffs)
	}
}

func TestGroupByProgressiveConvergesBothMeasures(t *testing.T) {
	e, err := New(synth.SmoothCube([]int{64, 64}, 6), []int{64, 64}, 0)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGroupBy(Box{Lo: []int{2, 5}, Hi: []int{60, 58}}, nil, 0, 6)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := e.GroupByExact(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []ErrorMeasure{L2Total, WorstCase} {
		steps, err := e.GroupByProgressive(g, m, 0)
		if err != nil {
			t.Fatal(err)
		}
		final := steps[len(steps)-1]
		for bi := range exact.Values {
			if math.Abs(final.Estimates[bi]-exact.Values[bi]) > 1e-6*(1+math.Abs(exact.Values[bi])) {
				t.Fatalf("measure %v bucket %d: %v vs %v", m, bi, final.Estimates[bi], exact.Values[bi])
			}
			if final.Bounds[bi] > 1e-6*(1+math.Abs(exact.Values[bi])) {
				t.Fatalf("measure %v: final bound %v not ≈ 0", m, final.Bounds[bi])
			}
		}
		// Bounds hold at every checkpoint.
		for _, s := range steps {
			for bi := range s.Estimates {
				if math.Abs(s.Estimates[bi]-exact.Values[bi]) > s.Bounds[bi]+1e-6 {
					t.Fatalf("measure %v: bound violated at fetch %d bucket %d", m, s.Fetched, bi)
				}
			}
		}
	}
}

func TestGroupByProgressiveCheckpointing(t *testing.T) {
	e, _ := New(synth.SmoothCube([]int{64, 64}, 7), []int{64, 64}, 0)
	g, _ := NewGroupBy(Box{Lo: []int{0, 0}, Hi: []int{63, 63}}, nil, 0, 4)
	steps, err := e.GroupByProgressive(g, L2Total, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) > 7 {
		t.Fatalf("checkpointing failed: %d steps", len(steps))
	}
}

func TestGroupByExactMatchesRelationalScan(t *testing.T) {
	// The wavelet-domain GROUP BY and the relational scan baseline must
	// agree bucket for bucket (identical partition boundaries).
	rng := rand.New(rand.NewSource(3))
	sizes := []int{32, 16}
	rel := randomRelation(rng, sizes, 700)
	e, err := New(rel.Cube(), sizes, 1)
	if err != nil {
		t.Fatal(err)
	}
	b := Box{Lo: []int{2, 1}, Hi: []int{29, 14}}
	polys := []vec.Poly{nil, {0, 1}}
	for _, parts := range []int{3, 7, 8} {
		g, err := NewGroupBy(b, polys, 0, parts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.GroupByExact(g)
		if err != nil {
			t.Fatal(err)
		}
		scan, _, err := rel.GroupByScan(b.Lo, b.Hi, polys, 0, parts)
		if err != nil {
			t.Fatal(err)
		}
		for i := range scan {
			if math.Abs(res.Values[i]-scan[i]) > 1e-5*(1+math.Abs(scan[i])) {
				t.Fatalf("parts=%d bucket %d: engine %v vs scan %v", parts, i, res.Values[i], scan[i])
			}
		}
	}
}

func TestGroupByDrillDownConsistency(t *testing.T) {
	// The buckets of a GROUP BY must sum to the parent aggregate —
	// the drill-down invariant.
	rng := rand.New(rand.NewSource(2))
	sizes := []int{64, 32}
	rel := randomRelation(rng, sizes, 1200)
	e, err := New(rel.Cube(), sizes, 0)
	if err != nil {
		t.Fatal(err)
	}
	parent := Box{Lo: []int{0, 0}, Hi: []int{63, 31}}
	total, err := e.Count(parent)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := NewGroupBy(parent, nil, 0, 16)
	res, err := e.GroupByExact(g)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range res.Values {
		sum += v
	}
	if math.Abs(sum-total) > 1e-5*(1+total) {
		t.Fatalf("drill-down sum %v != parent %v", sum, total)
	}
}
