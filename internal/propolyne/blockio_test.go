package propolyne

import (
	"math"
	"testing"

	"aims/internal/synth"
)

func TestNewBlockStoreRequiresHaarFullDecomposition(t *testing.T) {
	e, err := New(synth.SmoothCube([]int{32, 32}, 1), []int{32, 32}, 1) // db2
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.NewBlockStore(4); err == nil {
		t.Fatal("non-haar engine accepted for tiling")
	}
}

func TestProgressiveByBlocksConvergesToExact(t *testing.T) {
	sizes := []int{64, 64}
	e, err := New(synth.SmoothCube(sizes, 2), sizes, 0) // Haar
	if err != nil {
		t.Fatal(err)
	}
	store, err := e.NewBlockStore(8)
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Lo: []int{3, 7}, Hi: []int{49, 61}}
	steps, exact, err := e.ProgressiveByBlocks(q, store)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) == 0 {
		t.Fatal("no steps")
	}
	final := steps[len(steps)-1].Estimate
	if math.Abs(final-exact) > 1e-6*(1+math.Abs(exact)) {
		t.Fatalf("block-progressive final %v vs exact %v", final, exact)
	}
	// Importance ordering front-loads: after a third of the blocks the
	// estimate should already be within 10 % of exact on smooth data.
	third := steps[len(steps)/3]
	if math.Abs(third.Estimate-exact) > 0.1*math.Abs(exact) {
		t.Fatalf("after %d/%d blocks estimate %v still far from %v",
			third.BlocksFetched, len(steps), third.Estimate, exact)
	}
	// I/O accounting: reads were counted.
	if store.Stats().BlockReads < len(steps) {
		t.Fatalf("stats reads %d < steps %d", store.Stats().BlockReads, len(steps))
	}
}

func TestBlockStoreStandardDims(t *testing.T) {
	sizes := []int{8, 64}
	bases := []Basis{{Standard: true}, {}}
	f, _ := AllWavelet([]int{64}, 0)
	bases[1] = f[0]
	e, err := NewWithBases(synth.SmoothCube(sizes, 3), sizes, bases)
	if err != nil {
		t.Fatal(err)
	}
	store, err := e.NewBlockStore(4)
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Lo: []int{2, 0}, Hi: []int{5, 63}}
	steps, exact, err := e.ProgressiveByBlocks(q, store)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(steps[len(steps)-1].Estimate-exact) > 1e-6*(1+math.Abs(exact)) {
		t.Fatal("hybrid block store did not converge")
	}
}
