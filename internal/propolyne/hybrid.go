package propolyne

import (
	"math"

	"aims/internal/wavelet"
)

// Hybrid basis selection (§3.3.1): dimensions where relational selection is
// cheaper than wavelet-domain evaluation — small domains or tightly
// selective query templates — keep the standard basis; the rest use
// wavelets. "Clearly the best choice of hybridization will perform at least
// as well as a pure relational algorithm or pure ProPolyne."

// QueryTemplate describes the expected workload for the chooser: the
// expected fractional range width per dimension (1 = whole domain) and the
// highest polynomial degree used per dimension.
type QueryTemplate struct {
	RangeFraction []float64
	MaxDegree     int
}

// CostModel estimates per-dimension evaluation cost in touched
// coefficients.
type CostModel struct {
	// WaveletConstant scales the O(filter·log n) wavelet query sparsity;
	// calibrated from the lazy transform's boundary-window width.
	WaveletConstant float64
}

// DefaultCostModel matches the measured sparsity of LazyQuery.
var DefaultCostModel = CostModel{WaveletConstant: 2}

// WaveletCost estimates the nonzero query coefficients for one wavelet
// dimension.
func (c CostModel) WaveletCost(n int, f wavelet.Filter) float64 {
	return c.WaveletConstant * float64(f.Len()) * math.Log2(float64(n))
}

// StandardCost estimates the query-vector size for one standard dimension:
// the expected range width.
func (c CostModel) StandardCost(n int, rangeFraction float64) float64 {
	w := rangeFraction * float64(n)
	if w < 1 {
		w = 1
	}
	return w
}

// ChooseBases picks, per dimension, the cheaper of the standard basis and
// the degree-appropriate wavelet basis under the cost model. The total
// query cost is the product of per-dimension vector sizes, so the choice
// is separable per dimension.
func ChooseBases(dims []int, tmpl QueryTemplate, model CostModel) ([]Basis, error) {
	f, err := wavelet.ForDegree(tmpl.MaxDegree)
	if err != nil {
		return nil, err
	}
	out := make([]Basis, len(dims))
	for d, n := range dims {
		frac := 1.0
		if d < len(tmpl.RangeFraction) {
			frac = tmpl.RangeFraction[d]
		}
		std := model.StandardCost(n, frac)
		wav := model.WaveletCost(n, f)
		if std <= wav {
			out[d] = Basis{Standard: true}
		} else {
			out[d] = Basis{Filter: f}
		}
	}
	return out, nil
}

// AllWavelet returns a uniform wavelet basis assignment for the degree.
func AllWavelet(dims []int, maxDegree int) ([]Basis, error) {
	f, err := wavelet.ForDegree(maxDegree)
	if err != nil {
		return nil, err
	}
	out := make([]Basis, len(dims))
	for d := range out {
		out[d] = Basis{Filter: f}
	}
	return out, nil
}

// AllStandard returns the pure-relational basis assignment.
func AllStandard(dims []int) []Basis {
	out := make([]Basis, len(dims))
	for d := range out {
		out[d] = Basis{Standard: true}
	}
	return out
}
