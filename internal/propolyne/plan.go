package propolyne

import (
	"math"
	"sort"
	"sync"

	"aims/internal/vec"
	"aims/internal/wavelet"
)

// A Plan is a compiled polynomial range-sum: the per-dimension transformed
// query vectors in evaluation-ready form, bound to one engine geometry
// (dims, bases, levels). Compiling pays the lazy wavelet transform and the
// sorting once; evaluating is then the pure sparse dot product ProPolyne
// promises — Plan.Dot walks the tensor product iteratively against the
// coefficient store with zero heap allocation in steady state (the offset
// stack comes from a pool) and sums in ascending flat-offset order, so the
// same plan over the same coefficients is bit-identical run to run.
//
// Plans are immutable after Compile and safe for concurrent use by any
// number of goroutines; they are the unit the PlanCache shares across
// queries, sessions and fleet scans.
type Plan struct {
	strides []int
	terms   []planTerm
	stats   Stats

	// ordered is the tensor product materialised and sorted by descending
	// |weight| — the progressive retrieval order — with orderedSuffix[i] =
	// Σ_{j≥i} weight². Built lazily, once, on first progressive use; plans
	// whose support exceeds maxOrderedCache rebuild per call instead of
	// pinning the materialisation in memory.
	orderedOnce   sync.Once
	ordered       []wavelet.Entry
	orderedSuffix []float64
}

// maxOrderedCache caps the materialised progressive ordering a plan will
// keep resident (entries); larger supports are rebuilt per evaluation.
const maxOrderedCache = 1 << 16

// planTerm is one dimension's compiled query vector. Wavelet dimensions
// hold their sparse entries index-ascending; standard (identity-basis)
// dimensions hold the contiguous range as a compact run span — O(1) memory
// regardless of range width — with the polynomial evaluated on the fly.
type planTerm struct {
	// run marks a standard-dimension span [lo, hi]; entries is nil.
	run     bool
	lo, hi  int
	isConst bool
	constV  float64  // weight when isConst
	poly    vec.Poly // weight p(k) otherwise
	// entries are a wavelet dimension's nonzeros, ascending by index.
	entries []wavelet.Entry
}

// count returns the term's nonzero width.
func (t *planTerm) count() int {
	if t.run {
		return t.hi - t.lo + 1
	}
	return len(t.entries)
}

// at returns the i'th (index, weight) pair in ascending-index order.
func (t *planTerm) at(i int) (int, float64) {
	if t.run {
		k := t.lo + i
		if t.isConst {
			return k, t.constV
		}
		return k, t.poly.Eval(float64(k))
	}
	return t.entries[i].Index, t.entries[i].Value
}

// dot accumulates this term's contribution as the innermost loop of the
// tensor walk: w · Σ_i v_i · coeffs[off + idx_i·stride].
func (t *planTerm) dot(stride, off int, w float64, coeffs []float64) float64 {
	var s float64
	if t.run {
		base := off + t.lo*stride
		if t.isConst {
			for k := t.lo; k <= t.hi; k++ {
				s += coeffs[base]
				base += stride
			}
			return w * t.constV * s
		}
		for k := t.lo; k <= t.hi; k++ {
			s += t.poly.Eval(float64(k)) * coeffs[base]
			base += stride
		}
		return w * s
	}
	for i := range t.entries {
		s += t.entries[i].Value * coeffs[off+t.entries[i].Index*stride]
	}
	return w * s
}

// CompilePlan compiles q against the engine's geometry: per-dimension lazy
// wavelet transforms on wavelet dimensions, compact run spans on standard
// dimensions, everything index-sorted for deterministic evaluation. The
// plan depends only on the geometry and the query shape — never on the
// coefficient data — so appends and incremental seals do not invalidate it.
func (e *Engine) CompilePlan(q Query) (*Plan, error) {
	if err := e.validate(q); err != nil {
		return nil, err
	}
	p := &Plan{
		strides: e.Dims.Strides(),
		terms:   make([]planTerm, len(e.Dims)),
	}
	st := Stats{PerDim: make([]int, len(e.Dims)), QueryCoeffs: 1}
	for d := range e.Dims {
		var poly vec.Poly
		if d < len(q.Polys) && q.Polys[d] != nil {
			poly = q.Polys[d]
		}
		t := &p.terms[d]
		if e.Bases[d].Standard {
			t.run, t.lo, t.hi = true, q.Lo[d], q.Hi[d]
			if poly.Degree() <= 0 {
				t.isConst = true
				t.constV = 1
				if len(poly) > 0 {
					t.constV = poly[0]
				}
			} else {
				t.poly = poly
			}
		} else {
			qp := poly
			if qp == nil {
				qp = vec.PolyConst(1)
			}
			s, err := wavelet.LazyQuery(e.Dims[d], q.Lo[d], q.Hi[d], qp, e.Bases[d].Filter, e.Levels[d])
			if err != nil {
				return nil, err
			}
			t.entries = ascendingEntries(s)
		}
		n := t.count()
		st.PerDim[d] = n
		st.QueryCoeffs *= n
	}
	p.stats = st
	return p, nil
}

// ascendingEntries flattens a sparse vector into index-ascending entries.
func ascendingEntries(s wavelet.Sparse) []wavelet.Entry {
	out := make([]wavelet.Entry, 0, len(s))
	for i, v := range s {
		out = append(out, wavelet.Entry{Index: i, Value: v})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Index < out[b].Index })
	return out
}

// Stats returns the plan's evaluation stats (a copy; plans are shared).
func (p *Plan) Stats() Stats {
	return Stats{
		PerDim:      append([]int(nil), p.stats.PerDim...),
		QueryCoeffs: p.stats.QueryCoeffs,
	}
}

// dotScratch is the pooled offset/weight stack of the iterative tensor
// walk, so steady-state evaluation allocates nothing.
type dotScratch struct {
	pos []int
	off []int
	w   []float64
}

var dotPool = sync.Pool{New: func() interface{} { return new(dotScratch) }}

// Dot evaluates the sparse dot product ⟨plan, coeffs⟩. Per-dimension
// entries are index-ascending and the walk is lexicographic over the
// row-major strides, so flat offsets are visited in strictly ascending
// order — the summation order, and therefore the floating-point result, is
// identical on every run.
func (p *Plan) Dot(coeffs []float64) float64 {
	nd := len(p.terms)
	if nd == 0 {
		return 0
	}
	for d := range p.terms {
		if p.terms[d].count() == 0 {
			return 0
		}
	}
	last := nd - 1
	if nd == 1 {
		return p.terms[0].dot(p.strides[0], 0, 1, coeffs)
	}
	sc := dotPool.Get().(*dotScratch)
	if cap(sc.pos) < nd {
		sc.pos = make([]int, nd)
		sc.off = make([]int, nd)
		sc.w = make([]float64, nd)
	}
	pos, off, w := sc.pos[:nd], sc.off[:nd], sc.w[:nd]

	var sum float64
	d := 0
	pos[0], off[0], w[0] = 0, 0, 1
	for d >= 0 {
		if d == last {
			// Innermost dimension: one tight loop over the whole term.
			sum += p.terms[last].dot(p.strides[last], off[d], w[d], coeffs)
			d--
			if d >= 0 {
				pos[d]++
			}
			continue
		}
		t := &p.terms[d]
		if pos[d] >= t.count() {
			d--
			if d >= 0 {
				pos[d]++
			}
			continue
		}
		idx, v := t.at(pos[d])
		off[d+1] = off[d] + idx*p.strides[d]
		w[d+1] = w[d] * v
		d++
		pos[d] = 0
	}
	dotPool.Put(sc)
	return sum
}

// EvalPlan evaluates a compiled plan against this engine's coefficient
// store under the read lock — the steady-state query hot path.
func (e *Engine) EvalPlan(p *Plan) float64 {
	e.mu.RLock()
	v := p.Dot(e.Coeffs)
	e.mu.RUnlock()
	return v
}

// AppendEntries materialises the plan's tensor product as (flat offset,
// weight) pairs in ascending-offset order, appended to dst. Offsets within
// one plan are distinct (per-dimension indices are), so the order is a
// deterministic total order.
func (p *Plan) AppendEntries(dst []wavelet.Entry) []wavelet.Entry {
	var rec func(d, off int, w float64)
	rec = func(d, off int, w float64) {
		if d == len(p.terms) {
			dst = append(dst, wavelet.Entry{Index: off, Value: w})
			return
		}
		t := &p.terms[d]
		n := t.count()
		for i := 0; i < n; i++ {
			idx, v := t.at(i)
			rec(d+1, off+idx*p.strides[d], w*v)
		}
	}
	rec(0, 0, 1)
	return dst
}

// buildOrdered materialises the progressive retrieval order: entries by
// descending |weight| (index-ascending tie-break) plus the suffix query
// energies the Cauchy–Schwarz bound needs.
func (p *Plan) buildOrdered() ([]wavelet.Entry, []float64) {
	entries := p.AppendEntries(make([]wavelet.Entry, 0, p.stats.QueryCoeffs))
	sort.Slice(entries, func(i, j int) bool {
		ai, aj := math.Abs(entries[i].Value), math.Abs(entries[j].Value)
		if ai != aj {
			return ai > aj
		}
		return entries[i].Index < entries[j].Index
	})
	suffix := make([]float64, len(entries)+1)
	for i := len(entries) - 1; i >= 0; i-- {
		suffix[i] = suffix[i+1] + entries[i].Value*entries[i].Value
	}
	return entries, suffix
}

// Ordered returns the plan's entries in progressive retrieval order
// (descending |weight|) and the suffix energy array, computing both once
// per plan for supports up to maxOrderedCache. Callers must not mutate the
// returned slices.
func (p *Plan) Ordered() ([]wavelet.Entry, []float64) {
	if p.stats.QueryCoeffs > maxOrderedCache {
		return p.buildOrdered()
	}
	p.orderedOnce.Do(func() {
		p.ordered, p.orderedSuffix = p.buildOrdered()
	})
	return p.ordered, p.orderedSuffix
}
