package propolyne

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"aims/internal/wavelet"
)

// Binary persistence for populated engines: the transformed cube is the
// store's durable form (the paper keeps the wavelet blocks, not the raw
// relation). The format is versioned and self-describing:
//
//	magic "AIMSPPE1" | nDims u32 | dims u32… |
//	per dim: standard u8, filterName u8+bytes, levels u32 |
//	coeffs u64 | float64 bits…

var engineMagic = [8]byte{'A', 'I', 'M', 'S', 'P', 'P', 'E', '1'}

// WriteTo serialises the engine. It implements io.WriterTo.
func (e *Engine) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	write := func(v interface{}) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	if err := write(engineMagic); err != nil {
		return n, err
	}
	if err := write(uint32(len(e.Dims))); err != nil {
		return n, err
	}
	for _, d := range e.Dims {
		if err := write(uint32(d)); err != nil {
			return n, err
		}
	}
	for d, b := range e.Bases {
		std := uint8(0)
		name := ""
		if b.Standard {
			std = 1
		} else {
			name = b.Filter.Name
		}
		if err := write(std); err != nil {
			return n, err
		}
		if err := write(uint8(len(name))); err != nil {
			return n, err
		}
		if len(name) > 0 {
			if _, err := bw.WriteString(name); err != nil {
				return n, err
			}
			n += int64(len(name))
		}
		if err := write(uint32(e.Levels[d])); err != nil {
			return n, err
		}
	}
	if err := write(uint64(len(e.Coeffs))); err != nil {
		return n, err
	}
	e.mu.RLock()
	for _, v := range e.Coeffs {
		if err := write(math.Float64bits(v)); err != nil {
			e.mu.RUnlock()
			return n, err
		}
	}
	e.mu.RUnlock()
	return n, bw.Flush()
}

// ReadEngine deserialises an engine written by WriteTo.
func ReadEngine(r io.Reader) (*Engine, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return nil, fmt.Errorf("propolyne: read magic: %w", err)
	}
	if magic != engineMagic {
		return nil, fmt.Errorf("propolyne: bad magic %q", magic[:])
	}
	var nd uint32
	if err := binary.Read(br, binary.LittleEndian, &nd); err != nil {
		return nil, err
	}
	if nd == 0 || nd > 16 {
		return nil, fmt.Errorf("propolyne: implausible dimension count %d", nd)
	}
	e := &Engine{
		Dims:   make(wavelet.Dims, nd),
		Bases:  make([]Basis, nd),
		Levels: make([]int, nd),
	}
	// maxCells bounds the cube a corrupt header can make us allocate
	// (2 GiB of float64) and keeps the running product from overflowing.
	const maxCells = 1 << 28
	size := 1
	for d := range e.Dims {
		var v uint32
		if err := binary.Read(br, binary.LittleEndian, &v); err != nil {
			return nil, err
		}
		if v == 0 || v > 1<<24 || v&(v-1) != 0 {
			return nil, fmt.Errorf("propolyne: implausible dimension size %d", v)
		}
		if size > maxCells/int(v) {
			return nil, fmt.Errorf("propolyne: cube %v exceeds %d cells", e.Dims[:d+1], maxCells)
		}
		e.Dims[d] = int(v)
		size *= int(v)
	}
	for d := range e.Bases {
		var std, nameLen uint8
		if err := binary.Read(br, binary.LittleEndian, &std); err != nil {
			return nil, err
		}
		if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
			return nil, err
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return nil, err
		}
		var levels uint32
		if err := binary.Read(br, binary.LittleEndian, &levels); err != nil {
			return nil, err
		}
		if levels > 32 {
			return nil, fmt.Errorf("propolyne: implausible level count %d", levels)
		}
		e.Levels[d] = int(levels)
		if std == 1 {
			e.Bases[d] = Basis{Standard: true}
			continue
		}
		f, err := wavelet.ByName(string(name))
		if err != nil {
			return nil, err
		}
		if int(levels) > wavelet.MaxLevels(e.Dims[d], f) {
			return nil, fmt.Errorf("propolyne: levels %d impossible for dim %d", levels, e.Dims[d])
		}
		e.Bases[d] = Basis{Filter: f}
	}
	var nc uint64
	if err := binary.Read(br, binary.LittleEndian, &nc); err != nil {
		return nil, err
	}
	if nc != uint64(size) {
		return nil, fmt.Errorf("propolyne: coefficient count %d != cube size %d", nc, size)
	}
	e.Coeffs = make([]float64, nc)
	buf := make([]byte, 8)
	for i := range e.Coeffs {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("propolyne: truncated coefficients: %w", err)
		}
		e.Coeffs[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf))
	}
	return e, nil
}
