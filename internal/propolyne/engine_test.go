package propolyne

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"aims/internal/datacube"
	"aims/internal/synth"
	"aims/internal/vec"
)

// randomRelation builds a small relation plus its cube for ground truth.
func randomRelation(rng *rand.Rand, sizes []int, n int) *datacube.Relation {
	names := make([]string, len(sizes))
	for i := range names {
		names[i] = string(rune('a' + i))
	}
	r := datacube.NewRelation(datacube.Schema{Names: names, Sizes: sizes})
	for i := 0; i < n; i++ {
		t := make([]int, len(sizes))
		for d, s := range sizes {
			t[d] = rng.Intn(s)
		}
		r.MustAppend(t)
	}
	return r
}

func randomBox(rng *rand.Rand, sizes []int) Box {
	lo := make([]int, len(sizes))
	hi := make([]int, len(sizes))
	for d, s := range sizes {
		lo[d] = rng.Intn(s)
		hi[d] = lo[d] + rng.Intn(s-lo[d])
	}
	return Box{Lo: lo, Hi: hi}
}

func TestNewRejectsBadInput(t *testing.T) {
	if _, err := New(make([]float64, 10), []int{10}, 0); err == nil {
		t.Fatal("non-power-of-two accepted")
	}
	if _, err := New(make([]float64, 8), []int{16}, 0); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if _, err := New(make([]float64, 16), []int{16}, 9); err == nil {
		t.Fatal("impossible degree accepted")
	}
	if _, err := NewWithBases(make([]float64, 16), []int{16}, nil); err == nil {
		t.Fatal("bases arity mismatch accepted")
	}
}

func TestExactCountMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sizes := []int{32, 16}
	rel := randomRelation(rng, sizes, 500)
	e, err := New(rel.Cube(), sizes, 0)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		b := randomBox(rng, sizes)
		want := rel.RangeSum(b.Lo, b.Hi, nil)
		got, err := e.Count(b)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-6*(1+want) {
			t.Fatalf("COUNT %v, want %v (box %v)", got, want, b)
		}
	}
}

func TestExactPolynomialAggregatesMatchNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sizes := []int{32, 16, 8}
	rel := randomRelation(rng, sizes, 800)
	e, err := New(rel.Cube(), sizes, 2) // degree 2 ⇒ db3
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 10; trial++ {
		b := randomBox(rng, sizes)
		// SUM over dim 1.
		want := rel.RangeSum(b.Lo, b.Hi, []vec.Poly{nil, {0, 1}, nil})
		got, err := e.Sum(b, 1)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-5*(1+math.Abs(want)) {
			t.Fatalf("SUM %v, want %v", got, want)
		}
		// SUM of squares over dim 0.
		want2 := rel.RangeSum(b.Lo, b.Hi, []vec.Poly{{0, 0, 1}, nil, nil})
		got2, err := e.SumSquares(b, 0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got2-want2) > 1e-5*(1+math.Abs(want2)) {
			t.Fatalf("SUMSQ %v, want %v", got2, want2)
		}
		// Bilinear: Σ x0·x2.
		want3 := rel.RangeSum(b.Lo, b.Hi, []vec.Poly{{0, 1}, nil, {0, 1}})
		got3, err := e.SumProduct(b, 0, 2)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got3-want3) > 1e-5*(1+math.Abs(want3)) {
			t.Fatalf("SUMPROD %v, want %v", got3, want3)
		}
	}
}

func TestStatisticalAggregates(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sizes := []int{16, 16}
	rel := randomRelation(rng, sizes, 400)
	e, err := New(rel.Cube(), sizes, 2)
	if err != nil {
		t.Fatal(err)
	}
	b := e.FullRange()
	// Reference statistics over raw tuples.
	xs := make([]float64, 0, 400)
	ys := make([]float64, 0, 400)
	for _, tp := range rel.Tuples {
		xs = append(xs, float64(tp[0]))
		ys = append(ys, float64(tp[1]))
	}
	if avg, ok, err := e.Average(b, 0); err != nil || !ok || math.Abs(avg-vec.Mean(xs)) > 1e-6 {
		t.Fatalf("Average = %v ok=%v err=%v, want %v", avg, ok, err, vec.Mean(xs))
	}
	if v, ok, err := e.Variance(b, 0); err != nil || !ok || math.Abs(v-vec.Variance(xs)) > 1e-5 {
		t.Fatalf("Variance = %v ok=%v err=%v, want %v", v, ok, err, vec.Variance(xs))
	}
	if c, ok, err := e.Covariance(b, 0, 1); err != nil || !ok ||
		math.Abs(c-vec.Covariance(xs, ys)) > 1e-5 {
		t.Fatalf("Covariance = %v, want %v", c, vec.Covariance(xs, ys))
	}
	// Covariance with itself equals variance.
	cv, _, err := e.Covariance(b, 0, 0)
	if err != nil || math.Abs(cv-vec.Variance(xs)) > 1e-5 {
		t.Fatalf("Cov(x,x) = %v, want %v", cv, vec.Variance(xs))
	}
}

func TestEmptyBoxAggregates(t *testing.T) {
	sizes := []int{16, 16}
	cube := make([]float64, 256)
	e, err := New(cube, sizes, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := e.Average(e.FullRange(), 0); err != nil || ok {
		t.Fatalf("Average on empty cube: ok=%v err=%v", ok, err)
	}
	if _, ok, _ := e.Variance(e.FullRange(), 0); ok {
		t.Fatal("Variance on empty cube should report !ok")
	}
}

func TestExactMatchesNaiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sizes := []int{16, 8}
		rel := randomRelation(rng, sizes, 100+rng.Intn(200))
		e, err := New(rel.Cube(), sizes, 1)
		if err != nil {
			return false
		}
		b := randomBox(rng, sizes)
		polys := []vec.Poly{nil, {1, 0.5}}
		want := rel.RangeSum(b.Lo, b.Hi, polys)
		got, _, err := e.Exact(Query{Lo: b.Lo, Hi: b.Hi, Polys: polys})
		if err != nil {
			return false
		}
		return math.Abs(got-want) <= 1e-5*(1+math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuerySparsityIsPolylog(t *testing.T) {
	sizes := []int{1 << 12, 1 << 10}
	cube := make([]float64, sizes[0]*sizes[1]>>0)
	_ = cube
	e, err := New(make([]float64, sizes[0]*sizes[1]), sizes, 0) // Haar
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := e.Exact(Query{Lo: []int{100, 37}, Hi: []int{3000, 900}})
	if err != nil {
		t.Fatal(err)
	}
	// Haar COUNT: ≤ ~2·log2(n) per dim.
	if st.PerDim[0] > 3*12 || st.PerDim[1] > 3*10 {
		t.Fatalf("per-dim sparsity %v too high", st.PerDim)
	}
	if st.QueryCoeffs != st.PerDim[0]*st.PerDim[1] {
		t.Fatalf("product size %d != %d·%d", st.QueryCoeffs, st.PerDim[0], st.PerDim[1])
	}
}

func TestAppendMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	sizes := []int{16, 16}
	rel := randomRelation(rng, sizes, 100)
	e, err := New(rel.Cube(), sizes, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Append 30 new tuples incrementally and to the relation.
	for i := 0; i < 30; i++ {
		tp := []int{rng.Intn(16), rng.Intn(16)}
		rel.MustAppend(tp)
		if err := e.Append(tp, 1); err != nil {
			t.Fatal(err)
		}
	}
	rebuilt, err := New(rel.Cube(), sizes, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range e.Coeffs {
		if math.Abs(e.Coeffs[i]-rebuilt.Coeffs[i]) > 1e-8 {
			t.Fatalf("coefficient %d diverged: %v vs %v", i, e.Coeffs[i], rebuilt.Coeffs[i])
		}
	}
	// And queries agree with the naive scan after the appends.
	b := Box{Lo: []int{2, 3}, Hi: []int{12, 14}}
	want := rel.RangeSum(b.Lo, b.Hi, nil)
	got, err := e.Count(b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-6*(1+want) {
		t.Fatalf("post-append COUNT %v, want %v", got, want)
	}
}

func TestAppendValidation(t *testing.T) {
	e, err := New(make([]float64, 256), []int{16, 16}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Append([]int{1}, 1); err == nil {
		t.Fatal("arity accepted")
	}
	if err := e.Append([]int{1, 99}, 1); err == nil {
		t.Fatal("out-of-domain accepted")
	}
}

func TestValidateQueryErrors(t *testing.T) {
	e, _ := New(make([]float64, 256), []int{16, 16}, 0)
	cases := []Query{
		{Lo: []int{0}, Hi: []int{1, 1}},
		{Lo: []int{0, 0}, Hi: []int{16, 1}},
		{Lo: []int{5, 0}, Hi: []int{1, 1}},
	}
	for i, q := range cases {
		if _, _, err := e.Exact(q); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestHybridAgreesWithPureWavelet(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	sizes := []int{8, 256} // small sensor-id-like dim, larger time-like dim
	rel := randomRelation(rng, sizes, 600)
	cube := rel.Cube()

	pure, err := New(cube, sizes, 1)
	if err != nil {
		t.Fatal(err)
	}
	bases, err := ChooseBases(sizes, QueryTemplate{RangeFraction: []float64{0.2, 0.9}, MaxDegree: 1}, DefaultCostModel)
	if err != nil {
		t.Fatal(err)
	}
	// The 8-wide dimension must pick standard (0.2·8 < L·log n).
	if !bases[0].Standard {
		t.Fatalf("small dimension should be standard, got %+v", bases[0])
	}
	if bases[1].Standard {
		t.Fatal("large dimension should be wavelet")
	}
	hyb, err := NewWithBases(cube, sizes, bases)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 15; trial++ {
		b := randomBox(rng, sizes)
		polys := []vec.Poly{nil, {0, 1}}
		q := Query{Lo: b.Lo, Hi: b.Hi, Polys: polys}
		want, _, err := pure.Exact(q)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := hyb.Exact(q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-5*(1+math.Abs(want)) {
			t.Fatalf("hybrid %v vs pure %v", got, want)
		}
	}
}

func TestHybridBeatsPureOnSelectiveSmallDims(t *testing.T) {
	// Cost comparison: a highly selective range on a small dimension should
	// touch fewer coefficients under the hybrid than under pure wavelets.
	rng := rand.New(rand.NewSource(6))
	sizes := []int{8, 256}
	rel := randomRelation(rng, sizes, 500)
	cube := rel.Cube()
	pure, _ := New(cube, sizes, 0)
	hybBases := []Basis{{Standard: true}, {Filter: pure.Bases[1].Filter}}
	hyb, err := NewWithBases(cube, sizes, hybBases)
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Lo: []int{3, 0}, Hi: []int{3, 255}} // single sensor, all time
	_, stPure, _ := pure.Exact(q)
	_, stHyb, _ := hyb.Exact(q)
	if stHyb.QueryCoeffs >= stPure.QueryCoeffs {
		t.Fatalf("hybrid cost %d should beat pure %d", stHyb.QueryCoeffs, stPure.QueryCoeffs)
	}
}

func TestAllStandardMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sizes := []int{16, 16}
	rel := randomRelation(rng, sizes, 300)
	e, err := NewWithBases(rel.Cube(), sizes, AllStandard(sizes))
	if err != nil {
		t.Fatal(err)
	}
	b := randomBox(rng, sizes)
	want := rel.RangeSum(b.Lo, b.Hi, nil)
	got, err := e.Count(b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("standard-basis COUNT %v, want %v", got, want)
	}
}

func TestProgressiveConvergesAndBoundsHold(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	sizes := []int{64, 64}
	cube := synth.SmoothCube(sizes, 1)
	e, err := New(cube, sizes, 0)
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Lo: []int{5, 10}, Hi: []int{50, 60}}
	exact, _, err := e.Exact(q)
	if err != nil {
		t.Fatal(err)
	}
	steps, _, err := e.Progressive(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) == 0 {
		t.Fatal("no steps")
	}
	final := steps[len(steps)-1]
	if math.Abs(final.Estimate-exact) > 1e-6*(1+math.Abs(exact)) {
		t.Fatalf("final estimate %v vs exact %v", final.Estimate, exact)
	}
	for _, s := range steps {
		if math.Abs(s.Estimate-exact) > s.ErrorBound+1e-6 {
			t.Fatalf("error bound violated at %d coeffs: |%v - %v| > %v",
				s.Coefficients, s.Estimate, exact, s.ErrorBound)
		}
	}
	// Error bound decreases to ~0.
	if steps[len(steps)-1].ErrorBound > 1e-6*(1+math.Abs(exact)) {
		t.Fatalf("final bound %v not ≈ 0", steps[len(steps)-1].ErrorBound)
	}
	_ = rng
}

func TestProgressiveCheckpointing(t *testing.T) {
	e, _ := New(synth.SmoothCube([]int{64, 64}, 2), []int{64, 64}, 0)
	q := Query{Lo: []int{0, 0}, Hi: []int{63, 63}}
	steps, _, err := e.Progressive(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) > 12 {
		t.Fatalf("checkpointing failed: %d steps", len(steps))
	}
}

func TestEstimateWithBudget(t *testing.T) {
	e, _ := New(synth.SmoothCube([]int{64, 64}, 3), []int{64, 64}, 0)
	q := Query{Lo: []int{3, 3}, Hi: []int{60, 59}}
	exact, _, _ := e.Exact(q)
	est, bound, err := e.EstimateWithBudget(q, 20)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-exact) > bound+1e-9 {
		t.Fatalf("budget estimate %v vs exact %v exceeds bound %v", est, exact, bound)
	}
	// Budget beyond available coefficients gives the exact answer.
	estAll, _, _ := e.EstimateWithBudget(q, 1<<20)
	if math.Abs(estAll-exact) > 1e-6*(1+math.Abs(exact)) {
		t.Fatalf("full budget %v vs exact %v", estAll, exact)
	}
}

func TestDataApproximationIsDataDependent(t *testing.T) {
	// The paper's E3 claim in miniature: with the same coefficient budget,
	// data approximation is good on smooth data and poor on white data,
	// while query approximation stays accurate on both.
	sizes := []int{64, 64}
	const budget = 150
	smooth := synth.SmoothCube(sizes, 4)
	white := synth.UniformCube(sizes, 40, 5)

	// A workload of moderate-size boxes; aggregate relative error
	// Σ|err| / Σ|exact| as in the ProPolyne evaluation.
	rng := rand.New(rand.NewSource(42))
	boxes := make([]Query, 25)
	for i := range boxes {
		lo := []int{rng.Intn(48), rng.Intn(48)}
		boxes[i] = Query{Lo: lo, Hi: []int{lo[0] + 4 + rng.Intn(12), lo[1] + 4 + rng.Intn(12)}}
	}
	relErr := func(cube []float64) (query, data float64) {
		e, err := New(cube, sizes, 1) // db2: compacts smooth data well
		if err != nil {
			t.Fatal(err)
		}
		approx := e.WithApproximation(budget)
		var qErr, dErr, denom float64
		for _, q := range boxes {
			exact, _, _ := e.Exact(q)
			est, _, _ := e.EstimateWithBudget(q, budget)
			estD, _, _ := approx.Exact(q)
			qErr += math.Abs(est - exact)
			dErr += math.Abs(estD - exact)
			denom += math.Abs(exact)
		}
		return qErr / denom, dErr / denom
	}
	qSmooth, dSmooth := relErr(smooth)
	qWhite, dWhite := relErr(white)
	if qSmooth > 0.05 || qWhite > 0.05 {
		t.Fatalf("query approximation should stay accurate: smooth %v, white %v", qSmooth, qWhite)
	}
	if dWhite < 2*dSmooth {
		t.Fatalf("data approximation should degrade on white data: smooth %v vs white %v",
			dSmooth, dWhite)
	}
}

func TestExplainQuery(t *testing.T) {
	sizes := []int{8, 256}
	bases := []Basis{{Standard: true}, {}}
	f, _ := AllWavelet([]int{256}, 1)
	bases[1] = f[0]
	e, err := NewWithBases(make([]float64, 8*256), sizes, bases)
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Lo: []int{2, 10}, Hi: []int{5, 200}, Polys: []vec.Poly{nil, {0, 1}}}
	ex, err := e.ExplainQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.PerDim) != 2 {
		t.Fatalf("plan dims %d", len(ex.PerDim))
	}
	if ex.PerDim[0].Basis != "standard" || ex.PerDim[0].Nonzeros != 4 {
		t.Fatalf("dim 0 plan: %+v", ex.PerDim[0])
	}
	if ex.PerDim[1].Basis != "db2" || ex.PerDim[1].Degree != 1 {
		t.Fatalf("dim 1 plan: %+v", ex.PerDim[1])
	}
	if ex.QueryCoeffs != ex.PerDim[0].Nonzeros*ex.PerDim[1].Nonzeros {
		t.Fatal("plan cost inconsistent")
	}
	// The plan's cost matches the executed cost.
	_, st, err := e.Exact(q)
	if err != nil {
		t.Fatal(err)
	}
	if st.QueryCoeffs != ex.QueryCoeffs {
		t.Fatalf("explain %d vs executed %d", ex.QueryCoeffs, st.QueryCoeffs)
	}
	if s := ex.String(); len(s) == 0 {
		t.Fatal("empty explain string")
	}
	if _, err := e.ExplainQuery(Query{Lo: []int{0}, Hi: []int{1, 1}}); err == nil {
		t.Fatal("bad query accepted")
	}
}

func TestCovarianceMatrixSymmetricPSDish(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	sizes := []int{16, 16, 16}
	rel := randomRelation(rng, sizes, 500)
	e, err := New(rel.Cube(), sizes, 2)
	if err != nil {
		t.Fatal(err)
	}
	m, ok, err := e.CovarianceMatrix(e.FullRange(), []int{0, 1, 2})
	if err != nil || !ok {
		t.Fatalf("CovarianceMatrix: ok=%v err=%v", ok, err)
	}
	for i := range m {
		for j := range m {
			if math.Abs(m[i][j]-m[j][i]) > 1e-9 {
				t.Fatalf("not symmetric at %d,%d", i, j)
			}
		}
		if m[i][i] < -1e-9 {
			t.Fatalf("negative variance on diagonal: %v", m[i][i])
		}
	}
}

func TestAppendBatchMatchesSequentialAppend(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	sizes := []int{16, 32}
	rel := randomRelation(rng, sizes, 80)
	batched, err := New(rel.Cube(), sizes, 1)
	if err != nil {
		t.Fatal(err)
	}
	oneByOne, err := New(rel.Cube(), sizes, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate indices and non-unit weights, so the per-dimension vector
	// cache and the delta accumulation both get exercised.
	tuples := make([]Tuple, 0, 60)
	for i := 0; i < 60; i++ {
		tp := []int{rng.Intn(16) % 4, rng.Intn(32) % 8} // heavy collisions
		w := float64(1 + rng.Intn(3))
		tuples = append(tuples, Tuple{Index: tp, Weight: w})
		if err := oneByOne.Append(tp, w); err != nil {
			t.Fatal(err)
		}
	}
	if err := batched.AppendBatch(tuples); err != nil {
		t.Fatal(err)
	}
	for i := range batched.Coeffs {
		if math.Abs(batched.Coeffs[i]-oneByOne.Coeffs[i]) > 1e-8 {
			t.Fatalf("coefficient %d diverged: %v vs %v", i, batched.Coeffs[i], oneByOne.Coeffs[i])
		}
	}
}

func TestAppendBatchValidationIsAtomic(t *testing.T) {
	e, err := New(make([]float64, 256), []int{16, 16}, 0)
	if err != nil {
		t.Fatal(err)
	}
	before := append([]float64(nil), e.Coeffs...)
	batch := []Tuple{
		{Index: []int{1, 1}, Weight: 1},
		{Index: []int{1, 99}, Weight: 1}, // out of domain
	}
	if err := e.AppendBatch(batch); err == nil {
		t.Fatal("out-of-domain tuple accepted")
	}
	if err := e.AppendBatch([]Tuple{{Index: []int{1}, Weight: 1}}); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	for i := range before {
		if e.Coeffs[i] != before[i] {
			t.Fatal("failed batch mutated the engine")
		}
	}
	if err := e.AppendBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
}
