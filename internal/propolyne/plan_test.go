package propolyne

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"aims/internal/vec"
)

// legacyExact evaluates q through the retained map-based reference path
// (queryVectors + tensor-product recursion) — the independent oracle the
// compiled plans are checked against.
func legacyExact(t *testing.T, e *Engine, q Query) float64 {
	t.Helper()
	vecs, err := e.queryVectors(q)
	if err != nil {
		t.Fatal(err)
	}
	strides := e.Dims.Strides()
	var sum float64
	var rec func(d, off int, w float64)
	rec = func(d, off int, w float64) {
		if d == len(vecs) {
			sum += w * e.Coeffs[off]
			return
		}
		for i, v := range vecs[d] {
			rec(d+1, off+i*strides[d], w*v)
		}
	}
	rec(0, 0, 1)
	return sum
}

// randomPoly draws a polynomial of degree ≤ maxDeg (nil ≈ constant 1 with
// some probability, matching how callers pass queries).
func randomPoly(rng *rand.Rand, maxDeg int) vec.Poly {
	if rng.Intn(3) == 0 {
		return nil
	}
	p := make(vec.Poly, rng.Intn(maxDeg+1)+1)
	for i := range p {
		p[i] = math.Round(rng.NormFloat64()*4) / 2 // small half-integer coeffs
	}
	if len(p) == 1 && p[0] == 0 {
		p[0] = 1
	}
	return p
}

// TestPlanDotMatchesLegacy is the plan-vs-legacy equivalence property:
// across random geometries (pure wavelet, hybrid, pure standard), random
// boxes and random polynomial degrees, Plan.Dot must agree with the
// map-based reference evaluation.
func TestPlanDotMatchesLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	sizeChoices := []int{4, 8, 16, 32}
	for trial := 0; trial < 60; trial++ {
		nd := 1 + rng.Intn(3)
		sizes := make([]int, nd)
		for d := range sizes {
			sizes[d] = sizeChoices[rng.Intn(len(sizeChoices))]
		}
		rel := randomRelation(rng, sizes, 50+rng.Intn(200))
		maxDeg := rng.Intn(3)
		base, err := New(rel.Cube(), sizes, maxDeg)
		if err != nil {
			t.Fatal(err)
		}
		bases := make([]Basis, nd)
		for d := range bases {
			if rng.Intn(5) < 2 {
				bases[d] = Basis{Standard: true}
			} else {
				bases[d] = Basis{Filter: base.Bases[d].Filter}
			}
		}
		e, err := NewWithBases(rel.Cube(), sizes, bases)
		if err != nil {
			t.Fatal(err)
		}
		for qi := 0; qi < 5; qi++ {
			b := randomBox(rng, sizes)
			polys := make([]vec.Poly, nd)
			for d := range polys {
				polys[d] = randomPoly(rng, maxDeg)
			}
			q := Query{Lo: b.Lo, Hi: b.Hi, Polys: polys}
			want := legacyExact(t, e, q)
			p, err := e.CompilePlan(q)
			if err != nil {
				t.Fatal(err)
			}
			got := p.Dot(e.Coeffs)
			if math.Abs(got-want) > 1e-8*(1+math.Abs(want)) {
				t.Fatalf("trial %d: plan %v vs legacy %v (sizes %v bases %+v q %+v)",
					trial, got, want, sizes, bases, q)
			}
			// The cached surface must agree with the direct compile.
			viaExact, _, err := e.Exact(q)
			if err != nil {
				t.Fatal(err)
			}
			if viaExact != got {
				t.Fatalf("Exact %v != Dot %v", viaExact, got)
			}
		}
	}
}

// TestRepeatEvaluationBitIdentical pins the determinism contract: the same
// query over the same coefficients returns the exact same bits, whether the
// plan is cache-hit or recompiled from scratch — the property the fleet
// bit-identical-merge contract leans on.
func TestRepeatEvaluationBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sizes := []int{32, 16, 8}
	rel := randomRelation(rng, sizes, 600)
	e, err := New(rel.Cube(), sizes, 2)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 10; trial++ {
		b := randomBox(rng, sizes)
		q := Query{Lo: b.Lo, Hi: b.Hi, Polys: []vec.Poly{nil, {0, 1}, {0, 0, 1}}}
		first, _, err := e.Exact(q)
		if err != nil {
			t.Fatal(err)
		}
		for rep := 0; rep < 5; rep++ {
			if rep == 2 {
				SharedCache.Purge() // force a recompile mid-sequence
			}
			again, _, err := e.Exact(q)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(again) != math.Float64bits(first) {
				t.Fatalf("trial %d rep %d: %x != %x", trial, rep,
					math.Float64bits(again), math.Float64bits(first))
			}
		}
		// Approximate answers are deterministic too: the plan's ordering is
		// a total order, so the budgeted prefix is always the same set.
		est1, bound1, err := e.EstimateWithBudget(q, 37)
		if err != nil {
			t.Fatal(err)
		}
		SharedCache.Purge()
		est2, bound2, err := e.EstimateWithBudget(q, 37)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(est1) != math.Float64bits(est2) ||
			math.Float64bits(bound1) != math.Float64bits(bound2) {
			t.Fatalf("budgeted estimate drifted: %v/%v vs %v/%v", est1, bound1, est2, bound2)
		}
	}
}

// TestQueryCoefficientsAscending: the flattened tensor product comes back
// in strictly ascending flat-offset order (the deterministic total order).
func TestQueryCoefficientsAscending(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	sizes := []int{16, 32}
	rel := randomRelation(rng, sizes, 300)
	e, err := New(rel.Cube(), sizes, 1)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 10; trial++ {
		b := randomBox(rng, sizes)
		entries, st, err := e.QueryCoefficients(Query{Lo: b.Lo, Hi: b.Hi})
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != st.QueryCoeffs {
			t.Fatalf("entry count %d != stats %d", len(entries), st.QueryCoeffs)
		}
		for i := 1; i < len(entries); i++ {
			if entries[i].Index <= entries[i-1].Index {
				t.Fatalf("offsets not strictly ascending at %d: %d then %d",
					i, entries[i-1].Index, entries[i].Index)
			}
		}
	}
}

// TestGroupByExactDeterministic: the grouped answer vector is bit-identical
// across repeats (the old map-ordered accumulation was not).
func TestGroupByExactDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sizes := []int{8, 64}
	rel := randomRelation(rng, sizes, 500)
	e, err := New(rel.Cube(), sizes, 1)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGroupBy(e.FullRange(), []vec.Poly{nil, {0, 1}}, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	first, err := e.GroupByExact(g)
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 5; rep++ {
		if rep == 2 {
			SharedCache.Purge()
		}
		again, err := e.GroupByExact(g)
		if err != nil {
			t.Fatal(err)
		}
		for i := range first.Values {
			if math.Float64bits(first.Values[i]) != math.Float64bits(again.Values[i]) {
				t.Fatalf("rep %d bucket %d: %v != %v", rep, i, again.Values[i], first.Values[i])
			}
		}
		if again.SharedCoeffs != first.SharedCoeffs || again.IndividualCoeffs != first.IndividualCoeffs {
			t.Fatalf("coeff accounting drifted: %+v vs %+v", again, first)
		}
	}
}

// TestStandardDimRunSpan: a standard dimension compiles to an O(1) run
// span, not a materialised per-index vector, and still evaluates right.
func TestStandardDimRunSpan(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	sizes := []int{1024, 8}
	rel := randomRelation(rng, sizes, 400)
	base, _ := New(rel.Cube(), sizes, 1)
	e, err := NewWithBases(rel.Cube(), sizes, []Basis{{Standard: true}, {Filter: base.Bases[1].Filter}})
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Lo: []int{0, 0}, Hi: []int{1023, 7}} // whole standard range
	p, err := e.CompilePlan(q)
	if err != nil {
		t.Fatal(err)
	}
	if !p.terms[0].run || p.terms[0].entries != nil {
		t.Fatalf("standard dim should compile to a run span, got %+v", p.terms[0])
	}
	if got := p.stats.PerDim[0]; got != 1024 {
		t.Fatalf("run width %d != 1024", got)
	}
	want := legacyExact(t, e, q)
	if got := p.Dot(e.Coeffs); math.Abs(got-want) > 1e-8*(1+math.Abs(want)) {
		t.Fatalf("run-span dot %v vs legacy %v", got, want)
	}
	// Non-constant polynomial over the span: evaluated on the fly.
	q2 := Query{Lo: []int{5, 1}, Hi: []int{900, 6}, Polys: []vec.Poly{{0, 1}, nil}}
	p2, err := e.CompilePlan(q2)
	if err != nil {
		t.Fatal(err)
	}
	if !p2.terms[0].run || p2.terms[0].isConst {
		t.Fatalf("degree-1 standard term should be a non-const run, got %+v", p2.terms[0])
	}
	want2 := legacyExact(t, e, q2)
	if got2 := p2.Dot(e.Coeffs); math.Abs(got2-want2) > 1e-8*(1+math.Abs(want2)) {
		t.Fatalf("poly run dot %v vs legacy %v", got2, want2)
	}
}

// TestProgressiveMatchesPlanOrdering: the progressive trajectory still ends
// exact and its bounds stay sound, now that ordering lives in the plan.
func TestProgressivePlanPathStaysSound(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	sizes := []int{64, 32}
	rel := randomRelation(rng, sizes, 700)
	e, err := New(rel.Cube(), sizes, 0)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 8; trial++ {
		b := randomBox(rng, sizes)
		q := Query{Lo: b.Lo, Hi: b.Hi}
		exact, _, err := e.Exact(q)
		if err != nil {
			t.Fatal(err)
		}
		steps, _, err := e.Progressive(q, 20)
		if err != nil {
			t.Fatal(err)
		}
		final := steps[len(steps)-1]
		if math.Abs(final.Estimate-exact) > 1e-8*(1+math.Abs(exact)) {
			t.Fatalf("final progressive %v != exact %v", final.Estimate, exact)
		}
		for _, s := range steps {
			if math.Abs(s.Estimate-exact) > s.ErrorBound+1e-8*(1+math.Abs(exact)) {
				t.Fatalf("bound violated at %d coeffs: |%v-%v| > %v",
					s.Coefficients, s.Estimate, exact, s.ErrorBound)
			}
		}
	}
}

// TestPlanDotConcurrent exercises the pooled scratch path from many
// goroutines at once (run under -race in CI).
func TestPlanDotConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	sizes := []int{64, 64}
	rel := randomRelation(rng, sizes, 800)
	e, err := New(rel.Cube(), sizes, 1)
	if err != nil {
		t.Fatal(err)
	}
	b := randomBox(rng, sizes)
	q := Query{Lo: b.Lo, Hi: b.Hi, Polys: []vec.Poly{nil, {0, 1}}}
	p, err := e.CompilePlan(q)
	if err != nil {
		t.Fatal(err)
	}
	want := p.Dot(e.Coeffs)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if got := e.EvalPlan(p); math.Float64bits(got) != math.Float64bits(want) {
					t.Errorf("concurrent Dot drifted: %v != %v", got, want)
					return
				}
			}
		}()
	}
	wg.Wait()
}
