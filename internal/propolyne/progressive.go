package propolyne

import (
	"math"
	"sort"
)

// Step is one state of a progressive evaluation: after using the given
// number of (largest-first) query coefficients, Estimate is the running
// answer and ErrorBound a guaranteed |exact − Estimate| bound from
// Cauchy–Schwarz on the unevaluated query mass.
type Step struct {
	Coefficients int
	Estimate     float64
	ErrorBound   float64
}

// Progressive evaluates a query by retrieving data coefficients in order
// of decreasing query-coefficient magnitude — "using the most important
// query wavelet coefficients first" — and reports the trajectory of the
// running estimate. maxSteps bounds the number of emitted checkpoints
// (≤ 0 means every coefficient); the final step is always exact.
func (e *Engine) Progressive(q Query, maxSteps int) ([]Step, Stats, error) {
	entries, st, err := e.QueryCoefficients(q)
	if err != nil {
		return nil, st, err
	}
	sort.Slice(entries, func(i, j int) bool {
		ai, aj := math.Abs(entries[i].Value), math.Abs(entries[j].Value)
		if ai != aj {
			return ai > aj
		}
		return entries[i].Index < entries[j].Index
	})

	// Suffix query energy for the error bound.
	suffix := make([]float64, len(entries)+1)
	for i := len(entries) - 1; i >= 0; i-- {
		suffix[i] = suffix[i+1] + entries[i].Value*entries[i].Value
	}
	dataNorm := math.Sqrt(e.Energy())

	every := 1
	if maxSteps > 0 && len(entries) > maxSteps {
		every = (len(entries) + maxSteps - 1) / maxSteps
	}
	var est float64
	steps := make([]Step, 0, len(entries)/every+1)
	e.mu.RLock()
	defer e.mu.RUnlock()
	for i, en := range entries {
		est += en.Value * e.Coeffs[en.Index]
		if (i+1)%every == 0 || i == len(entries)-1 {
			steps = append(steps, Step{
				Coefficients: i + 1,
				Estimate:     est,
				ErrorBound:   math.Sqrt(suffix[i+1]) * dataNorm,
			})
		}
	}
	if len(entries) == 0 {
		steps = append(steps, Step{})
	}
	return steps, st, nil
}

// EstimateWithBudget returns the approximate answer after spending at most
// budget query coefficients, plus the exact answer's guaranteed error
// bound at that point.
func (e *Engine) EstimateWithBudget(q Query, budget int) (estimate, bound float64, err error) {
	entries, _, err := e.QueryCoefficients(q)
	if err != nil {
		return 0, 0, err
	}
	sort.Slice(entries, func(i, j int) bool {
		ai, aj := math.Abs(entries[i].Value), math.Abs(entries[j].Value)
		if ai != aj {
			return ai > aj
		}
		return entries[i].Index < entries[j].Index
	})
	if budget > len(entries) {
		budget = len(entries)
	}
	var est, rem float64
	e.mu.RLock()
	for i, en := range entries {
		if i < budget {
			est += en.Value * e.Coeffs[en.Index]
		} else {
			rem += en.Value * en.Value
		}
	}
	e.mu.RUnlock()
	return est, math.Sqrt(rem) * math.Sqrt(e.Energy()), nil
}
