package propolyne

import (
	"math"
	"time"
)

// Step is one state of a progressive evaluation: after using the given
// number of (largest-first) query coefficients, Estimate is the running
// answer and ErrorBound a guaranteed |exact − Estimate| bound from
// Cauchy–Schwarz on the unevaluated query mass.
type Step struct {
	Coefficients int
	Estimate     float64
	ErrorBound   float64
}

// Progressive evaluates a query by retrieving data coefficients in order
// of decreasing query-coefficient magnitude — "using the most important
// query wavelet coefficients first" — and reports the trajectory of the
// running estimate. maxSteps bounds the number of emitted checkpoints
// (≤ 0 means every coefficient); the final step is always exact.
func (e *Engine) Progressive(q Query, maxSteps int) ([]Step, Stats, error) {
	return e.ProgressiveTraced(q, maxSteps, nil)
}

// ProgressiveTraced is Progressive with per-call plan provenance: when pt
// is non-nil it records the plan-cache outcome, the evaluation time of the
// coefficient walk, and the coefficients spent.
func (e *Engine) ProgressiveTraced(q Query, maxSteps int, pt *PlanTrace) ([]Step, Stats, error) {
	p, err := e.planTraced(q, pt)
	if err != nil {
		return nil, Stats{}, err
	}
	st := p.Stats()
	// The retrieval order and suffix query energies are part of the
	// compiled plan — ordered once, shared by every progressive run.
	entries, suffix := p.Ordered()
	dataNorm := math.Sqrt(e.Energy())

	every := 1
	if maxSteps > 0 && len(entries) > maxSteps {
		every = (len(entries) + maxSteps - 1) / maxSteps
	}
	var t0 time.Time
	if pt != nil {
		t0 = time.Now()
	}
	var est float64
	steps := make([]Step, 0, len(entries)/every+1)
	e.mu.RLock()
	for i, en := range entries {
		est += en.Value * e.Coeffs[en.Index]
		if (i+1)%every == 0 || i == len(entries)-1 {
			steps = append(steps, Step{
				Coefficients: i + 1,
				Estimate:     est,
				ErrorBound:   math.Sqrt(suffix[i+1]) * dataNorm,
			})
		}
	}
	e.mu.RUnlock()
	if pt != nil {
		pt.EvalNS = time.Since(t0).Nanoseconds()
		pt.Coefficients = len(entries)
	}
	if len(entries) == 0 {
		steps = append(steps, Step{})
	}
	return steps, st, nil
}

// EstimateWithBudget returns the approximate answer after spending at most
// budget query coefficients, plus the exact answer's guaranteed error
// bound at that point.
func (e *Engine) EstimateWithBudget(q Query, budget int) (estimate, bound float64, err error) {
	return e.EstimateWithBudgetTraced(q, budget, nil)
}

// EstimateWithBudgetTraced is EstimateWithBudget with per-call plan
// provenance recorded into a non-nil pt.
func (e *Engine) EstimateWithBudgetTraced(q Query, budget int, pt *PlanTrace) (estimate, bound float64, err error) {
	p, err := e.planTraced(q, pt)
	if err != nil {
		return 0, 0, err
	}
	entries, suffix := p.Ordered()
	if budget > len(entries) {
		budget = len(entries)
	}
	if budget < 0 {
		budget = 0
	}
	var t0 time.Time
	if pt != nil {
		t0 = time.Now()
	}
	var est float64
	e.mu.RLock()
	for i := 0; i < budget; i++ {
		est += entries[i].Value * e.Coeffs[entries[i].Index]
	}
	e.mu.RUnlock()
	if pt != nil {
		pt.EvalNS = time.Since(t0).Nanoseconds()
		pt.Coefficients = budget
	}
	// suffix[budget] is the unevaluated query mass — precomputed at plan
	// ordering time, so the budgeted path does no per-call energy pass.
	return est, math.Sqrt(suffix[budget]) * math.Sqrt(e.Energy()), nil
}
