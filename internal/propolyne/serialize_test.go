package propolyne

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"aims/internal/synth"
)

func TestEngineSerializeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sizes := []int{32, 16, 8}
	rel := randomRelation(rng, sizes, 600)
	bases, err := ChooseBases(sizes, QueryTemplate{
		RangeFraction: []float64{0.1, 0.9, 1},
		MaxDegree:     2,
	}, DefaultCostModel)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := NewWithBases(rel.Cube(), sizes, bases)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEngine(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Structure round-trips.
	for d := range sizes {
		if back.Dims[d] != orig.Dims[d] || back.Levels[d] != orig.Levels[d] {
			t.Fatalf("dim %d metadata mismatch", d)
		}
		if back.Bases[d].Standard != orig.Bases[d].Standard {
			t.Fatalf("dim %d basis kind mismatch", d)
		}
		if !orig.Bases[d].Standard && back.Bases[d].Filter.Name != orig.Bases[d].Filter.Name {
			t.Fatalf("dim %d filter mismatch", d)
		}
	}
	for i := range orig.Coeffs {
		if back.Coeffs[i] != orig.Coeffs[i] {
			t.Fatalf("coefficient %d differs", i)
		}
	}

	// Queries agree exactly.
	b := randomBox(rng, sizes)
	q := Query{Lo: b.Lo, Hi: b.Hi}
	v1, _, err := orig.Exact(q)
	if err != nil {
		t.Fatal(err)
	}
	v2, _, err := back.Exact(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v1-v2) > 1e-12 {
		t.Fatalf("query drift: %v vs %v", v1, v2)
	}
	// The restored engine accepts appends (filters intact).
	if err := back.Append([]int{1, 2, 3}, 1); err != nil {
		t.Fatal(err)
	}
}

func TestReadEngineRejectsCorruption(t *testing.T) {
	e, err := New(synth.SmoothCube([]int{16, 16}, 2), []int{16, 16}, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := e.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := map[string][]byte{
		"empty":           {},
		"bad magic":       append([]byte("NOTAIMS!"), good[8:]...),
		"truncated":       good[:len(good)-9],
		"truncated early": good[:14],
	}
	for name, data := range cases {
		if _, err := ReadEngine(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: corruption accepted", name)
		}
	}

	// Bad dimension size (non power of two) rejected.
	mut := append([]byte(nil), good...)
	mut[12] = 7 // first dim least-significant byte → 7
	if _, err := ReadEngine(bytes.NewReader(mut)); err == nil {
		t.Error("non-power-of-two dimension accepted")
	}
}
