package propolyne

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"testing"

	"aims/internal/synth"
)

func TestEngineSerializeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sizes := []int{32, 16, 8}
	rel := randomRelation(rng, sizes, 600)
	bases, err := ChooseBases(sizes, QueryTemplate{
		RangeFraction: []float64{0.1, 0.9, 1},
		MaxDegree:     2,
	}, DefaultCostModel)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := NewWithBases(rel.Cube(), sizes, bases)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEngine(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Structure round-trips.
	for d := range sizes {
		if back.Dims[d] != orig.Dims[d] || back.Levels[d] != orig.Levels[d] {
			t.Fatalf("dim %d metadata mismatch", d)
		}
		if back.Bases[d].Standard != orig.Bases[d].Standard {
			t.Fatalf("dim %d basis kind mismatch", d)
		}
		if !orig.Bases[d].Standard && back.Bases[d].Filter.Name != orig.Bases[d].Filter.Name {
			t.Fatalf("dim %d filter mismatch", d)
		}
	}
	for i := range orig.Coeffs {
		if back.Coeffs[i] != orig.Coeffs[i] {
			t.Fatalf("coefficient %d differs", i)
		}
	}

	// Queries agree exactly.
	b := randomBox(rng, sizes)
	q := Query{Lo: b.Lo, Hi: b.Hi}
	v1, _, err := orig.Exact(q)
	if err != nil {
		t.Fatal(err)
	}
	v2, _, err := back.Exact(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v1-v2) > 1e-12 {
		t.Fatalf("query drift: %v vs %v", v1, v2)
	}
	// The restored engine accepts appends (filters intact).
	if err := back.Append([]int{1, 2, 3}, 1); err != nil {
		t.Fatal(err)
	}
}

func TestReadEngineRejectsCorruption(t *testing.T) {
	e, err := New(synth.SmoothCube([]int{16, 16}, 2), []int{16, 16}, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := e.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := map[string][]byte{
		"empty":           {},
		"bad magic":       append([]byte("NOTAIMS!"), good[8:]...),
		"truncated":       good[:len(good)-9],
		"truncated early": good[:14],
	}
	for name, data := range cases {
		if _, err := ReadEngine(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: corruption accepted", name)
		}
	}

	// Bad dimension size (non power of two) rejected.
	mut := append([]byte(nil), good...)
	mut[12] = 7 // first dim least-significant byte → 7
	if _, err := ReadEngine(bytes.NewReader(mut)); err == nil {
		t.Error("non-power-of-two dimension accepted")
	}
}

// TestReadEngineNoOverAllocation hand-crafts headers whose length fields
// describe cubes far larger than the payload (or than memory); the reader
// must reject them before allocating, and must survive every prefix
// truncation of a valid blob without panicking.
func TestReadEngineNoOverAllocation(t *testing.T) {
	header := func(dims []uint32) []byte {
		var b bytes.Buffer
		b.Write([]byte("AIMSPPE1"))
		binary.Write(&b, binary.LittleEndian, uint32(len(dims)))
		for _, d := range dims {
			binary.Write(&b, binary.LittleEndian, d)
		}
		return b.Bytes()
	}
	for name, data := range map[string][]byte{
		// 16 maximal dims: the naive product overflows int64 back into
		// small positives; must be caught by the cell cap, not the wrap.
		"overflowing dims": header([]uint32{
			1 << 24, 1 << 24, 1 << 24, 1 << 24, 1 << 24, 1 << 24, 1 << 24, 1 << 24,
			1 << 24, 1 << 24, 1 << 24, 1 << 24, 1 << 24, 1 << 24, 1 << 24, 1 << 24,
		}),
		"huge cube": header([]uint32{1 << 24, 1 << 24}),
	} {
		if _, err := ReadEngine(bytes.NewReader(data)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}

	e, err := New(synth.SmoothCube([]int{8, 8}, 2), []int{8, 8}, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := e.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	for i := 0; i < len(good); i++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("prefix %d panicked: %v", i, r)
				}
			}()
			if _, err := ReadEngine(bytes.NewReader(good[:i])); err == nil {
				t.Errorf("prefix %d accepted", i)
			}
		}()
	}
}
