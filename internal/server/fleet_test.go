package server

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"aims/internal/wire"
)

// fleetClient registers one session of the given class and streams its
// frames, leaving the connection open for queries.
func fleetClient(t *testing.T, addr, name, class string, cl, frames, channels int) *wire.Client {
	t.Helper()
	mins, maxs := ranges(channels)
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Abort() })
	c.Window = 4
	if _, err := c.Hello(wire.Hello{
		Rate: 100, HorizonTicks: uint32(frames), Name: name, Class: class,
		Mins: mins, Maxs: maxs,
	}); err != nil {
		t.Fatal(err)
	}
	all := clientFrames(cl, frames, channels)
	for off := 0; off < len(all); off += 100 {
		end := off + 100
		if end > len(all) {
			end = len(all)
		}
		if err := c.SendBatch(all[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestFleetQueryAcrossSessions is the end-to-end fleet test: gloves and
// trackers register under their device classes, one client asks fleet
// questions over the wire, and the merged answers must equal merging each
// session's own answer client-side.
func TestFleetQueryAcrossSessions(t *testing.T) {
	const (
		gloves, trackers = 4, 2
		frames, channels = 1200, 3
	)
	srv, addr := startServer(t, Config{Store: testStoreCfg()})

	clients := make([]*wire.Client, 0, gloves+trackers)
	for i := 0; i < gloves; i++ {
		clients = append(clients, fleetClient(t, addr, fmt.Sprintf("glove-%d", i), "cyberglove", i, frames, channels))
	}
	for i := 0; i < trackers; i++ {
		clients = append(clients, fleetClient(t, addr, fmt.Sprintf("tracker-%d", i), "tracker", gloves+i, frames, channels))
	}

	// Per-session ground truth over the wire: each glove's own COUNT and
	// AVERAGE moments, merged client-side.
	const t0, t1 = 1.0, 9.0
	var wantCount, wantSum float64
	for _, c := range clients[:gloves] {
		r, err := c.Query(wire.Query{Kind: wire.QueryCount, Channel: 1, T0: t0, T1: t1})
		if err != nil {
			t.Fatal(err)
		}
		a, err := c.Query(wire.Query{Kind: wire.QueryAverage, Channel: 1, T0: t0, T1: t1})
		if err != nil {
			t.Fatal(err)
		}
		wantCount += r.Value
		wantSum += a.Value * r.Value
	}

	asker := clients[0]
	fr, err := asker.FleetQuery(wire.FleetQuery{
		Query: wire.Query{Kind: wire.QueryCount, Channel: 1, T0: t0, T1: t1},
		Scope: wire.FleetScope{Class: "cyberglove"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !fr.OK || fr.Code != wire.CodeOK {
		t.Fatalf("fleet count: %+v", fr)
	}
	if fr.Sessions != gloves || fr.Merged != gloves || len(fr.Parts) != gloves {
		t.Fatalf("fleet shape: %+v", fr)
	}
	if fr.Value != wantCount {
		t.Fatalf("fleet count %v != client-side merge %v", fr.Value, wantCount)
	}
	for _, p := range fr.Parts {
		if p.Frames != frames {
			t.Fatalf("session %d watermark %d, want %d", p.ID, p.Frames, frames)
		}
	}

	fa, err := asker.FleetQuery(wire.FleetQuery{
		Query: wire.Query{Kind: wire.QueryAverage, Channel: 1, T0: t0, T1: t1},
		Scope: wire.FleetScope{Class: "cyberglove"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !fa.OK {
		t.Fatalf("fleet average: %+v", fa)
	}
	if want := wantSum / wantCount; math.Abs(fa.Value-want) > 1e-9*math.Max(1, math.Abs(want)) {
		t.Fatalf("fleet average %v != weighted client-side merge %v", fa.Value, want)
	}

	// Scope by explicit IDs spanning both classes, with one bogus ID under
	// the partial policy: the live sessions answer, the bogus ID comes
	// back as typed per-session failure detail.
	ids := []uint64{clients[0].SessionID(), clients[gloves].SessionID(), 9999}
	fp, err := asker.FleetQuery(wire.FleetQuery{
		Query:   wire.Query{Kind: wire.QueryCount, Channel: 0, T0: 0, T1: 100},
		Scope:   wire.FleetScope{IDs: ids},
		Partial: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !fp.OK || fp.Code != wire.CodePartial || fp.Merged != 2 || len(fp.Failures) != 1 {
		t.Fatalf("partial fleet: %+v", fp)
	}
	if f := fp.Failures[0]; f.ID != 9999 || f.Code != wire.CodeNotRegistered {
		t.Fatalf("failure detail: %+v", f)
	}

	// The same query under the fail policy reports the failure code and no
	// merged value.
	ff, err := asker.FleetQuery(wire.FleetQuery{
		Query: wire.Query{Kind: wire.QueryCount, Channel: 0, T0: 0, T1: 100},
		Scope: wire.FleetScope{IDs: ids},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ff.OK || ff.Code != wire.CodeNotRegistered || ff.Value != 0 {
		t.Fatalf("fail-policy fleet: %+v", ff)
	}

	// An unknown class is a clean no-sessions answer.
	fn, err := asker.FleetQuery(wire.FleetQuery{
		Query: wire.Query{Kind: wire.QueryCount, Channel: 0, T0: 0, T1: 1},
		Scope: wire.FleetScope{Class: "hmd"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if fn.OK || fn.Code != wire.CodeNoSessions {
		t.Fatalf("no-sessions fleet: %+v", fn)
	}

	// Device-class inventory feeds the /fleet admin endpoint.
	classes := srv.DeviceClasses()
	if classes["cyberglove"] != gloves || classes["tracker"] != trackers {
		t.Fatalf("device classes: %v", classes)
	}
	rec := httptest.NewRecorder()
	srv.AdminHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/fleet", nil))
	var listing struct {
		Count   int              `json:"count"`
		Classes []FleetClassInfo `json:"classes"`
	}
	if err := json.NewDecoder(rec.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	if listing.Count != 2 || listing.Classes[0].Class != "cyberglove" || listing.Classes[0].Sessions != gloves {
		t.Fatalf("/fleet listing: %+v", listing)
	}

	// Approximate fleet: merged estimate within the merged (summed) bound
	// of the exact merged count.
	fx, err := asker.FleetQuery(wire.FleetQuery{
		Query: wire.Query{Kind: wire.QueryApproxCount, Channel: 1, T0: t0, T1: t1, Arg: 24},
		Scope: wire.FleetScope{Class: "cyberglove"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !fx.OK {
		t.Fatalf("approx fleet: %+v", fx)
	}
	if math.Abs(fx.Value-wantCount) > fx.Bound+1e-6 {
		t.Fatalf("approx fleet %v vs exact %v outside bound %v", fx.Value, wantCount, fx.Bound)
	}

	// A malformed range must be rejected at decode (typed), closing the
	// offending connection only.
	bad, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer bad.Abort()
	mins, maxs := ranges(1)
	if _, err := bad.Hello(wire.Hello{Rate: 100, Mins: mins, Maxs: maxs, Class: "probe"}); err != nil {
		t.Fatal(err)
	}
	_, err = bad.FleetQuery(wire.FleetQuery{
		Query: wire.Query{Kind: wire.QueryCount, T0: 5, T1: 1},
		Scope: wire.FleetScope{Class: "cyberglove"},
	})
	if err == nil {
		t.Fatal("inverted range accepted")
	}
}

// TestRegistryChurnDuringFleetScan (satellite): concurrent register/
// unregister while fleet scans snapshot the registry, under -race. Any
// session live for the whole scan must appear exactly once; no snapshot
// may ever contain a duplicate or a stale (removed-before-scan) session.
func TestRegistryChurnDuringFleetScan(t *testing.T) {
	r := newRegistry()

	// A stable population that must never be missed or double-counted.
	const stable = 500
	for id := uint64(1); id <= stable; id++ {
		r.put(id, &session{id: id})
	}

	const churners = 8
	const churnPerWorker = 2000
	var nextID atomic.Uint64
	nextID.Store(stable)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < churners; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < churnPerWorker; i++ {
				id := nextID.Add(1)
				r.put(id, &session{id: id})
				select {
				case <-stop:
					r.remove(id)
					return
				default:
				}
				r.remove(id)
			}
		}()
	}

	for scan := 0; scan < 200; scan++ {
		snap := r.snapshot()
		seen := make(map[uint64]int, len(snap))
		for _, sess := range snap {
			seen[sess.id]++
			if seen[sess.id] > 1 {
				t.Fatalf("scan %d: session %d double-counted", scan, sess.id)
			}
		}
		for id := uint64(1); id <= stable; id++ {
			if seen[id] != 1 {
				t.Fatalf("scan %d: stable session %d lost", scan, id)
			}
		}
	}
	close(stop)
	wg.Wait()

	// After the churners retire their sessions, exactly the stable set
	// remains.
	if n := r.len(); n != stable {
		t.Fatalf("registry len %d after churn, want %d", n, stable)
	}
}
