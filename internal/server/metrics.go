package server

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// latencyBounds are the query-latency histogram bucket upper bounds; the
// last bucket is unbounded.
var latencyBounds = []time.Duration{
	50 * time.Microsecond,
	200 * time.Microsecond,
	time.Millisecond,
	5 * time.Millisecond,
	20 * time.Millisecond,
	100 * time.Millisecond,
	500 * time.Millisecond,
}

// metrics is the server's atomic counter block. All fields are updated
// lock-free from session goroutines.
type metrics struct {
	sessionsActive  atomic.Int64
	sessionsTotal   atomic.Uint64
	framesIngested  atomic.Uint64
	batchesIngested atomic.Uint64
	framesShed      atomic.Uint64
	batchesShed     atomic.Uint64
	appendErrors    atomic.Uint64
	queries         atomic.Uint64
	evictions       atomic.Uint64
	// queueDepth is the frames-waiting gauge across all sessions,
	// incremented at enqueue and decremented at dequeue so Metrics never
	// has to walk the session map.
	queueDepth atomic.Int64

	latencyCounts [8]atomic.Uint64 // len(latencyBounds)+1
	latencySumNS  atomic.Int64
	latencyMaxNS  atomic.Int64
}

func (m *metrics) observeQuery(d time.Duration) {
	m.queries.Add(1)
	i := 0
	for i < len(latencyBounds) && d > latencyBounds[i] {
		i++
	}
	m.latencyCounts[i].Add(1)
	m.latencySumNS.Add(int64(d))
	for {
		cur := m.latencyMaxNS.Load()
		if int64(d) <= cur || m.latencyMaxNS.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// Snapshot is one consistent-enough read of the server's counters,
// suitable for JSON logging.
type Snapshot struct {
	SessionsActive  int64  `json:"sessions_active"`
	SessionsTotal   uint64 `json:"sessions_total"`
	FramesIngested  uint64 `json:"frames_ingested"`
	BatchesIngested uint64 `json:"batches_ingested"`
	FramesShed      uint64 `json:"frames_shed"`
	BatchesShed     uint64 `json:"batches_shed"`
	AppendErrors    uint64 `json:"append_errors"`
	Queries         uint64 `json:"queries"`
	Evictions       uint64 `json:"evictions"`
	QueueDepth      int    `json:"queue_depth"` // frames waiting across all sessions

	// QueryLatency histogram: counts per bucket of latencyBounds plus the
	// overflow bucket, with mean and max.
	LatencyCounts []uint64      `json:"latency_counts"`
	LatencyMean   time.Duration `json:"latency_mean_ns"`
	LatencyMax    time.Duration `json:"latency_max_ns"`
}

func (m *metrics) snapshot() Snapshot {
	s := Snapshot{
		SessionsActive:  m.sessionsActive.Load(),
		SessionsTotal:   m.sessionsTotal.Load(),
		FramesIngested:  m.framesIngested.Load(),
		BatchesIngested: m.batchesIngested.Load(),
		FramesShed:      m.framesShed.Load(),
		BatchesShed:     m.batchesShed.Load(),
		AppendErrors:    m.appendErrors.Load(),
		Queries:         m.queries.Load(),
		Evictions:       m.evictions.Load(),
		QueueDepth:      int(m.queueDepth.Load()),
		LatencyCounts:   make([]uint64, len(m.latencyCounts)),
		LatencyMax:      time.Duration(m.latencyMaxNS.Load()),
	}
	for i := range m.latencyCounts {
		s.LatencyCounts[i] = m.latencyCounts[i].Load()
	}
	if s.Queries > 0 {
		s.LatencyMean = time.Duration(m.latencySumNS.Load() / int64(s.Queries))
	}
	return s
}

// String renders the snapshot as one log line.
func (s Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sessions=%d/%d frames=%d batches=%d shed=%d/%d queue=%d queries=%d evictions=%d",
		s.SessionsActive, s.SessionsTotal, s.FramesIngested, s.BatchesIngested,
		s.BatchesShed, s.FramesShed, s.QueueDepth, s.Queries, s.Evictions)
	if s.Queries > 0 {
		fmt.Fprintf(&b, " qlat(mean=%s max=%s hist=", s.LatencyMean.Round(time.Microsecond), s.LatencyMax.Round(time.Microsecond))
		for i, c := range s.LatencyCounts {
			if i > 0 {
				b.WriteByte('/')
			}
			fmt.Fprintf(&b, "%d", c)
		}
		b.WriteByte(')')
	}
	return b.String()
}
