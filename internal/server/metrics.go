package server

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"aims/internal/fleet"
	"aims/internal/journal"
	"aims/internal/obs"
	"aims/internal/propolyne"
	"aims/internal/wire"
)

// latencyBounds are the query-latency histogram bucket upper bounds; the
// histogram's bucket array is derived from this slice (len+1 for the
// unbounded tail), so editing the bounds can never silently truncate the
// counts.
var latencyBounds = []time.Duration{
	50 * time.Microsecond,
	200 * time.Microsecond,
	time.Millisecond,
	5 * time.Millisecond,
	20 * time.Millisecond,
	100 * time.Millisecond,
	500 * time.Millisecond,
}

// stageBounds bucket the per-stage ingest timings (decode, queue wait,
// append), which sit well below query latencies.
var stageBounds = []float64{
	10e-6, 50e-6, 200e-6, 1e-3, 5e-3, 20e-3, 100e-3, 500e-3,
}

// sealBounds bucket seal wall times: incremental seals are sub-millisecond,
// rebuilds can run to seconds.
var sealBounds = []float64{
	200e-6, 1e-3, 5e-3, 20e-3, 100e-3, 500e-3, 2,
}

// deltaBounds bucket the delta-log depth replayed by incremental seals.
var deltaBounds = []float64{64, 256, 1024, 4096, 16384, 65536}

// fsyncBounds bucket WAL fsync latencies: tens of microseconds on a warm
// page cache, tens of milliseconds on a contended disk.
var fsyncBounds = []float64{
	20e-6, 100e-6, 500e-6, 2e-3, 10e-3, 50e-3, 250e-3,
}

// fanoutBounds bucket fleet fan-out width (sessions matched per fleet
// query), spanning a single glove to a 10k-session fleet.
var fanoutBounds = []float64{1, 4, 16, 64, 256, 1024, 4096}

// compileBounds bucket query-plan compile times: a hot lazy transform is
// single-digit microseconds, a high-degree multi-dimension compile can run
// to milliseconds.
var compileBounds = []float64{
	2e-6, 10e-6, 50e-6, 200e-6, 1e-3, 5e-3, 20e-3,
}

func secondsBounds(ds []time.Duration) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		out[i] = d.Seconds()
	}
	return out
}

// metrics is the server's instrument block, registered in a per-server
// obs.Registry (exposed on the admin plane as /metrics). All updates are
// lock-free from session goroutines.
type metrics struct {
	reg *obs.Registry

	sessionsActive  *obs.Gauge
	sessionsTotal   *obs.Counter
	framesIngested  *obs.Counter
	batchesIngested *obs.Counter
	framesShed      *obs.Counter
	batchesShed     *obs.Counter
	appendErrors    *obs.Counter
	evictions       *obs.Counter
	// Link-resilience instruments: deduped replay batches, heartbeat pings
	// answered, sessions parked for reconnection, and successful resumes
	// (live park adoption or journal orphan adoption).
	dupBatches       *obs.Counter
	heartbeats       *obs.Counter
	sessionsDetached *obs.Gauge
	resumesTotal     *obs.Counter
	// queueDepth is the frames-waiting gauge across all sessions,
	// incremented at enqueue and decremented at dequeue so Metrics never
	// has to walk the session map.
	queueDepth *obs.Gauge

	queryLatency *obs.Histogram
	latencyMaxNS atomic.Int64

	// slowQueries counts traces the always-on slow-query log retained,
	// keyed by trace kind ("query", "fleet-query", "ingest").
	slowQueries map[string]*obs.Counter

	// Stage-level ingest pipeline instruments.
	decodeSeconds    *obs.Histogram
	queueWaitSeconds *obs.Histogram
	appendSeconds    *obs.Histogram

	// Seal instruments, split by path, plus the delta-log depth each
	// incremental seal replayed.
	sealIncrSeconds    *obs.Histogram
	sealRebuildSeconds *obs.Histogram
	sealDeltaEntries   *obs.Histogram

	// Fleet query instruments: fan-out width, per-session scan time and
	// merge time per query, plus query/partial/failure counters.
	fleetQueries      *obs.Counter
	fleetPartial      *obs.Counter
	fleetFailed       *obs.Counter
	fleetFanout       *obs.Histogram
	fleetScanSeconds  *obs.Histogram
	fleetMergeSeconds *obs.Histogram

	// Query-plan cache instruments (the shared propolyne PlanCache
	// reports through these).
	planHits           *obs.Counter
	planMisses         *obs.Counter
	planEvictions      *obs.Counter
	planCompileSeconds *obs.Histogram

	// Durability instruments (the journal layer reports through these).
	walFsyncSeconds *obs.Histogram
	walBytes        *obs.Counter
	snapshotSeconds *obs.Histogram
	snapshots       *obs.Counter
	snapshotErrors  *obs.Counter
	journalDegraded *obs.Counter
	journalHealed   *obs.Counter

	// Wire-protocol bytes, per direction and message type (header
	// included). Indexed by the wire message type byte; nil entries are
	// types that never flow in that direction.
	bytesIn  [16]*obs.Counter
	bytesOut [16]*obs.Counter
}

func newMetrics() *metrics {
	reg := obs.NewRegistry()
	m := &metrics{
		reg:             reg,
		sessionsActive:  reg.Gauge("aims_sessions_active", "Live registered sessions."),
		sessionsTotal:   reg.Counter("aims_sessions_total", "Sessions registered since start."),
		framesIngested:  reg.Counter("aims_ingest_frames_total", "Frames appended into live stores."),
		batchesIngested: reg.Counter("aims_ingest_batches_total", "Wire batches accepted for ingest."),
		framesShed:      reg.Counter("aims_shed_frames_total", "Frames dropped by the shed backpressure policy."),
		batchesShed:     reg.Counter("aims_shed_batches_total", "Batches dropped by the shed backpressure policy."),
		appendErrors:    reg.Counter("aims_append_errors_total", "Frames rejected by live-store validation."),
		evictions:       reg.Counter("aims_evictions_total", "Sessions evicted for idling."),
		dupBatches: reg.Counter("aims_dup_batches_total",
			"Replayed batches dropped or trimmed at the session's acknowledged watermark."),
		heartbeats: reg.Counter("aims_heartbeats_total", "Heartbeat pings answered."),
		sessionsDetached: reg.Gauge("aims_sessions_detached",
			"Disconnected sessions parked in memory awaiting reconnection."),
		resumesTotal: reg.Counter("aims_session_resumes_total",
			"Sessions resumed by a reconnecting device (parked or journal-recovered)."),
		queueDepth:      reg.Gauge("aims_queue_depth", "Frames waiting in session ingest queues."),
		queryLatency: reg.Histogram("aims_query_seconds",
			"Query evaluation latency.", secondsBounds(latencyBounds)),
		decodeSeconds: reg.Histogram("aims_ingest_decode_seconds",
			"Wire batch decode time.", stageBounds),
		queueWaitSeconds: reg.Histogram("aims_ingest_queue_wait_seconds",
			"Sampled enqueue-to-append wait of an ingest batch.", stageBounds),
		appendSeconds: reg.Histogram("aims_ingest_append_seconds",
			"LiveStore append time per acquisition batch.", stageBounds),
		sealIncrSeconds: reg.HistogramWith("aims_seal_seconds", `mode="incremental"`,
			"Seal wall time by path.", sealBounds),
		sealRebuildSeconds: reg.HistogramWith("aims_seal_seconds", `mode="rebuild"`,
			"Seal wall time by path.", sealBounds),
		sealDeltaEntries: reg.Histogram("aims_seal_delta_entries",
			"Delta-log entries replayed per incremental seal.", deltaBounds),
		fleetQueries: reg.Counter("aims_fleet_queries_total", "Cross-session fleet queries evaluated."),
		fleetPartial: reg.Counter("aims_fleet_partial_total",
			"Fleet queries answered from a strict subset of their scope."),
		fleetFailed: reg.Counter("aims_fleet_failed_total", "Fleet queries that returned no merged answer."),
		fleetFanout: reg.Histogram("aims_fleet_fanout_sessions",
			"Sessions matched per fleet query.", fanoutBounds),
		fleetScanSeconds: reg.Histogram("aims_fleet_scan_seconds",
			"Per-session scan time inside fleet scatter.", stageBounds),
		fleetMergeSeconds: reg.Histogram("aims_fleet_merge_seconds",
			"Merge time per fleet query.", stageBounds),
		planHits:   reg.Counter("aims_plan_cache_hits_total", "Query-plan cache hits."),
		planMisses: reg.Counter("aims_plan_cache_misses_total", "Query-plan cache misses (compilations)."),
		planEvictions: reg.Counter("aims_plan_cache_evictions_total",
			"Query plans evicted to hold the cache budget."),
		planCompileSeconds: reg.Histogram("aims_plan_compile_seconds",
			"Query-plan compile wall time.", compileBounds),
		walFsyncSeconds: reg.Histogram("aims_wal_fsync_seconds",
			"WAL fsync latency.", fsyncBounds),
		walBytes: reg.Counter("aims_wal_bytes_total", "Bytes appended to session WALs."),
		snapshotSeconds: reg.Histogram("aims_snapshot_seconds",
			"Session snapshot wall time (seal + write + WAL truncation).", sealBounds),
		snapshots:      reg.Counter("aims_snapshots_total", "Session snapshots written."),
		snapshotErrors: reg.Counter("aims_snapshot_errors_total", "Session snapshots that failed."),
		journalDegraded: reg.Counter("aims_journal_degraded_total",
			"Times a session shed durability after journal write failures."),
		journalHealed: reg.Counter("aims_journal_healed_total",
			"Times a degraded session restored durability via a snapshot."),
	}
	const slowHelp = "Traces retained by the always-on slow-query log, by kind."
	m.slowQueries = map[string]*obs.Counter{
		"query":       reg.CounterWith("aims_slow_queries_total", `kind="query"`, slowHelp),
		"fleet-query": reg.CounterWith("aims_slow_queries_total", `kind="fleet-query"`, slowHelp),
		"ingest":      reg.CounterWith("aims_slow_queries_total", `kind="ingest"`, slowHelp),
	}
	reg.GaugeFunc("aims_query_latency_max_seconds", "Slowest query so far.",
		func() float64 { return time.Duration(m.latencyMaxNS.Load()).Seconds() })
	reg.GaugeFunc("aims_plan_cache_plans", "Compiled query plans resident in the shared cache.",
		func() float64 { return float64(propolyne.SharedCache.Stats().Plans) })
	reg.GaugeFunc("aims_plan_cache_cost_units", "Resident query-plan cache cost (entry units).",
		func() float64 { return float64(propolyne.SharedCache.Stats().Cost) })
	const bytesHelp = "Wire bytes by direction and message type, headers included."
	for _, typ := range []byte{wire.MsgHello, wire.MsgBatch, wire.MsgQuery, wire.MsgFlush,
		wire.MsgClose, wire.MsgFleetQuery, wire.MsgPing} {
		m.bytesIn[typ] = reg.CounterWith("aims_wire_bytes_total",
			fmt.Sprintf(`dir="in",type=%q`, wire.TypeName(typ)), bytesHelp)
	}
	for _, typ := range []byte{wire.MsgWelcome, wire.MsgBatchAck, wire.MsgResult,
		wire.MsgCloseAck, wire.MsgError, wire.MsgFlushAck, wire.MsgFleetResult, wire.MsgPong} {
		m.bytesOut[typ] = reg.CounterWith("aims_wire_bytes_total",
			fmt.Sprintf(`dir="out",type=%q`, wire.TypeName(typ)), bytesHelp)
	}
	return m
}

// observeQuery records one query latency; a non-zero traceID pins the
// observation as the landing bucket's exemplar, so a bad latency bucket on
// /metrics points straight at a captured trace on /tracez?id=.
func (m *metrics) observeQuery(d time.Duration, traceID uint64) {
	m.queryLatency.ObserveExemplar(d.Seconds(), traceID)
	for {
		cur := m.latencyMaxNS.Load()
		if int64(d) <= cur || m.latencyMaxNS.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// observeSlow is the tracer's slow-retention hook: one count per trace the
// slow ring kept. Unknown kinds are dropped rather than minting unbounded
// label values.
func (m *metrics) observeSlow(kind string) {
	if c, ok := m.slowQueries[kind]; ok {
		c.Inc()
	}
}

// fleetObserver wires the fleet evaluator's hooks onto this server's
// instruments.
func (m *metrics) fleetObserver() fleet.Observer {
	return fleet.Observer{
		FanOut:       func(width int) { m.fleetFanout.Observe(float64(width)) },
		ScanSeconds:  func(s float64) { m.fleetScanSeconds.Observe(s) },
		MergeSeconds: func(s float64) { m.fleetMergeSeconds.Observe(s) },
	}
}

// planObserver wires the shared plan cache's hooks onto this server's
// instruments. The cache is process-global; when several servers share a
// process (tests), the most recently constructed one owns the hooks.
func (m *metrics) planObserver() propolyne.PlanObserver {
	return propolyne.PlanObserver{
		Hit:            func() { m.planHits.Inc() },
		Miss:           func() { m.planMisses.Inc() },
		Evict:          func() { m.planEvictions.Inc() },
		CompileSeconds: func(s float64) { m.planCompileSeconds.Observe(s) },
	}
}

// journalObserver wires the durability layer's callbacks onto this
// server's instruments.
func (m *metrics) journalObserver() journal.Observer {
	return journal.Observer{
		FsyncSeconds:    func(s float64) { m.walFsyncSeconds.Observe(s) },
		AppendBytes:     func(n int) { m.walBytes.Add(uint64(n)) },
		SnapshotSeconds: func(s float64) { m.snapshotSeconds.Observe(s); m.snapshots.Inc() },
		SnapshotError:   func() { m.snapshotErrors.Inc() },
		Degraded:        func() { m.journalDegraded.Inc() },
		Healed:          func() { m.journalHealed.Inc() },
	}
}

// observeSeal is the LiveStore seal hook: wall time split by path, and
// delta-log depth for incremental seals.
func (m *metrics) observeSeal(d time.Duration, incremental bool, deltaEntries int) {
	if incremental {
		m.sealIncrSeconds.Observe(d.Seconds())
		m.sealDeltaEntries.Observe(float64(deltaEntries))
	} else {
		m.sealRebuildSeconds.Observe(d.Seconds())
	}
}

// countIn/countOut account one wire message's bytes (5-byte header plus
// payload) to its direction/type series.
func (m *metrics) countIn(typ byte, payloadLen int) {
	if int(typ) < len(m.bytesIn) && m.bytesIn[typ] != nil {
		m.bytesIn[typ].Add(uint64(wire.MessageSize(payloadLen)))
	}
}

func (m *metrics) countOut(typ byte, payloadLen int) {
	if int(typ) < len(m.bytesOut) && m.bytesOut[typ] != nil {
		m.bytesOut[typ].Add(uint64(wire.MessageSize(payloadLen)))
	}
}

// Snapshot is one consistent-enough read of the server's counters,
// suitable for JSON logging.
type Snapshot struct {
	SessionsActive  int64  `json:"sessions_active"`
	SessionsTotal   uint64 `json:"sessions_total"`
	FramesIngested  uint64 `json:"frames_ingested"`
	BatchesIngested uint64 `json:"batches_ingested"`
	FramesShed      uint64 `json:"frames_shed"`
	BatchesShed     uint64 `json:"batches_shed"`
	AppendErrors    uint64 `json:"append_errors"`
	Queries         uint64 `json:"queries"`
	Evictions       uint64 `json:"evictions"`
	QueueDepth      int    `json:"queue_depth"` // frames waiting across all sessions

	// QueryLatency histogram: counts per bucket of latencyBounds plus the
	// overflow bucket, with mean and max.
	LatencyCounts []uint64      `json:"latency_counts"`
	LatencyMean   time.Duration `json:"latency_mean_ns"`
	LatencyMax    time.Duration `json:"latency_max_ns"`
}

func (m *metrics) snapshot() Snapshot {
	s := Snapshot{
		SessionsActive:  m.sessionsActive.Value(),
		SessionsTotal:   m.sessionsTotal.Value(),
		FramesIngested:  m.framesIngested.Value(),
		BatchesIngested: m.batchesIngested.Value(),
		FramesShed:      m.framesShed.Value(),
		BatchesShed:     m.batchesShed.Value(),
		AppendErrors:    m.appendErrors.Value(),
		Queries:         m.queryLatency.Count(),
		Evictions:       m.evictions.Value(),
		QueueDepth:      int(m.queueDepth.Value()),
		LatencyCounts:   m.queryLatency.BucketCounts(),
		LatencyMax:      time.Duration(m.latencyMaxNS.Load()),
	}
	if s.Queries > 0 {
		s.LatencyMean = time.Duration(m.queryLatency.Sum() / float64(s.Queries) * float64(time.Second))
	}
	return s
}

// String renders the snapshot as one log line.
func (s Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sessions=%d/%d frames=%d batches=%d shed=%d/%d queue=%d queries=%d evictions=%d",
		s.SessionsActive, s.SessionsTotal, s.FramesIngested, s.BatchesIngested,
		s.BatchesShed, s.FramesShed, s.QueueDepth, s.Queries, s.Evictions)
	if s.Queries > 0 {
		fmt.Fprintf(&b, " qlat(mean=%s max=%s hist=", s.LatencyMean.Round(time.Microsecond), s.LatencyMax.Round(time.Microsecond))
		for i, c := range s.LatencyCounts {
			if i > 0 {
				b.WriteByte('/')
			}
			fmt.Fprintf(&b, "%d", c)
		}
		b.WriteByte(')')
	}
	return b.String()
}
