package server

import "sync"

// registryShards is the session-map shard count (power of two). Session
// IDs are assigned sequentially, so masking the low bits spreads
// consecutive registrations round-robin across shards and register/
// unregister/lookup contention stays flat at tens of thousands of
// sessions instead of serialising on one mutex.
const registryShards = 64

// registry is the server's sharded session map.
type registry struct {
	shards [registryShards]registryShard
}

type registryShard struct {
	mu sync.Mutex
	m  map[uint64]*session
}

func newRegistry() *registry {
	r := &registry{}
	for i := range r.shards {
		r.shards[i].m = make(map[uint64]*session)
	}
	return r
}

func (r *registry) shard(id uint64) *registryShard {
	return &r.shards[id&(registryShards-1)]
}

func (r *registry) put(id uint64, sess *session) {
	sh := r.shard(id)
	sh.mu.Lock()
	sh.m[id] = sess
	sh.mu.Unlock()
}

// remove deletes the session and reports whether it was present (a
// session can be unregistered at most once).
func (r *registry) remove(id uint64) bool {
	sh := r.shard(id)
	sh.mu.Lock()
	_, ok := sh.m[id]
	if ok {
		delete(sh.m, id)
	}
	sh.mu.Unlock()
	return ok
}

func (r *registry) len() int {
	n := 0
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}

// forEach calls fn on every registered session, holding only one shard
// lock at a time.
func (r *registry) forEach(fn func(*session)) {
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		for _, sess := range sh.m {
			fn(sess)
		}
		sh.mu.Unlock()
	}
}

// snapshot collects the live session set, holding one shard lock at a
// time. This is the fleet scatter set: a session registered for the whole
// scan appears exactly once; sessions registering or unregistering while
// the walk crosses shards may or may not appear — the per-session
// high-water-mark contract covers them, and no session is ever
// double-counted (each lives in exactly one shard).
func (r *registry) snapshot() []*session {
	out := make([]*session, 0, 64)
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		for _, sess := range sh.m {
			out = append(out, sess)
		}
		sh.mu.Unlock()
	}
	return out
}
