package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"aims/internal/obs"
	"aims/internal/wire"
)

// getTraceByID polls /tracez?id= until the trace is published (the handler
// finishes the trace just after flushing the reply, so the client can race
// the ring insert by a few microseconds).
func getTraceByID(t *testing.T, h http.Handler, id uint64) obs.TraceSnapshot {
	t.Helper()
	path := "/tracez?id=" + obs.TraceIDString(id)
	deadline := time.Now().Add(2 * time.Second)
	for {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code == http.StatusOK {
			var snap obs.TraceSnapshot
			if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
				t.Fatalf("%s JSON: %v", path, err)
			}
			return snap
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s = %d %q", path, rec.Code, rec.Body.String())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestQueryTraceOverWire forces one query trace from the client side: the
// wire payload carries (trace ID, sampled) end-to-end and /tracez?id=
// serves the span tree under the client's own ID even though the server's
// 1/N sampler would never have picked it.
func TestQueryTraceOverWire(t *testing.T) {
	srv, addr := startServer(t, Config{
		Store:       testStoreCfg(),
		TraceSample: 1 << 20, // sampler effectively off: only forced traces land
	})
	h := srv.AdminHandler()

	c := fleetClient(t, addr, "traced", "cyberglove", 0, 256, 2)
	tid := wire.NewTraceID()
	r, err := c.Query(wire.Query{
		Kind: wire.QueryAverage, Channel: 0, T0: 0, T1: 2,
		TraceID: tid, TraceSampled: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Code != wire.CodeOK {
		t.Fatalf("query code = %v", r.Code)
	}

	snap := getTraceByID(t, h, tid)
	if snap.Kind != "query" {
		t.Errorf("trace kind = %q, want query", snap.Kind)
	}
	if snap.TraceID != obs.TraceIDString(tid) {
		t.Errorf("trace id = %q, want %q", snap.TraceID, obs.TraceIDString(tid))
	}
	names := map[string]int{}
	for _, sp := range snap.Spans {
		names[sp.Name]++
	}
	for _, want := range []string{"decode", "evaluate", "respond"} {
		if names[want] == 0 {
			t.Errorf("trace missing %q span: have %v", want, names)
		}
	}
	if snap.Attrs["session"] == "" || snap.Attrs["class"] != "cyberglove" {
		t.Errorf("trace attrs = %v, want session and class", snap.Attrs)
	}

	// A second query WITHOUT forced sampling must not be retrievable: the
	// sampler is effectively off and the slow ring is not at stake here.
	tid2 := wire.NewTraceID()
	if _, err := c.Query(wire.Query{
		Kind: wire.QueryAverage, Channel: 0, T0: 0, T1: 2, TraceID: tid2,
	}); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/tracez?id="+obs.TraceIDString(tid2), nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("unsampled trace lookup = %d, want 404", rec.Code)
	}
}

// TestFleetTraceTreeOverWire is the tentpole acceptance test: a fleet
// query forced-sampled from the client stitches every per-session
// evaluation into ONE tree — scope-match and merge at the top, one
// session-<id> subtree per scoped session, each holding its queue-wait and
// evaluation spans — retrievable by the client's trace ID.
func TestFleetTraceTreeOverWire(t *testing.T) {
	const gloves = 3
	srv, addr := startServer(t, Config{
		Store:       testStoreCfg(),
		TraceSample: 1 << 20,
	})
	h := srv.AdminHandler()

	clients := make([]*wire.Client, 0, gloves)
	for i := 0; i < gloves; i++ {
		clients = append(clients, fleetClient(t, addr, fmt.Sprintf("glove-%d", i), "cyberglove", i, 512, 2))
	}

	tid := wire.NewTraceID()
	fr, err := clients[0].FleetQuery(wire.FleetQuery{
		Query: wire.Query{
			Kind: wire.QueryCount, Channel: 1, T0: 0.5, T1: 4.0,
			TraceID: tid, TraceSampled: true,
		},
		Scope: wire.FleetScope{Class: "cyberglove"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !fr.OK || fr.Sessions != gloves {
		t.Fatalf("fleet result: %+v", fr)
	}

	snap := getTraceByID(t, h, tid)
	if snap.Kind != "fleet-query" {
		t.Errorf("trace kind = %q, want fleet-query", snap.Kind)
	}

	byID := map[obs.SpanID]obs.Span{}
	children := map[obs.SpanID][]obs.Span{}
	names := map[string]int{}
	for _, sp := range snap.Spans {
		byID[sp.ID] = sp
		children[sp.Parent] = append(children[sp.Parent], sp)
		names[sp.Name]++
	}

	for _, want := range []string{"decode", "evaluate", "scope-match", "merge", "respond"} {
		if names[want] == 0 {
			t.Errorf("tree missing %q span: have %v", want, names)
		}
	}

	// One session-<id> subtree per scoped session, each a child of the
	// evaluate span and each holding its own queue-wait plus the session's
	// evaluation spans (QueryCount is exact, so a scan span).
	var evalID obs.SpanID
	for _, sp := range snap.Spans {
		if sp.Name == "evaluate" {
			evalID = sp.ID
		}
	}
	sessionSpans := 0
	for _, sp := range snap.Spans {
		if !strings.HasPrefix(sp.Name, "session-") {
			continue
		}
		sessionSpans++
		if sp.Parent != evalID {
			t.Errorf("span %q parent = %d, want evaluate (%d)", sp.Name, sp.Parent, evalID)
		}
		kidNames := map[string]int{}
		for _, kid := range children[sp.ID] {
			kidNames[kid.Name]++
		}
		if kidNames["queue-wait"] == 0 {
			t.Errorf("subtree %q missing queue-wait: %v", sp.Name, kidNames)
		}
		if kidNames["scan"] == 0 {
			t.Errorf("subtree %q missing scan: %v", sp.Name, kidNames)
		}
	}
	if sessionSpans != gloves {
		t.Errorf("tree has %d session subtrees, want %d\n%v", sessionSpans, gloves, names)
	}
	if got := snap.Attrs["sessions"]; got != fmt.Sprint(gloves) {
		t.Errorf("attrs[sessions] = %q, want %d (attrs %v)", got, gloves, snap.Attrs)
	}

	// An approximate fleet query over the same scope must surface the plan
	// spans (seal on first touch, plan-compile or plan-hit, dot) inside
	// each session subtree.
	tid2 := wire.NewTraceID()
	fa, err := clients[0].FleetQuery(wire.FleetQuery{
		Query: wire.Query{
			Kind: wire.QueryApproxCount, Channel: 1, T0: 0.5, T1: 4.0, Arg: 16,
			TraceID: tid2, TraceSampled: true,
		},
		Scope: wire.FleetScope{Class: "cyberglove"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !fa.OK {
		t.Fatalf("approx fleet result: %+v", fa)
	}
	snap2 := getTraceByID(t, h, tid2)
	planSpans := map[string]int{}
	for _, sp := range snap2.Spans {
		switch sp.Name {
		case "plan-compile", "plan-hit", "dot", "seal":
			planSpans[sp.Name]++
		}
	}
	if planSpans["dot"] != gloves {
		t.Errorf("approx tree has %d dot spans, want %d (%v)", planSpans["dot"], gloves, planSpans)
	}
	if planSpans["plan-compile"]+planSpans["plan-hit"] != gloves {
		t.Errorf("approx tree plan spans = %v, want compile+hit == %d", planSpans, gloves)
	}
}

// TestSlowQueryLogAlwaysOn pins the always-on promise: with a 1ns
// threshold and the sampler effectively off, an ordinary untraced query
// still lands in /slowlog with its structured fields, bumps
// aims_slow_queries_total{kind="query"}, and stamps a trace-ID exemplar
// onto the latency histogram.
func TestSlowQueryLogAlwaysOn(t *testing.T) {
	srv, addr := startServer(t, Config{
		Store:       testStoreCfg(),
		TraceSample: 1 << 20,
		SlowQuery:   time.Nanosecond,
	})
	h := srv.AdminHandler()

	c := fleetClient(t, addr, "slowpoke", "cyberglove", 0, 256, 2)
	// A deliberately plain query: no trace context on the wire at all.
	if _, err := c.Query(wire.Query{Kind: wire.QueryApproxCount, Channel: 0, T0: 0, T1: 2, Arg: 16}); err != nil {
		t.Fatal(err)
	}

	var slog struct {
		ThresholdNS int64            `json:"threshold_ns"`
		Count       int              `json:"count"`
		Records     []obs.SlowRecord `json:"records"`
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/slowlog", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("/slowlog = %d", rec.Code)
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &slog); err != nil {
			t.Fatalf("/slowlog JSON: %v", err)
		}
		found := false
		for _, r := range slog.Records {
			if r.Kind == "query" {
				found = true
			}
		}
		if found || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if slog.ThresholdNS != 1 {
		t.Errorf("threshold_ns = %d, want 1", slog.ThresholdNS)
	}
	var qrec *obs.SlowRecord
	for i := range slog.Records {
		if slog.Records[i].Kind == "query" {
			qrec = &slog.Records[i]
			break
		}
	}
	if qrec == nil {
		t.Fatalf("/slowlog has no query record: %+v", slog.Records)
	}
	if qrec.TraceID == "" || qrec.TotalNS <= 0 {
		t.Errorf("slow record incomplete: %+v", qrec)
	}
	if qrec.Attrs["session"] == "" || qrec.Attrs["box_volume"] == "" {
		t.Errorf("slow record attrs = %v, want session and box_volume", qrec.Attrs)
	}
	if qrec.StageNS["evaluate"] == 0 {
		t.Errorf("slow record stages = %v, want evaluate", qrec.StageNS)
	}

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	if !strings.Contains(body, `aims_slow_queries_total{kind="query"} 1`) {
		t.Errorf("metrics missing slow-query counter:\n%s", grepLines(body, "slow"))
	}
	// The latency histogram carries the slow query's trace ID as an
	// OpenMetrics exemplar even though the client never asked for tracing.
	if !strings.Contains(body, `# {trace_id="`+qrec.TraceID+`"}`) {
		t.Errorf("metrics missing exemplar for trace %s:\n%s", qrec.TraceID, grepLines(body, "bucket"))
	}

	// Ingest traces cross the 1ns bar too: the batch the fixture streamed
	// must already have landed in the slow ring under kind=ingest.
	hasIngest := false
	for _, r := range slog.Records {
		if r.Kind == "ingest" {
			hasIngest = true
		}
	}
	if !hasIngest {
		t.Errorf("/slowlog has no ingest record: %+v", slog.Records)
	}
}

// grepLines returns the lines of s containing substr, for compact failure
// output.
func grepLines(s, substr string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}
