package server

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"math"
	"testing"

	"aims/internal/transport"
	"aims/internal/wire"
)

// encodeHelloAt hand-builds a Hello payload at an explicit protocol
// version, mirroring the layouts DecodeHello accepts across [v1, v4]: a
// v1 payload ends at the channel ranges; v2+ appends the device class as
// a strict suffix. Pinning the bytes here (instead of calling
// Hello.Encode, which always writes the current version) is what makes
// this a compatibility test.
func encodeHelloAt(v uint8, rate float64, horizon uint32, name, class string, mins, maxs []float64) []byte {
	le := binary.LittleEndian
	b := le.AppendUint32(nil, wire.Magic)
	b = append(b, v)
	b = le.AppendUint64(b, math.Float64bits(rate))
	b = le.AppendUint32(b, horizon)
	b = le.AppendUint16(b, uint16(len(name)))
	b = append(b, name...)
	b = le.AppendUint16(b, uint16(len(mins)))
	for i := range mins {
		b = le.AppendUint64(b, math.Float64bits(mins[i]))
		b = le.AppendUint64(b, math.Float64bits(maxs[i]))
	}
	if v >= 2 {
		b = le.AppendUint16(b, uint16(len(class)))
		b = append(b, class...)
	}
	return b
}

// TestHelloCompatMatrixOverTransports speaks every supported protocol
// version over every transport, raw off the socket: each version must
// complete the Hello → batch → flush → query → close round trip with
// identical results, and the Welcome must stay a v1-decodable fixed-size
// payload for pre-v4 clients (no AckSeq suffix on a fresh session).
func TestHelloCompatMatrixOverTransports(t *testing.T) {
	const (
		channels = 2
		frames   = 50
	)
	forEachTransport(t, func(t *testing.T, scheme string) {
		_, addr := startServerOn(t, scheme, Config{Store: testStoreCfg()})
		mins, maxs := ranges(channels)
		for v := uint8(wire.MinVersion); v <= wire.Version; v++ {
			v := v
			t.Run(fmt.Sprintf("v%d", v), func(t *testing.T) {
				conn, err := transport.Dial(addr)
				if err != nil {
					t.Fatal(err)
				}
				defer conn.Close()
				bw := bufio.NewWriter(conn)
				br := bufio.NewReader(conn)
				send := func(typ byte, payload []byte) {
					t.Helper()
					if err := wire.WriteMessage(bw, typ, payload); err != nil {
						t.Fatal(err)
					}
					if err := bw.Flush(); err != nil {
						t.Fatal(err)
					}
				}
				expect := func(want byte) []byte {
					t.Helper()
					typ, payload, err := wire.ReadMessage(br)
					if err != nil {
						t.Fatal(err)
					}
					if typ == wire.MsgError {
						em, _ := wire.DecodeErr(payload)
						t.Fatalf("server error instead of msg %d: %v", want, em)
					}
					if typ != want {
						t.Fatalf("got msg type %d, want %d", typ, want)
					}
					return payload
				}

				name := fmt.Sprintf("compat-%s-v%d", scheme, v)
				send(wire.MsgHello, encodeHelloAt(v, 100, 1<<14, name, "matrix", mins, maxs))
				w, err := wire.DecodeWelcome(expect(wire.MsgWelcome))
				if err != nil {
					t.Fatal(err)
				}
				if w.Code != wire.CodeOK {
					t.Fatalf("welcome code = %v, want OK", w.Code)
				}
				if w.AckSeq != 0 {
					t.Fatalf("fresh session welcome carries AckSeq %d; pre-v4 decoders reject trailing bytes", w.AckSeq)
				}

				batch := clientFrames(int(v), frames, channels)
				bp, err := wire.EncodeBatch(0, batch, channels)
				if err != nil {
					t.Fatal(err)
				}
				send(wire.MsgBatch, bp)
				if ack, err := wire.DecodeBatchAck(expect(wire.MsgBatchAck)); err != nil || ack.Code != wire.CodeOK {
					t.Fatalf("batch ack: %+v err=%v", ack, err)
				}
				send(wire.MsgFlush, nil)
				if fa, err := wire.DecodeFlushAck(expect(wire.MsgFlushAck)); err != nil || fa.Stored != frames {
					t.Fatalf("flush ack stored=%d err=%v, want %d", fa.Stored, err, frames)
				}

				send(wire.MsgQuery, wire.Query{Kind: wire.QueryCount, Channel: 0, T0: 0, T1: 1e6}.Encode())
				r, err := wire.DecodeResult(expect(wire.MsgResult))
				if err != nil {
					t.Fatal(err)
				}
				if !r.Final || r.Value != frames {
					t.Fatalf("count = %v (final=%v), want %d", r.Value, r.Final, frames)
				}

				send(wire.MsgClose, nil)
				expect(wire.MsgCloseAck)
			})
		}

		// Versions outside [MinVersion, Version] must be refused with a
		// typed version error, not a hang or a silent close.
		for _, v := range []uint8{0, wire.Version + 1} {
			t.Run(fmt.Sprintf("reject-v%d", v), func(t *testing.T) {
				conn, err := transport.Dial(addr)
				if err != nil {
					t.Fatal(err)
				}
				defer conn.Close()
				bw := bufio.NewWriter(conn)
				if err := wire.WriteMessage(bw, wire.MsgHello,
					encodeHelloAt(v, 100, 1<<14, "bad-version", "", mins, maxs)); err != nil {
					t.Fatal(err)
				}
				if err := bw.Flush(); err != nil {
					t.Fatal(err)
				}
				typ, payload, err := wire.ReadMessage(bufio.NewReader(conn))
				if err != nil {
					t.Fatal(err)
				}
				if typ != wire.MsgError {
					t.Fatalf("got msg type %d, want error", typ)
				}
				em, err := wire.DecodeErr(payload)
				if err != nil {
					t.Fatal(err)
				}
				if em.Code != wire.CodeBadVersion {
					t.Fatalf("error code = %v, want bad-version", em.Code)
				}
			})
		}
	})
}
