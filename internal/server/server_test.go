package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"aims/internal/core"
	"aims/internal/stream"
	"aims/internal/wire"
)

func testStoreCfg() core.LiveStoreConfig {
	return core.LiveStoreConfig{TimeBuckets: 64, ValueBins: 32}
}

func startServer(t *testing.T, cfg Config) (*Server, string) {
	return startServerOn(t, "tcp", cfg)
}

// transports lists the endpoint schemes transport-parameterized tests run
// over; the wire protocol must behave identically on each.
var transports = []string{"tcp", "ws"}

// forEachTransport runs fn as one subtest per transport scheme.
func forEachTransport(t *testing.T, fn func(t *testing.T, scheme string)) {
	for _, tr := range transports {
		t.Run(tr, func(t *testing.T) { fn(t, tr) })
	}
}

// startServerOn starts a loopback server on the given transport scheme
// and returns it plus a directly dialable endpoint (scheme included for
// non-TCP transports).
func startServerOn(t *testing.T, scheme string, cfg Config) (*Server, string) {
	t.Helper()
	srv := New(cfg)
	addr, err := srv.Start(scheme + "://127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv, addr.String()
}

func clientFrames(client, n, channels int) []stream.Frame {
	out := make([]stream.Frame, n)
	for i := range out {
		vals := make([]float64, channels)
		for c := range vals {
			vals[c] = math.Sin(float64(i)*0.1+float64(client)) * 5
		}
		out[i] = stream.Frame{T: float64(i) / 100, Values: vals}
	}
	return out
}

func ranges(channels int) (mins, maxs []float64) {
	mins = make([]float64, channels)
	maxs = make([]float64, channels)
	for c := range mins {
		mins[c], maxs[c] = -5, 5
	}
	return mins, maxs
}

// TestServerEightConcurrentClients is the integration test of the middle
// tier: 8 concurrent sessions ingesting and querying on loopback, exact
// results checked against locally built mirrors of each session's live
// store, then a clean drain on shutdown.
func TestServerEightConcurrentClients(t *testing.T) {
	const (
		clients    = 8
		frames     = 2400
		channels   = 6
		batchSize  = 100
		rate       = 100.0
		queryEvery = 6 // batches
	)
	srv, addr := startServer(t, Config{Store: testStoreCfg()})

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			errs <- runClient(cl, addr, frames, channels, batchSize, rate, queryEvery)
		}(cl)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// CloseAck goes out just before the handler unregisters, so give the
	// session accounting a moment to settle.
	settle := time.Now().Add(2 * time.Second)
	for srv.SessionCount() > 0 && time.Now().Before(settle) {
		time.Sleep(2 * time.Millisecond)
	}
	snap := srv.Metrics()
	if snap.FramesIngested != clients*frames {
		t.Fatalf("server ingested %d frames, want %d", snap.FramesIngested, clients*frames)
	}
	if snap.BatchesShed != 0 || snap.FramesShed != 0 {
		t.Fatalf("unexpected shedding: %+v", snap)
	}
	if snap.SessionsTotal != clients || snap.SessionsActive != 0 {
		t.Fatalf("session accounting: %+v", snap)
	}
	if snap.Queries == 0 {
		t.Fatal("no queries recorded")
	}

	// Graceful shutdown with nothing in flight returns promptly.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func runClient(cl int, addr string, frames, channels, batchSize int, rate float64, queryEvery int) error {
	mins, maxs := ranges(channels)
	mirror, err := core.NewLiveStore(mins, maxs, core.LiveStoreConfig{
		TimeBuckets: 64, ValueBins: 32, Rate: rate, HorizonTicks: frames,
	})
	if err != nil {
		return err
	}
	all := clientFrames(cl, frames, channels)

	c, err := wire.Dial(addr)
	if err != nil {
		return err
	}
	c.Window = 3
	if _, err := c.Hello(wire.Hello{
		Rate: rate, HorizonTicks: uint32(frames), Name: fmt.Sprintf("itest-%d", cl),
		Mins: mins, Maxs: maxs,
	}); err != nil {
		return err
	}

	batches := 0
	for at := 0; at < frames; at += batchSize {
		end := at + batchSize
		if end > frames {
			end = frames
		}
		if err := c.SendBatch(all[at:end]); err != nil {
			return fmt.Errorf("client %d batch at %d: %w", cl, at, err)
		}
		for _, f := range all[at:end] {
			if err := mirror.AppendFrame(int(f.T*rate+0.5), f.Values); err != nil {
				return err
			}
		}
		batches++
		if batches%queryEvery != 0 {
			continue
		}
		// Barrier, then exact aggregates must match the local mirror.
		stored, err := c.Flush()
		if err != nil {
			return fmt.Errorf("client %d flush: %w", cl, err)
		}
		if stored != uint64(end) {
			return fmt.Errorf("client %d: flush reports %d stored, want %d", cl, stored, end)
		}
		tEnd := float64(end) / rate
		for _, win := range [][2]float64{{0, tEnd}, {tEnd / 4, tEnd / 2}} {
			ch := uint16((batches / queryEvery) % channels)
			got, err := c.Query(wire.Query{Kind: wire.QueryCount, Channel: ch, T0: win[0], T1: win[1]})
			if err != nil {
				return err
			}
			want, err := mirror.CountSamples(int(ch), win[0], win[1])
			if err != nil {
				return err
			}
			if math.Abs(got.Value-want) > 1e-9 {
				return fmt.Errorf("client %d: count[%v] = %v, mirror %v", cl, win, got.Value, want)
			}
			avg, err := c.Query(wire.Query{Kind: wire.QueryAverage, Channel: ch, T0: win[0], T1: win[1]})
			if err != nil {
				return err
			}
			wantAvg, wantOK, err := mirror.AverageValue(int(ch), win[0], win[1])
			if err != nil {
				return err
			}
			if avg.OK != wantOK || (wantOK && math.Abs(avg.Value-wantAvg) > 1e-9) {
				return fmt.Errorf("client %d: avg[%v] = %v/%v, mirror %v/%v", cl, win, avg.Value, avg.OK, wantAvg, wantOK)
			}
		}
	}

	// Approximate + progressive answers carry sound guaranteed bounds.
	if _, err := c.Flush(); err != nil {
		return err
	}
	exact, err := mirror.CountSamples(0, 0, 3)
	if err != nil {
		return err
	}
	approx, err := c.Query(wire.Query{Kind: wire.QueryApproxCount, Channel: 0, T0: 0, T1: 3, Arg: 12})
	if err != nil {
		return err
	}
	if math.Abs(approx.Value-exact) > approx.Bound+1e-6 {
		return fmt.Errorf("client %d: approx %v ± %v excludes exact %v", cl, approx.Value, approx.Bound, exact)
	}
	steps, err := c.QueryProgressive(wire.Query{Kind: wire.QueryProgressiveCount, Channel: 0, T0: 0, T1: 3, Arg: 6})
	if err != nil {
		return err
	}
	final := steps[len(steps)-1]
	if !final.Final || math.Abs(final.Value-exact) > 1e-6*math.Max(1, exact) {
		return fmt.Errorf("client %d: progressive final %v != exact %v", cl, final.Value, exact)
	}
	for _, st := range steps {
		if math.Abs(st.Value-exact) > st.Bound+1e-6 {
			return fmt.Errorf("client %d: progressive step %d outside bound", cl, st.Coefficients)
		}
	}

	ack, err := c.Close()
	if err != nil {
		return err
	}
	if ack.Stored != uint64(frames) || ack.Shed != 0 {
		return fmt.Errorf("client %d: close ack %+v, want %d stored", cl, ack, frames)
	}
	return nil
}

// TestServerShedPolicy forces deterministic shedding: batches larger than
// the whole queue can never fit, so every one is dropped with an explicit
// CodeShed ack and accounted for.
func TestServerShedPolicy(t *testing.T) {
	srv, addr := startServer(t, Config{
		Store:       testStoreCfg(),
		Policy:      PolicyShed,
		QueueFrames: 16,
	})
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	mins, maxs := ranges(2)
	if _, err := c.Hello(wire.Hello{Rate: 100, Mins: mins, Maxs: maxs}); err != nil {
		t.Fatal(err)
	}
	all := clientFrames(0, 96, 2)
	for at := 0; at < 96; at += 32 {
		if err := c.SendBatch(all[at : at+32]); err != nil {
			t.Fatal(err)
		}
	}
	ack, err := c.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ack.Stored != 0 || ack.Shed != 96 {
		t.Fatalf("close ack %+v, want all 96 frames shed", ack)
	}
	if c.ShedBatches() != 3 {
		t.Fatalf("client counted %d shed batches, want 3", c.ShedBatches())
	}
	snap := srv.Metrics()
	if snap.BatchesShed != 3 || snap.FramesShed != 96 {
		t.Fatalf("server shed accounting: %+v", snap)
	}
}

// TestServerIdleEviction: a silent session is evicted with an explicit
// idle-evicted error.
func TestServerIdleEviction(t *testing.T) {
	srv, addr := startServer(t, Config{Store: testStoreCfg(), IdleTimeout: 100 * time.Millisecond})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	mins, maxs := ranges(1)
	p, _ := wire.Hello{Rate: 100, Mins: mins, Maxs: maxs}.Encode()
	if err := wire.WriteMessage(conn, wire.MsgHello, p); err != nil {
		t.Fatal(err)
	}
	typ, _, err := wire.ReadMessage(conn)
	if err != nil || typ != wire.MsgWelcome {
		t.Fatalf("welcome: type=%d err=%v", typ, err)
	}
	// Stay silent past the idle timeout.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	typ, payload, err := wire.ReadMessage(conn)
	if err != nil {
		t.Fatalf("expected an eviction notice, got %v", err)
	}
	if typ != wire.MsgError {
		t.Fatalf("expected error message, got type %d", typ)
	}
	em, err := wire.DecodeErr(payload)
	if err != nil || em.Code != wire.CodeIdleEvicted {
		t.Fatalf("eviction code: %+v %v", em, err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for srv.Metrics().Evictions == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := srv.Metrics().Evictions; got != 1 {
		t.Fatalf("evictions = %d", got)
	}
}

// TestServerRejectsBadVersion: a wrong protocol version gets an explicit
// wire error, not a silent hangup.
func TestServerRejectsBadVersion(t *testing.T) {
	_, addr := startServer(t, Config{Store: testStoreCfg()})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	mins, maxs := ranges(1)
	p, _ := wire.Hello{Rate: 100, Mins: mins, Maxs: maxs}.Encode()
	p[4] = wire.Version + 9 // corrupt the version byte
	if err := wire.WriteMessage(conn, wire.MsgHello, p); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	typ, payload, err := wire.ReadMessage(conn)
	if err != nil || typ != wire.MsgError {
		t.Fatalf("expected wire error, got type=%d err=%v", typ, err)
	}
	em, _ := wire.DecodeErr(payload)
	if em.Code != wire.CodeBadVersion {
		t.Fatalf("code = %v", em.Code)
	}
}

// TestServerShutdownDrainsInFlight: frames acknowledged before shutdown
// are all stored; the lingering client is told the server is going away.
func TestServerShutdownDrains(t *testing.T) {
	srv, addr := startServer(t, Config{Store: testStoreCfg(), IdleTimeout: 5 * time.Second})
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	mins, maxs := ranges(3)
	if _, err := c.Hello(wire.Hello{Rate: 100, Mins: mins, Maxs: maxs}); err != nil {
		t.Fatal(err)
	}
	all := clientFrames(1, 1000, 3)
	for at := 0; at < 1000; at += 200 {
		if err := c.SendBatch(all[at : at+200]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Flush(); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	snap := srv.Metrics()
	if snap.FramesIngested != 1000 {
		t.Fatalf("drained %d frames, want 1000", snap.FramesIngested)
	}
	if snap.SessionsActive != 0 {
		t.Fatalf("sessions still active: %+v", snap)
	}
	// The client observes the shutdown as a wire error or a closed conn.
	_, err = c.Query(wire.Query{Kind: wire.QueryCount, Channel: 0, T0: 0, T1: 1})
	if err == nil {
		t.Fatal("query succeeded after shutdown")
	}
	var em wire.ErrMsg
	if errors.As(err, &em) && em.Code != wire.CodeShuttingDown {
		t.Fatalf("unexpected wire error: %v", em)
	}
}

// TestServerSecondListenerAfterShutdownFails documents that a Server is
// one-shot.
func TestServerServeAfterShutdown(t *testing.T) {
	srv := New(Config{Store: testStoreCfg()})
	if _, err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Serve(ln); err == nil {
		t.Fatal("Serve after Shutdown succeeded")
	}
}

// TestRegistrySharding unit-tests the sharded session map directly:
// round-robin distribution, single-removal semantics and forEach
// coverage, plus concurrent register/unregister churn under -race.
func TestRegistrySharding(t *testing.T) {
	r := newRegistry()
	const n = 500
	for id := uint64(1); id <= n; id++ {
		r.put(id, &session{id: id})
	}
	if got := r.len(); got != n {
		t.Fatalf("len = %d, want %d", got, n)
	}
	// Sequential IDs land round-robin: every shard holds some sessions.
	for i := range r.shards {
		if len(r.shards[i].m) == 0 {
			t.Fatalf("shard %d empty after %d sequential registrations", i, n)
		}
	}
	seen := 0
	r.forEach(func(*session) { seen++ })
	if seen != n {
		t.Fatalf("forEach visited %d, want %d", seen, n)
	}
	if !r.remove(7) {
		t.Fatal("first remove reported absent")
	}
	if r.remove(7) {
		t.Fatal("second remove reported present")
	}
	if got := r.len(); got != n-1 {
		t.Fatalf("len after remove = %d", got)
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := uint64(10000 + g*1000)
			for i := uint64(0); i < 200; i++ {
				r.put(base+i, &session{id: base + i})
				r.len()
				r.remove(base + i)
			}
		}(g)
	}
	wg.Wait()
	if got := r.len(); got != n-1 {
		t.Fatalf("len after churn = %d, want %d", got, n-1)
	}
}

// TestQueueDepthGauge checks the O(1) metrics gauge: after a flush
// barrier everything enqueued has been drained, so the gauge must read
// zero — and it must never have required walking sessions to compute.
func TestQueueDepthGauge(t *testing.T) {
	srv, addr := startServer(t, Config{Store: testStoreCfg(), FlushLatency: time.Millisecond})
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	mins, maxs := ranges(2)
	if _, err := c.Hello(wire.Hello{Rate: 100, HorizonTicks: 1000, Mins: mins, Maxs: maxs}); err != nil {
		t.Fatal(err)
	}
	all := clientFrames(0, 400, 2)
	for off := 0; off < len(all); off += 100 {
		if err := c.SendBatch(all[off : off+100]); err != nil {
			t.Fatal(err)
		}
	}
	stored, err := c.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if stored != 400 {
		t.Fatalf("flush barrier stored = %d, want 400", stored)
	}
	if d := srv.Metrics().QueueDepth; d != 0 {
		t.Fatalf("queue depth after flush barrier = %d, want 0", d)
	}
}
