package server

import (
	"bufio"
	"errors"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"aims/internal/core"
	"aims/internal/fleet"
	"aims/internal/journal"
	"aims/internal/obs"
	"aims/internal/stream"
	"aims/internal/wire"
)

// session is one registered device connection: its live store, bounded
// ingest queue and accounting. The connection's reader goroutine owns all
// writes to the socket, so responses are naturally ordered; a second
// goroutine (the acquisition consumer) drains the queue into the store.
type session struct {
	id    uint64
	idStr string // cached decimal form: traces attr it on every query
	srv   *Server
	conn  net.Conn
	bw    *bufio.Writer
	br    *bufio.Reader
	store *core.LiveStore
	rate  float64
	name  string // registration name from the Hello
	class string // device class from the Hello (v2); "" for v1 clients
	proto uint8  // protocol version the Hello was encoded at

	// ackSeq is the acknowledged client-stream watermark: the device-side
	// frame offset below which every frame has been accepted (enqueued or
	// knowingly shed). Only meaningful for v4 sessions, whose Batch.Seq
	// carries absolute frame offsets; owned by the reader goroutine.
	ackSeq  uint64
	sawPing bool // device heartbeats → liveness window replaces IdleTimeout

	// jsess is the session's durability handle (nil when the server runs
	// memory-only or journaling failed at registration). resumed is true
	// when registration adopted a store recovered from a previous process.
	jsess   *journal.Session
	resumed bool

	in        chan stream.Frame
	enqueued  atomic.Uint64 // frames pushed to the queue (written by the reader goroutine)
	shedB     atomic.Uint64 // batches shed (written by the reader goroutine)
	shedF     atomic.Uint64 // frames shed (written by the reader goroutine)
	stored    atomic.Uint64 // frames appended to the store
	badAppend atomic.Uint64

	// Sampled ingest batches carry a marker from the reader to the
	// acquisition consumer so queue wait and append time can be stamped on
	// the batch's trace. markerTarget caches the head marker's stored-count
	// target (0 = none) so the unsampled hot path pays one atomic load.
	markerMu     sync.Mutex
	markers      []batchMarker
	markerTarget atomic.Uint64

	closeRequested bool
}

// batchMarker correlates one sampled ingest batch with the moment the
// acquisition consumer finishes storing it: when the session's stored
// count reaches target, the batch's last frame has been appended.
type batchMarker struct {
	target      uint64
	enqueueDone time.Time
	tr          *obs.Trace
}

// chanSource adapts the session queue into a stream.TimedSource so ingest
// runs through the paper's double-buffered acquisition pipeline with
// bounded batching latency. Every successful receive decrements the
// server-wide queue-depth gauge its enqueue incremented.
type chanSource struct {
	ch    <-chan stream.Frame
	depth *obs.Gauge
}

func (c chanSource) Next() (stream.Frame, bool) {
	f, ok := <-c.ch
	if ok {
		c.depth.Add(-1)
	}
	return f, ok
}

func (c chanSource) NextTimeout(d time.Duration) (stream.Frame, bool, bool) {
	select {
	case f, ok := <-c.ch:
		if ok {
			c.depth.Add(-1)
		}
		return f, ok, false
	default:
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case f, ok := <-c.ch:
		if ok {
			c.depth.Add(-1)
		}
		return f, ok, false
	case <-t.C:
		return stream.Frame{}, false, true
	}
}

func (s *Server) handleConn(conn net.Conn) {
	sess := &session{
		srv:  s,
		conn: conn,
		bw:   bufio.NewWriterSize(conn, 64<<10),
		br:   bufio.NewReaderSize(conn, 64<<10),
	}
	defer conn.Close()

	if !sess.handshake() {
		return
	}
	s.register(sess)
	defer s.unregister(sess)
	w := wire.Welcome{SessionID: sess.id, Code: wire.CodeOK}
	if sess.resumed {
		w.Code = wire.CodeResumed
		s.metrics.resumesTotal.Inc()
	}
	if sess.proto >= 4 {
		// The high-watermark tells a resuming device exactly what the
		// server holds: replay starts there, everything below is deduped.
		w.AckSeq = sess.ackSeq
	}
	if sess.write(wire.MsgWelcome, w.Encode()) != nil || sess.flush() != nil {
		// The link died under the Welcome itself; park so the device's
		// retry still finds its state (else release the journal key).
		if !s.park(sess) && sess.jsess != nil {
			sess.jsess.Close(nil)
		}
		return
	}
	s.cfg.Logf("session %d: registered %d channels at %.1f Hz (resumed=%v ack=%d)",
		sess.id, sess.store.Channels(), sess.rate, sess.resumed, sess.ackSeq)

	// The acquisition consumer: double-buffered batches out of the queue
	// into the live store.
	sess.in = make(chan stream.Frame, s.cfg.QueueFrames)
	ingestDone := make(chan stream.AcquireStats, 1)
	go func() {
		src := chanSource{ch: sess.in, depth: s.metrics.queueDepth}
		stats := stream.AcquireFlushing(src, s.cfg.AcquireBuffer, s.cfg.FlushLatency, sess.storeBatch)
		ingestDone <- stats
	}()

	sess.readLoop()

	// Drain: no more enqueues; the consumer stores everything still queued.
	close(sess.in)
	<-ingestDone
	sess.abandonMarkers()

	if !sess.closeRequested && !s.isClosed() && s.park(sess) {
		// Ungraceful disconnect of a named session: its state is parked
		// (store, journal handle, acknowledged watermark) so a reconnect
		// resumes in place instead of starting over.
		s.cfg.Logf("session %d: link lost, parked %q for resume (stored=%d ack=%d)",
			sess.id, sess.name, sess.stored.Load(), sess.ackSeq)
		return
	}

	if sess.jsess != nil {
		// Durable drain: a final snapshot (or at least a WAL sync) covers
		// every stored frame before the session's files are released for a
		// future reconnect to adopt.
		if err := sess.jsess.Close(sess.store); err != nil {
			s.cfg.Logf("session %d: durable close: %v", sess.id, err)
		}
	}

	if sess.closeRequested {
		ack := wire.CloseAck{Stored: sess.stored.Load() - sess.badAppend.Load(), Shed: sess.shedF.Load()}
		if sess.write(wire.MsgCloseAck, ack.Encode()) == nil {
			sess.flush()
		}
	}
	s.cfg.Logf("session %d: closed (stored=%d shed=%d)", sess.id, sess.stored.Load(), sess.shedF.Load())
}

// write frames one message onto the session's buffered writer and
// accounts its bytes to the per-type wire counters. The write deadline is
// re-armed per message (not just per flush): a buffered-writer overflow
// hits the socket here, and a deadline armed minutes ago would fail it.
func (sess *session) write(typ byte, payload []byte) error {
	if wt := sess.srv.cfg.WriteTimeout; wt > 0 {
		sess.conn.SetWriteDeadline(time.Now().Add(wt))
	}
	if err := wire.WriteMessage(sess.bw, typ, payload); err != nil {
		return err
	}
	sess.srv.metrics.countOut(typ, len(payload))
	return nil
}

// flush pushes the response buffer to the socket under the write deadline,
// so a device that stopped reading can never wedge this goroutine.
func (sess *session) flush() error {
	if wt := sess.srv.cfg.WriteTimeout; wt > 0 {
		sess.conn.SetWriteDeadline(time.Now().Add(wt))
	}
	return sess.bw.Flush()
}

// handshake reads and validates the Hello and builds the live store. It
// reports whether the session may proceed (the caller registers the
// session and sends the Welcome).
func (sess *session) handshake() bool {
	srv := sess.srv
	sess.conn.SetReadDeadline(time.Now().Add(srv.cfg.IdleTimeout))
	typ, payload, err := wire.ReadMessage(sess.br)
	if err != nil {
		return false
	}
	srv.metrics.countIn(typ, len(payload))
	if typ != wire.MsgHello {
		sess.sendError(wire.CodeNotRegistered, "first message must be hello")
		return false
	}
	h, err := wire.DecodeHello(payload)
	if err != nil {
		sess.sendError(wire.CodeBadVersion, err.Error())
		return false
	}
	sess.rate = h.Rate
	sess.name = h.Name
	sess.class = h.Class
	sess.proto = h.Proto

	if d := srv.adoptDetached(h); d != nil {
		// The device reconnected while its previous incarnation's state was
		// parked: resume in place. The journal handle (if any) is still
		// open at the right offset, and ackSeq tells the device what to
		// replay. Adoption must run before journal.Attach — the parked
		// session still owns its journal key.
		sess.store = d.store
		sess.jsess = d.jsess
		sess.resumed = true
		sess.ackSeq = d.ackSeq
		return true
	}

	cfg := srv.cfg.Store
	cfg.Rate = h.Rate
	cfg.HorizonTicks = int(h.HorizonTicks)
	store, err := core.NewLiveStore(h.Mins, h.Maxs, cfg)
	if err != nil {
		sess.sendError(wire.CodeBadMessage, err.Error())
		return false
	}
	sess.store = store

	if srv.journal != nil {
		eff := store.Config()
		jsess, recovered, jerr := srv.journal.Attach(journal.Meta{
			Name:         h.Name,
			Rate:         h.Rate,
			HorizonTicks: eff.HorizonTicks,
			TimeBuckets:  eff.TimeBuckets,
			ValueBins:    eff.ValueBins,
			Mins:         h.Mins,
			Maxs:         h.Maxs,
		})
		if jerr != nil {
			// The session still serves, just without durability; the counter
			// makes the gap visible on the admin plane.
			srv.cfg.Logf("session %q: journaling unavailable: %v", h.Name, jerr)
			srv.metrics.journalDegraded.Inc()
		} else {
			sess.jsess = jsess
			if recovered != nil {
				// The device reconnected to state a previous process left
				// behind: serve queries over the recovered frames and resume
				// journaling where the old incarnation stopped.
				sess.store = recovered
				sess.resumed = true
				// The durable watermark (journaled frames, plus any higher
				// acknowledged-but-shed offset the WAL recorded) is the v4
				// resume point.
				sess.ackSeq = jsess.ClientSeq()
			}
		}
	}
	return true
}

func (sess *session) sendError(code wire.Code, text string) {
	msg := wire.ErrMsg{Code: code, Text: text}
	if sess.write(wire.MsgError, msg.Encode()) == nil {
		sess.flush()
	}
}

// storeBatch is the acquisition pipeline's store callback: it appends one
// double-buffered batch into the live store under a single write-lock
// acquisition (invalid frames are skipped inside AppendFrames).
func (sess *session) storeBatch(batch []stream.Frame) {
	m := sess.srv.metrics
	if sess.jsess != nil {
		// Write-ahead: the batch hits the journal before the store, so a
		// crash after this point replays it rather than losing it. Under the
		// block policy a dead disk stalls here until shutdown gives up.
		sess.jsess.AppendFrames(batch, func() bool { return !sess.srv.isClosed() })
	}
	t0 := time.Now()
	stored, _ := sess.store.AppendFrames(batch)
	end := time.Now()
	m.appendSeconds.Observe(end.Sub(t0).Seconds())
	if bad := uint64(len(batch) - stored); bad > 0 {
		sess.badAppend.Add(bad)
		m.appendErrors.Add(bad)
	}
	newStored := sess.stored.Add(uint64(len(batch))) // processed, including bad appends
	m.framesIngested.Add(uint64(stored))
	if t := sess.markerTarget.Load(); t != 0 && newStored >= t {
		sess.completeMarkers(newStored, t0, end)
	}
	if sess.jsess != nil {
		sess.jsess.MaybeSnapshot(sess.store)
	}
}

// completeMarkers finishes the traces of every sampled batch whose last
// frame this append covered: the queue-wait span runs from enqueue
// completion to append start, the append span over the storing call.
func (sess *session) completeMarkers(storedNow uint64, appendStart, appendEnd time.Time) {
	m := sess.srv.metrics
	sess.markerMu.Lock()
	for len(sess.markers) > 0 && sess.markers[0].target <= storedNow {
		mk := sess.markers[0]
		sess.markers = sess.markers[1:]
		m.queueWaitSeconds.Observe(appendStart.Sub(mk.enqueueDone).Seconds())
		mk.tr.Span("queue-wait", mk.enqueueDone, appendStart)
		mk.tr.Span("append", appendStart, appendEnd)
		mk.tr.Finish()
	}
	if len(sess.markers) > 0 {
		sess.markerTarget.Store(sess.markers[0].target)
	} else {
		sess.markerTarget.Store(0)
	}
	sess.markerMu.Unlock()
}

// abandonMarkers finishes any sampled traces still waiting on the
// consumer at session teardown (a push/complete race can orphan at most
// the last marker; its spans end at the drain instead of the append).
func (sess *session) abandonMarkers() {
	sess.markerMu.Lock()
	for _, mk := range sess.markers {
		mk.tr.Annotate("session-drain")
		mk.tr.Finish()
	}
	sess.markers = nil
	sess.markerTarget.Store(0)
	sess.markerMu.Unlock()
}

// pushMarker hands a sampled batch's trace to the acquisition consumer.
// If the consumer already stored past the target (it outran the reader),
// the trace is finished here with the observed wait.
func (sess *session) pushMarker(target uint64, enqueueDone time.Time, tr *obs.Trace) {
	m := sess.srv.metrics
	sess.markerMu.Lock()
	if sess.stored.Load() >= target {
		now := time.Now()
		m.queueWaitSeconds.Observe(now.Sub(enqueueDone).Seconds())
		tr.Span("queue-wait", enqueueDone, now)
		tr.Finish()
		sess.markerMu.Unlock()
		return
	}
	sess.markers = append(sess.markers, batchMarker{target: target, enqueueDone: enqueueDone, tr: tr})
	sess.markerTarget.Store(sess.markers[0].target)
	sess.markerMu.Unlock()
}

// readLoop processes messages until the client closes, errs, idles out or
// the server shuts down.
func (sess *session) readLoop() {
	srv := sess.srv
	for {
		// A heartbeating device tightens its own liveness window: missing
		// ~2.5 ping intervals means the link is gone, and waiting out the
		// full idle horizon would only delay the park-for-resume.
		window := srv.cfg.IdleTimeout
		if sess.sawPing && srv.cfg.Heartbeat > 0 {
			if hb := srv.cfg.Heartbeat * 5 / 2; hb < window {
				window = hb
			}
		}
		sess.conn.SetReadDeadline(time.Now().Add(window))
		typ, payload, err := wire.ReadMessage(sess.br)
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				if srv.isClosed() {
					sess.sendError(wire.CodeShuttingDown, "server shutting down")
				} else if sess.sawPing && window < srv.cfg.IdleTimeout {
					srv.cfg.Logf("session %d: heartbeat lost", sess.id)
				} else {
					srv.metrics.evictions.Inc()
					sess.sendError(wire.CodeIdleEvicted, "session idle")
				}
			}
			return
		}
		srv.metrics.countIn(typ, len(payload))
		switch typ {
		case wire.MsgBatch:
			if !sess.handleBatch(payload) {
				return
			}
		case wire.MsgFlush:
			if !sess.handleFlush() {
				return
			}
		case wire.MsgQuery:
			if !sess.handleQuery(payload) {
				return
			}
		case wire.MsgFleetQuery:
			if !sess.handleFleetQuery(payload) {
				return
			}
		case wire.MsgPing:
			p, perr := wire.DecodePing(payload)
			if perr != nil {
				sess.sendError(wire.CodeBadMessage, perr.Error())
				return
			}
			sess.sawPing = true
			srv.metrics.heartbeats.Inc()
			if sess.write(wire.MsgPong, wire.Pong{Nonce: p.Nonce}.Encode()) != nil || !sess.flushIfIdle() {
				return
			}
		case wire.MsgClose:
			sess.closeRequested = true
			return
		default:
			sess.sendError(wire.CodeBadMessage, "unexpected message type")
			return
		}
	}
}

// flushIfIdle pushes buffered responses out when no further client input
// is already buffered — batching acks under load without ever letting the
// client block on a response we are sitting on.
func (sess *session) flushIfIdle() bool {
	if sess.br.Buffered() == 0 {
		return sess.flush() == nil
	}
	return true
}

func (sess *session) handleBatch(payload []byte) bool {
	srv := sess.srv
	t0 := time.Now()
	// Begin instead of Sample: with the slow log armed every batch gets a
	// trace, so an ingest stall is captured with 100% probability even when
	// the 1/N sampler skips it.
	tr := srv.tracer.Begin("ingest", 0, false, t0)
	b, err := wire.DecodeBatch(payload, sess.store.Channels())
	t1 := time.Now()
	srv.metrics.decodeSeconds.Observe(t1.Sub(t0).Seconds())
	tr.Span("decode", t0, t1)
	if err != nil {
		tr.Finish()
		sess.sendError(wire.CodeBadMessage, err.Error())
		return false
	}
	if tr != nil {
		tr.SetAttr("session", sess.idStr)
		if sess.class != "" {
			tr.SetAttr("class", sess.class)
		}
		tr.SetAttr("bytes", strconv.Itoa(len(payload)))
		tr.SetAttr("frames", strconv.Itoa(len(b.Frames)))
	}
	ack := wire.BatchAck{Seq: b.Seq, Code: wire.CodeOK, Stored: uint32(len(b.Frames))}
	if sess.proto >= 4 {
		// Idempotent append: v4 batches carry absolute stream offsets, so a
		// replay after a reconnect is recognised against the acknowledged
		// watermark. Batches entirely at or below it are acknowledged and
		// dropped (at-least-once replay becomes exactly-once append); a
		// batch straddling it has its already-held prefix trimmed.
		end := b.Seq + uint64(len(b.Frames))
		if end <= sess.ackSeq {
			ack.Code = wire.CodeDuplicate
			srv.metrics.dupBatches.Inc()
			tr.Annotate("duplicate")
			tr.Finish()
			if sess.write(wire.MsgBatchAck, ack.Encode()) != nil {
				return false
			}
			return sess.flushIfIdle()
		}
		if b.Seq < sess.ackSeq {
			b.Frames = b.Frames[sess.ackSeq-b.Seq:]
			b.Seq = sess.ackSeq
			srv.metrics.dupBatches.Inc()
			tr.Annotate("trimmed")
		} else if b.Seq > sess.ackSeq {
			// A gap means frames went missing between device and server — a
			// correct client streams contiguously from the watermark, so
			// this is corruption or a broken sender. Failing fast tears the
			// link down; the reconnect resumes from the intact watermark.
			tr.Finish()
			sess.sendError(wire.CodeBadMessage, "batch offset ahead of session watermark")
			return false
		}
	}
	shed := false
	if srv.cfg.Policy == PolicyShed && len(sess.in)+len(b.Frames) > cap(sess.in) {
		shed = true
	}
	if shed {
		ack.Code = wire.CodeShed
		sess.shedB.Add(1)
		sess.shedF.Add(uint64(len(b.Frames)))
		srv.metrics.batchesShed.Inc()
		srv.metrics.framesShed.Add(uint64(len(b.Frames)))
		tr.Annotate("shed")
		tr.Finish()
		if sess.proto >= 4 {
			// Shed frames are acknowledged as lost and the watermark still
			// advances — the device must not replay them (by contract shed
			// is lossy). The journal records the divergence between client
			// offsets and journaled frames so a post-crash resume reports
			// the same watermark.
			sess.ackSeq = b.Seq + uint64(len(b.Frames))
			if sess.jsess != nil {
				sess.jsess.RecordAck(sess.ackSeq)
			}
		}
	} else {
		// Under PolicyBlock a full queue blocks here: the reader stops
		// draining the socket and the device feels the backpressure. The
		// depth gauge moves per frame so it stays honest mid-stall.
		for i := range b.Frames {
			sess.in <- b.Frames[i]
			srv.metrics.queueDepth.Add(1)
		}
		t2 := time.Now()
		tr.Span("enqueue", t1, t2)
		target := sess.enqueued.Add(uint64(len(b.Frames)))
		srv.metrics.batchesIngested.Inc()
		if tr != nil {
			// The acquisition consumer closes the trace once the batch's
			// last frame lands in the store (queue-wait + append spans).
			sess.pushMarker(target, t2, tr)
		}
		if sess.proto >= 4 {
			// Enqueued means acknowledged: the watermark covers the batch
			// even before the consumer journals it (the client's replay
			// buffer retains acked batches precisely because of this gap).
			sess.ackSeq = b.Seq + uint64(len(b.Frames))
		}
	}
	if sess.write(wire.MsgBatchAck, ack.Encode()) != nil {
		return false
	}
	return sess.flushIfIdle()
}

// handleFlush answers the client's drain barrier: every frame enqueued so
// far is stored before the ack goes out.
func (sess *session) handleFlush() bool {
	target := sess.enqueued.Load()
	deadline := time.Now().Add(sess.srv.cfg.IdleTimeout)
	for sess.stored.Load() < target {
		if time.Now().After(deadline) {
			sess.sendError(wire.CodeInternal, "flush barrier timed out")
			return false
		}
		time.Sleep(200 * time.Microsecond)
	}
	ack := wire.FlushAck{Stored: sess.stored.Load() - sess.badAppend.Load()}
	if sess.write(wire.MsgFlushAck, ack.Encode()) != nil {
		return false
	}
	return sess.flush() == nil
}

func (sess *session) handleQuery(payload []byte) bool {
	srv := sess.srv
	t0 := time.Now()
	q, err := wire.DecodeQuery(payload)
	t1 := time.Now()
	// The sampler is consulted only after decode because the wire context
	// (trace ID, forced sampling from the client's -trace flag) rides in
	// the payload. Sampled and forced queries trace live; everything else
	// runs allocation-free and is materialised into a trace AFTER the fact
	// if it crossed the slow threshold — the span tree is reconstructible
	// because the handler's own timestamps and the evaluation provenance in
	// qt carry everything a live trace would have stamped.
	var tr *obs.Trace
	if srv.tracer.TickSample(q.TraceSampled) {
		tr = srv.tracer.BeginAt("query", q.TraceID, true, t0)
	}
	if err != nil {
		tr.Span("decode", t0, t1)
		tr.Finish()
		sess.sendError(wire.CodeBadMessage, err.Error())
		return false
	}
	var qt core.QueryTrace
	results := sess.evaluate(q, &qt)
	t2 := time.Now()
	if tr == nil && srv.tracer.SlowExceeded(t2.Sub(t0)) {
		tr = srv.tracer.BeginAt("query", q.TraceID, false, t0)
	}
	if tr != nil {
		tr.Span("decode", t0, t1)
		tr.SetAttr("session", sess.idStr)
		if sess.class != "" {
			tr.SetAttr("class", sess.class)
		}
		if bv, bvErr := sess.store.BoxVolume(int(q.Channel), q.T0, q.T1); bvErr == nil {
			tr.SetAttr("box_volume", strconv.FormatInt(bv, 10))
		}
		evalSpan := tr.AddSpan(0, "evaluate", t1, t2)
		fleet.StampQueryTrace(tr, evalSpan, t1, &qt)
		if qt.PlanUsed {
			if qt.Plan.Hit {
				tr.SetAttr("plan_cache", "hit")
			} else {
				tr.SetAttr("plan_cache", "miss")
			}
		}
	}
	srv.metrics.observeQuery(t2.Sub(t1), tr.TraceID())
	for _, r := range results {
		if sess.write(wire.MsgResult, r.Encode()) != nil {
			tr.Finish()
			return false
		}
	}
	ok := sess.flush() == nil
	tr.Span("respond", t2, time.Now())
	tr.Finish()
	return ok
}

// handleFleetQuery answers one cross-session aggregate. Scatter-gather
// and merge run in this session's reader goroutine (the evaluator fans
// out internally); decode failures — including malformed ranges and
// scopes — tear the session down like any other bad message, while
// per-session evaluation failures ride back inside the FleetResult.
func (sess *session) handleFleetQuery(payload []byte) bool {
	srv := sess.srv
	t0 := time.Now()
	fq, err := wire.DecodeFleetQuery(payload)
	t1 := time.Now()
	tr := srv.tracer.Begin("fleet-query", fq.TraceID, fq.TraceSampled, t0)
	tr.Span("decode", t0, t1)
	if err != nil {
		tr.Finish()
		sess.sendError(wire.CodeBadQuery, err.Error())
		return false
	}
	var evalSpan obs.SpanID
	if tr != nil {
		tr.SetAttr("session", sess.idStr)
		tr.SetAttr("scope", fq.Scope.String())
		evalSpan = tr.StartSpan(0, "evaluate")
	}
	// The scatter workers stitch one child subtree per scoped session under
	// the evaluate span (queue wait, seal, plan hit/compile, dot product),
	// so the whole fan-out reads as one tree on /tracez?id=.
	res := srv.evaluateFleetTraced(fq, tr, evalSpan)
	t2 := time.Now()
	if tr != nil {
		tr.EndSpan(evalSpan)
		tr.SetAttr("sessions", strconv.Itoa(int(res.Sessions)))
		tr.SetAttr("merged", strconv.Itoa(int(res.Merged)))
	}
	srv.metrics.observeQuery(t2.Sub(t1), tr.TraceID())
	p, err := res.Encode()
	if err != nil {
		tr.Finish()
		sess.sendError(wire.CodeInternal, err.Error())
		return false
	}
	if sess.write(wire.MsgFleetResult, p) != nil {
		tr.Finish()
		return false
	}
	ok := sess.flush() == nil
	tr.Span("respond", t2, time.Now())
	tr.Finish()
	return ok
}

// evaluate answers one query against the live store; a non-nil qt records
// the evaluation's provenance (seal/plan/dot timings, box volume) for the
// handler's trace. Errors become a CodeBadQuery result rather than tearing
// the session down.
func (sess *session) evaluate(q wire.Query, qt *core.QueryTrace) []wire.Result {
	ch := int(q.Channel)
	bad := func() []wire.Result {
		return []wire.Result{{Kind: q.Kind, Final: true, Code: wire.CodeBadQuery}}
	}
	switch q.Kind {
	case wire.QueryCount:
		v, err := sess.store.CountSamples(ch, q.T0, q.T1)
		if err != nil {
			return bad()
		}
		return []wire.Result{{Kind: q.Kind, Final: true, OK: true, Value: v}}
	case wire.QueryAverage:
		v, ok, err := sess.store.AverageValue(ch, q.T0, q.T1)
		if err != nil {
			return bad()
		}
		return []wire.Result{{Kind: q.Kind, Final: true, OK: ok, Value: v}}
	case wire.QueryVariance:
		v, ok, err := sess.store.VarianceValue(ch, q.T0, q.T1)
		if err != nil {
			return bad()
		}
		return []wire.Result{{Kind: q.Kind, Final: true, OK: ok, Value: v}}
	case wire.QueryApproxCount:
		est, bound, err := sess.store.ApproximateCountTraced(ch, q.T0, q.T1, int(q.Arg), qt)
		if err != nil {
			return bad()
		}
		return []wire.Result{{Kind: q.Kind, Final: true, OK: true, Value: est, Bound: bound, Coefficients: q.Arg}}
	case wire.QueryProgressiveCount:
		steps, err := sess.store.ProgressiveCountTraced(ch, q.T0, q.T1, int(q.Arg), qt)
		if err != nil || len(steps) == 0 {
			return bad()
		}
		out := make([]wire.Result, len(steps))
		for i, st := range steps {
			out[i] = wire.Result{
				Kind:         q.Kind,
				Final:        i == len(steps)-1,
				OK:           true,
				Value:        st.Estimate,
				Bound:        st.ErrorBound,
				Coefficients: uint32(st.Coefficients),
			}
		}
		return out
	}
	return bad()
}
