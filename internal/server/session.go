package server

import (
	"bufio"
	"errors"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"aims/internal/core"
	"aims/internal/fleet"
	"aims/internal/journal"
	"aims/internal/obs"
	"aims/internal/stream"
	"aims/internal/wire"
)

// session is one registered device connection: its live store, bounded
// ingest queue and accounting. The connection's reader goroutine owns all
// writes to the socket, so responses are naturally ordered; a second
// goroutine (the acquisition consumer) drains the queue into the store.
type session struct {
	id    uint64
	idStr string // cached decimal form: traces attr it on every query
	srv   *Server
	conn  net.Conn
	bw    *bufio.Writer
	br    *bufio.Reader
	store *core.LiveStore
	rate  float64
	name  string // registration name from the Hello
	class string // device class from the Hello (v2); "" for v1 clients

	// jsess is the session's durability handle (nil when the server runs
	// memory-only or journaling failed at registration). resumed is true
	// when registration adopted a store recovered from a previous process.
	jsess   *journal.Session
	resumed bool

	in        chan stream.Frame
	enqueued  atomic.Uint64 // frames pushed to the queue (written by the reader goroutine)
	shedB     atomic.Uint64 // batches shed (written by the reader goroutine)
	shedF     atomic.Uint64 // frames shed (written by the reader goroutine)
	stored    atomic.Uint64 // frames appended to the store
	badAppend atomic.Uint64

	// Sampled ingest batches carry a marker from the reader to the
	// acquisition consumer so queue wait and append time can be stamped on
	// the batch's trace. markerTarget caches the head marker's stored-count
	// target (0 = none) so the unsampled hot path pays one atomic load.
	markerMu     sync.Mutex
	markers      []batchMarker
	markerTarget atomic.Uint64

	closeRequested bool
}

// batchMarker correlates one sampled ingest batch with the moment the
// acquisition consumer finishes storing it: when the session's stored
// count reaches target, the batch's last frame has been appended.
type batchMarker struct {
	target      uint64
	enqueueDone time.Time
	tr          *obs.Trace
}

// chanSource adapts the session queue into a stream.TimedSource so ingest
// runs through the paper's double-buffered acquisition pipeline with
// bounded batching latency. Every successful receive decrements the
// server-wide queue-depth gauge its enqueue incremented.
type chanSource struct {
	ch    <-chan stream.Frame
	depth *obs.Gauge
}

func (c chanSource) Next() (stream.Frame, bool) {
	f, ok := <-c.ch
	if ok {
		c.depth.Add(-1)
	}
	return f, ok
}

func (c chanSource) NextTimeout(d time.Duration) (stream.Frame, bool, bool) {
	select {
	case f, ok := <-c.ch:
		if ok {
			c.depth.Add(-1)
		}
		return f, ok, false
	default:
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case f, ok := <-c.ch:
		if ok {
			c.depth.Add(-1)
		}
		return f, ok, false
	case <-t.C:
		return stream.Frame{}, false, true
	}
}

func (s *Server) handleConn(conn net.Conn) {
	sess := &session{
		srv:  s,
		conn: conn,
		bw:   bufio.NewWriterSize(conn, 64<<10),
		br:   bufio.NewReaderSize(conn, 64<<10),
	}
	defer conn.Close()

	if !sess.handshake() {
		return
	}
	s.register(sess)
	defer s.unregister(sess)
	w := wire.Welcome{SessionID: sess.id, Code: wire.CodeOK}
	if sess.resumed {
		w.Code = wire.CodeResumed
	}
	if sess.write(wire.MsgWelcome, w.Encode()) != nil || sess.bw.Flush() != nil {
		if sess.jsess != nil {
			sess.jsess.Close(nil)
		}
		return
	}
	s.cfg.Logf("session %d: registered %d channels at %.1f Hz (resumed=%v)",
		sess.id, sess.store.Channels(), sess.rate, sess.resumed)

	// The acquisition consumer: double-buffered batches out of the queue
	// into the live store.
	sess.in = make(chan stream.Frame, s.cfg.QueueFrames)
	ingestDone := make(chan stream.AcquireStats, 1)
	go func() {
		src := chanSource{ch: sess.in, depth: s.metrics.queueDepth}
		stats := stream.AcquireFlushing(src, s.cfg.AcquireBuffer, s.cfg.FlushLatency, sess.storeBatch)
		ingestDone <- stats
	}()

	sess.readLoop()

	// Drain: no more enqueues; the consumer stores everything still queued.
	close(sess.in)
	<-ingestDone
	sess.abandonMarkers()

	if sess.jsess != nil {
		// Durable drain: a final snapshot (or at least a WAL sync) covers
		// every stored frame before the session's files are released for a
		// future reconnect to adopt.
		if err := sess.jsess.Close(sess.store); err != nil {
			s.cfg.Logf("session %d: durable close: %v", sess.id, err)
		}
	}

	if sess.closeRequested {
		ack := wire.CloseAck{Stored: sess.stored.Load() - sess.badAppend.Load(), Shed: sess.shedF.Load()}
		if sess.write(wire.MsgCloseAck, ack.Encode()) == nil {
			sess.bw.Flush()
		}
	}
	s.cfg.Logf("session %d: closed (stored=%d shed=%d)", sess.id, sess.stored.Load(), sess.shedF.Load())
}

// write frames one message onto the session's buffered writer and
// accounts its bytes to the per-type wire counters.
func (sess *session) write(typ byte, payload []byte) error {
	if err := wire.WriteMessage(sess.bw, typ, payload); err != nil {
		return err
	}
	sess.srv.metrics.countOut(typ, len(payload))
	return nil
}

// handshake reads and validates the Hello and builds the live store. It
// reports whether the session may proceed (the caller registers the
// session and sends the Welcome).
func (sess *session) handshake() bool {
	srv := sess.srv
	sess.conn.SetReadDeadline(time.Now().Add(srv.cfg.IdleTimeout))
	typ, payload, err := wire.ReadMessage(sess.br)
	if err != nil {
		return false
	}
	srv.metrics.countIn(typ, len(payload))
	if typ != wire.MsgHello {
		sess.sendError(wire.CodeNotRegistered, "first message must be hello")
		return false
	}
	h, err := wire.DecodeHello(payload)
	if err != nil {
		sess.sendError(wire.CodeBadVersion, err.Error())
		return false
	}
	cfg := srv.cfg.Store
	cfg.Rate = h.Rate
	cfg.HorizonTicks = int(h.HorizonTicks)
	store, err := core.NewLiveStore(h.Mins, h.Maxs, cfg)
	if err != nil {
		sess.sendError(wire.CodeBadMessage, err.Error())
		return false
	}
	sess.store = store
	sess.rate = h.Rate
	sess.name = h.Name
	sess.class = h.Class

	if srv.journal != nil {
		eff := store.Config()
		jsess, recovered, jerr := srv.journal.Attach(journal.Meta{
			Name:         h.Name,
			Rate:         h.Rate,
			HorizonTicks: eff.HorizonTicks,
			TimeBuckets:  eff.TimeBuckets,
			ValueBins:    eff.ValueBins,
			Mins:         h.Mins,
			Maxs:         h.Maxs,
		})
		if jerr != nil {
			// The session still serves, just without durability; the counter
			// makes the gap visible on the admin plane.
			srv.cfg.Logf("session %q: journaling unavailable: %v", h.Name, jerr)
			srv.metrics.journalDegraded.Inc()
		} else {
			sess.jsess = jsess
			if recovered != nil {
				// The device reconnected to state a previous process left
				// behind: serve queries over the recovered frames and resume
				// journaling where the old incarnation stopped.
				sess.store = recovered
				sess.resumed = true
			}
		}
	}
	return true
}

func (sess *session) sendError(code wire.Code, text string) {
	msg := wire.ErrMsg{Code: code, Text: text}
	if sess.write(wire.MsgError, msg.Encode()) == nil {
		sess.bw.Flush()
	}
}

// storeBatch is the acquisition pipeline's store callback: it appends one
// double-buffered batch into the live store under a single write-lock
// acquisition (invalid frames are skipped inside AppendFrames).
func (sess *session) storeBatch(batch []stream.Frame) {
	m := sess.srv.metrics
	if sess.jsess != nil {
		// Write-ahead: the batch hits the journal before the store, so a
		// crash after this point replays it rather than losing it. Under the
		// block policy a dead disk stalls here until shutdown gives up.
		sess.jsess.AppendFrames(batch, func() bool { return !sess.srv.isClosed() })
	}
	t0 := time.Now()
	stored, _ := sess.store.AppendFrames(batch)
	end := time.Now()
	m.appendSeconds.Observe(end.Sub(t0).Seconds())
	if bad := uint64(len(batch) - stored); bad > 0 {
		sess.badAppend.Add(bad)
		m.appendErrors.Add(bad)
	}
	newStored := sess.stored.Add(uint64(len(batch))) // processed, including bad appends
	m.framesIngested.Add(uint64(stored))
	if t := sess.markerTarget.Load(); t != 0 && newStored >= t {
		sess.completeMarkers(newStored, t0, end)
	}
	if sess.jsess != nil {
		sess.jsess.MaybeSnapshot(sess.store)
	}
}

// completeMarkers finishes the traces of every sampled batch whose last
// frame this append covered: the queue-wait span runs from enqueue
// completion to append start, the append span over the storing call.
func (sess *session) completeMarkers(storedNow uint64, appendStart, appendEnd time.Time) {
	m := sess.srv.metrics
	sess.markerMu.Lock()
	for len(sess.markers) > 0 && sess.markers[0].target <= storedNow {
		mk := sess.markers[0]
		sess.markers = sess.markers[1:]
		m.queueWaitSeconds.Observe(appendStart.Sub(mk.enqueueDone).Seconds())
		mk.tr.Span("queue-wait", mk.enqueueDone, appendStart)
		mk.tr.Span("append", appendStart, appendEnd)
		mk.tr.Finish()
	}
	if len(sess.markers) > 0 {
		sess.markerTarget.Store(sess.markers[0].target)
	} else {
		sess.markerTarget.Store(0)
	}
	sess.markerMu.Unlock()
}

// abandonMarkers finishes any sampled traces still waiting on the
// consumer at session teardown (a push/complete race can orphan at most
// the last marker; its spans end at the drain instead of the append).
func (sess *session) abandonMarkers() {
	sess.markerMu.Lock()
	for _, mk := range sess.markers {
		mk.tr.Annotate("session-drain")
		mk.tr.Finish()
	}
	sess.markers = nil
	sess.markerTarget.Store(0)
	sess.markerMu.Unlock()
}

// pushMarker hands a sampled batch's trace to the acquisition consumer.
// If the consumer already stored past the target (it outran the reader),
// the trace is finished here with the observed wait.
func (sess *session) pushMarker(target uint64, enqueueDone time.Time, tr *obs.Trace) {
	m := sess.srv.metrics
	sess.markerMu.Lock()
	if sess.stored.Load() >= target {
		now := time.Now()
		m.queueWaitSeconds.Observe(now.Sub(enqueueDone).Seconds())
		tr.Span("queue-wait", enqueueDone, now)
		tr.Finish()
		sess.markerMu.Unlock()
		return
	}
	sess.markers = append(sess.markers, batchMarker{target: target, enqueueDone: enqueueDone, tr: tr})
	sess.markerTarget.Store(sess.markers[0].target)
	sess.markerMu.Unlock()
}

// readLoop processes messages until the client closes, errs, idles out or
// the server shuts down.
func (sess *session) readLoop() {
	srv := sess.srv
	for {
		sess.conn.SetReadDeadline(time.Now().Add(srv.cfg.IdleTimeout))
		typ, payload, err := wire.ReadMessage(sess.br)
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				if srv.isClosed() {
					sess.sendError(wire.CodeShuttingDown, "server shutting down")
				} else {
					srv.metrics.evictions.Inc()
					sess.sendError(wire.CodeIdleEvicted, "session idle")
				}
			}
			return
		}
		srv.metrics.countIn(typ, len(payload))
		switch typ {
		case wire.MsgBatch:
			if !sess.handleBatch(payload) {
				return
			}
		case wire.MsgFlush:
			if !sess.handleFlush() {
				return
			}
		case wire.MsgQuery:
			if !sess.handleQuery(payload) {
				return
			}
		case wire.MsgFleetQuery:
			if !sess.handleFleetQuery(payload) {
				return
			}
		case wire.MsgClose:
			sess.closeRequested = true
			return
		default:
			sess.sendError(wire.CodeBadMessage, "unexpected message type")
			return
		}
	}
}

// flushIfIdle pushes buffered responses out when no further client input
// is already buffered — batching acks under load without ever letting the
// client block on a response we are sitting on.
func (sess *session) flushIfIdle() bool {
	if sess.br.Buffered() == 0 {
		return sess.bw.Flush() == nil
	}
	return true
}

func (sess *session) handleBatch(payload []byte) bool {
	srv := sess.srv
	t0 := time.Now()
	// Begin instead of Sample: with the slow log armed every batch gets a
	// trace, so an ingest stall is captured with 100% probability even when
	// the 1/N sampler skips it.
	tr := srv.tracer.Begin("ingest", 0, false, t0)
	b, err := wire.DecodeBatch(payload, sess.store.Channels())
	t1 := time.Now()
	srv.metrics.decodeSeconds.Observe(t1.Sub(t0).Seconds())
	tr.Span("decode", t0, t1)
	if err != nil {
		tr.Finish()
		sess.sendError(wire.CodeBadMessage, err.Error())
		return false
	}
	if tr != nil {
		tr.SetAttr("session", sess.idStr)
		if sess.class != "" {
			tr.SetAttr("class", sess.class)
		}
		tr.SetAttr("bytes", strconv.Itoa(len(payload)))
		tr.SetAttr("frames", strconv.Itoa(len(b.Frames)))
	}
	ack := wire.BatchAck{Seq: b.Seq, Code: wire.CodeOK, Stored: uint32(len(b.Frames))}
	shed := false
	if srv.cfg.Policy == PolicyShed && len(sess.in)+len(b.Frames) > cap(sess.in) {
		shed = true
	}
	if shed {
		ack.Code = wire.CodeShed
		sess.shedB.Add(1)
		sess.shedF.Add(uint64(len(b.Frames)))
		srv.metrics.batchesShed.Inc()
		srv.metrics.framesShed.Add(uint64(len(b.Frames)))
		tr.Annotate("shed")
		tr.Finish()
	} else {
		// Under PolicyBlock a full queue blocks here: the reader stops
		// draining the socket and the device feels the backpressure. The
		// depth gauge moves per frame so it stays honest mid-stall.
		for i := range b.Frames {
			sess.in <- b.Frames[i]
			srv.metrics.queueDepth.Add(1)
		}
		t2 := time.Now()
		tr.Span("enqueue", t1, t2)
		target := sess.enqueued.Add(uint64(len(b.Frames)))
		srv.metrics.batchesIngested.Inc()
		if tr != nil {
			// The acquisition consumer closes the trace once the batch's
			// last frame lands in the store (queue-wait + append spans).
			sess.pushMarker(target, t2, tr)
		}
	}
	if sess.write(wire.MsgBatchAck, ack.Encode()) != nil {
		return false
	}
	return sess.flushIfIdle()
}

// handleFlush answers the client's drain barrier: every frame enqueued so
// far is stored before the ack goes out.
func (sess *session) handleFlush() bool {
	target := sess.enqueued.Load()
	deadline := time.Now().Add(sess.srv.cfg.IdleTimeout)
	for sess.stored.Load() < target {
		if time.Now().After(deadline) {
			sess.sendError(wire.CodeInternal, "flush barrier timed out")
			return false
		}
		time.Sleep(200 * time.Microsecond)
	}
	ack := wire.FlushAck{Stored: sess.stored.Load() - sess.badAppend.Load()}
	if sess.write(wire.MsgFlushAck, ack.Encode()) != nil {
		return false
	}
	return sess.bw.Flush() == nil
}

func (sess *session) handleQuery(payload []byte) bool {
	srv := sess.srv
	t0 := time.Now()
	q, err := wire.DecodeQuery(payload)
	t1 := time.Now()
	// The sampler is consulted only after decode because the wire context
	// (trace ID, forced sampling from the client's -trace flag) rides in
	// the payload. Sampled and forced queries trace live; everything else
	// runs allocation-free and is materialised into a trace AFTER the fact
	// if it crossed the slow threshold — the span tree is reconstructible
	// because the handler's own timestamps and the evaluation provenance in
	// qt carry everything a live trace would have stamped.
	var tr *obs.Trace
	if srv.tracer.TickSample(q.TraceSampled) {
		tr = srv.tracer.BeginAt("query", q.TraceID, true, t0)
	}
	if err != nil {
		tr.Span("decode", t0, t1)
		tr.Finish()
		sess.sendError(wire.CodeBadMessage, err.Error())
		return false
	}
	var qt core.QueryTrace
	results := sess.evaluate(q, &qt)
	t2 := time.Now()
	if tr == nil && srv.tracer.SlowExceeded(t2.Sub(t0)) {
		tr = srv.tracer.BeginAt("query", q.TraceID, false, t0)
	}
	if tr != nil {
		tr.Span("decode", t0, t1)
		tr.SetAttr("session", sess.idStr)
		if sess.class != "" {
			tr.SetAttr("class", sess.class)
		}
		if bv, bvErr := sess.store.BoxVolume(int(q.Channel), q.T0, q.T1); bvErr == nil {
			tr.SetAttr("box_volume", strconv.FormatInt(bv, 10))
		}
		evalSpan := tr.AddSpan(0, "evaluate", t1, t2)
		fleet.StampQueryTrace(tr, evalSpan, t1, &qt)
		if qt.PlanUsed {
			if qt.Plan.Hit {
				tr.SetAttr("plan_cache", "hit")
			} else {
				tr.SetAttr("plan_cache", "miss")
			}
		}
	}
	srv.metrics.observeQuery(t2.Sub(t1), tr.TraceID())
	for _, r := range results {
		if sess.write(wire.MsgResult, r.Encode()) != nil {
			tr.Finish()
			return false
		}
	}
	ok := sess.bw.Flush() == nil
	tr.Span("respond", t2, time.Now())
	tr.Finish()
	return ok
}

// handleFleetQuery answers one cross-session aggregate. Scatter-gather
// and merge run in this session's reader goroutine (the evaluator fans
// out internally); decode failures — including malformed ranges and
// scopes — tear the session down like any other bad message, while
// per-session evaluation failures ride back inside the FleetResult.
func (sess *session) handleFleetQuery(payload []byte) bool {
	srv := sess.srv
	t0 := time.Now()
	fq, err := wire.DecodeFleetQuery(payload)
	t1 := time.Now()
	tr := srv.tracer.Begin("fleet-query", fq.TraceID, fq.TraceSampled, t0)
	tr.Span("decode", t0, t1)
	if err != nil {
		tr.Finish()
		sess.sendError(wire.CodeBadQuery, err.Error())
		return false
	}
	var evalSpan obs.SpanID
	if tr != nil {
		tr.SetAttr("session", sess.idStr)
		tr.SetAttr("scope", fq.Scope.String())
		evalSpan = tr.StartSpan(0, "evaluate")
	}
	// The scatter workers stitch one child subtree per scoped session under
	// the evaluate span (queue wait, seal, plan hit/compile, dot product),
	// so the whole fan-out reads as one tree on /tracez?id=.
	res := srv.evaluateFleetTraced(fq, tr, evalSpan)
	t2 := time.Now()
	if tr != nil {
		tr.EndSpan(evalSpan)
		tr.SetAttr("sessions", strconv.Itoa(int(res.Sessions)))
		tr.SetAttr("merged", strconv.Itoa(int(res.Merged)))
	}
	srv.metrics.observeQuery(t2.Sub(t1), tr.TraceID())
	p, err := res.Encode()
	if err != nil {
		tr.Finish()
		sess.sendError(wire.CodeInternal, err.Error())
		return false
	}
	if sess.write(wire.MsgFleetResult, p) != nil {
		tr.Finish()
		return false
	}
	ok := sess.bw.Flush() == nil
	tr.Span("respond", t2, time.Now())
	tr.Finish()
	return ok
}

// evaluate answers one query against the live store; a non-nil qt records
// the evaluation's provenance (seal/plan/dot timings, box volume) for the
// handler's trace. Errors become a CodeBadQuery result rather than tearing
// the session down.
func (sess *session) evaluate(q wire.Query, qt *core.QueryTrace) []wire.Result {
	ch := int(q.Channel)
	bad := func() []wire.Result {
		return []wire.Result{{Kind: q.Kind, Final: true, Code: wire.CodeBadQuery}}
	}
	switch q.Kind {
	case wire.QueryCount:
		v, err := sess.store.CountSamples(ch, q.T0, q.T1)
		if err != nil {
			return bad()
		}
		return []wire.Result{{Kind: q.Kind, Final: true, OK: true, Value: v}}
	case wire.QueryAverage:
		v, ok, err := sess.store.AverageValue(ch, q.T0, q.T1)
		if err != nil {
			return bad()
		}
		return []wire.Result{{Kind: q.Kind, Final: true, OK: ok, Value: v}}
	case wire.QueryVariance:
		v, ok, err := sess.store.VarianceValue(ch, q.T0, q.T1)
		if err != nil {
			return bad()
		}
		return []wire.Result{{Kind: q.Kind, Final: true, OK: ok, Value: v}}
	case wire.QueryApproxCount:
		est, bound, err := sess.store.ApproximateCountTraced(ch, q.T0, q.T1, int(q.Arg), qt)
		if err != nil {
			return bad()
		}
		return []wire.Result{{Kind: q.Kind, Final: true, OK: true, Value: est, Bound: bound, Coefficients: q.Arg}}
	case wire.QueryProgressiveCount:
		steps, err := sess.store.ProgressiveCountTraced(ch, q.T0, q.T1, int(q.Arg), qt)
		if err != nil || len(steps) == 0 {
			return bad()
		}
		out := make([]wire.Result, len(steps))
		for i, st := range steps {
			out[i] = wire.Result{
				Kind:         q.Kind,
				Final:        i == len(steps)-1,
				OK:           true,
				Value:        st.Estimate,
				Bound:        st.ErrorBound,
				Coefficients: uint32(st.Coefficients),
			}
		}
		return out
	}
	return bad()
}
