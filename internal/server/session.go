package server

import (
	"bufio"
	"errors"
	"net"
	"sync/atomic"
	"time"

	"aims/internal/core"
	"aims/internal/stream"
	"aims/internal/wire"
)

// session is one registered device connection: its live store, bounded
// ingest queue and accounting. The connection's reader goroutine owns all
// writes to the socket, so responses are naturally ordered; a second
// goroutine (the acquisition consumer) drains the queue into the store.
type session struct {
	id    uint64
	srv   *Server
	conn  net.Conn
	bw    *bufio.Writer
	br    *bufio.Reader
	store *core.LiveStore
	rate  float64

	in        chan stream.Frame
	enqueued  uint64        // frames pushed to the queue (reader goroutine only)
	shedB     uint64        // batches shed (reader goroutine only)
	shedF     uint64        // frames shed (reader goroutine only)
	stored    atomic.Uint64 // frames appended to the store
	badAppend atomic.Uint64

	closeRequested bool
}

// chanSource adapts the session queue into a stream.TimedSource so ingest
// runs through the paper's double-buffered acquisition pipeline with
// bounded batching latency. Every successful receive decrements the
// server-wide queue-depth gauge its enqueue incremented.
type chanSource struct {
	ch    <-chan stream.Frame
	depth *atomic.Int64
}

func (c chanSource) Next() (stream.Frame, bool) {
	f, ok := <-c.ch
	if ok {
		c.depth.Add(-1)
	}
	return f, ok
}

func (c chanSource) NextTimeout(d time.Duration) (stream.Frame, bool, bool) {
	select {
	case f, ok := <-c.ch:
		if ok {
			c.depth.Add(-1)
		}
		return f, ok, false
	default:
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case f, ok := <-c.ch:
		if ok {
			c.depth.Add(-1)
		}
		return f, ok, false
	case <-t.C:
		return stream.Frame{}, false, true
	}
}

func (s *Server) handleConn(conn net.Conn) {
	sess := &session{
		srv:  s,
		conn: conn,
		bw:   bufio.NewWriterSize(conn, 64<<10),
		br:   bufio.NewReaderSize(conn, 64<<10),
	}
	defer conn.Close()

	if !sess.handshake() {
		return
	}
	s.register(sess)
	defer s.unregister(sess)
	w := wire.Welcome{SessionID: sess.id, Code: wire.CodeOK}
	if wire.WriteMessage(sess.bw, wire.MsgWelcome, w.Encode()) != nil || sess.bw.Flush() != nil {
		return
	}
	s.cfg.Logf("session %d: registered %d channels at %.1f Hz", sess.id, sess.store.Channels(), sess.rate)

	// The acquisition consumer: double-buffered batches out of the queue
	// into the live store.
	sess.in = make(chan stream.Frame, s.cfg.QueueFrames)
	ingestDone := make(chan stream.AcquireStats, 1)
	go func() {
		src := chanSource{ch: sess.in, depth: &s.metrics.queueDepth}
		stats := stream.AcquireFlushing(src, s.cfg.AcquireBuffer, s.cfg.FlushLatency, sess.storeBatch)
		ingestDone <- stats
	}()

	sess.readLoop()

	// Drain: no more enqueues; the consumer stores everything still queued.
	close(sess.in)
	<-ingestDone

	if sess.closeRequested {
		ack := wire.CloseAck{Stored: sess.stored.Load() - sess.badAppend.Load(), Shed: sess.shedF}
		if wire.WriteMessage(sess.bw, wire.MsgCloseAck, ack.Encode()) == nil {
			sess.bw.Flush()
		}
	}
	s.cfg.Logf("session %d: closed (stored=%d shed=%d)", sess.id, sess.stored.Load(), sess.shedF)
}

// handshake reads and validates the Hello and builds the live store. It
// reports whether the session may proceed (the caller registers the
// session and sends the Welcome).
func (sess *session) handshake() bool {
	srv := sess.srv
	sess.conn.SetReadDeadline(time.Now().Add(srv.cfg.IdleTimeout))
	typ, payload, err := wire.ReadMessage(sess.br)
	if err != nil {
		return false
	}
	if typ != wire.MsgHello {
		sess.sendError(wire.CodeNotRegistered, "first message must be hello")
		return false
	}
	h, err := wire.DecodeHello(payload)
	if err != nil {
		sess.sendError(wire.CodeBadVersion, err.Error())
		return false
	}
	cfg := srv.cfg.Store
	cfg.Rate = h.Rate
	cfg.HorizonTicks = int(h.HorizonTicks)
	store, err := core.NewLiveStore(h.Mins, h.Maxs, cfg)
	if err != nil {
		sess.sendError(wire.CodeBadMessage, err.Error())
		return false
	}
	sess.store = store
	sess.rate = h.Rate
	return true
}

func (sess *session) sendError(code wire.Code, text string) {
	msg := wire.ErrMsg{Code: code, Text: text}
	if wire.WriteMessage(sess.bw, wire.MsgError, msg.Encode()) == nil {
		sess.bw.Flush()
	}
}

// storeBatch is the acquisition pipeline's store callback: it appends one
// double-buffered batch into the live store under a single write-lock
// acquisition (invalid frames are skipped inside AppendFrames).
func (sess *session) storeBatch(batch []stream.Frame) {
	stored, _ := sess.store.AppendFrames(batch)
	if bad := uint64(len(batch) - stored); bad > 0 {
		sess.badAppend.Add(bad)
		sess.srv.metrics.appendErrors.Add(bad)
	}
	sess.stored.Add(uint64(len(batch))) // processed, including bad appends
	sess.srv.metrics.framesIngested.Add(uint64(stored))
}

// readLoop processes messages until the client closes, errs, idles out or
// the server shuts down.
func (sess *session) readLoop() {
	srv := sess.srv
	for {
		sess.conn.SetReadDeadline(time.Now().Add(srv.cfg.IdleTimeout))
		typ, payload, err := wire.ReadMessage(sess.br)
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				if srv.isClosed() {
					sess.sendError(wire.CodeShuttingDown, "server shutting down")
				} else {
					srv.metrics.evictions.Add(1)
					sess.sendError(wire.CodeIdleEvicted, "session idle")
				}
			}
			return
		}
		switch typ {
		case wire.MsgBatch:
			if !sess.handleBatch(payload) {
				return
			}
		case wire.MsgFlush:
			if !sess.handleFlush() {
				return
			}
		case wire.MsgQuery:
			if !sess.handleQuery(payload) {
				return
			}
		case wire.MsgClose:
			sess.closeRequested = true
			return
		default:
			sess.sendError(wire.CodeBadMessage, "unexpected message type")
			return
		}
	}
}

// flushIfIdle pushes buffered responses out when no further client input
// is already buffered — batching acks under load without ever letting the
// client block on a response we are sitting on.
func (sess *session) flushIfIdle() bool {
	if sess.br.Buffered() == 0 {
		return sess.bw.Flush() == nil
	}
	return true
}

func (sess *session) handleBatch(payload []byte) bool {
	srv := sess.srv
	b, err := wire.DecodeBatch(payload, sess.store.Channels())
	if err != nil {
		sess.sendError(wire.CodeBadMessage, err.Error())
		return false
	}
	ack := wire.BatchAck{Seq: b.Seq, Code: wire.CodeOK, Stored: uint32(len(b.Frames))}
	shed := false
	if srv.cfg.Policy == PolicyShed && len(sess.in)+len(b.Frames) > cap(sess.in) {
		shed = true
	}
	if shed {
		ack.Code = wire.CodeShed
		sess.shedB++
		sess.shedF += uint64(len(b.Frames))
		srv.metrics.batchesShed.Add(1)
		srv.metrics.framesShed.Add(uint64(len(b.Frames)))
	} else {
		// Under PolicyBlock a full queue blocks here: the reader stops
		// draining the socket and the device feels the backpressure. The
		// depth gauge moves per frame so it stays honest mid-stall.
		for i := range b.Frames {
			sess.in <- b.Frames[i]
			srv.metrics.queueDepth.Add(1)
		}
		sess.enqueued += uint64(len(b.Frames))
		srv.metrics.batchesIngested.Add(1)
	}
	if wire.WriteMessage(sess.bw, wire.MsgBatchAck, ack.Encode()) != nil {
		return false
	}
	return sess.flushIfIdle()
}

// handleFlush answers the client's drain barrier: every frame enqueued so
// far is stored before the ack goes out.
func (sess *session) handleFlush() bool {
	target := sess.enqueued
	deadline := time.Now().Add(sess.srv.cfg.IdleTimeout)
	for sess.stored.Load() < target {
		if time.Now().After(deadline) {
			sess.sendError(wire.CodeInternal, "flush barrier timed out")
			return false
		}
		time.Sleep(200 * time.Microsecond)
	}
	ack := wire.FlushAck{Stored: sess.stored.Load() - sess.badAppend.Load()}
	if wire.WriteMessage(sess.bw, wire.MsgFlushAck, ack.Encode()) != nil {
		return false
	}
	return sess.bw.Flush() == nil
}

func (sess *session) handleQuery(payload []byte) bool {
	srv := sess.srv
	q, err := wire.DecodeQuery(payload)
	if err != nil {
		sess.sendError(wire.CodeBadMessage, err.Error())
		return false
	}
	t0 := time.Now()
	results := sess.evaluate(q)
	srv.metrics.observeQuery(time.Since(t0))
	for _, r := range results {
		if wire.WriteMessage(sess.bw, wire.MsgResult, r.Encode()) != nil {
			return false
		}
	}
	return sess.bw.Flush() == nil
}

// evaluate answers one query against the live store. Errors become a
// CodeBadQuery result rather than tearing the session down.
func (sess *session) evaluate(q wire.Query) []wire.Result {
	ch := int(q.Channel)
	bad := func() []wire.Result {
		return []wire.Result{{Kind: q.Kind, Final: true, Code: wire.CodeBadQuery}}
	}
	switch q.Kind {
	case wire.QueryCount:
		v, err := sess.store.CountSamples(ch, q.T0, q.T1)
		if err != nil {
			return bad()
		}
		return []wire.Result{{Kind: q.Kind, Final: true, OK: true, Value: v}}
	case wire.QueryAverage:
		v, ok, err := sess.store.AverageValue(ch, q.T0, q.T1)
		if err != nil {
			return bad()
		}
		return []wire.Result{{Kind: q.Kind, Final: true, OK: ok, Value: v}}
	case wire.QueryVariance:
		v, ok, err := sess.store.VarianceValue(ch, q.T0, q.T1)
		if err != nil {
			return bad()
		}
		return []wire.Result{{Kind: q.Kind, Final: true, OK: ok, Value: v}}
	case wire.QueryApproxCount:
		est, bound, err := sess.store.ApproximateCount(ch, q.T0, q.T1, int(q.Arg))
		if err != nil {
			return bad()
		}
		return []wire.Result{{Kind: q.Kind, Final: true, OK: true, Value: est, Bound: bound, Coefficients: q.Arg}}
	case wire.QueryProgressiveCount:
		steps, err := sess.store.ProgressiveCount(ch, q.T0, q.T1, int(q.Arg))
		if err != nil || len(steps) == 0 {
			return bad()
		}
		out := make([]wire.Result, len(steps))
		for i, st := range steps {
			out[i] = wire.Result{
				Kind:         q.Kind,
				Final:        i == len(steps)-1,
				OK:           true,
				Value:        st.Estimate,
				Bound:        st.ErrorBound,
				Coefficients: uint32(st.Coefficients),
			}
		}
		return out
	}
	return bad()
}
