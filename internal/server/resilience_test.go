package server

import (
	"testing"
	"time"

	"aims/internal/journal"
	"aims/internal/wire"
)

// waitDetached polls until the server holds exactly n parked sessions.
func waitDetached(t *testing.T, srv *Server, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for srv.DetachedCount() != n && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if got := srv.DetachedCount(); got != n {
		t.Fatalf("detached sessions = %d, want %d", got, n)
	}
}

// TestExactlyOnceDedup drives the server's v4 watermark dedup with a plain
// client: a fully duplicate batch is acknowledged and dropped, a batch
// straddling the watermark is trimmed to its fresh suffix, and a batch
// starting ahead of the watermark (a gap — frames went missing) tears the
// link down instead of silently recording a hole. Parameterized over
// every transport: the dedup contract is a wire-protocol property and
// must not depend on what carries the bytes.
func TestExactlyOnceDedup(t *testing.T) {
	forEachTransport(t, testExactlyOnceDedup)
}

func testExactlyOnceDedup(t *testing.T, scheme string) {
	const channels = 2
	srv, addr := startServerOn(t, scheme, Config{Store: testStoreCfg()})
	_ = srv
	frames := clientFrames(0, 200, channels)
	mins, maxs := ranges(channels)

	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Hello(wire.Hello{Rate: 100, HorizonTicks: 1 << 14, Name: "dedup", Mins: mins, Maxs: maxs}); err != nil {
		t.Fatal(err)
	}
	if err := c.SendBatch(frames[:100]); err != nil {
		t.Fatal(err)
	}
	if stored, err := c.Flush(); err != nil || stored != 100 {
		t.Fatalf("first flush: stored=%d err=%v", stored, err)
	}

	// Exact duplicate of everything already appended: acknowledged, dropped.
	if err := c.SendBatchAt(0, frames[:100]); err != nil {
		t.Fatal(err)
	}
	if stored, err := c.Flush(); err != nil || stored != 100 {
		t.Fatalf("flush after duplicate: stored=%d err=%v", stored, err)
	}
	if c.DupBatches() != 1 {
		t.Fatalf("dup batches = %d, want 1", c.DupBatches())
	}

	// Straddling replay: frames [50,150) — the server must trim the first
	// 50 and append exactly the 50 fresh ones.
	if err := c.SendBatchAt(50, frames[50:150]); err != nil {
		t.Fatal(err)
	}
	if stored, err := c.Flush(); err != nil || stored != 150 {
		t.Fatalf("flush after straddle: stored=%d err=%v", stored, err)
	}
	// A trimmed batch still appends fresh frames, so it is acknowledged as
	// a normal store — only fully-duplicate batches earn CodeDuplicate.
	if c.DupBatches() != 1 {
		t.Fatalf("dup batches = %d, want 1", c.DupBatches())
	}
	r, err := c.Query(wire.Query{Kind: wire.QueryCount, Channel: 0, T0: 0, T1: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	if r.Value != 150 {
		t.Fatalf("count = %v, want 150 (duplicates appended or frames lost)", r.Value)
	}

	// A batch claiming to start beyond the watermark means frames vanished
	// in transit: the server must refuse and tear the session down.
	if err := c.SendBatchAt(1000, frames[:10]); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Flush(); err == nil {
		t.Fatal("flush after forward-gap batch succeeded, want protocol error")
	}
	c.Abort()
}

// TestParkResumeAfterAbort kills a session's link without a Close
// handshake; the server must park the live store, hand back the append
// watermark on reconnect, and dedup the client's replay so the stream
// lands exactly once — with no journal configured at all.
func TestParkResumeAfterAbort(t *testing.T) {
	forEachTransport(t, testParkResumeAfterAbort)
}

func testParkResumeAfterAbort(t *testing.T, scheme string) {
	const channels = 2
	srv, addr := startServerOn(t, scheme, Config{Store: testStoreCfg(), RetainTimeout: 5 * time.Second})
	frames := clientFrames(1, 400, channels)
	mins, maxs := ranges(channels)
	h := wire.Hello{Rate: 100, HorizonTicks: 1 << 14, Name: "glove-7", Mins: mins, Maxs: maxs}

	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Hello(h); err != nil {
		t.Fatal(err)
	}
	for at := 0; at < 300; at += 100 {
		if err := c.SendBatch(frames[at : at+100]); err != nil {
			t.Fatal(err)
		}
	}
	if stored, err := c.Flush(); err != nil || stored != 300 {
		t.Fatalf("flush: stored=%d err=%v", stored, err)
	}
	c.Abort() // cable pull: no Close handshake
	waitDetached(t, srv, 1)

	c2, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	w, err := c2.Hello(h)
	if err != nil {
		t.Fatal(err)
	}
	if w.Code != wire.CodeResumed {
		t.Fatalf("welcome code = %v, want resumed", w.Code)
	}
	if w.AckSeq != 300 {
		t.Fatalf("welcome ack seq = %d, want 300", w.AckSeq)
	}
	if srv.DetachedCount() != 0 {
		t.Fatalf("detached count = %d after adoption, want 0", srv.DetachedCount())
	}

	// At-least-once replay from below the watermark, then fresh frames:
	// the server must drop the replayed prefix and append only the tail.
	if err := c2.SendBatchAt(200, frames[200:300]); err != nil {
		t.Fatal(err)
	}
	if err := c2.SendBatch(frames[300:400]); err != nil { // nextSeq adopted from AckSeq
		t.Fatal(err)
	}
	if _, err := c2.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := c2.Query(wire.Query{Kind: wire.QueryCount, Channel: 0, T0: 0, T1: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	if r.Value != 400 {
		t.Fatalf("count after resume = %v, want 400", r.Value)
	}
	if c2.DupBatches() != 1 {
		t.Fatalf("dup batches = %d, want 1", c2.DupBatches())
	}
	if _, err := c2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestParkExpiry bounds the server-side memory hold: a parked session
// whose device never returns is finalized after RetainTimeout, and a
// later reconnect under the same name starts a fresh session.
func TestParkExpiry(t *testing.T) {
	forEachTransport(t, testParkExpiry)
}

func testParkExpiry(t *testing.T, scheme string) {
	const channels = 2
	srv, addr := startServerOn(t, scheme, Config{Store: testStoreCfg(), RetainTimeout: 50 * time.Millisecond})
	frames := clientFrames(2, 100, channels)
	mins, maxs := ranges(channels)
	h := wire.Hello{Rate: 100, HorizonTicks: 1 << 14, Name: "hmd-1", Mins: mins, Maxs: maxs}

	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Hello(h); err != nil {
		t.Fatal(err)
	}
	if err := c.SendBatch(frames); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	c.Abort()
	// Two-stage wait: observe the park first (a bare wait-for-zero is
	// trivially true before the park lands), then the expiry sweep.
	waitDetached(t, srv, 1)
	waitDetached(t, srv, 0)

	c2, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	w, err := c2.Hello(h)
	if err != nil {
		t.Fatal(err)
	}
	if w.Code != wire.CodeOK || w.AckSeq != 0 {
		t.Fatalf("welcome after expiry: code=%v ackSeq=%d, want fresh session", w.Code, w.AckSeq)
	}
	r, err := c2.Query(wire.Query{Kind: wire.QueryCount, Channel: 0, T0: 0, T1: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	if r.Value != 0 {
		t.Fatalf("fresh session count = %v, want 0", r.Value)
	}
	if _, err := c2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestJournalResumeCarriesWatermark parks a journaled session and checks
// the watermark the device gets back covers everything acknowledged, so a
// full from-zero replay is absorbed without a single duplicate append.
func TestJournalResumeCarriesWatermark(t *testing.T) {
	forEachTransport(t, testJournalResumeCarriesWatermark)
}

func testJournalResumeCarriesWatermark(t *testing.T, scheme string) {
	const channels = 2
	cfg := Config{Store: testStoreCfg(), RetainTimeout: 5 * time.Second}
	cfg.Journal.Dir = t.TempDir()
	cfg.Journal.Fsync = journal.FsyncOff
	srv, addr := startServerOn(t, scheme, cfg)
	frames := clientFrames(3, 300, channels)
	mins, maxs := ranges(channels)
	h := wire.Hello{Rate: 100, HorizonTicks: 1 << 14, Name: "suit-2", Mins: mins, Maxs: maxs}

	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Hello(h); err != nil {
		t.Fatal(err)
	}
	if err := c.SendBatch(frames[:200]); err != nil {
		t.Fatal(err)
	}
	if stored, err := c.Flush(); err != nil || stored != 200 {
		t.Fatalf("flush: stored=%d err=%v", stored, err)
	}
	c.Abort()
	waitDetached(t, srv, 1)

	c2, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	w, err := c2.Hello(h)
	if err != nil {
		t.Fatal(err)
	}
	if w.Code != wire.CodeResumed || w.AckSeq != 200 {
		t.Fatalf("welcome: code=%v ackSeq=%d, want resumed at 200", w.Code, w.AckSeq)
	}
	// Device replays its whole buffer from zero — one batch, fully below
	// the watermark — then streams on.
	if err := c2.SendBatchAt(0, frames[:200]); err != nil {
		t.Fatal(err)
	}
	if err := c2.SendBatch(frames[200:300]); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := c2.Query(wire.Query{Kind: wire.QueryCount, Channel: 0, T0: 0, T1: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	if r.Value != 300 {
		t.Fatalf("count = %v, want 300", r.Value)
	}
	if c2.DupBatches() != 1 {
		t.Fatalf("dup batches = %d, want 1", c2.DupBatches())
	}
	if _, err := c2.Close(); err != nil {
		t.Fatal(err)
	}
}
