// Package server implements the AIMS middle tier of the paper's Fig. 2
// three-tier architecture: a concurrent TCP server immersive client
// devices register with, stream frame batches to, and query while the
// session is live. Each connection is one session. Ingest runs through the
// double-buffered acquisition pipeline of internal/stream into a
// core.LiveStore; exact/approximate/progressive range aggregates are
// answered against that live store (core/propolyne). Per-session ingest
// queues are bounded, with a selectable backpressure policy — block the
// device (lossless) or shed whole batches with an explicit wire error —
// plus idle-session eviction, graceful shutdown that drains in-flight
// batches, and an atomic metrics block.
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"aims/internal/core"
	"aims/internal/fleet"
	"aims/internal/journal"
	"aims/internal/obs"
	"aims/internal/propolyne"
	"aims/internal/transport"
	"aims/internal/wire"
)

// Policy selects what happens when a session's ingest queue is full.
type Policy int

const (
	// PolicyBlock applies backpressure: the reader stops consuming the
	// socket until the queue drains, so acquisition is lossless and the
	// device's TCP window absorbs the stall.
	PolicyBlock Policy = iota
	// PolicyShed drops whole batches that do not fit, acknowledging each
	// with wire.CodeShed so the device knows exactly what was lost.
	PolicyShed
)

// ParsePolicy maps the flag spelling to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "block":
		return PolicyBlock, nil
	case "shed":
		return PolicyShed, nil
	}
	return 0, fmt.Errorf("server: unknown backpressure policy %q (want block|shed)", s)
}

// Config shapes a Server.
type Config struct {
	// QueueFrames bounds each session's ingest queue (default 8192).
	QueueFrames int
	// AcquireBuffer is the double-buffering batch size of the acquisition
	// pipeline (default 256 frames).
	AcquireBuffer int
	// IdleTimeout evicts sessions with no traffic (default 30 s).
	IdleTimeout time.Duration
	// Heartbeat is the liveness window unit for sessions that send wire v4
	// pings: once a session has pinged, its read deadline tightens to
	// 2.5×Heartbeat (if shorter than IdleTimeout), so a dead link is
	// detected in seconds instead of the idle eviction horizon. Default
	// 5 s; negative disables heartbeat-driven liveness.
	Heartbeat time.Duration
	// WriteTimeout bounds every socket write (default 10 s; negative
	// disables). Without it a device that stops reading wedges the
	// session's responder in the kernel send buffer forever.
	WriteTimeout time.Duration
	// RetainTimeout parks the state of a named session whose link dropped
	// ungracefully, so the device can reconnect and resume exactly where
	// it left off — store, journal handle and acknowledged watermark all
	// survive in memory. Default 60 s; negative disables parking (a
	// reconnect then starts a fresh session, as before wire v4).
	RetainTimeout time.Duration
	// RetainSessions caps how many disconnected sessions may sit parked at
	// once (default 1024); beyond it the longest-parked one is finalized.
	RetainSessions int
	// FlushLatency bounds how long a partially filled acquisition buffer
	// may hide tail frames from queries (default 2 ms).
	FlushLatency time.Duration
	// Policy is the backpressure policy (default PolicyBlock).
	Policy Policy
	// Store templates each session's live store; Rate and HorizonTicks are
	// overridden by the session's registration.
	Store core.LiveStoreConfig
	// TraceSample samples one in N ingest batches and queries into the
	// pipeline tracer (default obs.DefaultTraceSample; negative disables
	// tracing entirely — the compiled-out no-op path).
	TraceSample int
	// TraceBuffer bounds the completed-trace ring served by /tracez
	// (default obs.DefaultTraceBuffer).
	TraceBuffer int
	// SlowQuery arms the always-on slow-query log: any query, fleet query
	// or ingest batch whose trace total reaches this threshold is retained
	// in a separate bounded ring (served by /slowlog and counted by
	// aims_slow_queries_total) with 100% probability, regardless of the 1/N
	// sampler. 0 uses obs.DefaultSlowQuery (100ms); negative disables the
	// slow log. Ignored when tracing is disabled (TraceSample < 0).
	SlowQuery time.Duration
	// FleetWorkers bounds the scatter fan-out pool of cross-session fleet
	// queries (default 16): a fleet over 10k sessions is scanned
	// FleetWorkers at a time so one query can never monopolise the box.
	FleetWorkers int
	// FleetTimeout is the default per-query fleet deadline (default 5 s);
	// a query's own TimeoutMillis may only tighten it. Sessions unfinished
	// at the deadline surface as per-session failures under the query's
	// fail|partial policy.
	FleetTimeout time.Duration
	// PlanCacheCost sizes the process-wide compiled-query-plan cache, in
	// plan-entry cost units. 0 keeps the propolyne default
	// (DefaultPlanCacheCost, ~1M units); negative disables the cache so
	// every query compiles its plan fresh.
	PlanCacheCost int
	// Journal configures the durability layer (per-session WAL +
	// snapshots). An empty Journal.Dir leaves the server memory-only, as
	// before; with a directory set, call RecoverSessions before Serve to
	// adopt state a previous process left behind.
	Journal journal.Config
	// Logf receives server lifecycle logs (nil discards them).
	Logf func(format string, args ...interface{})
}

func (c Config) withDefaults() Config {
	if c.QueueFrames <= 0 {
		c.QueueFrames = 8192
	}
	if c.AcquireBuffer <= 0 {
		c.AcquireBuffer = 256
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 30 * time.Second
	}
	if c.Heartbeat == 0 {
		c.Heartbeat = 5 * time.Second
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.RetainTimeout == 0 {
		c.RetainTimeout = time.Minute
	}
	if c.RetainSessions <= 0 {
		c.RetainSessions = 1024
	}
	if c.Logf == nil {
		c.Logf = func(string, ...interface{}) {}
	}
	return c
}

// Server is one AIMS middle-tier instance.
type Server struct {
	cfg Config

	mu     sync.Mutex // guards lns and closed only
	lns    []net.Listener
	closed bool

	nextID   atomic.Uint64
	sessions *registry // sharded: registration/lookup stays flat at scale

	journal   *journal.Manager // nil when durability is disabled
	recovered atomic.Int64     // sessions rebuilt from disk at startup

	// detached holds parked sessions by name: state kept warm for a device
	// whose link dropped ungracefully, finalized at RetainTimeout.
	detMu    sync.Mutex
	detached map[string]*detached

	fleetCfg fleet.Config // scatter pool width, deadline, metric hooks

	wg      sync.WaitGroup // live session handlers
	serveWg sync.WaitGroup // accept loops
	metrics *metrics
	tracer  *obs.Tracer // nil when tracing is disabled
}

// New creates a server.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	m := newMetrics()
	if cfg.Store.SealObserver == nil {
		// Surface every session store's seal timings on this server's
		// instruments unless the caller installed its own observer.
		cfg.Store.SealObserver = m.observeSeal
	}
	var tracer *obs.Tracer
	if cfg.TraceSample >= 0 {
		tracer = obs.NewTracer(cfg.TraceSample, cfg.TraceBuffer)
		slow := cfg.SlowQuery
		if slow == 0 {
			slow = obs.DefaultSlowQuery
		}
		tracer.SetSlowThreshold(slow) // negative disarms
		tracer.SetOnSlow(m.observeSlow)
	}
	// The plan cache is process-global (its keys embed engine geometry, so
	// servers cannot cross-contaminate); wire its hooks onto this server's
	// instruments and apply any explicit sizing.
	if cfg.PlanCacheCost != 0 {
		propolyne.SharedCache.SetCapacity(cfg.PlanCacheCost)
	}
	propolyne.SharedCache.SetObserver(m.planObserver())
	s := &Server{cfg: cfg, sessions: newRegistry(), metrics: m, tracer: tracer,
		detached: map[string]*detached{}}
	s.fleetCfg = fleet.Config{
		Workers:  cfg.FleetWorkers,
		Timeout:  cfg.FleetTimeout,
		Observer: m.fleetObserver(),
	}
	if cfg.Journal.Dir != "" {
		jcfg := cfg.Journal
		jcfg.Observer = m.journalObserver()
		if jcfg.Logf == nil {
			jcfg.Logf = cfg.Logf
		}
		mgr, err := journal.OpenManager(jcfg)
		if err != nil {
			// The process can still serve memory-only; every session will
			// report degraded durability through the counter.
			cfg.Logf("journal disabled: %v", err)
			m.journalDegraded.Inc()
		} else {
			s.journal = mgr
		}
	}
	return s
}

// RecoverSessions scans the journal data directory and rebuilds every
// session a previous process journaled there, making each available for
// re-adoption when its device reconnects under the same session name. It
// returns how many sessions were recovered; with durability disabled it is
// a no-op. Call it once, before Serve.
func (s *Server) RecoverSessions() (int, error) {
	if s.journal == nil {
		return 0, nil
	}
	recovered, err := s.journal.Recover(s.cfg.Store)
	if err != nil {
		return 0, err
	}
	for _, r := range recovered {
		s.cfg.Logf("recovered session %q: %d frames (%d from snapshot, torn tail: %v)",
			r.Key, r.Processed, r.Watermark, r.Truncated)
	}
	s.recovered.Store(int64(len(recovered)))
	return len(recovered), nil
}

// RecoveredSessions reports how many sessions RecoverSessions rebuilt, and
// how many of those still await re-adoption by their device.
func (s *Server) RecoveredSessions() (recovered, orphaned int) {
	if s.journal == nil {
		return 0, 0
	}
	return int(s.recovered.Load()), s.journal.OrphanCount()
}

// Registry exposes the server's metrics registry (what the admin plane
// serves as /metrics).
func (s *Server) Registry() *obs.Registry { return s.metrics.reg }

// Tracer exposes the pipeline tracer; nil when tracing is disabled.
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// Start listens on a transport endpoint — bare "host:port" (TCP),
// "tcp://host:port" or "ws://host:port[/path]" — and serves in the
// background. It returns the bound address, whose String() is directly
// dialable (scheme included for non-TCP transports). Start may be called
// once per endpoint: one server instance can serve TCP and WebSocket
// devices side by side.
func (s *Server) Start(addr string) (net.Addr, error) {
	ln, err := transport.Listen(addr)
	if err != nil {
		return nil, err
	}
	s.serveWg.Add(1)
	go func() {
		defer s.serveWg.Done()
		s.Serve(ln)
	}()
	return ln.Addr(), nil
}

// Serve accepts sessions on ln until the listener fails or Shutdown runs.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: already shut down")
	}
	s.lns = append(s.lns, ln)
	s.mu.Unlock()

	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handleConn(conn)
		}()
	}
}

// Shutdown stops accepting sessions, wakes every session reader, drains
// their in-flight batches and waits for all handlers to finish or the
// context to expire.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	lns := s.lns
	s.lns = nil
	s.mu.Unlock()
	s.sessions.forEach(func(sess *session) {
		// An expired read deadline unblocks the session reader; it then
		// drains its queue and closes.
		sess.conn.SetReadDeadline(time.Now())
	})
	for _, ln := range lns {
		ln.Close()
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		s.serveWg.Wait()
		// Every handler has exited, so no more sessions can park; make the
		// parked ones durable before declaring the shutdown complete.
		s.finalizeAllDetached()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: shutdown incomplete: %w", ctx.Err())
	}
}

// EvaluateFleet answers one cross-session fleet query against the current
// live-session set: it snapshots the sharded registry (one shard lock at a
// time — registration stays flat while fleets scan), scatters the query
// across the matching sessions on the bounded fleet worker pool, and
// merges the per-session answers under the query's fail|partial policy.
// Exposed for the admin plane and in-process callers as well as the wire
// handler.
func (s *Server) EvaluateFleet(fq wire.FleetQuery) wire.FleetResult {
	return s.evaluateFleetTraced(fq, nil, 0)
}

// evaluateFleetTraced is EvaluateFleet stitching every per-session
// evaluation into tr's span tree under parent (nil tr evaluates untraced).
func (s *Server) evaluateFleetTraced(fq wire.FleetQuery, tr *obs.Trace, parent obs.SpanID) wire.FleetResult {
	s.metrics.fleetQueries.Inc()
	snap := s.sessions.snapshot()
	targets := make([]fleet.Session, 0, len(snap))
	for _, sess := range snap {
		targets = append(targets, fleet.Session{ID: sess.id, Class: sess.class, Store: sess.store})
	}
	req := fleet.Request{
		Kind:        fq.Kind,
		Channel:     int(fq.Channel),
		T0:          fq.T0,
		T1:          fq.T1,
		Arg:         fq.Arg,
		Scope:       fq.Scope,
		Partial:     fq.Partial,
		Timeout:     time.Duration(fq.TimeoutMillis) * time.Millisecond,
		Trace:       tr,
		TraceParent: parent,
	}
	res := fleet.Evaluate(context.Background(), targets, req, s.fleetCfg)
	if res.Code == wire.CodePartial {
		s.metrics.fleetPartial.Inc()
	}
	if !res.OK {
		s.metrics.fleetFailed.Inc()
	}
	return res
}

// DeviceClasses reports the live session count per device class, the
// admin plane's /fleet listing. Sessions registered without a class (v1
// clients) group under "".
func (s *Server) DeviceClasses() map[string]int {
	out := make(map[string]int)
	s.sessions.forEach(func(sess *session) {
		out[sess.class]++
	})
	return out
}

// Metrics returns a point-in-time snapshot of the server's counters.
// QueueDepth is an atomic gauge maintained at enqueue/dequeue, so the
// snapshot is O(1) regardless of how many sessions are live.
func (s *Server) Metrics() Snapshot {
	return s.metrics.snapshot()
}

// SessionCount returns the number of live sessions.
func (s *Server) SessionCount() int {
	return s.sessions.len()
}

func (s *Server) register(sess *session) uint64 {
	id := s.nextID.Add(1)
	sess.id = id
	sess.idStr = strconv.FormatUint(id, 10)
	s.sessions.put(id, sess)
	s.metrics.sessionsActive.Add(1)
	s.metrics.sessionsTotal.Inc()
	if s.isClosed() {
		// Shutdown's deadline sweep may have run before this registration;
		// apply it here so the new reader wakes immediately.
		sess.conn.SetReadDeadline(time.Now())
	}
	return id
}

func (s *Server) unregister(sess *session) {
	if s.sessions.remove(sess.id) {
		s.metrics.sessionsActive.Add(-1)
	}
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// detached is a parked session: the live state of a named device whose
// connection dropped without a Close handshake, kept warm so a reconnect
// under the same name resumes in place — no journal round trip, no frame
// loss, and the acknowledged watermark tells the device what to replay.
type detached struct {
	name     string
	class    string
	rate     float64
	channels int
	store    *core.LiveStore
	jsess    *journal.Session // nil on a memory-only server
	ackSeq   uint64           // acknowledged client-stream watermark at disconnect
	at       time.Time
	timer    *time.Timer
}

// park retains a disconnected session's state for RetainTimeout. It
// reports whether the state was parked; when it declines (anonymous
// session, parking disabled), the caller finalizes as before.
func (s *Server) park(sess *session) bool {
	if sess.name == "" || s.cfg.RetainTimeout <= 0 {
		return false
	}
	d := &detached{
		name:     sess.name,
		class:    sess.class,
		rate:     sess.rate,
		channels: sess.store.Channels(),
		store:    sess.store,
		jsess:    sess.jsess,
		ackSeq:   sess.ackSeq,
		at:       time.Now(),
	}
	var finalize []*detached
	s.detMu.Lock()
	if old := s.detached[d.name]; old != nil {
		// A newer incarnation displaces the parked one (stale state under
		// the same name would otherwise shadow it forever).
		old.timer.Stop()
		delete(s.detached, d.name)
		finalize = append(finalize, old)
	}
	for len(s.detached) >= s.cfg.RetainSessions {
		var oldest *detached
		for _, cand := range s.detached {
			if oldest == nil || cand.at.Before(oldest.at) {
				oldest = cand
			}
		}
		oldest.timer.Stop()
		delete(s.detached, oldest.name)
		finalize = append(finalize, oldest)
	}
	s.detached[d.name] = d
	d.timer = time.AfterFunc(s.cfg.RetainTimeout, func() { s.expireDetached(d) })
	s.metrics.sessionsDetached.Add(1 - int64(len(finalize)))
	s.detMu.Unlock()
	for _, old := range finalize {
		s.finalizeDetached(old)
	}
	return true
}

// adoptDetached hands a reconnecting device its parked state back, if a
// shape-compatible parked session exists under the Hello's name.
func (s *Server) adoptDetached(h wire.Hello) *detached {
	s.detMu.Lock()
	d := s.detached[h.Name]
	if d == nil || d.channels != len(h.Mins) || d.rate != h.Rate {
		s.detMu.Unlock()
		return nil
	}
	delete(s.detached, h.Name)
	d.timer.Stop()
	s.metrics.sessionsDetached.Add(-1)
	s.detMu.Unlock()
	return d
}

// expireDetached is a parked session's retention timer: the device never
// came back, so the state is made durable and released.
func (s *Server) expireDetached(d *detached) {
	s.detMu.Lock()
	if s.detached[d.name] != d {
		// Adopted (or displaced) between the timer firing and this lock.
		s.detMu.Unlock()
		return
	}
	delete(s.detached, d.name)
	s.metrics.sessionsDetached.Add(-1)
	s.detMu.Unlock()
	s.cfg.Logf("parked session %q expired unclaimed (ack=%d)", d.name, d.ackSeq)
	s.finalizeDetached(d)
}

// finalizeDetached releases a parked session that will not be resumed: a
// final snapshot covers its frames and its journal key is freed.
func (s *Server) finalizeDetached(d *detached) {
	if d.jsess != nil {
		if err := d.jsess.Close(d.store); err != nil {
			s.cfg.Logf("parked session %q: durable close: %v", d.name, err)
		}
	}
}

// finalizeAllDetached drains the parked-session map (shutdown path).
func (s *Server) finalizeAllDetached() {
	s.detMu.Lock()
	all := make([]*detached, 0, len(s.detached))
	for _, d := range s.detached {
		d.timer.Stop()
		all = append(all, d)
	}
	s.detached = map[string]*detached{}
	s.metrics.sessionsDetached.Add(-int64(len(all)))
	s.detMu.Unlock()
	for _, d := range all {
		s.finalizeDetached(d)
	}
}

// DetachedCount reports sessions parked awaiting reconnection.
func (s *Server) DetachedCount() int {
	s.detMu.Lock()
	defer s.detMu.Unlock()
	return len(s.detached)
}
