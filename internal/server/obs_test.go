package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"aims/internal/propolyne"
	"aims/internal/wire"
)

// checkExposition asserts the Prometheus text rules the admin plane
// promises scrapers: every sample line is preceded by exactly one HELP and
// one TYPE comment for its base metric name, and no series (name + label
// set) appears twice.
func checkExposition(t *testing.T, text string) {
	t.Helper()
	headerRe := regexp.MustCompile(`^# (HELP|TYPE) ([a-zA-Z_:][a-zA-Z0-9_:]*) .+$`)
	// Bucket lines may carry an OpenMetrics exemplar suffix linking the
	// observation to its trace (` # {trace_id="..."} value`).
	sampleRe := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? [^ ]+( # \{[^}]*\} [^ ]+)?$`)
	helps := map[string]int{}
	types := map[string]int{}
	series := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			m := headerRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("malformed comment line: %q", line)
			}
			if m[1] == "HELP" {
				helps[m[2]]++
			} else {
				types[m[2]]++
			}
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed sample line: %q", line)
		}
		base := m[1]
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if trimmed := strings.TrimSuffix(base, suf); trimmed != base && types[trimmed] > 0 {
				base = trimmed
				break
			}
		}
		if helps[base] == 0 || types[base] == 0 {
			t.Errorf("sample %q has no preceding HELP/TYPE for %q", line, base)
		}
		key := m[1] + m[2]
		if series[key] {
			t.Errorf("duplicate series %q", key)
		}
		series[key] = true
	}
	for name, n := range helps {
		if n != 1 {
			t.Errorf("HELP for %q appears %d times", name, n)
		}
	}
	for name, n := range types {
		if n != 1 {
			t.Errorf("TYPE for %q appears %d times", name, n)
		}
	}
}

// TestMetricsGolden pins the full exposition of a fresh server registry to
// testdata/metrics.golden: every instrument the server registers appears,
// well-formed, at its zero value. Run with UPDATE_GOLDEN=1 to regenerate
// after intentionally adding or renaming instruments.
func TestMetricsGolden(t *testing.T) {
	// The plan-cache gauges read the process-wide propolyne.SharedCache;
	// drop plans left behind by earlier tests so the exposition is the
	// zero state the golden file pins regardless of test order.
	propolyne.SharedCache.Purge()
	m := newMetrics()
	var buf bytes.Buffer
	m.reg.WritePrometheus(&buf)
	got := buf.String()
	checkExposition(t, got)

	for _, name := range []string{
		"aims_sessions_active", "aims_ingest_frames_total", "aims_queue_depth",
		"aims_query_seconds_bucket", "aims_ingest_decode_seconds",
		"aims_ingest_queue_wait_seconds", "aims_ingest_append_seconds",
		`aims_seal_seconds_bucket{mode="incremental"`, `aims_seal_seconds_bucket{mode="rebuild"`,
		"aims_seal_delta_entries", `aims_wire_bytes_total{dir="in",type="batch"}`,
		`aims_wire_bytes_total{dir="out",type="result"}`, "aims_query_latency_max_seconds",
	} {
		if !strings.Contains(got, name) {
			t.Errorf("exposition missing %q", name)
		}
	}

	golden := filepath.Join("testdata", "metrics.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_GOLDEN=1 to create)", err)
	}
	if got != string(want) {
		t.Errorf("exposition drifted from %s; run with UPDATE_GOLDEN=1 if intentional\ngot:\n%s", golden, got)
	}
}

func TestSnapshotString(t *testing.T) {
	s := Snapshot{
		SessionsActive: 2, SessionsTotal: 5,
		FramesIngested: 1000, BatchesIngested: 4,
		FramesShed: 7, BatchesShed: 1,
		QueueDepth: 3, Evictions: 1,
	}
	want := "sessions=2/5 frames=1000 batches=4 shed=1/7 queue=3 queries=0 evictions=1"
	if got := s.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}

	s.Queries = 2
	s.LatencyCounts = []uint64{1, 1, 0, 0, 0, 0, 0, 0}
	s.LatencyMean = 100 * time.Microsecond
	s.LatencyMax = 150 * time.Microsecond
	got := s.String()
	if !strings.Contains(got, "qlat(mean=100µs max=150µs hist=1/1/0/0/0/0/0/0)") {
		t.Errorf("String() with queries = %q", got)
	}
	if len(s.LatencyCounts) != len(latencyBounds)+1 {
		t.Fatalf("test fixture has %d buckets, latencyBounds wants %d",
			len(s.LatencyCounts), len(latencyBounds)+1)
	}
}

// TestSnapshotBucketsMatchBounds guards the satellite fix: the live
// histogram's bucket count must follow latencyBounds, never a hard-coded
// array length.
func TestSnapshotBucketsMatchBounds(t *testing.T) {
	m := newMetrics()
	m.observeQuery(time.Millisecond, 0)
	s := m.snapshot()
	if len(s.LatencyCounts) != len(latencyBounds)+1 {
		t.Fatalf("snapshot has %d latency buckets, want len(latencyBounds)+1 = %d",
			len(s.LatencyCounts), len(latencyBounds)+1)
	}
}

// TestAdminEndpoints exercises the full admin plane against a live server:
// metrics exposition, per-session JSON, trace capture with spans, health
// transitions on drain, and pprof availability.
func TestAdminEndpoints(t *testing.T) {
	srv, addr := startServer(t, Config{
		QueueFrames: 1024,
		Store:       testStoreCfg(),
		TraceSample: 1, // trace everything so /tracez is deterministic
	})
	h := srv.AdminHandler()

	get := func(path string) *httptest.ResponseRecorder {
		t.Helper()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec
	}

	if rec := get("/healthz"); rec.Code != 200 || !strings.Contains(rec.Body.String(), "ok") {
		t.Fatalf("/healthz = %d %q", rec.Code, rec.Body.String())
	}

	// Drive one real session: a batch and a query, so instruments and
	// traces have data.
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	mins, maxs := ranges(2)
	if _, err := c.Hello(wire.Hello{Rate: 100, HorizonTicks: 256, Name: "admin-test", Mins: mins, Maxs: maxs}); err != nil {
		t.Fatal(err)
	}
	if err := c.SendBatch(clientFrames(0, 64, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(wire.Query{Kind: wire.QueryAverage, Channel: 0, T0: 0, T1: 1}); err != nil {
		t.Fatal(err)
	}

	rec := get("/sessions")
	if rec.Code != 200 {
		t.Fatalf("/sessions = %d", rec.Code)
	}
	var sess struct {
		Count    int           `json:"count"`
		Sessions []SessionInfo `json:"sessions"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &sess); err != nil {
		t.Fatalf("/sessions JSON: %v", err)
	}
	if sess.Count != 1 || len(sess.Sessions) != 1 {
		t.Fatalf("/sessions count = %d, want 1", sess.Count)
	}
	if got := sess.Sessions[0]; got.Name != "admin-test" || got.FramesStored != 64 || got.Channels != 2 {
		t.Errorf("/sessions entry = %+v", got)
	}

	rec = get("/metrics")
	if rec.Code != 200 {
		t.Fatalf("/metrics = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content-type = %q", ct)
	}
	body := rec.Body.String()
	checkExposition(t, body)
	for _, want := range []string{
		"aims_ingest_frames_total 64",
		"aims_query_seconds_count 1",
		`aims_wire_bytes_total{dir="in",type="batch"}`,
		"aims_wavelet_lines_total", // process-wide bridge metrics present
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Acceptance: /tracez returns at least one multi-span trace.
	rec = get("/tracez?n=50")
	if rec.Code != 200 {
		t.Fatalf("/tracez = %d", rec.Code)
	}
	var tz struct {
		SampleEvery int `json:"sample_every"`
		Traces      []struct {
			Kind  string `json:"kind"`
			Spans []struct {
				Name string `json:"name"`
			} `json:"spans"`
		} `json:"traces"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &tz); err != nil {
		t.Fatalf("/tracez JSON: %v", err)
	}
	if tz.SampleEvery != 1 {
		t.Errorf("/tracez sample_every = %d, want 1", tz.SampleEvery)
	}
	multi := 0
	kinds := map[string]bool{}
	for _, tr := range tz.Traces {
		kinds[tr.Kind] = true
		if len(tr.Spans) >= 2 {
			multi++
		}
	}
	if multi == 0 {
		t.Fatalf("/tracez has no multi-span trace: %s", rec.Body.String())
	}
	if !kinds["query"] {
		t.Errorf("/tracez kinds = %v, want a query trace", kinds)
	}

	// /tracez?id= validates its parameter: non-hex is a 400, an unknown
	// trace a 404; an absurd ?n= is clamped, not an error.
	if rec := get("/tracez?id=not-hex"); rec.Code != 400 {
		t.Errorf("/tracez?id=not-hex = %d, want 400", rec.Code)
	}
	if rec := get("/tracez?id=00000000000000ff"); rec.Code != 404 {
		t.Errorf("/tracez unknown id = %d, want 404", rec.Code)
	}
	if rec := get("/tracez?n=1000000"); rec.Code != 200 {
		t.Errorf("/tracez?n=1000000 = %d, want 200", rec.Code)
	}

	// /slowlog always answers well-formed JSON, even with nothing slow.
	rec = get("/slowlog")
	if rec.Code != 200 {
		t.Fatalf("/slowlog = %d", rec.Code)
	}
	var slog struct {
		ThresholdNS int64             `json:"threshold_ns"`
		Count       int               `json:"count"`
		Records     []json.RawMessage `json:"records"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &slog); err != nil {
		t.Fatalf("/slowlog JSON: %v", err)
	}
	if slog.ThresholdNS <= 0 {
		t.Errorf("/slowlog threshold_ns = %d, want the default threshold", slog.ThresholdNS)
	}
	if slog.Count != len(slog.Records) {
		t.Errorf("/slowlog count %d != len(records) %d", slog.Count, len(slog.Records))
	}

	// Every read-only endpoint refuses non-GET methods with 405 + Allow.
	for _, path := range []string{"/metrics", "/sessions", "/fleet", "/tracez", "/slowlog"} {
		for _, method := range []string{"POST", "PUT", "DELETE"} {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest(method, path, nil))
			if rec.Code != 405 {
				t.Errorf("%s %s = %d, want 405", method, path, rec.Code)
			}
			if allow := rec.Header().Get("Allow"); allow != "GET" {
				t.Errorf("%s %s Allow = %q, want GET", method, path, allow)
			}
		}
	}

	if rec := get("/debug/pprof/cmdline"); rec.Code != 200 {
		t.Errorf("/debug/pprof/cmdline = %d", rec.Code)
	}

	if _, err := c.Close(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if rec := get("/healthz"); rec.Code != 503 || !strings.Contains(rec.Body.String(), "draining") {
		t.Errorf("/healthz after shutdown = %d %q, want 503 draining", rec.Code, rec.Body.String())
	}
}

// TestObsStressRace hammers the registry from many writers (concurrent
// ingesting sessions) while scrapers read the exposition, then asserts the
// queue-depth gauge has drained to exactly zero. Run under -race this
// doubles as the satellite data-race check on the instrument layer.
func TestObsStressRace(t *testing.T) {
	srv, addr := startServer(t, Config{
		QueueFrames: 4096,
		Store:       testStoreCfg(),
		TraceSample: 4,
	})

	const clients = 8
	const batches = 25
	const perBatch = 32

	stop := make(chan struct{})
	var scrapeWG sync.WaitGroup
	for i := 0; i < 2; i++ {
		scrapeWG.Add(1)
		go func() {
			defer scrapeWG.Done()
			var buf bytes.Buffer
			for {
				select {
				case <-stop:
					return
				default:
				}
				buf.Reset()
				srv.Registry().WritePrometheus(&buf)
				_ = srv.Metrics().String()
			}
		}()
	}

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := wire.Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			mins, maxs := ranges(2)
			if _, err := c.Hello(wire.Hello{Rate: 100, HorizonTicks: uint32(batches * perBatch),
				Name: fmt.Sprintf("stress-%d", id), Mins: mins, Maxs: maxs}); err != nil {
				errs <- err
				c.Abort()
				return
			}
			for b := 0; b < batches; b++ {
				if err := c.SendBatch(clientFrames(id, perBatch, 2)); err != nil {
					errs <- err
					c.Abort()
					return
				}
			}
			if _, err := c.Query(wire.Query{Kind: wire.QueryAverage, Channel: 0, T0: 0, T1: 1}); err != nil {
				errs <- err
				c.Abort()
				return
			}
			if _, err := c.Close(); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	scrapeWG.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Every session closed cleanly (Close drains the ingest queue), so the
	// gauge must be exactly zero — any drift means a missed decrement.
	m := srv.Metrics()
	if m.QueueDepth != 0 {
		t.Fatalf("queue depth after drain = %d, want exactly 0", m.QueueDepth)
	}
	if want := uint64(clients * batches * perBatch); m.FramesIngested != want {
		t.Fatalf("frames ingested = %d, want %d", m.FramesIngested, want)
	}
}
