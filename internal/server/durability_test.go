package server

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"aims/internal/journal"
	"aims/internal/wire"
)

func durableConfig(dir string) Config {
	return Config{
		Store: testStoreCfg(),
		Journal: journal.Config{
			Dir:            dir,
			Fsync:          journal.FsyncBatch,
			SnapshotFrames: 200,
		},
	}
}

func exactAggregates(t *testing.T, c *wire.Client, t1 float64) (count, avg float64) {
	t.Helper()
	r, err := c.Query(wire.Query{Kind: wire.QueryCount, Channel: 0, T0: 0, T1: t1})
	if err != nil {
		t.Fatalf("count query: %v", err)
	}
	count = r.Value
	r, err = c.Query(wire.Query{Kind: wire.QueryAverage, Channel: 0, T0: 0, T1: t1})
	if err != nil {
		t.Fatalf("average query: %v", err)
	}
	return count, r.Value
}

// TestDurableShutdownRestartServesSameAnswers is the durable-drain
// round trip: ingest with journaling on, shut the server down with the
// session still attached (the drain must make it durable), restart a new
// server over the same data dir, reconnect under the same name, and
// require the resumed session to answer exactly as the original did — no
// frames lost — then keep streaming into it.
func TestDurableShutdownRestartServesSameAnswers(t *testing.T) {
	const (
		channels = 3
		frames   = 500
		extra    = 100
		rate     = 100.0
	)
	dir := t.TempDir()
	mins, maxs := ranges(channels)
	hello := wire.Hello{Rate: rate, HorizonTicks: 2000, Name: "glove tracker", Mins: mins, Maxs: maxs}
	all := clientFrames(1, frames+extra, channels)

	srv1, addr := startServer(t, durableConfig(dir))
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	w, err := c.Hello(hello)
	if err != nil {
		t.Fatal(err)
	}
	if w.Code != wire.CodeOK {
		t.Fatalf("first registration code = %v, want ok", w.Code)
	}
	for at := 0; at < frames; at += 100 {
		if err := c.SendBatch(all[at : at+100]); err != nil {
			t.Fatal(err)
		}
	}
	if stored, err := c.Flush(); err != nil || stored != frames {
		t.Fatalf("flush: stored=%d err=%v, want %d", stored, err, frames)
	}
	count0, avg0 := exactAggregates(t, c, 10)
	if count0 != frames {
		t.Fatalf("pre-restart count = %v, want %d", count0, frames)
	}

	// Shut down with the session still connected: the drain owes us a
	// final snapshot (or WAL sync) covering every stored frame.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv1.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	c.Abort()

	srv2, addr2 := startServer(t, durableConfig(dir))
	n, err := srv2.RecoverSessions()
	if err != nil || n != 1 {
		t.Fatalf("recovered %d sessions (err=%v), want 1", n, err)
	}
	if rec, orph := srv2.RecoveredSessions(); rec != 1 || orph != 1 {
		t.Fatalf("recovered=%d orphans=%d before reconnect, want 1/1", rec, orph)
	}

	c2, err := wire.Dial(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Abort()
	w2, err := c2.Hello(hello)
	if err != nil {
		t.Fatal(err)
	}
	if w2.Code != wire.CodeResumed {
		t.Fatalf("reconnect code = %v, want resumed", w2.Code)
	}
	if _, orph := srv2.RecoveredSessions(); orph != 0 {
		t.Fatalf("orphans = %d after adoption, want 0", orph)
	}
	count1, avg1 := exactAggregates(t, c2, 10)
	if count1 != count0 || math.Abs(avg1-avg0) > 1e-12 {
		t.Fatalf("recovered answers drifted: count %v->%v avg %v->%v", count0, count1, avg0, avg1)
	}

	// The resumed session keeps ingesting where the old one stopped.
	if err := c2.SendBatch(all[frames : frames+extra]); err != nil {
		t.Fatal(err)
	}
	if stored, err := c2.Flush(); err != nil || stored != extra {
		t.Fatalf("post-resume flush: stored=%d err=%v, want %d", stored, err, extra)
	}
	count2, _ := exactAggregates(t, c2, 10)
	if count2 != float64(frames+extra) {
		t.Fatalf("post-resume count = %v, want %d", count2, frames+extra)
	}
	if _, err := c2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestJournalOpenFailureFallsBackToMemoryOnly points the journal at an
// unusable path (an existing regular file): the server must still serve
// sessions, just without durability.
func TestJournalOpenFailureFallsBackToMemoryOnly(t *testing.T) {
	occupied := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(occupied, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	srv, addr := startServer(t, durableConfig(occupied))

	mins, maxs := ranges(2)
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Abort()
	w, err := c.Hello(wire.Hello{Rate: 100, HorizonTicks: 1000, Name: "memfall", Mins: mins, Maxs: maxs})
	if err != nil {
		t.Fatal(err)
	}
	if w.Code != wire.CodeOK {
		t.Fatalf("registration code = %v, want ok", w.Code)
	}
	if err := c.SendBatch(clientFrames(0, 50, 2)); err != nil {
		t.Fatal(err)
	}
	if stored, err := c.Flush(); err != nil || stored != 50 {
		t.Fatalf("flush: stored=%d err=%v, want 50", stored, err)
	}
	for _, info := range srv.Sessions() {
		if info.Durable {
			t.Fatalf("session %d claims durability with a broken journal dir", info.ID)
		}
	}
}
