package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"

	"aims/internal/obs"
	"aims/internal/wavelet"
)

// SessionInfo is one live session's record on the /sessions admin
// endpoint.
type SessionInfo struct {
	ID             uint64  `json:"id"`
	Name           string  `json:"name"`
	Class          string  `json:"class,omitempty"`
	Channels       int     `json:"channels"`
	Rate           float64 `json:"rate_hz"`
	FramesStored   uint64  `json:"frames_stored"`
	FramesEnqueued uint64  `json:"frames_enqueued"`
	QueueLen       int     `json:"queue_len"`
	ShedBatches    uint64  `json:"shed_batches"`
	ShedFrames     uint64  `json:"shed_frames"`
	AppendErrors   uint64  `json:"append_errors"`

	// Durability state: whether the session journals at all, whether it
	// resumed recovered state, how many frames the journal has seen across
	// incarnations, and whether it is currently shedding durability.
	Durable         bool   `json:"durable"`
	Resumed         bool   `json:"resumed"`
	JournalFrames   uint64 `json:"journal_frames"`
	JournalDegraded bool   `json:"journal_degraded"`
}

// Sessions snapshots every live session, sorted by ID. Counters are
// point-in-time atomic reads; QueueLen is the instantaneous ingest-queue
// length.
func (s *Server) Sessions() []SessionInfo {
	var out []SessionInfo
	s.sessions.forEach(func(sess *session) {
		info := SessionInfo{
			ID:             sess.id,
			Name:           sess.name,
			Class:          sess.class,
			Channels:       sess.store.Channels(),
			Rate:           sess.rate,
			FramesStored:   sess.stored.Load(),
			FramesEnqueued: sess.enqueued.Load(),
			ShedBatches:    sess.shedB.Load(),
			ShedFrames:     sess.shedF.Load(),
			AppendErrors:   sess.badAppend.Load(),
		}
		if sess.in != nil {
			info.QueueLen = len(sess.in)
		}
		if sess.jsess != nil {
			info.Durable = true
			info.Resumed = sess.resumed
			info.JournalFrames = sess.jsess.Processed()
			info.JournalDegraded = sess.jsess.Degraded()
		}
		out = append(out, info)
	})
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// FleetClassInfo is one device class's row on the /fleet admin endpoint.
type FleetClassInfo struct {
	Class    string `json:"class"`
	Sessions int    `json:"sessions"`
}

// AdminHandler assembles the server's admin HTTP plane:
//
//	/metrics  Prometheus text exposition (server registry + process-wide
//	          wavelet transform instruments), with OpenMetrics exemplars
//	          linking latency buckets to trace IDs
//	/healthz  readiness: 200 "ok" while serving, 503 "draining" once
//	          shutdown has begun
//	/sessions per-session JSON from the sharded registry
//	/fleet    device classes with live session counts (fleet query scopes)
//	/tracez   slowest sampled pipeline traces as JSON (?n= to bound,
//	          clamped to the ring capacity; ?id=<16-hex> serves one trace
//	          by its distributed trace ID — sampled or slow-retained)
//	/slowlog  the always-on slow-query log: structured records of every
//	          trace that crossed the slow threshold, newest first
//	/debug/pprof/...  the standard Go profiler endpoints
//
// Read-only endpoints answer GET only (405 otherwise). The handler is
// independent of the wire listener, so it keeps answering (and reporting
// the draining state) while Shutdown drains sessions.
func (s *Server) AdminHandler() http.Handler {
	proc := obs.NewRegistry()
	proc.CounterFunc("aims_wavelet_lines_total",
		"1-D wavelet lines transformed (process-wide).",
		func() float64 { return float64(wavelet.ReadTransformStats().Lines) })
	proc.CounterFunc("aims_wavelet_parallel_runs_total",
		"Axis transforms fanned across the worker pool.",
		func() float64 { return float64(wavelet.ReadTransformStats().ParallelRuns) })
	proc.CounterFunc("aims_wavelet_serial_runs_total",
		"Axis transforms run on the serial path.",
		func() float64 { return float64(wavelet.ReadTransformStats().SerialRuns) })
	proc.CounterFunc("aims_wavelet_worker_busy_seconds_total",
		"Summed wall time transform workers spent busy.",
		func() float64 { return wavelet.ReadTransformStats().WorkerBusy.Seconds() })
	proc.GaugeFunc("aims_wavelet_worker_utilisation",
		"Busy/capacity ratio of the transform worker pool.",
		func() float64 { return wavelet.ReadTransformStats().Utilisation() })

	mux := http.NewServeMux()
	// getOnly guards the read-only endpoints: anything but GET is a 405
	// with the Allow header, so a misdirected POST can never be mistaken
	// for a successful scrape.
	getOnly := func(h http.HandlerFunc) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodGet {
				w.Header().Set("Allow", http.MethodGet)
				http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
				return
			}
			h(w, r)
		}
	}
	mux.HandleFunc("/metrics", getOnly(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.metrics.reg.WritePrometheus(w)
		proc.WritePrometheus(w)
	}))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if s.isClosed() {
			w.WriteHeader(http.StatusServiceUnavailable)
			io.WriteString(w, "draining\n")
			return
		}
		io.WriteString(w, "ok\n")
		// Recovery state rides along on extra lines so a smoke test (or an
		// operator) can confirm a restart adopted its prior sessions.
		recovered, orphans := s.RecoveredSessions()
		fmt.Fprintf(w, "recovered=%d orphans=%d\n", recovered, orphans)
	})
	mux.HandleFunc("/sessions", getOnly(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		sessions := s.Sessions()
		if sessions == nil {
			sessions = []SessionInfo{}
		}
		json.NewEncoder(w).Encode(struct {
			Count    int           `json:"count"`
			Sessions []SessionInfo `json:"sessions"`
		}{len(sessions), sessions})
	}))
	mux.HandleFunc("/fleet", getOnly(func(w http.ResponseWriter, r *http.Request) {
		classes := s.DeviceClasses()
		out := make([]FleetClassInfo, 0, len(classes))
		for class, n := range classes {
			out = append(out, FleetClassInfo{Class: class, Sessions: n})
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Class < out[j].Class })
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct {
			Count   int              `json:"count"`
			Classes []FleetClassInfo `json:"classes"`
		}{len(out), out})
	}))
	mux.HandleFunc("/tracez", getOnly(func(w http.ResponseWriter, r *http.Request) {
		// ?id= serves one trace by its distributed trace ID — the lookup a
		// traced client (aims-query -trace) uses to fetch its span tree.
		// Slow-retained traces resolve here even when the sampler skipped
		// them.
		if idHex := r.URL.Query().Get("id"); idHex != "" {
			id, err := strconv.ParseUint(idHex, 16, 64)
			if err != nil {
				http.Error(w, "bad trace id (want hex)", http.StatusBadRequest)
				return
			}
			snap, ok := s.tracer.FindByID(id)
			if !ok {
				http.Error(w, "trace not found", http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(snap)
			return
		}
		n := 10
		if q := r.URL.Query().Get("n"); q != "" {
			if v, err := strconv.Atoi(q); err == nil && v > 0 {
				n = v
			}
		}
		// Clamp to the ring capacity so an absurd ?n= cannot make the
		// handler allocate beyond what the tracer can ever hold.
		if c := s.tracer.Capacity(); n > c {
			n = c
		}
		traces := s.tracer.Slowest(n)
		if traces == nil {
			traces = []obs.TraceSnapshot{}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct {
			SampleEvery int                 `json:"sample_every"`
			Traces      []obs.TraceSnapshot `json:"traces"`
		}{s.tracer.SampleEvery(), traces})
	}))
	mux.HandleFunc("/slowlog", getOnly(func(w http.ResponseWriter, r *http.Request) {
		n := obs.DefaultSlowBuffer
		if q := r.URL.Query().Get("n"); q != "" {
			if v, err := strconv.Atoi(q); err == nil && v > 0 && v < n {
				n = v
			}
		}
		records := s.tracer.SlowLog(n)
		if records == nil {
			records = []obs.SlowRecord{}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct {
			ThresholdNS int64            `json:"threshold_ns"`
			Count       int              `json:"count"`
			Records     []obs.SlowRecord `json:"records"`
		}{s.tracer.SlowThreshold().Nanoseconds(), len(records), records})
	}))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
