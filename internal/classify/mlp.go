package classify

import (
	"math"
	"math/rand"
)

// MLP is a single-hidden-layer neural network (tanh hidden units, logistic
// output) trained by stochastic gradient descent — the "Neural Nets" entry
// of the paper's earlier pattern-recognition studies (§1.2), completing
// the conventional-classifier trio next to Bayes and trees.
type MLP struct {
	Hidden    int     // hidden units (default 8)
	Epochs    int     // SGD passes (default 300)
	LearnRate float64 // default 0.05
	Seed      int64

	w1     [][]float64 // Hidden × (d+1), last column is the bias
	w2     []float64   // Hidden+1, last entry is the bias
	std    standardizer
	fitted bool
}

// Name implements Classifier.
func (m *MLP) Name() string { return "mlp" }

// Fit implements Classifier.
func (m *MLP) Fit(features [][]float64, labels []int) {
	if len(features) == 0 {
		return
	}
	if m.Hidden <= 0 {
		m.Hidden = 8
	}
	if m.Epochs <= 0 {
		m.Epochs = 300
	}
	if m.LearnRate <= 0 {
		m.LearnRate = 0.05
	}
	m.std.fit(features)
	x := make([][]float64, len(features))
	for i, f := range features {
		x[i] = m.std.apply(f)
	}
	d := len(x[0])
	rng := rand.New(rand.NewSource(m.Seed + 11))
	m.w1 = make([][]float64, m.Hidden)
	for h := range m.w1 {
		m.w1[h] = make([]float64, d+1)
		for j := range m.w1[h] {
			m.w1[h][j] = rng.NormFloat64() / math.Sqrt(float64(d))
		}
	}
	m.w2 = make([]float64, m.Hidden+1)
	for j := range m.w2 {
		m.w2[j] = rng.NormFloat64() / math.Sqrt(float64(m.Hidden))
	}

	hidden := make([]float64, m.Hidden)
	for epoch := 0; epoch < m.Epochs; epoch++ {
		lr := m.LearnRate / (1 + 0.01*float64(epoch))
		for _, i := range rng.Perm(len(x)) {
			// Forward.
			for h := 0; h < m.Hidden; h++ {
				s := m.w1[h][d] // bias
				for j, v := range x[i] {
					s += m.w1[h][j] * v
				}
				hidden[h] = math.Tanh(s)
			}
			out := m.w2[m.Hidden]
			for h, v := range hidden {
				out += m.w2[h] * v
			}
			p := 1 / (1 + math.Exp(-out))
			target := 0.0
			if labels[i] > 0 {
				target = 1
			}
			// Backward (cross-entropy ⇒ simple output delta).
			dOut := p - target
			for h, v := range hidden {
				dHidden := dOut * m.w2[h] * (1 - v*v)
				m.w2[h] -= lr * dOut * v
				for j, xv := range x[i] {
					m.w1[h][j] -= lr * dHidden * xv
				}
				m.w1[h][d] -= lr * dHidden
			}
			m.w2[m.Hidden] -= lr * dOut
		}
	}
	m.fitted = true
}

// Predict implements Classifier.
func (m *MLP) Predict(f []float64) int {
	if !m.fitted {
		return 1
	}
	x := m.std.apply(f)
	d := len(x)
	out := m.w2[m.Hidden]
	for h := 0; h < m.Hidden; h++ {
		s := m.w1[h][d]
		for j, v := range x {
			s += m.w1[h][j] * v
		}
		out += m.w2[h] * math.Tanh(s)
	}
	if out >= 0 {
		return 1
	}
	return -1
}
