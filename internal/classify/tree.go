package classify

import (
	"math"
	"sort"
)

// Tree is a depth-limited binary decision tree with Gini-impurity splits —
// the "Decision Trees" entry of the paper's earlier studies, generalising
// the stump.
type Tree struct {
	MaxDepth    int // default 4
	MinLeafSize int // default 3

	root   *treeNode
	fitted bool
}

type treeNode struct {
	feature     int
	threshold   float64
	label       int // leaf prediction when left/right are nil
	left, right *treeNode
}

// Name implements Classifier.
func (tr *Tree) Name() string { return "decision-tree" }

// Fit implements Classifier.
func (tr *Tree) Fit(features [][]float64, labels []int) {
	if len(features) == 0 {
		return
	}
	if tr.MaxDepth <= 0 {
		tr.MaxDepth = 4
	}
	if tr.MinLeafSize <= 0 {
		tr.MinLeafSize = 3
	}
	idx := make([]int, len(features))
	for i := range idx {
		idx[i] = i
	}
	tr.root = tr.grow(features, labels, idx, 0)
	tr.fitted = true
}

func majority(labels []int, idx []int) int {
	pos := 0
	for _, i := range idx {
		if labels[i] > 0 {
			pos++
		}
	}
	if 2*pos >= len(idx) {
		return 1
	}
	return -1
}

// gini returns the Gini impurity of a subset weighted by its size.
func weightedGini(labels []int, idx []int) float64 {
	if len(idx) == 0 {
		return 0
	}
	pos := 0
	for _, i := range idx {
		if labels[i] > 0 {
			pos++
		}
	}
	p := float64(pos) / float64(len(idx))
	return 2 * p * (1 - p) * float64(len(idx))
}

func (tr *Tree) grow(features [][]float64, labels []int, idx []int, depth int) *treeNode {
	node := &treeNode{label: majority(labels, idx)}
	if depth >= tr.MaxDepth || len(idx) < 2*tr.MinLeafSize {
		return node
	}
	// Pure node?
	pure := true
	for _, i := range idx[1:] {
		if labels[i] != labels[idx[0]] {
			pure = false
			break
		}
	}
	if pure {
		return node
	}

	d := len(features[idx[0]])
	bestImp := math.Inf(1)
	bestFeature, bestThr := -1, 0.0
	order := make([]int, len(idx))
	for j := 0; j < d; j++ {
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool {
			return features[order[a]][j] < features[order[b]][j]
		})
		// Incremental split scan.
		posLeft, posTotal := 0, 0
		for _, i := range order {
			if labels[i] > 0 {
				posTotal++
			}
		}
		for k := 0; k < len(order)-1; k++ {
			if labels[order[k]] > 0 {
				posLeft++
			}
			if features[order[k]][j] == features[order[k+1]][j] {
				continue
			}
			nl, nr := k+1, len(order)-k-1
			if nl < tr.MinLeafSize || nr < tr.MinLeafSize {
				continue
			}
			pl := float64(posLeft) / float64(nl)
			pr := float64(posTotal-posLeft) / float64(nr)
			imp := 2*pl*(1-pl)*float64(nl) + 2*pr*(1-pr)*float64(nr)
			if imp < bestImp {
				bestImp = imp
				bestFeature = j
				bestThr = (features[order[k]][j] + features[order[k+1]][j]) / 2
			}
		}
	}
	// Zero-gain splits are allowed (XOR-style problems have no first-split
	// gain); only strictly-worse splits stop growth. Depth and leaf-size
	// limits bound the recursion.
	if bestFeature < 0 || bestImp > weightedGini(labels, idx)+1e-12 {
		return node
	}
	var leftIdx, rightIdx []int
	for _, i := range idx {
		if features[i][bestFeature] <= bestThr {
			leftIdx = append(leftIdx, i)
		} else {
			rightIdx = append(rightIdx, i)
		}
	}
	if len(leftIdx) == 0 || len(rightIdx) == 0 {
		return node
	}
	node.feature = bestFeature
	node.threshold = bestThr
	node.left = tr.grow(features, labels, leftIdx, depth+1)
	node.right = tr.grow(features, labels, rightIdx, depth+1)
	return node
}

// Predict implements Classifier.
func (tr *Tree) Predict(f []float64) int {
	if !tr.fitted {
		return 1
	}
	n := tr.root
	for n.left != nil && n.right != nil {
		if f[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.label
}

// Depth returns the fitted tree's depth (0 = single leaf).
func (tr *Tree) Depth() int {
	var walk func(n *treeNode) int
	walk = func(n *treeNode) int {
		if n == nil || (n.left == nil && n.right == nil) {
			return 0
		}
		l, r := walk(n.left), walk(n.right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return walk(tr.root)
}
