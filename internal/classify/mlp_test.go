package classify

import "testing"

func TestMLPSeparatesBlobs(t *testing.T) {
	x, y := gaussianBlobs(200, 2.5, 4)
	m := &MLP{}
	m.Fit(x, y)
	if acc := Accuracy(m, x, y); acc < 0.93 {
		t.Fatalf("MLP training accuracy %v", acc)
	}
}

func TestMLPLearnsNonlinearBoundary(t *testing.T) {
	// XOR-ish quadrant problem — linearly inseparable, within reach of a
	// small hidden layer.
	var x [][]float64
	var y []int
	for i := -6; i <= 6; i++ {
		for j := -6; j <= 6; j++ {
			if i == 0 || j == 0 {
				continue
			}
			x = append(x, []float64{float64(i), float64(j)})
			if i*j > 0 {
				y = append(y, 1)
			} else {
				y = append(y, -1)
			}
		}
	}
	m := &MLP{Hidden: 12, Epochs: 800}
	m.Fit(x, y)
	if acc := Accuracy(m, x, y); acc < 0.9 {
		t.Fatalf("XOR accuracy %v — a linear model caps at 0.5", acc)
	}
	// Confirm the problem actually defeats the linear SVM.
	svm := &SVM{}
	svm.Fit(x, y)
	if linAcc := Accuracy(svm, x, y); linAcc > 0.75 {
		t.Fatalf("XOR should defeat the linear SVM, got %v", linAcc)
	}
}

func TestMLPUnfittedPredict(t *testing.T) {
	m := &MLP{}
	if got := m.Predict([]float64{1}); got != 1 {
		t.Fatalf("unfitted predict %d", got)
	}
}

func TestMLPCrossValidates(t *testing.T) {
	x, y := gaussianBlobs(200, 2.0, 9)
	acc := CrossValidate(func() Classifier { return &MLP{Epochs: 150} }, x, y, 4, 10)
	if acc < 0.85 {
		t.Fatalf("cv accuracy %v", acc)
	}
}
