package classify

import (
	"math/rand"
	"testing"

	"aims/internal/synth"
)

// gaussianBlobs builds a linearly separable-ish two-class problem.
func gaussianBlobs(n int, sep float64, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	var x [][]float64
	var y []int
	for i := 0; i < n; i++ {
		label := 1
		center := sep
		if i%2 == 0 {
			label = -1
			center = -sep
		}
		x = append(x, []float64{center + rng.NormFloat64(), center/2 + rng.NormFloat64()})
		y = append(y, label)
	}
	return x, y
}

func TestSVMSeparatesBlobs(t *testing.T) {
	x, y := gaussianBlobs(200, 2.5, 1)
	svm := &SVM{}
	svm.Fit(x, y)
	if acc := Accuracy(svm, x, y); acc < 0.95 {
		t.Fatalf("SVM training accuracy %v", acc)
	}
	if len(svm.Weights()) != 2 {
		t.Fatal("weights width")
	}
}

func TestNaiveBayesSeparatesBlobs(t *testing.T) {
	x, y := gaussianBlobs(200, 2.5, 2)
	nb := &NaiveBayes{}
	nb.Fit(x, y)
	if acc := Accuracy(nb, x, y); acc < 0.95 {
		t.Fatalf("NB training accuracy %v", acc)
	}
}

func TestStumpFindsBestSplit(t *testing.T) {
	x := [][]float64{{0, 9}, {1, -3}, {2, 14}, {10, 2}, {11, -5}, {12, 7}}
	y := []int{-1, -1, -1, 1, 1, 1}
	st := &Stump{}
	st.Fit(x, y)
	if acc := Accuracy(st, x, y); acc != 1 {
		t.Fatalf("stump accuracy %v on trivially splittable data", acc)
	}
	if st.feature != 0 {
		t.Fatalf("stump picked feature %d", st.feature)
	}
}

func TestUnfittedClassifiersDoNotPanic(t *testing.T) {
	for _, c := range []Classifier{&SVM{}, &NaiveBayes{}, &Stump{}} {
		if got := c.Predict([]float64{1, 2}); got != 1 && got != -1 {
			t.Fatalf("%s: predict = %d", c.Name(), got)
		}
	}
}

func TestCrossValidateBlobs(t *testing.T) {
	x, y := gaussianBlobs(300, 2.0, 3)
	acc := CrossValidate(func() Classifier { return &SVM{} }, x, y, 5, 7)
	if acc < 0.9 {
		t.Fatalf("cross-validated accuracy %v", acc)
	}
}

func TestCrossValidatePanicsWithoutData(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CrossValidate(func() Classifier { return &SVM{} }, nil, nil, 5, 1)
}

// TestADHDDiagnosisAccuracy reproduces the paper's headline §2.1 result:
// an SVM over tracker motion-speed features distinguishes hyperactive from
// control subjects at ≈86 % accuracy. The synthetic cohort is calibrated
// so the problem is neither trivial nor hopeless; we accept a band around
// the paper's figure.
func TestADHDDiagnosisAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("cohort generation is slow")
	}
	cohort := synth.NewCohort(80, 0.5, 99)
	var x [][]float64
	var y []int
	for _, subj := range cohort {
		sess := synth.GenerateSession(subj, 3000)
		x = append(x, synth.MotionSpeedFeatures(sess))
		if subj.ADHD {
			y = append(y, 1)
		} else {
			y = append(y, -1)
		}
	}
	acc := CrossValidate(func() Classifier { return &SVM{} }, x, y, 5, 11)
	if acc < 0.75 || acc > 1.0 {
		t.Fatalf("ADHD SVM accuracy %v outside plausible band [0.75, 1.0]", acc)
	}
	// SVM should beat the stump (the richer baseline comparison runs in
	// the benchmark harness).
	stumpAcc := CrossValidate(func() Classifier { return &Stump{} }, x, y, 5, 11)
	t.Logf("ADHD accuracy: svm %.3f, stump %.3f (paper: 0.86)", acc, stumpAcc)
}
