// Package classify provides the statistical learning tools of the ADHD
// diagnosis study (§2.1): the linear SVM that reached 86 % accuracy on
// tracker motion-speed features, and the "conventional learning
// techniques" of the earlier work — a Gaussian naive Bayes classifier and
// a decision stump — as baselines, plus k-fold cross-validation.
package classify

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Classifier is a binary classifier over float feature vectors with labels
// +1 / -1.
type Classifier interface {
	Fit(features [][]float64, labels []int)
	Predict(features []float64) int
	Name() string
}

// standardizer learns per-feature mean/std and maps features to z-scores.
type standardizer struct {
	mean, std []float64
}

func (s *standardizer) fit(features [][]float64) {
	if len(features) == 0 {
		return
	}
	d := len(features[0])
	s.mean = make([]float64, d)
	s.std = make([]float64, d)
	for _, f := range features {
		for j, v := range f {
			s.mean[j] += v
		}
	}
	n := float64(len(features))
	for j := range s.mean {
		s.mean[j] /= n
	}
	for _, f := range features {
		for j, v := range f {
			d := v - s.mean[j]
			s.std[j] += d * d
		}
	}
	for j := range s.std {
		s.std[j] = math.Sqrt(s.std[j] / n)
		if s.std[j] < 1e-12 {
			s.std[j] = 1
		}
	}
}

func (s *standardizer) apply(f []float64) []float64 {
	out := make([]float64, len(f))
	for j, v := range f {
		out[j] = (v - s.mean[j]) / s.std[j]
	}
	return out
}

// SVM is a linear soft-margin SVM trained with the Pegasos stochastic
// sub-gradient method. Features are standardised internally.
type SVM struct {
	Lambda float64 // regularisation (default 0.01)
	Epochs int     // passes over the data (default 200)
	Seed   int64

	w    []float64
	b    float64
	std  standardizer
	once bool
}

// Name implements Classifier.
func (s *SVM) Name() string { return "linear-svm" }

// Fit implements Classifier.
func (s *SVM) Fit(features [][]float64, labels []int) {
	if len(features) == 0 {
		return
	}
	if s.Lambda <= 0 {
		s.Lambda = 0.01
	}
	if s.Epochs <= 0 {
		s.Epochs = 200
	}
	s.std.fit(features)
	x := make([][]float64, len(features))
	for i, f := range features {
		x[i] = s.std.apply(f)
	}
	d := len(x[0])
	s.w = make([]float64, d)
	s.b = 0
	rng := rand.New(rand.NewSource(s.Seed + 1))
	t := 1
	for epoch := 0; epoch < s.Epochs; epoch++ {
		perm := rng.Perm(len(x))
		for _, i := range perm {
			eta := 1 / (s.Lambda * float64(t))
			y := float64(labels[i])
			margin := y * (dot(s.w, x[i]) + s.b)
			for j := range s.w {
				s.w[j] *= 1 - eta*s.Lambda
			}
			if margin < 1 {
				for j := range s.w {
					s.w[j] += eta * y * x[i][j]
				}
				s.b += eta * y * 0.1 // slow bias learning, unregularised
			}
			t++
		}
	}
	s.once = true
}

// Predict implements Classifier.
func (s *SVM) Predict(f []float64) int {
	if !s.once {
		return 1
	}
	if dot(s.w, s.std.apply(f))+s.b >= 0 {
		return 1
	}
	return -1
}

// Weights exposes the learned hyperplane (standardised space) for
// interpretation — which trackers drive the diagnosis.
func (s *SVM) Weights() []float64 { return append([]float64(nil), s.w...) }

func dot(a, b []float64) float64 {
	var v float64
	for i := range a {
		v += a[i] * b[i]
	}
	return v
}

// NaiveBayes is a Gaussian naive Bayes binary classifier.
type NaiveBayes struct {
	meanPos, meanNeg []float64
	varPos, varNeg   []float64
	priorPos         float64
	fitted           bool
}

// Name implements Classifier.
func (nb *NaiveBayes) Name() string { return "gaussian-nb" }

// Fit implements Classifier.
func (nb *NaiveBayes) Fit(features [][]float64, labels []int) {
	if len(features) == 0 {
		return
	}
	d := len(features[0])
	nb.meanPos = make([]float64, d)
	nb.meanNeg = make([]float64, d)
	nb.varPos = make([]float64, d)
	nb.varNeg = make([]float64, d)
	var nPos, nNeg float64
	for i, f := range features {
		if labels[i] > 0 {
			nPos++
			for j, v := range f {
				nb.meanPos[j] += v
			}
		} else {
			nNeg++
			for j, v := range f {
				nb.meanNeg[j] += v
			}
		}
	}
	for j := 0; j < d; j++ {
		if nPos > 0 {
			nb.meanPos[j] /= nPos
		}
		if nNeg > 0 {
			nb.meanNeg[j] /= nNeg
		}
	}
	for i, f := range features {
		if labels[i] > 0 {
			for j, v := range f {
				dv := v - nb.meanPos[j]
				nb.varPos[j] += dv * dv
			}
		} else {
			for j, v := range f {
				dv := v - nb.meanNeg[j]
				nb.varNeg[j] += dv * dv
			}
		}
	}
	for j := 0; j < d; j++ {
		if nPos > 1 {
			nb.varPos[j] /= nPos
		}
		if nNeg > 1 {
			nb.varNeg[j] /= nNeg
		}
		if nb.varPos[j] < 1e-9 {
			nb.varPos[j] = 1e-9
		}
		if nb.varNeg[j] < 1e-9 {
			nb.varNeg[j] = 1e-9
		}
	}
	nb.priorPos = nPos / (nPos + nNeg)
	nb.fitted = true
}

// Predict implements Classifier.
func (nb *NaiveBayes) Predict(f []float64) int {
	if !nb.fitted {
		return 1
	}
	logPos := math.Log(nb.priorPos + 1e-12)
	logNeg := math.Log(1 - nb.priorPos + 1e-12)
	for j, v := range f {
		logPos += -0.5*math.Log(2*math.Pi*nb.varPos[j]) - (v-nb.meanPos[j])*(v-nb.meanPos[j])/(2*nb.varPos[j])
		logNeg += -0.5*math.Log(2*math.Pi*nb.varNeg[j]) - (v-nb.meanNeg[j])*(v-nb.meanNeg[j])/(2*nb.varNeg[j])
	}
	if logPos >= logNeg {
		return 1
	}
	return -1
}

// Stump is a single-feature threshold classifier — the simplest member of
// the decision-tree family the earlier studies used.
type Stump struct {
	feature   int
	threshold float64
	polarity  int
	fitted    bool
}

// Name implements Classifier.
func (st *Stump) Name() string { return "decision-stump" }

// Fit implements Classifier: exhaustive search over features and
// thresholds for minimum training error.
func (st *Stump) Fit(features [][]float64, labels []int) {
	if len(features) == 0 {
		return
	}
	d := len(features[0])
	bestErr := math.Inf(1)
	for j := 0; j < d; j++ {
		vals := make([]float64, len(features))
		for i, f := range features {
			vals[i] = f[j]
		}
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		for k := 0; k < len(sorted)-1; k++ {
			thr := (sorted[k] + sorted[k+1]) / 2
			for _, pol := range []int{1, -1} {
				errs := 0
				for i := range features {
					pred := -pol
					if vals[i] > thr {
						pred = pol
					}
					if pred != labels[i] {
						errs++
					}
				}
				if e := float64(errs); e < bestErr {
					bestErr = e
					st.feature, st.threshold, st.polarity = j, thr, pol
				}
			}
		}
	}
	st.fitted = true
}

// Predict implements Classifier.
func (st *Stump) Predict(f []float64) int {
	if !st.fitted {
		return 1
	}
	if f[st.feature] > st.threshold {
		return st.polarity
	}
	return -st.polarity
}

// CrossValidate returns the k-fold cross-validation accuracy of a
// classifier factory over a labelled dataset.
func CrossValidate(newC func() Classifier, features [][]float64, labels []int, k int, seed int64) float64 {
	n := len(features)
	if n == 0 || k < 2 {
		panic(fmt.Sprintf("classify: cross-validation needs data and k ≥ 2 (n=%d k=%d)", n, k))
	}
	if k > n {
		k = n
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	correct, total := 0, 0
	for fold := 0; fold < k; fold++ {
		var trainX, testX [][]float64
		var trainY, testY []int
		for i, idx := range perm {
			if i%k == fold {
				testX = append(testX, features[idx])
				testY = append(testY, labels[idx])
			} else {
				trainX = append(trainX, features[idx])
				trainY = append(trainY, labels[idx])
			}
		}
		c := newC()
		c.Fit(trainX, trainY)
		for i, f := range testX {
			if c.Predict(f) == testY[i] {
				correct++
			}
			total++
		}
	}
	return float64(correct) / float64(total)
}

// Accuracy evaluates a fitted classifier on a labelled set.
func Accuracy(c Classifier, features [][]float64, labels []int) float64 {
	if len(features) == 0 {
		return 0
	}
	correct := 0
	for i, f := range features {
		if c.Predict(f) == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(features))
}
