package classify

import "testing"

func TestTreeSeparatesBlobs(t *testing.T) {
	x, y := gaussianBlobs(200, 2.5, 20)
	tr := &Tree{}
	tr.Fit(x, y)
	if acc := Accuracy(tr, x, y); acc < 0.93 {
		t.Fatalf("tree accuracy %v", acc)
	}
}

func TestTreeLearnsXOR(t *testing.T) {
	// Quadrant labels need depth ≥ 2; the stump caps near 0.5.
	var x [][]float64
	var y []int
	for i := -5; i <= 5; i++ {
		for j := -5; j <= 5; j++ {
			if i == 0 || j == 0 {
				continue
			}
			x = append(x, []float64{float64(i), float64(j)})
			if i*j > 0 {
				y = append(y, 1)
			} else {
				y = append(y, -1)
			}
		}
	}
	tr := &Tree{MaxDepth: 3, MinLeafSize: 2}
	tr.Fit(x, y)
	if acc := Accuracy(tr, x, y); acc < 0.95 {
		t.Fatalf("XOR tree accuracy %v", acc)
	}
	if tr.Depth() < 2 {
		t.Fatalf("tree depth %d, XOR needs ≥ 2", tr.Depth())
	}
	st := &Stump{}
	st.Fit(x, y)
	if stAcc := Accuracy(st, x, y); stAcc > 0.75 {
		t.Fatalf("stump should fail XOR, got %v", stAcc)
	}
}

func TestTreePureNodeStops(t *testing.T) {
	x := [][]float64{{1}, {2}, {3}, {4}, {5}, {6}}
	y := []int{1, 1, 1, 1, 1, 1}
	tr := &Tree{}
	tr.Fit(x, y)
	if tr.Depth() != 0 {
		t.Fatalf("pure data grew depth %d", tr.Depth())
	}
	if tr.Predict([]float64{99}) != 1 {
		t.Fatal("pure prediction")
	}
}

func TestTreeMinLeafSizeRespected(t *testing.T) {
	x, y := gaussianBlobs(40, 1.0, 21)
	tr := &Tree{MaxDepth: 10, MinLeafSize: 15}
	tr.Fit(x, y)
	if tr.Depth() > 1 {
		t.Fatalf("depth %d despite MinLeafSize 15 on 40 points", tr.Depth())
	}
}

func TestTreeUnfitted(t *testing.T) {
	tr := &Tree{}
	if got := tr.Predict([]float64{0}); got != 1 {
		t.Fatalf("unfitted predict %d", got)
	}
}

func TestTreeCrossValidates(t *testing.T) {
	x, y := gaussianBlobs(240, 2.0, 22)
	acc := CrossValidate(func() Classifier { return &Tree{} }, x, y, 5, 23)
	if acc < 0.88 {
		t.Fatalf("cv accuracy %v", acc)
	}
}
