package datacube

import "fmt"

// PrefixSum is the classical exact-MOLAP baseline: a d-dimensional prefix-
// sum array answering COUNT/SUM range queries with 2^d lookups. It is the
// "best known exact technique" ProPolyne's costs are compared against in
// experiment E4.
type PrefixSum struct {
	Dims    []int
	strides []int
	data    []float64
}

// NewPrefixSum builds the prefix-sum array of a dense cube.
func NewPrefixSum(cube []float64, dims []int) *PrefixSum {
	size := 1
	for _, d := range dims {
		size *= d
	}
	if size != len(cube) {
		panic(fmt.Sprintf("datacube: cube size %d != dims %v", len(cube), dims))
	}
	p := &PrefixSum{
		Dims:    append([]int(nil), dims...),
		strides: stridesOf(dims),
		data:    append([]float64(nil), cube...),
	}
	// Running sums along each axis in turn.
	for d := range dims {
		stride := p.strides[d]
		n := dims[d]
		// Iterate over all lines along axis d.
		outer := size / n
		for o := 0; o < outer; o++ {
			start := lineStart(o, d, dims, p.strides)
			for k := 1; k < n; k++ {
				p.data[start+k*stride] += p.data[start+(k-1)*stride]
			}
		}
	}
	return p
}

func lineStart(o, axis int, dims, strides []int) int {
	start := 0
	rem := o
	for i := len(dims) - 1; i >= 0; i-- {
		if i == axis {
			continue
		}
		start += (rem % dims[i]) * strides[i]
		rem /= dims[i]
	}
	return start
}

// at returns the prefix value at the (possibly -1) corner coordinates.
func (p *PrefixSum) at(idx []int) float64 {
	off := 0
	for d, v := range idx {
		if v < 0 {
			return 0
		}
		off += v * p.strides[d]
	}
	return p.data[off]
}

// RangeCount returns Σ cube[x] over the box [lo, hi] using inclusion-
// exclusion over the 2^d corners.
func (p *PrefixSum) RangeCount(lo, hi []int) float64 {
	d := len(p.Dims)
	corner := make([]int, d)
	var sum float64
	for mask := 0; mask < 1<<uint(d); mask++ {
		sign := 1.0
		for i := 0; i < d; i++ {
			if mask&(1<<uint(i)) != 0 {
				corner[i] = lo[i] - 1
				sign = -sign
			} else {
				corner[i] = hi[i]
			}
		}
		sum += sign * p.at(corner)
	}
	return sum
}

// Lookups returns the number of array accesses one query costs (2^d) —
// the cost metric for E4.
func (p *PrefixSum) Lookups() int { return 1 << uint(len(p.Dims)) }
