package datacube

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"aims/internal/vec"
)

func testSchema() Schema {
	return Schema{Names: []string{"a", "b"}, Sizes: []int{8, 16}}
}

func TestSchemaBasics(t *testing.T) {
	s := testSchema()
	if s.Arity() != 2 || s.Size() != 128 {
		t.Fatalf("arity %d size %d", s.Arity(), s.Size())
	}
	if err := s.Validate([]int{7, 15}); err != nil {
		t.Fatalf("valid tuple rejected: %v", err)
	}
	if err := s.Validate([]int{8, 0}); err == nil {
		t.Fatal("out-of-domain accepted")
	}
	if err := s.Validate([]int{1}); err == nil {
		t.Fatal("wrong arity accepted")
	}
}

func TestRelationAppendAndCube(t *testing.T) {
	r := NewRelation(testSchema())
	r.MustAppend([]int{1, 2})
	r.MustAppend([]int{1, 2})
	r.MustAppend([]int{0, 15})
	if err := r.Append([]int{-1, 0}); err == nil {
		t.Fatal("bad tuple accepted")
	}
	cube := r.Cube()
	if cube[1*16+2] != 2 {
		t.Fatalf("cell (1,2) = %v", cube[1*16+2])
	}
	if cube[15] != 1 {
		t.Fatalf("cell (0,15) = %v", cube[15])
	}
	var total float64
	for _, v := range cube {
		total += v
	}
	if total != 3 {
		t.Fatalf("mass = %v", total)
	}
}

func TestRangeSumCountAndPolynomial(t *testing.T) {
	r := NewRelation(testSchema())
	r.MustAppend([]int{1, 3})
	r.MustAppend([]int{2, 5})
	r.MustAppend([]int{7, 9})
	lo, hi := []int{0, 0}, []int{3, 7}
	if got := r.RangeSum(lo, hi, nil); got != 2 {
		t.Fatalf("COUNT = %v", got)
	}
	// SUM over dimension b within the box: 3 + 5 = 8.
	sum := r.RangeSum(lo, hi, []vec.Poly{nil, {0, 1}})
	if sum != 8 {
		t.Fatalf("SUM(b) = %v", sum)
	}
	// Degree-2: Σ b² = 9 + 25.
	sq := r.RangeSum(lo, hi, []vec.Poly{nil, {0, 0, 1}})
	if sq != 34 {
		t.Fatalf("SUM(b²) = %v", sq)
	}
}

func TestSelect(t *testing.T) {
	r := NewRelation(testSchema())
	r.MustAppend([]int{1, 3})
	r.MustAppend([]int{5, 3})
	got := r.Select([]int{0, 0}, []int{2, 15})
	if len(got) != 1 || got[0][0] != 1 {
		t.Fatalf("Select = %v", got)
	}
}

func TestCubeRangeSumMatchesRelation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := Schema{Names: []string{"x", "y"}, Sizes: []int{16, 8}}
		r := NewRelation(s)
		for i := 0; i < 200; i++ {
			r.MustAppend([]int{rng.Intn(16), rng.Intn(8)})
		}
		lo := []int{rng.Intn(16), rng.Intn(8)}
		hi := []int{lo[0] + rng.Intn(16-lo[0]), lo[1] + rng.Intn(8-lo[1])}
		polys := []vec.Poly{{0, 1}, nil}
		a := r.RangeSum(lo, hi, polys)
		b := CubeRangeSum(r.Cube(), s.Sizes, lo, hi, polys)
		return math.Abs(a-b) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestGroupByScan(t *testing.T) {
	r := NewRelation(Schema{Names: []string{"a", "b"}, Sizes: []int{16, 8}})
	r.MustAppend([]int{0, 1})
	r.MustAppend([]int{3, 2})
	r.MustAppend([]int{8, 3})
	r.MustAppend([]int{15, 4})
	lo, hi := []int{0, 0}, []int{15, 7}
	vals, visits, err := r.GroupByScan(lo, hi, nil, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if visits != 4 {
		t.Fatalf("visits = %d", visits)
	}
	// Buckets on dim 0 of width 4: [0,3] has 2 tuples, [8,11] one, [12,15] one.
	want := []float64{2, 0, 1, 1}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("GroupByScan = %v, want %v", vals, want)
		}
	}
	// Polynomial measure: SUM(b) per bucket.
	sums, _, err := r.GroupByScan(lo, hi, []vec.Poly{nil, {0, 1}}, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sums[0] != 3 || sums[2] != 3 || sums[3] != 4 {
		t.Fatalf("sums = %v", sums)
	}
	if _, _, err := r.GroupByScan(lo, hi, nil, 5, 2); err == nil {
		t.Fatal("bad dim accepted")
	}
	if _, _, err := r.GroupByScan(lo, hi, nil, 0, 100); err == nil {
		t.Fatal("too many parts accepted")
	}
}

func TestPrefixSum2D(t *testing.T) {
	dims := []int{4, 4}
	cube := make([]float64, 16)
	for i := range cube {
		cube[i] = float64(i)
	}
	ps := NewPrefixSum(cube, dims)
	// Sum over the whole cube = 0+1+...+15 = 120.
	if got := ps.RangeCount([]int{0, 0}, []int{3, 3}); got != 120 {
		t.Fatalf("full sum = %v", got)
	}
	// Single cell (2,3) = value 11.
	if got := ps.RangeCount([]int{2, 3}, []int{2, 3}); got != 11 {
		t.Fatalf("cell = %v", got)
	}
	if ps.Lookups() != 4 {
		t.Fatalf("lookups = %d", ps.Lookups())
	}
}

func TestPrefixSumMatchesNaiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := []int{8, 4, 4}
		cube := make([]float64, 128)
		for i := range cube {
			cube[i] = math.Floor(rng.Float64() * 5)
		}
		ps := NewPrefixSum(cube, dims)
		lo := []int{rng.Intn(8), rng.Intn(4), rng.Intn(4)}
		hi := []int{lo[0] + rng.Intn(8-lo[0]), lo[1] + rng.Intn(4-lo[1]), lo[2] + rng.Intn(4-lo[2])}
		want := CubeRangeSum(cube, dims, lo, hi, nil)
		got := ps.RangeCount(lo, hi)
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPrefixSumPanicsOnSizeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPrefixSum(make([]float64, 10), []int{4, 4})
}
