// Package datacube provides the relational substrate under ProPolyne: a
// tuple store with a multidimensional schema, the dense frequency cube
// ProPolyne transforms (every attribute — measures included — is treated as
// a dimension, §3.3), naive scan evaluation as ground truth, relational
// selection/aggregation operators for the hybrid engine, and a prefix-sum
// cube as the classical exact-MOLAP baseline.
package datacube

import (
	"fmt"

	"aims/internal/vec"
)

// Schema names the dimensions of a relation and fixes their (power-of-two)
// domain sizes.
type Schema struct {
	Names []string
	Sizes []int
}

// Dims returns the domain sizes.
func (s Schema) Dims() []int { return s.Sizes }

// Arity returns the number of dimensions.
func (s Schema) Arity() int { return len(s.Sizes) }

// Size returns the number of cells of the dense cube.
func (s Schema) Size() int {
	n := 1
	for _, d := range s.Sizes {
		n *= d
	}
	return n
}

// Validate checks that a tuple lies inside the schema's domain.
func (s Schema) Validate(t []int) error {
	if len(t) != len(s.Sizes) {
		return fmt.Errorf("datacube: tuple arity %d != %d", len(t), len(s.Sizes))
	}
	for d, v := range t {
		if v < 0 || v >= s.Sizes[d] {
			return fmt.Errorf("datacube: value %d outside [0,%d) in dimension %s",
				v, s.Sizes[d], s.Names[d])
		}
	}
	return nil
}

// Relation is an append-only tuple store — the immersidata log after
// acquisition has quantised every attribute onto the schema grid.
type Relation struct {
	Schema Schema
	Tuples [][]int
}

// NewRelation returns an empty relation over the schema.
func NewRelation(schema Schema) *Relation {
	return &Relation{Schema: schema}
}

// Append validates and stores a tuple.
func (r *Relation) Append(t []int) error {
	if err := r.Schema.Validate(t); err != nil {
		return err
	}
	r.Tuples = append(r.Tuples, t)
	return nil
}

// MustAppend panics on a bad tuple — for generators with known-valid data.
func (r *Relation) MustAppend(t []int) {
	if err := r.Append(t); err != nil {
		panic(err)
	}
}

// Cube materialises the dense frequency cube: cell x holds the number of
// tuples at x.
func (r *Relation) Cube() []float64 {
	out := make([]float64, r.Schema.Size())
	strides := stridesOf(r.Schema.Sizes)
	for _, t := range r.Tuples {
		off := 0
		for d, v := range t {
			off += v * strides[d]
		}
		out[off]++
	}
	return out
}

// RangeSum evaluates Σ over tuples in the box [lo, hi] of ∏_d poly[d](x_d)
// by scanning the relation — the ground truth every engine is checked
// against. A nil polys entry means the constant 1.
func (r *Relation) RangeSum(lo, hi []int, polys []vec.Poly) float64 {
	var sum float64
	for _, t := range r.Tuples {
		inside := true
		for d, v := range t {
			if v < lo[d] || v > hi[d] {
				inside = false
				break
			}
		}
		if !inside {
			continue
		}
		term := 1.0
		for d, v := range t {
			if d < len(polys) && polys[d] != nil {
				term *= polys[d].Eval(float64(v))
			}
		}
		sum += term
	}
	return sum
}

// Select returns the tuples inside the box [lo, hi] — the relational
// selection operator the hybrid engine uses on standard dimensions.
func (r *Relation) Select(lo, hi []int) [][]int {
	var out [][]int
	for _, t := range r.Tuples {
		inside := true
		for d, v := range t {
			if v < lo[d] || v > hi[d] {
				inside = false
				break
			}
		}
		if inside {
			out = append(out, t)
		}
	}
	return out
}

// GroupByScan is the relational GROUP BY baseline: the box's range on dim
// is split into `parts` buckets and each bucket's polynomial range-sum is
// computed by scanning the relation once. It returns the per-bucket values
// and the number of tuple visits (the scan's cost metric).
func (r *Relation) GroupByScan(lo, hi []int, polys []vec.Poly, dim, parts int) ([]float64, int, error) {
	if dim < 0 || dim >= r.Schema.Arity() {
		return nil, 0, fmt.Errorf("datacube: group dimension %d out of range", dim)
	}
	width := hi[dim] - lo[dim] + 1
	if parts <= 0 || parts > width {
		return nil, 0, fmt.Errorf("datacube: %d parts for width %d", parts, width)
	}
	// Bucket boundaries follow the same near-equal partition as the
	// wavelet-domain GROUP BY (bucket p starts at lo + p·width/parts), so
	// results are directly comparable.
	bucketOf := make([]int, width)
	for p := 0; p < parts; p++ {
		from := p * width / parts
		to := (p+1)*width/parts - 1
		for v := from; v <= to; v++ {
			bucketOf[v] = p
		}
	}
	out := make([]float64, parts)
	visits := 0
	for _, t := range r.Tuples {
		visits++
		inside := true
		for d, v := range t {
			if v < lo[d] || v > hi[d] {
				inside = false
				break
			}
		}
		if !inside {
			continue
		}
		bucket := bucketOf[t[dim]-lo[dim]]
		term := 1.0
		for d, v := range t {
			if d < len(polys) && polys[d] != nil {
				term *= polys[d].Eval(float64(v))
			}
		}
		out[bucket] += term
	}
	return out, visits, nil
}

// CubeRangeSum evaluates the same polynomial range-sum directly on a dense
// cube — ground truth for cube-level engines.
func CubeRangeSum(cube []float64, dims []int, lo, hi []int, polys []vec.Poly) float64 {
	strides := stridesOf(dims)
	var rec func(d, off int, term float64) float64
	rec = func(d, off int, term float64) float64 {
		if d == len(dims) {
			return cube[off] * term
		}
		var s float64
		for v := lo[d]; v <= hi[d]; v++ {
			t := term
			if d < len(polys) && polys[d] != nil {
				t *= polys[d].Eval(float64(v))
			}
			s += rec(d+1, off+v*strides[d], t)
		}
		return s
	}
	return rec(0, 0, 1)
}

func stridesOf(dims []int) []int {
	st := make([]int, len(dims))
	acc := 1
	for i := len(dims) - 1; i >= 0; i-- {
		st[i] = acc
		acc *= dims[i]
	}
	return st
}
