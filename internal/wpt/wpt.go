// Package wpt implements the Discrete Wavelet Packet Transform (DWPT) and
// the Coifman–Wickerhauser best-basis search that AIMS's acquisition layer
// uses to pick a transformation basis per dimension (§3.1.1 of the paper).
// The packet table generalises the pyramid DWT by recursively splitting the
// detail branches too, yielding a library of orthonormal bases; an additive
// cost function plus dynamic programming selects the cheapest basis.
package wpt

import (
	"fmt"
	"math"

	"aims/internal/wavelet"
)

// Table is a full packet decomposition: Rows[j] is the level-j row (length
// n), partitioned into 2^j contiguous blocks of length n/2^j. Block b of
// row j is the subband reached by the j filter choices encoded in b's bits
// (0 = lowpass, 1 = highpass, most significant decision first).
type Table struct {
	N      int
	Levels int
	Filter wavelet.Filter
	Rows   [][]float64
}

// Decompose builds the packet table of x down to maxLevels (capped by the
// filter's periodic limit; maxLevels < 0 means "as deep as possible").
func Decompose(x []float64, f wavelet.Filter, maxLevels int) *Table {
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("wpt: length %d is not a positive power of two", n))
	}
	limit := wavelet.MaxLevels(n, f)
	if maxLevels < 0 || maxLevels > limit {
		maxLevels = limit
	}
	t := &Table{N: n, Levels: maxLevels, Filter: f, Rows: make([][]float64, maxLevels+1)}
	t.Rows[0] = append([]float64(nil), x...)
	for j := 0; j < maxLevels; j++ {
		blockLen := n >> uint(j)
		next := make([]float64, n)
		for b := 0; b < 1<<uint(j); b++ {
			src := t.Rows[j][b*blockLen : (b+1)*blockLen]
			dst := next[b*blockLen : (b+1)*blockLen]
			packetStep(dst, src, f)
		}
		t.Rows[j+1] = next
	}
	return t
}

// packetStep splits src into [approx|detail] halves of dst using one
// periodic analysis step.
func packetStep(dst, src []float64, f wavelet.Filter) {
	n := len(src)
	half := n / 2
	l := f.Len()
	for k := 0; k < half; k++ {
		var a, d float64
		for m := 0; m < l; m++ {
			idx := (2*k + m) % n
			a += f.H[m] * src[idx]
			d += f.G[m] * src[idx]
		}
		dst[k] = a
		dst[half+k] = d
	}
}

// packetUnstep inverts packetStep.
func packetUnstep(dst, src []float64, f wavelet.Filter) {
	n := len(src)
	half := n / 2
	l := f.Len()
	for i := range dst[:n] {
		dst[i] = 0
	}
	for k := 0; k < half; k++ {
		a, d := src[k], src[half+k]
		for m := 0; m < l; m++ {
			idx := (2*k + m) % n
			dst[idx] += f.H[m]*a + f.G[m]*d
		}
	}
}

// Node identifies one packet: row Level, block Block ∈ [0, 2^Level).
type Node struct {
	Level int
	Block int
}

// Block returns the coefficients of the given node.
func (t *Table) Block(nd Node) []float64 {
	blockLen := t.N >> uint(nd.Level)
	return t.Rows[nd.Level][nd.Block*blockLen : (nd.Block+1)*blockLen]
}

// Cost is an additive information cost over a coefficient block. Lower is
// better. It must be additive across disjoint blocks for the best-basis DP
// to be optimal.
type Cost func(block []float64) float64

// ShannonCost is the Coifman–Wickerhauser entropy −Σ v²·log v² (with the
// 0·log 0 = 0 convention). Minimising it concentrates energy into few
// coefficients.
func ShannonCost(block []float64) float64 {
	var c float64
	for _, v := range block {
		e := v * v
		if e > 0 {
			c -= e * math.Log(e)
		}
	}
	return c
}

// ThresholdCost counts coefficients with magnitude above eps — a direct
// proxy for compressed size.
func ThresholdCost(eps float64) Cost {
	return func(block []float64) float64 {
		var c float64
		for _, v := range block {
			if math.Abs(v) > eps {
				c++
			}
		}
		return c
	}
}

// LogEnergyCost is Σ log(1+v²), a robust sparsity cost.
func LogEnergyCost(block []float64) float64 {
	var c float64
	for _, v := range block {
		c += math.Log1p(v * v)
	}
	return c
}

// Basis is a set of nodes whose blocks tile the signal space — an
// orthonormal basis drawn from the packet library.
type Basis struct {
	Nodes []Node
	Cost  float64
}

// BestBasis runs the bottom-up dynamic program: each node keeps its own
// block if that costs less than the best decomposition of its two children.
func (t *Table) BestBasis(cost Cost) Basis {
	type cell struct {
		cost  float64
		split bool
	}
	cells := make([]map[int]cell, t.Levels+1)
	for j := t.Levels; j >= 0; j-- {
		cells[j] = make(map[int]cell, 1<<uint(j))
		for b := 0; b < 1<<uint(j); b++ {
			own := cost(t.Block(Node{j, b}))
			if j == t.Levels {
				cells[j][b] = cell{own, false}
				continue
			}
			kids := cells[j+1][2*b].cost + cells[j+1][2*b+1].cost
			if kids < own {
				cells[j][b] = cell{kids, true}
			} else {
				cells[j][b] = cell{own, false}
			}
		}
	}
	var basis Basis
	basis.Cost = cells[0][0].cost
	var walk func(j, b int)
	walk = func(j, b int) {
		if cells[j][b].split {
			walk(j+1, 2*b)
			walk(j+1, 2*b+1)
			return
		}
		basis.Nodes = append(basis.Nodes, Node{j, b})
	}
	walk(0, 0)
	return basis
}

// Coefficients concatenates the basis blocks into one length-n vector
// (ordered by block position, i.e. by frequency path).
func (t *Table) Coefficients(b Basis) []float64 {
	out := make([]float64, 0, t.N)
	for _, nd := range b.Nodes {
		out = append(out, t.Block(nd)...)
	}
	return out
}

// Reconstruct inverts the packet decomposition restricted to the given
// basis: the basis blocks (possibly modified by the caller, e.g.
// thresholded) are merged bottom-up back into a signal.
func (t *Table) Reconstruct(b Basis, blocks [][]float64) []float64 {
	if len(blocks) != len(b.Nodes) {
		panic(fmt.Sprintf("wpt: %d blocks for %d basis nodes", len(blocks), len(b.Nodes)))
	}
	// Working rows, filled only where needed.
	rows := make([][]float64, t.Levels+1)
	for j := range rows {
		rows[j] = make([]float64, t.N)
	}
	inBasis := make(map[Node]int, len(b.Nodes))
	for i, nd := range b.Nodes {
		inBasis[nd] = i
		blockLen := t.N >> uint(nd.Level)
		if len(blocks[i]) != blockLen {
			panic(fmt.Sprintf("wpt: block %d has length %d, want %d", i, len(blocks[i]), blockLen))
		}
		copy(rows[nd.Level][nd.Block*blockLen:(nd.Block+1)*blockLen], blocks[i])
	}
	var build func(j, blk int)
	build = func(j, blk int) {
		if _, ok := inBasis[Node{j, blk}]; ok {
			return
		}
		build(j+1, 2*blk)
		build(j+1, 2*blk+1)
		blockLen := t.N >> uint(j)
		src := rows[j+1][blk*blockLen : (blk+1)*blockLen]
		dst := rows[j][blk*blockLen : (blk+1)*blockLen]
		packetUnstep(dst, src, t.Filter)
	}
	build(0, 0)
	return rows[0]
}

// PyramidBasis returns the basis corresponding to the ordinary DWT with the
// given number of levels: detail nodes at each level plus the final approx.
func (t *Table) PyramidBasis(levels int) Basis {
	if levels < 0 || levels > t.Levels {
		levels = t.Levels
	}
	var b Basis
	for j := 1; j <= levels; j++ {
		b.Nodes = append(b.Nodes, Node{j, 1}) // detail branch of the approx chain
	}
	b.Nodes = append(b.Nodes, Node{levels, 0})
	return b
}

// StandardCost evaluates the cost of the untransformed signal, i.e. the
// "standard basis" alternative the hybrid chooser compares against.
func StandardCost(x []float64, cost Cost) float64 { return cost(x) }

// Choice records the outcome of per-dimension basis selection.
type Choice struct {
	Dimension int
	// FilterName is "" when the standard (identity) basis wins.
	FilterName string
	Cost       float64
	// Nodes is nil for the standard basis; otherwise the best packet basis.
	Nodes []Node
}

// SelectBasis picks, for one dimension's marginal signal, the cheapest of:
// the standard basis, and the best packet basis of every candidate filter.
// This is the §3.1.1 multi-basis selection: "each dimension requires its
// own transformation which may be different from others".
func SelectBasis(dim int, signal []float64, candidates []wavelet.Filter, cost Cost) Choice {
	best := Choice{Dimension: dim, FilterName: "", Cost: StandardCost(signal, cost)}
	for _, f := range candidates {
		if wavelet.MaxLevels(len(signal), f) == 0 {
			continue
		}
		t := Decompose(signal, f, -1)
		bb := t.BestBasis(cost)
		if bb.Cost < best.Cost {
			best = Choice{Dimension: dim, FilterName: f.Name, Cost: bb.Cost, Nodes: bb.Nodes}
		}
	}
	return best
}
