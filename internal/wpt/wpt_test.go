package wpt

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"aims/internal/wavelet"
)

func randSignal(rng *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

func sineSignal(n int, freq float64) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * freq * float64(i) / float64(n))
	}
	return x
}

func TestDecomposeShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tb := Decompose(randSignal(rng, 64), wavelet.Haar, -1)
	if tb.Levels != 6 {
		t.Fatalf("Levels = %d, want 6", tb.Levels)
	}
	for j, row := range tb.Rows {
		if len(row) != 64 {
			t.Fatalf("row %d length %d", j, len(row))
		}
	}
	if got := len(tb.Block(Node{3, 5})); got != 8 {
		t.Fatalf("block length = %d, want 8", got)
	}
}

func TestPacketRowsPreserveEnergyProperty(t *testing.T) {
	f := func(seed int64, filterIdx uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		fl := wavelet.Filters[int(filterIdx)%len(wavelet.Filters)]
		n := 1 << (3 + rng.Intn(5))
		x := randSignal(rng, n)
		var e0 float64
		for _, v := range x {
			e0 += v * v
		}
		tb := Decompose(x, fl, -1)
		for _, row := range tb.Rows {
			var e float64
			for _, v := range row {
				e += v * v
			}
			if math.Abs(e-e0) > 1e-9*(1+e0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPyramidBasisMatchesDWT(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := randSignal(rng, 32)
	tb := Decompose(x, wavelet.Haar, -1)
	pyr := tb.PyramidBasis(-1)
	// Collect packet coefficients and compare as a multiset with the DWT's
	// standard layout (same subbands, different block order within bands is
	// not possible for pyramid nodes — the approx chain keeps order).
	w, _ := wavelet.Transform(x, wavelet.Haar, -1)
	// approx (level 6, block 0) == w[0]; detail level j block 1 == d_j band.
	for _, nd := range pyr.Nodes {
		blk := tb.Block(nd)
		if nd.Block == 0 { // final approx
			if math.Abs(blk[0]-w[0]) > 1e-9 {
				t.Fatalf("approx mismatch: %v vs %v", blk[0], w[0])
			}
			continue
		}
		off := 32 >> uint(nd.Level)
		for i, v := range blk {
			if math.Abs(v-w[off+i]) > 1e-9 {
				t.Fatalf("detail level %d mismatch at %d: %v vs %v", nd.Level, i, v, w[off+i])
			}
		}
	}
}

func TestBestBasisTilesSpace(t *testing.T) {
	// Basis blocks must partition [0, n): total length n, no overlaps.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		x := randSignal(rng, 64)
		tb := Decompose(x, wavelet.D4, -1)
		b := tb.BestBasis(ShannonCost)
		covered := make([]bool, 64)
		for _, nd := range b.Nodes {
			blockLen := 64 >> uint(nd.Level)
			for i := nd.Block * blockLen; i < (nd.Block+1)*blockLen; i++ {
				if covered[i] {
					t.Fatalf("basis overlaps at %d", i)
				}
				covered[i] = true
			}
		}
		for i, c := range covered {
			if !c {
				t.Fatalf("basis misses position %d", i)
			}
		}
	}
}

func TestBestBasisNeverWorseThanFixedBases(t *testing.T) {
	// Optimality of the DP: best-basis cost ≤ cost of root block and ≤ cost
	// of the pyramid basis.
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 10; trial++ {
		x := randSignal(rng, 128)
		tb := Decompose(x, wavelet.D4, -1)
		bb := tb.BestBasis(ShannonCost)
		if root := ShannonCost(tb.Rows[0]); bb.Cost > root+1e-9 {
			t.Fatalf("best basis (%v) worse than standard (%v)", bb.Cost, root)
		}
		pyr := tb.PyramidBasis(-1)
		var pyrCost float64
		for _, nd := range pyr.Nodes {
			pyrCost += ShannonCost(tb.Block(nd))
		}
		if bb.Cost > pyrCost+1e-9 {
			t.Fatalf("best basis (%v) worse than pyramid (%v)", bb.Cost, pyrCost)
		}
	}
}

func TestReconstructRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, fl := range wavelet.Filters {
		x := randSignal(rng, 64)
		tb := Decompose(x, fl, -1)
		b := tb.BestBasis(ShannonCost)
		blocks := make([][]float64, len(b.Nodes))
		for i, nd := range b.Nodes {
			blocks[i] = append([]float64(nil), tb.Block(nd)...)
		}
		back := tb.Reconstruct(b, blocks)
		for i := range x {
			if math.Abs(back[i]-x[i]) > 1e-9 {
				t.Fatalf("%s: reconstruct mismatch at %d: %v vs %v", fl.Name, i, back[i], x[i])
			}
		}
	}
}

func TestCostFunctions(t *testing.T) {
	if got := ShannonCost([]float64{0, 0}); got != 0 {
		t.Fatalf("ShannonCost zeros = %v", got)
	}
	// A concentrated block must cost less than a spread one (equal energy).
	concentrated := []float64{2, 0, 0, 0}
	spread := []float64{1, 1, 1, 1}
	if ShannonCost(concentrated) >= ShannonCost(spread) {
		t.Fatal("ShannonCost should prefer concentration")
	}
	tc := ThresholdCost(0.5)
	if got := tc([]float64{1, 0.2, -0.7}); got != 2 {
		t.Fatalf("ThresholdCost = %v", got)
	}
	if LogEnergyCost(concentrated) >= LogEnergyCost(spread) {
		t.Fatal("LogEnergyCost should prefer concentration")
	}
}

func TestSelectBasisPrefersStandardForSpikes(t *testing.T) {
	// A near-delta signal is already sparse in the standard basis; wavelet
	// transforms smear it (for long filters) or tie (Haar keeps it sparse
	// but entropy is equal at best). The chooser must not pick a basis that
	// costs more.
	x := make([]float64, 64)
	x[10] = 1
	ch := SelectBasis(0, x, []wavelet.Filter{wavelet.D6, wavelet.D8}, ShannonCost)
	if ch.FilterName != "" {
		t.Fatalf("spike dimension chose %q, want standard basis", ch.FilterName)
	}
}

func TestSelectBasisPrefersWaveletForSmooth(t *testing.T) {
	// A smooth ramp compacts dramatically under wavelets.
	x := make([]float64, 128)
	for i := range x {
		x[i] = float64(i) / 128
	}
	ch := SelectBasis(3, x, wavelet.Filters, ShannonCost)
	if ch.FilterName == "" {
		t.Fatal("smooth dimension chose standard basis, want a wavelet")
	}
	if ch.Dimension != 3 {
		t.Fatalf("Dimension = %d", ch.Dimension)
	}
	if len(ch.Nodes) == 0 {
		t.Fatal("wavelet choice must carry basis nodes")
	}
}

func TestBestBasisAdaptsToOscillation(t *testing.T) {
	// A high-frequency tone concentrates in a *detail-side* packet that the
	// plain DWT never isolates; the best basis must capture ≥ the energy
	// fraction of the pyramid in its largest block.
	x := sineSignal(256, 96) // high frequency
	tb := Decompose(x, wavelet.D8, -1)
	bb := tb.BestBasis(ShannonCost)
	coeffs := tb.Coefficients(bb)
	if got := wavelet.EnergyFraction(coeffs, 16); got < 0.80 {
		t.Fatalf("best basis captures %v of energy in 16 coefficients, want ≥ 0.80", got)
	}
}
