package fleet

import (
	"context"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"aims/internal/core"
	"aims/internal/stream"
	"aims/internal/wire"
)

// buildFleet creates n sessions of the given class, each with its own
// random frame count and (for odd IDs) its own value range, so merges
// cross heterogeneous quantisers.
func buildFleet(t testing.TB, n int, class string, seed int64) []Session {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	out := make([]Session, 0, n)
	for i := 0; i < n; i++ {
		lo, hi := -1.0, 1.0
		if i%2 == 1 {
			lo, hi = 0, 10
		}
		ls, err := core.NewLiveStore([]float64{lo, lo}, []float64{hi, hi}, core.LiveStoreConfig{
			Rate: 100, TimeBuckets: 64, ValueBins: 32, HorizonTicks: 6400,
		})
		if err != nil {
			t.Fatal(err)
		}
		frames := 500 + rng.Intn(2000)
		batch := make([]stream.Frame, frames)
		for j := range batch {
			batch[j] = stream.Frame{
				T:      float64(j) / 100,
				Values: []float64{lo + rng.Float64()*(hi-lo), lo + rng.Float64()*(hi-lo)},
			}
		}
		if stored, err := ls.AppendFrames(batch); err != nil || stored != frames {
			t.Fatalf("append %d/%d: %v", stored, frames, err)
		}
		out = append(out, Session{ID: uint64(i + 1), Class: class, Store: ls})
	}
	return out
}

// TestEquivalenceExactKinds is the acceptance property: for exact kinds a
// fleet query over N sessions is bit-identical to querying each session
// individually and merging client-side with the same fold.
func TestEquivalenceExactKinds(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		sessions := buildFleet(t, 9, "glove", seed)
		rng := rand.New(rand.NewSource(seed * 77))
		for _, kind := range []wire.QueryKind{wire.QueryCount, wire.QueryAverage, wire.QueryVariance} {
			t0 := rng.Float64() * 10
			req := Request{
				Kind: kind, Channel: rng.Intn(2), T0: t0, T1: t0 + rng.Float64()*40,
				Scope: wire.FleetScope{Class: "glove"},
			}
			// Fleet path: concurrent scatter-gather over a 3-worker pool.
			res := Evaluate(context.Background(), sessions, req, Config{Workers: 3})
			if !res.OK || res.Code != wire.CodeOK {
				t.Fatalf("seed %d kind %d: fleet failed: %+v", seed, kind, res)
			}
			if int(res.Sessions) != len(sessions) || res.Merged != res.Sessions {
				t.Fatalf("seed %d kind %d: matched %d merged %d", seed, kind, res.Sessions, res.Merged)
			}
			// Client-side path: evaluate each session individually, in
			// ascending ID order, and merge with the exported fold.
			matched, _ := Match(sessions, req.Scope)
			var parts []wire.FleetPart
			for _, s := range matched {
				p, err := EvalSession(s, req)
				if err != nil {
					t.Fatal(err)
				}
				parts = append(parts, p)
			}
			want, _, _, ok := Merge(kind, parts)
			if !ok {
				t.Fatalf("seed %d kind %d: client merge not ok", seed, kind)
			}
			if res.Value != want { // bit-identical, not approximately equal
				t.Fatalf("seed %d kind %d: fleet %v != client merge %v (diff %g)",
					seed, kind, res.Value, want, res.Value-want)
			}
			if len(res.Parts) != len(parts) {
				t.Fatalf("parts %d != %d", len(res.Parts), len(parts))
			}
			for i := range parts {
				if res.Parts[i] != parts[i] {
					t.Fatalf("part %d: %+v != %+v", i, res.Parts[i], parts[i])
				}
			}
		}
	}
}

// TestApproxBoundSound is the approximate acceptance property: the merged
// estimate's summed error bound must contain the true merged count on
// randomized workloads.
func TestApproxBoundSound(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		sessions := buildFleet(t, 5, "glove", seed)
		rng := rand.New(rand.NewSource(seed * 131))
		for trial := 0; trial < 4; trial++ {
			t0 := rng.Float64() * 20
			t1 := t0 + rng.Float64()*30
			budget := 4 + rng.Intn(60)
			req := Request{
				Kind: wire.QueryApproxCount, Channel: rng.Intn(2), T0: t0, T1: t1,
				Arg: uint32(budget), Scope: wire.FleetScope{Class: "glove"},
			}
			res := Evaluate(context.Background(), sessions, req, Config{Workers: 4})
			if !res.OK {
				t.Fatalf("seed %d: approx fleet failed: %+v", seed, res)
			}
			// True merged answer from the exact path.
			var truth float64
			for _, s := range sessions {
				sum, _, err := s.Store.Summarize(req.Channel, t0, t1)
				if err != nil {
					t.Fatal(err)
				}
				truth += sum.N
			}
			if err := math.Abs(res.Value - truth); err > res.Bound+1e-6 {
				t.Fatalf("seed %d trial %d: |est %v - true %v| = %v exceeds merged bound %v",
					seed, trial, res.Value, truth, err, res.Bound)
			}
		}
	}
}

func TestScopeByIDsAndMissing(t *testing.T) {
	sessions := buildFleet(t, 4, "glove", 3)
	req := Request{
		Kind: wire.QueryCount, Channel: 0, T0: 0, T1: 100,
		Scope: wire.FleetScope{IDs: []uint64{2, 4, 99, 2}}, // dup 2, missing 99
	}
	// Fail policy: the missing session fails the whole query.
	res := Evaluate(context.Background(), sessions, req, Config{})
	if res.OK || res.Code != wire.CodeNotRegistered {
		t.Fatalf("fail policy: %+v", res)
	}
	if res.Value != 0 {
		t.Fatalf("failed query leaked a value %v", res.Value)
	}

	// Partial policy: sessions 2 and 4 answer, 99 is reported missing, and
	// the duplicated ID contributes exactly once.
	req.Partial = true
	res = Evaluate(context.Background(), sessions, req, Config{})
	if !res.OK || res.Code != wire.CodePartial {
		t.Fatalf("partial policy: %+v", res)
	}
	if res.Sessions != 2 || res.Merged != 2 || len(res.Failures) != 1 {
		t.Fatalf("partial shape: %+v", res)
	}
	if res.Failures[0].ID != 99 || res.Failures[0].Code != wire.CodeNotRegistered {
		t.Fatalf("failure detail: %+v", res.Failures[0])
	}
	var want float64
	for _, s := range sessions {
		if s.ID == 2 || s.ID == 4 {
			sum, _, _ := s.Store.Summarize(0, 0, 100)
			want += sum.N
		}
	}
	if res.Value != want {
		t.Fatalf("partial merge %v != %v", res.Value, want)
	}
}

func TestScopeNoSessions(t *testing.T) {
	sessions := buildFleet(t, 3, "glove", 5)
	res := Evaluate(context.Background(), sessions, Request{
		Kind: wire.QueryCount, T0: 0, T1: 1, Scope: wire.FleetScope{Class: "tracker"},
	}, Config{})
	if res.OK || res.Code != wire.CodeNoSessions || res.Sessions != 0 {
		t.Fatalf("empty scope: %+v", res)
	}
}

func TestBadChannelBecomesPerSessionFailure(t *testing.T) {
	sessions := buildFleet(t, 3, "glove", 9)
	req := Request{
		Kind: wire.QueryAverage, Channel: 7, T0: 0, T1: 10,
		Scope: wire.FleetScope{Class: "glove"}, Partial: true,
	}
	res := Evaluate(context.Background(), sessions, req, Config{})
	if res.OK || len(res.Failures) != 3 {
		t.Fatalf("bad channel: %+v", res)
	}
	for _, f := range res.Failures {
		if f.Code != wire.CodeBadQuery || f.Text == "" {
			t.Fatalf("failure detail: %+v", f)
		}
	}
}

// TestDeadlineYieldsPartial forces the scatter past its deadline: 48
// sessions that each need a cold ProPolyne seal, one worker, and a 1ms
// budget. Unfinished sessions must come back as CodeDeadline failures
// under the partial policy, never as a hang.
func TestDeadlineYieldsPartial(t *testing.T) {
	sessions := buildFleet(t, 48, "glove", 13)
	req := Request{
		Kind: wire.QueryApproxCount, Channel: 0, T0: 0, T1: 30, Arg: 16,
		Scope: wire.FleetScope{Class: "glove"}, Partial: true,
		Timeout: time.Millisecond,
	}
	start := time.Now()
	res := Evaluate(context.Background(), sessions, req, Config{Workers: 1})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline did not bound the query: %s", elapsed)
	}
	if len(res.Failures) == 0 {
		t.Skip("machine sealed 48 engines inside 1ms; cannot exercise the deadline")
	}
	if res.Code != wire.CodePartial {
		t.Fatalf("code %s, want partial", res.Code)
	}
	deadline := 0
	for _, f := range res.Failures {
		if f.Code == wire.CodeDeadline {
			deadline++
		}
	}
	if deadline == 0 {
		t.Fatalf("no deadline failures in %+v", res.Failures)
	}
	if int(res.Merged)+len(res.Failures) != 48 {
		t.Fatalf("merged %d + failed %d != 48", res.Merged, len(res.Failures))
	}
}

// TestProgressiveMergesFinalSteps: each session's progressive evaluation
// converges to its exact count, so the merged fleet answer equals the
// summed exact counts with a (near-)zero combined bound.
func TestProgressiveMergesFinalSteps(t *testing.T) {
	sessions := buildFleet(t, 4, "glove", 21)
	req := Request{
		Kind: wire.QueryProgressiveCount, Channel: 1, T0: 2, T1: 18, Arg: 64,
		Scope: wire.FleetScope{Class: "glove"},
	}
	res := Evaluate(context.Background(), sessions, req, Config{})
	if !res.OK {
		t.Fatalf("progressive fleet failed: %+v", res)
	}
	var truth float64
	for _, s := range sessions {
		sum, _, _ := s.Store.Summarize(1, 2, 18)
		truth += sum.N
	}
	if math.Abs(res.Value-truth) > res.Bound+1e-6 {
		t.Fatalf("progressive merge %v vs truth %v outside bound %v", res.Value, truth, res.Bound)
	}
}

// TestExpiredDeadlineReturnsSlotsWithoutScanning: once the fleet deadline
// has fired, a worker picking up a job must hand its slot straight back as
// a CodeDeadline failure instead of scanning a store nobody will read —
// the starvation fix for pools shared across queries. With the context
// cancelled before the scatter starts, not a single scan may run.
func TestExpiredDeadlineReturnsSlotsWithoutScanning(t *testing.T) {
	sessions := buildFleet(t, 8, "glove", 31)
	var scans atomic.Int64
	cfg := Config{Workers: 4, Observer: Observer{
		ScanSeconds: func(float64) { scans.Add(1) },
	}}
	req := Request{
		Kind: wire.QueryCount, Channel: 0, T0: 0, T1: 30,
		Scope: wire.FleetScope{Class: "glove"}, Partial: true,
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // expired before the scatter begins
	res := Evaluate(ctx, sessions, req, cfg)
	if got := scans.Load(); got != 0 {
		t.Fatalf("%d scans ran after the deadline expired, want 0", got)
	}
	if len(res.Failures) != 8 || res.Merged != 0 {
		t.Fatalf("merged %d + failed %d, want 0 + 8", res.Merged, len(res.Failures))
	}
	for _, f := range res.Failures {
		if f.Code != wire.CodeDeadline {
			t.Fatalf("failure %+v, want CodeDeadline", f)
		}
	}
	if res.Code != wire.CodePartial {
		t.Fatalf("code %s, want partial", res.Code)
	}
}
